// Listing 1 of the paper, end to end: select training data with SQL, keep
// the result distributed (sql2rdd), extract features with mapRows, cache the
// points, and run logistic regression — one lineage graph covering both the
// SQL and the ML stages, so the whole pipeline is fault tolerant (§4).
//
// Build & run:  cmake --build build && ./build/examples/ml_pipeline
#include <cstdio>

#include "ml/logistic_regression.h"
#include "ml/table_rdd.h"
#include "workloads/mldata.h"

using namespace shark;  // NOLINT(build/namespaces)

int main() {
  ClusterConfig config;
  config.num_nodes = 10;
  auto ctx = std::make_shared<ClusterContext>(config);
  SharkSession session(ctx);

  // A users table: label (+1 = spammer), feature columns f0..f3.
  MlDataConfig data;
  data.rows = 20000;
  data.dimensions = 4;
  data.blocks = 20;
  if (!GenerateMlTable(&session, data).ok()) return 1;

  // val users = sql2rdd("SELECT * FROM users u JOIN comments c ON ...")
  auto users = session.Sql2Rdd("SELECT * FROM ml_points WHERE label <> 0");
  if (!users.ok()) {
    std::fprintf(stderr, "%s\n", users.status().ToString().c_str());
    return 1;
  }

  // val features = users.mapRows { row => new Vector(...) }
  auto points =
      RowsToLabeledPoints(*users, "label", MlFeatureColumns(data.dimensions));
  if (!points.ok()) return 1;
  (*points)->Cache();  // features.cache()

  // val trainedVector = logRegress(features)
  LogisticRegression::Options opts;
  opts.iterations = 10;
  opts.learning_rate = 0.0005;
  auto model =
      LogisticRegression::Train(ctx.get(), *points, data.dimensions, opts);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  std::printf("trained weights:");
  for (double w : model->weights) std::printf(" %.4f", w);
  std::printf("\nper-iteration virtual seconds:");
  for (double t : model->iteration_seconds) std::printf(" %.3f", t);
  std::printf("\n(the first iteration scans the warehouse; later ones run "
              "from the in-memory cache)\n");

  // Evaluate training accuracy with SQL + the model.
  auto sample = ctx->Collect(*points);
  if (!sample.ok()) return 1;
  int correct = 0;
  for (const LabeledPoint& p : *sample) {
    double prob = LogisticRegression::Predict(model->weights, p.x);
    if ((prob > 0.5) == (p.y > 0)) ++correct;
  }
  std::printf("training accuracy: %.1f%%\n",
              100.0 * correct / static_cast<double>(sample->size()));
  return 0;
}
