// The Pavlo et al. benchmark as an application: generate the rankings and
// uservisits tables, cache them (with co-partitioning on the join key), and
// run the selection / aggregation / join workload, printing results and the
// engine decisions (PDE reducer counts, join strategy, pruning).
//
// Build & run:  cmake --build build && ./build/examples/pavlo_analytics
#include <cstdio>

#include "workloads/pavlo.h"

using namespace shark;  // NOLINT(build/namespaces)

namespace {

void Show(SharkSession* session, const std::string& name,
          const std::string& sql) {
  auto result = session->Sql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n-- %s (%.2f virtual s, %d tasks", name.c_str(),
              result->metrics.virtual_seconds, result->metrics.tasks);
  if (!result->metrics.join_strategy.empty()) {
    std::printf(", %s", result->metrics.join_strategy.c_str());
  }
  if (result->metrics.chosen_reducers > 0) {
    std::printf(", %d reducers", result->metrics.chosen_reducers);
  }
  std::printf(") --\n%s", result->ToString(5).c_str());
}

}  // namespace

int main() {
  ClusterConfig config;
  config.num_nodes = 20;
  config.virtual_data_scale = 100.0;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(config));

  PavloConfig data;
  data.rankings_rows = 50000;
  data.uservisits_rows = 200000;
  data.rankings_blocks = 80;
  data.uservisits_blocks = 160;
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;
  std::printf("generated rankings (%lld rows) and uservisits (%lld rows)\n",
              static_cast<long long>(data.rankings_rows),
              static_cast<long long>(data.uservisits_rows));

  // Cache both tables, co-partitioned on the join key (§3.4).
  auto r1 = session->Sql(
      "CREATE TABLE r_mem TBLPROPERTIES (\"shark.cache\"=true) AS "
      "SELECT * FROM rankings DISTRIBUTE BY pageURL");
  auto r2 = session->Sql(
      "CREATE TABLE uv_mem TBLPROPERTIES (\"shark.cache\"=true, "
      "\"copartition\"=\"r_mem\") AS SELECT * FROM uservisits "
      "DISTRIBUTE BY destURL");
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "caching failed\n");
    return 1;
  }

  Show(session.get(), "selection", PavloSelectionQuery(9500));
  Show(session.get(), "aggregation (coarse)",
       "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uv_mem "
       "GROUP BY SUBSTR(sourceIP, 1, 7) ORDER BY SUM(adRevenue) DESC LIMIT 5");
  Show(session.get(), "co-partitioned join",
       "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) AS totalRevenue "
       "FROM r_mem AS R, uv_mem AS UV WHERE R.pageURL = UV.destURL "
       "AND UV.visitDate BETWEEN Date('2000-01-15') AND Date('2000-01-22') "
       "GROUP BY UV.sourceIP ORDER BY totalRevenue DESC LIMIT 5");

  return 0;
}
