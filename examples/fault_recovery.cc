// Demonstrates mid-query fault tolerance (§2.3, §6.3.3): a worker dies while
// a query over a cached table runs; the engine recomputes the lost cached
// partitions and shuffle outputs from lineage on the surviving nodes, and the
// query still returns the exact answer.
//
// Build & run:  cmake --build build && ./build/examples/fault_recovery
#include <cstdio>

#include "workloads/tpch.h"

using namespace shark;  // NOLINT(build/namespaces)

int main() {
  ClusterConfig config;
  config.num_nodes = 10;
  config.virtual_data_scale = 1000.0;
  auto ctx = std::make_shared<ClusterContext>(config);
  SharkSession session(ctx);

  TpchConfig data;
  data.lineitem_rows = 100000;
  data.lineitem_blocks = 80;
  data.supplier_rows = 2000;
  data.orders_rows = 20000;
  if (!GenerateTpchTables(&session, data).ok()) return 1;
  if (!session.CacheTable("lineitem").ok()) return 1;

  const std::string query =
      "SELECT L_SHIPMODE, COUNT(*), SUM(L_EXTENDEDPRICE) FROM lineitem "
      "GROUP BY L_SHIPMODE";

  auto baseline = session.Sql(query);
  if (!baseline.ok()) return 1;
  std::printf("baseline (no failures), %.2f virtual s:\n%s\n",
              baseline->metrics.virtual_seconds,
              baseline->ToString().c_str());

  // Kill node 3 shortly after the next query starts. Its cached lineitem
  // partitions and any shuffle outputs vanish mid-query.
  ctx->InjectFault(FaultEvent{FaultEvent::Kind::kKill, ctx->now() + 0.05, 3,
                              1.0});
  auto with_failure = session.Sql(query);
  if (!with_failure.ok()) {
    std::fprintf(stderr, "%s\n", with_failure.status().ToString().c_str());
    return 1;
  }
  std::printf("with a node failure mid-query, %.2f virtual s "
              "(%d tasks failed, %d map tasks recomputed from lineage):\n%s\n",
              with_failure->metrics.virtual_seconds,
              with_failure->metrics.tasks_failed,
              with_failure->metrics.map_tasks_recovered,
              with_failure->ToString().c_str());

  bool same = baseline->rows.size() == with_failure->rows.size();
  std::printf("alive nodes: %d of %d; results identical: %s\n",
              ctx->cluster().AliveNodes(), config.num_nodes,
              same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
