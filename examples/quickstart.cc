// Quickstart: create a warehouse table, cache it in the columnar memory
// store, and run SQL against it — the CREATE TABLE ... TBLPROPERTIES
// ("shark.cache"="true") flow from §2 of the paper.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "sql/session.h"

using shark::ClusterConfig;
using shark::ClusterContext;
using shark::QueryResult;
using shark::Row;
using shark::Schema;
using shark::SharkSession;
using shark::TypeKind;
using shark::Value;

int main() {
  // A simulated 10-node cluster (the default would be the paper's 100).
  ClusterConfig config;
  config.num_nodes = 10;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(config));

  // Define a small web-log table and write it to the (simulated) DFS.
  Schema schema({{"url", TypeKind::kString},
                 {"status", TypeKind::kInt64},
                 {"latency_ms", TypeKind::kDouble}});
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) {
    rows.push_back(Row({Value::String("/page/" + std::to_string(i % 100)),
                        Value::Int64(i % 17 == 0 ? 500 : 200),
                        Value::Double(5.0 + (i % 50))}));
  }
  if (!session->CreateDfsTable("logs", schema, rows, /*num_blocks=*/20).ok()) {
    std::fprintf(stderr, "failed to create table\n");
    return 1;
  }

  // Cache hot data in the memory store, exactly as in the paper's example:
  //   CREATE TABLE latest_logs TBLPROPERTIES ("shark.cache"=true) AS SELECT...
  auto created = session->Sql(
      "CREATE TABLE error_logs TBLPROPERTIES (\"shark.cache\"=true) AS "
      "SELECT url, latency_ms FROM logs WHERE status = 500");
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }

  // Query the cached table.
  auto result = session->Sql(
      "SELECT url, COUNT(*) AS errors, AVG(latency_ms) AS avg_latency "
      "FROM error_logs GROUP BY url ORDER BY errors DESC LIMIT 5");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("top error pages:\n%s", result->ToString().c_str());
  std::printf("\nquery took %.3f virtual seconds over %d tasks in %d stages\n",
              result->metrics.virtual_seconds, result->metrics.tasks,
              result->metrics.stages);

  // EXPLAIN shows the optimized plan (predicate pushdown, column pruning).
  auto plan = session->Explain("SELECT url FROM logs WHERE status = 500");
  if (plan.ok()) std::printf("\nEXPLAIN:\n%s", plan->c_str());
  return 0;
}
