#include "tools/fuzz/fuzz_harness.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>

#include "common/random.h"
#include "hive/hive_engine.h"
#include "rdd/job_manager.h"
#include "sql/parser.h"
#include "sql/reference_eval.h"
#include "sql/session.h"

namespace shark {
namespace fuzz {

// ---------------------------------------------------------------------------
// Query rendering
// ---------------------------------------------------------------------------

std::string GenQuery::Render() const {
  std::string sql = "SELECT ";
  if (distinct) sql += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += items[i].first + " AS " + items[i].second;
  }
  sql += " FROM " + from_sql + " " + from_alias;
  for (const GenJoin& j : joins) {
    sql += " " + j.type_sql + " " + j.table_sql + " " + j.alias + " ON ";
    for (size_t i = 0; i < j.on_conjuncts.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += j.on_conjuncts[i];
    }
  }
  if (!where_conjuncts.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < where_conjuncts.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += where_conjuncts[i];
    }
  }
  if (!group_by.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += group_by[i];
    }
  }
  if (!having.empty()) sql += " HAVING " + having;
  if (!order_by.empty()) {
    sql += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += order_by[i].first + (order_by[i].second ? " ASC" : " DESC");
    }
  }
  if (limit >= 0) sql += " LIMIT " + std::to_string(limit);
  return sql;
}

std::vector<std::string> GenQuery::RenderVariants() const {
  std::vector<std::string> out;

  // WHERE-conjunct reordering.
  if (where_conjuncts.size() >= 2) {
    GenQuery v = *this;
    std::reverse(v.where_conjuncts.begin(), v.where_conjuncts.end());
    out.push_back(v.Render());
  }
  // ON-conjunct reordering.
  bool any_multi_on = false;
  for (const GenJoin& j : joins) any_multi_on |= j.on_conjuncts.size() >= 2;
  if (any_multi_on) {
    GenQuery v = *this;
    for (GenJoin& j : v.joins) {
      std::reverse(j.on_conjuncts.begin(), j.on_conjuncts.end());
    }
    out.push_back(v.Render());
  }
  // Join-input commutation (single join only; select items are fully
  // qualified, so the output schema is unchanged).
  if (joins.size() == 1) {
    GenQuery v = *this;
    GenJoin& j = v.joins[0];
    std::swap(v.from_sql, j.table_sql);
    std::swap(v.from_alias, j.alias);
    if (j.type_sql == "LEFT OUTER JOIN") {
      j.type_sql = "RIGHT OUTER JOIN";
    } else if (j.type_sql == "RIGHT OUTER JOIN") {
      j.type_sql = "LEFT OUTER JOIN";
    }
    out.push_back(v.Render());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

namespace {

struct GenColumn {
  std::string name;
  TypeKind type = TypeKind::kInt64;
  /// Tame columns hold values safe for order-sensitive floating-point
  /// accumulation (SUM over DOUBLE, AVG): bounded magnitude, no NaN/Inf.
  bool tame = false;
};

struct ScopeCol {
  std::string qualifier;
  std::string name;
  TypeKind type = TypeKind::kInt64;
  bool tame = false;

  std::string Sql() const { return qualifier + "." + name; }
};

int64_t MustDays(const char* text) {
  auto v = Value::ParseDate(text);
  return v.ok() ? (*v).int64_v() : 0;
}

constexpr int64_t kTwo53 = 9007199254740992LL;  // 2^53

const int64_t kTameInts[] = {0, 1, -1, 2, 3, 5, 7, 42, -17, 100, 1000};
const int64_t kNastyInts[] = {
    0,      1,         -1,         2,
    42,     -17,       1 << 20,    kTwo53,
    kTwo53 + 1,        -(kTwo53 + 1),
    std::numeric_limits<int64_t>::max(),
    std::numeric_limits<int64_t>::min(),
    std::numeric_limits<int64_t>::max() - 1,
    std::numeric_limits<int64_t>::min() + 1};
const double kTameDoubles[] = {0.0, 1.0,  -1.5, 2.5, 0.125, 3.0,
                               10.0, 100.0, 0.1, -7.25, 42.0};
const double kNastyDoubles[] = {0.0,
                                -0.0,
                                1.0,
                                -1.0,
                                2.5,
                                std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                9007199254740992.0,   // 2^53
                                9007199254740994.0,   // 2^53 + 2
                                1e308,
                                -1e308,
                                1e-300,
                                42.0,
                                100.0};
const char* kStrings[] = {"",   "a",  "b",   "ab",   "abc", "A",
                          "%x", "x_y", "x y", "zzz", "it's", "42"};

struct DatePool {
  std::vector<int64_t> days;
  DatePool() {
    for (const char* d : {"1970-01-01", "1969-12-31", "2013-02-28",
                          "2000-02-29", "0001-01-01", "9999-12-31",
                          "2012-07-04"}) {
      days.push_back(MustDays(d));
    }
  }
};

const DatePool& Dates() {
  static DatePool pool;
  return pool;
}

template <typename T, size_t N>
T Pick(Random* rng, const T (&pool)[N]) {
  return pool[rng->Uniform(N)];
}

Value GenValue(Random* rng, const GenColumn& col) {
  if (rng->Bernoulli(0.12)) return Value::Null();
  switch (col.type) {
    case TypeKind::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case TypeKind::kInt64:
      return Value::Int64(col.tame ? Pick(rng, kTameInts)
                                   : Pick(rng, kNastyInts));
    case TypeKind::kDouble:
      return Value::Double(col.tame ? Pick(rng, kTameDoubles)
                                    : Pick(rng, kNastyDoubles));
    case TypeKind::kString:
      return Value::String(kStrings[rng->Uniform(std::size(kStrings))]);
    case TypeKind::kDate:
      return Value::Date(Dates().days[rng->Uniform(Dates().days.size())]);
    case TypeKind::kNull:
      break;
  }
  return Value::Null();
}

std::string EscapeSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    out += c;
    if (c == '\'') out += c;  // doubled-quote escape
  }
  out += "'";
  return out;
}

/// Renders a value as a lexer-parseable SQL literal. INT64_MIN has no
/// literal form (the magnitude overflows the integer token), so it is
/// nudged; NaN/Inf doubles have no literal form either and are replaced.
std::string RenderLiteral(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return v.bool_v() ? "TRUE" : "FALSE";
    case TypeKind::kInt64: {
      int64_t i = v.int64_v();
      if (i == std::numeric_limits<int64_t>::min()) ++i;
      return std::to_string(i);
    }
    case TypeKind::kDouble: {
      double d = v.double_v();
      if (std::isnan(d) || std::isinf(d)) d = 1e308 * (d < 0 ? -1.0 : 1.0);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      return buf;
    }
    case TypeKind::kString:
      return EscapeSqlString(v.str());
    case TypeKind::kDate:
      return "DATE '" + Value::FormatDate(v.int64_v()) + "'";
  }
  return "NULL";
}

class QueryGen {
 public:
  QueryGen(Random* rng, const std::vector<TableSpec>& tables,
           const std::vector<std::vector<GenColumn>>& columns)
      : rng_(rng), tables_(tables), columns_(columns) {}

  GenQuery Generate(std::vector<std::pair<int, bool>>* ordered_by) {
    GenQuery q = GenerateInner(/*depth=*/0, &scope_);
    *ordered_by = ordered_by_;
    return q;
  }

 private:
  /// Picks a literal for comparisons: usually from the same pools the data
  /// is drawn from, so predicates actually select rows.
  Value LiteralFor(const ScopeCol& col) {
    GenColumn gc;
    gc.type = col.type;
    gc.tame = col.tame;
    Value v = GenValue(rng_, gc);
    if (v.is_null()) v = GenValue(rng_, gc);  // prefer non-NULL literals
    return v;
  }

  std::string NumericExpr(const std::vector<ScopeCol>& scope, int depth) {
    std::vector<const ScopeCol*> nums;
    for (const ScopeCol& c : scope) {
      if (c.type == TypeKind::kInt64 || c.type == TypeKind::kDouble) {
        nums.push_back(&c);
      }
    }
    if (nums.empty()) return "1";
    const ScopeCol& c = *nums[rng_->Uniform(nums.size())];
    if (depth > 0 && rng_->Bernoulli(0.45)) {
      switch (rng_->Uniform(6)) {
        case 0:
          return "(" + NumericExpr(scope, depth - 1) + " + " +
                 NumericExpr(scope, depth - 1) + ")";
        case 1:
          return "(" + NumericExpr(scope, depth - 1) + " - " +
                 NumericExpr(scope, depth - 1) + ")";
        case 2:
          return "(" + NumericExpr(scope, depth - 1) + " * " +
                 std::to_string(rng_->UniformInt(-3, 7)) + ")";
        case 3:
          return "(" + c.Sql() + " % " +
                 std::to_string(rng_->Bernoulli(0.5) ? 7 : -3) + ")";
        case 4:
          return "ABS(" + NumericExpr(scope, depth - 1) + ")";
        default:
          return "FLOOR(" + NumericExpr(scope, depth - 1) + ")";
      }
    }
    return c.Sql();
  }

  std::string Predicate(const std::vector<ScopeCol>& scope, int depth) {
    if (depth > 0 && rng_->Bernoulli(0.25)) {
      std::string l = Predicate(scope, depth - 1);
      std::string r = Predicate(scope, depth - 1);
      if (rng_->Bernoulli(0.3)) return "NOT (" + l + ")";
      return "(" + l + (rng_->Bernoulli(0.5) ? " OR " : " AND ") + r + ")";
    }
    const ScopeCol& c = scope[rng_->Uniform(scope.size())];
    static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
    switch (rng_->Uniform(6)) {
      case 0:
        return c.Sql() + " IS " + (rng_->Bernoulli(0.5) ? "NOT " : "") +
               "NULL";
      case 1: {  // column vs column (numeric pairs allow cross-type)
        std::vector<const ScopeCol*> mates;
        bool c_num = IsNumericLike(c.type);
        for (const ScopeCol& o : scope) {
          if (&o == &c) continue;
          if (c_num ? IsNumericLike(o.type) : o.type == c.type) {
            mates.push_back(&o);
          }
        }
        if (mates.empty()) break;
        return c.Sql() + " " + Pick(rng_, kCmp) + " " +
               mates[rng_->Uniform(mates.size())]->Sql();
      }
      case 2: {  // BETWEEN
        if (c.type == TypeKind::kBool) break;
        return c.Sql() + (rng_->Bernoulli(0.25) ? " NOT BETWEEN " : " BETWEEN ") +
               RenderLiteral(LiteralFor(c)) + " AND " +
               RenderLiteral(LiteralFor(c));
      }
      case 3: {  // IN list
        std::string in = c.Sql() + (rng_->Bernoulli(0.25) ? " NOT IN (" : " IN (");
        int n = static_cast<int>(rng_->UniformInt(2, 4));
        for (int i = 0; i < n; ++i) {
          if (i > 0) in += ", ";
          in += RenderLiteral(LiteralFor(c));
        }
        return in + ")";
      }
      case 4: {  // LIKE
        if (c.type != TypeKind::kString) break;
        static const char* kPatterns[] = {"a%", "%b", "%",   "_",
                                          "%y%", "ab", "%'%", "4_"};
        return c.Sql() + (rng_->Bernoulli(0.25) ? " NOT LIKE " : " LIKE ") +
               EscapeSqlString(Pick(rng_, kPatterns));
      }
      default:
        break;
    }
    return c.Sql() + " " + Pick(rng_, kCmp) + " " +
           RenderLiteral(LiteralFor(c));
  }

  /// A relation usable in FROM/JOIN: either a base table or a derived
  /// (sub-select) table, with its visible columns.
  struct Rel {
    std::string sql;
    std::vector<GenColumn> cols;
  };

  Rel BaseTable() {
    size_t t = rng_->Uniform(tables_.size());
    return {tables_[t].name, columns_[t]};
  }

  Rel Relation(int depth) {
    if (depth < 2 && rng_->Bernoulli(0.18)) {
      // Derived table: a nested sub-select, possibly aggregating.
      std::vector<ScopeCol> inner_scope;
      GenQuery inner = GenerateInner(depth + 1, &inner_scope);
      Rel rel;
      rel.sql = "(" + inner.Render() + ")";
      // inner_scope entries are pushed one per select item, in order.
      for (size_t i = 0; i < inner.items.size(); ++i) {
        GenColumn gc;
        gc.name = inner.items[i].second;
        if (i < inner_scope.size()) {
          gc.type = inner_scope[i].type;
          gc.tame = inner_scope[i].tame;
        }
        rel.cols.push_back(gc);
      }
      return rel;
    }
    return BaseTable();
  }

  GenQuery GenerateInner(int depth, std::vector<ScopeCol>* out_scope) {
    GenQuery q;
    int next_alias = 0;
    auto alias_name = [&next_alias, depth]() {
      return std::string(1, static_cast<char>('a' + next_alias++)) +
             (depth > 0 ? "q" + std::to_string(depth) : "");
    };

    std::vector<ScopeCol> scope;
    Rel from = Relation(depth);
    q.from_sql = from.sql;
    q.from_alias = alias_name();
    for (const GenColumn& c : from.cols) {
      scope.push_back({q.from_alias, c.name, c.type, c.tame});
    }

    // Joins (outer query only, up to 2).
    int num_joins =
        depth == 0 ? static_cast<int>(rng_->UniformInt(0, 2)) : 0;
    for (int j = 0; j < num_joins; ++j) {
      Rel right = Relation(depth);
      GenJoin join;
      join.table_sql = right.sql;
      join.alias = alias_name();
      switch (rng_->Uniform(4)) {
        case 0:
          join.type_sql = "LEFT OUTER JOIN";
          break;
        case 1:
          join.type_sql = "RIGHT OUTER JOIN";
          break;
        default:
          join.type_sql = "JOIN";
          break;
      }
      std::vector<ScopeCol> right_scope;
      for (const GenColumn& c : right.cols) {
        right_scope.push_back({join.alias, c.name, c.type, c.tame});
      }
      // Equi-key: numeric-numeric (cross-type int/double allowed) or
      // same-type.
      std::vector<std::pair<const ScopeCol*, const ScopeCol*>> keys;
      for (const ScopeCol& l : scope) {
        for (const ScopeCol& r : right_scope) {
          bool ok = IsNumericLike(l.type) ? IsNumericLike(r.type)
                                          : l.type == r.type;
          if (ok) keys.emplace_back(&l, &r);
        }
      }
      if (keys.empty()) continue;  // no equi-key possible; skip join
      auto [lk, rk] = keys[rng_->Uniform(keys.size())];
      join.on_conjuncts.push_back(lk->Sql() + " = " + rk->Sql());
      if (rng_->Bernoulli(0.3) && keys.size() > 1) {
        auto [lk2, rk2] = keys[rng_->Uniform(keys.size())];
        join.on_conjuncts.push_back(lk2->Sql() + " = " + rk2->Sql());
      }
      std::vector<ScopeCol> joined_scope = scope;
      joined_scope.insert(joined_scope.end(), right_scope.begin(),
                          right_scope.end());
      if (rng_->Bernoulli(0.25)) {
        join.on_conjuncts.push_back(Predicate(joined_scope, 0));
      }
      scope = std::move(joined_scope);
      q.joins.push_back(std::move(join));
    }

    // WHERE.
    int num_where = static_cast<int>(rng_->UniformInt(0, 3));
    for (int i = 0; i < num_where; ++i) {
      q.where_conjuncts.push_back(Predicate(scope, 1));
    }

    bool aggregate = rng_->Bernoulli(0.45);
    int out_idx = 0;
    auto out_name = [&out_idx, depth]() {
      return (depth > 0 ? "s" : "o") + std::to_string(depth) + "_" +
             std::to_string(out_idx++);
    };

    if (aggregate) {
      int num_groups = static_cast<int>(rng_->UniformInt(0, 2));
      for (int g = 0; g < num_groups; ++g) {
        const ScopeCol& c = scope[rng_->Uniform(scope.size())];
        std::string sql = c.Sql();
        bool dup = false;
        for (const std::string& existing : q.group_by) {
          dup |= existing == sql;
        }
        if (dup) continue;
        q.group_by.push_back(sql);
        q.items.emplace_back(sql, out_name());
        out_scope->push_back({"", q.items.back().second, c.type, c.tame});
      }
      int num_aggs = static_cast<int>(rng_->UniformInt(1, 3));
      for (int a = 0; a < num_aggs; ++a) {
        std::string agg = GenAggCall(scope, out_scope);
        q.items.emplace_back(agg, out_name());
        out_scope->back().name = q.items.back().second;
      }
      if (!q.group_by.empty() && rng_->Bernoulli(0.3)) {
        static const char* kHavingCmp[] = {">", ">=", "<="};
        q.having = std::string("COUNT(*) ") + Pick(rng_, kHavingCmp) + " " +
                   std::to_string(rng_->UniformInt(0, 3));
      }
    } else {
      if (rng_->Bernoulli(0.2)) q.distinct = true;
      int num_items = static_cast<int>(rng_->UniformInt(1, 4));
      for (int i = 0; i < num_items; ++i) {
        if (rng_->Bernoulli(0.3)) {
          std::string e = NumericExpr(scope, 1);
          q.items.emplace_back(e, out_name());
          out_scope->push_back({"", q.items.back().second, TypeKind::kDouble,
                                false});
        } else {
          const ScopeCol& c = scope[rng_->Uniform(scope.size())];
          q.items.emplace_back(c.Sql(), out_name());
          out_scope->push_back({"", q.items.back().second, c.type, c.tame});
        }
      }
    }

    // ORDER BY / LIMIT (outer query only; DISTINCT skips ORDER BY because
    // the analyzer binds sort expressions against the pre-DISTINCT items).
    if (depth == 0 && !q.distinct && rng_->Bernoulli(0.55)) {
      bool full_cover = rng_->Bernoulli(0.6);
      size_t num_keys = full_cover
                            ? q.items.size()
                            : 1 + rng_->Uniform(q.items.size());
      for (size_t k = 0; k < num_keys; ++k) {
        bool asc = rng_->Bernoulli(0.7);
        q.order_by.emplace_back(q.items[k].first, asc);
        ordered_by_.emplace_back(static_cast<int>(k), asc);
      }
      // LIMIT only when the sort covers every output column — otherwise
      // ties at the cut make the result multiset nondeterministic.
      if (full_cover && num_keys == q.items.size() && rng_->Bernoulli(0.6)) {
        q.limit = rng_->UniformInt(0, 15);
      }
    }
    return q;
  }

  std::string GenAggCall(const std::vector<ScopeCol>& scope,
                         std::vector<ScopeCol>* out_scope) {
    std::vector<const ScopeCol*> ints, tame, any;
    for (const ScopeCol& c : scope) {
      any.push_back(&c);
      if (c.type == TypeKind::kInt64) ints.push_back(&c);
      if (c.tame &&
          (c.type == TypeKind::kInt64 || c.type == TypeKind::kDouble)) {
        tame.push_back(&c);
      }
    }
    const ScopeCol& a = *any[rng_->Uniform(any.size())];
    switch (rng_->Uniform(7)) {
      case 0:
        out_scope->push_back({"", "", TypeKind::kInt64, true});
        return "COUNT(*)";
      case 1:
        out_scope->push_back({"", "", TypeKind::kInt64, true});
        return "COUNT(" + a.Sql() + ")";
      case 2:
        out_scope->push_back({"", "", TypeKind::kInt64, true});
        return "COUNT(DISTINCT " + a.Sql() + ")";
      case 3:  // SUM: exact for BIGINT (wrapping); DOUBLE only when tame.
        if (!ints.empty() && rng_->Bernoulli(0.6)) {
          out_scope->push_back({"", "", TypeKind::kInt64, false});
          return "SUM(" + ints[rng_->Uniform(ints.size())]->Sql() + ")";
        }
        if (!tame.empty()) {
          const ScopeCol& t = *tame[rng_->Uniform(tame.size())];
          out_scope->push_back({"", "", t.type, false});
          return "SUM(" + t.Sql() + ")";
        }
        out_scope->push_back({"", "", TypeKind::kInt64, true});
        return "COUNT(*)";
      case 4:  // AVG accumulates in DOUBLE: tame columns only.
        if (!tame.empty()) {
          const ScopeCol& t = *tame[rng_->Uniform(tame.size())];
          out_scope->push_back({"", "", TypeKind::kDouble, false});
          return "AVG(" + t.Sql() + ")";
        }
        out_scope->push_back({"", "", TypeKind::kInt64, true});
        return "COUNT(*)";
      case 5:
        out_scope->push_back({"", "", a.type, a.tame});
        return "MIN(" + a.Sql() + ")";
      default:
        out_scope->push_back({"", "", a.type, a.tame});
        return "MAX(" + a.Sql() + ")";
    }
  }

  Random* rng_;
  const std::vector<TableSpec>& tables_;
  const std::vector<std::vector<GenColumn>>& columns_;
  std::vector<ScopeCol> scope_;
  std::vector<std::pair<int, bool>> ordered_by_;
};

}  // namespace

FuzzCase GenerateCase(uint64_t seed) {
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ee2ULL);
  FuzzCase c;
  c.seed = seed;

  int num_tables = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::vector<GenColumn>> columns;
  for (int t = 0; t < num_tables; ++t) {
    TableSpec spec;
    spec.name = "t" + std::to_string(t);
    spec.num_blocks = static_cast<int>(rng.UniformInt(1, 4));
    std::vector<GenColumn> cols;
    int num_cols = static_cast<int>(rng.UniformInt(2, 5));
    for (int i = 0; i < num_cols; ++i) {
      GenColumn gc;
      gc.name = "c" + std::to_string(i);
      if (i == 0) {
        gc.type = TypeKind::kInt64;  // every table can join on c0
      } else {
        static const TypeKind kTypes[] = {TypeKind::kInt64, TypeKind::kDouble,
                                          TypeKind::kString, TypeKind::kDate,
                                          TypeKind::kBool};
        gc.type = kTypes[rng.Uniform(std::size(kTypes))];
      }
      gc.tame = rng.Bernoulli(0.5);
      cols.push_back(gc);
      Status st = spec.schema.AddField({gc.name, gc.type});
      (void)st;
    }
    int num_rows = static_cast<int>(rng.UniformInt(0, 45));
    for (int r = 0; r < num_rows; ++r) {
      Row row;
      for (const GenColumn& gc : cols) {
        row.fields.push_back(GenValue(&rng, gc));
      }
      spec.rows.push_back(std::move(row));
    }
    columns.push_back(std::move(cols));
    c.tables.push_back(std::move(spec));
  }

  QueryGen gen(&rng, c.tables, columns);
  c.query = gen.Generate(&c.ordered_by);
  c.has_structure = true;
  c.sql = c.query.Render();
  c.variants = c.query.RenderVariants();
  return c;
}

// ---------------------------------------------------------------------------
// Corpus serialization
// ---------------------------------------------------------------------------

namespace {

const char* TypeToken(TypeKind t) {
  switch (t) {
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt64:
      return "BIGINT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kDate:
      return "DATE";
    case TypeKind::kNull:
      return "NULL";
  }
  return "NULL";
}

Result<TypeKind> TypeFromToken(const std::string& s) {
  if (s == "BOOL") return TypeKind::kBool;
  if (s == "BIGINT") return TypeKind::kInt64;
  if (s == "DOUBLE") return TypeKind::kDouble;
  if (s == "STRING") return TypeKind::kString;
  if (s == "DATE") return TypeKind::kDate;
  return Status::ParseError("unknown type token: " + s);
}

/// Percent-encodes everything outside the printable-ASCII range plus '%'
/// and space, so encoded values never contain separators.
std::string PctEncode(const std::string& s) {
  std::string out;
  for (unsigned char ch : s) {
    if (ch > 0x20 && ch < 0x7f && ch != '%') {
      out += static_cast<char>(ch);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", ch);
      out += buf;
    }
  }
  return out;
}

std::string PctDecode(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = std::isxdigit(static_cast<unsigned char>(s[i + 1]))
                   ? std::stoi(s.substr(i + 1, 2), nullptr, 16)
                   : -1;
      if (hi >= 0) {
        out += static_cast<char>(hi);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return "N";
    case TypeKind::kBool:
      return v.bool_v() ? "B:1" : "B:0";
    case TypeKind::kInt64:
      return "I:" + std::to_string(v.int64_v());
    case TypeKind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "D:%a", v.double_v());
      return buf;
    }
    case TypeKind::kString:
      return "S:" + PctEncode(v.str());
    case TypeKind::kDate:
      return "T:" + std::to_string(v.int64_v());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& tok) {
  if (tok == "N") return Value::Null();
  if (tok.size() < 2 || tok[1] != ':') {
    return Status::ParseError("bad value token: " + tok);
  }
  std::string body = tok.substr(2);
  switch (tok[0]) {
    case 'B':
      return Value::Bool(body == "1");
    case 'I':
      return Value::Int64(std::strtoll(body.c_str(), nullptr, 10));
    case 'D':
      return Value::Double(std::strtod(body.c_str(), nullptr));
    case 'S':
      return Value::String(PctDecode(body));
    case 'T':
      return Value::Date(std::strtoll(body.c_str(), nullptr, 10));
  }
  return Status::ParseError("bad value token: " + tok);
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::string SerializeCase(const FuzzCase& c) {
  std::string out;
  out += "SEED " + std::to_string(c.seed) + "\n";
  for (const TableSpec& t : c.tables) {
    out += "TABLE " + t.name + " " +
           std::to_string(t.schema.num_fields()) + " " +
           std::to_string(t.num_blocks) + "\n";
    for (const Field& f : t.schema.fields()) {
      out += "COL " + f.name + " " + TypeToken(f.type) + "\n";
    }
    for (const Row& r : t.rows) {
      out += "ROW";
      for (const Value& v : r.fields) out += " " + EncodeValue(v);
      out += "\n";
    }
    out += "ENDTABLE\n";
  }
  out += "QUERY " + c.sql + "\n";
  for (const std::string& v : c.variants) out += "VARIANT " + v + "\n";
  if (!c.ordered_by.empty()) {
    out += "ORDERED";
    for (auto [idx, asc] : c.ordered_by) {
      out += " " + std::to_string(idx) + (asc ? ":asc" : ":desc");
    }
    out += "\n";
  }
  out += "END\n";
  return out;
}

Result<FuzzCase> ParseCase(const std::string& text) {
  FuzzCase c;
  std::istringstream in(text);
  std::string line;
  TableSpec* table = nullptr;
  int expected_cols = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("SEED ", 0) == 0) {
      c.seed = std::strtoull(line.c_str() + 5, nullptr, 10);
    } else if (line.rfind("TABLE ", 0) == 0) {
      auto toks = SplitWs(line);
      if (toks.size() != 4) return Status::ParseError("bad TABLE line");
      c.tables.emplace_back();
      table = &c.tables.back();
      table->name = toks[1];
      expected_cols = std::atoi(toks[2].c_str());
      table->num_blocks = std::atoi(toks[3].c_str());
    } else if (line.rfind("COL ", 0) == 0) {
      if (table == nullptr) return Status::ParseError("COL outside TABLE");
      auto toks = SplitWs(line);
      if (toks.size() != 3) return Status::ParseError("bad COL line");
      SHARK_ASSIGN_OR_RETURN(TypeKind type, TypeFromToken(toks[2]));
      SHARK_RETURN_NOT_OK(table->schema.AddField({toks[1], type}));
    } else if (line.rfind("ROW", 0) == 0) {
      if (table == nullptr) return Status::ParseError("ROW outside TABLE");
      auto toks = SplitWs(line);
      Row row;
      for (size_t i = 1; i < toks.size(); ++i) {
        SHARK_ASSIGN_OR_RETURN(Value v, DecodeValue(toks[i]));
        row.fields.push_back(std::move(v));
      }
      if (static_cast<int>(row.fields.size()) != expected_cols) {
        return Status::ParseError("ROW arity mismatch in " + table->name);
      }
      table->rows.push_back(std::move(row));
    } else if (line == "ENDTABLE") {
      if (table != nullptr &&
          table->schema.num_fields() != expected_cols) {
        return Status::ParseError("COL count mismatch in " + table->name);
      }
      table = nullptr;
    } else if (line.rfind("QUERY ", 0) == 0) {
      c.sql = line.substr(6);
    } else if (line.rfind("VARIANT ", 0) == 0) {
      c.variants.push_back(line.substr(8));
    } else if (line.rfind("ORDERED", 0) == 0) {
      auto toks = SplitWs(line);
      for (size_t i = 1; i < toks.size(); ++i) {
        size_t colon = toks[i].find(':');
        if (colon == std::string::npos) {
          return Status::ParseError("bad ORDERED token: " + toks[i]);
        }
        c.ordered_by.emplace_back(std::atoi(toks[i].substr(0, colon).c_str()),
                                  toks[i].substr(colon + 1) == "asc");
      }
    } else if (line == "END") {
      break;
    } else {
      return Status::ParseError("unknown corpus line: " + line);
    }
  }
  if (c.sql.empty()) return Status::ParseError("corpus case has no QUERY");
  return c;
}

// ---------------------------------------------------------------------------
// Execution + comparison
// ---------------------------------------------------------------------------

namespace {

bool ValuesMatch(const Value& a, const Value& b) {
  if (a == b) return true;
  // Order-sensitive DOUBLE accumulation (SUM/AVG partials) differs across
  // partitionings by rounding only; allow a small tolerance. NaN-vs-NaN is
  // already covered by operator==.
  if (a.kind() == TypeKind::kDouble && b.kind() == TypeKind::kDouble) {
    double x = a.double_v();
    double y = b.double_v();
    if (std::isnan(x) || std::isnan(y)) return false;
    double diff = std::fabs(x - y);
    return diff <= 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
  }
  return false;
}

bool RowsTolerantEqual(const Row& a, const Row& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (size_t i = 0; i < a.fields.size(); ++i) {
    if (!ValuesMatch(a.fields[i], b.fields[i])) return false;
  }
  return true;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.fields.size(), b.fields.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a.fields[i].Compare(b.fields[i]);
    if (c != 0) return c;
  }
  return a.fields.size() < b.fields.size()
             ? -1
             : (a.fields.size() > b.fields.size() ? 1 : 0);
}

bool RowsExactEqual(const Row& a, const Row& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (size_t i = 0; i < a.fields.size(); ++i) {
    if (!(a.fields[i] == b.fields[i])) return false;
  }
  return true;
}

/// Multiset comparison: canonical-sorted exact pass first (cheap, handles
/// large join outputs), then a greedy tolerant O(n^2) pass for the rounding
/// slack in aggregate outputs. Returns an empty string when equivalent.
std::string CompareRowSets(const std::vector<Row>& want,
                           const std::vector<Row>& got, const char* label) {
  if (want.size() != got.size()) {
    return std::string(label) + ": row count " + std::to_string(got.size()) +
           " != reference " + std::to_string(want.size());
  }
  std::vector<Row> a = want;
  std::vector<Row> b = got;
  auto cmp = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  bool exact = true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsExactEqual(a[i], b[i])) {
      exact = false;
      break;
    }
  }
  if (exact) return "";
  if (a.size() > 20000) {
    return std::string(label) + ": large result differs exactly";
  }
  std::vector<bool> used(b.size(), false);
  for (const Row& ra : a) {
    bool matched = false;
    for (size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && RowsTolerantEqual(ra, b[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return std::string(label) + ": row [" + ra.ToString() +
             "] unmatched in engine output";
    }
  }
  return "";
}

/// Verifies rows are non-descending under the (output column, asc) keys.
std::string CheckSorted(const std::vector<Row>& rows,
                        const std::vector<std::pair<int, bool>>& keys,
                        const char* label) {
  for (size_t i = 1; i < rows.size(); ++i) {
    for (auto [idx, asc] : keys) {
      if (idx < 0 || static_cast<size_t>(idx) >= rows[i].fields.size()) break;
      int c = rows[i - 1].fields[static_cast<size_t>(idx)].Compare(
          rows[i].fields[static_cast<size_t>(idx)]);
      if (c == 0) continue;
      bool ok = asc ? c < 0 : c > 0;
      if (!ok) {
        return std::string(label) + ": output not sorted at row " +
               std::to_string(i) + " [" + rows[i - 1].ToString() + "] vs [" +
               rows[i].ToString() + "]";
      }
      break;
    }
  }
  return "";
}

Result<std::unique_ptr<SharkSession>> BuildSession(const FuzzCase& c,
                                                   uint64_t mem_bytes) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1.0;
  if (mem_bytes != 0) cfg.hardware.mem_bytes_per_node = mem_bytes;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
  for (const TableSpec& t : c.tables) {
    SHARK_RETURN_NOT_OK(
        session->CreateDfsTable(t.name, t.schema, t.rows, t.num_blocks));
  }
  return session;
}

}  // namespace

RunOutcome RunCase(const FuzzCase& c, const RunOptions& opts) {
  RunOutcome out;
  auto fail = [&out](std::string msg) {
    out.ok = false;
    if (out.divergence.empty()) out.divergence = std::move(msg);
  };

  auto shark_r = BuildSession(c, 0);
  if (!shark_r.ok()) {
    fail("session setup failed: " + shark_r.status().ToString());
    return out;
  }
  SharkSession* shark = shark_r->get();

  // Reference oracle (shares only the parser/analyzer with the engines).
  auto stmt = ParseStatement(c.sql);
  Result<QueryResult> reference =
      !stmt.ok() ? Result<QueryResult>(stmt.status())
      : stmt->kind != StatementKind::kSelect
          ? Result<QueryResult>(Status::InvalidArgument("not a SELECT"))
          : ReferenceExecute(*stmt->select, shark->catalog(),
                             shark->context().dfs(), &shark->udfs());

  Result<QueryResult> shark_base = shark->Sql(c.sql);

  if (reference.ok() != shark_base.ok()) {
    fail(std::string("status mismatch: reference ") +
         (reference.ok() ? "ok" : reference.status().ToString()) +
         " vs shark " +
         (shark_base.ok() ? "ok" : shark_base.status().ToString()));
    return out;
  }
  if (!reference.ok()) {
    // Consistent rejection; make sure Hive rejects too, then we're done.
    if (opts.run_hive) {
      auto hive_r = MakeHiveSession(shark);
      if (hive_r.ok() && (*hive_r)->Sql(c.sql).ok()) {
        fail("status mismatch: reference rejected but hive accepted");
        return out;
      }
    }
    out.rejected = true;
    out.rejection = reference.status().ToString();
    return out;
  }

  const std::vector<Row>& ref_rows = reference->rows;
  out.reference_rows = static_cast<int>(ref_rows.size());
  if (reference->schema.num_fields() != shark_base->schema.num_fields()) {
    fail("schema arity mismatch: shark");
    return out;
  }

  std::string d = CompareRowSets(ref_rows, shark_base->rows, "shark");
  if (!d.empty()) fail(d);
  d = CheckSorted(shark_base->rows, c.ordered_by, "shark(order)");
  if (!d.empty()) fail(d);
  d = CheckSorted(ref_rows, c.ordered_by, "reference(order)");
  if (!d.empty()) fail(d);

  if (opts.run_hive) {
    auto hive_r = MakeHiveSession(shark);
    if (!hive_r.ok()) {
      fail("hive session setup failed: " + hive_r.status().ToString());
      return out;
    }
    auto hive_res = (*hive_r)->Sql(c.sql);
    if (!hive_res.ok()) {
      fail("status mismatch: hive rejected: " + hive_res.status().ToString());
    } else {
      d = CompareRowSets(ref_rows, hive_res->rows, "hive");
      if (!d.empty()) fail(d);
      d = CheckSorted(hive_res->rows, c.ordered_by, "hive(order)");
      if (!d.empty()) fail(d);
    }
  }

  if (opts.run_metamorphic) {
    auto run_variant = [&](const std::string& sql, const char* label) {
      auto res = shark->Sql(sql);
      if (!res.ok()) {
        fail(std::string(label) + ": rejected: " + res.status().ToString());
        return;
      }
      std::string diff = CompareRowSets(ref_rows, res->rows, label);
      if (!diff.empty()) fail(diff);
    };

    int orig_threads = shark->options().host_threads;
    shark->options().host_threads = 1;
    run_variant(c.sql, "host_threads=1");
    shark->options().host_threads = 4;
    run_variant(c.sql, "host_threads=4");
    shark->options().host_threads = orig_threads;

    for (size_t i = 0; i < c.variants.size(); ++i) {
      run_variant(c.variants[i],
                  ("variant#" + std::to_string(i)).c_str());
    }

    // Cached (columnar memory store) run.
    bool cached_ok = true;
    for (const TableSpec& t : c.tables) {
      Status st = shark->CacheTable(t.name);
      if (!st.ok()) {
        fail("CacheTable(" + t.name + ") failed: " + st.ToString());
        cached_ok = false;
      }
    }
    if (cached_ok) {
      run_variant(c.sql, "cached");
      // The vectorized batch path and the scalar row interpreter must agree
      // exactly over the columnar store (NULL/NaN/-0.0 key semantics
      // included), so run the cached query once with the flag inverted.
      bool orig_vec = shark->options().vectorized;
      shark->options().vectorized = !orig_vec;
      run_variant(c.sql, orig_vec ? "cached+vectorized=off"
                                  : "cached+vectorized=on");
      shark->options().vectorized = orig_vec;

      // Secondary indexes must never change results, only plans: index every
      // column of every table (B+-tree over the full nasty-value domain),
      // re-run with the planner free to pick IndexRangeScan, with the gather
      // path inverted, and with indexes disabled again as the control.
      bool indexed_ok = true;
      for (const TableSpec& t : c.tables) {
        for (size_t ci = 0; ci < t.schema.fields().size(); ++ci) {
          auto ires = shark->Sql("CREATE INDEX fzidx_" + t.name + "_" +
                                 std::to_string(ci) + " ON " + t.name + "(" +
                                 t.schema.fields()[ci].name + ")");
          if (!ires.ok()) {
            fail("CREATE INDEX on " + t.name + "(" +
                 t.schema.fields()[ci].name +
                 ") failed: " + ires.status().ToString());
            indexed_ok = false;
          }
        }
      }
      if (indexed_ok) {
        run_variant(c.sql, "cached+indexed");
        shark->options().vectorized = !orig_vec;
        run_variant(c.sql, "cached+indexed+vec_inverted");
        shark->options().vectorized = orig_vec;
        bool orig_idx = shark->options().use_indexes;
        shark->options().use_indexes = false;
        run_variant(c.sql, "cached+index_off");
        shark->options().use_indexes = orig_idx;
      }
      for (const TableSpec& t : c.tables) {
        (void)shark->UncacheTable(t.name);  // also drops the indexes
      }
    }

    // Statistics must never change results, only plans: ANALYZE every
    // table, then re-run with the cost-based optimizer choosing the order
    // (DP + PDE re-planning), with the written left-deep order forced, and
    // with re-planning at its hairtrigger setting. The stats-free baseline
    // run above doubles as the stats-off half of the metamorphic pair.
    bool analyzed_ok = true;
    for (const TableSpec& t : c.tables) {
      auto ares = shark->Sql("ANALYZE TABLE " + t.name);
      if (!ares.ok()) {
        fail("ANALYZE TABLE " + t.name +
             " failed: " + ares.status().ToString());
        analyzed_ok = false;
      }
    }
    if (analyzed_ok) {
      run_variant(c.sql, "analyzed+cbo");
      bool orig_ld = shark->options().force_left_deep;
      shark->options().force_left_deep = true;
      run_variant(c.sql, "analyzed+left_deep");
      shark->options().force_left_deep = orig_ld;
      double orig_rf = shark->options().replan_factor;
      shark->options().replan_factor = 1.0001;
      run_variant(c.sql, "analyzed+replan_eager");
      shark->options().replan_factor = orig_rf;
    }

    // Tight memory budget: spill paths must not change results.
    auto tight_r = BuildSession(c, opts.tight_mem_bytes);
    if (!tight_r.ok()) {
      fail("tight-memory session setup failed: " +
           tight_r.status().ToString());
    } else {
      auto res = (*tight_r)->Sql(c.sql);
      if (!res.ok()) {
        fail("tight-memory: rejected: " + res.status().ToString());
      } else {
        std::string diff = CompareRowSets(ref_rows, res->rows, "tight-memory");
        if (!diff.empty()) fail(diff);
      }
    }

    // Concurrent admission: the same query submitted three times at once
    // through the JobManager (staggered arrivals, one copy declaring a
    // memory demand so admission control queues it) must match the serial
    // reference run exactly. Flushes out cross-job shuffle/cache state
    // leaks that only occur when jobs interleave on the event loop.
    auto conc_r = BuildSession(c, 0);
    if (!conc_r.ok()) {
      fail("concurrent-admission session setup failed: " +
           conc_r.status().ToString());
    } else {
      SharkSession* cs = conc_r->get();
      uint64_t headroom =
          cs->context().memory_manager().AdmissionHeadroomBytes();
      std::vector<QueryResult> results(3);
      std::vector<JobSpec> specs(3);
      for (int i = 0; i < 3; ++i) {
        specs[static_cast<size_t>(i)].label =
            "conc" + std::to_string(i);
        specs[static_cast<size_t>(i)].arrival_vtime = 0.001 * i;
        if (i == 2) {
          specs[static_cast<size_t>(i)].mem_demand_bytes = headroom;
        }
        QueryResult* sink = &results[static_cast<size_t>(i)];
        specs[static_cast<size_t>(i)].body = [cs, sink,
                                              &c]() -> Status {
          auto res = cs->Sql(c.sql);
          SHARK_RETURN_NOT_OK(res.status());
          *sink = std::move(*res);
          return Status::OK();
        };
      }
      JobManager jm(&cs->context());
      std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].status.ok()) {
          fail("concurrent-admission job " + std::to_string(i) +
               " failed: " + outcomes[i].status.ToString());
          continue;
        }
        std::string diff = CompareRowSets(
            ref_rows, results[i].rows,
            ("concurrent-admission#" + std::to_string(i)).c_str());
        if (!diff.empty()) fail(diff);
        diff = CheckSorted(results[i].rows, c.ordered_by,
                           "concurrent-admission(order)");
        if (!diff.empty()) fail(diff);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

namespace {

bool Diverges(const FuzzCase& c, const RunOptions& opts) {
  return !RunCase(c, opts).ok;
}

/// Re-renders SQL/variants and recomputes the sortedness contract after a
/// structural mutation.
void Rerender(FuzzCase* c) {
  c->sql = c->query.Render();
  c->variants = c->query.RenderVariants();
  c->ordered_by.clear();
  for (const auto& [expr, asc] : c->query.order_by) {
    for (size_t i = 0; i < c->query.items.size(); ++i) {
      if (c->query.items[i].first == expr) {
        c->ordered_by.emplace_back(static_cast<int>(i), asc);
        break;
      }
    }
  }
}

}  // namespace

FuzzCase MinimizeCase(const FuzzCase& c, const RunOptions& opts) {
  if (!Diverges(c, opts)) return c;
  FuzzCase cur = c;

  bool changed = true;
  while (changed) {
    changed = false;

    // Clause deletion (greedy): try each structural simplification; keep it
    // if the case still diverges. Invalid mutants (dangling aliases etc.)
    // are rejected consistently by every oracle, so they stop diverging and
    // revert automatically.
    if (cur.has_structure) {
      auto try_mutation = [&](const std::function<bool(GenQuery*)>& mut) {
        FuzzCase cand = cur;
        if (!mut(&cand.query)) return;
        Rerender(&cand);
        if (Diverges(cand, opts)) {
          cur = std::move(cand);
          changed = true;
        }
      };

      try_mutation([](GenQuery* q) {
        if (q->limit < 0) return false;
        q->limit = -1;
        return true;
      });
      try_mutation([](GenQuery* q) {
        if (q->order_by.empty()) return false;
        q->order_by.clear();
        q->limit = -1;
        return true;
      });
      try_mutation([](GenQuery* q) {
        if (q->having.empty()) return false;
        q->having.clear();
        return true;
      });
      try_mutation([](GenQuery* q) {
        if (!q->distinct) return false;
        q->distinct = false;
        return true;
      });
      for (size_t i = 0; i < cur.query.where_conjuncts.size(); ++i) {
        try_mutation([i](GenQuery* q) {
          if (i >= q->where_conjuncts.size()) return false;
          q->where_conjuncts.erase(q->where_conjuncts.begin() +
                                   static_cast<long>(i));
          return true;
        });
      }
      for (size_t j = cur.query.joins.size(); j-- > 0;) {
        try_mutation([j](GenQuery* q) {
          if (j >= q->joins.size()) return false;
          q->joins.erase(q->joins.begin() + static_cast<long>(j));
          return true;
        });
      }
      for (size_t j = 0; j < cur.query.joins.size(); ++j) {
        for (size_t k = 0; k < cur.query.joins[j].on_conjuncts.size(); ++k) {
          try_mutation([j, k](GenQuery* q) {
            if (j >= q->joins.size() ||
                q->joins[j].on_conjuncts.size() <= 1 ||
                k >= q->joins[j].on_conjuncts.size()) {
              return false;
            }
            q->joins[j].on_conjuncts.erase(
                q->joins[j].on_conjuncts.begin() + static_cast<long>(k));
            return true;
          });
        }
      }
      for (size_t i = cur.query.items.size(); i-- > 0;) {
        try_mutation([i](GenQuery* q) {
          if (q->items.size() <= 1 || i >= q->items.size()) return false;
          q->items.erase(q->items.begin() + static_cast<long>(i));
          return true;
        });
      }
      for (size_t i = cur.query.group_by.size(); i-- > 0;) {
        try_mutation([i](GenQuery* q) {
          if (i >= q->group_by.size()) return false;
          q->group_by.erase(q->group_by.begin() + static_cast<long>(i));
          return true;
        });
      }
    }

    // Variant pruning.
    for (size_t i = cur.variants.size(); i-- > 0;) {
      FuzzCase cand = cur;
      cand.variants.erase(cand.variants.begin() + static_cast<long>(i));
      if (Diverges(cand, opts)) {
        cur = std::move(cand);
        changed = true;
      }
    }

    // Table pruning (queries referencing a dropped table are rejected
    // consistently, so they stop diverging and revert).
    if (cur.tables.size() > 1) {
      for (size_t t = cur.tables.size(); t-- > 0;) {
        if (cur.tables.size() <= 1) break;
        FuzzCase cand = cur;
        cand.tables.erase(cand.tables.begin() + static_cast<long>(t));
        if (Diverges(cand, opts)) {
          cur = std::move(cand);
          changed = true;
        }
      }
    }

    // Row deletion: shrink each table with window removal (ddmin-style).
    for (size_t t = 0; t < cur.tables.size(); ++t) {
      size_t window = std::max<size_t>(cur.tables[t].rows.size() / 2, 1);
      while (window >= 1) {
        bool removed_any = false;
        for (size_t start = 0; start < cur.tables[t].rows.size();) {
          FuzzCase cand = cur;
          auto& rows = cand.tables[t].rows;
          size_t end = std::min(start + window, rows.size());
          rows.erase(rows.begin() + static_cast<long>(start),
                     rows.begin() + static_cast<long>(end));
          if (Diverges(cand, opts)) {
            cur = std::move(cand);
            removed_any = true;
            changed = true;
          } else {
            start += window;
          }
        }
        if (window == 1) break;
        window = removed_any ? std::max<size_t>(window / 2, 1) : window / 2;
      }
    }
  }
  return cur;
}

}  // namespace fuzz
}  // namespace shark
