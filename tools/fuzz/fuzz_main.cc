// Differential SQL fuzzer driver.
//
//   shark_fuzz [--seed-start N] [--seeds N] [--out-dir DIR] [--no-hive]
//              [--no-meta] [--no-minimize] [--verbose]
//   shark_fuzz --replay PATH [PATH...]
//
// Default mode generates `--seeds` cases starting at `--seed-start`, runs
// each through the three oracles (Shark, Hive, reference evaluator) plus the
// metamorphic variants, minimizes any divergence, and prints it (also writing
// it under --out-dir when given). --replay parses serialized corpus cases
// (files or directories of files) and reruns them. Exit code is nonzero if
// any case diverged.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/fuzz/fuzz_harness.h"

namespace {

using shark::fuzz::FuzzCase;
using shark::fuzz::RunOptions;
using shark::fuzz::RunOutcome;

struct Stats {
  int run = 0;
  int rejected = 0;
  int diverged = 0;
};

int ReplayPath(const std::string& path, const RunOptions& opts, Stats* stats,
               bool verbose) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  int failures = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      ++failures;
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = shark::fuzz::ParseCase(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    RunOutcome out = shark::fuzz::RunCase(*parsed, opts);
    ++stats->run;
    if (out.rejected) ++stats->rejected;
    if (!out.ok) {
      ++stats->diverged;
      ++failures;
      std::fprintf(stderr, "DIVERGENCE %s: %s\n", file.c_str(),
                   out.divergence.c_str());
    } else if (verbose) {
      std::fprintf(stderr, "ok %s%s%s\n", file.c_str(),
                   out.rejected ? " (rejected: " : "",
                   out.rejected ? (out.rejection + ")").c_str() : "");
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed_start = 1;
  uint64_t num_seeds = 100;
  std::string out_dir;
  std::string export_dir;  // write every generated case here (corpus seeding)
  std::vector<std::string> replay_paths;
  bool replay = false;
  bool minimize = true;
  bool verbose = false;
  RunOptions opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed-start") {
      seed_start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seeds") {
      num_seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--export-dir") {
      export_dir = next();
    } else if (arg == "--replay") {
      replay = true;
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        replay_paths.push_back(argv[++i]);
      }
    } else if (arg == "--no-hive") {
      opts.run_hive = false;
    } else if (arg == "--no-meta") {
      opts.run_metamorphic = false;
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  Stats stats;
  int failures = 0;

  if (replay) {
    if (replay_paths.empty()) {
      std::fprintf(stderr, "--replay needs at least one path\n");
      return 2;
    }
    for (const std::string& p : replay_paths) {
      failures += ReplayPath(p, opts, &stats, verbose);
    }
  } else {
    for (uint64_t s = seed_start; s < seed_start + num_seeds; ++s) {
      FuzzCase c = shark::fuzz::GenerateCase(s);
      if (verbose) {
        std::fprintf(stderr, "seed %llu\n%s", (unsigned long long)s,
                     shark::fuzz::SerializeCase(c).c_str());
      }
      if (!export_dir.empty()) {
        std::filesystem::create_directories(export_dir);
        std::ofstream of(export_dir + "/gen_seed" + std::to_string(s) +
                         ".txt");
        of << shark::fuzz::SerializeCase(c);
      }
      RunOutcome out = shark::fuzz::RunCase(c, opts);
      ++stats.run;
      if (verbose) {
        std::fprintf(stderr, "seed %llu: %s, %d reference rows\n",
                     (unsigned long long)s,
                     out.ok ? (out.rejected ? "rejected" : "ok") : "DIVERGED",
                     out.reference_rows);
      }
      if (out.rejected) ++stats.rejected;
      if (!out.ok) {
        ++stats.diverged;
        ++failures;
        std::fprintf(stderr, "DIVERGENCE seed=%llu: %s\n",
                     (unsigned long long)s, out.divergence.c_str());
        FuzzCase small = minimize ? shark::fuzz::MinimizeCase(c, opts) : c;
        std::string text = shark::fuzz::SerializeCase(small);
        std::fprintf(stderr, "--- minimized case ---\n%s", text.c_str());
        if (!out_dir.empty()) {
          std::filesystem::create_directories(out_dir);
          std::string file = out_dir + "/case_seed" + std::to_string(s) +
                             ".txt";
          std::ofstream of(file);
          of << text;
          std::fprintf(stderr, "written to %s\n", file.c_str());
        }
      }
    }
  }

  std::printf("ran %d cases: %d agreed, %d consistently rejected, "
              "%d diverged\n",
              stats.run, stats.run - stats.diverged, stats.rejected,
              stats.diverged);
  return failures == 0 ? 0 : 1;
}
