#ifndef SHARK_TOOLS_FUZZ_FUZZ_HARNESS_H_
#define SHARK_TOOLS_FUZZ_FUZZ_HARNESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relation/row.h"
#include "relation/types.h"

namespace shark {
namespace fuzz {

/// One generated input table (written to the simulated DFS before running).
struct TableSpec {
  std::string name;
  Schema schema;
  std::vector<Row> rows;
  int num_blocks = 2;
};

/// Structured form of a generated query, kept so the minimizer can delete
/// clauses and re-render instead of doing string surgery on SQL. Expressions
/// are stored as already-rendered SQL fragments.
struct GenJoin {
  std::string table_sql;  // table name or "(SELECT ...)"
  std::string alias;
  std::vector<std::string> on_conjuncts;
  std::string type_sql;  // "JOIN" | "LEFT OUTER JOIN" | "RIGHT OUTER JOIN"
};

struct GenQuery {
  bool distinct = false;
  std::vector<std::pair<std::string, std::string>> items;  // expr sql, alias
  std::string from_sql;
  std::string from_alias;
  std::vector<GenJoin> joins;
  std::vector<std::string> where_conjuncts;
  std::vector<std::string> group_by;
  std::string having;  // empty = none
  std::vector<std::pair<std::string, bool>> order_by;  // expr sql, ascending
  int64_t limit = -1;

  std::string Render() const;

  /// Metamorphic rewrites that must not change the result multiset:
  /// reversed WHERE/ON conjunct order, commuted join inputs (with the
  /// outer-join side flipped accordingly). Empty fragments are skipped.
  std::vector<std::string> RenderVariants() const;
};

/// A complete differential-testing case: tables + query (+ pre-rendered
/// metamorphic variants). `ordered_by` records the output-sortedness
/// contract when the query has a top-level ORDER BY: pairs of (output
/// column index, ascending).
struct FuzzCase {
  uint64_t seed = 0;
  std::vector<TableSpec> tables;
  std::string sql;
  std::vector<std::string> variants;
  std::vector<std::pair<int, bool>> ordered_by;

  /// Set for generated cases; enables clause-level minimization.
  bool has_structure = false;
  GenQuery query;
};

/// Deterministically generates a case from a seed: random schemas whose
/// data includes the nasty values (NULL, NaN, +/-0.0, +/-Inf, empty strings,
/// int64 above 2^53, extreme dates) and a random query from the HiveQL
/// subset both engines support.
FuzzCase GenerateCase(uint64_t seed);

// -- corpus serialization ----------------------------------------------------

/// Self-contained single-file text form (tables, rows with typed exact
/// encodings, query, variants, ordering contract). Round-trips bit-exactly,
/// including -0.0, NaN and infinities.
std::string SerializeCase(const FuzzCase& c);
Result<FuzzCase> ParseCase(const std::string& text);

// -- execution ---------------------------------------------------------------

struct RunOptions {
  bool run_hive = true;
  bool run_metamorphic = true;
  /// Tight memory budget (bytes per node) for the memory-pressure variant.
  uint64_t tight_mem_bytes = 1ULL << 22;
};

struct RunOutcome {
  /// True when every oracle and variant agreed (or the query was
  /// consistently rejected by all of them).
  bool ok = true;
  /// True when the query was rejected (parse/analysis error) by all
  /// oracles consistently.
  bool rejected = false;
  /// Human-readable description of the first divergence.
  std::string divergence;
  /// Reference-oracle output row count (diagnostics; 0 when rejected).
  int reference_rows = 0;
  /// The parse/analysis error for consistently-rejected cases (diagnostics).
  std::string rejection;
};

/// Runs the case through the three oracles (Shark, Hive, reference
/// evaluator) and the metamorphic variants (cached vs uncached, vectorized
/// batch path vs scalar interpreter over the cached columnar store,
/// secondary indexes on every column vs indexes disabled,
/// host_threads 1 vs 4, tight vs ample memory, conjunct order, join
/// commutation),
/// comparing all results against the reference as multisets with exact
/// Value equality plus a small tolerance for DOUBLE aggregate outputs, and
/// checking the ORDER BY sortedness contract.
RunOutcome RunCase(const FuzzCase& c, const RunOptions& opts = RunOptions());

/// Greedy minimizer: repeatedly deletes clauses (WHERE/ON conjuncts,
/// HAVING, ORDER BY/LIMIT, joins, select items, DISTINCT), variants, unused
/// tables and data rows while the case keeps diverging.
FuzzCase MinimizeCase(const FuzzCase& c, const RunOptions& opts = RunOptions());

}  // namespace fuzz
}  // namespace shark

#endif  // SHARK_TOOLS_FUZZ_FUZZ_HARNESS_H_
