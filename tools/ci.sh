#!/usr/bin/env bash
# Full local CI: tier-1 tests in a plain build, then the same suite under
# AddressSanitizer, ThreadSanitizer and UndefinedBehaviorSanitizer, plus a
# smoke run of the memory-pressure bench (spill paths end to end). Each
# phase uses its own build directory so caches stay valid across runs.
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1 (plain build) ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== memory-pressure bench (smoke) ==="
cmake --build build -j "$(nproc)" --target bench_memory_pressure
build/bench/bench_memory_pressure --smoke

echo "=== metrics (timeline schema + bench regression gate) ==="
# Deterministic virtual-seconds make the gate noise-free: run the CI-sized
# fig08 bench, validate the exported timeline JSON against the schema, diff
# the BENCH_* lines against the committed baseline, and self-test the gate
# (an injected 2x slowdown must be flagged).
cmake --build build -j "$(nproc)" --target bench_fig08_pde_join
metrics_dir=$(mktemp -d)
trap 'rm -rf "$metrics_dir"' EXIT
build/bench/bench_fig08_pde_join --smoke \
  --metrics-out "$metrics_dir/fig08_metrics.json" \
  | tee "$metrics_dir/fig08.log"
tools/bench_gate --validate-timeline "$metrics_dir/fig08_metrics.json"
tools/bench_gate --baseline bench/bench_baseline.json \
  --current "$metrics_dir/fig08.log"
tools/bench_gate --self-test

echo "=== vectorized execution (scalar-path smoke + kernel floors) ==="
# The batch path is a pure host-side optimization: re-running the fig08
# smoke with the scalar row path forced must reproduce the committed
# virtual-seconds baseline exactly, and the vectorized kernels must beat
# row-at-a-time execution by the conservative wall-clock floors.
build/bench/bench_fig08_pde_join --smoke --no-vectorized \
  --metrics-out "$metrics_dir/fig08_novec_metrics.json" \
  | tee "$metrics_dir/fig08_novec.log"
tools/bench_gate --baseline bench/bench_baseline.json \
  --current "$metrics_dir/fig08_novec.log"
cmake --build build -j "$(nproc)" --target bench_micro bench_fig05_pavlo_scan_agg
build/bench/bench_micro --vector-sweep | tee "$metrics_dir/vector.log"
build/bench/bench_fig05_pavlo_scan_agg --vector-smoke \
  | tee -a "$metrics_dir/vector.log"
tools/bench_gate --vector-floors --baseline bench/bench_baseline.json \
  --current "$metrics_dir/vector.log"

echo "=== cost-based optimizer (join bench + floors) ==="
# bench_joins runs star and chain multi-join queries in every planning mode
# (naive written order, ANALYZE'd CBO, stale statistics with and without PDE
# re-planning); the gate enforces the committed floors: CBO >= 2x over the
# naive order on at least one query, stale+replan within 1.5x of the best
# static plan, and at least one mid-query re-plan actually firing. The
# ANALYZE runs route every column through the src/common/histogram merge
# path, which the UBSan ctest pass below re-covers under
# -fsanitize=undefined via stats_test and planner_test.
cmake --build build -j "$(nproc)" --target bench_joins
build/bench/bench_joins --smoke | tee "$metrics_dir/joins.log"
tools/bench_gate --join-floors --baseline bench/bench_baseline.json \
  --current "$metrics_dir/joins.log"

echo "=== differential fuzz (fixed seeds) ==="
# Deterministic: same seeds every run, bounded runtime. Replays the minimized
# regression corpus, then sweeps a fixed seed range through Shark vs Hive vs
# the reference evaluator plus all metamorphic variants.
cmake --build build -j "$(nproc)" --target shark_fuzz
build/tools/fuzz/shark_fuzz --replay tests/fuzz_corpus
build/tools/fuzz/shark_fuzz --seed-start 1 --seeds "${FUZZ_SEEDS:-500}"

echo "=== serving (shark_server loopback + admission floors) ==="
# bench_serving's sweep drives concurrent sessions through the JobManager's
# admission control (deterministic virtual-time latencies), then the loopback
# phase pushes the same mix through a real shark_server TCP socket with 8
# concurrent client connections. The gate enforces the committed floors:
# saturation QPS, low-load p99, and zero dropped loopback queries.
cmake --build build -j "$(nproc)" --target bench_serving shark_server
build/bench/bench_serving --smoke | tee "$metrics_dir/serving.log"
tools/bench_gate --serving-floors --baseline bench/bench_baseline.json \
  --current "$metrics_dir/serving.log"

echo "=== observability plane (endpoint schema + determinism) ==="
# tools/obs_check starts shark_server with the HTTP observability listener on
# an ephemeral port, drives a loopback workload (including a client-supplied
# QUERYID), and asserts /healthz, /metrics (tiny stdlib Prometheus parser,
# per-session latency gauges), /queries?n + /queries/<id> JSON schema, the
# pinned STATS key set, and the JSONL query-log sink. The serving floors gate
# above already re-checked virtual-time determinism with the plane enabled
# (BENCH_serving_obs.json: virtual_identical must be true, plane overhead
# under the committed ceiling).
tools/obs_check build/src/shark_server

echo "=== secondary indexes (lookup bench + floors) ==="
# bench_lookup compares the B+-tree IndexRangeScan against the full columnar
# scan across selectivity points (virtual-time deterministic), then sweeps
# open-loop point lookups through the JobManager with indexes on vs off. The
# gate enforces the committed floors: the selective point must plan as an
# IndexRangeScan and beat the scan by >= 5x, the indexed sweep must lift
# saturation QPS by >= 10x, and indexed p99 must stay under the ceiling.
cmake --build build -j "$(nproc)" --target bench_lookup
build/bench/bench_lookup --smoke | tee "$metrics_dir/lookup.log"
tools/bench_gate --index-floors --baseline bench/bench_baseline.json \
  --current "$metrics_dir/lookup.log"

echo "=== concurrent jobs under ThreadSanitizer ==="
# The JobManager baton (one mutex handoff per park/resume) and the server's
# thread-per-connection front-end are the only places engine state crosses
# host threads; a race here breaks the determinism guarantee silently, so
# these tests get a dedicated TSan pass before the full-suite one below.
cmake -B build-tsan -S . -DSHARK_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" --target shark_tests
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  build-tsan/tests/shark_tests --gtest_filter='ConcurrentJobsTest.*:FailingQueryCleanupTest.*:DeterminismTest.ConcurrentJobs*:DeterminismTest.Indexed*:DeterminismTest.Observability*:IndexSqlTest.*:ServerTest.*:HttpListenerTest.*'

echo "=== AddressSanitizer ==="
tools/check_asan.sh

echo "=== ThreadSanitizer ==="
tools/check_tsan.sh

echo "=== UndefinedBehaviorSanitizer ==="
tools/check_ubsan.sh

echo "CI: all phases passed"
