#!/usr/bin/env bash
# Full local CI: tier-1 tests in a plain build, then the same suite under
# AddressSanitizer, ThreadSanitizer and UndefinedBehaviorSanitizer, plus a
# smoke run of the memory-pressure bench (spill paths end to end). Each
# phase uses its own build directory so caches stay valid across runs.
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1 (plain build) ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== memory-pressure bench (smoke) ==="
cmake --build build -j "$(nproc)" --target bench_memory_pressure
build/bench/bench_memory_pressure --smoke

echo "=== differential fuzz (fixed seeds) ==="
# Deterministic: same seeds every run, bounded runtime. Replays the minimized
# regression corpus, then sweeps a fixed seed range through Shark vs Hive vs
# the reference evaluator plus all metamorphic variants.
cmake --build build -j "$(nproc)" --target shark_fuzz
build/tools/fuzz/shark_fuzz --replay tests/fuzz_corpus
build/tools/fuzz/shark_fuzz --seed-start 1 --seeds "${FUZZ_SEEDS:-500}"

echo "=== AddressSanitizer ==="
tools/check_asan.sh

echo "=== ThreadSanitizer ==="
tools/check_tsan.sh

echo "=== UndefinedBehaviorSanitizer ==="
tools/check_ubsan.sh

echo "CI: all phases passed"
