#!/usr/bin/env bash
# Full local CI: tier-1 tests in a plain build, then the same suite under
# AddressSanitizer and ThreadSanitizer. Each phase uses its own build
# directory so caches stay valid across runs.
#
# Usage: tools/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1 (plain build) ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== AddressSanitizer ==="
tools/check_asan.sh

echo "=== ThreadSanitizer ==="
tools/check_tsan.sh

echo "CI: all phases passed"
