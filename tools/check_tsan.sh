#!/usr/bin/env bash
# Builds the tier-1 test suite under ThreadSanitizer and runs it. The
# host-parallel task execution (work-stealing pool + shared substrate) must
# come back clean: any data race here can silently break the simulator's
# bit-for-bit determinism guarantee.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSHARK_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" --target shark_tests

# halt_on_error: fail fast, and second_deadlock_stack for lock diagnostics.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "TSan: all tests clean"
