#!/usr/bin/env bash
# Builds the tier-1 test suite under AddressSanitizer (+ leak checking) and
# runs it. The scheduler's trace recording holds raw StageTrace/TaskTrace
# pointers across a growing stage vector, and fault injection exercises
# erase-while-iterating paths — exactly the kind of code ASan keeps honest.
#
# Usage: tools/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DSHARK_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)" --target shark_tests

ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "ASan: all tests clean"
