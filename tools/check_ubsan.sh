#!/usr/bin/env bash
# Builds the tier-1 test suite under UndefinedBehaviorSanitizer and runs it.
# The memory arbiter does a lot of unsigned budget arithmetic (headroom,
# ledger releases, spill-partition counts) where wraparound bugs hide, and
# the cost model mixes double/uint64 conversions — UBSan's signed-overflow,
# shift and float-cast checks cover exactly that.
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DSHARK_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j "$(nproc)" --target shark_tests

UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "UBSan: all tests clean"
