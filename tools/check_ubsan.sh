#!/usr/bin/env bash
# Builds the tier-1 test suite under UndefinedBehaviorSanitizer and runs it.
# The memory arbiter does a lot of unsigned budget arithmetic (headroom,
# ledger releases, spill-partition counts) where wraparound bugs hide, and
# the cost model mixes double/uint64 conversions — UBSan's signed-overflow,
# shift and float-cast checks cover exactly that.
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DSHARK_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j "$(nproc)" --target shark_tests --target shark_fuzz

UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Differential fuzz under UBSan: the nasty-value corpus plus a fixed seed
# sweep drive exactly the double<->int64 casts and overflow paths the
# sanitizer is here to police.
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  "$BUILD_DIR"/tools/fuzz/shark_fuzz --replay tests/fuzz_corpus
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  "$BUILD_DIR"/tools/fuzz/shark_fuzz --seed-start 1 --seeds "${UBSAN_FUZZ_SEEDS:-100}"

echo "UBSan: all tests clean"
