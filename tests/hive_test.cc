#include <map>

#include <gtest/gtest.h>

#include "hive/hive_engine.h"
#include "workloads/pavlo.h"

namespace shark {
namespace {

class HiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    cfg.virtual_data_scale = 100.0;
    shark_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    PavloConfig pavlo;
    pavlo.rankings_rows = 2000;
    pavlo.uservisits_rows = 6000;
    pavlo.rankings_blocks = 8;
    pavlo.uservisits_blocks = 16;
    ASSERT_TRUE(GeneratePavloTables(shark_.get(), pavlo).ok());

    auto hive = MakeHiveSession(shark_.get());
    ASSERT_TRUE(hive.ok()) << hive.status().ToString();
    hive_ = std::move(*hive);
  }

  std::unique_ptr<SharkSession> shark_;
  std::unique_ptr<SharkSession> hive_;
};

TEST(HiveHeuristicTest, ReducerCounts) {
  EXPECT_EQ(HiveReducerHeuristic(0, 1 << 30), 1);
  EXPECT_EQ(HiveReducerHeuristic(1 << 30, 1 << 30), 1);
  EXPECT_EQ(HiveReducerHeuristic((1ULL << 30) + 1, 1 << 30), 2);
  EXPECT_EQ(HiveReducerHeuristic(100ULL << 30, 1 << 30), 100);
}

TEST_F(HiveTest, ProfileIsHadoop) {
  EXPECT_EQ(hive_->context().profile().name, "hadoop");
  EXPECT_TRUE(hive_->context().profile().shuffle_through_disk);
  EXPECT_TRUE(hive_->context().profile().materialize_stages_to_dfs);
  EXPECT_FALSE(hive_->context().profile().memory_store);
  EXPECT_FALSE(hive_->options().pde);
}

TEST_F(HiveTest, SharedWarehouseMirrored) {
  EXPECT_TRUE(hive_->catalog().Exists("rankings"));
  EXPECT_TRUE(hive_->catalog().Exists("uservisits"));
  // Same DFS object: both engines scan identical blocks.
  EXPECT_EQ(&hive_->context().dfs(), &shark_->context().dfs());
}

TEST_F(HiveTest, SameAnswersAsShark) {
  const std::string query = PavloAggregationCoarseQuery();
  auto shark_result = shark_->Sql(query);
  auto hive_result = hive_->Sql(query);
  ASSERT_TRUE(shark_result.ok()) << shark_result.status().ToString();
  ASSERT_TRUE(hive_result.ok()) << hive_result.status().ToString();
  std::map<std::string, double> a, b;
  for (const Row& r : shark_result->rows) {
    a[r.Get(0).str()] = r.Get(1).double_v();
  }
  for (const Row& r : hive_result->rows) {
    b[r.Get(0).str()] = r.Get(1).double_v();
  }
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [k, v] : a) {
    ASSERT_TRUE(b.count(k) > 0) << k;
    EXPECT_NEAR(v, b[k], 1e-9);
  }
}

TEST_F(HiveTest, SharkIsMuchFasterOnSelection) {
  const std::string query = PavloSelectionQuery(9000);
  auto hive_result = hive_->Sql(query);
  ASSERT_TRUE(hive_result.ok());
  auto shark_disk = shark_->Sql(query);
  ASSERT_TRUE(shark_disk.ok());
  ASSERT_TRUE(shark_->CacheTable("rankings").ok());
  auto shark_mem = shark_->Sql(query);
  ASSERT_TRUE(shark_mem.ok());
  // Paper Fig 5: Shark(mem) << Shark(disk) < Hive.
  EXPECT_LT(shark_mem->metrics.virtual_seconds,
            shark_disk->metrics.virtual_seconds);
  EXPECT_LT(shark_disk->metrics.virtual_seconds,
            hive_result->metrics.virtual_seconds);
  EXPECT_GT(hive_result->metrics.virtual_seconds,
            10 * shark_mem->metrics.virtual_seconds);
}

TEST_F(HiveTest, JoinQueryAgreesAcrossEngines) {
  const std::string query = PavloJoinQuery();
  auto shark_result = shark_->Sql(query);
  auto hive_result = hive_->Sql(query);
  ASSERT_TRUE(shark_result.ok()) << shark_result.status().ToString();
  ASSERT_TRUE(hive_result.ok()) << hive_result.status().ToString();
  EXPECT_EQ(shark_result->rows.size(), hive_result->rows.size());
  EXPECT_GT(hive_result->metrics.virtual_seconds,
            shark_result->metrics.virtual_seconds);
}

TEST_F(HiveTest, TunedReducersBeatDefaultHeuristic) {
  // The heuristic picks very few reducers for a small virtual input; tuning
  // to the cluster width should not be slower.
  const std::string query = PavloAggregationFineQuery();
  auto untuned = hive_->Sql(query);
  ASSERT_TRUE(untuned.ok());

  auto tuned_session = MakeHiveSession(shark_.get(), HiveConfig{8, 1ULL << 30});
  ASSERT_TRUE(tuned_session.ok());
  auto tuned = (*tuned_session)->Sql(query);
  ASSERT_TRUE(tuned.ok());
  EXPECT_LE(tuned->metrics.virtual_seconds,
            untuned->metrics.virtual_seconds * 1.05);
  EXPECT_EQ(tuned->rows.size(), untuned->rows.size());
}

}  // namespace
}  // namespace shark
