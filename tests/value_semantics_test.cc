// Value semantics on the nasty-value matrix: ==, Compare and Hash must agree
// with each other on NULL, NaN, +/-0.0, +/-Inf, integers above 2^53 and
// extreme dates, because grouping, hash joins and sorting each use a
// different one of the three and silently diverge when they disagree.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/column.h"
#include "relation/value.h"
#include "sql/session.h"

namespace shark {
namespace {

constexpr int64_t kTwo53 = 9007199254740992;  // 2^53

std::vector<Value> NastyMatrix() {
  std::vector<Value> v;
  v.push_back(Value::Null());
  v.push_back(Value::Bool(false));
  v.push_back(Value::Bool(true));
  for (int64_t i : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42}, kTwo53,
                    kTwo53 + 1, kTwo53 + 2, -(kTwo53 + 1), INT64_MAX,
                    INT64_MAX - 1, INT64_MIN, INT64_MIN + 1}) {
    v.push_back(Value::Int64(i));
  }
  for (double d : {0.0, -0.0, 1.0, -1.0, 2.5, std::nan(""), -std::nan(""),
                   HUGE_VAL, -HUGE_VAL, static_cast<double>(kTwo53),
                   9007199254740994.0, 1e308, -1e308, 1e-300,
                   9223372036854775808.0, -9223372036854775808.0}) {
    v.push_back(Value::Double(d));
  }
  v.push_back(Value::String(""));
  v.push_back(Value::String("a"));
  v.push_back(Value::String("it's"));
  v.push_back(Value::Date(-719162));  // 0001-01-01
  v.push_back(Value::Date(0));
  v.push_back(Value::Date(2932896));  // 9999-12-31
  return v;
}

TEST(ValueSemanticsTest, EqualityHashCompareAgree) {
  std::vector<Value> vals = NastyMatrix();
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      const bool eq = a == b;
      EXPECT_EQ(eq, b == a) << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(eq, a.Compare(b) == 0)
          << a.ToString() << " vs " << b.ToString();
      if (eq) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
      // Antisymmetry of the total order.
      const int c = a.Compare(b), r = b.Compare(a);
      EXPECT_EQ(c > 0 ? 1 : (c < 0 ? -1 : 0), r > 0 ? -1 : (r < 0 ? 1 : 0))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueSemanticsTest, CompareIsStrictWeakOrder) {
  std::vector<Value> vals = NastyMatrix();
  // Transitivity over all triples (the matrix is small enough to be cheap).
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      for (const Value& c : vals) {
        if (a.Compare(b) < 0 && b.Compare(c) < 0) {
          EXPECT_LT(a.Compare(c), 0) << a.ToString() << " < " << b.ToString()
                                     << " < " << c.ToString();
        }
        if (a.Compare(b) == 0 && b.Compare(c) == 0) {
          EXPECT_EQ(a.Compare(c), 0) << a.ToString() << " ~ " << b.ToString()
                                     << " ~ " << c.ToString();
        }
      }
    }
  }
  // std::sort must not blow up and must yield a sorted sequence; pre-fix,
  // NaN comparing equal to everything violated strict weak ordering here.
  std::vector<Value> sorted = vals;
  std::sort(sorted.begin(), sorted.end(),
            [](const Value& x, const Value& y) { return x.Compare(y) < 0; });
  EXPECT_TRUE(std::is_sorted(
      sorted.begin(), sorted.end(),
      [](const Value& x, const Value& y) { return x.Compare(y) < 0; }));
  // NULL sorts first; strings sort last; NaN after every other numeric.
  EXPECT_TRUE(sorted.front().is_null());
  EXPECT_EQ(sorted.back().kind(), TypeKind::kString);
  const Value nan_v = Value::Double(std::nan(""));
  for (const Value& v : vals) {
    if (v.is_null() || v.kind() == TypeKind::kString) continue;
    if (v.kind() == TypeKind::kDouble && std::isnan(v.double_v())) {
      EXPECT_EQ(nan_v.Compare(v), 0);
    } else {
      EXPECT_GT(nan_v.Compare(v), 0) << "NaN must sort after " << v.ToString();
    }
  }
}

TEST(ValueSemanticsTest, NanAndSignedZero) {
  const Value nan_a = Value::Double(std::nan(""));
  const Value nan_b = Value::Double(-std::nan(""));
  // Grouping semantics: all NaNs are one key.
  EXPECT_TRUE(nan_a == nan_b);
  EXPECT_EQ(nan_a.Hash(), nan_b.Hash());
  EXPECT_EQ(nan_a.Compare(nan_b), 0);
  EXPECT_FALSE(nan_a == Value::Double(1.0));
  EXPECT_FALSE(nan_a == Value::Double(HUGE_VAL));
  EXPECT_FALSE(nan_a == Value::Null());
  // +0.0 and -0.0 are the same key under all three operations.
  const Value pz = Value::Double(0.0), nz = Value::Double(-0.0);
  EXPECT_TRUE(pz == nz);
  EXPECT_EQ(pz.Hash(), nz.Hash());
  EXPECT_EQ(pz.Compare(nz), 0);
  EXPECT_TRUE(nz == Value::Int64(0));
  EXPECT_EQ(nz.Hash(), Value::Int64(0).Hash());
}

TEST(ValueSemanticsTest, CrossTypeEqualityIsExactAbove2To53) {
  const Value i53 = Value::Int64(kTwo53);
  const Value i53p1 = Value::Int64(kTwo53 + 1);
  const Value i53p2 = Value::Int64(kTwo53 + 2);
  const Value d53 = Value::Double(static_cast<double>(kTwo53));
  const Value d53p2 = Value::Double(9007199254740994.0);  // 2^53 + 2 exactly

  // (double)(2^53+1) rounds to 2^53; a lossy coercion would call these equal.
  EXPECT_TRUE(i53 == d53);
  EXPECT_FALSE(i53p1 == d53);
  EXPECT_FALSE(i53p1 == d53p2);
  EXPECT_TRUE(i53p2 == d53p2);
  EXPECT_EQ(i53.Hash(), d53.Hash());
  EXPECT_EQ(i53p2.Hash(), d53p2.Hash());
  // Ordering threads the int64 between the two adjacent doubles.
  EXPECT_GT(i53p1.Compare(d53), 0);
  EXPECT_LT(i53p1.Compare(d53p2), 0);
  EXPECT_LT(d53.Compare(i53p1), 0);
  // Fractions and out-of-range doubles never equal integers.
  EXPECT_FALSE(Value::Int64(2) == Value::Double(2.5));
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Int64(3).Compare(Value::Double(2.5)), 0);
  EXPECT_FALSE(Value::Int64(INT64_MAX) == Value::Double(1e308));
  EXPECT_LT(Value::Int64(INT64_MAX).Compare(Value::Double(1e308)), 0);
  EXPECT_GT(Value::Int64(INT64_MIN).Compare(Value::Double(-1e308)), 0);
  // INT64_MAX is not exactly representable; 2^63 as a double is out of range.
  EXPECT_FALSE(Value::Int64(INT64_MAX) ==
               Value::Double(9223372036854775808.0));
  EXPECT_TRUE(Value::Int64(INT64_MIN) ==
              Value::Double(-9223372036854775808.0));
}

TEST(ValueSemanticsTest, SaturatingDoubleToInt64) {
  EXPECT_EQ(SaturatingDoubleToInt64(std::nan("")), 0);
  EXPECT_EQ(SaturatingDoubleToInt64(HUGE_VAL), INT64_MAX);
  EXPECT_EQ(SaturatingDoubleToInt64(-HUGE_VAL), INT64_MIN);
  EXPECT_EQ(SaturatingDoubleToInt64(1e308), INT64_MAX);
  EXPECT_EQ(SaturatingDoubleToInt64(-1e308), INT64_MIN);
  EXPECT_EQ(SaturatingDoubleToInt64(9223372036854775808.0), INT64_MAX);
  EXPECT_EQ(SaturatingDoubleToInt64(-9223372036854775808.0), INT64_MIN);
  EXPECT_EQ(SaturatingDoubleToInt64(2.7), 2);
  EXPECT_EQ(SaturatingDoubleToInt64(-2.7), -2);
  EXPECT_EQ(SaturatingDoubleToInt64(-0.0), 0);
  EXPECT_EQ(Value::Double(std::nan("")).AsInt64(), 0);
  EXPECT_EQ(Value::Double(HUGE_VAL).AsInt64(), INT64_MAX);
  EXPECT_EQ(Value::Double(-1e308).AsInt64(), INT64_MIN);
}

TEST(ValueSemanticsTest, DoubleIsExactInt64Bounds) {
  int64_t out = 0;
  EXPECT_FALSE(DoubleIsExactInt64(std::nan(""), &out));
  EXPECT_FALSE(DoubleIsExactInt64(HUGE_VAL, &out));
  EXPECT_FALSE(DoubleIsExactInt64(-HUGE_VAL, &out));
  EXPECT_FALSE(DoubleIsExactInt64(2.5, &out));
  EXPECT_FALSE(DoubleIsExactInt64(9223372036854775808.0, &out));
  EXPECT_TRUE(DoubleIsExactInt64(-9223372036854775808.0, &out));
  EXPECT_EQ(out, INT64_MIN);
  EXPECT_TRUE(DoubleIsExactInt64(static_cast<double>(kTwo53), &out));
  EXPECT_EQ(out, kTwo53);
  EXPECT_TRUE(DoubleIsExactInt64(-0.0, &out));
  EXPECT_EQ(out, 0);
}

TEST(ValueSemanticsTest, WrappingInt64Arithmetic) {
  EXPECT_EQ(WrapAddInt64(INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(WrapSubInt64(INT64_MIN, 1), INT64_MAX);
  EXPECT_EQ(WrapMulInt64(INT64_MAX, 2), -2);
  EXPECT_EQ(WrapNegInt64(INT64_MIN), INT64_MIN);
}

TEST(ValueSemanticsTest, ColumnarRoundTripNastyValues) {
  struct CaseSpec {
    TypeKind type;
    std::vector<Value> values;
  };
  std::vector<CaseSpec> cases;
  cases.push_back(
      {TypeKind::kInt64,
       {Value::Int64(kTwo53), Value::Int64(kTwo53 + 1), Value::Null(),
        Value::Int64(INT64_MIN), Value::Int64(INT64_MAX), Value::Int64(0),
        Value::Int64(-(kTwo53 + 1))}});
  cases.push_back(
      {TypeKind::kDouble,
       {Value::Double(std::nan("")), Value::Double(HUGE_VAL),
        Value::Double(-HUGE_VAL), Value::Double(0.0), Value::Double(-0.0),
        Value::Null(), Value::Double(1e308), Value::Double(1e-300),
        Value::Double(9007199254740994.0)}});
  cases.push_back({TypeKind::kString,
                   {Value::String(""), Value::String("it's"), Value::Null(),
                    Value::String("%x"), Value::String("a")}});
  cases.push_back({TypeKind::kDate,
                   {Value::Date(-719162), Value::Date(2932896), Value::Null(),
                    Value::Date(0)}});
  cases.push_back({TypeKind::kBool,
                   {Value::Bool(true), Value::Bool(false), Value::Null()}});
  for (const CaseSpec& c : cases) {
    auto chunk = EncodeColumnAuto(c.type, c.values, nullptr);
    ASSERT_NE(chunk, nullptr);
    ASSERT_EQ(chunk->size(), c.values.size());
    for (size_t i = 0; i < c.values.size(); ++i) {
      const Value got = chunk->GetValue(i);
      // Value::== treats all NaNs as equal, which is exactly the contract
      // the execution layers rely on after a round-trip.
      EXPECT_TRUE(got == c.values[i])
          << TypeName(c.type) << " idx " << i << ": " << got.ToString()
          << " vs " << c.values[i].ToString();
      EXPECT_EQ(got.Hash(), c.values[i].Hash());
    }
    std::vector<Value> decoded;
    chunk->Decode(&decoded);
    ASSERT_EQ(decoded.size(), c.values.size());
    for (size_t i = 0; i < c.values.size(); ++i) {
      EXPECT_TRUE(decoded[i] == c.values[i]);
    }
  }
}

// End-to-end: joins and group-bys keyed above 2^53 must use the exact
// cross-type semantics, not a double round-trip.
class CrossTypeKeySqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    Schema big({{"k", TypeKind::kInt64}, {"tag", TypeKind::kInt64}});
    std::vector<Row> brows = {
        Row({Value::Int64(kTwo53), Value::Int64(1)}),
        Row({Value::Int64(kTwo53 + 1), Value::Int64(2)}),
        Row({Value::Int64(kTwo53 + 2), Value::Int64(3)}),
        Row({Value::Int64(5), Value::Int64(4)}),
        Row({Value::Int64(-(kTwo53 + 1)), Value::Int64(5)}),
    };
    ASSERT_TRUE(session_->CreateDfsTable("t_big", big, brows, 2).ok());

    Schema dbl({{"x", TypeKind::kDouble}, {"tag", TypeKind::kInt64}});
    std::vector<Row> drows = {
        Row({Value::Double(static_cast<double>(kTwo53)), Value::Int64(11)}),
        Row({Value::Double(9007199254740994.0), Value::Int64(12)}),
        Row({Value::Double(5.0), Value::Int64(13)}),
        Row({Value::Double(2.5), Value::Int64(14)}),
        Row({Value::Double(static_cast<double>(kTwo53)), Value::Int64(15)}),
        Row({Value::Null(), Value::Int64(16)}),
    };
    ASSERT_TRUE(session_->CreateDfsTable("t_dbl", dbl, drows, 2).ok());
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(CrossTypeKeySqlTest, JoinOnKeysAbove2To53) {
  auto r = session_->Sql(
      "SELECT b.tag, d.tag FROM t_big b JOIN t_dbl d ON b.k = d.x "
      "ORDER BY b.tag, d.tag");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 2^53 matches twice, 2^53+2 matches the exact double 2^53+2, 5 matches
  // 5.0. 2^53+1 must NOT match anything: its nearest doubles are 2^53 and
  // 2^53+2.
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->rows[0].Get(0), Value::Int64(1));
  EXPECT_EQ(r->rows[0].Get(1), Value::Int64(11));
  EXPECT_EQ(r->rows[1].Get(0), Value::Int64(1));
  EXPECT_EQ(r->rows[1].Get(1), Value::Int64(15));
  EXPECT_EQ(r->rows[2].Get(0), Value::Int64(3));
  EXPECT_EQ(r->rows[2].Get(1), Value::Int64(12));
  EXPECT_EQ(r->rows[3].Get(0), Value::Int64(4));
  EXPECT_EQ(r->rows[3].Get(1), Value::Int64(13));
}

TEST_F(CrossTypeKeySqlTest, GroupByKeysAbove2To53) {
  auto r = session_->Sql(
      "SELECT x, COUNT(*) FROM t_dbl GROUP BY x ORDER BY x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // NULL, 2.5, 5.0, 2^53 (twice), 2^53+2 — five distinct keys.
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_TRUE(r->rows[0].Get(0).is_null());
  EXPECT_EQ(r->rows[3].Get(0), Value::Int64(kTwo53));
  EXPECT_EQ(r->rows[3].Get(1), Value::Int64(2));
  EXPECT_EQ(r->rows[4].Get(0), Value::Int64(kTwo53 + 2));
  EXPECT_EQ(r->rows[4].Get(1), Value::Int64(1));
}

TEST_F(CrossTypeKeySqlTest, GroupByBigintAbove2To53DistinctKeys) {
  auto r = session_->Sql(
      "SELECT k, COUNT(*) FROM t_big GROUP BY k ORDER BY k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 2^53, 2^53+1 and 2^53+2 are distinct group keys even though they
  // collapse when coerced through double.
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows[2].Get(0), Value::Int64(kTwo53));
  EXPECT_EQ(r->rows[3].Get(0), Value::Int64(kTwo53 + 1));
  EXPECT_EQ(r->rows[4].Get(0), Value::Int64(kTwo53 + 2));
}

}  // namespace
}  // namespace shark
