#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "index/btree.h"
#include "sql/session.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// B+-tree property tests against a std::multimap shadow model
// ---------------------------------------------------------------------------

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

using ShadowModel = std::multimap<Value, IndexPosting, ValueLess>;

std::vector<IndexPosting> ShadowScan(const ShadowModel& shadow, const Value* lo,
                                     bool lo_inclusive, const Value* hi,
                                     bool hi_inclusive) {
  std::vector<IndexPosting> out;
  for (const auto& [key, posting] : shadow) {
    if (lo != nullptr) {
      int c = key.Compare(*lo);
      if (c < 0 || (c == 0 && !lo_inclusive)) continue;
    }
    if (hi != nullptr) {
      int c = key.Compare(*hi);
      if (c > 0 || (c == 0 && !hi_inclusive)) continue;
    }
    out.push_back(posting);
  }
  return out;
}

// Duplicate keys come back in a deterministic but tree-internal order, so
// compare as (partition, row)-sorted sets — exactly how the executor consumes
// postings.
std::vector<IndexPosting> Canonical(std::vector<IndexPosting> postings) {
  std::sort(postings.begin(), postings.end(),
            [](const IndexPosting& a, const IndexPosting& b) {
              return a.partition != b.partition ? a.partition < b.partition
                                                : a.row < b.row;
            });
  return postings;
}

/// Values chosen to stress Value::Compare's corners: NULL, NaN, signed
/// zeros, infinities, int64/double cross-type keys past 2^53, empty strings.
std::vector<Value> NastyPool() {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  return {
      Value::Null(),
      Value::Double(kNan),
      Value::Double(-kNan),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Int64(0),
      Value::Double(kInf),
      Value::Double(-kInf),
      Value::Int64(std::numeric_limits<int64_t>::min()),
      Value::Int64(std::numeric_limits<int64_t>::max()),
      Value::Int64((1LL << 53) + 1),
      Value::Double(9007199254740992.0),  // 2^53
      Value::Double(9007199254740994.0),
      Value::Int64((1LL << 53) + 3),
      Value::Int64(-7),
      Value::Double(-7.0),
      Value::Double(-6.5),
      Value::Int64(42),
      Value::Double(42.0),
      Value::String(""),
      Value::String("a"),
      Value::String("aa"),
      Value::String("z"),
  };
}

TEST(BTreeIndexTest, MatchesMultimapOnNastyValues) {
  std::mt19937 rng(20260809);
  const std::vector<Value> pool = NastyPool();
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> coin(0, 1);

  BTreeIndex tree;
  ShadowModel shadow;
  for (uint32_t i = 0; i < 3000; ++i) {
    const Value& key = pool[pick(rng)];
    IndexPosting posting{static_cast<int32_t>(i % 17), i};
    tree.Insert(key, posting);
    shadow.emplace(key, posting);
  }
  ASSERT_EQ(tree.size(), shadow.size());
  EXPECT_GT(tree.height(), 1);

  for (int trial = 0; trial < 400; ++trial) {
    const Value lo_v = pool[pick(rng)];
    const Value hi_v = pool[pick(rng)];
    const bool has_lo = coin(rng) == 1;
    const bool has_hi = coin(rng) == 1;
    const bool lo_inc = coin(rng) == 1;
    const bool hi_inc = coin(rng) == 1;
    const Value* lo = has_lo ? &lo_v : nullptr;
    const Value* hi = has_hi ? &hi_v : nullptr;
    std::vector<IndexPosting> got =
        Canonical(tree.Scan(lo, lo_inc, hi, hi_inc));
    std::vector<IndexPosting> want =
        Canonical(ShadowScan(shadow, lo, lo_inc, hi, hi_inc));
    ASSERT_EQ(got, want) << "trial " << trial << " lo=" << lo_v.ToString()
                         << (lo_inc ? " inc" : " exc") << " hi="
                         << hi_v.ToString() << (hi_inc ? " inc" : " exc")
                         << " has_lo=" << has_lo << " has_hi=" << has_hi;
  }
}

TEST(BTreeIndexTest, DuplicateHeavyEqualityScan) {
  BTreeIndex tree;
  ShadowModel shadow;
  // 2000 entries over just 3 distinct keys: every leaf split lands between
  // duplicates of the separator.
  const std::vector<Value> keys = {Value::Int64(1), Value::Int64(2),
                                   Value::String("dup")};
  for (uint32_t i = 0; i < 2000; ++i) {
    const Value& key = keys[i % keys.size()];
    IndexPosting posting{static_cast<int32_t>(i % 5), i};
    tree.Insert(key, posting);
    shadow.emplace(key, posting);
  }
  for (const Value& key : keys) {
    std::vector<IndexPosting> got =
        Canonical(tree.Scan(&key, true, &key, true));
    std::vector<IndexPosting> want =
        Canonical(ShadowScan(shadow, &key, true, &key, true));
    EXPECT_EQ(got, want) << key.ToString();
    EXPECT_EQ(got.size(), shadow.count(key));
  }
}

TEST(BTreeIndexTest, OpenAndEmptyRanges) {
  BTreeIndex tree;
  for (uint32_t i = 0; i < 100; ++i) {
    tree.Insert(Value::Int64(static_cast<int64_t>(i)), IndexPosting{0, i});
  }
  // Fully open scan returns everything.
  EXPECT_EQ(tree.Scan(nullptr, true, nullptr, true).size(), 100u);
  // Inverted range returns nothing.
  Value lo = Value::Int64(50), hi = Value::Int64(10);
  EXPECT_TRUE(tree.Scan(&lo, true, &hi, true).empty());
  // Exclusive point range returns nothing.
  Value k = Value::Int64(50);
  EXPECT_TRUE(tree.Scan(&k, false, &k, false).empty());
  EXPECT_EQ(tree.Scan(&k, true, &k, true).size(), 1u);
  // Memory estimate is positive and grows with content.
  EXPECT_GT(tree.MemoryBytes(), 100u * 16u);
}

// ---------------------------------------------------------------------------
// End-to-end SQL tests
// ---------------------------------------------------------------------------

class IndexSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));
    RegisterRankings();
  }

  void RegisterRankings() {
    Schema rankings({{"pageURL", TypeKind::kString},
                     {"pageRank", TypeKind::kInt64},
                     {"avgDuration", TypeKind::kInt64}});
    std::vector<Row> rrows;
    for (int i = 0; i < 400; ++i) {
      rrows.push_back(Row({Value::String("url" + std::to_string(i)),
                           Value::Int64(i % 100), Value::Int64(i % 10)}));
    }
    ASSERT_TRUE(
        session_->CreateDfsTable("rankings", rankings, rrows, 8).ok());
  }

  QueryResult MustQuery(const std::string& sql) {
    auto r = session_->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << sql;
    return r.ok() ? *r : QueryResult{};
  }

  std::string MustExplain(const std::string& sql) {
    auto r = session_->Explain(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << sql;
    return r.ok() ? *r : std::string();
  }

  static std::vector<std::string> SortedRows(const QueryResult& r) {
    std::vector<std::string> out;
    out.reserve(r.rows.size());
    for (const Row& row : r.rows) out.push_back(row.ToString());
    std::sort(out.begin(), out.end());
    return out;
  }

  uint64_t IndexBytes() {
    return session_->context().memory_manager().total_index_bytes();
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(IndexSqlTest, CreateIndexRequiresCachedTable) {
  auto r = session_->Sql("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_FALSE(r.ok());
}

TEST_F(IndexSqlTest, QueryParityWithAndWithoutIndex) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  const std::vector<std::string> queries = {
      "SELECT pageURL, pageRank FROM rankings WHERE pageRank = 42",
      "SELECT pageURL FROM rankings WHERE pageRank < 7",
      "SELECT pageURL, avgDuration FROM rankings "
      "WHERE pageRank BETWEEN 90 AND 95 AND avgDuration > 2",
      "SELECT COUNT(*), SUM(avgDuration) FROM rankings WHERE pageRank >= 97",
      // Range that matches nothing.
      "SELECT pageURL FROM rankings WHERE pageRank > 1000",
  };
  std::vector<std::vector<std::string>> before;
  for (const std::string& q : queries) before.push_back(SortedRows(MustQuery(q)));

  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_GT(IndexBytes(), 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(SortedRows(MustQuery(queries[i])), before[i])
        << "query: " << queries[i];
  }

  // Scalar path must agree too (vectorized off).
  session_->options().vectorized = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(SortedRows(MustQuery(queries[i])), before[i])
        << "scalar, query: " << queries[i];
  }
}

TEST_F(IndexSqlTest, ExplainFlipsToIndexRangeScan) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  MustQuery("ANALYZE TABLE rankings");
  const std::string q =
      "SELECT pageURL FROM rankings WHERE pageRank = 42";
  EXPECT_EQ(MustExplain(q).find("IndexRangeScan"), std::string::npos);
  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_NE(MustExplain(q).find("IndexRangeScan"), std::string::npos);
  // Unselective ranges stay on the columnar scan (the CBO says so).
  EXPECT_EQ(
      MustExplain("SELECT pageURL FROM rankings WHERE pageRank >= 0")
          .find("IndexRangeScan"),
      std::string::npos);
  // With indexes disabled the plan reverts.
  session_->options().use_indexes = false;
  EXPECT_EQ(MustExplain(q).find("IndexRangeScan"), std::string::npos);
}

TEST_F(IndexSqlTest, DropIndexReleasesMemory) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_GT(IndexBytes(), 0u);
  // Duplicate name is rejected.
  EXPECT_FALSE(session_->Sql("CREATE INDEX idx_rank ON rankings(pageURL)").ok());
  MustQuery("DROP INDEX idx_rank");
  EXPECT_EQ(IndexBytes(), 0u);
  // Gone: plain DROP fails, IF EXISTS succeeds.
  EXPECT_FALSE(session_->Sql("DROP INDEX idx_rank").ok());
  MustQuery("DROP INDEX IF EXISTS idx_rank");
}

// Satellite: DROP TABLE must atomically drop dependent indexes — recreating
// the table under the same name must not resolve stale index metadata or
// charge stale memory.
TEST_F(IndexSqlTest, DropTableDropsDependentIndexes) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  MustQuery("ANALYZE TABLE rankings");
  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_GT(IndexBytes(), 0u);

  MustQuery("DROP TABLE rankings");
  EXPECT_EQ(IndexBytes(), 0u);

  // Same name, fresh table: no stale index or statistics may survive.
  RegisterRankings();
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  const std::string q = "SELECT pageURL FROM rankings WHERE pageRank = 42";
  EXPECT_EQ(MustExplain(q).find("IndexRangeScan"), std::string::npos);
  QueryResult r = MustQuery(q);
  EXPECT_EQ(r.rows.size(), 4u);
  // The old index name is free again.
  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_GT(IndexBytes(), 0u);
}

TEST_F(IndexSqlTest, UncacheTableDropsIndexes) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  MustQuery("CREATE INDEX idx_rank ON rankings(pageRank)");
  EXPECT_GT(IndexBytes(), 0u);
  ASSERT_TRUE(session_->UncacheTable("rankings").ok());
  EXPECT_EQ(IndexBytes(), 0u);
  EXPECT_EQ(MustExplain("SELECT pageURL FROM rankings WHERE pageRank = 42")
                .find("IndexRangeScan"),
            std::string::npos);
}

// Satellite: mixed-case identifiers must round-trip through every catalog
// door — CREATE INDEX / ANALYZE / EXPLAIN / DROP INDEX.
TEST_F(IndexSqlTest, MixedCaseIdentifierMatrix) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  MustQuery("ANALYZE TABLE RaNkInGs");
  MustQuery("CREATE INDEX IdxRank ON RANKINGS(PageRank)");
  EXPECT_NE(
      MustExplain("SELECT PAGEURL FROM Rankings WHERE PAGERANK = 42")
          .find("IndexRangeScan"),
      std::string::npos);
  QueryResult r =
      MustQuery("SELECT pageURL FROM RANKINGS WHERE PageRank = 42");
  EXPECT_EQ(r.rows.size(), 4u);
  // Second spelling of the same index name collides.
  EXPECT_FALSE(session_->Sql("CREATE INDEX IDXRANK ON rankings(pageURL)").ok());
  MustQuery("DROP INDEX idxrank ON RankingS");
  EXPECT_EQ(IndexBytes(), 0u);
  MustQuery("CREATE INDEX idxrank ON rankings(pageURL)");
  MustQuery("DROP INDEX IdxRank");
  EXPECT_EQ(IndexBytes(), 0u);
}

// NULL and NaN keys: the sargable range never has to produce them for
// comparison predicates (NULL compares to nothing, NaN re-checked by the
// residual), so indexed and unindexed plans must agree exactly.
TEST_F(IndexSqlTest, NullAndNanKeysAgreeWithScan) {
  Schema nasty({{"k", TypeKind::kDouble}, {"tag", TypeKind::kString}});
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(Row({Value::Double(static_cast<double>(i % 10)),
                        Value::String("v" + std::to_string(i))}));
  }
  rows.push_back(Row({Value::Null(), Value::String("null1")}));
  rows.push_back(Row({Value::Null(), Value::String("null2")}));
  rows.push_back(Row({Value::Double(kNan), Value::String("nan")}));
  rows.push_back(Row({Value::Double(kInf), Value::String("inf")}));
  rows.push_back(Row({Value::Double(-kInf), Value::String("ninf")}));
  rows.push_back(Row({Value::Double(-0.0), Value::String("nzero")}));
  ASSERT_TRUE(session_->CreateDfsTable("nasty", nasty, rows, 4).ok());
  ASSERT_TRUE(session_->CacheTable("nasty").ok());

  const std::vector<std::string> queries = {
      "SELECT tag FROM nasty WHERE k = 0.0",
      "SELECT tag FROM nasty WHERE k <= 1.5",
      "SELECT tag FROM nasty WHERE k > 8.0",
      "SELECT tag FROM nasty WHERE k BETWEEN 2.0 AND 4.0",
  };
  std::vector<std::vector<std::string>> before;
  for (const std::string& q : queries) before.push_back(SortedRows(MustQuery(q)));
  MustQuery("CREATE INDEX idx_k ON nasty(k)");
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(SortedRows(MustQuery(queries[i])), before[i])
        << "query: " << queries[i];
  }
}

}  // namespace
}  // namespace shark
