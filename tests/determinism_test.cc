// Host-parallelism determinism regression: every virtual-time observable —
// result rows, QueryMetrics (virtual seconds, task/stage counts, chosen
// reducer counts), ML weights, fault-recovery outcomes — must be bit-for-bit
// identical whether task bodies run on the serial reference path
// (host_threads=1) or on a heavily oversubscribed work-stealing pool
// (host_threads=8). Host threading may only change wall-clock.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/logistic_regression.h"
#include "rdd/job_manager.h"
#include "rdd/pair_rdd.h"
#include "sql/session.h"

namespace shark {
namespace {

struct Dataset {
  Schema schema;
  std::vector<Row> rows;
};

Dataset MakeSales(int n, uint64_t seed) {
  Random rng(seed);
  Dataset d;
  d.schema = Schema({{"region", TypeKind::kString},
                     {"product", TypeKind::kString},
                     {"units", TypeKind::kInt64},
                     {"price", TypeKind::kDouble}});
  const char* regions[] = {"north", "south", "east", "west"};
  const char* products[] = {"anchor", "bolt", "clamp", "drill", "easel"};
  for (int i = 0; i < n; ++i) {
    d.rows.push_back(Row(
        {Value::String(regions[rng.Uniform(4)]),
         Value::String(products[rng.Uniform(5)]),
         Value::Int64(rng.UniformInt(1, 40)),
         Value::Double(static_cast<double>(rng.UniformInt(100, 9999)) /
                       100.0)}));
  }
  return d;
}

struct QueryTrace {
  std::multiset<std::string> rows;
  double virtual_seconds = 0.0;
  int jobs = 0;
  int stages = 0;
  int tasks = 0;
  int chosen_reducers = 0;
};

bool operator==(const QueryTrace& a, const QueryTrace& b) {
  return a.rows == b.rows && a.virtual_seconds == b.virtual_seconds &&
         a.jobs == b.jobs && a.stages == b.stages && a.tasks == b.tasks &&
         a.chosen_reducers == b.chosen_reducers;
}

/// Runs the query suite (disk, then cached) under one host-thread setting
/// and records everything virtual-time-visible.
std::vector<QueryTrace> RunSqlSuite(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.hardware.cores_per_node = 2;
  cfg.host_threads = host_threads;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
  Dataset data = MakeSales(3000, 77);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());

  const std::string queries[] = {
      "SELECT region, units FROM sales WHERE units > 35",
      "SELECT region, product, COUNT(*), SUM(units), MIN(price), MAX(price) "
      "FROM sales GROUP BY region, product",
      "SELECT product, COUNT(DISTINCT region) FROM sales GROUP BY product",
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region",
      "SELECT * FROM sales WHERE price > 90.0 ORDER BY price DESC LIMIT 13",
  };

  std::vector<QueryTrace> traces;
  auto run = [&](const std::string& sql) {
    auto r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    QueryTrace t;
    if (r.ok()) {
      for (const Row& row : r->rows) t.rows.insert(row.ToString());
      t.virtual_seconds = r->metrics.virtual_seconds;
      t.jobs = r->metrics.jobs;
      t.stages = r->metrics.stages;
      t.tasks = r->metrics.tasks;
      t.chosen_reducers = r->metrics.chosen_reducers;
    }
    traces.push_back(std::move(t));
  };
  for (const auto& q : queries) run(q);
  EXPECT_TRUE(session->CacheTable("sales").ok());
  for (const auto& q : queries) run(q);
  return traces;
}

TEST(DeterminismTest, SqlSuiteIdenticalAcrossHostThreadCounts) {
  std::vector<QueryTrace> serial = RunSqlSuite(1);
  std::vector<QueryTrace> parallel = RunSqlSuite(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i])
        << "query " << i << " diverged: virtual " << serial[i].virtual_seconds
        << " vs " << parallel[i].virtual_seconds << ", tasks "
        << serial[i].tasks << " vs " << parallel[i].tasks << ", reducers "
        << serial[i].chosen_reducers << " vs " << parallel[i].chosen_reducers;
  }
}

/// The indexed suite: CREATE INDEX runs a build job, then selective queries
/// execute through IndexRangeScan gathers. Both the build and the gather
/// charge virtual time, so everything must stay bit-identical across host
/// thread counts — and across the scalar/vectorized gather paths, which are
/// host-side variants of the same charges.
std::vector<QueryTrace> RunIndexedSuite(int host_threads, bool vectorized) {
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.hardware.cores_per_node = 2;
  cfg.host_threads = host_threads;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
  session->options().vectorized = vectorized;
  Dataset data = MakeSales(3000, 77);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());
  EXPECT_TRUE(session->CacheTable("sales").ok());

  std::vector<QueryTrace> traces;
  auto run = [&](const std::string& sql) {
    auto r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    QueryTrace t;
    if (r.ok()) {
      for (const Row& row : r->rows) t.rows.insert(row.ToString());
      t.virtual_seconds = r->metrics.virtual_seconds;
      t.jobs = r->metrics.jobs;
      t.stages = r->metrics.stages;
      t.tasks = r->metrics.tasks;
      t.chosen_reducers = r->metrics.chosen_reducers;
    }
    traces.push_back(std::move(t));
  };
  run("ANALYZE TABLE sales");
  run("CREATE INDEX idx_units ON sales(units)");
  run("CREATE INDEX idx_region ON sales(region)");
  const std::string queries[] = {
      "SELECT region, units FROM sales WHERE units = 7",
      "SELECT COUNT(*), SUM(price) FROM sales WHERE units BETWEEN 38 AND 40",
      "SELECT product, COUNT(*) FROM sales WHERE region = 'east' "
      "GROUP BY product",
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region",
  };
  for (const auto& q : queries) run(q);
  run("DROP INDEX idx_units");
  for (const auto& q : queries) run(q);
  return traces;
}

TEST(DeterminismTest, IndexedSuiteIdenticalAcrossHostThreadCounts) {
  std::vector<QueryTrace> serial = RunIndexedSuite(1, /*vectorized=*/true);
  std::vector<QueryTrace> parallel = RunIndexedSuite(8, /*vectorized=*/true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i])
        << "indexed query " << i << " diverged: virtual "
        << serial[i].virtual_seconds << " vs " << parallel[i].virtual_seconds
        << ", tasks " << serial[i].tasks << " vs " << parallel[i].tasks;
  }
}

TEST(DeterminismTest, IndexedGatherChargesIdenticalScalarVsVectorized) {
  std::vector<QueryTrace> vec = RunIndexedSuite(4, /*vectorized=*/true);
  std::vector<QueryTrace> scalar = RunIndexedSuite(4, /*vectorized=*/false);
  ASSERT_EQ(vec.size(), scalar.size());
  for (size_t i = 0; i < vec.size(); ++i) {
    EXPECT_TRUE(vec[i] == scalar[i])
        << "indexed query " << i << " diverged: virtual "
        << vec[i].virtual_seconds << " vs " << scalar[i].virtual_seconds
        << ", tasks " << vec[i].tasks << " vs " << scalar[i].tasks;
  }
}

/// One ML pipeline: cached logistic regression. Weight vectors and the
/// per-iteration virtual times must match exactly — gradients are summed in
/// the scheduler's deterministic commit order, not host completion order.
struct MlTrace {
  MlVector weights;
  std::vector<double> iteration_seconds;
  double now = 0.0;
};

MlTrace RunLogReg(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.host_threads = host_threads;
  ClusterContext ctx(cfg);
  Random rng(123);
  std::vector<LabeledPoint> points;
  for (int i = 0; i < 2000; ++i) {
    LabeledPoint p;
    double bias = (i % 2 == 0) ? 0.8 : -0.8;
    for (int d = 0; d < 5; ++d) {
      p.x.push_back(bias + static_cast<double>(rng.UniformInt(-100, 100)) /
                               200.0);
    }
    p.y = (i % 2 == 0) ? 1.0 : -1.0;
    points.push_back(std::move(p));
  }
  auto rdd = ctx.Parallelize(points, 8);
  rdd->Cache();
  LogisticRegression::Options opts;
  opts.iterations = 5;
  opts.learning_rate = 0.1;
  auto model = LogisticRegression::Train(&ctx, rdd, 5, opts);
  EXPECT_TRUE(model.ok());
  MlTrace t;
  if (model.ok()) {
    t.weights = model->weights;
    t.iteration_seconds = model->iteration_seconds;
  }
  t.now = ctx.now();
  return t;
}

TEST(DeterminismTest, LogRegIdenticalAcrossHostThreadCounts) {
  MlTrace serial = RunLogReg(1);
  MlTrace parallel = RunLogReg(8);
  EXPECT_EQ(serial.weights, parallel.weights);
  EXPECT_EQ(serial.iteration_seconds, parallel.iteration_seconds);
  EXPECT_EQ(serial.now, parallel.now);
  ASSERT_EQ(serial.iteration_seconds.size(), 5u);
}

/// Fault injection plus lineage recovery is the hairiest scheduler path:
/// node death mid-job, shuffle outputs lost, recursive recomputation. The
/// whole trajectory must replay identically under host parallelism.
struct FaultTrace {
  int64_t total = 0;
  size_t result_size = 0;
  double now = 0.0;
  int tasks_launched = 0;
  int tasks_failed = 0;
  int map_tasks_recovered = 0;
};

FaultTrace RunFaultyJob(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e7;
  cfg.host_threads = host_threads;
  ClusterContext ctx(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto first = ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 6);
  RddPtr<std::pair<int64_t, int64_t>> rekeyed =
      first->Map([](const std::pair<int64_t, int64_t>& kv) {
        return std::make_pair(kv.first % 10, kv.second);
      });
  auto second =
      ReduceByKey(rekeyed, [](int64_t a, int64_t b) { return a + b; }, 4);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.3, 2, 1.0});
  auto result = ctx.Collect(second);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  FaultTrace t;
  if (result.ok()) {
    t.result_size = result->size();
    for (const auto& [k, v] : *result) t.total += v;
  }
  t.now = ctx.now();
  const JobMetrics& job = ctx.scheduler().last_job();
  t.tasks_launched = job.tasks_launched;
  t.tasks_failed = job.tasks_failed;
  t.map_tasks_recovered = job.map_tasks_recovered;
  return t;
}

TEST(DeterminismTest, FaultRecoveryIdenticalAcrossHostThreadCounts) {
  FaultTrace serial = RunFaultyJob(1);
  FaultTrace parallel = RunFaultyJob(8);
  EXPECT_EQ(serial.total, 4000);
  EXPECT_EQ(serial.result_size, 10u);
  EXPECT_EQ(serial.total, parallel.total);
  EXPECT_EQ(serial.result_size, parallel.result_size);
  EXPECT_EQ(serial.now, parallel.now);
  EXPECT_EQ(serial.tasks_launched, parallel.tasks_launched);
  EXPECT_EQ(serial.tasks_failed, parallel.tasks_failed);
  EXPECT_EQ(serial.map_tasks_recovered, parallel.map_tasks_recovered);
}

/// Tentpole regression: the recorded QueryProfile — every stage span, task
/// lifecycle, event line and both renderings — must be byte-for-byte
/// identical between the serial reference path and the work-stealing pool
/// (host_threads=0, one worker per hardware thread).
std::string RunProfiledSuite(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.hardware.cores_per_node = 2;
  cfg.host_threads = host_threads;
  auto ctx = std::make_shared<ClusterContext>(cfg);
  auto session = std::make_unique<SharkSession>(ctx);
  Dataset data = MakeSales(3000, 77);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());

  const std::string queries[] = {
      "SELECT region, product, COUNT(*), SUM(units) FROM sales "
      "GROUP BY region, product",
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region",
  };

  std::string rendered;
  auto run = [&](const std::string& sql) {
    auto r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    if (r.ok()) {
      EXPECT_NE(r->profile, nullptr) << sql;
      if (r->profile != nullptr) {
        rendered += r->profile->ToString();
        rendered += r->profile->ToChromeTrace();
      }
    }
  };
  for (const auto& q : queries) run(q);
  EXPECT_TRUE(session->CacheTable("sales").ok());
  for (const auto& q : queries) run(q);
  // The hairiest profile: node death mid-query, aborted tasks, lineage
  // recovery — its trace must also replay identically.
  ctx->InjectFault(
      FaultEvent{FaultEvent::Kind::kKill, ctx->now() + 0.05, 2, 1.0});
  run(queries[0]);
  return rendered;
}

TEST(DeterminismTest, QueryProfileByteIdenticalAcrossHostThreadCounts) {
  std::string serial = RunProfiledSuite(1);
  std::string pool = RunProfiledSuite(0);
  ASSERT_FALSE(serial.empty());
  EXPECT_TRUE(serial == pool)
      << "profiles diverged (lengths " << serial.size() << " vs "
      << pool.size() << ")";
}

/// Memory-pressure determinism: a huge virtual_data_scale shrinks the real
/// per-node budgets until operator working sets spill and map outputs flip
/// to disk serving. Reservation decisions, spill events and the flip all
/// happen against budgets latched in the event loop, so the profile must
/// still be byte-identical across host-thread settings — and must actually
/// contain spill events (otherwise this test exercises nothing).
std::string RunSpillingSuite(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e6;  // ~68 KB real capacity per node
  cfg.host_threads = host_threads;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
  Dataset data = MakeSales(4000, 99);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());
  EXPECT_TRUE(session->CacheTable("sales").ok());

  const std::string queries[] = {
      // Join + aggregation: hash build, shuffle, grouped aggregation — the
      // full spill surface of the acceptance scenario.
      "SELECT s.region, COUNT(*), SUM(s.units) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region GROUP BY s.region",
      // External sort path.
      "SELECT * FROM sales ORDER BY price DESC LIMIT 11",
  };

  std::string rendered;
  for (const std::string& sql : queries) {
    auto r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    if (r.ok() && r->profile != nullptr) {
      rendered += r->profile->ToString();
      rendered += r->profile->ToChromeTrace();
    }
  }
  return rendered;
}

TEST(DeterminismTest, SpillEventsByteIdenticalAcrossHostThreadCounts) {
  std::string serial = RunSpillingSuite(1);
  std::string pool = RunSpillingSuite(4);
  ASSERT_FALSE(serial.empty());
  // The suite must actually degrade: spill events recorded and rendered.
  EXPECT_NE(serial.find("spilled"), std::string::npos)
      << "no spill events under memory pressure — suite lost its bite";
  EXPECT_TRUE(serial == pool)
      << "spilling profiles diverged (lengths " << serial.size() << " vs "
      << pool.size() << ")";
}

/// Metrics determinism: the Prometheus exposition and the timeline JSON are
/// built from counters mutated only in event-loop order and from virtual-time
/// samples, so both documents must be byte-identical across host-thread
/// settings — including under faults, speculation and memory pressure.
std::string RunMetricsSuite(int host_threads) {
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e7;  // tight enough to exercise spill counters
  cfg.host_threads = host_threads;
  auto ctx = std::make_shared<ClusterContext>(cfg);
  auto session = std::make_unique<SharkSession>(ctx);
  Dataset data = MakeSales(3000, 77);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());

  const std::string queries[] = {
      "SELECT region, product, COUNT(*), SUM(units) FROM sales "
      "GROUP BY region, product",
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region",
  };
  auto run = [&](const std::string& sql) {
    auto r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
  };
  for (const auto& q : queries) run(q);
  EXPECT_TRUE(session->CacheTable("sales").ok());
  for (const auto& q : queries) run(q);
  ctx->InjectFault(
      FaultEvent{FaultEvent::Kind::kKill, ctx->now() + 0.05, 2, 1.0});
  run(queries[0]);

  return ctx->metrics().PrometheusText(ctx->now(), ctx->cluster()) + "\n" +
         ctx->metrics().TimelineJson();
}

TEST(DeterminismTest, MetricsByteIdenticalAcrossHostThreadCounts) {
  std::string serial = RunMetricsSuite(1);
  std::string pool = RunMetricsSuite(4);
  ASSERT_FALSE(serial.empty());
  // The suite must actually move the interesting counters.
  EXPECT_NE(serial.find("shark_tasks_failed_total"), std::string::npos);
  EXPECT_NE(serial.find("\"stages\":["), std::string::npos);
  EXPECT_TRUE(serial == pool)
      << "metrics diverged (lengths " << serial.size() << " vs "
      << pool.size() << ")";
}

/// Concurrent-jobs determinism: interleaving N jobs through the JobManager's
/// batch event loop — including admission queueing — is itself a virtual-time
/// observable. Per-job arrival/admit/finish stamps and both metrics exports
/// must be byte-identical across host-thread settings. The observability
/// plane (per-query SLO series, query-id stamping) rides this path, so the
/// suite runs with it on by default; `collect_query_metrics=false` re-runs
/// the identical schedule with the plane dark to prove it never perturbs
/// virtual time.
std::string RunConcurrentJobsSuite(int host_threads,
                                   bool collect_query_metrics = true,
                                   bool include_metrics_text = true) {
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  cfg.hardware.cores_per_node = 2;
  cfg.host_threads = host_threads;
  auto ctx = std::make_shared<ClusterContext>(cfg);
  auto session = std::make_unique<SharkSession>(ctx);
  Dataset data = MakeSales(3000, 77);
  EXPECT_TRUE(
      session->CreateDfsTable("sales", data.schema, data.rows, 8).ok());

  const std::string queries[] = {
      "SELECT region, product, COUNT(*), SUM(units) FROM sales "
      "GROUP BY region, product",
      "SELECT product, COUNT(DISTINCT region) FROM sales GROUP BY product",
      "SELECT region, units FROM sales WHERE units > 35",
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region",
  };
  uint64_t headroom = ctx->memory_manager().AdmissionHeadroomBytes();

  std::vector<JobSpec> specs(6);
  std::multiset<std::string> row_sets[6];
  for (int i = 0; i < 6; ++i) {
    specs[static_cast<size_t>(i)].label = "job" + std::to_string(i);
    specs[static_cast<size_t>(i)].query_id = "jid" + std::to_string(i);
    specs[static_cast<size_t>(i)].session = "sess" + std::to_string(i % 2);
    specs[static_cast<size_t>(i)].arrival_vtime = 0.01 * i;
    specs[static_cast<size_t>(i)].weight = 1.0 + (i % 3);
    if (i % 3 == 2) {
      specs[static_cast<size_t>(i)].mem_demand_bytes = headroom / 2;
    }
    std::string sql = queries[i % 4];
    SharkSession* sp = session.get();
    auto* sink = &row_sets[i];
    specs[static_cast<size_t>(i)].body = [sp, sql, sink]() -> Status {
      auto r = sp->Sql(sql);
      SHARK_RETURN_NOT_OK(r.status());
      for (const Row& row : r->rows) sink->insert(row.ToString());
      return Status::OK();
    };
  }

  JobManager::Options jopts;
  jopts.collect_query_metrics = collect_query_metrics;
  JobManager jm(ctx.get(), jopts);
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));

  std::string out;
  char buf[256];
  for (const JobOutcome& o : outcomes) {
    EXPECT_TRUE(o.status.ok()) << o.label << ": " << o.status.ToString();
    std::snprintf(buf, sizeof(buf),
                  "%s id=%s sess=%s queued=%d arr=%.9f adm=%.9f fin=%.9f\n",
                  o.label.c_str(), o.query_id.c_str(), o.session.c_str(),
                  o.queued ? 1 : 0, o.arrival_vtime, o.admit_vtime,
                  o.finish_vtime);
    out += buf;
  }
  for (const auto& rows : row_sets) {
    for (const std::string& r : rows) out += r + "\n";
  }
  if (!include_metrics_text) return out;
  return out + ctx->metrics().PrometheusText(ctx->now(), ctx->cluster()) +
         "\n" + ctx->metrics().TimelineJson();
}

TEST(DeterminismTest, ConcurrentJobsIdenticalAcrossHostThreadCounts) {
  std::string serial = RunConcurrentJobsSuite(1);
  std::string pool = RunConcurrentJobsSuite(4);
  ASSERT_FALSE(serial.empty());
  // The suite must actually interleave and queue jobs, and the plane's
  // lazily registered per-session SLO series must land identically (they
  // register in event-loop completion order).
  EXPECT_NE(serial.find("shark_jobs_admitted_total"), std::string::npos);
  EXPECT_NE(serial.find("session=\"sess0\""), std::string::npos);
  EXPECT_TRUE(serial == pool)
      << "concurrent-job schedule diverged (lengths " << serial.size()
      << " vs " << pool.size() << ")";
}

/// The observability plane is strictly additive: running the exact same
/// schedule with query-metric collection disabled produces bit-identical
/// job outcomes, rows and virtual-time stamps.
TEST(DeterminismTest, ObservabilityPlaneDoesNotPerturbVirtualTime) {
  std::string plane_on =
      RunConcurrentJobsSuite(4, /*collect_query_metrics=*/true,
                             /*include_metrics_text=*/false);
  std::string plane_off =
      RunConcurrentJobsSuite(4, /*collect_query_metrics=*/false,
                             /*include_metrics_text=*/false);
  ASSERT_FALSE(plane_on.empty());
  EXPECT_TRUE(plane_on == plane_off)
      << "observability plane perturbed the schedule (lengths "
      << plane_on.size() << " vs " << plane_off.size() << ")";
}

}  // namespace
}  // namespace shark
