#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sql/session.h"

namespace shark {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    // rankings(pageURL STRING, pageRank BIGINT, avgDuration BIGINT)
    Schema rankings({{"pageURL", TypeKind::kString},
                     {"pageRank", TypeKind::kInt64},
                     {"avgDuration", TypeKind::kInt64}});
    std::vector<Row> rrows;
    for (int i = 0; i < 100; ++i) {
      rrows.push_back(Row({Value::String("url" + std::to_string(i)),
                           Value::Int64(i), Value::Int64(i % 10)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("rankings", rankings, rrows, 4).ok());

    // visits(destURL STRING, sourceIP STRING, adRevenue DOUBLE, visitDate DATE)
    Schema visits({{"destURL", TypeKind::kString},
                   {"sourceIP", TypeKind::kString},
                   {"adRevenue", TypeKind::kDouble},
                   {"visitDate", TypeKind::kDate}});
    std::vector<Row> vrows;
    int64_t base_date = Value::ParseDate("2000-01-10")->int64_v();
    for (int i = 0; i < 300; ++i) {
      vrows.push_back(
          Row({Value::String("url" + std::to_string(i % 50)),
               Value::String("ip" + std::to_string(i % 7)),
               Value::Double(1.0 + (i % 4)),
               Value::Date(base_date + i % 20)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("visits", visits, vrows, 4).ok());
  }

  QueryResult MustQuery(const std::string& sql) {
    auto r = session_->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << sql;
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(SqlTest, SimpleSelection) {
  QueryResult r = MustQuery(
      "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 90");
  EXPECT_EQ(r.rows.size(), 9u);
  EXPECT_EQ(r.schema.num_fields(), 2);
  for (const Row& row : r.rows) {
    EXPECT_GT(row.Get(1).int64_v(), 90);
  }
}

TEST_F(SqlTest, ProjectionExpressions) {
  QueryResult r = MustQuery(
      "SELECT pageRank * 2 + 1 AS x FROM rankings WHERE pageRank = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(21));
  EXPECT_EQ(r.schema.field(0).name, "x");
}

TEST_F(SqlTest, SelectStar) {
  QueryResult r = MustQuery("SELECT * FROM rankings WHERE pageRank < 3");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.num_fields(), 3);
}

TEST_F(SqlTest, GlobalAggregates) {
  QueryResult r = MustQuery(
      "SELECT COUNT(*), SUM(pageRank), MIN(pageRank), MAX(pageRank), "
      "AVG(pageRank) FROM rankings");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(100));
  EXPECT_EQ(r.rows[0].Get(1), Value::Int64(4950));
  EXPECT_EQ(r.rows[0].Get(2), Value::Int64(0));
  EXPECT_EQ(r.rows[0].Get(3), Value::Int64(99));
  EXPECT_DOUBLE_EQ(r.rows[0].Get(4).double_v(), 49.5);
}

TEST_F(SqlTest, GroupByAggregation) {
  QueryResult r = MustQuery(
      "SELECT sourceIP, SUM(adRevenue) FROM visits GROUP BY sourceIP");
  EXPECT_EQ(r.rows.size(), 7u);
  double total = 0;
  for (const Row& row : r.rows) total += row.Get(1).double_v();
  // Sum over all rows: revenue pattern 1..4 repeating over 300 rows.
  double expected = 0;
  for (int i = 0; i < 300; ++i) expected += 1.0 + (i % 4);
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST_F(SqlTest, GroupByExpressionSubstr) {
  QueryResult r = MustQuery(
      "SELECT SUBSTR(sourceIP, 1, 3), COUNT(*) FROM visits "
      "GROUP BY SUBSTR(sourceIP, 1, 3)");
  // All IPs start with "ip0".."ip6"; SUBSTR(.,1,3) yields "ip0".."ip6".
  EXPECT_EQ(r.rows.size(), 7u);
}

TEST_F(SqlTest, CountDistinct) {
  QueryResult r = MustQuery(
      "SELECT COUNT(DISTINCT sourceIP) FROM visits");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(7));
}

TEST_F(SqlTest, HavingFilter) {
  QueryResult r = MustQuery(
      "SELECT sourceIP, COUNT(*) AS c FROM visits GROUP BY sourceIP "
      "HAVING COUNT(*) > 42");
  // 300 rows over 7 IPs: ips 0..5 appear 43 times, ip6 appears 42.
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(SqlTest, OrderByWithLimit) {
  QueryResult r = MustQuery(
      "SELECT pageURL, pageRank FROM rankings ORDER BY pageRank DESC LIMIT 5");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].Get(1), Value::Int64(99));
  EXPECT_EQ(r.rows[4].Get(1), Value::Int64(95));
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i].Get(1).int64_v(), r.rows[i - 1].Get(1).int64_v());
  }
}

TEST_F(SqlTest, OrderByAscendingFullSort) {
  QueryResult r = MustQuery("SELECT pageRank FROM rankings ORDER BY pageRank");
  ASSERT_EQ(r.rows.size(), 100u);
  for (size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_EQ(r.rows[i].Get(0), Value::Int64(static_cast<int64_t>(i)));
  }
}

TEST_F(SqlTest, LimitWithoutOrder) {
  QueryResult r = MustQuery("SELECT * FROM rankings LIMIT 7");
  EXPECT_EQ(r.rows.size(), 7u);
}

TEST_F(SqlTest, Distinct) {
  QueryResult r = MustQuery("SELECT DISTINCT sourceIP FROM visits");
  EXPECT_EQ(r.rows.size(), 7u);
}

TEST_F(SqlTest, ExplicitJoin) {
  QueryResult r = MustQuery(
      "SELECT r.pageURL, r.pageRank, v.adRevenue FROM rankings r "
      "JOIN visits v ON r.pageURL = v.destURL WHERE r.pageRank < 5");
  // urls 0..4 each visited 6 times (300 visits over 50 urls).
  EXPECT_EQ(r.rows.size(), 30u);
  for (const Row& row : r.rows) {
    EXPECT_LT(row.Get(1).int64_v(), 5);
  }
}

TEST_F(SqlTest, CommaJoinWithDateBetween) {
  QueryResult r = MustQuery(
      "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) AS totalRevenue "
      "FROM rankings AS R, visits AS UV "
      "WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN "
      "Date('2000-01-10') AND Date('2000-01-15') GROUP BY UV.sourceIP");
  EXPECT_GT(r.rows.size(), 0u);
  EXPECT_LE(r.rows.size(), 7u);
}

TEST_F(SqlTest, JoinStrategyRecordedInMetrics) {
  QueryResult r = MustQuery(
      "SELECT COUNT(*) FROM rankings r JOIN visits v ON r.pageURL = v.destURL");
  EXPECT_FALSE(r.metrics.join_strategy.empty());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(300));
}

TEST_F(SqlTest, SubqueryInFrom) {
  QueryResult r = MustQuery(
      "SELECT c FROM (SELECT sourceIP, COUNT(*) AS c FROM visits "
      "GROUP BY sourceIP) t WHERE c > 42");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(SqlTest, CaseExpression) {
  QueryResult r = MustQuery(
      "SELECT CASE WHEN pageRank > 50 THEN 'high' ELSE 'low' END AS bucket, "
      "COUNT(*) FROM rankings GROUP BY CASE WHEN pageRank > 50 THEN 'high' "
      "ELSE 'low' END");
  ASSERT_EQ(r.rows.size(), 2u);
  std::map<std::string, int64_t> got;
  for (const Row& row : r.rows) got[row.Get(0).str()] = row.Get(1).int64_v();
  EXPECT_EQ(got["high"], 49);
  EXPECT_EQ(got["low"], 51);
}

TEST_F(SqlTest, UdfInQuery) {
  ASSERT_TRUE(session_->udfs()
                  .Register("RANK_BAND",
                            {[](const std::vector<Value>& args) {
                               return Value::Int64(args[0].AsInt64() / 10);
                             },
                             TypeKind::kInt64, 4.0})
                  .ok());
  QueryResult r = MustQuery(
      "SELECT RANK_BAND(pageRank), COUNT(*) FROM rankings "
      "GROUP BY RANK_BAND(pageRank)");
  EXPECT_EQ(r.rows.size(), 10u);
}

TEST_F(SqlTest, CachedTableReturnsSameResults) {
  QueryResult disk = MustQuery(
      "SELECT sourceIP, SUM(adRevenue) FROM visits GROUP BY sourceIP");
  ASSERT_TRUE(session_->CacheTable("visits").ok());
  QueryResult mem = MustQuery(
      "SELECT sourceIP, SUM(adRevenue) FROM visits GROUP BY sourceIP");
  auto key = [](const Row& r) { return r.Get(0).str(); };
  std::map<std::string, double> a, b;
  for (const Row& r : disk.rows) a[key(r)] = r.Get(1).double_v();
  for (const Row& r : mem.rows) b[key(r)] = r.Get(1).double_v();
  EXPECT_EQ(a, b);
}

TEST_F(SqlTest, CachedScanIsFasterThanDisk) {
  QueryResult disk = MustQuery("SELECT COUNT(*) FROM visits");
  ASSERT_TRUE(session_->CacheTable("visits").ok());
  QueryResult mem = MustQuery("SELECT COUNT(*) FROM visits");
  EXPECT_LT(mem.metrics.virtual_seconds, disk.metrics.virtual_seconds);
}

TEST_F(SqlTest, UncacheTableStatementRestoresDiskScan) {
  QueryResult disk = MustQuery("SELECT COUNT(*) FROM visits");
  ASSERT_TRUE(session_->CacheTable("visits").ok());
  QueryResult mem = MustQuery("SELECT COUNT(*) FROM visits");
  EXPECT_LT(mem.metrics.virtual_seconds, disk.metrics.virtual_seconds);

  MustQuery("UNCACHE TABLE visits");
  QueryResult after = MustQuery("SELECT COUNT(*) FROM visits");
  // Back to the DFS path: same rows, disk-speed scan again.
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0].Get(0).int64_v(), disk.rows[0].Get(0).int64_v());
  EXPECT_DOUBLE_EQ(after.metrics.virtual_seconds,
                   disk.metrics.virtual_seconds);

  // Uncaching an uncached table is a no-op; a missing table is an error.
  EXPECT_TRUE(session_->Sql("UNCACHE TABLE visits").ok());
  EXPECT_FALSE(session_->Sql("UNCACHE TABLE nope").ok());
}

TEST_F(SqlTest, MapPruningSkipsPartitions) {
  // pageRank correlates with row order, so cached partitions have tight
  // ranges; an equality predicate should prune most partitions.
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  QueryResult r = MustQuery("SELECT * FROM rankings WHERE pageRank = 57");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GT(r.metrics.partitions_pruned, 0);
  // Correctness must be unaffected with pruning disabled.
  session_->options().map_pruning = false;
  QueryResult r2 = MustQuery("SELECT * FROM rankings WHERE pageRank = 57");
  EXPECT_EQ(r2.rows.size(), 1u);
  EXPECT_EQ(r2.metrics.partitions_pruned, 0);
  session_->options().map_pruning = true;
}

TEST_F(SqlTest, CreateTableAsSelectCached) {
  QueryResult r = MustQuery(
      "CREATE TABLE top_pages TBLPROPERTIES (\"shark.cache\"=true) AS "
      "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 80");
  EXPECT_TRUE(r.rows.empty());
  QueryResult q = MustQuery("SELECT COUNT(*) FROM top_pages");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].Get(0), Value::Int64(19));
}

TEST_F(SqlTest, CreateTableAsSelectOnDisk) {
  MustQuery(
      "CREATE TABLE copies AS SELECT pageURL FROM rankings WHERE "
      "pageRank < 10");
  QueryResult q = MustQuery("SELECT COUNT(*) FROM copies");
  EXPECT_EQ(q.rows[0].Get(0), Value::Int64(10));
}

TEST_F(SqlTest, CoPartitionedJoinUsed) {
  MustQuery(
      "CREATE TABLE r_mem TBLPROPERTIES (\"shark.cache\"=true) AS "
      "SELECT * FROM rankings DISTRIBUTE BY pageURL");
  MustQuery(
      "CREATE TABLE v_mem TBLPROPERTIES (\"shark.cache\"=true, "
      "\"copartition\"=\"r_mem\") AS SELECT * FROM visits DISTRIBUTE BY "
      "destURL");
  QueryResult r = MustQuery(
      "SELECT COUNT(*) FROM r_mem r JOIN v_mem v ON r.pageURL = v.destURL");
  EXPECT_EQ(r.metrics.join_strategy, "copartition join");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(300));
}

TEST_F(SqlTest, DropTable) {
  MustQuery("CREATE TABLE doomed AS SELECT * FROM rankings LIMIT 5");
  MustQuery("DROP TABLE doomed");
  EXPECT_FALSE(session_->Sql("SELECT * FROM doomed").ok());
  EXPECT_TRUE(session_->Sql("DROP TABLE IF EXISTS doomed").ok());
}

TEST_F(SqlTest, Sql2RddReturnsDistributedResult) {
  auto trdd = session_->Sql2Rdd(
      "SELECT pageRank, avgDuration FROM rankings WHERE pageRank >= 50");
  ASSERT_TRUE(trdd.ok()) << trdd.status().ToString();
  EXPECT_EQ(trdd->schema.num_fields(), 2);
  auto rows = session_->context().Collect(trdd->rdd);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
}

TEST_F(SqlTest, ExplainShowsOptimizedPlan) {
  auto plan = session_->Explain(
      "SELECT pageURL FROM rankings WHERE pageRank > 10");
  ASSERT_TRUE(plan.ok());
  // Predicate pushdown: the filter must be inside the scan.
  EXPECT_NE(plan->find("pushed="), std::string::npos);
  EXPECT_NE(plan->find("Scan rankings"), std::string::npos);
}

TEST_F(SqlTest, AnalysisErrors) {
  EXPECT_FALSE(session_->Sql("SELECT nope FROM rankings").ok());
  EXPECT_FALSE(session_->Sql("SELECT * FROM no_such_table").ok());
  EXPECT_FALSE(session_->Sql("SELECT UNKNOWN_FN(pageRank) FROM rankings").ok());
  EXPECT_FALSE(
      session_->Sql("SELECT pageURL, SUM(pageRank) FROM rankings").ok());
}

TEST_F(SqlTest, PdeChoosesReducers) {
  QueryResult r = MustQuery(
      "SELECT destURL, COUNT(*) FROM visits GROUP BY destURL");
  EXPECT_GT(r.metrics.chosen_reducers, 0);
  EXPECT_EQ(r.rows.size(), 50u);
}

TEST_F(SqlTest, StaticVsPdeSameAnswer) {
  QueryResult pde = MustQuery(
      "SELECT destURL, COUNT(*) FROM visits GROUP BY destURL");
  session_->options().pde = false;
  QueryResult fixed = MustQuery(
      "SELECT destURL, COUNT(*) FROM visits GROUP BY destURL");
  session_->options().pde = true;
  std::map<std::string, int64_t> a, b;
  for (const Row& r : pde.rows) a[r.Get(0).str()] = r.Get(1).int64_v();
  for (const Row& r : fixed.rows) b[r.Get(0).str()] = r.Get(1).int64_v();
  EXPECT_EQ(a, b);
}

TEST_F(SqlTest, QueryCorrectUnderNodeFailure) {
  ASSERT_TRUE(session_->CacheTable("visits").ok());
  MustQuery("SELECT COUNT(*) FROM visits");  // warm the cache
  session_->context().InjectFault(
      FaultEvent{FaultEvent::Kind::kKill, session_->context().now(), 1, 1.0});
  QueryResult r = MustQuery(
      "SELECT sourceIP, COUNT(*) FROM visits GROUP BY sourceIP");
  EXPECT_EQ(r.rows.size(), 7u);
  int64_t total = 0;
  for (const Row& row : r.rows) total += row.Get(1).int64_v();
  EXPECT_EQ(total, 300);
}

}  // namespace
}  // namespace shark
