// Vectorized execution tests: batch kernels must replicate Value semantics
// (NULL, NaN, +/-0.0, integers above 2^53) bit for bit, selection vectors
// must handle the degenerate shapes, and the batch path must return the same
// rows AND the same virtual_seconds as the row-at-a-time path — only host
// wall-clock is allowed to differ.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/table_partition.h"
#include "exec/vectorized/column_batch.h"
#include "exec/vectorized/kernels.h"
#include "sql/expr_compiler.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace shark {
namespace {

constexpr int64_t kTwo53 = 9007199254740992;  // 2^53

/// A decoded batch plus the partition that owns the string storage the
/// batch's views point into (the documented ColumnBatch lifetime contract).
struct BatchFixture {
  std::shared_ptr<const TablePartition> part;
  vec::ColumnBatch batch;
};

BatchFixture BatchOf(const Schema& schema, const std::vector<Row>& rows) {
  BatchFixture f;
  f.part = TablePartition::FromRows(schema, rows);
  std::vector<int> wanted;
  for (size_t c = 0; c < schema.fields().size(); ++c) {
    wanted.push_back(static_cast<int>(c));
  }
  Status st =
      vec::DecodePartition(*f.part, schema.fields(), wanted, "t", &f.batch);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return f;
}

/// One nasty column per type, padded with NULLs to a common length. The
/// returned rows are the ground truth the batch is checked against.
std::vector<Row> NastyRows(Schema* schema) {
  *schema = Schema({{"i", TypeKind::kInt64},
                    {"d", TypeKind::kDouble},
                    {"s", TypeKind::kString},
                    {"dt", TypeKind::kDate},
                    {"bo", TypeKind::kBool}});
  std::vector<Value> ints = {
      Value::Int64(0),         Value::Int64(1),
      Value::Int64(-1),        Value::Null(),
      Value::Int64(kTwo53),    Value::Int64(kTwo53 + 1),
      Value::Int64(INT64_MAX), Value::Int64(INT64_MIN),
  };
  std::vector<Value> dbls = {
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(std::nan("")),
      Value::Null(),
      Value::Double(static_cast<double>(kTwo53)),
      Value::Double(9007199254740994.0),
      Value::Double(HUGE_VAL),
      Value::Double(-1e308),
  };
  std::vector<Value> strs = {
      Value::String(""),     Value::String("a"), Value::String("it's"),
      Value::Null(),         Value::String("%"), Value::String("hello.html"),
      Value::String("US"),   Value::String("UK"),
  };
  std::vector<Value> dates = {
      Value::Date(0),       Value::Date(-719162), Value::Date(2932896),
      Value::Null(),        Value::Date(1),       Value::Date(-1),
      Value::Date(1000000), Value::Null(),
  };
  std::vector<Value> bools = {
      Value::Bool(true), Value::Bool(false), Value::Bool(true), Value::Null(),
      Value::Null(),     Value::Bool(false), Value::Bool(true), Value::Bool(false),
  };
  std::vector<Row> rows;
  for (size_t r = 0; r < ints.size(); ++r) {
    rows.push_back(Row({ints[r], dbls[r], strs[r], dates[r], bools[r]}));
  }
  return rows;
}

TEST(VecBatchTest, DecodeRoundTripsNastyValues) {
  Schema schema;
  std::vector<Row> rows = NastyRows(&schema);
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  ASSERT_EQ(batch.num_rows, rows.size());
  ASSERT_EQ(batch.cols.size(), 5u);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < 5; ++c) {
      Value got = batch.cols[c].ValueAt(r);
      const Value& want = rows[r].fields[c];
      bool both_null = got.is_null() && want.is_null();
      EXPECT_TRUE(both_null || got == want)
          << "col " << c << " row " << r << ": " << got.ToString() << " vs "
          << want.ToString();
    }
    Row materialized = vec::MaterializeRow(batch, r);
    ASSERT_EQ(materialized.fields.size(), 5u);
  }
}

TEST(VecKernelTest, HashCellMatchesValueHash) {
  Schema schema;
  std::vector<Row> rows = NastyRows(&schema);
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  for (size_t c = 0; c < batch.cols.size(); ++c) {
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(vec::HashCell(batch.cols[c], r), rows[r].fields[c].Hash())
          << "col " << c << " row " << r << ": "
          << rows[r].fields[c].ToString();
    }
  }
}

TEST(VecKernelTest, HashKeyColumnsMatchesKeyHash) {
  Schema schema;
  std::vector<Row> rows = NastyRows(&schema);
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  // Two-column key (double, string) — the exact fold KeyHash applies.
  std::vector<const vec::ColumnVector*> keys = {&batch.cols[1],
                                                &batch.cols[2]};
  std::vector<uint64_t> hashes;
  vec::HashKeyColumns(keys, batch.num_rows, &hashes);
  ASSERT_EQ(hashes.size(), batch.num_rows);
  KeyHasher<Row> hasher;
  for (size_t r = 0; r < rows.size(); ++r) {
    Row key({rows[r].fields[1], rows[r].fields[2]});
    EXPECT_EQ(hashes[r], hasher(key)) << "row " << r;
  }
  // Empty key set (global aggregate): every hash is KeyHash(empty Row).
  std::vector<uint64_t> empty_hashes;
  vec::HashKeyColumns({}, 3, &empty_hashes);
  ASSERT_EQ(empty_hashes.size(), 3u);
  for (uint64_t h : empty_hashes) EXPECT_EQ(h, hasher(Row()));
}

TEST(VecKernelTest, GroupTableUsesValueEquality) {
  // 0.0 / -0.0 collapse, all NaNs collapse, NULL is its own group, and
  // kTwo53 as double groups apart from kTwo53+2 as double.
  Schema schema({{"d", TypeKind::kDouble}});
  std::vector<Row> rows = {
      Row({Value::Double(0.0)}),
      Row({Value::Double(-0.0)}),
      Row({Value::Double(std::nan(""))}),
      Row({Value::Double(-std::nan(""))}),
      Row({Value::Null()}),
      Row({Value::Null()}),
      Row({Value::Double(static_cast<double>(kTwo53))}),
      Row({Value::Double(9007199254740994.0)}),
      Row({Value::Double(0.0)}),
  };
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  std::vector<const vec::ColumnVector*> keys = {&batch.cols[0]};
  std::vector<uint64_t> hashes;
  vec::HashKeyColumns(keys, batch.num_rows, &hashes);
  vec::VecGroupTable table;
  std::vector<size_t> group_of;
  for (size_t r = 0; r < rows.size(); ++r) {
    group_of.push_back(table.FindOrInsert(keys, r, hashes[r]));
  }
  EXPECT_EQ(table.size(), 5u);  // {0.0}, {NaN}, {NULL}, {2^53}, {2^53+2}
  EXPECT_EQ(group_of[0], group_of[1]);  // +0.0 == -0.0
  EXPECT_EQ(group_of[0], group_of[8]);
  EXPECT_EQ(group_of[2], group_of[3]);  // NaN == NaN
  EXPECT_EQ(group_of[4], group_of[5]);  // NULL groups with NULL
  EXPECT_NE(group_of[6], group_of[7]);  // 2^53 != 2^53+2
  // Insertion order is the group order.
  EXPECT_TRUE(table.group_keys()[0] == Row({Value::Double(0.0)}));
  // Group the same data many times over to force a rehash.
  vec::VecGroupTable big;
  Schema ischema({{"i", TypeKind::kInt64}});
  std::vector<Row> irows;
  for (int i = 0; i < 3000; ++i) irows.push_back(Row({Value::Int64(i % 700)}));
  BatchFixture ifx = BatchOf(ischema, irows);
  vec::ColumnBatch& ibatch = ifx.batch;
  std::vector<const vec::ColumnVector*> ikeys = {&ibatch.cols[0]};
  std::vector<uint64_t> ihashes;
  vec::HashKeyColumns(ikeys, ibatch.num_rows, &ihashes);
  for (size_t r = 0; r < irows.size(); ++r) {
    size_t g = big.FindOrInsert(ikeys, r, ihashes[r]);
    EXPECT_EQ(g, static_cast<size_t>(r % 700));
  }
  EXPECT_EQ(big.size(), 700u);
}

TEST(VecBatchTest, SelectTrueEdgeCases) {
  vec::ColumnVector bools;
  bools.type = TypeKind::kBool;
  bools.storage = vec::ColumnVector::Storage::kInt64;
  bools.n = 6;
  bools.ints = {0, 1, 0, 1, 1, 0};
  bools.nulls = {0, 0, 0, 1, 0, 0};  // row 3 is NULL: counts as false

  vec::SelVector sel;
  vec::SelectTrue(bools, 0, 6, &sel);
  EXPECT_EQ(sel, (vec::SelVector{1, 4}));

  // Windowed evaluation appends absolute indices.
  vec::ColumnVector window = bools;
  window.n = 3;
  window.ints = {0, 1, 1};
  window.nulls = {0, 0, 0};
  vec::SelectTrue(window, 6, 9, &sel);
  EXPECT_EQ(sel, (vec::SelVector{1, 4, 7, 8}));

  // Empty selection.
  vec::ColumnVector none;
  none.type = TypeKind::kBool;
  none.storage = vec::ColumnVector::Storage::kInt64;
  none.n = 4;
  none.ints = {0, 0, 0, 0};
  vec::SelVector empty;
  vec::SelectTrue(none, 0, 4, &empty);
  EXPECT_TRUE(empty.empty());

  // All-NULL verdict selects nothing.
  vec::ColumnVector all_null;
  all_null.type = TypeKind::kBool;
  all_null.storage = vec::ColumnVector::Storage::kAllNull;
  all_null.n = 4;
  vec::SelectTrue(all_null, 0, 4, &empty);
  EXPECT_TRUE(empty.empty());

  // Full selection.
  vec::ColumnVector all;
  all.type = TypeKind::kBool;
  all.storage = vec::ColumnVector::Storage::kInt64;
  all.n = 3;
  all.ints = {1, 1, 1};
  vec::SelVector full;
  vec::SelectTrue(all, 0, 3, &full);
  EXPECT_EQ(full, (vec::SelVector{0, 1, 2}));

  // Single survivor.
  vec::ColumnVector one;
  one.type = TypeKind::kBool;
  one.storage = vec::ColumnVector::Storage::kInt64;
  one.n = 3;
  one.ints = {0, 0, 1};
  vec::SelVector single;
  vec::SelectTrue(one, 0, 3, &single);
  EXPECT_EQ(single, (vec::SelVector{2}));
}

TEST(VecBatchTest, GatherBatchCompactsEveryStorage) {
  Schema schema;
  std::vector<Row> rows = NastyRows(&schema);
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  vec::SelVector sel = {1, 4, 6};
  vec::ColumnBatch out = vec::GatherBatch(batch, sel);
  ASSERT_EQ(out.num_rows, 3u);
  for (size_t k = 0; k < sel.size(); ++k) {
    for (size_t c = 0; c < 5; ++c) {
      Value got = out.cols[c].ValueAt(k);
      const Value& want = rows[static_cast<size_t>(sel[k])].fields[c];
      bool both_null = got.is_null() && want.is_null();
      EXPECT_TRUE(both_null || got == want) << "col " << c << " sel " << k;
    }
  }
  // Empty selection yields an empty batch with the same arity.
  vec::ColumnBatch none = vec::GatherBatch(batch, {});
  EXPECT_EQ(none.num_rows, 0u);
  ASSERT_EQ(none.cols.size(), 5u);
}

// Satellite: a stored chunk whose type disagrees with the analyzer's slot
// type must fail loudly at the batch boundary, not silently misread bits.
TEST(VecBatchTest, DecodeTypeMismatchIsClearError) {
  Schema stored({{"x", TypeKind::kInt64}});
  std::vector<Row> rows = {Row({Value::Int64(1)}), Row({Value::Int64(2)})};
  auto part = TablePartition::FromRows(stored, rows);
  std::vector<Field> bound = {{"x", TypeKind::kDouble}};
  vec::ColumnBatch batch;
  Status st = vec::DecodePartition(*part, bound, {0}, "mytable", &batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mytable.x"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("BIGINT"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("DOUBLE"), std::string::npos) << st.message();
}

/// Binds columns a,b,c,s to slots 0..3 (as in expr_compiler_test).
ExprPtr Bind(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      int slot = e->name == "a" ? 0 : e->name == "b" ? 1 : e->name == "c" ? 2 : 3;
      e->kind = ExprKind::kSlot;
      e->slot = slot;
    }
    for (auto& ch : e->children) bind(ch.get());
  };
  bind(parsed->get());
  return *parsed;
}

/// Property: EvalBatch == Eval per row, on every expression form, over rows
/// mixing the nasty values into the a/b/c/s slots.
class EvalBatchVsScalarTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EvalBatchVsScalarTest, Agree) {
  ExprPtr expr = Bind(GetParam());
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto compiled = compiler.Compile(*expr);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Schema schema({{"a", TypeKind::kInt64},
                 {"b", TypeKind::kDouble},
                 {"c", TypeKind::kString},
                 {"s", TypeKind::kInt64}});
  const char* strings[] = {"US", "UK", "abc", "", "hello.html", "it's"};
  std::vector<int64_t> nasty_ints = {0,     1,         -1,       42,
                                     120,   kTwo53,    kTwo53 + 1,
                                     INT64_MAX, INT64_MIN, 7};
  std::vector<double> nasty_dbls = {0.0,    -0.0,   2.5,  std::nan(""),
                                    HUGE_VAL, -1e308, 1e-300,
                                    static_cast<double>(kTwo53), 4.0, 55.5};
  std::vector<Row> rows;
  for (int i = 0; i < 240; ++i) {
    size_t u = static_cast<size_t>(i);
    Row row({i % 11 == 0 ? Value::Null()
                         : Value::Int64(nasty_ints[u % nasty_ints.size()]),
             i % 7 == 0 ? Value::Null()
                        : Value::Double(nasty_dbls[u % nasty_dbls.size()]),
             Value::String(strings[u % 6]),
             i % 3 == 0 ? Value::Null() : Value::Int64(i % 5)});
    rows.push_back(std::move(row));
  }
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  // Evaluate in uneven windows to exercise the begin/end offsets.
  size_t window = 37;
  for (size_t b = 0; b < batch.num_rows; b += window) {
    size_t e = std::min(batch.num_rows, b + window);
    vec::ColumnVector out;
    compiled->EvalBatch(batch, b, e, &out);
    ASSERT_EQ(out.n, e - b);
    for (size_t i = b; i < e; ++i) {
      Value scalar = compiled->Eval(rows[i]);
      Value batched = out.ValueAt(i - b);
      bool both_null = scalar.is_null() && batched.is_null();
      EXPECT_TRUE(both_null || scalar == batched)
          << GetParam() << " row=" << rows[i].ToString()
          << " scalar=" << scalar.ToString()
          << " batched=" << batched.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, EvalBatchVsScalarTest,
    ::testing::Values(
        "a + 1", "a * 2 - b", "a / 0", "a / b", "a % 7", "a % 0", "-a", "-b",
        "NOT (a > 5)", "a > 50 AND b < 5.0", "a > 50 OR s IS NULL",
        "a BETWEEN 10 AND 90", "a NOT BETWEEN 10 AND 90",
        "b BETWEEN 0.0 AND 5.0", "b BETWEEN -1.5 AND 2.5",
        "c BETWEEN 'UK' AND 'abc'", "a = b", "a < b", "a >= b", "b = 0.0",
        "a = 9007199254740992", "b <> c", "c IN ('US', 'UK')",
        "c NOT IN ('abc')", "a IN (1, 2.5, 42)", "s IS NULL", "s IS NOT NULL",
        "c LIKE '%.html'", "c NOT LIKE 'U%'", "SUBSTR(c, 1, 2)",
        "SUBSTR(c, 2)", "SUBSTR(c, 0 - 1, 3)", "LOWER(c)", "LENGTH(c) + a",
        "CASE WHEN a > 100 THEN 'big' WHEN a > 10 THEN 'mid' ELSE 'small' END",
        "CASE WHEN a > 1000 THEN 1 END", "COALESCE(s, a)",
        "IF(a > 50, b, 0.0 - b)", "a = 10 AND b = 2.5 OR c = 'US'",
        "ABS(0 - a) + FLOOR(b)", "a * a", "b * b + 1.5"));

TEST(EvalBatchTest, UdfFallsBackPerRow) {
  UdfRegistry udfs;
  ASSERT_TRUE(udfs.Register("TWICE",
                            {[](const std::vector<Value>& args) {
                               return Value::Int64(args[0].AsInt64() * 2);
                             },
                             TypeKind::kInt64, 2.0})
                  .ok());
  ExprPtr expr = Bind("TWICE(a) + 1");
  ExprCompiler compiler(&udfs);
  auto compiled = compiler.Compile(*expr);
  ASSERT_TRUE(compiled.ok());
  Schema schema({{"a", TypeKind::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(Row({Value::Int64(i)}));
  BatchFixture fx = BatchOf(schema, rows);
  vec::ColumnBatch& batch = fx.batch;
  vec::ColumnVector out;
  compiled->EvalBatch(batch, 0, batch.num_rows, &out);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.ValueAt(i), Value::Int64(static_cast<int64_t>(i) * 2 + 1));
  }
}

// End to end: the vectorized path must return the same rows AND charge the
// same virtual time as the scalar path; only wall-clock may change.
class VecSqlTest : public ::testing::Test {
 protected:
  // Each variant runs in a fresh session/cluster so both start from virtual
  // clock 0. Within one session the clock carries across queries, and
  // (end - start) rounds to a different ULP depending on the absolute clock
  // position — identical scalar queries already differ in the last bit
  // between the first and second run of a session. Fresh sessions make the
  // bit-for-bit virtual_seconds comparison below meaningful.
  std::unique_ptr<SharkSession> MakeSession() {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    auto session = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));
    Schema schema({{"x", TypeKind::kInt64},
                   {"y", TypeKind::kDouble},
                   {"name", TypeKind::kString}});
    std::vector<Row> rows;
    for (int i = 0; i < 4000; ++i) {
      double y = (i % 97 == 0) ? std::nan("")
                               : (i % 95 == 0 ? -0.0 : (i % 13) * 0.5);
      Value x = (i % 89 == 0) ? Value::Null() : Value::Int64(i % 700);
      rows.push_back(Row(
          {x, Value::Double(y), Value::String("n" + std::to_string(i % 23))}));
    }
    EXPECT_TRUE(session->CreateDfsTable("t", schema, rows, 4).ok());
    if (cache_) EXPECT_TRUE(session->CacheTable("t").ok());
    session->options().compile_expressions = compile_;
    return session;
  }

  struct RunPair {
    QueryResult on;
    QueryResult off;
  };

  QueryResult RunOne(bool vectorized, const std::string& q) {
    auto session = MakeSession();
    session->options().vectorized = vectorized;
    auto r = session->Sql(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  RunPair RunBoth(const std::string& q) {
    return {RunOne(true, q), RunOne(false, q)};
  }

  static std::multiset<std::string> Keyed(const QueryResult& r) {
    std::multiset<std::string> out;
    for (const Row& row : r.rows) out.insert(row.ToString());
    return out;
  }

  static bool UsedVecStage(const QueryResult& r) {
    if (r.profile == nullptr) return false;
    for (const auto& st : r.profile->stages) {
      if (st.label.find("vec") != std::string::npos) return true;
    }
    return false;
  }

  void ExpectIdentical(const RunPair& p, const std::string& q,
                       bool expect_vec_stage) {
    EXPECT_EQ(Keyed(p.on), Keyed(p.off)) << q;
    // Virtual time is a pure function of the charges — byte-for-byte equal.
    EXPECT_EQ(p.on.metrics.virtual_seconds, p.off.metrics.virtual_seconds) << q;
    EXPECT_EQ(p.on.metrics.stages, p.off.metrics.stages) << q;
    EXPECT_EQ(p.on.metrics.tasks, p.off.metrics.tasks) << q;
    EXPECT_EQ(p.on.metrics.work.rows_processed,
              p.off.metrics.work.rows_processed) << q;
    EXPECT_EQ(p.on.metrics.work.mem_read_bytes,
              p.off.metrics.work.mem_read_bytes) << q;
    EXPECT_EQ(p.on.metrics.work.hash_records,
              p.off.metrics.work.hash_records) << q;
    EXPECT_EQ(UsedVecStage(p.on), expect_vec_stage) << q;
    EXPECT_FALSE(UsedVecStage(p.off)) << q;
  }

  bool cache_ = true;
  bool compile_ = false;
};

TEST_F(VecSqlTest, ScanFilterMatchesScalar) {
  const std::string q = "SELECT x, y, name FROM t WHERE x > 350";
  RunPair p = RunBoth(q);
  // The fused filter preserves row order exactly, not just as a multiset.
  ASSERT_EQ(p.on.rows.size(), p.off.rows.size());
  for (size_t i = 0; i < p.on.rows.size(); ++i) {
    EXPECT_TRUE(p.on.rows[i].ToString() == p.off.rows[i].ToString()) << i;
  }
  ExpectIdentical(p, q, true);
}

TEST_F(VecSqlTest, ScanProjectMatchesScalar) {
  const std::string q =
      "SELECT x * 2 + 1, SUBSTR(name, 1, 2), y * y FROM t WHERE y > 0.5";
  RunPair p = RunBoth(q);
  ASSERT_EQ(p.on.rows.size(), p.off.rows.size());
  for (size_t i = 0; i < p.on.rows.size(); ++i) {
    EXPECT_TRUE(p.on.rows[i].ToString() == p.off.rows[i].ToString()) << i;
  }
  ExpectIdentical(p, q, true);
}

TEST_F(VecSqlTest, GroupByMatchesScalar) {
  const std::string q =
      "SELECT name, COUNT(*), SUM(y), MIN(x), MAX(y), AVG(y) "
      "FROM t WHERE x < 600 GROUP BY name";
  ExpectIdentical(RunBoth(q), q, true);
}

TEST_F(VecSqlTest, GroupByNastyDoubleKeysMatchesScalar) {
  // NaN and -0.0 group keys plus NULL x keys must land in the same groups
  // under both engines.
  const std::string q = "SELECT y, COUNT(*), SUM(x) FROM t GROUP BY y";
  ExpectIdentical(RunBoth(q), q, true);
  const std::string q2 = "SELECT x, COUNT(*) FROM t GROUP BY x";
  ExpectIdentical(RunBoth(q2), q2, true);
}

TEST_F(VecSqlTest, GlobalAggAndDistinctMatchScalar) {
  const std::string q =
      "SELECT COUNT(*), COUNT(DISTINCT name), SUM(y), AVG(x) FROM t";
  ExpectIdentical(RunBoth(q), q, true);
}

TEST_F(VecSqlTest, ExpressionGroupKeyMatchesScalar) {
  const std::string q =
      "SELECT SUBSTR(name, 1, 2), SUM(y) FROM t GROUP BY SUBSTR(name, 1, 2)";
  ExpectIdentical(RunBoth(q), q, true);
}

TEST_F(VecSqlTest, UncachedTableFallsBackToScalar) {
  cache_ = false;
  const std::string q = "SELECT x FROM t WHERE x > 100";
  RunPair p = RunBoth(q);
  // Not cached: both runs take the scalar DFS path.
  ExpectIdentical(p, q, false);
}

TEST_F(VecSqlTest, CompiledChargesStayIdentical) {
  // With compile_expressions on, the scalar path charges the cheaper
  // compiled formula; the vectorized path must mirror that choice.
  compile_ = true;
  const std::string q =
      "SELECT name, SUM(x) FROM t WHERE y > 1.0 GROUP BY name";
  ExpectIdentical(RunBoth(q), q, true);
}

}  // namespace
}  // namespace shark
