#include <stdexcept>

#include <gtest/gtest.h>

#include "rdd/context.h"
#include "rdd/pair_rdd.h"
#include "sim/cost_model.h"

namespace shark {
namespace {

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return v;
}

TEST(CostModelTest, WorkTermsAdditive) {
  CostModel model{HardwareModel()};
  EngineProfile p = EngineProfile::Shark();
  TaskWork w;
  EXPECT_DOUBLE_EQ(model.WorkSeconds(w, p, 1.0), 0.0);
  w.rows_processed = 10000000;  // 10M rows * 100ns = 1s
  EXPECT_NEAR(model.WorkSeconds(w, p, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(model.WorkSeconds(w, p, 2.0), 2.0, 1e-9);  // scale doubles it
}

TEST(CostModelTest, HadoopCpuMultiplierApplies) {
  CostModel model{HardwareModel()};
  TaskWork w;
  w.rows_processed = 10000000;
  double shark = model.WorkSeconds(w, EngineProfile::Shark(), 1.0);
  double hadoop = model.WorkSeconds(w, EngineProfile::Hadoop(), 1.0);
  EXPECT_NEAR(hadoop, 2.0 * shark, 1e-9);
}

TEST(CostModelTest, DfsWritePaysReplication) {
  CostModel model{HardwareModel()};
  EngineProfile p = EngineProfile::Shark();
  TaskWork w;
  w.dfs_write_bytes = 100 * 1000 * 1000;
  double with3 = model.WorkSeconds(w, p, 1.0);
  p.dfs_replication = 1;
  double with1 = model.WorkSeconds(w, p, 1.0);
  EXPECT_GT(with3, with1);  // extra replicas go over the network
}

TEST(SchedulerTest, HeartbeatQuantizesStarts) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.hardware.cores_per_node = 2;
  cfg.profile = EngineProfile::Shark();
  cfg.profile.heartbeat_interval_sec = 3.0;
  cfg.profile.task_launch_overhead_sec = 0.0;
  cfg.tasks_per_heartbeat = 1;
  ClusterContext ctx(cfg);
  auto rdd = ctx.Parallelize(Iota(100), 8);
  ASSERT_TRUE(ctx.Collect(rdd).ok());
  // 8 tasks, 1 task per node per 3s tick, 2 nodes: last pair starts at the
  // 4th tick (t=12 with the first at t=3... at least several ticks in).
  EXPECT_GE(ctx.now(), 9.0);
}

TEST(SchedulerTest, LocalityKeepsCachedReadsLocal) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.hardware.cores_per_node = 2;
  ClusterContext ctx(cfg);
  std::vector<std::string> data;
  for (int i = 0; i < 4000; ++i) data.push_back("payload-" + std::to_string(i));
  auto rdd = ctx.Parallelize(data, 16);
  rdd->Cache();
  ASSERT_TRUE(ctx.Count(rdd).ok());  // populate cache
  ASSERT_TRUE(ctx.Count(rdd).ok());  // read back
  const TaskWork& w = ctx.scheduler().last_job().total_work;
  // With locality-aware placement, cached partitions are read on their own
  // node: memory reads dominate, network reads stay zero.
  EXPECT_GT(w.mem_read_bytes, 0u);
  EXPECT_EQ(w.net_read_bytes, 0u);
}

TEST(SchedulerTest, DfsWriteKeepsFirstReplicaLocal) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  ClusterContext ctx(cfg);
  auto rdd = ctx.Parallelize(Iota(100), 4);
  auto file = ctx.SaveToDfs(rdd, "out", DfsFormat::kBinary);
  ASSERT_TRUE(file.ok());
  const std::vector<int>& nodes = ctx.scheduler().last_job().result_nodes;
  ASSERT_EQ(nodes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*file)->blocks[i].replicas[0], nodes[i]);
  }
}

TEST(SchedulerTest, MultiLevelLineageRecovery) {
  // shuffle -> map -> shuffle chain; kill a node between materializations.
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e7;
  ClusterContext ctx(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto first = ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 6);
  RddPtr<std::pair<int64_t, int64_t>> rekeyed =
      first->Map([](const std::pair<int64_t, int64_t>& kv) {
        return std::make_pair(kv.first % 10, kv.second);
      });
  auto second =
      ReduceByKey(rekeyed, [](int64_t a, int64_t b) { return a + b; }, 4);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.3, 2, 1.0});
  auto result = ctx.Collect(second);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 10u);
  int64_t total = 0;
  for (const auto& [k, v] : *result) total += v;
  EXPECT_EQ(total, 4000);
}

TEST(SchedulerTest, RecoveredNodeRejoins) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.hardware.cores_per_node = 2;
  ClusterContext ctx(cfg);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.0, 1, 1.0});
  auto rdd = ctx.Parallelize(Iota(100), 6);
  ASSERT_TRUE(ctx.Collect(rdd).ok());
  EXPECT_EQ(ctx.cluster().AliveNodes(), 2);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kRecover, ctx.now(), 1, 1.0});
  auto rdd2 = ctx.Parallelize(Iota(100), 6);
  ASSERT_TRUE(ctx.Collect(rdd2).ok());
  EXPECT_EQ(ctx.cluster().AliveNodes(), 3);
}

TEST(SchedulerTest, ResetClockRestartsTime) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.hardware.cores_per_node = 1;
  ClusterContext ctx(cfg);
  auto rdd = ctx.Parallelize(Iota(100), 4);
  ASSERT_TRUE(ctx.Collect(rdd).ok());
  EXPECT_GT(ctx.now(), 0.0);
  ctx.ResetClock();
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
}

TEST(SchedulerTest, TaskBodyExceptionBecomesStatus) {
  // A throwing task body must surface as an ExecutionError from RunJob, not
  // crash a worker thread — and the context must stay usable afterwards.
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.hardware.cores_per_node = 2;
  for (int host_threads : {1, 4}) {
    cfg.host_threads = host_threads;
    ClusterContext ctx(cfg);
    auto rdd = ctx.Parallelize(Iota(100), 4)->Map([](int64_t v) {
      if (v == 50) throw std::runtime_error("bad record");
      return v;
    });
    auto result = ctx.Collect(rdd);
    ASSERT_FALSE(result.ok()) << "host_threads=" << host_threads;
    EXPECT_NE(result.status().ToString().find("task body threw"),
              std::string::npos)
        << result.status().ToString();
    auto ok = ctx.Collect(ctx.Parallelize(Iota(10), 2));
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ok->size(), 10u);
  }
}

TEST(ShuffleManagerTest, LostOutputReadsAbsent) {
  ShuffleManager sm;
  int id = sm.RegisterShuffle(/*num_map_partitions=*/2, /*num_buckets=*/2);
  MapOutput out;
  out.node = 1;
  out.buckets.resize(2);
  out.bucket_bytes = {10, 20};
  out.bucket_records = {1, 2};
  sm.PutMapOutput(id, 0, std::move(out));
  ASSERT_NE(sm.GetMapOutput(id, 0), nullptr);
  EXPECT_EQ(sm.GetMapOutput(id, 0)->node, 1);
  EXPECT_EQ(sm.GetMapOutput(id, 1), nullptr);  // never computed

  MapOutput other;
  other.node = 2;
  other.buckets.resize(2);
  other.bucket_bytes = {5, 5};
  other.bucket_records = {1, 1};
  sm.PutMapOutput(id, 1, std::move(other));
  EXPECT_TRUE(sm.IsComplete(id));

  sm.DropNode(1);
  // Regression: DropNode clears `present` and the buckets but leaves
  // node >= 0, and GetMapOutput used to treat only (node < 0 && !present) as
  // absent — handing reduce-side fetches a non-null pointer to the cleared
  // output, which silently read as empty instead of triggering recovery.
  EXPECT_EQ(sm.GetMapOutput(id, 0), nullptr);
  EXPECT_FALSE(sm.IsComplete(id));
  EXPECT_EQ(sm.MissingMapPartitions(id), std::vector<int>{0});
}

TEST(SchedulerTest, ReduceFetchAfterNodeDeathRecovers) {
  // End-to-end shape of the GetMapOutput regression: materialize a shuffle's
  // map outputs, kill one of the hosting nodes, then run the reduce side.
  // The reduce fetch must see the lost outputs as absent and recompute them
  // from lineage — with the old GetMapOutput condition it consumed the
  // cleared (empty) buckets and returned silently wrong totals.
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e7;
  ClusterContext ctx(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto summed =
      ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 6);

  auto warm = ctx.Collect(summed);  // materializes the map outputs
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // The kill fires at the start of the re-run, after the map-side
  // completeness check already passed — only the reduce-side fetch can
  // notice the loss.
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, ctx.now(), 1, 1.0});
  TraceCollector& tc = ctx.trace_collector();
  ASSERT_TRUE(tc.BeginQuery(ctx.now()));
  auto rerun = ctx.Collect(summed);
  auto profile = tc.EndQuery(ctx.now());
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();

  ASSERT_EQ(rerun->size(), 100u);
  int64_t total = 0;
  for (const auto& [k, v] : *rerun) total += v;
  EXPECT_EQ(total, 4000);
  EXPECT_GT(ctx.scheduler().last_job().map_tasks_recovered, 0);

  // The profile records the recovery: a task hit missing input and a nested
  // recovery stage re-ran map tasks.
  bool recovery_event = false;
  bool nested_stage = false;
  for (const StageTrace& st : profile->stages) {
    if (st.parent >= 0) nested_stage = true;
    for (const std::string& e : st.events) {
      if (e.find("missing shuffle input") != std::string::npos) {
        recovery_event = true;
      }
    }
  }
  EXPECT_TRUE(recovery_event);
  EXPECT_TRUE(nested_stage);
}

TEST(SchedulerTest, SpeculativeDuplicatesDontCorruptShuffleState) {
  // Speculation audit: a losing duplicate must never overwrite the winner's
  // committed map output, and re-reported statistics must not double count.
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.virtual_data_scale = 1e7;
  cfg.speculation = true;
  ClusterContext ctx(cfg);
  // One node 8x slower from the start: its tasks exceed the speculation
  // multiplier and get backup copies on healthy nodes.
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kSlowdown, 0.0, 1, 8.0});
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto summed =
      ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 6);

  TraceCollector& tc = ctx.trace_collector();
  ASSERT_TRUE(tc.BeginQuery(ctx.now()));
  auto result = ctx.Collect(summed);
  auto profile = tc.EndQuery(ctx.now());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->size(), 100u);
  int64_t total = 0;
  for (const auto& [k, v] : *result) total += v;
  EXPECT_EQ(total, 4000);

  int speculative = 0;
  const StageTrace* map_stage = nullptr;
  for (const StageTrace& st : profile->stages) {
    speculative += st.speculative_tasks();
    if (st.is_map_stage) map_stage = &st;
  }
  EXPECT_GT(speculative, 0);
  ASSERT_NE(map_stage, nullptr);

  ShuffleManager& sm = ctx.shuffle_manager();
  const int shuffle_id = map_stage->shuffle_id;
  // Stats were folded exactly once per map partition even where a duplicate
  // also finished: the aggregate equals the sum over the stored outputs.
  uint64_t stored_records = 0;
  for (int m = 0; m < sm.NumMapPartitions(shuffle_id); ++m) {
    const MapOutput* mo = sm.GetMapOutput(shuffle_id, m);
    ASSERT_NE(mo, nullptr);
    for (uint64_t r : mo->bucket_records) stored_records += r;
  }
  EXPECT_EQ(sm.Stats(shuffle_id).total_records, stored_records);

  // The stored output's node is the committed attempt's node — a superseded
  // duplicate finishing later must not have overwritten it.
  for (const TaskTrace& t : map_stage->tasks) {
    if (t.end != TaskEnd::kCommitted) continue;
    const MapOutput* mo = sm.GetMapOutput(shuffle_id, t.partition);
    ASSERT_NE(mo, nullptr);
    EXPECT_EQ(mo->node, t.node) << "map partition " << t.partition;
  }
}

TEST(SchedulerTest, MapPruningLaunchesFewerTasks) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.hardware.cores_per_node = 2;
  ClusterContext ctx(cfg);
  auto rdd = ctx.Parallelize(Iota(1000), 10);
  auto all = ctx.scheduler().RunJob(rdd);
  ASSERT_TRUE(all.ok());
  int all_tasks = ctx.scheduler().last_job().tasks_launched;
  auto some = ctx.scheduler().RunJobOnPartitions(rdd, {0, 5});
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(ctx.scheduler().last_job().tasks_launched, 2);
  EXPECT_EQ(all_tasks, 10);
}

}  // namespace
}  // namespace shark
