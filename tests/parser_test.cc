#include <gtest/gtest.h>

#include "sql/parser.h"

namespace shark {
namespace {

ExprPtr MustParseExpr(const std::string& text) {
  auto r = ParseExpression(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? *r : nullptr;
}

Statement MustParse(const std::string& sql) {
  auto r = ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << sql;
  return r.ok() ? *r : Statement{};
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ParserExprTest, Precedence) {
  auto e = MustParseExpr("1 + 2 * 3");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ToString(), "(1 + (2 * 3))");
  e = MustParseExpr("(1 + 2) * 3");
  EXPECT_EQ(e->ToString(), "((1 + 2) * 3)");
  e = MustParseExpr("a = 1 AND b = 2 OR c = 3");
  EXPECT_EQ(e->ToString(), "(((a = 1) AND (b = 2)) OR (c = 3))");
}

TEST(ParserExprTest, ComparisonOperators) {
  EXPECT_EQ(MustParseExpr("a <> 2")->binary_op, BinaryOp::kNe);
  EXPECT_EQ(MustParseExpr("a != 2")->binary_op, BinaryOp::kNe);
  EXPECT_EQ(MustParseExpr("a <= 2")->binary_op, BinaryOp::kLe);
  EXPECT_EQ(MustParseExpr("a >= 2")->binary_op, BinaryOp::kGe);
}

TEST(ParserExprTest, BetweenInLikeIsNull) {
  auto e = MustParseExpr("x BETWEEN 1 AND 10");
  EXPECT_EQ(e->kind, ExprKind::kBetween);
  e = MustParseExpr("x NOT BETWEEN 1 AND 10");
  EXPECT_TRUE(e->negated);
  e = MustParseExpr("c IN ('US', 'UK')");
  EXPECT_EQ(e->kind, ExprKind::kInList);
  EXPECT_EQ(e->children.size(), 3u);
  e = MustParseExpr("url LIKE '%.html'");
  EXPECT_EQ(e->kind, ExprKind::kLike);
  e = MustParseExpr("x IS NOT NULL");
  EXPECT_EQ(e->kind, ExprKind::kIsNull);
  EXPECT_TRUE(e->negated);
}

TEST(ParserExprTest, DateLiteralForms) {
  auto e = MustParseExpr("Date('2000-01-15')");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal.kind(), TypeKind::kDate);
  e = MustParseExpr("DATE '2000-01-15'");
  EXPECT_EQ(e->literal.kind(), TypeKind::kDate);
}

TEST(ParserExprTest, FunctionAndAggCalls) {
  auto e = MustParseExpr("SUBSTR(sourceIP, 1, 7)");
  EXPECT_EQ(e->kind, ExprKind::kFuncCall);
  EXPECT_EQ(e->name, "SUBSTR");
  EXPECT_EQ(e->children.size(), 3u);

  e = MustParseExpr("COUNT(*)");
  EXPECT_EQ(e->kind, ExprKind::kAggCall);
  EXPECT_TRUE(e->star);

  e = MustParseExpr("COUNT(DISTINCT user, client)");
  EXPECT_TRUE(e->distinct);
  EXPECT_EQ(e->children.size(), 2u);

  e = MustParseExpr("SUM(adRevenue)");
  EXPECT_EQ(e->kind, ExprKind::kAggCall);
}

TEST(ParserExprTest, CaseWhen) {
  auto e = MustParseExpr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END");
  EXPECT_EQ(e->kind, ExprKind::kCase);
  EXPECT_EQ(e->children.size(), 3u);
}

TEST(ParserExprTest, QualifiedColumns) {
  auto e = MustParseExpr("R.pageURL");
  EXPECT_EQ(e->kind, ExprKind::kColumnRef);
  EXPECT_EQ(e->qualifier, "R");
  EXPECT_EQ(e->name, "pageURL");
}

TEST(ParserExprTest, Errors) {
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
  EXPECT_FALSE(ParseExpression("'unterminated").ok());
  EXPECT_FALSE(ParseExpression("a BETWEEN 1").ok());
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

TEST(ParserStmtTest, SimpleSelect) {
  Statement s = MustParse(
      "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 10");
  ASSERT_EQ(s.kind, StatementKind::kSelect);
  EXPECT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->from.name, "rankings");
  ASSERT_NE(s.select->where, nullptr);
}

TEST(ParserStmtTest, SelectStarAndAliases) {
  Statement s = MustParse("SELECT *, r.pageRank AS rank FROM rankings r");
  EXPECT_TRUE(s.select->items[0].star);
  EXPECT_EQ(s.select->items[1].alias, "rank");
  EXPECT_EQ(s.select->from.alias, "r");
}

TEST(ParserStmtTest, GroupByHavingOrderLimit) {
  Statement s = MustParse(
      "SELECT sourceIP, SUM(adRevenue) AS rev FROM uservisits "
      "GROUP BY sourceIP HAVING SUM(adRevenue) > 100 "
      "ORDER BY rev DESC LIMIT 10");
  EXPECT_EQ(s.select->group_by.size(), 1u);
  ASSERT_NE(s.select->having, nullptr);
  ASSERT_EQ(s.select->order_by.size(), 1u);
  EXPECT_FALSE(s.select->order_by[0].ascending);
  EXPECT_EQ(s.select->limit, 10);
}

TEST(ParserStmtTest, ExplicitJoin) {
  Statement s = MustParse(
      "SELECT * FROM lineitem l JOIN supplier s ON l.L_SUPPKEY = s.S_SUPPKEY");
  ASSERT_EQ(s.select->joins.size(), 1u);
  EXPECT_EQ(s.select->joins[0].table.alias, "s");
  ASSERT_NE(s.select->joins[0].condition, nullptr);
}

TEST(ParserStmtTest, CommaJoinPavloStyle) {
  Statement s = MustParse(
      "SELECT INTO Temp sourceIP, AVG(pageRank), SUM(adRevenue) as "
      "totalRevenue FROM rankings AS R, uservisits AS UV "
      "WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN "
      "Date('2000-01-15') AND Date('2000-01-22') GROUP BY UV.sourceIP");
  ASSERT_EQ(s.select->joins.size(), 1u);
  EXPECT_EQ(s.select->joins[0].condition, nullptr);
  EXPECT_EQ(s.select->joins[0].table.alias, "UV");
  EXPECT_EQ(s.select->group_by.size(), 1u);
}

TEST(ParserStmtTest, SubqueryInFrom) {
  Statement s = MustParse(
      "SELECT cnt FROM (SELECT COUNT(*) AS cnt FROM t GROUP BY k) sub "
      "WHERE cnt > 5");
  EXPECT_NE(s.select->from.subquery, nullptr);
  EXPECT_EQ(s.select->from.alias, "sub");
}

TEST(ParserStmtTest, CreateTableAsSelectWithProperties) {
  Statement s = MustParse(
      "CREATE TABLE latest_logs TBLPROPERTIES (\"shark.cache\"=true) "
      "AS SELECT * FROM logs WHERE x > 3600");
  ASSERT_EQ(s.kind, StatementKind::kCreateTable);
  EXPECT_EQ(s.create_table->name, "latest_logs");
  EXPECT_EQ(s.create_table->properties.at("shark.cache"), "true");
  ASSERT_NE(s.create_table->select, nullptr);
}

TEST(ParserStmtTest, CreateTableDistributeByAndCopartition) {
  Statement s = MustParse(
      "CREATE TABLE o_mem TBLPROPERTIES (\"shark.cache\"=true, "
      "\"copartition\"=\"l_mem\") AS SELECT * FROM orders DISTRIBUTE BY "
      "O_ORDERKEY");
  EXPECT_EQ(s.create_table->properties.at("copartition"), "l_mem");
  EXPECT_EQ(s.create_table->select->distribute_by, "O_ORDERKEY");
}

TEST(ParserStmtTest, CreateTableExplicitSchema) {
  Statement s = MustParse(
      "CREATE TABLE t (id BIGINT, name STRING, score DOUBLE, d DATE, "
      "flag BOOLEAN)");
  ASSERT_EQ(s.create_table->columns.size(), 5u);
  EXPECT_EQ(s.create_table->columns[0].type, TypeKind::kInt64);
  EXPECT_EQ(s.create_table->columns[1].type, TypeKind::kString);
  EXPECT_EQ(s.create_table->columns[2].type, TypeKind::kDouble);
  EXPECT_EQ(s.create_table->columns[3].type, TypeKind::kDate);
  EXPECT_EQ(s.create_table->columns[4].type, TypeKind::kBool);
}

TEST(ParserStmtTest, DropTable) {
  Statement s = MustParse("DROP TABLE IF EXISTS foo");
  ASSERT_EQ(s.kind, StatementKind::kDropTable);
  EXPECT_TRUE(s.drop_table->if_exists);
  EXPECT_EQ(s.drop_table->name, "foo");
}

TEST(ParserStmtTest, UncacheTable) {
  Statement s = MustParse("UNCACHE TABLE visits");
  ASSERT_EQ(s.kind, StatementKind::kUncacheTable);
  EXPECT_EQ(s.uncache_table->name, "visits");
}

TEST(ParserStmtTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t LIMIT abc").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage !").ok());
  EXPECT_FALSE(ParseStatement("UNCACHE visits").ok());
  EXPECT_FALSE(ParseStatement("UNCACHE TABLE").ok());
}

TEST(ParserStmtTest, CommentsSkipped) {
  Statement s = MustParse(
      "SELECT * -- take everything\nFROM rankings -- the table\n");
  EXPECT_EQ(s.select->from.name, "rankings");
}

}  // namespace
}  // namespace shark
