// Concurrent-job regression tests: the multi-set event loop, JobManager
// admission control, cross-job isolation (the "one-job-at-a-time" bugs the
// serving front-end flushed out), and failing-query cleanup.

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdd/context.h"
#include "rdd/job_manager.h"
#include "rdd/pair_rdd.h"
#include "sql/session.h"

namespace shark {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  return cfg;
}

uint64_t CounterValue(const ClusterContext& ctx, const std::string& name) {
  for (const auto& [n, v] : ctx.metrics().registry().CounterSnapshot()) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not registered: " << name;
  return 0;
}

std::vector<std::pair<std::string, int64_t>> Words(const std::string& prefix,
                                                   int n) {
  std::vector<std::pair<std::string, int64_t>> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(prefix + std::to_string(i % 7), 1);
  }
  return out;
}

// Two concurrent shuffle jobs over disjoint keyspaces: each must see exactly
// its own shuffle outputs. Before per-set state isolation, interleaved jobs
// could read one another's map outputs through shared scheduler state.
TEST(ConcurrentJobsTest, ShuffleIsolationAcrossInterleavedJobs) {
  ClusterContext ctx(SmallConfig());
  JobManager jm(&ctx);

  std::map<std::string, int64_t> got_a;
  std::map<std::string, int64_t> got_b;
  std::vector<JobSpec> specs(2);
  specs[0].label = "job-a";
  specs[0].body = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("a", 140), 6);
    auto counts =
        ReduceByKey(rdd, [](int64_t x, int64_t y) { return x + y; }, 4);
    auto rows = ctx.Collect(counts);
    SHARK_RETURN_NOT_OK(rows.status());
    got_a.insert(rows->begin(), rows->end());
    return Status::OK();
  };
  specs[1].label = "job-b";
  specs[1].body = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("b", 70), 6);
    auto counts =
        ReduceByKey(rdd, [](int64_t x, int64_t y) { return x + y; }, 4);
    auto rows = ctx.Collect(counts);
    SHARK_RETURN_NOT_OK(rows.status());
    got_b.insert(rows->begin(), rows->end());
    return Status::OK();
  };

  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_TRUE(outcomes[1].status.ok()) << outcomes[1].status.ToString();

  // Both jobs ran concurrently (neither waited for the other to finish).
  EXPECT_FALSE(outcomes[0].queued);
  EXPECT_FALSE(outcomes[1].queued);
  EXPECT_LT(outcomes[0].admit_vtime, outcomes[1].finish_vtime);
  EXPECT_LT(outcomes[1].admit_vtime, outcomes[0].finish_vtime);

  ASSERT_EQ(got_a.size(), 7u);
  ASSERT_EQ(got_b.size(), 7u);
  for (const auto& [k, v] : got_a) {
    EXPECT_EQ(k.substr(0, 1), "a");
    EXPECT_EQ(v, 20) << k;
  }
  for (const auto& [k, v] : got_b) {
    EXPECT_EQ(k.substr(0, 1), "b");
    EXPECT_EQ(v, 10) << k;
  }
}

// The same query batch must produce identical rows whether executed
// serially on one session or concurrently through the JobManager.
TEST(ConcurrentJobsTest, ConcurrentSqlMatchesSerial) {
  const std::vector<std::string> queries = {
      "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 50",
      "SELECT avgDuration, COUNT(*) FROM rankings GROUP BY avgDuration",
      "SELECT SUM(pageRank) FROM rankings",
  };
  auto make_session = [] {
    auto session = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(SmallConfig()));
    Schema rankings({{"pageURL", TypeKind::kString},
                     {"pageRank", TypeKind::kInt64},
                     {"avgDuration", TypeKind::kInt64}});
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back(Row({Value::String("url" + std::to_string(i)),
                          Value::Int64(i), Value::Int64(i % 10)}));
    }
    EXPECT_TRUE(session->CreateDfsTable("rankings", rankings, rows, 4).ok());
    return session;
  };
  auto render = [](const QueryResult& r) {
    std::vector<std::string> lines;
    for (const Row& row : r.rows) lines.push_back(row.ToString());
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  // Serial baseline.
  std::vector<std::vector<std::string>> serial;
  {
    auto session = make_session();
    for (const std::string& q : queries) {
      auto r = session->Sql(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      serial.push_back(render(*r));
    }
  }

  // Concurrent run: all queries admitted at once on a fresh session.
  auto session = make_session();
  JobManager jm(&session->context());
  std::vector<std::vector<std::string>> concurrent(queries.size());
  std::vector<JobSpec> specs(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    specs[i].label = "q" + std::to_string(i);
    specs[i].body = [&, i]() -> Status {
      auto r = session->Sql(queries[i]);
      SHARK_RETURN_NOT_OK(r.status());
      concurrent[i] = render(*r);
      return Status::OK();
    };
  }
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_EQ(concurrent[i], serial[i]) << queries[i];
  }
}

// A job whose declared memory demand exceeds the cluster headroom queues
// (with a metrics-visible reason) while a lighter concurrent job runs, and
// is admitted once the cluster drains.
TEST(ConcurrentJobsTest, AdmissionMemoryGateQueuesHeavyJob) {
  ClusterContext ctx(SmallConfig());
  JobManager jm(&ctx);
  const uint64_t headroom = ctx.memory_manager().AdmissionHeadroomBytes();
  ASSERT_GT(headroom, 0u);

  auto work = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("w", 70), 6);
    auto counts =
        ReduceByKey(rdd, [](int64_t x, int64_t y) { return x + y; }, 4);
    return ctx.Collect(counts).status();
  };
  std::vector<JobSpec> specs(2);
  specs[0].label = "light";
  specs[0].mem_demand_bytes = headroom / 2;
  specs[0].body = work;
  specs[1].label = "heavy";
  specs[1].mem_demand_bytes = headroom;  // no longer fits next to "light"
  specs[1].body = work;

  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_TRUE(outcomes[1].status.ok());
  EXPECT_FALSE(outcomes[0].queued);
  EXPECT_TRUE(outcomes[1].queued);
  EXPECT_GT(outcomes[1].queue_delay(), 0.0);
  // The heavy job started only after the light one finished.
  EXPECT_GE(outcomes[1].admit_vtime, outcomes[0].finish_vtime);

  EXPECT_EQ(CounterValue(ctx, "shark_jobs_queued_total"), 1u);
  EXPECT_EQ(CounterValue(ctx, "shark_jobs_queued_reason_total{reason=\"memory\"}"),
            1u);
  EXPECT_EQ(CounterValue(ctx, "shark_jobs_admitted_total"), 2u);
  EXPECT_EQ(CounterValue(ctx, "shark_jobs_completed_total"), 2u);
  // All admission reservations were released at completion.
  EXPECT_EQ(ctx.memory_manager().admitted_bytes(), 0u);
}

// max_concurrent serializes jobs even when memory would allow them.
TEST(ConcurrentJobsTest, AdmissionConcurrencyGate) {
  ClusterContext ctx(SmallConfig());
  JobManager::Options opts;
  opts.max_concurrent = 1;
  JobManager jm(&ctx, opts);

  auto work = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("w", 70), 4);
    return ctx.Collect(rdd).status();
  };
  std::vector<JobSpec> specs(2);
  specs[0].label = "first";
  specs[0].body = work;
  specs[1].label = "second";
  specs[1].body = work;
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_TRUE(outcomes[1].status.ok());
  EXPECT_FALSE(outcomes[0].queued);
  EXPECT_TRUE(outcomes[1].queued);
  EXPECT_GE(outcomes[1].admit_vtime, outcomes[0].finish_vtime);
  EXPECT_EQ(
      CounterValue(ctx, "shark_jobs_queued_reason_total{reason=\"concurrency\"}"),
      1u);
}

// A job demanding more than the whole cluster is force-admitted when
// nothing else runs — admission never deadlocks.
TEST(ConcurrentJobsTest, OversizedJobIsForceAdmittedWhenIdle) {
  ClusterContext ctx(SmallConfig());
  JobManager jm(&ctx);
  std::vector<JobSpec> specs(1);
  specs[0].label = "oversized";
  specs[0].mem_demand_bytes =
      ctx.memory_manager().AdmissionHeadroomBytes() * 10;
  specs[0].body = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("w", 30), 4);
    return ctx.Collect(rdd).status();
  };
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(ctx.memory_manager().admitted_bytes(), 0u);
}

// One job's task-body failure kills only that job; a concurrent job
// finishes normally with correct results.
TEST(ConcurrentJobsTest, PerJobErrorIsolation) {
  ClusterContext ctx(SmallConfig());
  JobManager jm(&ctx);

  std::map<std::string, int64_t> got;
  std::vector<JobSpec> specs(2);
  specs[0].label = "doomed";
  specs[0].body = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("x", 70), 6);
    auto boom = rdd->Map([](const std::pair<std::string, int64_t>& p)
                             -> std::pair<std::string, int64_t> {
      if (p.second == 1) throw std::runtime_error("injected task failure");
      return p;
    });
    return ctx.Collect(boom).status();
  };
  specs[1].label = "survivor";
  specs[1].body = [&]() -> Status {
    auto rdd = ctx.Parallelize(Words("s", 140), 6);
    auto counts =
        ReduceByKey(rdd, [](int64_t x, int64_t y) { return x + y; }, 4);
    auto rows = ctx.Collect(counts);
    SHARK_RETURN_NOT_OK(rows.status());
    got.insert(rows->begin(), rows->end());
    return Status::OK();
  };

  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));
  EXPECT_FALSE(outcomes[0].status.ok());
  EXPECT_NE(outcomes[0].status.ToString().find("task body threw"),
            std::string::npos)
      << outcomes[0].status.ToString();
  ASSERT_TRUE(outcomes[1].status.ok()) << outcomes[1].status.ToString();
  ASSERT_EQ(got.size(), 7u);
  for (const auto& [k, v] : got) EXPECT_EQ(v, 20) << k;
  EXPECT_EQ(CounterValue(ctx, "shark_jobs_failed_total"), 1u);
  EXPECT_EQ(CounterValue(ctx, "shark_jobs_completed_total"), 1u);
  EXPECT_EQ(ctx.memory_manager().admitted_bytes(), 0u);

  // The engine stays usable after the failure.
  auto again = ctx.Collect(ctx.Parallelize(Words("y", 14), 2));
  EXPECT_TRUE(again.ok());
}

// ---------------------------------------------------------------------------
// Failing-query cleanup (SqlSession error path)
// ---------------------------------------------------------------------------

class FailingQueryCleanupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(SmallConfig()));
    Schema schema({{"k", TypeKind::kInt64}, {"v", TypeKind::kInt64}});
    std::vector<Row> rows;
    for (int i = 0; i < 200; ++i) {
      rows.push_back(Row({Value::Int64(i % 16), Value::Int64(i)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("t", schema, rows, 8).ok());
    // A UDF that fails only for one group, so earlier tasks commit real
    // shuffle outputs / cache entries before the query dies.
    UdfRegistry::UdfInfo boom;
    boom.return_type = TypeKind::kInt64;
    boom.fn = [](const std::vector<Value>& args) -> Value {
      if (!args[0].is_null() && args[0].int64_v() == 13) {
        throw std::runtime_error("boom");
      }
      return args[0];
    };
    ASSERT_TRUE(session_->udfs().Register("BOOM", boom).ok());
  }

  std::vector<uint64_t> UsedBytesPerNode() {
    MemoryManager& mm = session_->context().memory_manager();
    std::vector<uint64_t> used;
    for (int n = 0; n < mm.num_nodes(); ++n) used.push_back(mm.UsedBytes(n));
    return used;
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(FailingQueryCleanupTest, FailedSelectReleasesShuffleLedger) {
  std::vector<uint64_t> baseline = UsedBytesPerNode();

  auto r = session_->Sql(
      "SELECT BOOM(k), COUNT(*) FROM t GROUP BY k");
  ASSERT_FALSE(r.ok());

  // Every byte the failed query pinned — shuffle map outputs, cache
  // insertions — must be released; the next query sees a clean cluster.
  EXPECT_EQ(UsedBytesPerNode(), baseline);
  EXPECT_EQ(session_->context().memory_manager().admitted_bytes(), 0u);

  auto ok = session_->Sql("SELECT k, COUNT(*) FROM t GROUP BY k");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), 16u);
}

// A CTAS that fails AFTER an index was declared on the phantom table: the
// cleanup's DropTable must release the index's MemoryManager reservation
// along with the table, never leaving a charge against a table that no
// longer exists.
TEST_F(FailingQueryCleanupTest, FailedCtasReleasesIndexOnPhantomTable) {
  // Serial host execution so the planting UDF touches the catalog without
  // racing task bodies.
  session_->options().host_threads = 1;
  MemoryManager* mm = &session_->context().memory_manager();
  SharkSession* session = session_.get();
  auto planted = std::make_shared<bool>(false);
  UdfRegistry::UdfInfo plant;
  plant.return_type = TypeKind::kInt64;
  plant.fn = [session, mm, planted](const std::vector<Value>& args) -> Value {
    if (!*planted) {
      // First task body: the phantom table already exists in the catalog —
      // declare an index on it, reserving index memory like CREATE INDEX.
      *planted = true;
      auto info = session->catalog().Get("broken");
      if (info.ok()) {
        const uint64_t bytes = 1 << 20;
        mm->AddIndexBytes(bytes);
        IndexInfo idx;
        idx.name = "idx_phantom";
        idx.column = 0;
        idx.memory_bytes = bytes;
        idx.reservation = std::shared_ptr<void>(
            nullptr, [mm, bytes](void*) { mm->ReleaseIndexBytes(bytes); });
        (*info)->indexes.emplace("idx_phantom", std::move(idx));
      }
    }
    if (!args[0].is_null() && args[0].int64_v() == 13) {
      throw std::runtime_error("boom");
    }
    return args[0];
  };
  ASSERT_TRUE(session_->udfs().Register("PLANT_BOOM", plant).ok());

  std::vector<uint64_t> baseline = UsedBytesPerNode();
  auto r = session_->Sql(
      "CREATE TABLE broken TBLPROPERTIES ('shark.cache'='true') AS "
      "SELECT k, PLANT_BOOM(v) AS bv FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(*planted);

  // The phantom table AND its index reservation are gone.
  EXPECT_EQ(mm->total_index_bytes(), 0u);
  EXPECT_EQ(UsedBytesPerNode(), baseline);
  EXPECT_FALSE(session_->Sql("SELECT COUNT(*) FROM broken").ok());
  EXPECT_FALSE(session_->Sql("DROP INDEX idx_phantom").ok());
}

TEST_F(FailingQueryCleanupTest, FailedCtasDropsPhantomTableAndCache) {
  std::vector<uint64_t> baseline = UsedBytesPerNode();

  auto r = session_->Sql(
      "CREATE TABLE broken TBLPROPERTIES ('shark.cache'='true') AS "
      "SELECT k, BOOM(v) AS bv FROM t");
  ASSERT_FALSE(r.ok());

  // No phantom half-loaded table, no stranded cache blocks.
  EXPECT_EQ(UsedBytesPerNode(), baseline);
  auto phantom = session_->Sql("SELECT COUNT(*) FROM broken");
  EXPECT_FALSE(phantom.ok());

  // The same CTAS without the failing UDF succeeds afterwards.
  auto ok = session_->Sql(
      "CREATE TABLE fixed TBLPROPERTIES ('shark.cache'='true') AS "
      "SELECT k, v FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  auto count = session_->Sql("SELECT COUNT(*) FROM fixed");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0].fields[0].int64_v(), 200);
}

}  // namespace
}  // namespace shark
