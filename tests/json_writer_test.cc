#include "common/json_writer.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace shark {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.BeginObject().EndObject();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray().EndArray();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriterTest, CommasAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray();
  w.Int(1).Int(2).BeginObject().Key("c").String("x").EndObject();
  w.EndArray();
  w.Key("d").Bool(true);
  w.Key("e").Null();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[1,2,{\"c\":\"x\"}],\"d\":true,\"e\":null}");
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter w;
  w.BeginObject();
  w.Key("k\"ey").String("a\\b\"c\nd\te\rf");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"k\\\"ey\":\"a\\\\b\\\"c\\nd\\te\\rf\"}");
  // Raw control characters (below 0x20) become \u00xx.
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01\x1f")), "\\u0001\\u001f");
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.FixedDouble(std::numeric_limits<double>::quiet_NaN(), 3);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,null]");
}

TEST(JsonWriterTest, DoublesRoundTripAtShortestForm) {
  {
    JsonWriter w;
    w.BeginArray().Double(0.5).Double(1.0).Double(-2.25).EndArray();
    EXPECT_EQ(w.str(), "[0.5,1,-2.25]");
  }
  // A value with no short decimal form still round-trips exactly.
  double v = 0.1 + 0.2;
  JsonWriter w;
  w.Double(v);
  EXPECT_EQ(std::stod(w.str()), v);
}

TEST(JsonWriterTest, FixedDoubleUsesRequestedPrecision) {
  JsonWriter w;
  w.BeginArray().FixedDouble(1.23456789, 3).FixedDouble(2.0, 6).EndArray();
  EXPECT_EQ(w.str(), "[1.235,2.000000]");
}

TEST(JsonWriterTest, RawInsertsVerbatim) {
  JsonWriter w;
  w.BeginObject();
  w.Key("x").Raw("[1,2]");
  w.Key("y").Int(3);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"x\":[1,2],\"y\":3}");
}

}  // namespace
}  // namespace shark
