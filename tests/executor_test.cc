#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sql/session.h"

namespace shark {
namespace {

/// Executor-level behaviours: join strategy equivalence, NULL semantics,
/// storage formats, option sweeps.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    Schema left({{"k", TypeKind::kInt64}, {"lv", TypeKind::kString}});
    std::vector<Row> lrows;
    for (int i = 0; i < 200; ++i) {
      lrows.push_back(
          Row({Value::Int64(i % 50), Value::String("L" + std::to_string(i))}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("lt", left, lrows, 4).ok());

    Schema right({{"k", TypeKind::kInt64}, {"rv", TypeKind::kDouble}});
    std::vector<Row> rrows;
    for (int i = 0; i < 80; ++i) {
      rrows.push_back(Row({Value::Int64(i), Value::Double(i * 0.25)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("rt", right, rrows, 4).ok());
  }

  std::multiset<std::string> Rows(const QueryResult& r) {
    std::multiset<std::string> out;
    for (const Row& row : r.rows) out.insert(row.ToString());
    return out;
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(ExecutorTest, AllJoinStrategiesAgree) {
  const std::string q =
      "SELECT lt.k, lv, rv FROM lt JOIN rt ON lt.k = rt.k WHERE rt.rv > 2.0";
  std::map<std::string, std::multiset<std::string>> results;
  for (auto mode : {JoinOptimization::kStatic, JoinOptimization::kAdaptive,
                    JoinOptimization::kStaticAdaptive}) {
    session_->options().join_opt = mode;
    auto r = session_->Sql(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results[r->metrics.join_strategy] = Rows(*r);
    EXPECT_FALSE(r->metrics.join_strategy.empty());
  }
  ASSERT_GE(results.size(), 2u);  // at least two distinct strategies exercised
  auto first = results.begin()->second;
  for (const auto& [strategy, rows] : results) {
    EXPECT_EQ(rows, first) << "strategy " << strategy << " diverged";
  }
}

TEST_F(ExecutorTest, ForcedBroadcastMatchesShuffle) {
  const std::string q = "SELECT COUNT(*) FROM lt JOIN rt ON lt.k = rt.k";
  session_->options().join_opt = JoinOptimization::kStatic;
  session_->options().broadcast_threshold_bytes = 1;  // force shuffle join
  auto shuffle = session_->Sql(q);
  ASSERT_TRUE(shuffle.ok());
  EXPECT_EQ(shuffle->metrics.join_strategy, "shuffle join (static)");
  session_->options().broadcast_threshold_bytes = 1ULL << 40;  // force map join
  auto broadcast = session_->Sql(q);
  ASSERT_TRUE(broadcast.ok());
  EXPECT_EQ(broadcast->metrics.join_strategy, "map join (static)");
  EXPECT_EQ(shuffle->rows[0], broadcast->rows[0]);
}

TEST_F(ExecutorTest, NullSemanticsInAggregates) {
  Schema s({{"g", TypeKind::kInt64}, {"v", TypeKind::kInt64}});
  std::vector<Row> rows;
  rows.push_back(Row({Value::Int64(1), Value::Int64(10)}));
  rows.push_back(Row({Value::Int64(1), Value::Null()}));
  rows.push_back(Row({Value::Int64(2), Value::Null()}));
  ASSERT_TRUE(session_->CreateDfsTable("nt", s, rows, 2).ok());
  auto r = session_->Sql(
      "SELECT g, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v) FROM nt GROUP BY g");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::map<int64_t, Row> by_group;
  for (const Row& row : r->rows) by_group[row.Get(0).int64_v()] = row;
  // Group 1: COUNT(*)=2, COUNT(v)=1 (nulls skipped), SUM=10, AVG=10, MIN=10.
  EXPECT_EQ(by_group[1].Get(1), Value::Int64(2));
  EXPECT_EQ(by_group[1].Get(2), Value::Int64(1));
  EXPECT_EQ(by_group[1].Get(3), Value::Int64(10));
  EXPECT_DOUBLE_EQ(by_group[1].Get(4).double_v(), 10.0);
  // Group 2: all values null -> SUM/AVG/MIN are NULL.
  EXPECT_EQ(by_group[2].Get(1), Value::Int64(1));
  EXPECT_EQ(by_group[2].Get(2), Value::Int64(0));
  EXPECT_TRUE(by_group[2].Get(3).is_null());
  EXPECT_TRUE(by_group[2].Get(4).is_null());
  EXPECT_TRUE(by_group[2].Get(5).is_null());
}

TEST_F(ExecutorTest, NullsNeverMatchJoinKeys) {
  Schema s({{"k", TypeKind::kInt64}, {"x", TypeKind::kInt64}});
  std::vector<Row> a = {Row({Value::Null(), Value::Int64(1)}),
                        Row({Value::Int64(7), Value::Int64(2)})};
  std::vector<Row> b = {Row({Value::Null(), Value::Int64(3)}),
                        Row({Value::Int64(7), Value::Int64(4)})};
  ASSERT_TRUE(session_->CreateDfsTable("ja", s, a, 1).ok());
  ASSERT_TRUE(session_->CreateDfsTable("jb", s, b, 1).ok());
  // SQL: NULL = NULL is not true, so only k=7 matches. Our Value equality
  // treats NULL==NULL for grouping; the join residual uses predicate
  // semantics via the equi-key comparison... verify observable behaviour:
  auto r = session_->Sql(
      "SELECT COUNT(*) FROM ja JOIN jb ON ja.k = jb.k "
      "WHERE ja.k IS NOT NULL");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0].Get(0), Value::Int64(1));
}

TEST_F(ExecutorTest, BinaryFormatTableScans) {
  Schema s({{"v", TypeKind::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back(Row({Value::Int64(i)}));
  ASSERT_TRUE(
      session_->CreateDfsTable("bin", s, rows, 4, DfsFormat::kBinary).ok());
  auto r = session_->Sql("SELECT SUM(v) FROM bin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0].Get(0), Value::Int64(500 * 499 / 2));
  // Binary scans charge binary (not text) deserialization.
  EXPECT_GT(r->metrics.work.binary_deser_bytes, 0u);
  EXPECT_EQ(r->metrics.work.text_deser_bytes, 0u);
}

TEST_F(ExecutorTest, FineBucketsAndReducerOptionsRespected) {
  session_->options().fine_buckets = 12;
  session_->options().pde = true;
  auto r = session_->Sql("SELECT k, COUNT(*) FROM lt GROUP BY k");
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->metrics.chosen_reducers, 12);
  session_->options().pde = false;
  session_->options().static_reducers = 3;
  auto r2 = session_->Sql("SELECT k, COUNT(*) FROM lt GROUP BY k");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->metrics.chosen_reducers, 3);
  EXPECT_EQ(Rows(*r), Rows(*r2));
}

TEST_F(ExecutorTest, LimitIsExact) {
  for (int limit : {0, 1, 7, 200, 500}) {
    auto r = session_->Sql("SELECT * FROM lt LIMIT " + std::to_string(limit));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(static_cast<int>(r->rows.size()), std::min(limit, 200));
  }
}

TEST_F(ExecutorTest, OrderByLimitIsGloballyCorrect) {
  auto r = session_->Sql("SELECT rv FROM rt ORDER BY rv DESC LIMIT 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r->rows[0].Get(0).double_v(), 79 * 0.25);
  EXPECT_DOUBLE_EQ(r->rows[1].Get(0).double_v(), 78 * 0.25);
  EXPECT_DOUBLE_EQ(r->rows[2].Get(0).double_v(), 77 * 0.25);
}

TEST_F(ExecutorTest, UncacheFallsBackToDfs) {
  ASSERT_TRUE(session_->CacheTable("rt").ok());
  auto cached = session_->Sql("SELECT COUNT(*) FROM rt");
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(session_->UncacheTable("rt").ok());
  auto uncached = session_->Sql("SELECT COUNT(*) FROM rt");
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(cached->rows[0], uncached->rows[0]);
  EXPECT_GT(uncached->metrics.work.text_deser_bytes, 0u);
}

TEST_F(ExecutorTest, CacheTableIdempotent) {
  ASSERT_TRUE(session_->CacheTable("rt").ok());
  ASSERT_TRUE(session_->CacheTable("rt").ok());
  auto r = session_->Sql("SELECT COUNT(*) FROM rt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0].Get(0), Value::Int64(80));
}

TEST_F(ExecutorTest, CreateDuplicateTableFails) {
  auto r = session_->Sql("CREATE TABLE lt AS SELECT * FROM rt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace shark
