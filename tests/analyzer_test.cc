#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/planner/rules.h"
#include "sql/parser.h"

namespace shark {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableInfo t1;
    t1.name = "t1";
    t1.schema = Schema({{"a", TypeKind::kInt64},
                        {"b", TypeKind::kString},
                        {"c", TypeKind::kDouble}});
    t1.dfs_file = "f1";
    ASSERT_TRUE(catalog_.CreateTable(t1).ok());
    TableInfo t2;
    t2.name = "t2";
    t2.schema = Schema({{"a", TypeKind::kInt64}, {"d", TypeKind::kDate}});
    t2.dfs_file = "f2";
    ASSERT_TRUE(catalog_.CreateTable(t2).ok());
  }

  Result<PlanPtr> Analyze(const std::string& sql, bool optimize = false) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Analyzer analyzer(&catalog_, &udfs_);
    auto plan = analyzer.AnalyzeSelect(*stmt->select);
    if (!plan.ok() || !optimize) return plan;
    return Optimize(*plan, &udfs_);
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(AnalyzerTest, BindsColumnsToSlots) {
  auto plan = Analyze("SELECT a, c FROM t1 WHERE b = 'x'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind, PlanKind::kProject);
  EXPECT_EQ((*plan)->output[0].name, "a");
  EXPECT_EQ((*plan)->output[0].type, TypeKind::kInt64);
  EXPECT_EQ((*plan)->output[1].type, TypeKind::kDouble);
}

TEST_F(AnalyzerTest, TypeInference) {
  auto plan = Analyze("SELECT a + 1, a / 2, a > 3, SUBSTR(b, 1, 2) FROM t1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->output[0].type, TypeKind::kInt64);
  EXPECT_EQ((*plan)->output[1].type, TypeKind::kDouble);
  EXPECT_EQ((*plan)->output[2].type, TypeKind::kBool);
  EXPECT_EQ((*plan)->output[3].type, TypeKind::kString);
}

TEST_F(AnalyzerTest, AggregateSplitsCallsAndGroups) {
  auto plan = Analyze(
      "SELECT b, COUNT(*), SUM(a) + MIN(c) FROM t1 GROUP BY b");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalPlan* agg = (*plan)->children[0].get();
  ASSERT_EQ(agg->kind, PlanKind::kAggregate);
  EXPECT_EQ(agg->group_exprs.size(), 1u);
  EXPECT_EQ(agg->agg_calls.size(), 3u);  // COUNT(*), SUM(a), MIN(c)
}

TEST_F(AnalyzerTest, DuplicateAggCallsShareOneSlot) {
  auto plan = Analyze(
      "SELECT SUM(a), SUM(a) * 2 FROM t1 GROUP BY b HAVING SUM(a) > 0");
  ASSERT_TRUE(plan.ok());
  // Filter(HAVING) above Aggregate; the aggregate computes SUM(a) once.
  const LogicalPlan* node = (*plan)->children[0].get();
  if (node->kind == PlanKind::kFilter) node = node->children[0].get();
  ASSERT_EQ(node->kind, PlanKind::kAggregate);
  EXPECT_EQ(node->agg_calls.size(), 1u);
}

TEST_F(AnalyzerTest, NonGroupedColumnRejected) {
  auto plan = Analyze("SELECT a, COUNT(*) FROM t1 GROUP BY b");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kAnalysisError);
}

TEST_F(AnalyzerTest, AmbiguousColumnRejected) {
  auto plan = Analyze("SELECT a FROM t1 JOIN t2 ON t1.a = t2.a");
  EXPECT_FALSE(plan.ok());
}

TEST_F(AnalyzerTest, QualifiedColumnsDisambiguate) {
  auto plan = Analyze("SELECT t1.a, t2.a FROM t1 JOIN t2 ON t1.a = t2.a");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalPlan* join = (*plan)->children[0].get();
  ASSERT_EQ(join->kind, PlanKind::kJoin);
  EXPECT_EQ(join->left_keys.size(), 1u);
  EXPECT_EQ(join->right_keys.size(), 1u);
  // Right key is rebased to the right child's slots.
  EXPECT_EQ(join->right_keys[0]->slot, 0);
}

TEST_F(AnalyzerTest, CommaJoinKeysRecoveredFromWhere) {
  auto plan = Analyze(
      "SELECT t1.b FROM t1, t2 WHERE t1.a = t2.a AND t1.c > 1.5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The equality became a join key; the residual filter remains.
  std::string rendered = (*plan)->ToString();
  EXPECT_NE(rendered.find("Join"), std::string::npos);
  EXPECT_NE(rendered.find("keys=[$0=$0]"), std::string::npos);
}

TEST_F(AnalyzerTest, CrossJoinWithoutKeysRejected) {
  EXPECT_FALSE(Analyze("SELECT t1.a FROM t1, t2 WHERE t1.c > 0").ok());
  EXPECT_FALSE(Analyze("SELECT t1.a FROM t1 JOIN t2 ON t1.a > t2.a").ok());
}

TEST_F(AnalyzerTest, OrderByAliasAndUnderlyingColumn) {
  EXPECT_TRUE(Analyze("SELECT a AS x FROM t1 ORDER BY x").ok());
  EXPECT_TRUE(Analyze("SELECT a FROM t1 ORDER BY a").ok());
  // ORDER BY on a non-projected expression matching a select item.
  EXPECT_TRUE(
      Analyze("SELECT SUM(a) FROM t1 GROUP BY b ORDER BY SUM(a)").ok());
  EXPECT_FALSE(Analyze("SELECT a FROM t1 ORDER BY no_such").ok());
}

TEST_F(AnalyzerTest, SubqueryScopesByAlias) {
  auto plan = Analyze(
      "SELECT s.total FROM (SELECT b, SUM(a) AS total FROM t1 GROUP BY b) s "
      "WHERE s.total > 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

// ---- Optimizer rules -------------------------------------------------------

TEST_F(AnalyzerTest, PredicatePushdownReachesScan) {
  auto plan = Analyze("SELECT a FROM t1 WHERE a > 5 AND b = 'x'", true);
  ASSERT_TRUE(plan.ok());
  std::string rendered = (*plan)->ToString();
  EXPECT_NE(rendered.find("pushed="), std::string::npos);
  EXPECT_EQ(rendered.find("Filter"), std::string::npos);  // fully absorbed
}

TEST_F(AnalyzerTest, PushdownSplitsAcrossJoinSides) {
  auto plan = Analyze(
      "SELECT t1.b FROM t1 JOIN t2 ON t1.a = t2.a "
      "WHERE t1.c > 1.0 AND t2.d > DATE '2000-01-01'",
      true);
  ASSERT_TRUE(plan.ok());
  std::string rendered = (*plan)->ToString();
  // Both scans carry a pushed predicate.
  size_t first = rendered.find("pushed=");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(rendered.find("pushed=", first + 1), std::string::npos);
}

TEST_F(AnalyzerTest, ColumnPruningNarrowsScan) {
  auto plan = Analyze("SELECT a FROM t1 WHERE c > 0.5", true);
  ASSERT_TRUE(plan.ok());
  std::function<const LogicalPlan*(const LogicalPlan*)> find_scan =
      [&](const LogicalPlan* p) -> const LogicalPlan* {
    if (p->kind == PlanKind::kScan) return p;
    for (const auto& c : p->children) {
      if (const LogicalPlan* s = find_scan(c.get())) return s;
    }
    return nullptr;
  };
  const LogicalPlan* scan = find_scan(plan->get());
  ASSERT_NE(scan, nullptr);
  // Only a (slot 0) and c (slot 2) are needed; b is never read.
  EXPECT_EQ(scan->needed_columns, (std::vector<int>{0, 2}));
}

TEST_F(AnalyzerTest, ConstantFolding) {
  auto plan = Analyze("SELECT a + (1 + 2) * 3 FROM t1", true);
  ASSERT_TRUE(plan.ok());
  std::string rendered = (*plan)->ToString();
  EXPECT_NE(rendered.find("9"), std::string::npos);
  EXPECT_EQ(rendered.find("(1 + 2)"), std::string::npos);
}

TEST_F(AnalyzerTest, PushdownThroughProjectOfSlots) {
  auto plan = Analyze(
      "SELECT x FROM (SELECT a AS x, b AS y FROM t1) s WHERE x > 3", true);
  ASSERT_TRUE(plan.ok());
  std::string rendered = (*plan)->ToString();
  // The x > 3 predicate reaches the t1 scan (x is a plain slot alias).
  EXPECT_NE(rendered.find("pushed="), std::string::npos);
}

}  // namespace
}  // namespace shark
