// Tests for the extended SQL surface: outer joins, UNION ALL, and the wider
// builtin function set.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sql/session.h"

namespace shark {
namespace {

class SqlExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    Schema users({{"uid", TypeKind::kInt64}, {"name", TypeKind::kString}});
    std::vector<Row> urows;
    for (int i = 0; i < 10; ++i) {
      urows.push_back(
          Row({Value::Int64(i), Value::String("user" + std::to_string(i))}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("users", users, urows, 2).ok());

    // Orders only for users 0..4; user 3 has two orders.
    Schema orders({{"uid", TypeKind::kInt64}, {"amount", TypeKind::kDouble}});
    std::vector<Row> orows;
    for (int i = 0; i < 5; ++i) {
      orows.push_back(Row({Value::Int64(i), Value::Double(i * 10.0)}));
    }
    orows.push_back(Row({Value::Int64(3), Value::Double(99.0)}));
    ASSERT_TRUE(session_->CreateDfsTable("orders", orders, orows, 2).ok());
  }

  QueryResult MustQuery(const std::string& sql) {
    auto r = session_->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(SqlExtendedTest, LeftOuterJoinNullExtends) {
  QueryResult r = MustQuery(
      "SELECT u.uid, o.amount FROM users u LEFT OUTER JOIN orders o "
      "ON u.uid = o.uid");
  // 6 matched rows (user 3 twice) + 5 unmatched users (5..9).
  EXPECT_EQ(r.rows.size(), 11u);
  int nulls = 0;
  for (const Row& row : r.rows) {
    if (row.Get(1).is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 5);
}

TEST_F(SqlExtendedTest, LeftJoinWithoutOuterKeyword) {
  QueryResult r = MustQuery(
      "SELECT COUNT(*) FROM users u LEFT JOIN orders o ON u.uid = o.uid");
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(11));
}

TEST_F(SqlExtendedTest, RightOuterJoin) {
  QueryResult r = MustQuery(
      "SELECT u.name, o.amount FROM orders o RIGHT OUTER JOIN users u "
      "ON o.uid = u.uid");
  EXPECT_EQ(r.rows.size(), 11u);
  // Output arity: name, amount — name side always present.
  for (const Row& row : r.rows) {
    EXPECT_FALSE(row.Get(0).is_null());
  }
}

TEST_F(SqlExtendedTest, OuterJoinAggregatesOverNulls) {
  QueryResult r = MustQuery(
      "SELECT u.uid, COUNT(o.amount) FROM users u LEFT JOIN orders o "
      "ON u.uid = o.uid GROUP BY u.uid");
  ASSERT_EQ(r.rows.size(), 10u);
  std::map<int64_t, int64_t> counts;
  for (const Row& row : r.rows) {
    counts[row.Get(0).int64_v()] = row.Get(1).int64_v();
  }
  EXPECT_EQ(counts[3], 2);  // two orders
  EXPECT_EQ(counts[7], 0);  // COUNT of NULL amounts = 0
}

TEST_F(SqlExtendedTest, OuterJoinPredicateOnNullSideNotPushed) {
  // WHERE o.amount IS NULL finds exactly the unmatched users — this breaks
  // if the optimizer pushes the predicate below the join.
  QueryResult r = MustQuery(
      "SELECT u.uid FROM users u LEFT JOIN orders o ON u.uid = o.uid "
      "WHERE o.amount IS NULL");
  EXPECT_EQ(r.rows.size(), 5u);
  for (const Row& row : r.rows) {
    EXPECT_GE(row.Get(0).int64_v(), 5);
  }
}

TEST_F(SqlExtendedTest, UnionAll) {
  QueryResult r = MustQuery(
      "SELECT uid FROM users WHERE uid < 2 UNION ALL "
      "SELECT uid FROM orders WHERE amount > 15.0");
  // users: 0,1; orders: uid 2,3,4 (20,30,40) + uid 3 (99) = 4 rows.
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(SqlExtendedTest, UnionAllKeepsDuplicates) {
  QueryResult r = MustQuery(
      "SELECT uid FROM users UNION ALL SELECT uid FROM users");
  EXPECT_EQ(r.rows.size(), 20u);
}

TEST_F(SqlExtendedTest, UnionAllArityMismatchRejected) {
  auto r = session_->Sql(
      "SELECT uid FROM users UNION ALL SELECT uid, name FROM users");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlExtendedTest, UnionAllWithAggregateOnTop) {
  QueryResult r = MustQuery(
      "SELECT COUNT(*) FROM (SELECT uid FROM users UNION ALL "
      "SELECT uid FROM orders) t");
  EXPECT_EQ(r.rows[0].Get(0), Value::Int64(16));
}

TEST_F(SqlExtendedTest, NewBuiltins) {
  QueryResult r = MustQuery(
      "SELECT COALESCE(NULL, 5), IF(TRUE, 'a', 'b'), FLOOR(2.7), CEIL(2.1), "
      "SQRT(16.0), POW(2, 10), TRIM('  x  '), MONTH(DATE '2000-03-15'), "
      "DAY(DATE '2000-03-15') FROM users LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  const Row& row = r.rows[0];
  EXPECT_EQ(row.Get(0), Value::Int64(5));
  EXPECT_EQ(row.Get(1), Value::String("a"));
  EXPECT_EQ(row.Get(2), Value::Int64(2));
  EXPECT_EQ(row.Get(3), Value::Int64(3));
  EXPECT_DOUBLE_EQ(row.Get(4).double_v(), 4.0);
  EXPECT_DOUBLE_EQ(row.Get(5).double_v(), 1024.0);
  EXPECT_EQ(row.Get(6), Value::String("x"));
  EXPECT_EQ(row.Get(7), Value::Int64(3));
  EXPECT_EQ(row.Get(8), Value::Int64(15));
}

TEST_F(SqlExtendedTest, CoalesceWithOuterJoin) {
  QueryResult r = MustQuery(
      "SELECT SUM(COALESCE(o.amount, 0.0)) FROM users u LEFT JOIN orders o "
      "ON u.uid = o.uid");
  // 0+10+20+30+40+99 = 199.
  EXPECT_DOUBLE_EQ(r.rows[0].Get(0).double_v(), 199.0);
}

TEST_F(SqlExtendedTest, OuterJoinStrategiesConsistent) {
  const std::string q =
      "SELECT COUNT(*) FROM users u LEFT JOIN orders o ON u.uid = o.uid";
  for (auto mode : {JoinOptimization::kStatic, JoinOptimization::kAdaptive,
                    JoinOptimization::kStaticAdaptive}) {
    session_->options().join_opt = mode;
    QueryResult r = MustQuery(q);
    EXPECT_EQ(r.rows[0].Get(0), Value::Int64(11));
    EXPECT_EQ(r.metrics.join_strategy, "shuffle join (outer)");
  }
}

}  // namespace
}  // namespace shark
