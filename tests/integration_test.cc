// Golden-model integration tests: every query runs both on the engine and on
// a brute-force single-process reference evaluator over the same generated
// rows; the answers must agree exactly. This pins the whole pipeline —
// parser, analyzer, optimizer, PDE, operators, shuffle, cache — against an
// independent implementation.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/session.h"

namespace shark {
namespace {

struct Dataset {
  Schema schema;
  std::vector<Row> rows;
};

Dataset MakeSales(int n, uint64_t seed) {
  Random rng(seed);
  Dataset d;
  d.schema = Schema({{"region", TypeKind::kString},
                     {"product", TypeKind::kString},
                     {"units", TypeKind::kInt64},
                     {"price", TypeKind::kDouble},
                     {"sold", TypeKind::kDate}});
  const char* regions[] = {"north", "south", "east", "west"};
  const char* products[] = {"anchor", "bolt", "clamp", "drill", "easel"};
  int64_t day0 = Value::ParseDate("2011-01-01")->int64_v();
  for (int i = 0; i < n; ++i) {
    d.rows.push_back(Row({Value::String(regions[rng.Uniform(4)]),
                          Value::String(products[rng.Uniform(5)]),
                          Value::Int64(rng.UniformInt(1, 40)),
                          Value::Double(static_cast<double>(rng.UniformInt(100, 9999)) / 100.0),
                          Value::Date(day0 + rng.UniformInt(0, 359))}));
  }
  return d;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 5;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));
    data_ = MakeSales(3000, 77);
    ASSERT_TRUE(session_->CreateDfsTable("sales", data_.schema, data_.rows, 8).ok());
  }

  std::multiset<std::string> Run(const std::string& sql) {
    auto r = session_->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    std::multiset<std::string> out;
    if (r.ok()) {
      for (const Row& row : r->rows) out.insert(row.ToString());
    }
    return out;
  }

  std::unique_ptr<SharkSession> session_;
  Dataset data_;
};

TEST_F(IntegrationTest, FilterMatchesReference) {
  auto got = Run("SELECT region, units FROM sales WHERE units > 35 AND "
                 "region <> 'east'");
  std::multiset<std::string> expected;
  for (const Row& r : data_.rows) {
    if (r.Get(2).int64_v() > 35 && r.Get(0).str() != "east") {
      expected.insert(Row({r.Get(0), r.Get(2)}).ToString());
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_F(IntegrationTest, GroupByMatchesReference) {
  auto got = Run(
      "SELECT region, product, COUNT(*), SUM(units), MIN(price), MAX(price) "
      "FROM sales GROUP BY region, product");
  struct Acc {
    int64_t count = 0;
    int64_t units = 0;
    double minp = 1e18, maxp = -1e18;
  };
  std::map<std::pair<std::string, std::string>, Acc> ref;
  for (const Row& r : data_.rows) {
    Acc& a = ref[{r.Get(0).str(), r.Get(1).str()}];
    a.count += 1;
    a.units += r.Get(2).int64_v();
    a.minp = std::min(a.minp, r.Get(3).double_v());
    a.maxp = std::max(a.maxp, r.Get(3).double_v());
  }
  std::multiset<std::string> expected;
  for (const auto& [key, a] : ref) {
    expected.insert(Row({Value::String(key.first), Value::String(key.second),
                         Value::Int64(a.count), Value::Int64(a.units),
                         Value::Double(a.minp), Value::Double(a.maxp)})
                        .ToString());
  }
  EXPECT_EQ(got, expected);
}

TEST_F(IntegrationTest, AvgAndHavingMatchReference) {
  auto got = Run(
      "SELECT product, AVG(price) FROM sales GROUP BY product "
      "HAVING COUNT(*) > 500");
  std::map<std::string, std::pair<double, int64_t>> ref;
  for (const Row& r : data_.rows) {
    auto& [sum, count] = ref[r.Get(1).str()];
    sum += r.Get(3).double_v();
    count += 1;
  }
  std::multiset<std::string> expected;
  for (const auto& [product, sc] : ref) {
    if (sc.second > 500) {
      expected.insert(
          Row({Value::String(product),
               Value::Double(sc.first / static_cast<double>(sc.second))})
              .ToString());
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_F(IntegrationTest, DateRangeMatchesReference) {
  int64_t lo = Value::ParseDate("2011-03-01")->int64_v();
  int64_t hi = Value::ParseDate("2011-03-31")->int64_v();
  auto got = Run(
      "SELECT COUNT(*) FROM sales WHERE sold BETWEEN DATE '2011-03-01' AND "
      "DATE '2011-03-31'");
  int64_t expected = 0;
  for (const Row& r : data_.rows) {
    int64_t d = r.Get(4).int64_v();
    if (d >= lo && d <= hi) ++expected;
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(*got.begin(), std::to_string(expected));
}

TEST_F(IntegrationTest, SelfJoinStyleSubqueryMatchesReference) {
  // Revenue share per region via subquery + join.
  auto got = Run(
      "SELECT s.region, COUNT(*) FROM sales s "
      "JOIN (SELECT region, MAX(units) AS mu FROM sales GROUP BY region) m "
      "ON s.region = m.region WHERE s.units = m.mu GROUP BY s.region");
  std::map<std::string, int64_t> max_units;
  for (const Row& r : data_.rows) {
    auto& m = max_units[r.Get(0).str()];
    m = std::max(m, r.Get(2).int64_v());
  }
  std::map<std::string, int64_t> counts;
  for (const Row& r : data_.rows) {
    if (r.Get(2).int64_v() == max_units[r.Get(0).str()]) {
      counts[r.Get(0).str()] += 1;
    }
  }
  std::multiset<std::string> expected;
  for (const auto& [region, c] : counts) {
    expected.insert(Row({Value::String(region), Value::Int64(c)}).ToString());
  }
  EXPECT_EQ(got, expected);
}

TEST_F(IntegrationTest, ResultsIdenticalAcrossStorageConfigurations) {
  const std::string queries[] = {
      "SELECT region, SUM(units * price) AS rev FROM sales GROUP BY region",
      "SELECT product, COUNT(DISTINCT region) FROM sales GROUP BY product",
      "SELECT * FROM sales WHERE price > 90.0 ORDER BY price DESC LIMIT 13",
  };
  std::vector<std::multiset<std::string>> disk_results;
  for (const auto& q : queries) disk_results.push_back(Run(q));
  ASSERT_TRUE(session_->CacheTable("sales").ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(Run(queries[i]), disk_results[i]) << queries[i];
  }
  // And with the key engine features disabled.
  session_->options().pde = false;
  session_->options().map_pruning = false;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(Run(queries[i]), disk_results[i]) << queries[i];
  }
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  auto a = Run("SELECT region, SUM(units) FROM sales GROUP BY region");
  auto b = Run("SELECT region, SUM(units) FROM sales GROUP BY region");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace shark
