#include "common/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/heavy_hitters.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// ApproxHistogram
// ---------------------------------------------------------------------------

TEST(ApproxHistogramTest, EmptyHistogram) {
  ApproxHistogram h(16);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.EstimateRank(100.0), 0.0);
  EXPECT_EQ(h.EstimateRangeCount(0.0, 1.0), 0.0);
}

TEST(ApproxHistogramTest, SingleValueRepeated) {
  // All mass in one spot: every quantile must land on (about) that value,
  // whether the data still sits in the exact buffer or was bucketed.
  for (int reps : {5, 500}) {
    ApproxHistogram h(16);
    for (int i = 0; i < reps; ++i) h.Add(42.0);
    EXPECT_EQ(h.total_count(), static_cast<uint64_t>(reps));
    EXPECT_EQ(h.min(), 42.0);
    EXPECT_EQ(h.max(), 42.0);
    for (double q : {0.0, 0.5, 0.99}) {
      EXPECT_NEAR(h.EstimateQuantile(q), 42.0, 1.0) << "reps=" << reps;
    }
  }
}

TEST(ApproxHistogramTest, QuantilesOfUniformStream) {
  ApproxHistogram h(64);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.EstimateQuantile(0.5), 5000.0, 300.0);
  EXPECT_NEAR(h.EstimateQuantile(0.95), 9500.0, 300.0);
  EXPECT_NEAR(h.EstimateRank(2500.0), 2500.0, 300.0);
}

TEST(ApproxHistogramTest, MergeEmptyIsIdentity) {
  ApproxHistogram h(16);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i));
  uint64_t count_before = h.total_count();
  double p50_before = h.EstimateQuantile(0.5);

  ApproxHistogram empty(16);
  h.Merge(empty);
  EXPECT_EQ(h.total_count(), count_before);
  EXPECT_EQ(h.EstimateQuantile(0.5), p50_before);

  // And the other direction: empty.Merge(h) adopts h's distribution.
  ApproxHistogram other(16);
  other.Merge(h);
  EXPECT_EQ(other.total_count(), count_before);
  EXPECT_NEAR(other.EstimateQuantile(0.5), p50_before, 5.0);
}

TEST(ApproxHistogramTest, MergedStreamsMatchCombinedStream) {
  // Two disjoint halves merged must approximate one histogram over the
  // concatenated stream.
  ApproxHistogram left(64);
  ApproxHistogram right(64);
  ApproxHistogram whole(64);
  for (int i = 0; i < 5000; ++i) {
    left.Add(static_cast<double>(i));
    whole.Add(static_cast<double>(i));
  }
  for (int i = 5000; i < 10000; ++i) {
    right.Add(static_cast<double>(i));
    whole.Add(static_cast<double>(i));
  }
  left.Merge(right);
  EXPECT_EQ(left.total_count(), whole.total_count());
  EXPECT_EQ(left.min(), 0.0);
  EXPECT_EQ(left.max(), 9999.0);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(left.EstimateQuantile(q), whole.EstimateQuantile(q), 500.0)
        << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// HeavyHitters
// ---------------------------------------------------------------------------

TEST(HeavyHittersTest, EmptySketch) {
  HeavyHitters hh(8);
  EXPECT_EQ(hh.total_count(), 0u);
  EXPECT_EQ(hh.size(), 0u);
  EXPECT_TRUE(hh.TopK(4).empty());
  EXPECT_EQ(hh.LowerBound(7), 0u);
}

TEST(HeavyHittersTest, ExactWhenUnderCapacity) {
  HeavyHitters hh(8);
  hh.Add(1, 10);
  hh.Add(2, 5);
  hh.Add(3, 1);
  auto top = hh.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(hh.LowerBound(1), 10u);
  EXPECT_EQ(hh.LowerBound(3), 1u);
}

TEST(HeavyHittersTest, HeavyKeySurvivesEviction) {
  // One key takes >1/capacity of the stream; SpaceSaving guarantees it is
  // tracked no matter how many light keys churn through.
  HeavyHitters hh(8);
  for (uint64_t i = 0; i < 1000; ++i) {
    hh.Add(12345, 4);       // heavy
    hh.Add(100000 + i, 1);  // a parade of one-off keys
  }
  auto top = hh.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 12345u);
  EXPECT_GE(hh.LowerBound(12345), 1000u);
}

TEST(HeavyHittersTest, MergeEmptyIsIdentity) {
  HeavyHitters hh(8);
  hh.Add(1, 10);
  HeavyHitters empty(8);
  hh.Merge(empty);
  EXPECT_EQ(hh.total_count(), 10u);
  EXPECT_EQ(hh.LowerBound(1), 10u);

  empty.Merge(hh);
  EXPECT_EQ(empty.total_count(), 10u);
  EXPECT_EQ(empty.LowerBound(1), 10u);
}

TEST(HeavyHittersTest, MergedStreamsFindGlobalHeavyHitter) {
  // Each worker sees the heavy key mixed with local noise; the merged sketch
  // must rank the shared key first with counts summed across workers.
  HeavyHitters merged(16);
  for (int worker = 0; worker < 4; ++worker) {
    HeavyHitters local(16);
    for (uint64_t i = 0; i < 200; ++i) {
      local.Add(777, 3);
      local.Add(1000 * static_cast<uint64_t>(worker + 1) + i, 1);
    }
    merged.Merge(local);
  }
  EXPECT_EQ(merged.total_count(), 4u * 200u * 4u);
  auto top = merged.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 777u);
  // True frequency 2400; the estimate may overestimate but never by more
  // than the recorded error.
  EXPECT_GE(top[0].count, 2400u);
  EXPECT_GE(2400u, top[0].count - top[0].error);
}

}  // namespace
}  // namespace shark
