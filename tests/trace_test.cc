// Query-profile observability: the QueryProfile tree recorded by the
// scheduler, its EXPLAIN ANALYZE rendering, and the chrome://tracing export.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "sql/session.h"

namespace shark {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.hardware.cores_per_node = 2;
    session_ = std::make_unique<SharkSession>(
        std::make_shared<ClusterContext>(cfg));

    Schema rankings({{"pageURL", TypeKind::kString},
                     {"pageRank", TypeKind::kInt64},
                     {"avgDuration", TypeKind::kInt64}});
    std::vector<Row> rrows;
    for (int i = 0; i < 100; ++i) {
      rrows.push_back(Row({Value::String("url" + std::to_string(i)),
                           Value::Int64(i), Value::Int64(i % 10)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("rankings", rankings, rrows, 4).ok());

    Schema visits({{"destURL", TypeKind::kString},
                   {"sourceIP", TypeKind::kString},
                   {"adRevenue", TypeKind::kDouble}});
    std::vector<Row> vrows;
    for (int i = 0; i < 300; ++i) {
      vrows.push_back(Row({Value::String("url" + std::to_string(i % 50)),
                           Value::String("ip" + std::to_string(i % 7)),
                           Value::Double(1.0 + (i % 4))}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("visits", visits, vrows, 4).ok());
  }

  QueryResult MustQuery(const std::string& sql) {
    auto r = session_->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << sql;
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<SharkSession> session_;
};

constexpr const char kJoinAgg[] =
    "SELECT r.pageURL, COUNT(*), SUM(v.adRevenue) "
    "FROM rankings r JOIN visits v ON r.pageURL = v.destURL "
    "WHERE r.pageRank > 10 GROUP BY r.pageURL";

TEST_F(TraceTest, SelectCarriesProfile) {
  QueryResult r = MustQuery("SELECT pageURL FROM rankings WHERE pageRank > 90");
  ASSERT_NE(r.profile, nullptr);
  EXPECT_EQ(r.profile->result_rows, r.rows.size());
  EXPECT_GT(r.profile->duration(), 0.0);
  ASSERT_FALSE(r.profile->stages.empty());
  uint64_t stage_rows = 0;
  for (const StageTrace& st : r.profile->stages) {
    EXPECT_GE(st.end_time, st.start_time);
    EXPECT_GT(st.committed_tasks(), 0);
    stage_rows += st.rows_out();
    for (const TaskTrace& t : st.tasks) {
      EXPECT_LE(st.start_time, t.queue_time);
      EXPECT_LE(t.queue_time, t.launch_time);
      EXPECT_LE(t.launch_time, t.run_start);
      EXPECT_LE(t.run_start, t.finish_time);
      EXPECT_GE(t.node, 0);
      EXPECT_GE(t.core, 0);
    }
  }
  // The final stage delivers the result rows.
  EXPECT_GE(stage_rows, r.rows.size());
}

TEST_F(TraceTest, JoinAggProfileHasShuffleStages) {
  QueryResult r = MustQuery(kJoinAgg);
  ASSERT_NE(r.profile, nullptr);
  EXPECT_FALSE(r.rows.empty());
  const StageTrace* map_stage = nullptr;
  for (const StageTrace& st : r.profile->stages) {
    if (st.is_map_stage && st.shuffle.buckets > 0) map_stage = &st;
  }
  ASSERT_NE(map_stage, nullptr) << "no map stage with a shuffle summary";
  EXPECT_GE(map_stage->shuffle_id, 0);
  EXPECT_LE(map_stage->shuffle.min_bytes, map_stage->shuffle.median_bytes);
  EXPECT_LE(map_stage->shuffle.median_bytes, map_stage->shuffle.max_bytes);
  EXPECT_GT(map_stage->shuffle.total_bytes, 0u);
  EXPECT_GE(map_stage->shuffle.skew, 1.0);
}

TEST_F(TraceTest, CachedScanRecordsCacheHits) {
  ASSERT_TRUE(session_->CacheTable("rankings").ok());
  QueryResult r =
      MustQuery("SELECT pageURL FROM rankings WHERE pageRank > 90");
  ASSERT_NE(r.profile, nullptr);
  auto totals = r.profile->CacheTotals();
  uint64_t hits = 0;
  for (const auto& [rdd_id, c] : totals) hits += c.hit_blocks;
  EXPECT_GT(hits, 0u);
  // The executor names the cached RDD after its table.
  bool named = false;
  for (const auto& [rdd_id, name] : r.profile->rdd_names) {
    if (name == "rankings" && totals.count(rdd_id) > 0) named = true;
  }
  EXPECT_TRUE(named);
  // Cache-local scans on a healthy cluster run on their preferred node. The
  // scan is fused into its consuming stage, so find the stage that actually
  // recorded cache traffic.
  const StageTrace* scan = nullptr;
  for (const StageTrace& st : r.profile->stages) {
    if (!st.cache_by_rdd.empty()) scan = &st;
  }
  ASSERT_NE(scan, nullptr);
  for (const TaskTrace& t : scan->tasks) {
    EXPECT_EQ(t.locality, TaskLocality::kPreferred);
  }
}

TEST_F(TraceTest, ExplainAnalyzeAnnotatesPlan) {
  QueryResult r = MustQuery(std::string("EXPLAIN ANALYZE ") + kJoinAgg);
  ASSERT_EQ(r.schema.num_fields(), 1);
  EXPECT_EQ(r.schema.field(0).name, "plan");
  ASSERT_NE(r.profile, nullptr);
  std::string text;
  for (const Row& row : r.rows) text += row.Get(0).str() + "\n";
  // Plan operators appear...
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Join"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan rankings"), std::string::npos) << text;
  // ...annotated with executed stages carrying rows and virtual-time spans.
  EXPECT_NE(text.find("-> stage"), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
  EXPECT_NE(text.find("tasks="), std::string::npos) << text;
  EXPECT_NE(text.find("total:"), std::string::npos) << text;
  // Every recorded stage is accounted for somewhere in the rendering.
  size_t annotations = 0;
  for (size_t pos = text.find("-> stage"); pos != std::string::npos;
       pos = text.find("-> stage", pos + 1)) {
    ++annotations;
  }
  EXPECT_EQ(annotations, r.profile->stages.size()) << text;
}

TEST_F(TraceTest, PlainExplainDoesNotExecute) {
  QueryResult r = MustQuery(std::string("EXPLAIN ") + kJoinAgg);
  ASSERT_EQ(r.schema.num_fields(), 1);
  EXPECT_EQ(r.profile, nullptr);       // nothing ran
  EXPECT_EQ(r.metrics.tasks, 0);       // no tasks launched
  std::string text;
  for (const Row& row : r.rows) text += row.Get(0).str() + "\n";
  EXPECT_NE(text.find("Join"), std::string::npos) << text;
  EXPECT_EQ(text.find("-> stage"), std::string::npos) << text;
}

TEST_F(TraceTest, ChromeTraceIsWellFormed) {
  QueryResult r = MustQuery(kJoinAgg);
  ASSERT_NE(r.profile, nullptr);
  std::string json = r.profile->ToChromeTrace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Balanced braces/brackets outside strings — cheap structural sanity that
  // catches an unterminated event or a stray comma-producing bug.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // One metadata record per simulated entity, one X event per task attempt.
  size_t tasks = 0;  // only placed tasks get an X event
  for (const StageTrace& st : r.profile->stages) {
    for (const TaskTrace& t : st.tasks) tasks += t.node >= 0 ? 1 : 0;
  }
  size_t x_events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++x_events;
  }
  EXPECT_EQ(x_events, tasks + r.profile->stages.size());
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("driver"), std::string::npos);
}

TEST_F(TraceTest, NestedQueriesShareOneProfile) {
  // The join query's subquery runs through a nested Executor::Execute; its
  // stages must land in the single outer profile, not a second one.
  QueryResult r = MustQuery(
      "SELECT r.pageURL FROM rankings r "
      "JOIN (SELECT destURL, COUNT(*) AS c FROM visits GROUP BY destURL) v "
      "ON r.pageURL = v.destURL WHERE v.c > 3");
  ASSERT_NE(r.profile, nullptr);
  EXPECT_FALSE(r.rows.empty());
  // Stages from both the subquery's aggregation and the outer join appear.
  bool has_agg = false;
  bool has_join = false;
  for (const StageTrace& st : r.profile->stages) {
    if (st.label.find("agg") != std::string::npos) has_agg = true;
    if (st.label.find("join") != std::string::npos ||
        st.label.find("Join") != std::string::npos) {
      has_join = true;
    }
  }
  EXPECT_TRUE(has_agg);
  EXPECT_TRUE(has_join);
}

TEST(TraceCollectorTest, NestedBeginSharesOuterProfile) {
  TraceCollector tc;
  EXPECT_FALSE(tc.active());
  EXPECT_TRUE(tc.BeginQuery(1.0));
  EXPECT_TRUE(tc.active());
  EXPECT_FALSE(tc.BeginQuery(2.0));  // nested: same profile, not owner
  int outer = tc.BeginStage("outer", false, -1, 2.0);
  int inner = tc.BeginStage("inner", true, 0, 2.5);
  EXPECT_EQ(tc.stage(inner)->parent, outer);
  tc.EndStage(inner, 3.0);
  EXPECT_EQ(tc.last_ended_stage(), inner);
  tc.EndStage(outer, 3.5);
  auto profile = tc.EndQuery(4.0);
  ASSERT_NE(profile, nullptr);
  EXPECT_FALSE(tc.active());
  EXPECT_EQ(profile->stages.size(), 2u);
  EXPECT_DOUBLE_EQ(profile->start_time, 1.0);
  EXPECT_DOUBLE_EQ(profile->end_time, 4.0);
}

TEST(TraceUtilTest, WorkSummaryRendersNonzeroCounters) {
  TaskWork w;
  EXPECT_EQ(WorkSummary(w), "none");
  w.rows_processed = 42;
  w.disk_read_bytes = 2048;
  std::string s = WorkSummary(w);
  EXPECT_NE(s.find("rows=42"), std::string::npos) << s;
  EXPECT_NE(s.find("disk_read"), std::string::npos) << s;
  EXPECT_EQ(s.find("net_read"), std::string::npos) << s;
}

TEST(TraceUtilTest, SummarizeBucketBytes) {
  ShuffleSizeSummary s = SummarizeBucketBytes({40, 10, 30, 20});
  EXPECT_EQ(s.buckets, 4);
  EXPECT_EQ(s.min_bytes, 10u);
  EXPECT_EQ(s.max_bytes, 40u);
  EXPECT_EQ(s.total_bytes, 100u);
  EXPECT_DOUBLE_EQ(s.skew, 40.0 / 25.0);
  ShuffleSizeSummary empty = SummarizeBucketBytes({});
  EXPECT_EQ(empty.buckets, 0);
  EXPECT_DOUBLE_EQ(empty.skew, 0.0);
}

}  // namespace
}  // namespace shark
