#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rdd/context.h"
#include "rdd/pair_rdd.h"

namespace shark {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.profile = EngineProfile::Shark();
  return cfg;
}

std::vector<int64_t> Iota(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return v;
}

TEST(RddTest, ParallelizeCollectRoundTrip) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(100), 8);
  auto result = ctx.Collect(rdd);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> got = *result;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, Iota(100));
}

TEST(RddTest, MapFilterPipeline) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(1000), 8)
                 ->Map([](const int64_t& x) { return x * 2; })
                 ->Filter([](const int64_t& x) { return x % 4 == 0; });
  auto result = ctx.Collect(rdd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 500u);
  for (int64_t v : *result) EXPECT_EQ(v % 4, 0);
}

TEST(RddTest, FlatMapExpands) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(10), 2)->FlatMap([](const int64_t& x) {
    return std::vector<int64_t>{x, x};
  });
  auto count = ctx.Count(rdd);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
}

TEST(RddTest, CountAndReduceActions) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(101), 7);
  auto count = ctx.Count(rdd);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 101u);
  auto sum = ctx.Reduce(rdd, int64_t{0},
                        [](int64_t a, int64_t b) { return a + b; });
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 5050);
}

TEST(RddTest, ReduceByKeyWordCount) {
  ClusterContext ctx(SmallConfig());
  std::vector<std::pair<std::string, int64_t>> words;
  for (int i = 0; i < 30; ++i) words.emplace_back("a", 1);
  for (int i = 0; i < 20; ++i) words.emplace_back("b", 1);
  for (int i = 0; i < 10; ++i) words.emplace_back("c", 1);
  auto rdd = ctx.Parallelize(words, 6);
  auto counts =
      ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 4);
  auto result = ctx.Collect(counts);
  ASSERT_TRUE(result.ok());
  std::map<std::string, int64_t> got(result->begin(), result->end());
  EXPECT_EQ(got["a"], 30);
  EXPECT_EQ(got["b"], 20);
  EXPECT_EQ(got["c"], 10);
}

TEST(RddTest, GroupByKeyGathersAllValues) {
  ClusterContext ctx(SmallConfig());
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(i % 5, i);
  auto grouped = GroupByKey(ctx.Parallelize(data, 8), 3);
  auto result = ctx.Collect(grouped);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  for (const auto& [k, vs] : *result) {
    EXPECT_EQ(vs.size(), 20u) << "key " << k;
  }
}

TEST(RddTest, ShuffleJoinMatchesNaiveJoin) {
  ClusterContext ctx(SmallConfig());
  std::vector<std::pair<int64_t, std::string>> left;
  std::vector<std::pair<int64_t, double>> right;
  for (int64_t i = 0; i < 50; ++i) left.emplace_back(i, "L" + std::to_string(i));
  for (int64_t i = 25; i < 75; ++i) right.emplace_back(i, i * 1.5);
  auto joined =
      ShuffleJoin(ctx.Parallelize(left, 4), ctx.Parallelize(right, 4), 5);
  auto result = ctx.Collect(joined);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 25u);  // keys 25..49
  for (const auto& [k, vw] : *result) {
    EXPECT_GE(k, 25);
    EXPECT_LT(k, 50);
    EXPECT_EQ(vw.first, "L" + std::to_string(k));
    EXPECT_DOUBLE_EQ(vw.second, k * 1.5);
  }
}

TEST(RddTest, UnionConcatenates) {
  ClusterContext ctx(SmallConfig());
  auto a = ctx.Parallelize(Iota(10), 2);
  auto b = ctx.Parallelize(Iota(5), 2);
  auto u = std::make_shared<UnionRdd<int64_t>>(a, b);
  auto count = ctx.Count(RddPtr<int64_t>(u));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 15u);
}

TEST(RddTest, PartitionSubsetSkipsOthers) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(100), 10);
  auto subset =
      std::make_shared<PartitionSubsetRdd<int64_t>>(rdd, std::vector<int>{0, 1});
  auto result = ctx.Collect(RddPtr<int64_t>(subset));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 20u);  // only 2 of 10 partitions scanned
}

// --- virtual time & engine profile behaviour ------------------------------

TEST(RddTest, JobAdvancesVirtualClock) {
  ClusterContext ctx(SmallConfig());
  double t0 = ctx.now();
  auto rdd = ctx.Parallelize(Iota(1000), 8);
  ASSERT_TRUE(ctx.Collect(rdd).ok());
  EXPECT_GT(ctx.now(), t0);
}

TEST(RddTest, HadoopProfileIsSlowerThanSpark) {
  // Identical work, different engine profiles: the Hadoop profile pays task
  // launch overhead and heartbeat quantization (Fig 13's root cause).
  double spark_time = 0, hadoop_time = 0;
  {
    ClusterConfig cfg = SmallConfig();
    ClusterContext ctx(cfg);
    auto rdd = ctx.Parallelize(Iota(1000), 8)->Map([](const int64_t& x) {
      return x + 1;
    });
    ASSERT_TRUE(ctx.Collect(rdd).ok());
    spark_time = ctx.now();
  }
  {
    ClusterConfig cfg = SmallConfig();
    cfg.profile = EngineProfile::Hadoop();
    ClusterContext ctx(cfg);
    auto rdd = ctx.Parallelize(Iota(1000), 8)->Map([](const int64_t& x) {
      return x + 1;
    });
    ASSERT_TRUE(ctx.Collect(rdd).ok());
    hadoop_time = ctx.now();
  }
  EXPECT_GT(hadoop_time, 10.0 * spark_time);
}

TEST(RddTest, CachingMakesSecondScanCheaper) {
  ClusterConfig cfg = SmallConfig();
  cfg.virtual_data_scale = 1000.0;
  ClusterContext ctx(cfg);
  // Build a "file" of strings to give the scan some weight via parallelize.
  std::vector<std::string> lines;
  for (int i = 0; i < 20000; ++i) {
    lines.push_back("line-" + std::to_string(i) + "-payload-payload");
  }
  auto rdd = ctx.Parallelize(lines, 8);
  rdd->Cache();

  double t0 = ctx.now();
  ASSERT_TRUE(ctx.Count(rdd).ok());
  double first = ctx.now() - t0;

  t0 = ctx.now();
  ASSERT_TRUE(ctx.Count(rdd).ok());
  double second = ctx.now() - t0;

  EXPECT_LT(second, first);
  EXPECT_GT(ctx.block_manager().NumBlocks(), 0u);
}

TEST(RddTest, DfsScanChargesDeserialization) {
  ClusterConfig cfg = SmallConfig();
  ClusterContext ctx(cfg);
  // Create a DFS file manually.
  std::vector<DfsBlock> blocks;
  for (int b = 0; b < 4; ++b) {
    auto data = std::make_shared<std::vector<int64_t>>();
    for (int i = 0; i < 100; ++i) data->push_back(b * 100 + i);
    DfsBlock blk;
    blk.data = data;
    blk.bytes = 100 * 16;
    blk.rows = 100;
    blocks.push_back(blk);
  }
  ASSERT_TRUE(ctx.dfs().CreateFile("nums", DfsFormat::kText, blocks).ok());
  auto rdd_result = ctx.FromDfs<int64_t>("nums");
  ASSERT_TRUE(rdd_result.ok());
  auto collected = ctx.Collect(*rdd_result);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 400u);
  const TaskWork& w = ctx.scheduler().last_job().total_work;
  EXPECT_EQ(w.text_deser_bytes, 4u * 1600u);
  EXPECT_EQ(w.disk_read_bytes, 4u * 1600u);
}

TEST(RddTest, SaveToDfsThenScanBack) {
  ClusterContext ctx(SmallConfig());
  auto rdd = ctx.Parallelize(Iota(500), 5);
  auto file = ctx.SaveToDfs(rdd, "saved", DfsFormat::kBinary);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->TotalRows(), 500u);
  EXPECT_EQ((*file)->blocks.size(), 5u);
  for (const auto& b : (*file)->blocks) {
    EXPECT_EQ(b.replicas.size(), 3u);
  }
  auto back = ctx.FromDfs<int64_t>("saved");
  ASSERT_TRUE(back.ok());
  auto vals = ctx.Collect(*back);
  ASSERT_TRUE(vals.ok());
  std::sort(vals->begin(), vals->end());
  EXPECT_EQ(*vals, Iota(500));
}

TEST(RddTest, BroadcastFetchedOncePerNode) {
  ClusterContext ctx(SmallConfig());
  std::vector<int64_t> table = Iota(100);
  int bid = ctx.Broadcast(table);
  auto rdd = ctx.Parallelize(Iota(50), 8)->MapPartitions(
      [bid](int, const std::vector<int64_t>& in, TaskContext* tctx) {
        auto bc = GetBroadcast<std::vector<int64_t>>(tctx, bid);
        std::vector<int64_t> out;
        for (int64_t x : in) out.push_back((*bc)[static_cast<size_t>(x)]);
        return out;
      });
  auto result = ctx.Collect(rdd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u);
}

// --- fault tolerance -------------------------------------------------------

TEST(RddFaultTest, ResultCorrectDespiteNodeFailure) {
  ClusterConfig cfg = SmallConfig();
  cfg.virtual_data_scale = 1e7;  // stretch task durations so the fault lands
  ClusterContext ctx(cfg);
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 5000; ++i) data.emplace_back(i % 17, 1);
  auto rdd = ctx.Parallelize(data, 16);
  auto counts =
      ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 8);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.5, 1, 1.0});
  auto result = ctx.Collect(counts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 17u);
  for (const auto& [k, v] : *result) {
    EXPECT_NEAR(static_cast<double>(v), 5000.0 / 17.0, 1.0) << "key " << k;
  }
  EXPECT_FALSE(ctx.cluster().alive(1));
}

TEST(RddFaultTest, CachedPartitionsRecomputedViaLineage) {
  ClusterConfig cfg = SmallConfig();
  ClusterContext ctx(cfg);
  auto rdd = ctx.Parallelize(Iota(1000), 8)->Map([](const int64_t& x) {
    return x * 3;
  });
  rdd->Cache();
  ASSERT_TRUE(ctx.Count(rdd).ok());
  size_t cached_before = ctx.block_manager().NumBlocks();
  EXPECT_EQ(cached_before, 8u);
  // Kill a node immediately: its cached blocks vanish.
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, ctx.now(), 2, 1.0});
  auto result = ctx.Collect(rdd);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1000u);
  std::vector<int64_t> got = *result;
  std::sort(got.begin(), got.end());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<int64_t>(i) * 3);
  }
}

TEST(RddFaultTest, AllNodesDeadIsError) {
  ClusterConfig cfg = SmallConfig();
  ClusterContext ctx(cfg);
  for (int n = 0; n < cfg.num_nodes; ++n) {
    ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.0, n, 1.0});
  }
  auto rdd = ctx.Parallelize(Iota(10), 2);
  auto result = ctx.Collect(rdd);
  EXPECT_FALSE(result.ok());
}

TEST(RddFaultTest, StragglerMitigatedBySpeculation) {
  ClusterConfig cfg = SmallConfig();
  cfg.virtual_data_scale = 1e7;
  cfg.speculation = true;
  ClusterContext ctx(cfg);
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kSlowdown, 0.0, 0, 20.0});
  auto rdd = ctx.Parallelize(Iota(4000), 16)->Map([](const int64_t& x) {
    return x + 1;
  });
  ASSERT_TRUE(ctx.Collect(rdd).ok());
  double with_spec = ctx.now();
  int spec_tasks = ctx.scheduler().last_job().speculative_tasks;

  ClusterConfig cfg2 = cfg;
  cfg2.speculation = false;
  ClusterContext ctx2(cfg2);
  ctx2.InjectFault(FaultEvent{FaultEvent::Kind::kSlowdown, 0.0, 0, 20.0});
  auto rdd2 = ctx2.Parallelize(Iota(4000), 16)->Map([](const int64_t& x) {
    return x + 1;
  });
  ASSERT_TRUE(ctx2.Collect(rdd2).ok());
  double without_spec = ctx2.now();

  EXPECT_GT(spec_tasks, 0);
  EXPECT_LT(with_spec, without_spec);
}

// --- shuffle statistics (PDE raw material) ---------------------------------

TEST(ShuffleStatsTest, StatsObservedAtMapStage) {
  ClusterContext ctx(SmallConfig());
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 2000; ++i) data.emplace_back(i % 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto dep = MakeHashPartitionDep<int64_t, int64_t>(rdd, 4);
  auto stats = ctx.scheduler().EnsureShuffle(dep);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_records, 2000u);
  EXPECT_EQ(stats->bucket_bytes.size(), 4u);
  // Lossy size encoding: total within 10% of truth.
  uint64_t true_bytes = 2000 * 16;
  EXPECT_NEAR(static_cast<double>(stats->total_bytes),
              static_cast<double>(true_bytes), 0.1 * true_bytes);
  EXPECT_GT(stats->heavy_hitters.total_count(), 0u);
}

TEST(ShuffleStatsTest, SkewVisibleInBucketSizes) {
  ClusterContext ctx(SmallConfig());
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 5000; ++i) data.emplace_back(7, 1);  // single hot key
  for (int64_t i = 0; i < 500; ++i) data.emplace_back(i + 100, 1);
  auto rdd = ctx.Parallelize(data, 8);
  auto dep = MakeHashPartitionDep<int64_t, int64_t>(rdd, 8);
  auto stats = ctx.scheduler().EnsureShuffle(dep);
  ASSERT_TRUE(stats.ok());
  uint64_t max_bucket = 0, total = 0;
  for (uint64_t b : stats->bucket_records) {
    max_bucket = std::max(max_bucket, b);
    total += b;
  }
  EXPECT_GT(max_bucket, total / 2);  // skewed bucket dominates
}

}  // namespace
}  // namespace shark
