#include <set>

#include <gtest/gtest.h>

#include "workloads/mldata.h"
#include "workloads/pavlo.h"
#include "workloads/tpch.h"
#include "workloads/warehouse.h"

namespace shark {
namespace {

std::unique_ptr<SharkSession> SmallSession() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  return std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
}

TEST(PavloWorkloadTest, TablesAndQueriesWork) {
  auto session = SmallSession();
  PavloConfig cfg;
  cfg.rankings_rows = 1000;
  cfg.uservisits_rows = 3000;
  cfg.rankings_blocks = 4;
  cfg.uservisits_blocks = 8;
  cfg.distinct_ips = 2000;  // fine aggregate must out-group the 1K prefixes
  ASSERT_TRUE(GeneratePavloTables(session.get(), cfg).ok());

  auto count = session->Sql("SELECT COUNT(*) FROM uservisits");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0].Get(0), Value::Int64(3000));

  auto sel = session->Sql(PavloSelectionQuery(5000));
  ASSERT_TRUE(sel.ok());
  EXPECT_LT(sel->rows.size(), 1000u);  // selective

  auto coarse = session->Sql(PavloAggregationCoarseQuery());
  ASSERT_TRUE(coarse.ok());
  EXPECT_LE(coarse->rows.size(), 1000u);  // ~1K prefixes by construction
  EXPECT_GT(coarse->rows.size(), 100u);

  auto fine = session->Sql(PavloAggregationFineQuery());
  ASSERT_TRUE(fine.ok());
  EXPECT_GT(fine->rows.size(), coarse->rows.size());

  auto join = session->Sql(PavloJoinQuery());
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_GT(join->rows.size(), 0u);
}

TEST(PavloWorkloadTest, VirtualScaleMapsToPaperSize) {
  PavloConfig cfg;
  cfg.uservisits_rows = 2000000;
  EXPECT_NEAR(cfg.VirtualScale(), 7750.0, 1.0);
}

TEST(TpchWorkloadTest, CardinalitiesMatchPaperShape) {
  auto session = SmallSession();
  TpchConfig cfg;
  cfg.lineitem_rows = 10000;
  cfg.supplier_rows = 500;
  cfg.orders_rows = 2000;
  cfg.lineitem_blocks = 8;
  cfg.supplier_blocks = 2;
  cfg.orders_blocks = 4;
  ASSERT_TRUE(GenerateTpchTables(session.get(), cfg).ok());

  auto modes = session->Sql("SELECT COUNT(DISTINCT L_SHIPMODE) FROM lineitem");
  ASSERT_TRUE(modes.ok());
  EXPECT_EQ(modes->rows[0].Get(0), Value::Int64(7));

  auto dates =
      session->Sql("SELECT COUNT(DISTINCT L_RECEIPTDATE) FROM lineitem");
  ASSERT_TRUE(dates.ok());
  // ~2500 distinct receipt days at full scale; bounded by rows/4 here.
  EXPECT_GT(dates->rows[0].Get(0).int64_v(), 1000);

  auto orders = session->Sql("SELECT COUNT(DISTINCT L_ORDERKEY) FROM lineitem");
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ(orders->rows[0].Get(0), Value::Int64(2500));  // rows/4

  for (const std::string& col :
       {std::string(""), std::string("L_SHIPMODE"), std::string("L_RECEIPTDATE"),
        std::string("L_ORDERKEY")}) {
    auto r = session->Sql(TpchAggregationQuery(col));
    EXPECT_TRUE(r.ok()) << col << ": " << r.status().ToString();
  }
}

TEST(TpchWorkloadTest, UdfJoinQueryRuns) {
  auto session = SmallSession();
  TpchConfig cfg;
  cfg.lineitem_rows = 4000;
  cfg.supplier_rows = 200;
  cfg.orders_rows = 1000;
  cfg.lineitem_blocks = 8;
  cfg.supplier_blocks = 2;
  cfg.orders_blocks = 2;
  ASSERT_TRUE(GenerateTpchTables(session.get(), cfg).ok());
  // The selective UDF of §6.3.2 (here: address hash selects ~1/10).
  ASSERT_TRUE(session->udfs()
                  .Register("SOME_UDF",
                            {[](const std::vector<Value>& args) {
                               return Value::Bool(args[0].Hash() % 10 == 0);
                             },
                             TypeKind::kBool, 6.0})
                  .ok());
  auto r = session->Sql(TpchUdfJoinQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t matched = r->rows[0].Get(0).int64_v();
  EXPECT_GT(matched, 0);
  EXPECT_LT(matched, 4000);
}

TEST(WarehouseWorkloadTest, ClusteringEnablesMapPruning) {
  auto session = SmallSession();
  WarehouseConfig cfg;
  cfg.rows = 20000;
  cfg.blocks = 64;
  ASSERT_TRUE(GenerateWarehouseTable(session.get(), cfg).ok());
  ASSERT_TRUE(session->CacheTable("sessions").ok());

  auto q1 = session->Sql(WarehouseQ1(3, "2012-06-05"));
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  // The day predicate falls in a narrow slice of each datacenter's
  // chronological data: most partitions prune.
  EXPECT_GT(q1->metrics.partitions_pruned, q1->metrics.partitions_scanned);

  for (const std::string& q : {WarehouseQ2(), WarehouseQ3(), WarehouseQ4()}) {
    auto r = session->Sql(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
  }

  auto q4 = session->Sql(WarehouseQ4());
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(q4->rows.size(), 10u);
  // Top-k by views descending.
  for (size_t i = 1; i < q4->rows.size(); ++i) {
    EXPECT_GE(q4->rows[i - 1].Get(1).int64_v(), q4->rows[i].Get(1).int64_v());
  }
}

TEST(WarehouseWorkloadTest, CountryFilterPrunesByDatacenter) {
  auto session = SmallSession();
  WarehouseConfig cfg;
  cfg.rows = 16000;
  cfg.blocks = 32;
  ASSERT_TRUE(GenerateWarehouseTable(session.get(), cfg).ok());
  ASSERT_TRUE(session->CacheTable("sessions").ok());
  // country5 lives in exactly one datacenter's slice of the table.
  auto r = session->Sql(
      "SELECT COUNT(*) FROM sessions WHERE country = 'country5'");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows[0].Get(0).int64_v(), 0);
  EXPECT_GT(r->metrics.partitions_pruned, 0);
}

TEST(MlDataWorkloadTest, TableShape) {
  auto session = SmallSession();
  MlDataConfig cfg;
  cfg.rows = 1000;
  cfg.dimensions = 6;
  cfg.blocks = 4;
  ASSERT_TRUE(GenerateMlTable(session.get(), cfg).ok());
  auto r = session->Sql("SELECT label, COUNT(*) FROM ml_points GROUP BY label");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  auto cols = MlFeatureColumns(6);
  EXPECT_EQ(cols.size(), 6u);
  EXPECT_EQ(cols[5], "f5");
  auto mean = session->Sql("SELECT label, AVG(f0) FROM ml_points GROUP BY label");
  ASSERT_TRUE(mean.ok());
  // Cluster means separate by label sign.
  double pos = 0, neg = 0;
  for (const Row& row : mean->rows) {
    if (row.Get(0).int64_v() > 0) {
      pos = row.Get(1).double_v();
    } else {
      neg = row.Get(1).double_v();
    }
  }
  EXPECT_GT(pos, neg);
}

}  // namespace
}  // namespace shark
