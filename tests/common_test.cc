#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/heavy_hitters.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/size_encoding.h"
#include "common/status.h"
#include "common/string_util.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  SHARK_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "|"), "x|y|z");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("group"), "GROUP");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-123", &v));
  EXPECT_EQ(v, -123);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_FALSE(ParseDouble("3.25abc", &v));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
}

// ---------------------------------------------------------------------------
// Hashing / Random
// ---------------------------------------------------------------------------

TEST(HashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(HashBytes("shark"), HashBytes("shark"));
  EXPECT_NE(HashBytes("shark"), HashBytes("spark"));
  EXPECT_EQ(HashInt64(12345), HashInt64(12345));
  EXPECT_NE(HashInt64(12345), HashInt64(12346));
}

TEST(HashTest, NegativeZeroDoubleNormalized) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(2);
  for (int i = 0; i < 1000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, ZipfSkewsTowardSmallRanks) {
  Random r(3);
  int low = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.Zipf(1000, 1.2) < 10) ++low;
  }
  // With s=1.2 the first 10 ranks should dominate well beyond uniform (1%).
  EXPECT_GT(low, kTrials / 10);
}

// ---------------------------------------------------------------------------
// Size encoding (§3.1: <=10% error, 1 byte, up to 32 GB)
// ---------------------------------------------------------------------------

TEST(SizeEncodingTest, ZeroIsExact) {
  EXPECT_EQ(SizeEncoding::Encode(0), 0);
  EXPECT_EQ(SizeEncoding::Decode(0), 0u);
}

TEST(SizeEncodingTest, MaxSaturates) {
  EXPECT_EQ(SizeEncoding::Encode(SizeEncoding::kMaxSize), 255);
  EXPECT_EQ(SizeEncoding::Encode(SizeEncoding::kMaxSize * 2), 255);
}

class SizeEncodingErrorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SizeEncodingErrorTest, RelativeErrorWithinTenPercent) {
  uint64_t size = GetParam();
  uint64_t decoded = SizeEncoding::Decode(SizeEncoding::Encode(size));
  double rel = std::abs(static_cast<double>(decoded) - static_cast<double>(size)) /
               static_cast<double>(size);
  EXPECT_LE(rel, 0.10) << "size=" << size << " decoded=" << decoded;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SizeEncodingErrorTest,
    ::testing::Values(1ULL, 2ULL, 10ULL, 100ULL, 4096ULL, 1000000ULL,
                      123456789ULL, 1ULL << 30, 5ULL * (1ULL << 30),
                      31ULL * (1ULL << 30)));

TEST(SizeEncodingTest, MonotoneNonDecreasing) {
  uint64_t prev = 0;
  for (uint64_t s = 1; s < (1ULL << 35); s = s * 3 / 2 + 1) {
    uint64_t d = SizeEncoding::Decode(SizeEncoding::Encode(s));
    EXPECT_GE(d, prev / 2);  // decoded values grow with input
    prev = d;
  }
}

TEST(SizeEncodingTest, CodeZeroOneBoundary) {
  // Code 0 is reserved for exactly zero; the smallest nonzero size must get
  // a nonzero code (a 1-byte output reported as "nothing" would make PDE
  // treat a populated bucket as empty).
  EXPECT_EQ(SizeEncoding::Encode(1), 1);
  EXPECT_EQ(SizeEncoding::Decode(1), 1u);
  for (uint64_t s : {1ULL, 2ULL, 3ULL, 7ULL}) {
    EXPECT_GT(SizeEncoding::Encode(s), 0) << "size=" << s;
    EXPECT_GT(SizeEncoding::Decode(SizeEncoding::Encode(s)), 0u)
        << "size=" << s;
  }
}

TEST(SizeEncodingTest, DecodeMonotoneAcrossCodes) {
  // Property over the whole code space: decode never decreases, and once the
  // ~10% geometric steps outgrow integer rounding (a few tens of bytes) each
  // code maps to a distinct size — ordering is preserved and large buckets
  // stay distinguishable.
  uint64_t prev = SizeEncoding::Decode(0);
  EXPECT_EQ(prev, 0u);
  for (int code = 1; code <= 255; ++code) {
    uint64_t d = SizeEncoding::Decode(static_cast<uint8_t>(code));
    EXPECT_GE(d, prev) << "code=" << code;
    if (prev >= 64) EXPECT_GT(d, prev) << "code=" << code;
    prev = d;
  }
  EXPECT_LE(prev, SizeEncoding::kMaxSize + SizeEncoding::kMaxSize / 10);
}

TEST(SizeEncodingTest, EncodeMonotoneInSize) {
  // Encode never decreases as the size grows (random adjacent pairs).
  Random rng(2024);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Uniform(2 * SizeEncoding::kMaxSize);
    uint64_t b = rng.Uniform(2 * SizeEncoding::kMaxSize);
    if (a > b) std::swap(a, b);
    EXPECT_LE(SizeEncoding::Encode(a), SizeEncoding::Encode(b))
        << "a=" << a << " b=" << b;
  }
}

TEST(SizeEncodingTest, RandomSizesWithinTenPercent) {
  // The paper's guarantee, checked on random sizes across the full range:
  // round-trip relative error <= 10% for every value in (0, kMaxSize].
  Random rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform draw so small sizes are exercised as densely as large.
    double exponent =
        rng.NextDouble() * std::log2(static_cast<double>(SizeEncoding::kMaxSize));
    auto size = static_cast<uint64_t>(std::pow(2.0, exponent));
    if (size == 0) size = 1;
    if (size > SizeEncoding::kMaxSize) size = SizeEncoding::kMaxSize;
    uint64_t decoded = SizeEncoding::Decode(SizeEncoding::Encode(size));
    double rel =
        std::abs(static_cast<double>(decoded) - static_cast<double>(size)) /
        static_cast<double>(size);
    EXPECT_LE(rel, 0.10) << "size=" << size << " decoded=" << decoded;
  }
}

TEST(SizeEncodingTest, ClampAboveMaxIsLossyButBounded) {
  // Sizes above kMaxSize saturate at code 255 and decode to ~kMaxSize —
  // never to something larger than the representable range.
  for (uint64_t over : {SizeEncoding::kMaxSize + 1, 2 * SizeEncoding::kMaxSize,
                        100 * SizeEncoding::kMaxSize}) {
    EXPECT_EQ(SizeEncoding::Encode(over), 255);
    uint64_t decoded = SizeEncoding::Decode(255);
    EXPECT_GE(decoded, SizeEncoding::kMaxSize - SizeEncoding::kMaxSize / 10);
    EXPECT_LE(decoded, SizeEncoding::kMaxSize + SizeEncoding::kMaxSize / 10);
  }
}

// ---------------------------------------------------------------------------
// Approximate histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, ExactWhileSmall) {
  ApproxHistogram h(16);
  for (int i = 1; i <= 10; ++i) h.Add(i);
  EXPECT_EQ(h.total_count(), 10u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_NEAR(h.EstimateRank(5.0), 5.0, 0.01);
}

TEST(HistogramTest, QuantileOnUniformData) {
  ApproxHistogram h(64);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.EstimateQuantile(0.5), 5000.0, 500.0);
  EXPECT_NEAR(h.EstimateQuantile(0.9), 9000.0, 500.0);
}

TEST(HistogramTest, RangeCountOnUniformData) {
  ApproxHistogram h(64);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i));
  double c = h.EstimateRangeCount(2500.0, 7500.0);
  EXPECT_NEAR(c, 5000.0, 500.0);
}

TEST(HistogramTest, ExpandsToOutOfRangeValues) {
  ApproxHistogram h(8);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i));
  h.Add(1e6);  // far outside initial range
  EXPECT_EQ(h.total_count(), 101u);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_GT(h.EstimateRank(1e7), 100.0);
}

TEST(HistogramTest, MergePreservesTotalCount) {
  ApproxHistogram a(32), b(32);
  for (int i = 0; i < 500; ++i) a.Add(static_cast<double>(i));
  for (int i = 500; i < 1000; ++i) b.Add(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 1000u);
  EXPECT_NEAR(a.EstimateQuantile(0.5), 500.0, 120.0);
}

// ---------------------------------------------------------------------------
// Heavy hitters (SpaceSaving)
// ---------------------------------------------------------------------------

TEST(HeavyHittersTest, FindsTrueHeavyHitter) {
  HeavyHitters hh(8);
  Random r(4);
  // Key 7 appears 50% of the time among 1000 distinct keys.
  for (int i = 0; i < 20000; ++i) {
    hh.Add(i % 2 == 0 ? 7 : r.Uniform(1000) + 100);
  }
  auto top = hh.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_GE(hh.LowerBound(7), 9000u);
}

TEST(HeavyHittersTest, CountUpperBoundNeverUnderestimatesTracked) {
  HeavyHitters hh(4);
  for (int i = 0; i < 100; ++i) hh.Add(1);
  for (int i = 0; i < 5; ++i) hh.Add(static_cast<uint64_t>(i + 10));
  auto top = hh.TopK(4);
  bool found = false;
  for (const auto& e : top) {
    if (e.key == 1) {
      found = true;
      EXPECT_GE(e.count, 100u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(HeavyHittersTest, MergeAccumulates) {
  HeavyHitters a(8), b(8);
  for (int i = 0; i < 100; ++i) a.Add(42);
  for (int i = 0; i < 200; ++i) b.Add(42);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 300u);
  EXPECT_GE(a.LowerBound(42), 300u);
}

TEST(HeavyHittersTest, CapacityBounded) {
  HeavyHitters hh(16);
  for (uint64_t i = 0; i < 10000; ++i) hh.Add(i);
  EXPECT_LE(hh.size(), 16u);
  EXPECT_EQ(hh.total_count(), 10000u);
}

}  // namespace
}  // namespace shark
