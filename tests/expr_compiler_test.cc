#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/expr_compiler.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace shark {
namespace {

/// Binds columns a,b,c,s to slots 0..3 (as in expr_test).
ExprPtr Bind(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      int slot = e->name == "a" ? 0 : e->name == "b" ? 1 : e->name == "c" ? 2 : 3;
      e->kind = ExprKind::kSlot;
      e->slot = slot;
    }
    for (auto& ch : e->children) bind(ch.get());
  };
  bind(parsed->get());
  return *parsed;
}

/// Property: compiled evaluation == interpreted evaluation, on every
/// expression form, across many rows.
class CompiledVsInterpretedTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompiledVsInterpretedTest, Agree) {
  ExprPtr expr = Bind(GetParam());
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto compiled = compiler.Compile(*expr);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Random rng(11);
  const char* strings[] = {"US", "UK", "abc", "", "hello.html"};
  for (int i = 0; i < 300; ++i) {
    Row row({rng.Bernoulli(0.1) ? Value::Null()
                                : Value::Int64(rng.UniformInt(-20, 120)),
             rng.Bernoulli(0.1) ? Value::Null()
                                : Value::Double(rng.NextDouble() * 10.0),
             Value::String(strings[rng.Uniform(5)]),
             rng.Bernoulli(0.5) ? Value::Null() : Value::Int64(rng.UniformInt(0, 5))});
    Value interpreted = EvalExpr(*expr, row, &udfs);
    Value compiled_v = compiled->Eval(row);
    bool both_null = interpreted.is_null() && compiled_v.is_null();
    EXPECT_TRUE(both_null || interpreted == compiled_v)
        << GetParam() << " row=" << row.ToString()
        << " interp=" << interpreted.ToString()
        << " compiled=" << compiled_v.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, CompiledVsInterpretedTest,
    ::testing::Values(
        "a + 1", "a * 2 - b", "a / 0", "a % 7", "-a", "NOT (a > 5)",
        "a > 50 AND b < 5.0", "a > 50 OR s IS NULL", "a BETWEEN 10 AND 90",
        "a NOT BETWEEN 10 AND 90", "c IN ('US', 'UK')", "c NOT IN ('abc')",
        "s IS NULL", "s IS NOT NULL", "c LIKE '%.html'", "c NOT LIKE 'U%'",
        "SUBSTR(c, 1, 2)", "LOWER(c)", "LENGTH(c) + a",
        "CASE WHEN a > 100 THEN 'big' WHEN a > 10 THEN 'mid' ELSE 'small' END",
        "CASE WHEN a > 1000 THEN 1 END", "COALESCE(s, a)",
        "IF(a > 50, b, 0.0 - b)", "a = 10 AND b = 2.5 OR c = 'US'",
        "ABS(0 - a) + FLOOR(b)"));

TEST(ExprCompilerTest, UdfCalls) {
  UdfRegistry udfs;
  ASSERT_TRUE(udfs.Register("TWICE",
                            {[](const std::vector<Value>& args) {
                               return Value::Int64(args[0].AsInt64() * 2);
                             },
                             TypeKind::kInt64, 2.0})
                  .ok());
  ExprPtr expr = Bind("TWICE(a) + 1");
  ExprCompiler compiler(&udfs);
  auto compiled = compiler.Compile(*expr);
  ASSERT_TRUE(compiled.ok());
  Row row({Value::Int64(21), Value::Null(), Value::Null(), Value::Null()});
  EXPECT_EQ(compiled->Eval(row), Value::Int64(43));
}

TEST(ExprCompilerTest, RejectsAggregates) {
  ExprPtr expr = Bind("SUM(a)");
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  EXPECT_FALSE(compiler.Compile(*expr).ok());
}

TEST(ExprCompilerTest, ProgramIsFlat) {
  ExprPtr expr = Bind("a + b * 2 - 1");
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto compiled = compiler.Compile(*expr);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->num_instructions(), 7u);  // a b 2 * + 1 - (postfix)
}

TEST(ExprCompilerTest, EndToEndQueryResultsUnchanged) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.hardware.cores_per_node = 2;
  SharkSession session(std::make_shared<ClusterContext>(cfg));
  Schema schema({{"x", TypeKind::kInt64}, {"name", TypeKind::kString}});
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(Row({Value::Int64(i), Value::String("n" + std::to_string(i % 9))}));
  }
  ASSERT_TRUE(session.CreateDfsTable("t", schema, rows, 3).ok());
  const std::string q =
      "SELECT name, COUNT(*), SUM(x * 2 + 1) FROM t WHERE x % 3 = 0 "
      "GROUP BY name";
  auto interpreted = session.Sql(q);
  ASSERT_TRUE(interpreted.ok());
  session.options().compile_expressions = true;
  auto compiled = session.Sql(q);
  ASSERT_TRUE(compiled.ok());
  auto key = [](const QueryResult& r) {
    std::multiset<std::string> out;
    for (const Row& row : r.rows) out.insert(row.ToString());
    return out;
  };
  EXPECT_EQ(key(*interpreted), key(*compiled));
  // The compiled plan is charged less CPU for the same rows.
  EXPECT_LE(compiled->metrics.work.rows_processed,
            interpreted->metrics.work.rows_processed);
}

}  // namespace
}  // namespace shark
