#include <cmath>
#include <cstdint>
#include <random>

#include <gtest/gtest.h>

#include "common/cardinality.h"
#include "sql/session.h"
#include "sql/stats/cardinality_estimator.h"
#include "sql/stats/table_stats.h"

namespace shark {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// KMV distinct sketch
// ---------------------------------------------------------------------------

TEST(DistinctSketchTest, ExactBelowK) {
  DistinctSketch s(1024);
  for (uint64_t i = 0; i < 800; ++i) s.AddHash(Mix64(i));
  EXPECT_TRUE(s.exact());
  EXPECT_DOUBLE_EQ(s.Estimate(), 800.0);
}

TEST(DistinctSketchTest, ErrorBoundAboveK) {
  // KMV with k=1024 has relative standard error ~ 1/sqrt(k-2) ~ 3.1%; allow
  // four sigma.
  for (uint64_t n : {10000ULL, 100000ULL}) {
    DistinctSketch s(1024);
    for (uint64_t i = 0; i < n; ++i) s.AddHash(Mix64(i));
    EXPECT_FALSE(s.exact());
    double est = s.Estimate();
    EXPECT_NEAR(est, static_cast<double>(n), 0.125 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(DistinctSketchTest, DuplicatesDoNotInflate) {
  DistinctSketch s(256);
  for (uint64_t pass = 0; pass < 5; ++pass) {
    for (uint64_t i = 0; i < 100; ++i) s.AddHash(Mix64(i));
  }
  EXPECT_DOUBLE_EQ(s.Estimate(), 100.0);
}

TEST(DistinctSketchTest, MergeMatchesUnion) {
  DistinctSketch a(1024), b(1024), whole(1024);
  for (uint64_t i = 0; i < 30000; ++i) {
    uint64_t h = Mix64(i);
    whole.AddHash(h);
    (i % 2 == 0 ? a : b).AddHash(h);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

// ---------------------------------------------------------------------------
// Column statistics built from rows
// ---------------------------------------------------------------------------

std::vector<Row> UniformRows(int n, int domain, std::mt19937* rng) {
  std::uniform_int_distribution<int> d(0, domain - 1);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row({Value::Int64(d(*rng))}));
  }
  return rows;
}

TEST(TableStatisticsTest, HistogramRangeSelectivityTracksExactCounts) {
  std::mt19937 rng(7);
  Schema schema({{"v", TypeKind::kInt64}});
  std::vector<Row> rows = UniformRows(20000, 1000, &rng);
  TableStatistics stats = BuildStatisticsFromRows(schema, rows);
  ASSERT_EQ(stats.columns.size(), 1u);
  const ColumnStatistics& col = stats.columns[0];
  EXPECT_DOUBLE_EQ(stats.row_count, 20000.0);
  EXPECT_TRUE(col.has_range);

  struct Range {
    double lo, hi;
  };
  for (const Range& r : {Range{0, 99}, Range{250, 749}, Range{900, 999}}) {
    double exact = 0;
    for (const Row& row : rows) {
      double v = static_cast<double>(row.fields[0].AsInt64());
      if (v >= r.lo && v <= r.hi) exact += 1;
    }
    double est =
        col.RangeSelectivity(true, r.lo, true, r.hi) * stats.row_count;
    // Equi-depth histogram over a uniform domain: within 20% + a small
    // absolute slack for bucket-boundary rounding.
    EXPECT_NEAR(est, exact, 0.2 * exact + 200.0)
        << "range [" << r.lo << "," << r.hi << "]";
  }
}

TEST(TableStatisticsTest, EqualityUsesHeavyHittersForSkew) {
  // 5000 rows of value 1, one row each of 2..1001: a heavy hitter must not
  // be estimated at the average frequency.
  Schema schema({{"v", TypeKind::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back(Row({Value::Int64(1)}));
  for (int i = 2; i <= 1001; ++i) rows.push_back(Row({Value::Int64(i)}));
  TableStatistics stats = BuildStatisticsFromRows(schema, rows);
  const ColumnStatistics& col = stats.columns[0];

  double hot = col.EqualitySelectivity(Value::Int64(1)) * stats.row_count;
  EXPECT_NEAR(hot, 5000.0, 500.0);
  double cold = col.EqualitySelectivity(Value::Int64(500)) * stats.row_count;
  EXPECT_LT(cold, 50.0);
}

TEST(TableStatisticsTest, NullFractionAndRange) {
  Schema schema({{"v", TypeKind::kDouble}});
  std::vector<Row> rows;
  for (int i = 0; i < 60; ++i) rows.push_back(Row({Value::Double(i * 0.5)}));
  for (int i = 0; i < 40; ++i) rows.push_back(Row({Value::Null()}));
  TableStatistics stats = BuildStatisticsFromRows(schema, rows);
  const ColumnStatistics& col = stats.columns[0];
  EXPECT_DOUBLE_EQ(col.NullFraction(), 0.4);
  EXPECT_TRUE(col.has_range);
  EXPECT_DOUBLE_EQ(col.min_value, 0.0);
  EXPECT_DOUBLE_EQ(col.max_value, 29.5);
  // NULLs never match an equality or range predicate.
  EXPECT_LE(col.EqualitySelectivity(Value::Double(1.0)), 0.6);
  EXPECT_LE(col.RangeSelectivity(true, 0.0, true, 1000.0), 0.6 + 1e-9);
}

TEST(TableStatisticsTest, PartitionSketchMergeMatchesSinglePass) {
  std::mt19937 rng(11);
  Schema schema({{"a", TypeKind::kInt64}, {"b", TypeKind::kDouble}});
  std::vector<Row> rows;
  std::uniform_int_distribution<int> d(0, 499);
  for (int i = 0; i < 8000; ++i) {
    rows.push_back(Row({Value::Int64(d(rng)), Value::Double(d(rng) * 0.25)}));
  }

  PartitionSketch whole;
  whole.AddRows(schema, rows);

  // Same rows in four partitions, merged pairwise like the ANALYZE master.
  std::vector<PartitionSketch> parts(4);
  for (size_t p = 0; p < 4; ++p) {
    std::vector<Row> chunk(rows.begin() + static_cast<long>(p) * 2000,
                           rows.begin() + static_cast<long>(p + 1) * 2000);
    parts[p].AddRows(schema, chunk);
  }
  PartitionSketch merged = parts[0];
  for (size_t p = 1; p < 4; ++p) merged.Merge(parts[p]);

  TableStatistics sw = whole.Finish();
  TableStatistics sm = merged.Finish();
  EXPECT_DOUBLE_EQ(sm.row_count, sw.row_count);
  EXPECT_DOUBLE_EQ(sm.total_bytes, sw.total_bytes);
  ASSERT_EQ(sm.columns.size(), sw.columns.size());
  for (size_t c = 0; c < sm.columns.size(); ++c) {
    EXPECT_NEAR(sm.columns[c].ndv, sw.columns[c].ndv,
                0.05 * sw.columns[c].ndv + 1.0);
    EXPECT_DOUBLE_EQ(sm.columns[c].min_value, sw.columns[c].min_value);
    EXPECT_DOUBLE_EQ(sm.columns[c].max_value, sw.columns[c].max_value);
    // Range estimates from the merged histogram stay close to single-pass.
    double lo = sw.columns[c].min_value;
    double hi = (sw.columns[c].min_value + sw.columns[c].max_value) / 2;
    EXPECT_NEAR(sm.columns[c].RangeSelectivity(true, lo, true, hi),
                sw.columns[c].RangeSelectivity(true, lo, true, hi), 0.1);
  }
}

// ---------------------------------------------------------------------------
// Estimator math
// ---------------------------------------------------------------------------

TEST(CardinalityEstimatorTest, ConjunctionBackoff) {
  // Sorted ascending: s0 * s1^(1/2) * s2^(1/4).
  double s = CardinalityEstimator::ConjunctionSelectivity({0.5, 0.1, 0.25});
  EXPECT_NEAR(s, 0.1 * std::sqrt(0.25) * std::pow(0.5, 0.25), 1e-12);
  EXPECT_DOUBLE_EQ(CardinalityEstimator::ConjunctionSelectivity({}), 1.0);
}

TEST(CardinalityEstimatorTest, GroupOutputSaturates) {
  EXPECT_NEAR(CardinalityEstimator::GroupOutputRows(1e9, 100.0), 100.0, 1e-3);
  // Few draws over a huge domain: roughly one group per row.
  EXPECT_NEAR(CardinalityEstimator::GroupOutputRows(10.0, 1e9), 10.0, 0.1);
}

TEST(CardinalityEstimatorTest, JoinCardinalityOnForeignKey) {
  // fact(k FK -> dim.k): 50000 fact rows, 1000 dim rows with unique keys.
  // Containment gives |fact| * |dim| / max(ndv) = |fact| matches.
  Schema dim_schema({{"k", TypeKind::kInt64}});
  std::vector<Row> dim_rows;
  for (int i = 0; i < 1000; ++i) dim_rows.push_back(Row({Value::Int64(i)}));
  TableStatistics dim = BuildStatisticsFromRows(dim_schema, dim_rows);

  std::mt19937 rng(3);
  Schema fact_schema({{"k", TypeKind::kInt64}});
  std::vector<Row> fact_rows = UniformRows(50000, 1000, &rng);
  TableStatistics fact = BuildStatisticsFromRows(fact_schema, fact_rows);

  SlotStats fs{&fact.columns[0], fact.row_count};
  SlotStats ds{&dim.columns[0], dim.row_count};
  double sel =
      CardinalityEstimator::JoinKeySelectivity(fs, ds, 50000.0, 1000.0);
  double est = 50000.0 * 1000.0 * sel;
  // Every fact row matches exactly one dim row: 50000 output rows.
  EXPECT_NEAR(est, 50000.0, 0.15 * 50000.0);
}

// ---------------------------------------------------------------------------
// ANALYZE TABLE end to end
// ---------------------------------------------------------------------------

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    session_ =
        std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
    Schema schema({{"k", TypeKind::kInt64}, {"v", TypeKind::kDouble}});
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      rows.push_back(Row({Value::Int64(i % 300), Value::Double(i * 1.5)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("t", schema, rows, 4).ok());
  }

  std::unique_ptr<SharkSession> session_;
};

TEST_F(AnalyzeTest, AnalyzePopulatesCatalogStatistics) {
  auto r = session_->Sql("ANALYZE TABLE t COMPUTE STATISTICS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].fields[0].str(), "t");
  EXPECT_EQ(r->rows[0].fields[1].AsInt64(), 3000);
  EXPECT_GT(r->metrics.virtual_seconds, 0.0);  // charged like a query

  auto info = session_->catalog().Get("t");
  ASSERT_TRUE(info.ok());
  ASSERT_NE((*info)->column_statistics, nullptr);
  const TableStatistics& stats = *(*info)->column_statistics;
  EXPECT_DOUBLE_EQ(stats.row_count, 3000.0);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_NEAR(stats.columns[0].ndv, 300.0, 15.0);
  EXPECT_NEAR(stats.columns[1].ndv, 3000.0, 150.0);
}

TEST_F(AnalyzeTest, AnalyzeWorksOnCachedTables) {
  ASSERT_TRUE(session_->CacheTable("t").ok());
  auto r = session_->Sql("ANALYZE TABLE t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto info = session_->catalog().Get("t");
  ASSERT_TRUE(info.ok());
  ASSERT_NE((*info)->column_statistics, nullptr);
  EXPECT_DOUBLE_EQ((*info)->column_statistics->row_count, 3000.0);
}

TEST_F(AnalyzeTest, AnalyzeUnknownTableFails) {
  EXPECT_FALSE(session_->Sql("ANALYZE TABLE nope").ok());
}

}  // namespace
}  // namespace shark
