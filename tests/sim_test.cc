#include <set>

#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/dfs.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

TEST(ClusterTest, CoreAccounting) {
  Cluster c(2, 2);
  EXPECT_EQ(c.total_cores(), 4);
  double when;
  int node, core;
  ASSERT_TRUE(c.EarliestFreeCore(0.0, &when, &node, &core));
  EXPECT_DOUBLE_EQ(when, 0.0);
  c.OccupyCore(node, core, 10.0);
  ASSERT_TRUE(c.EarliestFreeCore(0.0, &when, &node, &core));
  EXPECT_DOUBLE_EQ(when, 0.0);  // other cores still free
  for (int n = 0; n < 2; ++n) {
    for (int k = 0; k < 2; ++k) c.OccupyCore(n, k, 5.0 + n + k);
  }
  ASSERT_TRUE(c.EarliestFreeCore(0.0, &when, &node, &core));
  EXPECT_DOUBLE_EQ(when, 5.0);
  EXPECT_EQ(node, 0);
}

TEST(ClusterTest, FaultsApplyInTimeOrder) {
  Cluster c(3, 1);
  c.InjectFault({FaultEvent::Kind::kKill, 5.0, 1, 1.0});
  c.InjectFault({FaultEvent::Kind::kKill, 2.0, 2, 1.0});
  std::vector<int> killed = c.ApplyFaultsUpTo(3.0);
  EXPECT_EQ(killed, std::vector<int>{2});
  EXPECT_TRUE(c.alive(1));
  killed = c.ApplyFaultsUpTo(10.0);
  EXPECT_EQ(killed, std::vector<int>{1});
  EXPECT_EQ(c.AliveNodes(), 1);
}

TEST(ClusterTest, SlowdownAndRecover) {
  Cluster c(2, 1);
  c.InjectFault({FaultEvent::Kind::kSlowdown, 1.0, 0, 4.0});
  c.ApplyFaultsUpTo(2.0);
  EXPECT_DOUBLE_EQ(c.slowdown(0), 4.0);
  c.InjectFault({FaultEvent::Kind::kRecover, 3.0, 0, 1.0});
  c.ApplyFaultsUpTo(4.0);
  EXPECT_DOUBLE_EQ(c.slowdown(0), 1.0);
}

TEST(ClusterTest, SameTimeFaultsApplyInInjectionOrder) {
  // Equal-time events must apply in the order they were injected, not in
  // some sort-dependent order: slowdown then recover at t=1 leaves the node
  // healthy; the reverse order leaves it slowed.
  Cluster c(2, 1);
  c.InjectFault({FaultEvent::Kind::kSlowdown, 1.0, 0, 4.0});
  c.InjectFault({FaultEvent::Kind::kRecover, 1.0, 0, 1.0});
  c.ApplyFaultsUpTo(2.0);
  EXPECT_DOUBLE_EQ(c.slowdown(0), 1.0);

  c.InjectFault({FaultEvent::Kind::kRecover, 3.0, 1, 1.0});
  c.InjectFault({FaultEvent::Kind::kSlowdown, 3.0, 1, 2.5});
  // An earlier-time event injected later still applies first.
  c.InjectFault({FaultEvent::Kind::kKill, 2.5, 1, 1.0});
  std::vector<int> killed = c.ApplyFaultsUpTo(4.0);
  EXPECT_EQ(killed, std::vector<int>{1});
  EXPECT_TRUE(c.alive(1));  // recover at t=3 resurrected it...
  EXPECT_DOUBLE_EQ(c.slowdown(1), 2.5);  // ...then the slowdown stuck
}

TEST(ClusterTest, KillingAllNodesLeavesNoFreeCore) {
  Cluster c(2, 1);
  c.InjectFault({FaultEvent::Kind::kKill, 0.0, 0, 1.0});
  c.InjectFault({FaultEvent::Kind::kKill, 0.0, 1, 1.0});
  c.ApplyFaultsUpTo(1.0);
  double when;
  int node, core;
  EXPECT_FALSE(c.EarliestFreeCore(0.0, &when, &node, &core));
}

TEST(ClusterTest, ResetRestoresEverything) {
  Cluster c(2, 2);
  c.OccupyCore(0, 0, 99.0);
  c.InjectFault({FaultEvent::Kind::kKill, 0.0, 1, 1.0});
  c.ApplyFaultsUpTo(1.0);
  c.Reset();
  EXPECT_EQ(c.AliveNodes(), 2);
  double when;
  int node, core;
  ASSERT_TRUE(c.EarliestFreeCore(0.0, &when, &node, &core));
  EXPECT_DOUBLE_EQ(when, 0.0);
}

// ---------------------------------------------------------------------------
// DFS
// ---------------------------------------------------------------------------

DfsBlock MakeBlock(uint64_t bytes) {
  DfsBlock b;
  b.data = std::make_shared<const std::vector<int>>();
  b.bytes = bytes;
  b.rows = bytes / 10;
  return b;
}

TEST(DfsTest, ReplicationAssignsDistinctNodes) {
  Dfs dfs(10, 3);
  std::vector<DfsBlock> blocks;
  for (int i = 0; i < 20; ++i) blocks.push_back(MakeBlock(100));
  ASSERT_TRUE(dfs.CreateFile("f", DfsFormat::kText, blocks).ok());
  auto file = dfs.GetFile("f");
  ASSERT_TRUE(file.ok());
  for (const DfsBlock& b : (*file)->blocks) {
    std::set<int> replicas(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(replicas.size(), 3u);
    for (int r : replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 10);
    }
  }
  EXPECT_EQ((*file)->TotalBytes(), 2000u);
  EXPECT_EQ((*file)->TotalRows(), 200u);
}

TEST(DfsTest, ReplicationClampedToClusterSize) {
  Dfs dfs(2, 3);
  ASSERT_TRUE(dfs.CreateFile("f", DfsFormat::kText, {MakeBlock(10)}).ok());
  auto file = dfs.GetFile("f");
  EXPECT_EQ((*file)->blocks[0].replicas.size(), 2u);
}

TEST(DfsTest, PresetPrimaryReplicaKept) {
  Dfs dfs(5, 3);
  DfsBlock b = MakeBlock(10);
  b.replicas.push_back(4);
  ASSERT_TRUE(dfs.CreateFile("f", DfsFormat::kText, {b}).ok());
  auto file = dfs.GetFile("f");
  EXPECT_EQ((*file)->blocks[0].replicas[0], 4);
  EXPECT_EQ((*file)->blocks[0].replicas.size(), 3u);
}

TEST(DfsTest, NamesAreUniqueAndDeletable) {
  Dfs dfs(3, 2);
  ASSERT_TRUE(dfs.CreateFile("f", DfsFormat::kText, {MakeBlock(1)}).ok());
  EXPECT_FALSE(dfs.CreateFile("f", DfsFormat::kText, {MakeBlock(1)}).ok());
  EXPECT_TRUE(dfs.Exists("f"));
  EXPECT_TRUE(dfs.DeleteFile("f").ok());
  EXPECT_FALSE(dfs.Exists("f"));
  EXPECT_FALSE(dfs.DeleteFile("f").ok());
  EXPECT_FALSE(dfs.GetFile("f").ok());
}

// ---------------------------------------------------------------------------
// Cost model details
// ---------------------------------------------------------------------------

TEST(CostModelDetailTest, DiskAndNetworkAreFairShared) {
  HardwareModel hw;
  CostModel model(hw);
  EngineProfile p = EngineProfile::Shark();
  TaskWork w;
  w.disk_read_bytes = static_cast<uint64_t>(hw.disk_bw_bytes_per_sec);
  // One node-second of disk traffic takes cores_per_node task-seconds under
  // fair sharing.
  EXPECT_NEAR(model.WorkSeconds(w, p, 1.0), hw.cores_per_node, 1e-9);
}

TEST(CostModelDetailTest, TextSlowerThanBinarySlowerThanMemory) {
  HardwareModel hw;
  CostModel model(hw);
  EngineProfile p = EngineProfile::Shark();
  TaskWork text, binary, mem;
  text.text_deser_bytes = 1 << 30;
  binary.binary_deser_bytes = 1 << 30;
  mem.mem_read_bytes = 1 << 30;
  double t = model.WorkSeconds(text, p, 1.0);
  double b = model.WorkSeconds(binary, p, 1.0);
  double m = model.WorkSeconds(mem, p, 1.0);
  EXPECT_GT(t, b);
  EXPECT_GT(b, m);
  EXPECT_GT(t / m, 9.0);  // §3.2: memory ~10x the deserialization path
}

TEST(CostModelDetailTest, SortIsSuperlinear) {
  CostModel model{HardwareModel()};
  EngineProfile p = EngineProfile::Shark();
  TaskWork small, large;
  small.sort_records = 1 << 20;
  large.sort_records = 1 << 24;
  // 16x records -> more than 16x time (n log n).
  EXPECT_GT(model.WorkSeconds(large, p, 1.0),
            16.0 * model.WorkSeconds(small, p, 1.0));
}

TEST(CostModelDetailTest, FlopsCharge) {
  HardwareModel hw;
  CostModel model(hw);
  TaskWork w;
  w.flops = 1000000000;
  EXPECT_NEAR(model.WorkSeconds(w, EngineProfile::Shark(), 1.0),
              1e9 * hw.flop_sec, 1e-9);
}

}  // namespace
}  // namespace shark
