// Unit tests for the per-node memory arbiter: budget arithmetic across the
// three consumers (cache, shuffle buffers, task working sets), the shuffle
// fit decision, and commit-order replay of task reservation logs.
#include <gtest/gtest.h>

#include "mem/memory_manager.h"
#include "rdd/task_context.h"

namespace shark {
namespace {

TEST(MemoryManagerTest, UsedBytesSumsCacheAndShuffle) {
  MemoryManager mm(2, 1000, 4);
  EXPECT_EQ(mm.UsedBytes(0), 0u);
  mm.AddShuffleBytes(0, 300);
  EXPECT_EQ(mm.UsedBytes(0), 300u);
  EXPECT_EQ(mm.UsedBytes(1), 0u);
  mm.set_cache_usage_fn([](int node) { return node == 0 ? 150u : 40u; });
  EXPECT_EQ(mm.UsedBytes(0), 450u);
  EXPECT_EQ(mm.UsedBytes(1), 40u);
  EXPECT_EQ(mm.total_shuffle_bytes(), 300u);
}

TEST(MemoryManagerTest, ReleaseClampsToLedger) {
  MemoryManager mm(1, 1000, 4);
  mm.AddShuffleBytes(0, 100);
  mm.ReleaseShuffleBytes(0, 250);  // sloppy caller: must not underflow
  EXPECT_EQ(mm.shuffle_bytes(0), 0u);
}

TEST(MemoryManagerTest, ShuffleFitsAgainstResidentBytes) {
  MemoryManager mm(2, 1000, 4);
  EXPECT_TRUE(mm.ShuffleFits(0, 1000));
  mm.AddShuffleBytes(0, 600);
  EXPECT_TRUE(mm.ShuffleFits(0, 400));
  EXPECT_FALSE(mm.ShuffleFits(0, 401));
  EXPECT_TRUE(mm.ShuffleFits(1, 1000));  // other node unaffected
}

TEST(MemoryManagerTest, TaskBudgetIsWorstNodeHeadroomPerCore) {
  MemoryManager mm(2, 1000, 4);
  EXPECT_EQ(mm.TaskWorkingSetBudget(), 250u);  // 1000 / 4 cores
  mm.AddShuffleBytes(0, 600);
  // Worst node has 400 headroom -> 100 per core.
  EXPECT_EQ(mm.TaskWorkingSetBudget(), 100u);
}

TEST(MemoryManagerTest, TaskBudgetKeepsMinimumShareUnderFullCache) {
  MemoryManager mm(1, 1600, 4);
  mm.set_cache_usage_fn([](int) { return 1600u; });  // cache ate everything
  // Execution memory never starves: floor = capacity / (4 * cores) = 100.
  EXPECT_EQ(mm.TaskWorkingSetBudget(), 100u);
}

TEST(MemoryManagerTest, CommitTracksPeaksDenialsAndSpills) {
  MemoryManager mm(2, 1000, 2);
  std::vector<MemOp> ops;
  ops.push_back({MemOp::Kind::kReserve, 200, true, 0});
  ops.push_back({MemOp::Kind::kGrow, 300, true, 0});
  ops.push_back({MemOp::Kind::kRelease, 500, true, 0});
  ops.push_back({MemOp::Kind::kGrow, 50, false, 0});
  ops.push_back({MemOp::Kind::kSpill, 4096, true, 8});
  mm.CommitTaskOps(1, ops);
  EXPECT_EQ(mm.peak_task_bytes(1), 500u);
  EXPECT_EQ(mm.peak_task_bytes(0), 0u);
  EXPECT_EQ(mm.denied_reservations(), 1u);
  EXPECT_EQ(mm.committed_spill_bytes(), 4096u);
  EXPECT_EQ(mm.committed_spill_partitions(), 8u);
}

// ---------------------------------------------------------------------------
// TaskContext reservation protocol (the side task bodies log against)
// ---------------------------------------------------------------------------

TaskContext MakeTaskContext(const EngineProfile* profile,
                            uint64_t mem_budget) {
  return TaskContext(/*partition=*/0, profile, /*block_manager=*/nullptr,
                     /*shuffle_manager=*/nullptr, /*broadcasts=*/nullptr,
                     /*virtual_scale=*/1.0, /*rng_seed=*/0, mem_budget);
}

TEST(TaskMemoryTest, GrantedReservationsLogNoSpill) {
  EngineProfile profile = EngineProfile::Shark();
  TaskContext tctx = MakeTaskContext(&profile, /*mem_budget=*/1000);
  EXPECT_TRUE(tctx.ReserveWorkingSet(600));
  EXPECT_TRUE(tctx.GrowWorkingSet(400));
  EXPECT_FALSE(tctx.GrowWorkingSet(1));  // budget exactly exhausted
  tctx.ReleaseAllWorkingSet();
  EXPECT_TRUE(tctx.ReserveWorkingSet(1000));  // headroom restored
  EXPECT_EQ(tctx.spill_bytes(), 0u);
  EXPECT_EQ(tctx.spill_partitions(), 0u);
}

TEST(TaskMemoryTest, OverBudgetHashAggregationSpills) {
  EngineProfile profile = EngineProfile::Shark();
  TaskContext tctx = MakeTaskContext(&profile, /*mem_budget=*/1000);
  tctx.ReserveOrSpillHash(/*bytes=*/5000, /*records=*/100);
  EXPECT_GT(tctx.spill_bytes(), 0u);
  EXPECT_GE(tctx.spill_partitions(), 2u);  // grace hash: at least two parts
  const TaskWork& w = tctx.work();
  EXPECT_EQ(w.disk_write_bytes, 5000u);  // working set written out...
  EXPECT_EQ(w.disk_read_bytes, 5000u);   // ...and read back per partition
  EXPECT_GT(w.hash_records, 0u);         // rebuild cost on re-read
}

TEST(TaskMemoryTest, OverBudgetSortFallsBackToSortMerge) {
  EngineProfile profile = EngineProfile::Shark();
  TaskContext tctx = MakeTaskContext(&profile, /*mem_budget=*/100);
  tctx.ReserveOrSpillSort(/*bytes=*/1000, /*records=*/50);
  EXPECT_GT(tctx.spill_bytes(), 0u);
  const TaskWork& w = tctx.work();
  EXPECT_EQ(w.disk_write_bytes, 1000u);
  EXPECT_GT(w.rows_processed, 0u);  // merge pass re-touches the rows
  EXPECT_GE(w.disk_seeks, tctx.spill_partitions());
}

TEST(TaskMemoryTest, MemLogReplaysIntoManagerTotals) {
  EngineProfile profile = EngineProfile::Shark();
  TaskContext tctx = MakeTaskContext(&profile, /*mem_budget=*/100);
  EXPECT_TRUE(tctx.ReserveWorkingSet(80));
  tctx.GrowOrSpillHash(500, 10);  // denied -> spill logged
  std::vector<MemOp> log = tctx.TakeMemLog();
  ASSERT_FALSE(log.empty());
  MemoryManager mm(1, 100, 1);
  mm.CommitTaskOps(0, log);
  EXPECT_EQ(mm.denied_reservations(), 1u);
  EXPECT_EQ(mm.committed_spill_bytes(), 500u);
  EXPECT_GT(mm.peak_task_bytes(0), 0u);
}

}  // namespace
}  // namespace shark
