#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/column.h"
#include "columnar/compression.h"
#include "columnar/table_partition.h"
#include "common/random.h"

namespace shark {
namespace {

std::vector<Value> Ints(std::vector<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int64(x));
  return out;
}

std::vector<Value> Strs(std::vector<std::string> xs) {
  std::vector<Value> out;
  for (auto& x : xs) out.push_back(Value::String(std::move(x)));
  return out;
}

// ---------------------------------------------------------------------------
// BitPackedArray
// ---------------------------------------------------------------------------

TEST(BitPackedArrayTest, RoundTripVariousWidths) {
  for (int width : {1, 3, 7, 13, 24, 33, 64}) {
    BitPackedArray arr(width);
    Random r(static_cast<uint64_t>(width));
    std::vector<uint64_t> expected;
    uint64_t mask = width == 64 ? ~0ULL : (1ULL << width) - 1;
    for (int i = 0; i < 1000; ++i) {
      uint64_t v = r.NextUint64() & mask;
      expected.push_back(v);
      arr.Append(v);
    }
    for (int i = 0; i < 1000; ++i) {
      EXPECT_EQ(arr.Get(static_cast<size_t>(i)), expected[static_cast<size_t>(i)])
          << "width " << width << " idx " << i;
    }
  }
}

TEST(BitPackedArrayTest, WidthFor) {
  EXPECT_EQ(BitPackedArray::WidthFor(0), 1);
  EXPECT_EQ(BitPackedArray::WidthFor(1), 1);
  EXPECT_EQ(BitPackedArray::WidthFor(2), 2);
  EXPECT_EQ(BitPackedArray::WidthFor(255), 8);
  EXPECT_EQ(BitPackedArray::WidthFor(256), 9);
  EXPECT_EQ(BitPackedArray::WidthFor(~0ULL), 64);
}

TEST(BitPackedArrayTest, CompactFootprint) {
  BitPackedArray arr(4);
  for (int i = 0; i < 1600; ++i) arr.Append(static_cast<uint64_t>(i % 16));
  // 1600 values * 4 bits = 800 bytes (+ slack)
  EXPECT_LT(arr.MemoryBytes(), 1000u);
}

// ---------------------------------------------------------------------------
// Encoding round trips (property: decode(encode(x)) == x)
// ---------------------------------------------------------------------------

class EncodingRoundTripTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(EncodingRoundTripTest, Int64RoundTrip) {
  std::vector<Value> values = Ints({5, 5, 5, 9, 9, 1, 1, 1, 1, 30000});
  auto chunk = EncodeColumn(TypeKind::kInt64, values, GetParam());
  ASSERT_EQ(chunk->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(chunk->GetValue(i), values[i]) << "i=" << i;
  }
  std::vector<Value> decoded;
  chunk->Decode(&decoded);
  EXPECT_EQ(decoded, values);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingRoundTripTest,
                         ::testing::Values(Encoding::kGeneric, Encoding::kPlain,
                                           Encoding::kRunLength,
                                           Encoding::kBitPacked));

TEST(EncodingTest, StringDictRoundTrip) {
  std::vector<Value> values =
      Strs({"US", "UK", "US", "US", "DE", "UK", "US", "DE"});
  auto chunk = EncodeColumn(TypeKind::kString, values, Encoding::kDictionary);
  EXPECT_EQ(chunk->encoding(), Encoding::kDictionary);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(chunk->GetValue(i), values[i]);
  }
}

TEST(EncodingTest, StringPlainRoundTrip) {
  std::vector<Value> values = Strs({"alpha", "", "gamma", "d"});
  auto chunk = EncodeColumn(TypeKind::kString, values, Encoding::kPlain);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(chunk->GetValue(i), values[i]);
  }
}

TEST(EncodingTest, BoolBitPackedRoundTrip) {
  std::vector<Value> values;
  for (int i = 0; i < 100; ++i) values.push_back(Value::Bool(i % 3 == 0));
  auto chunk = EncodeColumn(TypeKind::kBool, values, Encoding::kBitPacked);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(chunk->GetValue(i), values[i]);
  }
  EXPECT_LT(chunk->MemoryBytes(), 100u);
}

TEST(EncodingTest, NullsFallBackToGeneric) {
  std::vector<Value> values = Ints({1, 2, 3});
  values.push_back(Value::Null());
  auto chunk = EncodeColumn(TypeKind::kInt64, values, Encoding::kPlain);
  EXPECT_EQ(chunk->encoding(), Encoding::kGeneric);
  EXPECT_TRUE(chunk->GetValue(3).is_null());
}

TEST(EncodingTest, DateRleRoundTrip) {
  std::vector<Value> values;
  for (int d = 0; d < 10; ++d) {
    for (int i = 0; i < 20; ++i) values.push_back(Value::Date(10000 + d));
  }
  auto chunk = EncodeColumn(TypeKind::kDate, values, Encoding::kRunLength);
  EXPECT_EQ(chunk->encoding(), Encoding::kRunLength);
  EXPECT_EQ(chunk->GetValue(0), Value::Date(10000));
  EXPECT_EQ(chunk->GetValue(199), Value::Date(10009));
  EXPECT_LT(chunk->MemoryBytes(), 200u * 8u / 4u);
}

// ---------------------------------------------------------------------------
// Automatic encoding choice (§3.3 local decisions)
// ---------------------------------------------------------------------------

TEST(ChooseEncodingTest, LongRunsGetRle) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int64(i / 100));
  EXPECT_EQ(ChooseEncoding(TypeKind::kInt64, values), Encoding::kRunLength);
}

TEST(ChooseEncodingTest, SmallRangeGetsBitPacked) {
  Random r(1);
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::Int64(static_cast<int64_t>(r.Uniform(128))));
  }
  EXPECT_EQ(ChooseEncoding(TypeKind::kInt64, values), Encoding::kBitPacked);
}

TEST(ChooseEncodingTest, WideRandomIntsStayPlain) {
  Random r(2);
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::Int64(static_cast<int64_t>(r.NextUint64() >> 1)));
  }
  EXPECT_EQ(ChooseEncoding(TypeKind::kInt64, values), Encoding::kPlain);
}

TEST(ChooseEncodingTest, LowCardinalityStringsGetDict) {
  Random r(3);
  std::vector<Value> values;
  const char* countries[] = {"US", "UK", "DE", "FR", "JP"};
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::String(countries[r.Uniform(5)]));
  }
  EXPECT_EQ(ChooseEncoding(TypeKind::kString, values), Encoding::kDictionary);
}

TEST(ChooseEncodingTest, UniqueStringsStayPlain) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::String("url-" + std::to_string(i)));
  }
  EXPECT_EQ(ChooseEncoding(TypeKind::kString, values), Encoding::kPlain);
}

TEST(CompressionTest, CompressionShrinksTypicalColumns) {
  // A dictionary-friendly column should compress far below generic storage.
  Random r(4);
  std::vector<Value> values;
  const char* modes[] = {"AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "REG AIR",
                         "FOB"};
  for (int i = 0; i < 10000; ++i) {
    values.push_back(Value::String(modes[r.Uniform(7)]));
  }
  auto generic = EncodeColumn(TypeKind::kString, values, Encoding::kGeneric);
  auto compressed = EncodeColumnAuto(TypeKind::kString, values, nullptr);
  EXPECT_LT(compressed->MemoryBytes() * 5, generic->MemoryBytes());
}

// ---------------------------------------------------------------------------
// ColumnStats / map pruning support
// ---------------------------------------------------------------------------

TEST(ColumnStatsTest, RangeAndDistinct) {
  ColumnStats stats;
  for (int64_t v : {5, 1, 9, 5, 3}) stats.Update(Value::Int64(v));
  EXPECT_EQ(stats.min, Value::Int64(1));
  EXPECT_EQ(stats.max, Value::Int64(9));
  EXPECT_EQ(stats.distinct.size(), 4u);
  EXPECT_TRUE(stats.MayEqual(Value::Int64(3)));
  EXPECT_FALSE(stats.MayEqual(Value::Int64(4)));   // in range but not distinct
  EXPECT_FALSE(stats.MayEqual(Value::Int64(42)));  // out of range
}

TEST(ColumnStatsTest, DistinctOverflowKeepsRangeOnly) {
  ColumnStats stats;
  for (int64_t v = 0; v < 1000; ++v) stats.Update(Value::Int64(v));
  EXPECT_TRUE(stats.distinct_overflowed);
  EXPECT_TRUE(stats.MayEqual(Value::Int64(500)));
  EXPECT_FALSE(stats.MayEqual(Value::Int64(5000)));
}

TEST(ColumnStatsTest, RangeIntersection) {
  ColumnStats stats;
  for (int64_t v = 100; v <= 200; ++v) stats.Update(Value::Int64(v));
  Value lo = Value::Int64(150), hi = Value::Int64(300);
  EXPECT_TRUE(stats.MayIntersect(&lo, &hi));
  Value lo2 = Value::Int64(201);
  EXPECT_FALSE(stats.MayIntersect(&lo2, nullptr));
  Value hi2 = Value::Int64(99);
  EXPECT_FALSE(stats.MayIntersect(nullptr, &hi2));
}

TEST(ColumnStatsTest, NullsTracked) {
  ColumnStats stats;
  stats.Update(Value::Null());
  stats.Update(Value::Int64(1));
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_TRUE(stats.MayEqual(Value::Null()));
}

// ---------------------------------------------------------------------------
// TablePartition
// ---------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"id", TypeKind::kInt64},
                 {"country", TypeKind::kString},
                 {"revenue", TypeKind::kDouble}});
}

std::vector<Row> TestRows(int n) {
  const char* countries[] = {"US", "UK", "DE"};
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row({Value::Int64(i), Value::String(countries[i % 3]),
                        Value::Double(i * 0.5)}));
  }
  return rows;
}

TEST(TablePartitionTest, RoundTripAllColumns) {
  auto rows = TestRows(100);
  auto part = TablePartition::FromRows(TestSchema(), rows);
  EXPECT_EQ(part->num_rows(), 100u);
  auto decoded = part->ToRows(nullptr);
  EXPECT_EQ(decoded, rows);
}

TEST(TablePartitionTest, ColumnPrunedDecode) {
  auto rows = TestRows(50);
  auto part = TablePartition::FromRows(TestSchema(), rows);
  std::vector<int> wanted = {0, 2};
  auto decoded = part->ToRows(&wanted);
  ASSERT_EQ(decoded.size(), 50u);
  EXPECT_EQ(decoded[7].Get(0), Value::Int64(7));
  EXPECT_TRUE(decoded[7].Get(1).is_null());  // pruned column
  EXPECT_EQ(decoded[7].Get(2), Value::Double(3.5));
}

TEST(TablePartitionTest, StatsPerColumn) {
  auto part = TablePartition::FromRows(TestSchema(), TestRows(100));
  EXPECT_EQ(part->stats(0).min, Value::Int64(0));
  EXPECT_EQ(part->stats(0).max, Value::Int64(99));
  EXPECT_EQ(part->stats(1).distinct.size(), 3u);  // enum-like country column
}

TEST(TablePartitionTest, ColumnarSmallerThanGenericRows) {
  auto rows = TestRows(5000);
  auto part = TablePartition::FromRows(TestSchema(), rows);
  uint64_t row_bytes = 0;
  for (const Row& r : rows) row_bytes += ApproxSizeOf(r) + 16;
  // §3.2: columnar representation is a multiple smaller than object rows.
  EXPECT_LT(part->MemoryBytes() * 2, row_bytes);
}

TEST(TablePartitionTest, GetRowMatchesToRows) {
  auto rows = TestRows(20);
  auto part = TablePartition::FromRows(TestSchema(), rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(part->GetRow(i), rows[i]);
  }
}

}  // namespace
}  // namespace shark
