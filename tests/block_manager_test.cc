#include <gtest/gtest.h>

#include "rdd/block_manager.h"
#include "rdd/shuffle.h"

namespace shark {
namespace {

BlockData MakeBlock(int tag) {
  return std::make_shared<const std::vector<int>>(std::vector<int>{tag});
}

TEST(BlockManagerTest, PutGetRoundTrip) {
  BlockManager bm(4, 1000);
  EXPECT_TRUE(bm.Put(1, 0, MakeBlock(7), 100, 2));
  const CachedBlock* b = bm.Get(1, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->node, 2);
  EXPECT_EQ(b->bytes, 100u);
  EXPECT_EQ(bm.Location(1, 0), 2);
  EXPECT_EQ(bm.Get(1, 1), nullptr);
  EXPECT_EQ(bm.Location(9, 9), -1);
}

TEST(BlockManagerTest, RejectsOversizedBlock) {
  BlockManager bm(2, 100);
  EXPECT_FALSE(bm.Put(1, 0, MakeBlock(1), 101, 0));
  EXPECT_EQ(bm.Get(1, 0), nullptr);
}

TEST(BlockManagerTest, LruEvictionUnderPressure) {
  BlockManager bm(1, 250);
  EXPECT_TRUE(bm.Put(1, 0, MakeBlock(0), 100, 0));
  EXPECT_TRUE(bm.Put(1, 1, MakeBlock(1), 100, 0));
  // Touch partition 0 so partition 1 is LRU.
  EXPECT_NE(bm.Get(1, 0), nullptr);
  EXPECT_TRUE(bm.Put(1, 2, MakeBlock(2), 100, 0));  // forces eviction
  EXPECT_NE(bm.Get(1, 0), nullptr);  // recently used: kept
  EXPECT_EQ(bm.Get(1, 1), nullptr);  // LRU: evicted
  EXPECT_NE(bm.Get(1, 2), nullptr);
  EXPECT_LE(bm.UsedBytes(0), 250u);
}

TEST(BlockManagerTest, ReplaceMovesBlockBetweenNodes) {
  BlockManager bm(3, 1000);
  EXPECT_TRUE(bm.Put(1, 0, MakeBlock(1), 100, 0));
  EXPECT_TRUE(bm.Put(1, 0, MakeBlock(2), 150, 2));  // recomputed elsewhere
  EXPECT_EQ(bm.Location(1, 0), 2);
  EXPECT_EQ(bm.UsedBytes(0), 0u);
  EXPECT_EQ(bm.UsedBytes(2), 150u);
}

TEST(BlockManagerTest, DropNodeRemovesOnlyItsBlocks) {
  BlockManager bm(3, 1000);
  bm.Put(1, 0, MakeBlock(0), 10, 0);
  bm.Put(1, 1, MakeBlock(1), 10, 1);
  bm.Put(2, 0, MakeBlock(2), 10, 0);
  bm.DropNode(0);
  EXPECT_EQ(bm.Get(1, 0), nullptr);
  EXPECT_EQ(bm.Get(2, 0), nullptr);
  EXPECT_NE(bm.Get(1, 1), nullptr);
  EXPECT_EQ(bm.UsedBytes(0), 0u);
}

TEST(BlockManagerTest, DropRddRemovesAllPartitions) {
  BlockManager bm(2, 1000);
  bm.Put(1, 0, MakeBlock(0), 10, 0);
  bm.Put(1, 1, MakeBlock(1), 10, 1);
  bm.Put(2, 0, MakeBlock(2), 10, 0);
  bm.DropRdd(1);
  EXPECT_TRUE(bm.CachedPartitions(1).empty());
  EXPECT_EQ(bm.CachedPartitions(2), std::vector<int>{0});
  EXPECT_EQ(bm.TotalUsedBytes(), 10u);
}

TEST(ShuffleManagerTest, RegisterPutFetchLifecycle) {
  ShuffleManager sm;
  int id = sm.RegisterShuffle(2, 3);
  EXPECT_TRUE(sm.IsRegistered(id));
  EXPECT_EQ(sm.NumBuckets(id), 3);
  EXPECT_EQ(sm.NumMapPartitions(id), 2);
  EXPECT_FALSE(sm.IsComplete(id));
  EXPECT_EQ(sm.MissingMapPartitions(id).size(), 2u);

  MapOutput out;
  out.node = 1;
  out.buckets = {MakeBlock(0), MakeBlock(1), MakeBlock(2)};
  out.bucket_bytes = {10, 20, 30};
  out.bucket_records = {1, 2, 3};
  sm.PutMapOutput(id, 0, out);
  EXPECT_FALSE(sm.IsComplete(id));
  sm.PutMapOutput(id, 1, out);
  EXPECT_TRUE(sm.IsComplete(id));
  EXPECT_EQ(sm.Stats(id).total_records, 12u);
}

TEST(ShuffleManagerTest, DropNodeMarksOutputsLostAndRecomputeDoesNotDoubleCount) {
  ShuffleManager sm;
  int id = sm.RegisterShuffle(1, 1);
  MapOutput out;
  out.node = 0;
  out.buckets = {MakeBlock(0)};
  out.bucket_bytes = {100};
  out.bucket_records = {5};
  sm.PutMapOutput(id, 0, out);
  uint64_t bytes_before = sm.Stats(id).total_bytes;
  sm.DropNode(0);
  EXPECT_FALSE(sm.IsComplete(id));
  EXPECT_EQ(sm.MissingMapPartitions(id), std::vector<int>{0});
  // Recompute on another node: stats must not double count.
  out.node = 1;
  sm.PutMapOutput(id, 0, out);
  EXPECT_TRUE(sm.IsComplete(id));
  EXPECT_EQ(sm.Stats(id).total_bytes, bytes_before);
  EXPECT_EQ(sm.Stats(id).total_records, 5u);
}

}  // namespace
}  // namespace shark
