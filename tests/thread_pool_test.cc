// Unit tests for the work-stealing host thread pool: stealing under skewed
// job sizes, exception propagation through Wait, cancellation of a batch
// with a job mid-flight, and the null-pool serial reference path.
#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace shark {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  TaskBatch batch(&pool);
  std::atomic<int> counter{0};
  std::vector<size_t> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(batch.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (size_t id : ids) EXPECT_TRUE(batch.Wait(id));
  EXPECT_EQ(counter.load(), 40);
  for (size_t id : ids) EXPECT_TRUE(batch.Ran(id));
  uint64_t total = 0;
  for (uint64_t c : pool.RunCounts()) total += c;
  EXPECT_EQ(total, 40u);
}

TEST(ThreadPoolTest, StealsUnderSkewedJobSizes) {
  ThreadPool pool(4);
  TaskBatch batch(&pool);
  std::atomic<int> light_done{0};
  constexpr int kLight = 63;
  // The heavy job is submitted first, so it lands at the front of queue 0 and
  // pins whichever thread claims it until every light job — a quarter of
  // which share its home queue — has been run by somebody else.
  size_t heavy = batch.Submit([&light_done] {
    while (light_done.load() < kLight) std::this_thread::yield();
  });
  std::vector<size_t> lights;
  for (int i = 0; i < kLight; ++i) {
    lights.push_back(batch.Submit([&light_done] { light_done.fetch_add(1); }));
  }
  EXPECT_TRUE(batch.Wait(heavy));
  for (size_t id : lights) EXPECT_TRUE(batch.Wait(id));
  EXPECT_EQ(light_done.load(), kLight);

  EXPECT_GT(pool.Steals(), 0u);
  std::vector<uint64_t> counts = pool.RunCounts();
  ASSERT_EQ(counts.size(), 5u);  // 4 workers + helper slot
  uint64_t total = 0;
  int nonzero = 0;
  for (uint64_t c : counts) {
    total += c;
    if (c > 0) ++nonzero;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kLight) + 1);
  EXPECT_GE(nonzero, 2);
}

TEST(ThreadPoolTest, WaitRethrowsJobException) {
  ThreadPool pool(2);
  TaskBatch batch(&pool);
  size_t bad = batch.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(batch.Wait(bad), std::runtime_error);
  // The pool survives a throwing job: later work still runs.
  std::atomic<bool> ran{false};
  size_t good = batch.Submit([&ran] { ran.store(true); });
  EXPECT_TRUE(batch.Wait(good));
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, CancelAndDrainSkipsPendingWaitsOutRunning) {
  ThreadPool pool(1);
  TaskBatch batch(&pool);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  size_t j0 = batch.Submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  size_t j1 = batch.Submit([] {});
  size_t j2 = batch.Submit([] {});
  while (!started.load()) std::this_thread::yield();
  // j0 is mid-flight on the only worker; j1/j2 are still queued. Release j0
  // shortly after the drain below has begun waiting on it.
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  batch.CancelAndDrain();
  releaser.join();
  EXPECT_TRUE(batch.Ran(j0));
  EXPECT_FALSE(batch.Ran(j1));
  EXPECT_FALSE(batch.Ran(j2));
  EXPECT_FALSE(batch.Wait(j1));  // cancelled, not runnable
  EXPECT_FALSE(batch.Wait(j2));
}

TEST(ThreadPoolTest, NullPoolRunsInlineInWait) {
  TaskBatch batch(nullptr);
  int runs = 0;
  size_t a = batch.Submit([&runs] { ++runs; });
  size_t b = batch.Submit([&runs] { ++runs; });
  EXPECT_EQ(runs, 0);  // lazy: nothing runs until Wait
  EXPECT_TRUE(batch.Wait(b));
  EXPECT_TRUE(batch.Wait(a));
  EXPECT_EQ(runs, 2);
  EXPECT_THROW(
      {
        size_t c = batch.Submit([] { throw std::runtime_error("boom"); });
        batch.Wait(c);
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, NullPoolCancelSkipsUnwaitedJobs) {
  int runs = 0;
  TaskBatch batch(nullptr);
  size_t a = batch.Submit([&runs] { ++runs; });
  size_t b = batch.Submit([&runs] { ++runs; });
  EXPECT_TRUE(batch.Wait(a));
  batch.CancelAndDrain();
  EXPECT_FALSE(batch.Wait(b));
  EXPECT_TRUE(batch.Ran(a));
  EXPECT_FALSE(batch.Ran(b));
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace shark
