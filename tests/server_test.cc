// Serving observability plane: net_util hardening, the HTTP listener, the
// query log, query-id propagation client -> server -> profile, the pinned
// STATS key set, and /metrics cross-checked against JobOutcome values.

#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/client.h"
#include "server/http.h"
#include "server/net_util.h"
#include "server/server.h"
#include "sql/session.h"

namespace shark {
namespace {

std::shared_ptr<SharkSession> MakeSession() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  auto session = std::make_shared<SharkSession>(
      std::make_shared<ClusterContext>(cfg));
  Schema rankings({{"pageURL", TypeKind::kString},
                   {"pageRank", TypeKind::kInt64},
                   {"avgDuration", TypeKind::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(Row({Value::String("url" + std::to_string(i)),
                        Value::Int64(i), Value::Int64(i % 10)}));
  }
  EXPECT_TRUE(session->CreateDfsTable("rankings", rankings, rows, 4).ok());
  return session;
}

/// Connects to 127.0.0.1:port, sends `payload` verbatim, reads to EOF.
std::string RawExchange(int port, const std::string& payload,
                        bool read_reply = true) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  WriteAll(fd, payload);
  std::string reply;
  if (read_reply) {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      reply.append(chunk, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

// ---------------------------------------------------------------------------
// LineReader hardening
// ---------------------------------------------------------------------------

TEST(LineReaderTest, SplitsLinesAndStripsCr) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteAll(fds[0], "alpha\r\nbeta\n"));
  ::shutdown(fds[0], SHUT_WR);
  LineReader reader(fds[1]);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "beta");
  EXPECT_FALSE(reader.ReadLine(&line));
  EXPECT_FALSE(reader.overflowed());  // EOF, not an oversized line
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(LineReaderTest, OversizedLineTripsTheCap) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteAll(fds[0], std::string(64, 'x') + "\n"));
  LineReader reader(fds[1], /*max_line_bytes=*/16);
  std::string line;
  EXPECT_FALSE(reader.ReadLine(&line));
  EXPECT_TRUE(reader.overflowed());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(LineReaderTest, UncappedReaderTakesLongLines) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string big(100000, 'y');
  ASSERT_TRUE(WriteAll(fds[0], big + "\n"));
  LineReader reader(fds[1]);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, big);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// HttpListener hardening (standalone, no engine behind it)
// ---------------------------------------------------------------------------

class HttpListenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    listener_ = std::make_unique<HttpListener>(
        [](const HttpRequest& req, HttpResponse* resp) {
          if (req.path == "/ping") {
            resp->body = "pong n=" + req.QueryParam("n");
          } else {
            resp->status = 404;
            resp->body = "nope";
          }
        });
    ASSERT_TRUE(listener_->Start(0).ok());
  }

  std::unique_ptr<HttpListener> listener_;
};

TEST_F(HttpListenerTest, ServesGetWithQueryParams) {
  auto body = HttpGet(listener_->port(), "/ping?n=7");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(*body, "pong n=7");
  auto missing = HttpGet(listener_->port(), "/elsewhere");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("HTTP 404"), std::string::npos);
}

TEST_F(HttpListenerTest, MalformedRequestLineGets400) {
  EXPECT_NE(RawExchange(listener_->port(), "GARBAGE\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(RawExchange(listener_->port(), "GET /x\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
}

TEST_F(HttpListenerTest, OversizedRequestLineGets431) {
  std::string huge = "GET /" + std::string(64 * 1024, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_NE(RawExchange(listener_->port(), huge).find("HTTP/1.1 431"),
            std::string::npos);
}

TEST_F(HttpListenerTest, TooManyHeaderFieldsGets431) {
  std::string req = "GET /ping HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i) {
    req += "X-Flood-" + std::to_string(i) + ": 1\r\n";
  }
  req += "\r\n";
  EXPECT_NE(RawExchange(listener_->port(), req).find("HTTP/1.1 431"),
            std::string::npos);
}

TEST_F(HttpListenerTest, NonGetMethodGets405) {
  EXPECT_NE(RawExchange(listener_->port(),
                        "POST /ping HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
}

TEST_F(HttpListenerTest, SurvivesConnectionDropMidResponse) {
  // Peers that send a request and vanish before reading the response, or
  // connect and say nothing, must not take the listener down.
  for (int i = 0; i < 4; ++i) {
    RawExchange(listener_->port(), "GET /ping HTTP/1.1\r\n\r\n",
                /*read_reply=*/false);
    RawExchange(listener_->port(), "", /*read_reply=*/false);
  }
  auto body = HttpGet(listener_->port(), "/ping?n=1");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(*body, "pong n=1");
}

// ---------------------------------------------------------------------------
// SharkServer observability plane
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SharkServer::Options opts;
    opts.slow_query_virtual_seconds = 0.0;  // promote everything to slow
    server_ = std::make_unique<SharkServer>(MakeSession(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GE(server_->obs_port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    if (server_) server_->Stop();
  }

  std::unique_ptr<SharkServer> server_;
  SharkClient client_;
};

TEST_F(ServerTest, ServerAssignsQueryIds) {
  auto r1 = client_.Query("SELECT COUNT(*) FROM rankings");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = client_.Query("SELECT COUNT(*) FROM rankings");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1->query_id.empty());
  EXPECT_FALSE(r2->query_id.empty());
  EXPECT_NE(r1->query_id, r2->query_id);
}

TEST_F(ServerTest, QueryIdRoundTripToDetailJson) {
  auto r = client_.QueryWithId(
      "trace-42", "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 90");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->query_id, "trace-42");
  EXPECT_EQ(r->rows.size(), 9u);

  auto body = HttpGet(server_->obs_port(), "/queries/trace-42");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  // The detail JSON carries the full slow-query record: SQL text, session,
  // admission wait, virtual + host latency, the EXPLAIN ANALYZE rendering
  // and the chrome trace.
  EXPECT_NE(body->find("\"query_id\":\"trace-42\""), std::string::npos);
  EXPECT_NE(body->find("\"session\":\"conn1\""), std::string::npos);
  EXPECT_NE(body->find("WHERE pageRank > 90"), std::string::npos);
  EXPECT_NE(body->find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body->find("\"queue_delay\":"), std::string::npos);
  EXPECT_NE(body->find("\"virtual_seconds\":"), std::string::npos);
  EXPECT_NE(body->find("\"host_ms\":"), std::string::npos);
  EXPECT_NE(body->find("\"rows\":9"), std::string::npos);
  EXPECT_NE(body->find("\"slow\":true"), std::string::npos);
  EXPECT_NE(body->find("\"analyzed_plan\":"), std::string::npos);
  EXPECT_NE(body->find("\"chrome_trace\":"), std::string::npos);
  // The profile itself is stamped with the query id.
  EXPECT_NE(body->find("trace-42"), std::string::npos);

  auto missing = HttpGet(server_->obs_port(), "/queries/no-such-id");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("HTTP 404"), std::string::npos);
}

TEST_F(ServerTest, RecentQueriesListing) {
  ASSERT_TRUE(client_.QueryWithId("a1", "SELECT COUNT(*) FROM rankings").ok());
  ASSERT_TRUE(client_.QueryWithId("a2", "SELECT COUNT(*) FROM rankings").ok());
  auto body = HttpGet(server_->obs_port(), "/queries?n=1");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  // Newest first, capped at n.
  EXPECT_NE(body->find("\"query_id\":\"a2\""), std::string::npos);
  EXPECT_EQ(body->find("\"query_id\":\"a1\""), std::string::npos);
  EXPECT_NE(body->find("\"completed\":2"), std::string::npos);
  EXPECT_NE(body->find("\"slow_threshold\":0"), std::string::npos);
}

TEST_F(ServerTest, StatsPinnedKeySet) {
  ASSERT_TRUE(client_.Query("SELECT COUNT(*) FROM rankings").ok());
  auto stats = client_.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::set<std::string> expected = {
      "session.queries",         "session.ok",
      "session.errors",          "session.weight",
      "session.mem_demand_bytes", "session.latency_p50",
      "session.latency_p95",     "session.latency_p99",
      "session.queued_p50",      "session.queued_p99",
      "server.queries",          "server.ok",
      "server.errors",           "server.latency_p50",
      "server.latency_p95",      "server.latency_p99",
      "server.queued_p50",       "server.queued_p99",
      "server.slow_queries",
  };
  std::set<std::string> got;
  for (const auto& [k, v] : *stats) got.insert(k);
  EXPECT_EQ(got, expected);
  EXPECT_EQ((*stats)["session.queries"], "1");
  EXPECT_EQ((*stats)["session.ok"], "1");
  EXPECT_EQ((*stats)["server.slow_queries"], "1");  // threshold 0
  // One completed query: its virtual latency is the p50 and the p99.
  EXPECT_EQ((*stats)["session.latency_p50"], (*stats)["session.latency_p99"]);
  EXPECT_NE((*stats)["session.latency_p99"], "0");
}

TEST_F(ServerTest, MetricsCrossCheckAgainstJobOutcome) {
  ASSERT_TRUE(client_.QueryWithId("xq", "SELECT COUNT(*) FROM rankings").ok());

  QueryLogEntry entry;
  ASSERT_TRUE(server_->query_log().Lookup("xq", &entry));
  ASSERT_GT(entry.latency, 0.0);

  auto text = HttpGet(server_->obs_port(), "/metrics");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Exactly one query on session conn1: the exported per-session p99 gauge
  // must equal that query's JobOutcome latency bit-for-bit (single-sample
  // quantiles are exact, and %.17g round-trips doubles).
  const std::string needle =
      "shark_query_latency_seconds{session=\"conn1\",quantile=\"0.99\"} ";
  size_t pos = text->find(needle);
  ASSERT_NE(pos, std::string::npos) << *text;
  double p99 = std::stod(text->substr(pos + needle.size()));
  EXPECT_DOUBLE_EQ(p99, entry.latency);
  EXPECT_NE(text->find("shark_queries_completed_total{session=\"conn1\"} 1"),
            std::string::npos);
}

TEST_F(ServerTest, FailedQueryIsLoggedAsError) {
  auto r = client_.QueryWithId("bad", "SELECT nope FROM missing");
  ASSERT_FALSE(r.ok());
  QueryLogEntry entry;
  ASSERT_TRUE(server_->query_log().Lookup("bad", &entry));
  EXPECT_EQ(entry.status, "error");
  EXPECT_FALSE(entry.error.empty());
}

TEST_F(ServerTest, TopRendersSessionsAndQueries) {
  ASSERT_TRUE(client_.QueryWithId("t1", "SELECT COUNT(*) FROM rankings").ok());
  auto body = HttpGet(server_->obs_port(), "/top");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_NE(body->find("shark_server: queries=1"), std::string::npos);
  EXPECT_NE(body->find("conn1"), std::string::npos);
  EXPECT_NE(body->find("t1"), std::string::npos);
  EXPECT_NE(body->find("SELECT COUNT(*)"), std::string::npos);

  auto health = HttpGet(server_->obs_port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, "ok\n");
}

TEST(ServerQuotaTest, RejectionsAreLoggedAsRejected) {
  SharkServer::Options opts;
  opts.max_queries_per_connection = 1;
  SharkServer server(MakeSession(), opts);
  ASSERT_TRUE(server.Start().ok());
  SharkClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM rankings").ok());
  auto r = client.QueryWithId("over", "SELECT COUNT(*) FROM rankings");
  ASSERT_FALSE(r.ok());
  QueryLogEntry entry;
  ASSERT_TRUE(server.query_log().Lookup("over", &entry));
  EXPECT_EQ(entry.status, "rejected");
  EXPECT_FALSE(entry.slow);  // rejections never promote to the slow log
  client.Close();
  server.Stop();
}

TEST(ServerSinkTest, JsonlSinkRecordsCompletions) {
  const std::string path =
      ::testing::TempDir() + "/shark_query_log_test.jsonl";
  std::remove(path.c_str());
  {
    SharkServer::Options opts;
    opts.query_log_path = path;
    SharkServer server(MakeSession(), opts);
    ASSERT_TRUE(server.Start().ok());
    SharkClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.QueryWithId("s1", "SELECT COUNT(*) FROM rankings").ok());
    client.Close();
    server.Stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"query_id\":\"s1\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  std::remove(path.c_str());
}

// 8 sessions hammering queries while scrapers pull /metrics and /queries
// concurrently: every query and every scrape must succeed (and the whole
// dance must be TSan-clean — this test rides in the dedicated TSan pass).
TEST_F(ServerTest, QueryStormWithConcurrentScrapes) {
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 3;
  std::atomic<int> query_failures{0};
  std::atomic<int> scrape_failures{0};
  std::atomic<bool> storm_done{false};

  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&, s] {
      while (!storm_done) {
        auto text = HttpGet(server_->obs_port(),
                            s == 0 ? "/metrics" : "/queries?n=8");
        if (!text.ok()) scrape_failures++;
      }
    });
  }

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SharkClient cl;
      if (!cl.Connect("127.0.0.1", server_->port()).ok()) {
        query_failures += kQueriesPerClient;
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto r = cl.QueryWithId(
            "storm-" + std::to_string(c) + "-" + std::to_string(q),
            "SELECT avgDuration, COUNT(*) FROM rankings GROUP BY avgDuration");
        if (!r.ok() || r->rows.size() != 10) query_failures++;
      }
      cl.Close();
    });
  }
  for (auto& t : clients) t.join();
  storm_done = true;
  for (auto& t : scrapers) t.join();

  EXPECT_EQ(query_failures, 0);
  EXPECT_EQ(scrape_failures, 0);

  // Every storm query is addressable by id afterwards.
  QueryLogEntry entry;
  ASSERT_TRUE(server_->query_log().Lookup("storm-0-0", &entry));
  EXPECT_EQ(entry.status, "ok");
  auto text = HttpGet(server_->obs_port(), "/metrics");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("shark_queries_completed_total "), std::string::npos);
}

}  // namespace
}  // namespace shark
