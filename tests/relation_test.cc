#include <gtest/gtest.h>

#include "relation/row.h"
#include "relation/types.h"
#include "relation/value.h"

namespace shark {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).kind(), TypeKind::kBool);
  EXPECT_EQ(Value::Int64(7).int64_v(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_v(), 2.5);
  EXPECT_EQ(Value::String("x").str(), "x");
  EXPECT_EQ(Value::Date(10).kind(), TypeKind::kDate);
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int64(3), Value::Double(3.0));
  EXPECT_NE(Value::Int64(3), Value::Double(3.5));
  EXPECT_NE(Value::Int64(3), Value::String("3"));
}

TEST(ValueTest, HashConsistentWithCrossTypeEquality) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
  EXPECT_LT(Value::Int64(5).Compare(Value::String("a")), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a")), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
}

TEST(ValueTest, DateParseFormatRoundTrip) {
  auto d = Value::ParseDate("2000-01-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "2000-01-15");
  auto d2 = Value::ParseDate("1970-01-01");
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->int64_v(), 0);
  auto d3 = Value::ParseDate("2000-01-22");
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(d3->int64_v() - d->int64_v(), 7);
}

TEST(ValueTest, DateRejectsInvalid) {
  EXPECT_FALSE(Value::ParseDate("2001-02-29").ok());
  EXPECT_FALSE(Value::ParseDate("2000-13-01").ok());
  EXPECT_FALSE(Value::ParseDate("hello").ok());
  EXPECT_TRUE(Value::ParseDate("2000-02-29").ok());  // leap year
}

TEST(ValueTest, DateComparisons) {
  auto a = *Value::ParseDate("2000-01-15");
  auto b = *Value::ParseDate("2000-01-22");
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(SchemaTest, FieldIndexIsCaseInsensitive) {
  Schema s({{"pageURL", TypeKind::kString}, {"pageRank", TypeKind::kInt64}});
  EXPECT_EQ(s.FieldIndex("pagerank"), 1);
  EXPECT_EQ(s.FieldIndex("PAGEURL"), 0);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddField({"a", TypeKind::kInt64}).ok());
  EXPECT_FALSE(s.AddField({"A", TypeKind::kString}).ok());
}

TEST(RowTest, EqualityAndHash) {
  Row a({Value::Int64(1), Value::String("x")});
  Row b({Value::Int64(1), Value::String("x")});
  Row c({Value::Int64(2), Value::String("x")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(KeyHash(a), KeyHash(b));
  EXPECT_NE(KeyHash(a), KeyHash(c));
}

TEST(RowTest, SerializedSizesDifferByFormat) {
  Row r({Value::Int64(1234567), Value::String("hello"), Value::Double(1.5)});
  uint64_t text = SerializedSizeOf(r, DfsFormat::kText);
  uint64_t binary = SerializedSizeOf(r, DfsFormat::kBinary);
  EXPECT_GT(text, 0u);
  EXPECT_GT(binary, 0u);
  // Binary is fixed-width for numerics; text charges digits + delimiters.
  EXPECT_EQ(binary, 8u + (4u + 5u) + 8u);
}

TEST(RowTest, ToStringReadable) {
  Row r({Value::Int64(1), Value::String("a")});
  EXPECT_EQ(r.ToString(), "1|a");
}

}  // namespace
}  // namespace shark
