#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/pde.h"

namespace shark {
namespace {

TEST(PdeReducersTest, ChoosesByTargetBytes) {
  EXPECT_EQ(ChooseNumReducers(0, 1 << 20, 100), 1);
  EXPECT_EQ(ChooseNumReducers(1 << 20, 1 << 20, 100), 1);
  EXPECT_EQ(ChooseNumReducers((1 << 20) + 1, 1 << 20, 100), 2);
  EXPECT_EQ(ChooseNumReducers(100ULL << 20, 1 << 20, 100), 100);
  // Clamped to the fine-grained bucket count.
  EXPECT_EQ(ChooseNumReducers(1000ULL << 20, 1 << 20, 64), 64);
}

TEST(PdeCoalesceTest, EveryBucketAssignedExactlyOnce) {
  Random rng(7);
  std::vector<uint64_t> sizes;
  for (int i = 0; i < 200; ++i) sizes.push_back(rng.Uniform(1000000));
  BucketAssignment a = CoalesceBuckets(sizes, 16);
  ASSERT_EQ(a.size(), 16u);
  std::vector<int> seen(sizes.size(), 0);
  for (const auto& list : a) {
    for (int b : list) seen[static_cast<size_t>(b)] += 1;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "bucket " << i;
  }
}

TEST(PdeCoalesceTest, GreedyBalancesSkew) {
  // One huge bucket plus many small ones: greedy bin packing should isolate
  // the hot bucket and spread the rest, keeping max load near total/R
  // rather than near (hot + everything else)/fewer bins.
  std::vector<uint64_t> sizes(64, 100);
  sizes[7] = 3000;  // heavy hitter bucket
  BucketAssignment a = CoalesceBuckets(sizes, 8);
  uint64_t total = std::accumulate(sizes.begin(), sizes.end(), uint64_t{0});
  uint64_t max_load = MaxReducerLoad(sizes, a);
  EXPECT_EQ(max_load, 3000u);  // hot bucket alone bounds the max
  EXPECT_LT(max_load, total);  // far from serializing everything
}

TEST(PdeCoalesceTest, UniformBucketsBalanceEvenly) {
  std::vector<uint64_t> sizes(100, 50);
  BucketAssignment a = CoalesceBuckets(sizes, 10);
  uint64_t max_load = MaxReducerLoad(sizes, a);
  EXPECT_EQ(max_load, 500u);  // perfect split
}

TEST(PdeCoalesceTest, MoreReducersThanBucketsClamps) {
  std::vector<uint64_t> sizes = {10, 20, 30};
  BucketAssignment a = CoalesceBuckets(sizes, 10);
  EXPECT_EQ(a.size(), 3u);
}

class PdeCoalescePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PdeCoalescePropertyTest, MaxLoadWithinTwiceOptimal) {
  // Greedy longest-processing-time packing is a 4/3-approximation; verify a
  // loose 2x bound across random inputs.
  Random rng(static_cast<uint64_t>(GetParam()));
  std::vector<uint64_t> sizes;
  for (int i = 0; i < 128; ++i) sizes.push_back(rng.Uniform(10000) + 1);
  int reducers = 1 + static_cast<int>(rng.Uniform(32));
  BucketAssignment a = CoalesceBuckets(sizes, reducers);
  uint64_t total = std::accumulate(sizes.begin(), sizes.end(), uint64_t{0});
  uint64_t biggest = *std::max_element(sizes.begin(), sizes.end());
  uint64_t lower_bound =
      std::max<uint64_t>(biggest, total / static_cast<uint64_t>(a.size()));
  EXPECT_LE(MaxReducerLoad(sizes, a), 2 * lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdeCoalescePropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace shark
