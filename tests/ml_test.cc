#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/kmeans.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/table_rdd.h"
#include "workloads/mldata.h"

namespace shark {
namespace {

TEST(VectorOpsTest, Basics) {
  MlVector a = {1, 2, 3};
  MlVector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  AddInPlace(&a, b);
  EXPECT_EQ(a, (MlVector{5, 7, 9}));
  ScaleInPlace(&a, 2.0);
  EXPECT_EQ(a, (MlVector{10, 14, 18}));
  MlVector c = {0, 0, 0};
  Axpy(2.0, b, &c);
  EXPECT_EQ(c, (MlVector{8, 10, 12}));
  EXPECT_DOUBLE_EQ(SquaredDistance(b, MlVector{4, 5, 6}), 0.0);
  EXPECT_DOUBLE_EQ(Norm2(MlVector{3, 4}), 5.0);
}

ClusterConfig MlClusterConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  return cfg;
}

std::vector<LabeledPoint> SeparablePoints(int n, int dims, uint64_t seed) {
  Random rng(seed);
  std::vector<LabeledPoint> points;
  for (int i = 0; i < n; ++i) {
    LabeledPoint p;
    p.y = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    for (int d = 0; d < dims; ++d) {
      p.x.push_back(p.y * 1.0 + 0.5 * rng.NextGaussian());
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  auto data = SeparablePoints(2000, 5, 11);
  auto rdd = ctx->Parallelize(data, 8);
  LogisticRegression::Options opts;
  opts.iterations = 10;
  opts.learning_rate = 0.001;
  auto model = LogisticRegression::Train(ctx.get(), rdd, 5, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  int correct = 0;
  for (const LabeledPoint& p : data) {
    double prob = LogisticRegression::Predict(model->weights, p.x);
    if ((prob > 0.5) == (p.y > 0)) ++correct;
  }
  EXPECT_GT(correct, 1800);  // > 90% accuracy on separable data
  EXPECT_EQ(model->iteration_seconds.size(), 10u);
  for (double t : model->iteration_seconds) EXPECT_GT(t, 0.0);
}

TEST(LinearRegressionTest, RecoversLinearRelationship) {
  Random rng(3);
  std::vector<LabeledPoint> data;
  // y = 2*x0 - 1*x1 with small noise.
  for (int i = 0; i < 2000; ++i) {
    LabeledPoint p;
    p.x = {rng.NextDouble(), rng.NextDouble()};
    p.y = 2.0 * p.x[0] - 1.0 * p.x[1] + 0.01 * rng.NextGaussian();
    data.push_back(std::move(p));
  }
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  auto rdd = ctx->Parallelize(data, 8);
  LinearRegression::Options opts;
  opts.iterations = 200;
  opts.learning_rate = 1.0;
  auto model = LinearRegression::Train(ctx.get(), rdd, 2, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights[0], 2.0, 0.3);
  EXPECT_NEAR(model->weights[1], -1.0, 0.3);
}

TEST(KMeansTest, FindsClusters) {
  Random rng(5);
  std::vector<MlVector> points;
  // Three well-separated clusters around (0,0), (10,10), (-10,10).
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  for (int i = 0; i < 3000; ++i) {
    int c = i % 3;
    points.push_back(MlVector{centers[c][0] + rng.NextGaussian(),
                              centers[c][1] + rng.NextGaussian()});
  }
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  auto rdd = ctx->Parallelize(points, 8);
  KMeans::Options opts;
  opts.k = 3;
  opts.iterations = 15;
  opts.seed = 99;
  auto model = KMeans::Train(ctx.get(), rdd, 2, opts);
  ASSERT_TRUE(model.ok());
  // Every true center must be near some learned centroid.
  for (const auto& center : centers) {
    double best = 1e18;
    for (const MlVector& c : model->centroids) {
      best = std::min(best, SquaredDistance(c, MlVector{center[0], center[1]}));
    }
    EXPECT_LT(best, 4.0);
  }
  // Inertia decreased vs a one-iteration run.
  KMeans::Options one = opts;
  one.iterations = 1;
  auto first = KMeans::Train(ctx.get(), rdd, 2, one);
  ASSERT_TRUE(first.ok());
  EXPECT_LT(model->inertia, first->inertia);
}

TEST(SqlMlPipelineTest, Listing1EndToEnd) {
  // The paper's Listing 1: sql2rdd -> feature extraction -> logistic
  // regression, all in one lineage graph.
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  SharkSession session(ctx);
  MlDataConfig data;
  data.rows = 3000;
  data.dimensions = 4;
  data.blocks = 8;
  ASSERT_TRUE(GenerateMlTable(&session, data).ok());

  auto table = session.Sql2Rdd("SELECT * FROM ml_points WHERE label <> 0");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto points =
      RowsToLabeledPoints(*table, "label", MlFeatureColumns(data.dimensions));
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  (*points)->Cache();

  LogisticRegression::Options opts;
  opts.iterations = 8;
  opts.learning_rate = 0.001;
  auto model =
      LogisticRegression::Train(ctx.get(), *points, data.dimensions, opts);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  // Caching: iterations after the first do not rescan the DFS, so they are
  // no slower (and typically faster) than the first.
  ASSERT_EQ(model->iteration_seconds.size(), 8u);
  double first = model->iteration_seconds[0];
  for (size_t i = 1; i < model->iteration_seconds.size(); ++i) {
    EXPECT_LE(model->iteration_seconds[i], first * 1.01);
  }
}

TEST(SqlMlPipelineTest, MapRowsExtractsFeatures) {
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  SharkSession session(ctx);
  MlDataConfig data;
  data.rows = 500;
  data.dimensions = 3;
  data.blocks = 4;
  ASSERT_TRUE(GenerateMlTable(&session, data).ok());
  auto table = session.Sql2Rdd("SELECT * FROM ml_points");
  ASSERT_TRUE(table.ok());
  auto vectors = MapRows(*table, [](const Row& r) {
    return MlVector{r.Get(1).AsDouble() * 2.0};
  });
  auto collected = ctx->Collect(vectors);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected->size(), 500u);

  auto bad = RowsToLabeledPoints(*table, "no_such", {"f0"});
  EXPECT_FALSE(bad.ok());
}

TEST(SqlMlPipelineTest, RecoversFromFailureDuringTraining) {
  auto ctx = std::make_shared<ClusterContext>(MlClusterConfig());
  SharkSession session(ctx);
  MlDataConfig data;
  data.rows = 2000;
  data.dimensions = 4;
  data.blocks = 8;
  ASSERT_TRUE(GenerateMlTable(&session, data).ok());
  auto table = session.Sql2Rdd("SELECT * FROM ml_points");
  ASSERT_TRUE(table.ok());
  auto points =
      RowsToLabeledPoints(*table, "label", MlFeatureColumns(data.dimensions));
  ASSERT_TRUE(points.ok());
  (*points)->Cache();

  LogisticRegression::Options opts;
  opts.iterations = 5;
  opts.learning_rate = 0.001;
  auto clean = LogisticRegression::Train(ctx.get(), *points, data.dimensions,
                                         opts);
  ASSERT_TRUE(clean.ok());

  // Same training with a node killed mid-way must produce identical weights
  // (deterministic lineage recomputation, §4.2).
  auto ctx2 = std::make_shared<ClusterContext>(MlClusterConfig());
  SharkSession session2(ctx2);
  ASSERT_TRUE(GenerateMlTable(&session2, data).ok());
  auto table2 = session2.Sql2Rdd("SELECT * FROM ml_points");
  ASSERT_TRUE(table2.ok());
  auto points2 =
      RowsToLabeledPoints(*table2, "label", MlFeatureColumns(data.dimensions));
  ASSERT_TRUE(points2.ok());
  (*points2)->Cache();
  ctx2->InjectFault(FaultEvent{FaultEvent::Kind::kKill, 0.01, 2, 1.0});
  auto faulty = LogisticRegression::Train(ctx2.get(), *points2,
                                          data.dimensions, opts);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  ASSERT_EQ(clean->weights.size(), faulty->weights.size());
  for (size_t i = 0; i < clean->weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean->weights[i], faulty->weights[i]);
  }
}

}  // namespace
}  // namespace shark
