#include <cmath>

#include <gtest/gtest.h>

#include "common/cardinality.h"
#include "common/random.h"

namespace shark {
namespace {

TEST(DistinctGrowthTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(DistinctGrowthFactor(0, 0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(DistinctGrowthFactor(100, 50, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DistinctGrowthFactor(100, 50, 0.5), 1.0);
}

TEST(DistinctGrowthTest, NoCollisionsMeansLinear) {
  // All-unique sample: no evidence of saturation; scale linearly.
  EXPECT_DOUBLE_EQ(DistinctGrowthFactor(1000, 1000, 50.0), 50.0);
}

TEST(DistinctGrowthTest, FullySaturatedStaysFlat) {
  // 1250 draws hit only 100 distinct keys: the key space is tiny; scaling
  // the draws 1000x barely increases the distinct count.
  double f = DistinctGrowthFactor(1250, 100, 1000.0);
  EXPECT_LT(f, 1.05);
  EXPECT_GE(f, 1.0);
}

TEST(DistinctGrowthTest, BoundedByOneAndScale) {
  Random rng(6);
  for (int i = 0; i < 200; ++i) {
    double n = 1.0 + static_cast<double>(rng.Uniform(100000));
    double d = 1.0 + static_cast<double>(rng.Uniform(static_cast<uint64_t>(n)));
    double scale = 1.0 + static_cast<double>(rng.Uniform(10000));
    double f = DistinctGrowthFactor(n, d, scale);
    EXPECT_GE(f, 1.0) << "n=" << n << " d=" << d << " s=" << scale;
    EXPECT_LE(f, scale) << "n=" << n << " d=" << d << " s=" << scale;
  }
}

TEST(DistinctGrowthTest, RecoversTrueGrowthOnSimulatedDraws) {
  // Draw n samples uniformly from K keys; check the predicted growth
  // against an actual scaled-up simulation.
  Random rng(7);
  const uint64_t kKeySpace = 300000;
  const int kSample = 2500;
  const double kScale = 1000.0;

  std::vector<char> seen_small(kKeySpace, 0);
  int d_small = 0;
  for (int i = 0; i < kSample; ++i) {
    uint64_t k = rng.Uniform(kKeySpace);
    if (!seen_small[k]) {
      seen_small[k] = 1;
      ++d_small;
    }
  }
  double predicted = DistinctGrowthFactor(kSample, d_small, kScale);

  // The scaled-up "virtual" sample has kSample * kScale = 2.5M draws from
  // 300K keys: essentially the whole key space.
  double true_growth = static_cast<double>(kKeySpace) / d_small;
  EXPECT_NEAR(predicted, true_growth, 0.35 * true_growth);
}

TEST(DistinctGrowthTest, MonotoneInScale) {
  double prev = 0;
  for (double scale : {2.0, 10.0, 100.0, 1000.0, 10000.0}) {
    double f = DistinctGrowthFactor(1000, 900, scale);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace shark
