#include "common/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/cluster_metrics.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterSnapshotFollowsRegistrationOrder) {
  MetricsRegistry reg;
  Counter* b = reg.RegisterCounter("shark_b_total", "second alphabetically");
  Counter* a = reg.RegisterCounter("shark_a_total", "first alphabetically");
  Counter* lab = reg.RegisterCounter("shark_c_total", "labeled", "node=\"3\"");
  b->Increment(2);
  a->Increment();
  lab->Increment(7);

  auto snap = reg.CounterSnapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "shark_b_total");
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].first, "shark_a_total");
  EXPECT_EQ(snap[1].second, 1u);
  EXPECT_EQ(snap[2].first, "shark_c_total{node=\"3\"}");
  EXPECT_EQ(snap[2].second, 7u);
}

TEST(MetricsRegistryTest, SnapshotSkipsGaugesAndHistograms) {
  MetricsRegistry reg;
  reg.RegisterGauge("shark_g", "a gauge")->Set(5.0);
  reg.RegisterHistogram("shark_h", "a histogram");
  reg.RegisterCounter("shark_c_total", "a counter")->Increment(3);
  auto snap = reg.CounterSnapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "shark_c_total");
}

TEST(MetricsRegistryTest, TextExpositionHeadersOncePerFamily) {
  MetricsRegistry reg;
  reg.RegisterCounter("shark_locality_total", "Launches by class",
                      "class=\"preferred\"")
      ->Increment(4);
  reg.RegisterCounter("shark_locality_total", "", "class=\"remote\"")
      ->Increment(1);
  std::string text = reg.TextExposition();

  // One HELP and one TYPE line for the family, one sample per child.
  EXPECT_EQ(text.find("# HELP shark_locality_total Launches by class\n"),
            text.rfind("# HELP shark_locality_total"));
  EXPECT_EQ(text.find("# TYPE shark_locality_total counter\n"),
            text.rfind("# TYPE shark_locality_total"));
  EXPECT_NE(text.find("shark_locality_total{class=\"preferred\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("shark_locality_total{class=\"remote\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, TextExpositionGaugeAndCallbackGauge) {
  MetricsRegistry reg;
  reg.RegisterGauge("shark_plain", "set directly")->Set(12);
  double source = 0.0;
  reg.RegisterCallbackGauge("shark_pulled", "read at exposition time",
                            [&source] { return source; });
  source = 99.5;
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# TYPE shark_plain gauge\n"), std::string::npos);
  EXPECT_NE(text.find("shark_plain 12\n"), std::string::npos);
  // The callback gauge reflects the value at exposition time, not at
  // registration time.
  EXPECT_NE(text.find("shark_pulled 99.5\n"), std::string::npos);
}

TEST(MetricsRegistryTest, TextExpositionHistogramSummary) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.RegisterHistogram("shark_dur_seconds", "durations");
  {
    // Empty histogram: quantiles render as 0, count as 0.
    std::string text = reg.TextExposition();
    EXPECT_NE(text.find("# TYPE shark_dur_seconds summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("shark_dur_seconds{quantile=\"0.50\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("shark_dur_seconds_count 0\n"), std::string::npos);
  }
  for (int i = 0; i < 100; ++i) h->Observe(1.0);
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("shark_dur_seconds_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus exposition escaping / sanitization
// ---------------------------------------------------------------------------

TEST(PrometheusEscapeTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(PrometheusEscape("plain"), "plain");
  EXPECT_EQ(PrometheusEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscape("two\nlines"), "two\\nlines");
  EXPECT_EQ(PrometheusEscape("\\\"\n"), "\\\\\\\"\\n");
}

TEST(SanitizeMetricNameTest, MapsInvalidCharactersToUnderscore) {
  EXPECT_EQ(SanitizeMetricName("shark_ok_total"), "shark_ok_total");
  EXPECT_EQ(SanitizeMetricName("shark:recorded"), "shark:recorded");
  EXPECT_EQ(SanitizeMetricName("shark.dotted-name"), "shark_dotted_name");
  EXPECT_EQ(SanitizeMetricName("has spaces"), "has_spaces");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

// Regression: a session name containing quotes, backslashes and a newline
// must produce a parseable exposition — one escaped label value, no raw
// newline splitting the sample line.
TEST(MetricsRegistryTest, LabelValuesWithQuotesAreEscaped) {
  MetricsRegistry reg;
  const std::string session = "we\"ird\\name\nsession";
  reg.RegisterCounter("shark_sessions_total", "per-session",
                      MetricsRegistry::Label("session", session))
      ->Increment(3);
  std::string text = reg.TextExposition();
  EXPECT_NE(
      text.find(
          "shark_sessions_total{session=\"we\\\"ird\\\\name\\nsession\"} 3\n"),
      std::string::npos)
      << text;
  // No sample line was split by the raw newline: every line is either a
  // comment or starts with the metric name.
  size_t start = 0;
  while (start < text.size()) {
    size_t eol = text.find('\n', start);
    std::string line = text.substr(start, eol - start);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 ||
                line.rfind("shark_sessions_total", 0) == 0)
        << "stray line: " << line;
    start = eol + 1;
  }
}

TEST(MetricsRegistryTest, RegisteredNamesAreSanitized) {
  MetricsRegistry reg;
  reg.RegisterCounter("bad name.total", "spaces and dots")->Increment();
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("bad_name_total 1\n"), std::string::npos);
  EXPECT_EQ(text.find("bad name"), std::string::npos);
}

// Families render contiguously even when children register late (the
// per-session SLO series do exactly this).
TEST(MetricsRegistryTest, LateFamilyChildrenStayGrouped) {
  MetricsRegistry reg;
  reg.RegisterCounter("shark_fam_total", "family", "k=\"a\"")->Increment(1);
  reg.RegisterCounter("shark_other_total", "interloper")->Increment(9);
  reg.RegisterCounter("shark_fam_total", "", "k=\"b\"")->Increment(2);
  std::string text = reg.TextExposition();
  size_t a = text.find("shark_fam_total{k=\"a\"} 1\n");
  size_t b = text.find("shark_fam_total{k=\"b\"} 2\n");
  size_t other = text.find("shark_other_total 9\n");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(other, std::string::npos);
  // Both children precede the interloper that registered between them.
  EXPECT_LT(a, b);
  EXPECT_LT(b, other);
}

// ---------------------------------------------------------------------------
// ClusterTimeline
// ---------------------------------------------------------------------------

ClusterSample At(double t) {
  ClusterSample s;
  s.time = t;
  return s;
}

TEST(ClusterTimelineTest, SameInstantReplacesLastSample) {
  ClusterTimeline tl;
  ClusterSample first = At(1.0);
  first.pending_tasks = 5;
  tl.Record(first);
  ClusterSample second = At(1.0);
  second.pending_tasks = 2;
  tl.Record(second);
  ASSERT_EQ(tl.samples().size(), 1u);
  EXPECT_EQ(tl.samples()[0].pending_tasks, 2);
}

TEST(ClusterTimelineTest, ShouldSampleHonorsMinInterval) {
  ClusterTimeline tl(16);
  EXPECT_TRUE(tl.ShouldSample(0.0));  // empty: always sample
  // Force a decimation so min_interval becomes nonzero.
  for (int i = 0; i < 40; ++i) tl.Record(At(static_cast<double>(i)));
  ASSERT_GT(tl.min_interval(), 0.0);
  double last = tl.samples().back().time;
  EXPECT_FALSE(tl.ShouldSample(last + tl.min_interval() * 0.5));
  EXPECT_TRUE(tl.ShouldSample(last + tl.min_interval()));
  // Same-instant (or earlier) samples are always accepted — they replace.
  EXPECT_TRUE(tl.ShouldSample(last));
}

TEST(ClusterTimelineTest, DecimationBoundsMemoryAndKeepsOrder) {
  const size_t kMax = 16;
  ClusterTimeline tl(kMax);
  for (int i = 0; i < 100000; ++i) {
    tl.Record(At(static_cast<double>(i) * 0.001));
  }
  EXPECT_LT(tl.samples().size(), 2 * kMax);
  EXPECT_GE(tl.samples().size(), kMax / 2);
  // First sample survives every decimation; times stay strictly increasing.
  EXPECT_EQ(tl.samples().front().time, 0.0);
  for (size_t i = 1; i < tl.samples().size(); ++i) {
    EXPECT_LT(tl.samples()[i - 1].time, tl.samples()[i].time);
  }
  tl.Clear();
  EXPECT_TRUE(tl.samples().empty());
  EXPECT_EQ(tl.min_interval(), 0.0);
  EXPECT_TRUE(tl.ShouldSample(0.0));
}

// ---------------------------------------------------------------------------
// Skew analyzer
// ---------------------------------------------------------------------------

TEST(StageSkewTest, EmptyStage) {
  StageSkewReport r = ComputeStageSkew("empty", 0, 1.0, 2.0, {}, {}, {});
  EXPECT_EQ(r.tasks, 0);
  EXPECT_EQ(r.dur_max, 0.0);
  EXPECT_EQ(r.dur_skew, 0.0);
  EXPECT_EQ(r.straggler_partition, -1);
  EXPECT_EQ(r.straggler_node, -1);
}

TEST(StageSkewTest, SingleTaskHasNoSkew) {
  StageSkewReport r =
      ComputeStageSkew("one", 3, 0.0, 4.0, {4.0}, {7}, {2});
  EXPECT_EQ(r.seq, 3);
  EXPECT_EQ(r.tasks, 1);
  EXPECT_EQ(r.dur_p50, 4.0);
  EXPECT_EQ(r.dur_p95, 4.0);
  EXPECT_EQ(r.dur_max, 4.0);
  EXPECT_EQ(r.dur_skew, 1.0);
  EXPECT_EQ(r.straggler_partition, 7);
  EXPECT_EQ(r.straggler_node, 2);
}

TEST(StageSkewTest, StragglerIsNamed) {
  // 9 even tasks and one 5x straggler on partition 6 / node 3.
  std::vector<double> durs(10, 1.0);
  std::vector<int> parts = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> nodes(10, 0);
  durs[6] = 5.0;
  nodes[6] = 3;
  StageSkewReport r = ComputeStageSkew("skewed", 0, 0.0, 5.0, durs, parts, nodes);
  EXPECT_EQ(r.tasks, 10);
  EXPECT_EQ(r.dur_p50, 1.0);
  EXPECT_EQ(r.dur_max, 5.0);
  EXPECT_EQ(r.dur_skew, 5.0);
  EXPECT_EQ(r.straggler_partition, 6);
  EXPECT_EQ(r.straggler_node, 3);
}

TEST(StageSkewTest, BucketAnnotation) {
  StageSkewReport r;
  AnnotateBucketSkew({}, &r);
  EXPECT_EQ(r.buckets, 0);
  EXPECT_EQ(r.culprit_bucket, -1);

  // Buckets {100, 100, 100, 500}: mean 200, max 500 at index 3.
  AnnotateBucketSkew({100, 100, 500, 100}, &r);
  EXPECT_EQ(r.buckets, 4);
  EXPECT_EQ(r.bucket_p50, 100u);
  EXPECT_EQ(r.bucket_max, 500u);
  EXPECT_DOUBLE_EQ(r.bucket_skew, 2.5);
  EXPECT_EQ(r.culprit_bucket, 2);
}

// ---------------------------------------------------------------------------
// SHARK_LOG_LEVEL parsing
// ---------------------------------------------------------------------------

TEST(ParseLogLevelTest, AcceptsNamesAndDigits) {
  LogLevel lvl;
  ASSERT_TRUE(ParseLogLevel("debug", &lvl));
  EXPECT_EQ(lvl, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("INFO", &lvl));
  EXPECT_EQ(lvl, LogLevel::kInfo);
  ASSERT_TRUE(ParseLogLevel("Warning", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("warn", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("error", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);
  ASSERT_TRUE(ParseLogLevel("off", &lvl));
  EXPECT_EQ(lvl, LogLevel::kOff);
  ASSERT_TRUE(ParseLogLevel("none", &lvl));
  EXPECT_EQ(lvl, LogLevel::kOff);
  ASSERT_TRUE(ParseLogLevel("0", &lvl));
  EXPECT_EQ(lvl, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("4", &lvl));
  EXPECT_EQ(lvl, LogLevel::kOff);
}

TEST(ParseLogLevelTest, RejectsGarbageAndLeavesOutputUntouched) {
  LogLevel lvl = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("", &lvl));
  EXPECT_FALSE(ParseLogLevel("verbose", &lvl));
  EXPECT_FALSE(ParseLogLevel("5", &lvl));
  EXPECT_FALSE(ParseLogLevel("12", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);
}

}  // namespace
}  // namespace shark
