#include <algorithm>
#include <random>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "sql/planner/join_reorder.h"
#include "sql/session.h"
#include "sql/stats/table_stats.h"

namespace shark {
namespace {

// ---------------------------------------------------------------------------
// DP enumerator vs exhaustive oracle on synthetic graphs
// ---------------------------------------------------------------------------

JoinGraph RandomGraph(int n, std::mt19937* rng) {
  JoinGraph g;
  std::uniform_real_distribution<double> logrows(1.0, 6.0);
  for (int i = 0; i < n; ++i) {
    JoinGraphLeaf leaf;
    leaf.rows = std::pow(10.0, logrows(*rng));
    leaf.row_width = 8.0 + 8.0 * static_cast<double>(i % 4);
    g.leaves.push_back(leaf);
  }
  // Spanning chain keeps the graph connected; extra random edges add cycles.
  std::uniform_real_distribution<double> sel(1e-6, 1e-2);
  for (int i = 1; i < n; ++i) {
    g.edges.push_back(JoinGraphEdge{i - 1, i, 0, 0, sel(*rng)});
  }
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (int e = 0; e < n / 2; ++e) {
    int a = pick(*rng), b = pick(*rng);
    if (a != b) g.edges.push_back(JoinGraphEdge{a, b, 0, 0, sel(*rng)});
  }
  return g;
}

TEST(JoinOrderTest, DpMatchesExhaustiveOnSmallGraphs) {
  PlanCostEnv env;
  std::mt19937 rng(42);
  for (int n = 3; n <= 5; ++n) {
    for (int trial = 0; trial < 20; ++trial) {
      JoinGraph g = RandomGraph(n, &rng);
      JoinOrderResult dp = ChooseJoinOrderDp(g, env);
      JoinOrderResult ex = ChooseJoinOrderExhaustive(g, env);
      ASSERT_GE(dp.cost, 0.0);
      ASSERT_GE(ex.cost, 0.0);
      EXPECT_NEAR(dp.cost, ex.cost, 1e-9 + 1e-9 * ex.cost)
          << "n=" << n << " trial=" << trial;
      // The order the DP returns must actually cost what it claims.
      EXPECT_NEAR(JoinOrderCost(g, env, dp.order), dp.cost,
                  1e-9 + 1e-9 * dp.cost);
    }
  }
}

TEST(JoinOrderTest, DpHonorsRequiredFirst) {
  PlanCostEnv env;
  std::mt19937 rng(7);
  JoinGraph g = RandomGraph(4, &rng);
  for (int first = 0; first < 4; ++first) {
    JoinOrderResult r = ChooseJoinOrderDp(g, env, first);
    ASSERT_EQ(r.order.size(), 4u);
    EXPECT_EQ(r.order[0], first);
    JoinOrderResult ex = ChooseJoinOrderExhaustive(g, env, first);
    EXPECT_NEAR(r.cost, ex.cost, 1e-9 + 1e-9 * ex.cost);
  }
}

TEST(JoinOrderTest, TiedCostsKeepWrittenOrder) {
  // Identical leaves on a symmetric chain: every direction costs the same,
  // so the tie-break must reproduce the written order 0,1,2.
  JoinGraph g;
  for (int i = 0; i < 3; ++i) {
    JoinGraphLeaf leaf;
    leaf.rows = 1000;
    leaf.row_width = 16;
    g.leaves.push_back(leaf);
  }
  g.edges.push_back(JoinGraphEdge{0, 1, 0, 0, 1e-3});
  g.edges.push_back(JoinGraphEdge{1, 2, 0, 0, 1e-3});
  PlanCostEnv env;
  JoinOrderResult r = ChooseJoinOrderDp(g, env);
  ASSERT_EQ(r.order.size(), 3u);
  EXPECT_EQ(r.order, (std::vector<int>{0, 1, 2}));
}

TEST(JoinOrderTest, GreedyProducesValidConnectedOrder) {
  PlanCostEnv env;
  std::mt19937 rng(13);
  JoinGraph g = RandomGraph(8, &rng);
  JoinOrderResult r = ChooseJoinOrderGreedy(g, env);
  ASSERT_EQ(r.order.size(), 8u);
  EXPECT_GE(r.cost, 0.0);  // JoinOrderCost rejects disconnected orders
  std::set<int> seen(r.order.begin(), r.order.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(JoinOrderTest, DisconnectedGraphHasNoOrder) {
  JoinGraph g;
  for (int i = 0; i < 3; ++i) {
    JoinGraphLeaf leaf;
    leaf.rows = 100;
    g.leaves.push_back(leaf);
  }
  g.edges.push_back(JoinGraphEdge{0, 1, 0, 0, 0.01});  // leaf 2 unreachable
  PlanCostEnv env;
  EXPECT_LT(ChooseJoinOrderDp(g, env).cost, 0.0);
  EXPECT_LT(ChooseJoinOrderGreedy(g, env).cost, 0.0);
}

// ---------------------------------------------------------------------------
// Planner + executor integration over a star schema
// ---------------------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    session_ =
        std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));
    std::mt19937 rng(5);

    Schema sales({{"cid", TypeKind::kInt64},
                  {"pid", TypeKind::kInt64},
                  {"sid", TypeKind::kInt64},
                  {"amt", TypeKind::kDouble}});
    std::vector<Row> srows;
    std::uniform_int_distribution<int> cid(0, 1999), pid(0, 499), sid(0, 99);
    for (int i = 0; i < 10000; ++i) {
      srows.push_back(Row({Value::Int64(cid(rng)), Value::Int64(pid(rng)),
                           Value::Int64(sid(rng)), Value::Double(i * 0.5)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("sales", sales, srows, 8).ok());

    // age uniform 0..99: "age < 1" is ~1% selective, far from the 1/3
    // default the planner assumes without statistics.
    Schema customers({{"ck", TypeKind::kInt64}, {"age", TypeKind::kInt64}});
    std::vector<Row> crows;
    std::uniform_int_distribution<int> age(0, 99);
    for (int i = 0; i < 2000; ++i) {
      crows.push_back(Row({Value::Int64(i), Value::Int64(age(rng))}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("customers", customers, crows, 4).ok());

    // price uniform 0..999: "price < 500" is ~50% selective.
    Schema products({{"pk", TypeKind::kInt64}, {"price", TypeKind::kInt64}});
    std::vector<Row> prows;
    std::uniform_int_distribution<int> price(0, 999);
    for (int i = 0; i < 500; ++i) {
      prows.push_back(Row({Value::Int64(i), Value::Int64(price(rng))}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("products", products, prows, 4).ok());

    Schema stores({{"sk", TypeKind::kInt64}, {"region", TypeKind::kInt64}});
    std::vector<Row> trows;
    for (int i = 0; i < 100; ++i) {
      trows.push_back(Row({Value::Int64(i), Value::Int64(i % 7)}));
    }
    ASSERT_TRUE(session_->CreateDfsTable("stores", stores, trows, 2).ok());
  }

  std::multiset<std::string> Rows(const QueryResult& r) {
    std::multiset<std::string> out;
    for (const Row& row : r.rows) out.insert(row.ToString());
    return out;
  }

  const std::string star_query_ =
      "SELECT amt, age, price FROM sales "
      "JOIN customers ON sales.cid = customers.ck "
      "JOIN products ON sales.pid = products.pk "
      "WHERE customers.age < 1 AND products.price < 500";

  // Four-way star: enough leaves that a mid-spine re-plan still has at
  // least two tables left to reorder after the first observation.
  const std::string star4_query_ =
      "SELECT amt, age, price, region FROM sales "
      "JOIN customers ON sales.cid = customers.ck "
      "JOIN products ON sales.pid = products.pk "
      "JOIN stores ON sales.sid = stores.sk "
      "WHERE customers.age < 1 AND products.price < 500";

  std::unique_ptr<SharkSession> session_;
};

TEST_F(PlannerTest, ExplainShowsEstimatedRowsAndCost) {
  auto ex = session_->Explain("SELECT amt FROM sales WHERE amt > 100.0");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_NE(ex->find("est_rows="), std::string::npos) << *ex;
  EXPECT_NE(ex->find("est_cost="), std::string::npos) << *ex;
}

TEST_F(PlannerTest, AnalyzeFlipsJoinOrderInExplain) {
  auto before = session_->Explain(star_query_);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  for (const char* t : {"sales", "customers", "products"}) {
    ASSERT_TRUE(session_->Sql(std::string("ANALYZE TABLE ") + t).ok());
  }
  auto after = session_->Explain(star_query_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // Without statistics both filters look 1/3-selective, so the smaller
  // products table is joined first. ANALYZE reveals age<1 keeps ~20
  // customers vs ~250 products, flipping the order: the customers scan now
  // prints before the products scan (deeper = joined earlier).
  size_t cust_before = before->find("customers");
  size_t prod_before = before->find("products");
  size_t cust_after = after->find("customers");
  size_t prod_after = after->find("products");
  ASSERT_NE(cust_before, std::string::npos);
  ASSERT_NE(prod_before, std::string::npos);
  EXPECT_GT(cust_before, prod_before) << *before;
  EXPECT_LT(cust_after, prod_after) << *after;
}

TEST_F(PlannerTest, CboAndForcedLeftDeepAgreeOnResults) {
  for (const char* t : {"sales", "customers", "products"}) {
    ASSERT_TRUE(session_->Sql(std::string("ANALYZE TABLE ") + t).ok());
  }
  session_->options().force_left_deep = true;
  auto naive = session_->Sql(star_query_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  session_->options().force_left_deep = false;
  auto cbo = session_->Sql(star_query_);
  ASSERT_TRUE(cbo.ok()) << cbo.status().ToString();
  EXPECT_EQ(Rows(*naive), Rows(*cbo));
}

TEST_F(PlannerTest, ExplainAnalyzeShowsEstimatedVsActualRows) {
  for (const char* t : {"sales", "customers", "products"}) {
    ASSERT_TRUE(session_->Sql(std::string("ANALYZE TABLE ") + t).ok());
  }
  auto r = session_->Sql("EXPLAIN ANALYZE " + star_query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->rows.empty());
  std::string text;
  for (const Row& row : r->rows) text += row.fields[0].str() + "\n";
  EXPECT_NE(text.find("est_rows="), std::string::npos) << text;
  EXPECT_NE(text.find("actual_rows="), std::string::npos) << text;
}

TEST_F(PlannerTest, StaleStatisticsTriggerMidQueryReplan) {
  for (const char* t : {"sales", "customers", "products", "stores"}) {
    ASSERT_TRUE(session_->Sql(std::string("ANALYZE TABLE ") + t).ok());
  }
  // Poison the customers statistics: claim 2 rows when the filter really
  // keeps ~20 of 2000. The DP then joins "tiny" customers first; the first
  // join observes the real size and re-plans the remaining tables.
  auto info = session_->catalog().Get("customers");
  ASSERT_TRUE(info.ok());
  Schema tiny_schema({{"ck", TypeKind::kInt64}, {"age", TypeKind::kInt64}});
  std::vector<Row> tiny;
  for (int i = 0; i < 2; ++i) {
    tiny.push_back(Row({Value::Int64(i), Value::Int64(0)}));
  }
  (*info)->column_statistics = std::make_shared<const TableStatistics>(
      BuildStatisticsFromRows(tiny_schema, tiny));

  session_->options().replan_factor = 3.0;
  auto r = session_->Sql(star4_query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->metrics.replans, 1);

  // Results stay correct despite the re-plan.
  session_->options().force_left_deep = true;
  auto naive = session_->Sql(star4_query_);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(Rows(*naive), Rows(*r));
}

TEST_F(PlannerTest, ReplanDisabledWhenFactorZero) {
  session_->options().replan_factor = 0.0;
  auto r = session_->Sql(star_query_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->metrics.replans, 0);
}

}  // namespace
}  // namespace shark
