// Replays the checked-in differential-testing corpus (tests/fuzz_corpus/)
// through the full harness: every case must agree across the Shark engine,
// the Hive baseline, the reference evaluator and all metamorphic variants.
// Each corpus file is a minimized reproduction of a bug this harness caught;
// a divergence here means a regression of one of those fixes.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/fuzz/fuzz_harness.h"

#ifndef SHARK_FUZZ_CORPUS_DIR
#error "SHARK_FUZZ_CORPUS_DIR must point at tests/fuzz_corpus"
#endif

namespace shark {
namespace {

std::vector<std::string> CorpusFiles() {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(SHARK_FUZZ_CORPUS_DIR)) {
    if (entry.is_regular_file()) files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzRegressionTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 4u);
}

TEST(FuzzRegressionTest, ReplayCorpus) {
  for (const std::string& file : CorpusFiles()) {
    std::ifstream in(file);
    ASSERT_TRUE(in) << "cannot open " << file;
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = fuzz::ParseCase(buf.str());
    ASSERT_TRUE(parsed.ok()) << file << ": " << parsed.status().ToString();
    fuzz::RunOutcome out = fuzz::RunCase(*parsed, fuzz::RunOptions{});
    EXPECT_TRUE(out.ok) << file << ": " << out.divergence;
    // Corpus cases are real queries, not parser-rejection fodder.
    EXPECT_FALSE(out.rejected) << file << ": " << out.rejection;
  }
}

// A small fixed-seed smoke sweep so tier-1 exercises the generator itself
// (schema/data/query synthesis, variant rendering, all three oracles). The
// big sweeps live in tools/ci.sh; this just has to catch wiring rot.
TEST(FuzzRegressionTest, GeneratedSeedsSmoke) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    fuzz::FuzzCase c = fuzz::GenerateCase(seed);
    // Serialization must round-trip to an identical run.
    auto reparsed = fuzz::ParseCase(fuzz::SerializeCase(c));
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": "
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed->sql, c.sql) << "seed " << seed;
    fuzz::RunOutcome out = fuzz::RunCase(*reparsed, fuzz::RunOptions{});
    EXPECT_TRUE(out.ok) << "seed " << seed << ": " << out.divergence;
  }
}

}  // namespace
}  // namespace shark
