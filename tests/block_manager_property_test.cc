// Property test: the BlockManager against a brute-force shadow model under
// randomized put/get/drop sequences. The shadow keeps one MRU->LRU list per
// node and replays the documented semantics literally; after every operation
// the real manager must agree exactly — which pins down that
//   * UsedBytes(node) never exceeds capacity,
//   * eviction removes blocks strictly in least-recently-touched order,
//   * replacing a block cached on another node leaks nothing (used_/lru_/
//     blocks_ stay consistent across the move).
#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rdd/block_manager.h"

namespace shark {
namespace {

BlockData MakeBlock(int tag) {
  return std::make_shared<const std::vector<int>>(std::vector<int>{tag});
}

/// Reference implementation: the LRU contract, written as simply as
/// possible (no iterators-into-lists cleverness).
class ShadowModel {
 public:
  ShadowModel(int num_nodes, uint64_t capacity)
      : capacity_(capacity), lru_(static_cast<size_t>(num_nodes)) {}

  bool Put(BlockKey key, uint64_t bytes, int node) {
    if (bytes > capacity_) return false;
    Remove(key);
    auto& node_lru = lru_[static_cast<size_t>(node)];
    uint64_t used = UsedBytes(node);
    if (used + bytes > capacity_) {
      uint64_t needed = used + bytes - capacity_;
      uint64_t freed = 0;
      while (freed < needed && !node_lru.empty()) {
        freed += node_lru.back().second;
        node_lru.pop_back();
      }
    }
    node_lru.emplace_front(key, bytes);
    return true;
  }

  void Touch(BlockKey key) {
    for (auto& node_lru : lru_) {
      for (auto it = node_lru.begin(); it != node_lru.end(); ++it) {
        if (it->first == key) {
          node_lru.splice(node_lru.begin(), node_lru, it);
          return;
        }
      }
    }
  }

  void DropNode(int node) { lru_[static_cast<size_t>(node)].clear(); }

  void DropRdd(int rdd_id) {
    for (auto& node_lru : lru_) {
      node_lru.remove_if(
          [rdd_id](const auto& kv) { return kv.first.rdd_id == rdd_id; });
    }
  }

  void Clear() {
    for (auto& node_lru : lru_) node_lru.clear();
  }

  uint64_t UsedBytes(int node) const {
    uint64_t total = 0;
    for (const auto& kv : lru_[static_cast<size_t>(node)]) total += kv.second;
    return total;
  }

  int Location(BlockKey key) const {
    for (size_t n = 0; n < lru_.size(); ++n) {
      for (const auto& kv : lru_[n]) {
        if (kv.first == key) return static_cast<int>(n);
      }
    }
    return -1;
  }

  size_t NumBlocks() const {
    size_t total = 0;
    for (const auto& node_lru : lru_) total += node_lru.size();
    return total;
  }

  std::vector<int> CachedPartitions(int rdd_id) const {
    std::vector<int> out;
    for (const auto& node_lru : lru_) {
      for (const auto& kv : node_lru) {
        if (kv.first.rdd_id == rdd_id) out.push_back(kv.first.partition);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  void Remove(BlockKey key) {
    for (auto& node_lru : lru_) {
      node_lru.remove_if([key](const auto& kv) { return kv.first == key; });
    }
  }

  uint64_t capacity_;
  // Per node, front = most recently used; (key, bytes).
  std::vector<std::list<std::pair<BlockKey, uint64_t>>> lru_;
};

struct PropertyConfig {
  int num_nodes;
  uint64_t capacity;
  int rdds;
  int partitions;
  uint64_t max_block;  // may exceed capacity to exercise rejection
};

void CheckAgreement(BlockManager* bm, const ShadowModel& shadow,
                    const PropertyConfig& cfg, int step) {
  uint64_t total = 0;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    ASSERT_LE(bm->UsedBytes(n), cfg.capacity) << "step " << step;
    ASSERT_EQ(bm->UsedBytes(n), shadow.UsedBytes(n))
        << "node " << n << " step " << step;
    total += bm->UsedBytes(n);
  }
  ASSERT_EQ(bm->TotalUsedBytes(), total) << "step " << step;
  ASSERT_EQ(bm->NumBlocks(), shadow.NumBlocks()) << "step " << step;
  for (int r = 0; r < cfg.rdds; ++r) {
    ASSERT_EQ(bm->CachedPartitions(r), shadow.CachedPartitions(r))
        << "rdd " << r << " step " << step;
    for (int p = 0; p < cfg.partitions; ++p) {
      int loc = shadow.Location(BlockKey{r, p});
      ASSERT_EQ(bm->Location(r, p), loc)
          << "block (" << r << "," << p << ") step " << step;
      const CachedBlock* peeked = bm->Peek(r, p);
      ASSERT_EQ(peeked != nullptr, loc >= 0) << "step " << step;
      if (peeked != nullptr) ASSERT_EQ(peeked->node, loc) << "step " << step;
    }
  }
}

void RunRandomizedTrace(const PropertyConfig& cfg, uint64_t seed, int steps) {
  BlockManager bm(cfg.num_nodes, cfg.capacity);
  ShadowModel shadow(cfg.num_nodes, cfg.capacity);
  Random rng(seed);
  for (int step = 0; step < steps; ++step) {
    int rdd = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cfg.rdds)));
    int part = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(cfg.partitions)));
    int node = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(cfg.num_nodes)));
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // put (the workhorse; biased high to force evictions)
        uint64_t bytes = 1 + rng.Uniform(cfg.max_block);
        bool ok = bm.Put(rdd, part, MakeBlock(step), bytes, node);
        bool shadow_ok = shadow.Put(BlockKey{rdd, part}, bytes, node);
        ASSERT_EQ(ok, shadow_ok) << "step " << step;
        break;
      }
      case 4:
      case 5:
      case 6: {  // get (touches LRU)
        const CachedBlock* b = bm.Get(rdd, part);
        ASSERT_EQ(b != nullptr, shadow.Location(BlockKey{rdd, part}) >= 0)
            << "step " << step;
        shadow.Touch(BlockKey{rdd, part});
        break;
      }
      case 7: {  // touch replay path
        bm.Touch(rdd, part);
        shadow.Touch(BlockKey{rdd, part});
        break;
      }
      case 8: {  // node failure
        bm.DropNode(node);
        shadow.DropNode(node);
        break;
      }
      case 9: {  // uncache
        bm.DropRdd(rdd);
        shadow.DropRdd(rdd);
        break;
      }
    }
    CheckAgreement(&bm, shadow, cfg, step);
  }
  bm.Clear();
  shadow.Clear();
  CheckAgreement(&bm, shadow, cfg, steps);
}

TEST(BlockManagerPropertyTest, TinyCapacityConstantChurn) {
  // Capacity fits ~2 median blocks: almost every put evicts.
  RunRandomizedTrace({/*num_nodes=*/3, /*capacity=*/100, /*rdds=*/2,
                      /*partitions=*/4, /*max_block=*/60},
                     /*seed=*/1, /*steps=*/600);
}

TEST(BlockManagerPropertyTest, CrossNodeReplacementNeverLeaks) {
  // Few keys, many nodes: the same block is repeatedly re-put on different
  // nodes, exercising the replace-in-place path across nodes.
  RunRandomizedTrace({/*num_nodes=*/6, /*capacity=*/500, /*rdds=*/2,
                      /*partitions=*/2, /*max_block=*/400},
                     /*seed=*/2, /*steps=*/600);
}

TEST(BlockManagerPropertyTest, OversizedPutsRejected) {
  // max_block is 3x capacity: a third of puts must be rejected untouched.
  RunRandomizedTrace({/*num_nodes=*/2, /*capacity=*/64, /*rdds=*/3,
                      /*partitions=*/3, /*max_block=*/192},
                     /*seed=*/3, /*steps=*/500);
}

TEST(BlockManagerPropertyTest, ManySeedsShortTraces) {
  for (uint64_t seed = 10; seed < 30; ++seed) {
    RunRandomizedTrace({/*num_nodes=*/4, /*capacity=*/200, /*rdds=*/3,
                        /*partitions=*/5, /*max_block=*/120},
                       seed, /*steps=*/120);
  }
}

}  // namespace
}  // namespace shark
