#include <gtest/gtest.h>

#include "sql/expr.h"
#include "sql/parser.h"

namespace shark {
namespace {

/// Binds parsed column refs a,b,c,s to slots 0..3 for evaluation tests.
ExprPtr Bind(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      int slot = e->name == "a" ? 0 : e->name == "b" ? 1 : e->name == "c" ? 2 : 3;
      e->kind = ExprKind::kSlot;
      e->slot = slot;
    }
    for (auto& ch : e->children) bind(ch.get());
  };
  bind(parsed->get());
  return *parsed;
}

Row TestRow() {
  return Row({Value::Int64(10), Value::Double(2.5), Value::String("US"),
              Value::Null()});
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalExpr(*Bind("a + 5"), TestRow(), nullptr), Value::Int64(15));
  EXPECT_EQ(EvalExpr(*Bind("a * 2"), TestRow(), nullptr), Value::Int64(20));
  EXPECT_EQ(EvalExpr(*Bind("a - 3"), TestRow(), nullptr), Value::Int64(7));
  EXPECT_EQ(EvalExpr(*Bind("a % 3"), TestRow(), nullptr), Value::Int64(1));
  EXPECT_EQ(EvalExpr(*Bind("a / 4"), TestRow(), nullptr), Value::Double(2.5));
  EXPECT_EQ(EvalExpr(*Bind("a + b"), TestRow(), nullptr), Value::Double(12.5));
  EXPECT_EQ(EvalExpr(*Bind("-a"), TestRow(), nullptr), Value::Int64(-10));
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(EvalExpr(*Bind("a / 0"), TestRow(), nullptr).is_null());
  EXPECT_TRUE(EvalExpr(*Bind("a % 0"), TestRow(), nullptr).is_null());
}

TEST(ExprEvalTest, NullPropagation) {
  EXPECT_TRUE(EvalExpr(*Bind("s + 1"), TestRow(), nullptr).is_null());
  EXPECT_TRUE(EvalExpr(*Bind("s = 1"), TestRow(), nullptr).is_null());
  EXPECT_FALSE(EvalPredicate(*Bind("s = 1"), TestRow(), nullptr));
}

TEST(ExprEvalTest, ThreeValuedLogic) {
  // NULL AND false = false; NULL AND true = NULL; NULL OR true = true.
  EXPECT_EQ(EvalExpr(*Bind("s = 1 AND a = 999"), TestRow(), nullptr),
            Value::Bool(false));
  EXPECT_TRUE(EvalExpr(*Bind("s = 1 AND a = 10"), TestRow(), nullptr).is_null());
  EXPECT_EQ(EvalExpr(*Bind("s = 1 OR a = 10"), TestRow(), nullptr),
            Value::Bool(true));
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(EvalPredicate(*Bind("a > 5"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("b <= 2.5"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("c = 'US'"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("a <> 11"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("a BETWEEN 5 AND 15"), TestRow(), nullptr));
  EXPECT_FALSE(EvalPredicate(*Bind("a NOT BETWEEN 5 AND 15"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("c IN ('UK','US')"), TestRow(), nullptr));
  EXPECT_TRUE(EvalPredicate(*Bind("s IS NULL"), TestRow(), nullptr));
  EXPECT_FALSE(EvalPredicate(*Bind("a IS NULL"), TestRow(), nullptr));
}

TEST(ExprEvalTest, CaseWhen) {
  auto e = Bind("CASE WHEN a > 100 THEN 'big' WHEN a > 5 THEN 'mid' "
                "ELSE 'small' END");
  EXPECT_EQ(EvalExpr(*e, TestRow(), nullptr), Value::String("mid"));
}

TEST(ExprEvalTest, BuiltinFunctions) {
  EXPECT_EQ(EvalExpr(*Bind("SUBSTR(c, 1, 1)"), TestRow(), nullptr),
            Value::String("U"));
  EXPECT_EQ(EvalExpr(*Bind("LOWER(c)"), TestRow(), nullptr),
            Value::String("us"));
  EXPECT_EQ(EvalExpr(*Bind("LENGTH(c)"), TestRow(), nullptr), Value::Int64(2));
  EXPECT_EQ(EvalExpr(*Bind("ABS(0 - a)"), TestRow(), nullptr),
            Value::Int64(10));
  EXPECT_EQ(EvalExpr(*Bind("CONCAT(c, '-', a)"), TestRow(), nullptr),
            Value::String("US-10"));
}

TEST(ExprEvalTest, SubstrMatchesPavloQuery) {
  Row r({Value::String("123.45.67.89")});
  auto e = ParseExpression("SUBSTR(ip, 1, 7)");
  ASSERT_TRUE(e.ok());
  (*e)->children[0]->kind = ExprKind::kSlot;
  (*e)->children[0]->slot = 0;
  EXPECT_EQ(EvalExpr(**e, r, nullptr), Value::String("123.45."));
}

TEST(ExprEvalTest, YearFunction) {
  Row r({*Value::ParseDate("2000-06-15")});
  auto e = ParseExpression("YEAR(d)");
  ASSERT_TRUE(e.ok());
  (*e)->children[0]->kind = ExprKind::kSlot;
  (*e)->children[0]->slot = 0;
  EXPECT_EQ(EvalExpr(**e, r, nullptr), Value::Int64(2000));
}

TEST(ExprEvalTest, UdfDispatch) {
  UdfRegistry udfs;
  ASSERT_TRUE(udfs.Register("MY_DOUBLE",
                            {[](const std::vector<Value>& args) {
                               return Value::Double(args[0].AsDouble() * 2);
                             },
                             TypeKind::kDouble,
                             3.0})
                  .ok());
  EXPECT_NE(udfs.Lookup("my_double"), nullptr);
  auto e = Bind("MY_DOUBLE(a)");
  EXPECT_EQ(EvalExpr(*e, TestRow(), &udfs), Value::Double(20.0));
}

TEST(ExprEvalTest, UdfDuplicateRegistrationFails) {
  UdfRegistry udfs;
  UdfRegistry::UdfInfo info{[](const std::vector<Value>&) { return Value::Null(); },
                            TypeKind::kNull, 1.0};
  EXPECT_TRUE(udfs.Register("f", info).ok());
  EXPECT_FALSE(udfs.Register("F", info).ok());
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("index.html", "%.html"));
  EXPECT_TRUE(LikeMatch("index.html", "index%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_TRUE(LikeMatch("a.b.c", "a%c"));
}

TEST(ConjunctTest, SplitAndCombine) {
  auto e = Bind("a > 1 AND b < 2 AND c = 'US'");
  auto conjuncts = SplitConjuncts(e);
  EXPECT_EQ(conjuncts.size(), 3u);
  auto combined = CombineConjuncts(conjuncts);
  Row r = TestRow();
  EXPECT_EQ(EvalPredicate(*e, r, nullptr), EvalPredicate(*combined, r, nullptr));
}

TEST(ConjunctTest, OrNotSplit) {
  auto e = Bind("a > 1 OR b < 2");
  EXPECT_EQ(SplitConjuncts(e).size(), 1u);
}

TEST(ExprUtilTest, CollectSlotsAndRemap) {
  auto e = Bind("a + b > c");
  std::set<int> slots;
  CollectSlots(*e, &slots);
  EXPECT_EQ(slots, (std::set<int>{0, 1, 2}));
  auto remapped = RemapSlots(*e, {{0, 10}, {2, 12}});
  slots.clear();
  CollectSlots(*remapped, &slots);
  EXPECT_EQ(slots, (std::set<int>{10, 1, 12}));
}

TEST(ExprUtilTest, ContainsAggregate) {
  EXPECT_TRUE(ContainsAggregate(*Bind("SUM(a) + 1")));
  EXPECT_FALSE(ContainsAggregate(*Bind("a + 1")));
}

TEST(ExprUtilTest, StructuralEquality) {
  EXPECT_TRUE(Bind("a + 1")->Equals(*Bind("a + 1")));
  EXPECT_FALSE(Bind("a + 1")->Equals(*Bind("a + 2")));
  EXPECT_FALSE(Bind("a + 1")->Equals(*Bind("b + 1")));
  EXPECT_TRUE(Bind("SUBSTR(c, 1, 7)")->Equals(*Bind("SUBSTR(c, 1, 7)")));
}

}  // namespace
}  // namespace shark
