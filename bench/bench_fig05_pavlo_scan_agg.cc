// Reproduces Figure 5 of the paper: selection and aggregation query runtimes
// from the Pavlo et al. benchmark, comparing Shark (in-memory), Shark (disk)
// and Hive on the same warehouse. Also measures the host wall-clock of the
// cached queries with the vectorized batch path on vs off (virtual seconds
// must not move — only how fast the host simulates them).
#include <cstring>

#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

/// Cached-query wall-clock with the batch path on vs off. `bench` names the
/// BENCH_vector.json lines ("fig05_vector" full-size, "fig05_vector_smoke"
/// CI-sized); the tables must already be cached.
void RunVectorComparison(SharkSession* session, const std::string& bench,
                         const std::string& selection,
                         const std::string& agg_coarse) {
  std::printf("\n---- vectorized batch path: host wall-clock, cached ----\n");
  auto report = [&](const char* label, std::pair<double, double> ms) {
    std::printf("  %-12s on %8.1fms / off %8.1fms -> %.2fx host speedup, "
                "virtual seconds unchanged\n",
                label, ms.first, ms.second, Ratio(ms.second, ms.first));
  };
  report("selection", CompareVectorized(session, bench, "selection", selection));
  report("agg_coarse", CompareVectorized(session, bench, "agg_coarse",
                                         agg_coarse));
}

}  // namespace

int main(int argc, char** argv) {
  // --vector-smoke: CI-sized run of only the vectorized on/off comparison
  // (shrunken tables; lines feed tools/bench_gate's vector_floors).
  bool vector_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vector-smoke") == 0) vector_smoke = true;
  }

  PavloConfig data;
  if (vector_smoke) {
    data.rankings_rows = 30000;
    data.uservisits_rows = 60000;
    data.rankings_blocks = 10;
    data.uservisits_blocks = 20;
    auto session = MakeSharkSession(data.VirtualScale(), 20);
    if (!GeneratePavloTables(session.get(), data).ok()) return 1;
    if (!session->CacheTable("rankings").ok()) return 1;
    if (!session->CacheTable("uservisits").ok()) return 1;
    RunVectorComparison(session.get(), "fig05_vector_smoke",
                        PavloSelectionQuery(9900),
                        PavloAggregationCoarseQuery());
    return 0;
  }

  PrintHeader("Figure 5 - Pavlo benchmark: selection & aggregation",
              "Shark answers the selection ~80x and the aggregations 20-80x "
              "faster than Hive; in-memory beats disk");

  auto session = MakeSharkSession(data.VirtualScale());
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;
  std::printf("data: rankings=%lld rows, uservisits=%lld rows, "
              "virtual scale x%.0f (paper: 1.8B / 15.5B rows)\n",
              static_cast<long long>(data.rankings_rows),
              static_cast<long long>(data.uservisits_rows),
              data.VirtualScale());

  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  const std::string selection = PavloSelectionQuery(9900);
  const std::string agg_fine = PavloAggregationFineQuery();
  const std::string agg_coarse = PavloAggregationCoarseQuery();

  // Disk first (before caching), then load the memstore.
  double sel_disk = TimedRun(session.get(), selection);
  double fine_disk = TimedRun(session.get(), agg_fine);
  double coarse_disk = TimedRun(session.get(), agg_coarse);

  if (!session->CacheTable("rankings").ok()) return 1;
  if (!session->CacheTable("uservisits").ok()) return 1;

  double sel_mem = TimedRun(session.get(), selection);
  double fine_mem = TimedRun(session.get(), agg_fine);
  QueryResult coarse_result = MustRun(session.get(), agg_coarse);
  double coarse_mem = coarse_result.metrics.virtual_seconds;
  WriteChromeTrace("fig05_pavlo_scan_agg", "agg_coarse_cached", coarse_result,
                   "fig05_trace.json");

  double sel_hive = TimedRun(hive.get(), selection);
  double fine_hive = TimedRun(hive.get(), agg_fine);
  double coarse_hive = TimedRun(hive.get(), agg_coarse);

  PrintBars("Selection (WHERE pageRank > X)",
            {{"Shark", sel_mem, ""},
             {"Shark (disk)", sel_disk, ""},
             {"Hive", sel_hive, ""}},
            "Shark 1.1s vs Hive ~80x slower");
  PrintBars("Aggregation, many groups (sourceIP)",
            {{"Shark", fine_mem, ""},
             {"Shark (disk)", fine_disk, ""},
             {"Hive", fine_hive, ""}},
            "Shark 147s, Hive ~2500s at 2.5M groups");
  PrintBars("Aggregation, ~1K groups (SUBSTR(sourceIP,1,7))",
            {{"Shark", coarse_mem, ""},
             {"Shark (disk)", coarse_disk, ""},
             {"Hive", coarse_hive, ""}},
            "Shark 32s, Hive ~600s at 1K groups");

  std::printf("\nspeedups over Hive: selection %.0fx (mem) / %.1fx (disk); "
              "many-group agg %.1fx; 1K-group agg %.1fx\n",
              Ratio(sel_hive, sel_mem), Ratio(sel_hive, sel_disk),
              Ratio(fine_hive, fine_mem), Ratio(coarse_hive, coarse_mem));

  RunVectorComparison(session.get(), "fig05_vector", selection, agg_coarse);
  return 0;
}
