// Reproduces Figure 5 of the paper: selection and aggregation query runtimes
// from the Pavlo et al. benchmark, comparing Shark (in-memory), Shark (disk)
// and Hive on the same warehouse.
#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 5 - Pavlo benchmark: selection & aggregation",
              "Shark answers the selection ~80x and the aggregations 20-80x "
              "faster than Hive; in-memory beats disk");

  PavloConfig data;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;
  std::printf("data: rankings=%lld rows, uservisits=%lld rows, "
              "virtual scale x%.0f (paper: 1.8B / 15.5B rows)\n",
              static_cast<long long>(data.rankings_rows),
              static_cast<long long>(data.uservisits_rows),
              data.VirtualScale());

  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  const std::string selection = PavloSelectionQuery(9900);
  const std::string agg_fine = PavloAggregationFineQuery();
  const std::string agg_coarse = PavloAggregationCoarseQuery();

  // Disk first (before caching), then load the memstore.
  double sel_disk = TimedRun(session.get(), selection);
  double fine_disk = TimedRun(session.get(), agg_fine);
  double coarse_disk = TimedRun(session.get(), agg_coarse);

  if (!session->CacheTable("rankings").ok()) return 1;
  if (!session->CacheTable("uservisits").ok()) return 1;

  double sel_mem = TimedRun(session.get(), selection);
  double fine_mem = TimedRun(session.get(), agg_fine);
  QueryResult coarse_result = MustRun(session.get(), agg_coarse);
  double coarse_mem = coarse_result.metrics.virtual_seconds;
  WriteChromeTrace("fig05_pavlo_scan_agg", "agg_coarse_cached", coarse_result,
                   "fig05_trace.json");

  double sel_hive = TimedRun(hive.get(), selection);
  double fine_hive = TimedRun(hive.get(), agg_fine);
  double coarse_hive = TimedRun(hive.get(), agg_coarse);

  PrintBars("Selection (WHERE pageRank > X)",
            {{"Shark", sel_mem, ""},
             {"Shark (disk)", sel_disk, ""},
             {"Hive", sel_hive, ""}},
            "Shark 1.1s vs Hive ~80x slower");
  PrintBars("Aggregation, many groups (sourceIP)",
            {{"Shark", fine_mem, ""},
             {"Shark (disk)", fine_disk, ""},
             {"Hive", fine_hive, ""}},
            "Shark 147s, Hive ~2500s at 2.5M groups");
  PrintBars("Aggregation, ~1K groups (SUBSTR(sourceIP,1,7))",
            {{"Shark", coarse_mem, ""},
             {"Shark (disk)", coarse_disk, ""},
             {"Hive", coarse_hive, ""}},
            "Shark 32s, Hive ~600s at 1K groups");

  std::printf("\nspeedups over Hive: selection %.0fx (mem) / %.1fx (disk); "
              "many-group agg %.1fx; 1K-group agg %.1fx\n",
              Ratio(sel_hive, sel_mem), Ratio(sel_hive, sel_disk),
              Ratio(fine_hive, fine_mem), Ratio(coarse_hive, coarse_mem));
  return 0;
}
