// Reproduces Figure 8: run-time join strategy selection via partial DAG
// execution. The query joins lineitem with supplier under a selective UDF
// whose selectivity no static optimizer can know (§3.1.1/§6.3.2).
//   Static           — compile-time plan: shuffle join of both big tables.
//   Adaptive         — pre-shuffle both, observe the filtered supplier is
//                      tiny, switch to a map join (wasted lineitem wave).
//   Static+Adaptive  — static hints say supplier is the likely-small side;
//                      pre-shuffle only it, then broadcast. ~3x over static.
#include <cstring>

#include "bench/bench_common.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

Status RegisterSelectiveUdf(SharkSession* session) {
  // Highly selective, like the paper's (1000 of 10M suppliers): keeps about
  // 1 in 2000 addresses, so the filtered supplier side is broadcastable while
  // its unfiltered table is far too big for a static optimizer to risk it.
  return session->udfs().Register(
      "SOME_UDF",
      {[](const std::vector<Value>& args) {
         return Value::Bool(args[0].Hash() % 2000 == 0);
       },
       TypeKind::kBool, 6.0});
}

double RunWith(SharkSession* session, JoinOptimization mode,
               std::string* strategy) {
  session->options().join_opt = mode;
  QueryResult r = MustRun(session, TpchUdfJoinQuery());
  *strategy = r.metrics.join_strategy;
  return r.metrics.virtual_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-sized run (shrunken tables, 20 nodes) with identical query
  // shapes; its BENCH_*.json lines feed tools/bench_gate and the timeline
  // schema validation. --metrics-out <path> overrides the timeline file.
  // --no-vectorized: force the scalar row path; the BENCH lines must still
  // match the committed baseline byte-for-byte in virtual seconds (CI runs
  // the smoke both ways to prove the batch path never moves virtual time).
  bool smoke = false;
  bool vectorized = true;
  std::string metrics_out = "fig08_metrics.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-vectorized") == 0) {
      vectorized = false;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  PrintHeader("Figure 8 - Join strategies chosen by optimizers",
              "static+adaptive (PDE with static hints) ~3x faster than a "
              "static shuffle join");

  TpchConfig data;
  int num_nodes = 100;
  if (smoke) {
    data.lineitem_rows = 60000;
    data.supplier_rows = 4000;
    data.orders_rows = 15000;
    data.lineitem_blocks = 80;
    data.supplier_blocks = 8;
    data.orders_blocks = 10;
    num_nodes = 20;
  }
  double vscale = data.VirtualScaleFor(6e9);  // 1TB point, as in the paper
  auto session = MakeSharkSession(vscale, num_nodes);
  session->options().vectorized = vectorized;
  if (!GenerateTpchTables(session.get(), data).ok()) return 1;
  if (!RegisterSelectiveUdf(session.get()).ok()) return 1;
  if (!session->CacheTable("lineitem").ok()) return 1;
  if (!session->CacheTable("supplier").ok()) return 1;

  std::string s_static, s_adaptive, s_both;
  double t_static = RunWith(session.get(), JoinOptimization::kStatic, &s_static);
  double t_adaptive =
      RunWith(session.get(), JoinOptimization::kAdaptive, &s_adaptive);
  double t_both =
      RunWith(session.get(), JoinOptimization::kStaticAdaptive, &s_both);

  PrintBars("lineitem JOIN supplier WHERE SOME_UDF(S_ADDRESS)",
            {{"Static + Adaptive", t_both, s_both},
             {"Adaptive", t_adaptive, s_adaptive},
             {"Static", t_static, s_static}},
            "paper: ~35s / ~65s / ~105s");
  std::printf("\nimprovement over static: adaptive %.2fx, "
              "static+adaptive %.2fx (paper: ~3x)\n",
              Ratio(t_static, t_adaptive), Ratio(t_static, t_both));

  const std::string bench = smoke ? "fig08_smoke" : "fig08";
  EmitParallelJson(bench, "static", 0, 0.0, t_static);
  EmitParallelJson(bench, "adaptive", 0, 0.0, t_adaptive);
  EmitParallelJson(bench, "static_adaptive", 0, 0.0, t_both);
  EmitMetricsJson(bench, "pde_join", session->context(), metrics_out);
  return 0;
}
