// Reproduces Figure 8: run-time join strategy selection via partial DAG
// execution. The query joins lineitem with supplier under a selective UDF
// whose selectivity no static optimizer can know (§3.1.1/§6.3.2).
//   Static           — compile-time plan: shuffle join of both big tables.
//   Adaptive         — pre-shuffle both, observe the filtered supplier is
//                      tiny, switch to a map join (wasted lineitem wave).
//   Static+Adaptive  — static hints say supplier is the likely-small side;
//                      pre-shuffle only it, then broadcast. ~3x over static.
#include "bench/bench_common.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

Status RegisterSelectiveUdf(SharkSession* session) {
  // Highly selective, like the paper's (1000 of 10M suppliers): keeps about
  // 1 in 2000 addresses, so the filtered supplier side is broadcastable while
  // its unfiltered table is far too big for a static optimizer to risk it.
  return session->udfs().Register(
      "SOME_UDF",
      {[](const std::vector<Value>& args) {
         return Value::Bool(args[0].Hash() % 2000 == 0);
       },
       TypeKind::kBool, 6.0});
}

double RunWith(SharkSession* session, JoinOptimization mode,
               std::string* strategy) {
  session->options().join_opt = mode;
  QueryResult r = MustRun(session, TpchUdfJoinQuery());
  *strategy = r.metrics.join_strategy;
  return r.metrics.virtual_seconds;
}

}  // namespace

int main() {
  PrintHeader("Figure 8 - Join strategies chosen by optimizers",
              "static+adaptive (PDE with static hints) ~3x faster than a "
              "static shuffle join");

  TpchConfig data;
  double vscale = data.VirtualScaleFor(6e9);  // 1TB point, as in the paper
  auto session = MakeSharkSession(vscale);
  if (!GenerateTpchTables(session.get(), data).ok()) return 1;
  if (!RegisterSelectiveUdf(session.get()).ok()) return 1;
  if (!session->CacheTable("lineitem").ok()) return 1;
  if (!session->CacheTable("supplier").ok()) return 1;

  std::string s_static, s_adaptive, s_both;
  double t_static = RunWith(session.get(), JoinOptimization::kStatic, &s_static);
  double t_adaptive =
      RunWith(session.get(), JoinOptimization::kAdaptive, &s_adaptive);
  double t_both =
      RunWith(session.get(), JoinOptimization::kStaticAdaptive, &s_both);

  PrintBars("lineitem JOIN supplier WHERE SOME_UDF(S_ADDRESS)",
            {{"Static + Adaptive", t_both, s_both},
             {"Adaptive", t_adaptive, s_adaptive},
             {"Static", t_static, s_static}},
            "paper: ~35s / ~65s / ~105s");
  std::printf("\nimprovement over static: adaptive %.2fx, "
              "static+adaptive %.2fx (paper: ~3x)\n",
              Ratio(t_static, t_adaptive), Ratio(t_static, t_both));
  return 0;
}
