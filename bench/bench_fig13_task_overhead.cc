// Reproduces Figure 13: job execution time as a function of the number of
// reduce tasks, for Hadoop and for Spark/Shark. Hadoop's multi-second
// per-task overhead makes large task counts catastrophic and small counts
// skew-prone; Spark's ~5ms tasks keep the curve flat, so one can always
// over-partition (§7 "Task Scheduling Cost").
#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 13 - Task launching overhead",
              "Hadoop runtime explodes with task count; Spark stays flat");

  // A moderate (~60GB virtual) job so scheduling overhead is visible next
  // to the data-processing time, as in the paper's micro-benchmark.
  PavloConfig data;
  data.uservisits_rows = 1000000;
  data.uservisits_blocks = 400;
  auto session = MakeSharkSession(500.0);
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;
  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  // Isolate the reducer-count effect: fixed reducer counts, no PDE.
  session->options().pde = false;

  const std::string query = PavloAggregationFineQuery();
  const int kTaskCounts[] = {8, 50, 100, 200, 500, 1000, 2000, 5000};

  std::printf("\n%12s %18s %18s\n", "reducers", "Hadoop (s)", "Spark (s)");
  for (int n : kTaskCounts) {
    hive->options().static_reducers = n;
    hive->options().bytes_per_reducer = 0;
    session->options().static_reducers = n;
    double hadoop = TimedRun(hive.get(), query);
    double spark = TimedRun(session.get(), query);
    std::printf("%12d %18.1f %18.2f\n", n, hadoop, spark);
  }
  std::printf("\npaper: Hadoop rises from ~1000s to ~6000s over this range "
              "while Spark stays in the tens of seconds and slowly "
              "improves.\n");
  return 0;
}
