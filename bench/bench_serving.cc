// Serving benchmark for the multi-session front-end: an open-loop arrival
// sweep (clients x arrival rate) over the JobManager's admission control,
// reporting p50/p99 query latency and the saturation QPS, plus a loopback
// mode that drives the same query mix through a real shark_server TCP
// socket with concurrent client connections.
//
//   bench_serving             full sweep + loopback
//   bench_serving --smoke     small sweep + loopback (ci.sh serving phase)
//   bench_serving --loopback  loopback only
//
// The sweep is deterministic: arrivals come from a fixed-seed RNG and all
// latencies are virtual-time observables, so every line is bit-identical
// across runs and host thread counts. The loopback phase is wall-clock
// ordered (real sockets), so only its counts are gate-checked.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "rdd/job_manager.h"
#include "server/client.h"
#include "server/demo_dataset.h"
#include "server/server.h"

using namespace shark;         // NOLINT(build/namespaces)
using namespace shark::bench;  // NOLINT(build/namespaces)

namespace {

const char* kQueryMix[] = {
    "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300",
    "SELECT avgDuration, COUNT(*) FROM rankings GROUP BY avgDuration",
    "SELECT sourceIP, SUM(adRevenue) FROM visits GROUP BY sourceIP",
    "SELECT COUNT(*) FROM visits WHERE adRevenue > 2.0",
};
constexpr int kMixSize = 4;

std::shared_ptr<SharkSession> MakeServingSession() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.seed = 42;
  auto session =
      std::make_shared<SharkSession>(std::make_shared<ClusterContext>(cfg));
  Status s = LoadDemoDataset(session.get(), /*rankings_rows=*/400,
                             /*visits_rows=*/1200);
  if (!s.ok()) {
    std::fprintf(stderr, "dataset load failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return session;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  if (idx > 0) --idx;
  return v[std::min(idx, v.size() - 1)];
}

struct SweepPoint {
  int sessions = 0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double queued_frac = 0.0;
  uint64_t completed_counter = 0;  // cross-check from cluster metrics
};

/// One open-loop configuration: `num_queries` arrivals with exponential
/// inter-arrival times at `offered_qps` (virtual time), tagged round-robin
/// to `sessions` logical clients; heavier clients get a larger fair-share
/// weight and every 7th query declares a working-set demand so admission
/// control actually queues under pressure.
SweepPoint RunSweepPoint(int sessions, double offered_qps, int num_queries,
                         uint32_t seed, bool collect_query_metrics = true) {
  auto session = MakeServingSession();
  ClusterContext& ctx = session->context();
  uint64_t headroom = ctx.memory_manager().AdmissionHeadroomBytes();

  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(offered_qps);
  std::vector<JobSpec> specs(static_cast<size_t>(num_queries));
  double at = 0.0;
  for (int i = 0; i < num_queries; ++i) {
    at += gap(rng);
    JobSpec& spec = specs[static_cast<size_t>(i)];
    int client = i % sessions;
    spec.label = "c" + std::to_string(client) + "#" + std::to_string(i);
    spec.query_id = "q" + std::to_string(i);
    spec.session = "c" + std::to_string(client);
    spec.arrival_vtime = at;
    spec.weight = 1.0 + (client % 2);  // half the clients are "premium"
    if (i % 7 == 3) spec.mem_demand_bytes = headroom / 3;
    std::string sql = kQueryMix[i % kMixSize];
    SharkSession* sp = session.get();
    spec.body = [sp, sql]() -> Status { return sp->Sql(sql).status(); };
  }

  JobManager::Options jopts;
  jopts.collect_query_metrics = collect_query_metrics;
  JobManager jm(&ctx, jopts);
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));

  SweepPoint point;
  point.sessions = sessions;
  point.offered_qps = offered_qps;
  std::vector<double> latencies;
  double first_arrival = 1e300, last_finish = 0.0;
  int queued = 0;
  for (const JobOutcome& o : outcomes) {
    if (!o.status.ok()) {
      std::fprintf(stderr, "sweep query failed: %s\n",
                   o.status.ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(o.latency());
    first_arrival = std::min(first_arrival, o.arrival_vtime);
    last_finish = std::max(last_finish, o.finish_vtime);
    if (o.queued) queued++;
  }
  double window = last_finish - first_arrival;
  point.achieved_qps = window > 0 ? outcomes.size() / window : 0.0;
  point.p50 = Percentile(latencies, 0.50);
  point.p99 = Percentile(latencies, 0.99);
  point.queued_frac =
      static_cast<double>(queued) / static_cast<double>(outcomes.size());
  for (const auto& [name, value] :
       ctx.metrics().registry().CounterSnapshot()) {
    if (name == "shark_jobs_completed_total") point.completed_counter = value;
  }
  return point;
}

void EmitSweepJson(const SweepPoint& p) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("serving");
  w.Key("mode").String("sweep");
  w.Key("sessions").Int(p.sessions);
  w.Key("offered_qps").FixedDouble(p.offered_qps, 3);
  w.Key("achieved_qps").FixedDouble(p.achieved_qps, 6);
  w.Key("p50_latency").FixedDouble(p.p50, 6);
  w.Key("p99_latency").FixedDouble(p.p99, 6);
  w.Key("queued_frac").FixedDouble(p.queued_frac, 4);
  w.Key("jobs_completed").UInt(p.completed_counter);
  w.EndObject();
  std::printf("BENCH_serving.json %s\n", w.str().c_str());
}

/// Drives `clients` concurrent SharkClient connections through a real
/// shark_server on a loopback socket; each issues `queries_per_client`
/// queries from the mix. Latencies are still virtual-time (from the reply
/// header), but arrival interleaving is wall-clock, so only counts and
/// percentile sanity are gated.
void RunLoopback(int clients, int queries_per_client) {
  SharkServer::Options opts;
  opts.max_queries_per_connection =
      static_cast<uint64_t>(queries_per_client) + 2;  // quota headroom
  SharkServer server(MakeServingSession(), opts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::vector<int> ok_counts(static_cast<size_t>(clients), 0);
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SharkClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      if (!client.SetWeight(1.0 + (c % 2)).ok()) return;
      for (int q = 0; q < queries_per_client; ++q) {
        auto r = client.Query(kQueryMix[(c + q) % kMixSize]);
        if (!r.ok()) {
          std::fprintf(stderr, "loopback query failed: %s\n",
                       r.status().ToString().c_str());
          return;
        }
        latencies[static_cast<size_t>(c)].push_back(r->virtual_seconds +
                                                    r->queue_delay);
        ok_counts[static_cast<size_t>(c)]++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_ms = timer.ElapsedMs();
  uint64_t total_queries = server.total_queries();
  server.Stop();

  std::vector<double> all;
  int ok = 0;
  for (int c = 0; c < clients; ++c) {
    ok += ok_counts[static_cast<size_t>(c)];
    all.insert(all.end(), latencies[static_cast<size_t>(c)].begin(),
               latencies[static_cast<size_t>(c)].end());
  }
  std::printf("\nloopback: %d clients x %d queries via TCP, %d ok, "
              "host %.0fms, virtual p50 %.4fs p99 %.4fs\n",
              clients, queries_per_client, ok, wall_ms,
              Percentile(all, 0.50), Percentile(all, 0.99));

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("serving");
  w.Key("mode").String("loopback");
  w.Key("sessions").Int(clients);
  w.Key("queries").UInt(total_queries);
  w.Key("ok").Int(ok);
  w.Key("p50_latency").FixedDouble(Percentile(all, 0.50), 6);
  w.Key("p99_latency").FixedDouble(Percentile(all, 0.99), 6);
  w.EndObject();
  std::printf("BENCH_serving.json %s\n", w.str().c_str());
}

/// Observability-plane overhead: one fixed open-loop configuration executed
/// with query-metric collection on and off, interleaved min-of-3 wall-clock
/// on each side. The virtual-time results must be bit-identical (the plane
/// only ever observes the schedule), and the host-time overhead should stay
/// within a few percent (3% is the design target; the committed gate ceiling
/// is looser because tiny smoke workloads are wall-clock noisy).
void RunObsOverhead(bool smoke) {
  const int sessions = 8;
  const double rate = 16.0;
  const int num_queries = smoke ? 48 : 120;
  const uint32_t seed = 9000;

  double wall_on = 1e300, wall_off = 1e300;
  SweepPoint on, off;
  for (int i = 0; i < 3; ++i) {
    {
      WallTimer t;
      on = RunSweepPoint(sessions, rate, num_queries, seed,
                         /*collect_query_metrics=*/true);
      wall_on = std::min(wall_on, t.ElapsedMs());
    }
    {
      WallTimer t;
      off = RunSweepPoint(sessions, rate, num_queries, seed,
                          /*collect_query_metrics=*/false);
      wall_off = std::min(wall_off, t.ElapsedMs());
    }
  }
  const bool identical = on.p50 == off.p50 && on.p99 == off.p99 &&
                         on.achieved_qps == off.achieved_qps &&
                         on.queued_frac == off.queued_frac &&
                         on.completed_counter == off.completed_counter;
  const double ratio = wall_off > 0 ? wall_on / wall_off : 0.0;
  std::printf("\nobservability plane: %d queries, host %.0fms on / %.0fms off "
              "(ratio %.3f, target <= 1.03), virtual results %s\n",
              num_queries, wall_on, wall_off, ratio,
              identical ? "identical" : "DIVERGED");

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("serving");
  w.Key("mode").String("obs");
  w.Key("sessions").Int(sessions);
  w.Key("queries").Int(num_queries);
  w.Key("wall_on_ms").FixedDouble(wall_on, 1);
  w.Key("wall_off_ms").FixedDouble(wall_off, 1);
  w.Key("overhead_ratio").FixedDouble(ratio, 4);
  w.Key("target_overhead_ratio").FixedDouble(1.03, 2);
  w.Key("virtual_identical").Bool(identical);
  w.Key("p99_latency").FixedDouble(on.p99, 6);
  w.EndObject();
  std::printf("BENCH_serving_obs.json %s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, loopback_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--loopback") == 0) loopback_only = true;
  }

  PrintHeader("Serving - multi-session admission & latency",
              "concurrent sessions share the cluster; latency degrades "
              "gracefully and throughput saturates instead of collapsing");

  if (!loopback_only) {
    std::vector<int> session_counts = smoke ? std::vector<int>{8}
                                            : std::vector<int>{8, 16};
    std::vector<double> rates =
        smoke ? std::vector<double>{1.0, 16.0, 256.0}
              : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0,
                                    256.0};
    int num_queries = smoke ? 48 : 160;

    std::printf("\n%9s %12s %13s %11s %11s %11s\n", "sessions", "offered_qps",
                "achieved_qps", "p50 (s)", "p99 (s)", "queued");
    double saturation = 0.0;
    for (int sc : session_counts) {
      for (size_t ri = 0; ri < rates.size(); ++ri) {
        // Seed depends only on the configuration, never on the run.
        uint32_t seed = 1000u * static_cast<uint32_t>(sc) +
                        static_cast<uint32_t>(ri);
        SweepPoint p = RunSweepPoint(sc, rates[ri], num_queries, seed);
        saturation = std::max(saturation, p.achieved_qps);
        std::printf("%9d %12.1f %13.3f %11.4f %11.4f %10.0f%%\n", p.sessions,
                    p.offered_qps, p.achieved_qps, p.p50, p.p99,
                    100.0 * p.queued_frac);
        EmitSweepJson(p);
      }
    }
    std::printf("\nsaturation: %.3f QPS (max achieved across the sweep)\n",
                saturation);
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("serving");
    w.Key("mode").String("summary");
    w.Key("saturation_qps").FixedDouble(saturation, 6);
    w.EndObject();
    std::printf("BENCH_serving.json %s\n", w.str().c_str());
  }

  RunLoopback(/*clients=*/8, /*queries_per_client=*/smoke ? 3 : 6);
  if (!loopback_only) RunObsOverhead(smoke);
  return 0;
}
