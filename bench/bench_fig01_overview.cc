// Reproduces Figure 1: the paper's opening comparison — two real user
// queries (from the video-analytics warehouse) and one logistic regression
// iteration, Shark versus Hive/Hadoop on a 100-node cluster.
#include "bench/bench_common.h"
#include "ml/logistic_regression.h"
#include "ml/table_rdd.h"
#include "workloads/mldata.h"
#include "workloads/warehouse.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 1 - Shark vs Hive/Hadoop overview",
              "real queries ~100x faster; logistic regression ~100x faster");

  // -- The two warehouse queries -------------------------------------------
  WarehouseConfig wh;
  auto session = MakeSharkSession(17000.0);
  if (!GenerateWarehouseTable(session.get(), wh).ok()) return 1;
  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);
  if (!session->CacheTable("sessions").ok()) return 1;

  const std::string q1 = WarehouseQ1(7, "2012-06-11");
  const std::string q2 = WarehouseQ2();
  double q1_shark = TimedRun(session.get(), q1);
  double q1_hive = TimedRun(hive.get(), q1);
  double q2_shark = TimedRun(session.get(), q2);
  double q2_hive = TimedRun(hive.get(), q2);

  // -- One logistic regression iteration ------------------------------------
  MlDataConfig ml;
  auto ml_session = MakeSharkSession(ml.VirtualScale());
  if (!GenerateMlTable(ml_session.get(), ml).ok()) return 1;
  auto ml_hive_result = MakeHiveSession(ml_session.get());
  if (!ml_hive_result.ok()) return 1;
  auto ml_hive = std::move(*ml_hive_result);

  LogisticRegression::Options opts;
  opts.iterations = 3;
  opts.learning_rate = 1e-6;

  auto train = [&](SharkSession* s, bool cache) -> double {
    auto rows = s->Sql2Rdd("SELECT * FROM ml_points");
    if (!rows.ok()) std::exit(1);
    auto points = RowsToLabeledPoints(*rows, "label",
                                      MlFeatureColumns(ml.dimensions));
    if (!points.ok()) std::exit(1);
    if (cache) (*points)->Cache();
    auto model = LogisticRegression::Train(&s->context(), *points,
                                           ml.dimensions, opts);
    if (!model.ok()) std::exit(1);
    return model->iteration_seconds.back();  // steady-state iteration
  };
  double lr_shark = train(ml_session.get(), true);
  double lr_hadoop = train(ml_hive.get(), false);

  PrintBars("User Query 1",
            {{"Shark", q1_shark, ""}, {"Hive", q1_hive, ""}},
            "paper: 1.0s vs ~80s");
  PrintBars("User Query 2",
            {{"Shark", q2_shark, ""}, {"Hive", q2_hive, ""}},
            "paper: 0.7s vs ~55s");
  PrintBars("Logistic regression (1 iteration)",
            {{"Shark", lr_shark, ""}, {"Hadoop", lr_hadoop, ""}},
            "paper: 0.96s vs ~110s");

  std::printf("\nspeedups: Q1 %.0fx, Q2 %.0fx, logistic regression %.0fx "
              "(paper: 40-100x)\n",
              Ratio(q1_hive, q1_shark), Ratio(q2_hive, q2_shark),
              Ratio(lr_hadoop, lr_shark));
  return 0;
}
