// Reproduces Figure 11: per-iteration runtime of logistic regression on a
// 100 GB synthetic dataset (1B points x 10 features at paper scale), for
// Shark (data cached in the memory store after the first pass) versus
// Hadoop reading text or binary records from HDFS every iteration (§6.5).
#include "bench/bench_common.h"
#include "ml/logistic_regression.h"
#include "ml/table_rdd.h"
#include "workloads/mldata.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

/// Average of the steady-state iterations (drop the first, which includes
/// the initial load — §6.5 reports it separately).
double SteadyState(const std::vector<double>& seconds) {
  double total = 0;
  for (size_t i = 1; i < seconds.size(); ++i) total += seconds[i];
  return total / static_cast<double>(seconds.size() - 1);
}

Result<RddPtr<LabeledPoint>> PointsOf(SharkSession* session,
                                      const std::string& table, int dims,
                                      bool cache) {
  SHARK_ASSIGN_OR_RETURN(TableRdd rows,
                         session->Sql2Rdd("SELECT * FROM " + table));
  SHARK_ASSIGN_OR_RETURN(RddPtr<LabeledPoint> points,
                         RowsToLabeledPoints(rows, "label",
                                             MlFeatureColumns(dims)));
  if (cache) points->Cache();
  return points;
}

/// Trains the cached-Shark model under a fixed host-thread count, returning
/// the host wall-clock of training and the model (weights and per-iteration
/// virtual seconds must not depend on host_threads).
double TrainWithHostThreads(int host_threads, const MlDataConfig& data,
                            const LogisticRegression::Options& opts,
                            LogisticRegression::Model* model) {
  auto session = MakeSharkSession(data.VirtualScale());
  session->context().set_host_threads(host_threads);
  if (!GenerateMlTable(session.get(), data).ok()) std::exit(1);
  auto points = PointsOf(session.get(), "ml_points", data.dimensions,
                         /*cache=*/true);
  if (!points.ok()) std::exit(1);
  WallTimer timer;
  auto trained = LogisticRegression::Train(&session->context(), *points,
                                           data.dimensions, opts);
  if (!trained.ok()) std::exit(1);
  *model = std::move(*trained);
  return timer.ElapsedMs();
}

/// Host-parallel execution: serial reference path (host_threads=1) vs the
/// work-stealing pool (host_threads=0). Weights and virtual iteration times
/// must match bit-for-bit; only host wall-clock may differ.
void RunHostParallel(const MlDataConfig& data,
                     const LogisticRegression::Options& opts) {
  std::printf("\n---- host-parallel task execution (cached logreg) ----\n");
  LogisticRegression::Model serial, pooled;
  double ms_serial = TrainWithHostThreads(1, data, opts, &serial);
  double ms_pool = TrainWithHostThreads(0, data, opts, &pooled);
  double vsum_serial = 0, vsum_pool = 0;
  for (double v : serial.iteration_seconds) vsum_serial += v;
  for (double v : pooled.iteration_seconds) vsum_pool += v;
  bool identical = serial.weights == pooled.weights &&
                   serial.iteration_seconds == pooled.iteration_seconds;
  EmitParallelJson("fig11_logreg", "train10_cached", 1, ms_serial,
                   vsum_serial);
  EmitParallelJson("fig11_logreg", "train10_cached", 0, ms_pool, vsum_pool);
  std::printf("  host_threads=1: %8.1fms host, %.4fs virtual\n", ms_serial,
              vsum_serial);
  std::printf("  host_threads=0: %8.1fms host, %.4fs virtual\n", ms_pool,
              vsum_pool);
  std::printf("  host speedup: %.2fx; weights & virtual times %s\n",
              Ratio(ms_serial, ms_pool),
              identical ? "bit-for-bit identical" : "DIVERGED (BUG)");
  if (!identical) std::exit(1);
}

}  // namespace

int main() {
  PrintHeader("Figure 11 - Logistic regression, per-iteration runtime",
              "Shark ~100x Hadoop(text), Hadoop(binary) in between");

  MlDataConfig data;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GenerateMlTable(session.get(), data).ok()) return 1;

  // A binary-SerDe copy of the dataset for the Hadoop (binary) bars.
  {
    auto rows = session->Sql2Rdd("SELECT * FROM ml_points");
    if (!rows.ok()) return 1;
    Schema schema = rows->schema;
    auto collected = session->context().Collect(rows->rdd);
    if (!collected.ok()) return 1;
    if (!session->CreateDfsTable("ml_points_bin", schema, *collected,
                                 data.blocks, DfsFormat::kBinary)
             .ok()) {
      return 1;
    }
  }

  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  LogisticRegression::Options opts;
  opts.iterations = 10;
  opts.learning_rate = 1e-6;

  auto shark_points = PointsOf(session.get(), "ml_points", data.dimensions,
                               /*cache=*/true);
  if (!shark_points.ok()) return 1;
  auto shark_model = LogisticRegression::Train(
      &session->context(), *shark_points, data.dimensions, opts);
  if (!shark_model.ok()) return 1;

  auto hadoop_text_points =
      PointsOf(hive.get(), "ml_points", data.dimensions, /*cache=*/false);
  if (!hadoop_text_points.ok()) return 1;
  auto hadoop_text = LogisticRegression::Train(
      &hive->context(), *hadoop_text_points, data.dimensions, opts);
  if (!hadoop_text.ok()) return 1;

  auto hadoop_bin_points =
      PointsOf(hive.get(), "ml_points_bin", data.dimensions, /*cache=*/false);
  if (!hadoop_bin_points.ok()) return 1;
  auto hadoop_bin = LogisticRegression::Train(
      &hive->context(), *hadoop_bin_points, data.dimensions, opts);
  if (!hadoop_bin.ok()) return 1;

  double shark_iter = SteadyState(shark_model->iteration_seconds);
  double text_iter = SteadyState(hadoop_text->iteration_seconds);
  double bin_iter = SteadyState(hadoop_bin->iteration_seconds);

  PrintBars("Logistic regression, per-iteration",
            {{"Shark", shark_iter, "cached after first pass"},
             {"Hadoop (binary)", bin_iter, "HDFS scan each iteration"},
             {"Hadoop (text)", text_iter, "HDFS scan each iteration"}},
            "paper: 0.96s / ~80s / ~120s");
  std::printf("\nfirst Shark iteration (includes load): %.1fs; "
              "speedups: %.0fx vs text, %.0fx vs binary (paper ~100x)\n",
              shark_model->iteration_seconds[0], Ratio(text_iter, shark_iter),
              Ratio(bin_iter, shark_iter));
  RunHostParallel(data, opts);
  return 0;
}
