// Reproduces §6.2.4 (data loading): Shark loads data into its memory store
// about 5x faster than loading the same data into HDFS, because the memstore
// load runs at aggregate CPU throughput (columnar marshalling, no
// replication) while the HDFS load pays serialization plus 3-way replicated
// writes.
#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("§6.2.4 - Data loading throughput",
              "memstore ingest ~5x the HDFS ingest rate");

  PavloConfig data;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;

  auto info = session->catalog().Get("uservisits");
  if (!info.ok()) return 1;
  double virtual_bytes =
      static_cast<double>((*info)->approx_bytes) * data.VirtualScale();

  // HDFS load: scan the source and write a replicated copy.
  QueryResult hdfs =
      MustRun(session.get(), "CREATE TABLE uv_hdfs AS SELECT * FROM uservisits");
  double hdfs_seconds = hdfs.metrics.virtual_seconds;

  // Memstore load: scan the source and marshal into cached columnar
  // partitions (§3.3).
  if (!session->CacheTable("uservisits").ok()) return 1;
  double mem_seconds = session->last_load_metrics().virtual_seconds;

  double hdfs_rate = virtual_bytes / hdfs_seconds / 1e6;
  double mem_rate = virtual_bytes / mem_seconds / 1e6;

  PrintBars("Time to load the uservisits table",
            {{"Shark memstore", mem_seconds, ""},
             {"HDFS (replicated)", hdfs_seconds, ""}},
            "memstore ingest rate ~5x HDFS's");
  std::printf("\ningest rates: memstore %.0f MB/s vs HDFS %.0f MB/s "
              "(ratio %.1fx; paper: ~5x)\n",
              mem_rate, hdfs_rate, mem_rate / hdfs_rate);
  return 0;
}
