// Multi-join star/chain benchmark for the cost-based optimizer and PDE
// mid-query re-planning. Star schema with a zipf-skewed fact table and four
// dimensions of very different selectivities:
//   naive        — forced written-order left-deep plan (big dims first).
//   cbo          — ANALYZE'd statistics + DP join reordering.
//   static best  — cbo order, re-planning disabled (oracle static plan).
//   stale static — statistics poisoned to look 1000x off, no re-planning.
//   stale+replan — same stale statistics; the first join's observed
//                  cardinality triggers re-enumeration of the remaining
//                  tables mid-query.
// Gate floors (bench/bench_baseline.json "join_floors"): cbo must beat naive
// by >= 2x on at least one query, and stale+replan must land within 1.5x of
// the best static plan.
#include <cstring>
#include <random>

#include "bench/bench_common.h"
#include "sql/stats/table_stats.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

struct JoinsConfig {
  int sales_rows = 400000;
  int customers_rows = 100000;
  int products_rows = 10000;
  int stores_rows = 1000;
  int suppliers_rows = 5000;
  int regions_rows = 1000;
  int sales_blocks = 200;
  int dim_blocks = 16;
  int num_nodes = 100;
  double vscale = 40000.0;  // customers > broadcast threshold, small dims under
};

JoinsConfig SmokeConfig() {
  JoinsConfig c;
  c.sales_rows = 60000;
  c.customers_rows = 20000;
  c.products_rows = 2000;
  c.stores_rows = 200;
  c.suppliers_rows = 1000;
  c.sales_blocks = 40;
  c.dim_blocks = 8;
  c.num_nodes = 20;
  c.vscale = 10000.0;
  return c;
}

/// Zipf-ish key: a third of the fact rows hit the first few keys, the rest
/// are uniform — enough skew to exercise the heavy-hitter statistics and the
/// PDE skew handling without degenerating to a single bucket.
int64_t SkewedKey(std::mt19937* rng, int domain) {
  std::uniform_int_distribution<int> coin(0, 2);
  if (coin(*rng) == 0) {
    std::uniform_int_distribution<int> head(0, 7);
    return head(*rng) % domain;
  }
  std::uniform_int_distribution<int> uni(0, domain - 1);
  return uni(*rng);
}

bool Generate(SharkSession* s, const JoinsConfig& c) {
  std::mt19937 rng(7);
  Schema sales({{"cid", TypeKind::kInt64},
                {"pid", TypeKind::kInt64},
                {"sid", TypeKind::kInt64},
                {"uid", TypeKind::kInt64},
                {"amt", TypeKind::kDouble}});
  std::vector<Row> srows;
  srows.reserve(static_cast<size_t>(c.sales_rows));
  std::uniform_int_distribution<int> pid(0, c.products_rows - 1);
  std::uniform_int_distribution<int> sid(0, c.stores_rows - 1);
  std::uniform_int_distribution<int> uid(0, c.suppliers_rows - 1);
  for (int i = 0; i < c.sales_rows; ++i) {
    srows.push_back(Row({Value::Int64(SkewedKey(&rng, c.customers_rows)),
                         Value::Int64(pid(rng)), Value::Int64(sid(rng)),
                         Value::Int64(uid(rng)),
                         Value::Double((i % 1000) * 0.25)}));
  }
  if (!s->CreateDfsTable("sales", sales, srows, c.sales_blocks).ok())
    return false;

  Schema customers({{"ck", TypeKind::kInt64},
                    {"region", TypeKind::kInt64},
                    {"age", TypeKind::kInt64}});
  std::vector<Row> crows;
  std::uniform_int_distribution<int> region(0, c.regions_rows - 1);
  std::uniform_int_distribution<int> age(0, 99);
  for (int i = 0; i < c.customers_rows; ++i) {
    crows.push_back(
        Row({Value::Int64(i), Value::Int64(region(rng)), Value::Int64(age(rng))}));
  }
  if (!s->CreateDfsTable("customers", customers, crows, c.dim_blocks).ok())
    return false;

  Schema products({{"pk", TypeKind::kInt64}, {"price", TypeKind::kInt64}});
  std::vector<Row> prows;
  std::uniform_int_distribution<int> price(0, 999);
  for (int i = 0; i < c.products_rows; ++i) {
    prows.push_back(Row({Value::Int64(i), Value::Int64(price(rng))}));
  }
  if (!s->CreateDfsTable("products", products, prows, c.dim_blocks).ok())
    return false;

  Schema stores({{"sk", TypeKind::kInt64}, {"pop", TypeKind::kInt64}});
  std::vector<Row> trows;
  std::uniform_int_distribution<int> pop(0, 999);
  for (int i = 0; i < c.stores_rows; ++i) {
    trows.push_back(Row({Value::Int64(i), Value::Int64(pop(rng))}));
  }
  if (!s->CreateDfsTable("stores", stores, trows, c.dim_blocks).ok())
    return false;

  Schema suppliers({{"uk", TypeKind::kInt64}, {"rating", TypeKind::kInt64}});
  std::vector<Row> urows;
  std::uniform_int_distribution<int> rating(0, 9);
  for (int i = 0; i < c.suppliers_rows; ++i) {
    urows.push_back(Row({Value::Int64(i), Value::Int64(rating(rng))}));
  }
  if (!s->CreateDfsTable("suppliers", suppliers, urows, c.dim_blocks).ok())
    return false;

  Schema regions({{"rk", TypeKind::kInt64}, {"rpop", TypeKind::kInt64}});
  std::vector<Row> rrows;
  for (int i = 0; i < c.regions_rows; ++i) {
    rrows.push_back(Row({Value::Int64(i), Value::Int64(i * 20)}));
  }
  if (!s->CreateDfsTable("regions", regions, rrows, c.dim_blocks).ok())
    return false;

  for (const char* t :
       {"sales", "customers", "products", "stores", "suppliers", "regions"}) {
    if (!s->CacheTable(t).ok()) return false;
  }
  return true;
}

/// Written order puts the big unfiltered customers join first and the 1%
/// products filter last — the worst reasonable left-deep order, which is
/// exactly what forcing the written order executes.
const char* kStarQuery =
    "SELECT SUM(amt) FROM sales "
    "JOIN customers ON sales.cid = customers.ck "
    "JOIN suppliers ON sales.uid = suppliers.uk "
    "JOIN stores ON sales.sid = stores.sk "
    "JOIN products ON sales.pid = products.pk "
    "WHERE products.price < 10 AND stores.pop < 100 AND suppliers.rating < 2";

/// Chain: the only path to the 20-of-1000 regions filter runs through
/// customers; a good plan shrinks customers before touching the fact table.
const char* kChainQuery =
    "SELECT SUM(amt) FROM sales "
    "JOIN customers ON sales.cid = customers.ck "
    "JOIN regions ON customers.region = regions.rk "
    "WHERE regions.rpop < 400";

void AnalyzeAll(SharkSession* s) {
  for (const char* t :
       {"sales", "customers", "products", "stores", "suppliers", "regions"}) {
    MustRun(s, std::string("ANALYZE TABLE ") + t);
  }
}

/// Installs statistics claiming customers has a handful of rows — the
/// "table grew 1000x since the last ANALYZE" scenario.
void PoisonCustomers(SharkSession* s) {
  auto info = s->catalog().Get("customers");
  if (!info.ok()) std::exit(1);
  Schema schema({{"ck", TypeKind::kInt64},
                 {"region", TypeKind::kInt64},
                 {"age", TypeKind::kInt64}});
  std::vector<Row> tiny;
  for (int i = 0; i < 8; ++i) {
    tiny.push_back(
        Row({Value::Int64(i), Value::Int64(i % 4), Value::Int64(30)}));
  }
  (*info)->column_statistics = std::make_shared<const TableStatistics>(
      BuildStatisticsFromRows(schema, tiny));
}

struct ModeResult {
  double seconds = 0.0;
  int replans = 0;
};

enum class Stats { kNone, kFresh, kStale };

/// Each mode gets its own session so every plan sees the same cluster state:
/// a shared session would let earlier modes' resident shuffle buffers shrink
/// the task memory budget of whichever mode happens to run last.
ModeResult RunMode(const JoinsConfig& c, const std::string& sql, Stats stats,
                   bool left_deep, double replan_factor) {
  auto s = MakeSharkSession(c.vscale, c.num_nodes);
  if (!Generate(s.get(), c)) std::exit(1);
  if (stats != Stats::kNone) AnalyzeAll(s.get());
  if (stats == Stats::kStale) PoisonCustomers(s.get());
  s->options().force_left_deep = left_deep;
  s->options().replan_factor = replan_factor;
  QueryResult r = MustRun(s.get(), sql);
  return {r.metrics.virtual_seconds, r.metrics.replans};
}

void EmitJoinsJson(const std::string& bench, const std::string& label,
                   double virtual_seconds, int replans) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(label);
  w.Key("virtual_seconds").FixedDouble(virtual_seconds, 6);
  w.Key("replans").Int(replans);
  w.EndObject();
  std::printf("BENCH_joins.json %s\n", w.str().c_str());
}

void EmitSummaryJson(const std::string& bench, const std::string& query,
                     double speedup, double stale_overhead, int replans) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(query + "_summary");
  w.Key("mode").String("summary");
  w.Key("query").String(query);
  w.Key("speedup_cbo_vs_naive").FixedDouble(speedup, 3);
  if (stale_overhead > 0) {
    w.Key("stale_replan_overhead").FixedDouble(stale_overhead, 3);
    w.Key("replans").Int(replans);
  }
  w.EndObject();
  std::printf("BENCH_joins.json %s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  JoinsConfig cfg = smoke ? SmokeConfig() : JoinsConfig();
  const std::string bench = smoke ? "joins_smoke" : "joins";

  PrintHeader("Multi-join star/chain - cost-based join ordering + re-planning",
              "ANALYZE statistics + DP join reordering beat the written "
              "left-deep order; stale statistics recover via PDE re-planning");

  // --- star query -------------------------------------------------------
  ModeResult star_naive = RunMode(cfg, kStarQuery, Stats::kNone, true, 0.0);
  ModeResult star_cbo = RunMode(cfg, kStarQuery, Stats::kFresh, false, 4.0);
  ModeResult star_best = RunMode(cfg, kStarQuery, Stats::kFresh, false, 0.0);
  ModeResult star_stale_static =
      RunMode(cfg, kStarQuery, Stats::kStale, false, 0.0);
  ModeResult star_stale_replan =
      RunMode(cfg, kStarQuery, Stats::kStale, false, 4.0);

  PrintBars("star: sales x 4 dims, selective filters",
            {{"CBO (analyzed)", star_cbo.seconds, ""},
             {"best static", star_best.seconds, ""},
             {"stale + replan", star_stale_replan.seconds,
              "replans=" + std::to_string(star_stale_replan.replans)},
             {"stale static", star_stale_static.seconds, ""},
             {"naive left-deep", star_naive.seconds, "written order"}});

  // --- chain query ------------------------------------------------------
  ModeResult chain_naive = RunMode(cfg, kChainQuery, Stats::kNone, true, 0.0);
  ModeResult chain_cbo = RunMode(cfg, kChainQuery, Stats::kFresh, false, 4.0);
  PrintBars("chain: sales -> customers -> regions",
            {{"CBO (analyzed)", chain_cbo.seconds, ""},
             {"naive left-deep", chain_naive.seconds, "written order"}});

  double star_speedup = Ratio(star_naive.seconds, star_cbo.seconds);
  double chain_speedup = Ratio(chain_naive.seconds, chain_cbo.seconds);
  double stale_overhead = Ratio(star_stale_replan.seconds, star_best.seconds);
  std::printf("\nspeedup cbo vs naive: star %.2fx, chain %.2fx\n", star_speedup,
              chain_speedup);
  std::printf("stale stats: static %.2fx of best, replan %.2fx of best "
              "(%d replan(s))\n",
              Ratio(star_stale_static.seconds, star_best.seconds),
              stale_overhead, star_stale_replan.replans);

  EmitJoinsJson(bench, "star/naive", star_naive.seconds, 0);
  EmitJoinsJson(bench, "star/cbo", star_cbo.seconds, star_cbo.replans);
  EmitJoinsJson(bench, "star/best_static", star_best.seconds, 0);
  EmitJoinsJson(bench, "star/stale_static", star_stale_static.seconds, 0);
  EmitJoinsJson(bench, "star/stale_replan", star_stale_replan.seconds,
                star_stale_replan.replans);
  EmitJoinsJson(bench, "chain/naive", chain_naive.seconds, 0);
  EmitJoinsJson(bench, "chain/cbo", chain_cbo.seconds, chain_cbo.replans);
  EmitSummaryJson(bench, "star", star_speedup, stale_overhead,
                  star_stale_replan.replans);
  EmitSummaryJson(bench, "chain", chain_speedup, 0.0, 0);
  return 0;
}
