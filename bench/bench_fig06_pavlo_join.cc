// Reproduces Figure 6: the Pavlo join query (rankings x uservisits with a
// visit-date filter), comparing co-partitioned Shark, Shark (memory), Shark
// (disk) and Hive. The join cost dominates, so memory vs disk matters less
// here; co-partitioning removes the shuffle entirely (§3.4).
#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 6 - Pavlo benchmark: join query",
              "Hive slowest; Shark mem ~ disk (join-dominated); "
              "co-partitioning wins big");

  PavloConfig data;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;
  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  const std::string join = PavloJoinQuery();

  double disk = TimedRun(session.get(), join);

  if (!session->CacheTable("rankings").ok()) return 1;
  if (!session->CacheTable("uservisits").ok()) return 1;
  QueryResult mem_result = MustRun(session.get(), join);
  double mem = mem_result.metrics.virtual_seconds;

  // Co-partitioned variant: both tables cached DISTRIBUTE BY the join key.
  MustRun(session.get(),
          "CREATE TABLE r_mem TBLPROPERTIES (\"shark.cache\"=true) AS "
          "SELECT * FROM rankings DISTRIBUTE BY pageURL");
  MustRun(session.get(),
          "CREATE TABLE uv_mem TBLPROPERTIES (\"shark.cache\"=true, "
          "\"copartition\"=\"r_mem\") AS SELECT * FROM uservisits "
          "DISTRIBUTE BY destURL");
  QueryResult copart_result = MustRun(
      session.get(),
      "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) as totalRevenue "
      "FROM r_mem AS R, uv_mem AS UV WHERE R.pageURL = UV.destURL AND "
      "UV.visitDate BETWEEN Date('2000-01-15') AND Date('2000-01-22') "
      "GROUP BY UV.sourceIP");
  double copart = copart_result.metrics.virtual_seconds;

  double hive_time = TimedRun(hive.get(), join);

  PrintBars("Join query runtime",
            {{"Copartitioned", copart, copart_result.metrics.join_strategy},
             {"Shark", mem, mem_result.metrics.join_strategy},
             {"Shark (disk)", disk, ""},
             {"Hive", hive_time, ""}},
            "Hive ~1850s; Shark mem~disk (join-dominated); copartitioned "
            "~5x faster than Shark");

  std::printf("\nshapes: hive/shark=%.1fx, shark/copartitioned=%.1fx, "
              "mem vs disk=%.2fx\n",
              Ratio(hive_time, mem), Ratio(mem, copart), Ratio(disk, mem));
  return 0;
}
