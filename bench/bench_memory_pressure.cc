// Memory-pressure sweep: runs the same join + aggregation while the dataset
// grows from 0.25x to 4x of aggregate cluster memory. Shark caches the fact
// table; past 1x the block cache evicts, operator working sets spill to
// simulated local disk (external hash aggregation / sort-merge) and shuffle
// map outputs flip to disk-based serving — runtime should rise smoothly with
// pressure instead of hitting a cliff or aborting (graceful degradation).
// Hive runs the same warehouse from disk as the baseline.
//
// Emits one machine-readable line per measurement:
//   BENCH_memory.json {"bench":"memory_pressure","label":...,"pressure":...,
//                      "virtual_seconds":...,"spill_bytes":...,...}
#include <cstring>

#include "bench/bench_common.h"
#include "common/random.h"
#include "hive/hive_engine.h"
#include "relation/row.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

struct Dataset {
  Schema schema;
  std::vector<Row> rows;
};

/// Fact table: sales(region, product, units, price). `products` distinct
/// join keys so the dimension join fans out realistically.
Dataset MakeSales(int n, int products, uint64_t seed) {
  Random rng(seed);
  Dataset d;
  d.schema = Schema({{"region", TypeKind::kString},
                     {"product", TypeKind::kString},
                     {"units", TypeKind::kInt64},
                     {"price", TypeKind::kDouble}});
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < n; ++i) {
    d.rows.push_back(Row(
        {Value::String(regions[rng.Uniform(4)]),
         Value::String("product-" + std::to_string(rng.Uniform(
                                        static_cast<uint32_t>(products)))),
         Value::Int64(rng.UniformInt(1, 40)),
         Value::Double(static_cast<double>(rng.UniformInt(100, 9999)) /
                       100.0)}));
  }
  return d;
}

/// Dimension table: products(product, category).
Dataset MakeProducts(int products) {
  Dataset d;
  d.schema = Schema(
      {{"product", TypeKind::kString}, {"category", TypeKind::kString}});
  const char* categories[] = {"tools", "fasteners", "art", "misc"};
  for (int i = 0; i < products; ++i) {
    d.rows.push_back(Row({Value::String("product-" + std::to_string(i)),
                          Value::String(categories[i % 4])}));
  }
  return d;
}

uint64_t RealBytes(const Dataset& d) {
  uint64_t total = 0;
  for (const Row& r : d.rows) total += ApproxSizeOf(r);
  return total;
}

/// Spill/degradation counters summed over every stage of a profile.
struct SpillStats {
  uint64_t spill_bytes = 0;
  uint64_t spill_partitions = 0;
  int spilled_tasks = 0;
  int disk_served_outputs = 0;
};

SpillStats CollectSpills(const QueryResult& result) {
  SpillStats s;
  if (result.profile == nullptr) return s;
  for (const StageTrace& st : result.profile->stages) {
    s.spill_bytes += st.spill_bytes();
    s.spill_partitions += st.spill_partitions();
    s.spilled_tasks += st.spilled_tasks();
    s.disk_served_outputs += st.disk_served_outputs();
  }
  return s;
}

void EmitMemoryJson(const std::string& label, double pressure,
                    double virtual_seconds, const SpillStats& s) {
  std::printf(
      "BENCH_memory.json {\"bench\":\"memory_pressure\",\"label\":\"%s\","
      "\"pressure\":%.2f,\"virtual_seconds\":%.6f,\"spill_bytes\":%llu,"
      "\"spill_partitions\":%llu,\"spilled_tasks\":%d,"
      "\"disk_served_outputs\":%d}\n",
      label.c_str(), pressure, virtual_seconds,
      static_cast<unsigned long long>(s.spill_bytes),
      static_cast<unsigned long long>(s.spill_partitions), s.spilled_tasks,
      s.disk_served_outputs);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  PrintHeader("Memory pressure - join + aggregation, 0.25x..4x of memory",
              "graceful degradation: runtime rises smoothly as working sets "
              "spill and shuffle outputs flip to disk; no cliff, no abort");

  const int nodes = smoke ? 4 : 10;
  const int fact_rows = smoke ? 3000 : 40000;
  const int products = smoke ? 40 : 400;
  const int partitions = smoke ? 8 : 40;
  const std::vector<double> pressures =
      smoke ? std::vector<double>{0.5, 2.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0};

  Dataset sales = MakeSales(fact_rows, products, 4242);
  Dataset dims = MakeProducts(products);
  const uint64_t real_bytes = RealBytes(sales) + RealBytes(dims);
  const uint64_t cluster_mem =
      static_cast<uint64_t>(nodes) * HardwareModel().mem_bytes_per_node;

  const std::string query =
      "SELECT d.category, s.region, COUNT(*), SUM(s.units), AVG(s.price) "
      "FROM sales s JOIN products d ON s.product = d.product "
      "GROUP BY d.category, s.region";

  std::vector<BarRow> shark_rows;
  std::vector<BarRow> hive_rows;
  std::string analyzed_at_max;

  for (double pressure : pressures) {
    // Pick the virtual scale so that the dataset's virtual bytes are
    // `pressure` times the aggregate cluster memory. The block-cache and
    // memory-manager budgets shrink by the same factor (context.cc), so the
    // simulated ratio dataset/memory equals `pressure` exactly.
    double scale = pressure * static_cast<double>(cluster_mem) /
                   static_cast<double>(real_bytes);
    auto session = MakeSharkSession(scale, nodes);
    if (!session->CreateDfsTable("sales", sales.schema, sales.rows, partitions)
             .ok() ||
        !session->CreateDfsTable("products", dims.schema, dims.rows, 4).ok()) {
      return 1;
    }

    auto hive_result = MakeHiveSession(session.get());
    if (!hive_result.ok()) return 1;
    auto hive = std::move(*hive_result);

    if (!session->CacheTable("sales").ok()) return 1;
    QueryResult shark_run = MustRun(session.get(), query);
    SpillStats shark_spills = CollectSpills(shark_run);
    double shark_s = shark_run.metrics.virtual_seconds;

    QueryResult hive_run = MustRun(hive.get(), query);
    SpillStats hive_spills = CollectSpills(hive_run);
    double hive_s = hive_run.metrics.virtual_seconds;

    char label[64];
    std::snprintf(label, sizeof(label), "%.2fx memory", pressure);
    char note[128];
    std::snprintf(note, sizeof(note), "spilled %d tasks, disk outputs %d",
                  shark_spills.spilled_tasks,
                  shark_spills.disk_served_outputs);
    shark_rows.push_back({label, shark_s, note});
    hive_rows.push_back({label, hive_s, ""});

    EmitMemoryJson("shark", pressure, shark_s, shark_spills);
    EmitMemoryJson("hive", pressure, hive_s, hive_spills);

    // Keep the EXPLAIN ANALYZE rendering from the highest-pressure point to
    // show the spill annotations (reservation failures made visible).
    if (pressure == pressures.back()) {
      QueryResult analyzed = MustRun(session.get(), "EXPLAIN ANALYZE " + query);
      for (const Row& row : analyzed.rows) {
        if (!row.fields.empty()) {
          analyzed_at_max += row.fields[0].str() + "\n";
        }
      }
    }
  }

  PrintBars("Shark (cached fact table)", shark_rows,
            "rises smoothly past 1x as spills kick in");
  PrintBars("Hive (disk warehouse)", hive_rows,
            "flat-ish: always disk-resident, always slower");

  if (!analyzed_at_max.empty()) {
    std::printf("\n== EXPLAIN ANALYZE at %.2fx memory ==\n%s",
                pressures.back(), analyzed_at_max.c_str());
  }
  return 0;
}
