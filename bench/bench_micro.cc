// Micro-benchmarks (google-benchmark) of the CPU-critical primitives: the
// compression codecs (§3.2), expression interpretation (§5), key hashing,
// the PDE statistics sketches and the 1-byte size encoding (§3.1), plus a
// hand-rolled vectorized-vs-row kernel sweep (`--vector-sweep`) that prints
// one BENCH_vector.json line per kernel for tools/bench_gate's floors.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "columnar/column.h"
#include "columnar/table_partition.h"
#include "common/heavy_hitters.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/random.h"
#include "common/size_encoding.h"
#include "exec/vectorized/column_batch.h"
#include "exec/vectorized/kernels.h"
#include "relation/row.h"
#include "sql/expr.h"
#include "sql/expr_compiler.h"
#include "sql/parser.h"

namespace shark {
namespace {

std::vector<Value> MakeIntColumn(size_t n, uint64_t range) {
  Random rng(1);
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(range))));
  }
  return out;
}

std::vector<Value> MakeStringColumn(size_t n, int distinct) {
  Random rng(2);
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Value::String(
        "value-" + std::to_string(rng.Uniform(static_cast<uint64_t>(distinct)))));
  }
  return out;
}

void BM_EncodeInt64BitPacked(benchmark::State& state) {
  auto values = MakeIntColumn(static_cast<size_t>(state.range(0)), 1 << 16);
  for (auto _ : state) {
    auto chunk = EncodeColumn(TypeKind::kInt64, values, Encoding::kBitPacked);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeInt64BitPacked)->Arg(1 << 14);

void BM_EncodeStringDict(benchmark::State& state) {
  auto values = MakeStringColumn(static_cast<size_t>(state.range(0)), 64);
  for (auto _ : state) {
    auto chunk = EncodeColumn(TypeKind::kString, values, Encoding::kDictionary);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeStringDict)->Arg(1 << 14);

void BM_DecodeColumn(benchmark::State& state) {
  auto values = MakeIntColumn(static_cast<size_t>(state.range(0)), 1 << 10);
  auto chunk = EncodeColumnAuto(TypeKind::kInt64, values, nullptr);
  for (auto _ : state) {
    std::vector<Value> out;
    out.reserve(values.size());
    chunk->Decode(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeColumn)->Arg(1 << 14);

void BM_ExprEval(benchmark::State& state) {
  auto parsed = ParseExpression(
      "a > 100 AND b BETWEEN 3 AND 7 AND SUBSTR(s, 1, 3) = 'abc'");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : e->name == "b" ? 1 : 2;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  Row row({Value::Int64(250), Value::Int64(5), Value::String("abcdef")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*expr, row, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEval);

void BM_ExprEvalCompiled(benchmark::State& state) {
  // Same expression as BM_ExprEval, compiled to a flat postfix program
  // (§5's bytecode compilation) — compare items/sec against the interpreter.
  auto parsed = ParseExpression(
      "a > 100 AND b BETWEEN 3 AND 7 AND SUBSTR(s, 1, 3) = 'abc'");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : e->name == "b" ? 1 : 2;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto program = *compiler.Compile(*expr);
  Row row({Value::Int64(250), Value::Int64(5), Value::String("abcdef")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.EvalBool(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEvalCompiled);

// Numeric-only predicate (the dominant scan-filter shape): the compiled
// fused comparisons shine here.
ExprPtr BindNumericPredicate() {
  auto parsed = ParseExpression("a > 100 AND b BETWEEN 3 AND 7 AND a <> 500");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : 1;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  return expr;
}

void BM_NumericPredicateInterpreted(benchmark::State& state) {
  ExprPtr expr = BindNumericPredicate();
  Row row({Value::Int64(250), Value::Int64(5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*expr, row, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumericPredicateInterpreted);

void BM_NumericPredicateCompiled(benchmark::State& state) {
  ExprPtr expr = BindNumericPredicate();
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto program = *compiler.Compile(*expr);
  Row row({Value::Int64(250), Value::Int64(5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.EvalBool(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumericPredicateCompiled);

void BM_RowHash(benchmark::State& state) {
  Row row({Value::Int64(12345), Value::String("1.2.3.4"), Value::Double(9.5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyHash(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowHash);

void BM_SizeEncoding(benchmark::State& state) {
  Random rng(3);
  for (auto _ : state) {
    uint64_t size = rng.Uniform(32ULL << 30);
    benchmark::DoNotOptimize(SizeEncoding::Decode(SizeEncoding::Encode(size)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SizeEncoding);

void BM_HeavyHittersAdd(benchmark::State& state) {
  Random rng(4);
  HeavyHitters hh(64);
  for (auto _ : state) {
    hh.Add(rng.Zipf(100000, 1.2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeavyHittersAdd);

void BM_HistogramAdd(benchmark::State& state) {
  Random rng(5);
  ApproxHistogram hist(64);
  for (auto _ : state) {
    hist.Add(rng.NextDouble() * 1e6);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_LikeMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LikeMatch("the-quick-brown-fox.html", "%quick%fox%.html"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LikeMatch);

// ---------------------------------------------------------------------------
// Vectorized-vs-row kernel sweep. Each kernel runs the same work twice —
// batch-at-a-time over a decoded ColumnBatch and row-at-a-time over
// materialized Rows (the scalar engine path) — and reports rows/sec for
// both plus the wall-clock speedup. The lines deliberately omit
// "virtual_seconds": wall-clock is noisy host time, so they bypass the
// bench_gate timing diff and are checked against the conservative
// `vector_floors` in bench/bench_baseline.json instead.
// ---------------------------------------------------------------------------

std::shared_ptr<const TablePartition> SweepPartition(const Schema& schema,
                                                     std::vector<Row>* rows) {
  Random rng(7);
  constexpr size_t kRows = 1 << 16;
  rows->clear();
  rows->reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows->push_back(
        Row({Value::Int64(static_cast<int64_t>(rng.Uniform(1 << 13))),
             Value::Int64(static_cast<int64_t>(rng.Uniform(1000))),
             Value::Double(rng.NextDouble() * 100.0),
             Value::Double(rng.NextDouble() * 10.0),
             Value::String("k" + std::to_string(rng.Uniform(64)))}));
  }
  return TablePartition::FromRows(schema, *rows);
}

CompiledExpr CompileBound(const std::string& text) {
  auto parsed = ParseExpression(text);
  if (!parsed.ok()) std::abort();
  ExprPtr expr = std::move(*parsed);
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a"   ? 0
                : e->name == "b" ? 1
                : e->name == "x" ? 2
                : e->name == "y" ? 3
                                 : 4;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto program = compiler.Compile(*expr);
  if (!program.ok()) std::abort();
  return std::move(*program);
}

/// Repeats `fn` (which processes `rows_per_rep` rows) until ~80ms of wall
/// clock has elapsed and returns rows/sec.
template <typename Fn>
double MeasureRowsPerSec(size_t rows_per_rep, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  // One untimed warmup rep.
  fn();
  auto start = Clock::now();
  size_t reps = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.08);
  return static_cast<double>(rows_per_rep) * static_cast<double>(reps) /
         elapsed;
}

void EmitVectorLine(const std::string& label, size_t rows, double vec_rps,
                    double row_rps) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_vector");
  w.Key("label").String(label);
  w.Key("rows").UInt(rows);
  w.Key("rows_per_sec_vec").FixedDouble(vec_rps, 0);
  w.Key("rows_per_sec_row").FixedDouble(row_rps, 0);
  w.Key("wall_speedup").FixedDouble(row_rps > 0 ? vec_rps / row_rps : 0.0, 3);
  w.EndObject();
  std::printf("BENCH_vector.json %s\n", w.str().c_str());
}

int RunVectorSweep() {
  Schema schema({{"a", TypeKind::kInt64},
                 {"b", TypeKind::kInt64},
                 {"x", TypeKind::kDouble},
                 {"y", TypeKind::kDouble},
                 {"s", TypeKind::kString}});
  std::vector<Row> rows;
  auto part = SweepPartition(schema, &rows);
  const size_t n = part->num_rows();
  std::vector<int> all_cols{0, 1, 2, 3, 4};
  vec::ColumnBatch batch;
  Status st = vec::DecodePartition(*part, schema.fields(), all_cols, "sweep",
                                   &batch);
  if (!st.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", st.message().c_str());
    return 1;
  }

  struct ExprKernel {
    const char* label;
    const char* text;
  };
  const ExprKernel kernels[] = {
      {"filter_int64", "a > 3000 AND b BETWEEN 100 AND 900"},
      {"project_arith", "x * 2.0 + y - 1.0"},
      {"predicate_mixed", "x < 75.0 AND SUBSTR(s, 1, 2) = 'k1'"},
  };
  for (const ExprKernel& k : kernels) {
    CompiledExpr program = CompileBound(k.text);
    double vec_rps = MeasureRowsPerSec(n, [&] {
      vec::ColumnVector out;
      program.EvalBatch(batch, 0, n, &out);
      benchmark::DoNotOptimize(out);
    });
    double row_rps = MeasureRowsPerSec(n, [&] {
      for (const Row& r : rows) benchmark::DoNotOptimize(program.Eval(r));
    });
    EmitVectorLine(k.label, n, vec_rps, row_rps);
  }

  // Column-wise key hashing vs per-row KeyHash (the group-by inner loop).
  {
    std::vector<const vec::ColumnVector*> key_cols{&batch.cols[0],
                                                   &batch.cols[4]};
    double vec_rps = MeasureRowsPerSec(n, [&] {
      std::vector<uint64_t> hashes;
      vec::HashKeyColumns(key_cols, n, &hashes);
      benchmark::DoNotOptimize(hashes);
    });
    std::vector<Row> keys;
    keys.reserve(n);
    for (const Row& r : rows) keys.push_back(Row({r.Get(0), r.Get(4)}));
    double row_rps = MeasureRowsPerSec(n, [&] {
      for (const Row& r : keys) benchmark::DoNotOptimize(KeyHash(r));
    });
    EmitVectorLine("hash_keys", n, vec_rps, row_rps);
  }

  // Fused scan+filter straight off the columnar partition vs the scalar
  // path's materialize-then-filter.
  {
    CompiledExpr program = CompileBound("a > 3000 AND b BETWEEN 100 AND 900");
    std::vector<int> needed{0, 1};
    double vec_rps = MeasureRowsPerSec(n, [&] {
      vec::ColumnBatch decoded;
      if (!vec::DecodePartition(*part, schema.fields(), needed, "sweep",
                                &decoded)
               .ok()) {
        std::abort();
      }
      vec::ColumnVector pred;
      program.EvalBatch(decoded, 0, n, &pred);
      vec::SelVector sel;
      vec::SelectTrue(pred, 0, n, &sel);
      benchmark::DoNotOptimize(vec::GatherBatch(decoded, sel));
    });
    double row_rps = MeasureRowsPerSec(n, [&] {
      std::vector<Row> materialized = part->ToRows(&needed);
      std::vector<Row> survivors;
      for (Row& r : materialized) {
        if (program.EvalBool(r)) survivors.push_back(std::move(r));
      }
      benchmark::DoNotOptimize(survivors);
    });
    EmitVectorLine("fused_scan_filter", n, vec_rps, row_rps);
  }
  return 0;
}

}  // namespace
}  // namespace shark

int main(int argc, char** argv) {
  // `--vector-sweep`: run only the vectorized kernel sweep (CI mode, feeds
  // tools/bench_gate's vector_floors). Otherwise: the sweep, then the
  // google-benchmark suite with the remaining flags.
  bool sweep_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vector-sweep") == 0) {
      sweep_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  int rc = shark::RunVectorSweep();
  if (rc != 0 || sweep_only) return rc;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
