// Micro-benchmarks (google-benchmark) of the CPU-critical primitives: the
// compression codecs (§3.2), expression interpretation (§5), key hashing,
// the PDE statistics sketches and the 1-byte size encoding (§3.1).
#include <benchmark/benchmark.h>

#include "columnar/column.h"
#include "common/heavy_hitters.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/size_encoding.h"
#include "relation/row.h"
#include "sql/expr.h"
#include "sql/expr_compiler.h"
#include "sql/parser.h"

namespace shark {
namespace {

std::vector<Value> MakeIntColumn(size_t n, uint64_t range) {
  Random rng(1);
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(range))));
  }
  return out;
}

std::vector<Value> MakeStringColumn(size_t n, int distinct) {
  Random rng(2);
  std::vector<Value> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Value::String(
        "value-" + std::to_string(rng.Uniform(static_cast<uint64_t>(distinct)))));
  }
  return out;
}

void BM_EncodeInt64BitPacked(benchmark::State& state) {
  auto values = MakeIntColumn(static_cast<size_t>(state.range(0)), 1 << 16);
  for (auto _ : state) {
    auto chunk = EncodeColumn(TypeKind::kInt64, values, Encoding::kBitPacked);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeInt64BitPacked)->Arg(1 << 14);

void BM_EncodeStringDict(benchmark::State& state) {
  auto values = MakeStringColumn(static_cast<size_t>(state.range(0)), 64);
  for (auto _ : state) {
    auto chunk = EncodeColumn(TypeKind::kString, values, Encoding::kDictionary);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeStringDict)->Arg(1 << 14);

void BM_DecodeColumn(benchmark::State& state) {
  auto values = MakeIntColumn(static_cast<size_t>(state.range(0)), 1 << 10);
  auto chunk = EncodeColumnAuto(TypeKind::kInt64, values, nullptr);
  for (auto _ : state) {
    std::vector<Value> out;
    out.reserve(values.size());
    chunk->Decode(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeColumn)->Arg(1 << 14);

void BM_ExprEval(benchmark::State& state) {
  auto parsed = ParseExpression(
      "a > 100 AND b BETWEEN 3 AND 7 AND SUBSTR(s, 1, 3) = 'abc'");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : e->name == "b" ? 1 : 2;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  Row row({Value::Int64(250), Value::Int64(5), Value::String("abcdef")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*expr, row, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEval);

void BM_ExprEvalCompiled(benchmark::State& state) {
  // Same expression as BM_ExprEval, compiled to a flat postfix program
  // (§5's bytecode compilation) — compare items/sec against the interpreter.
  auto parsed = ParseExpression(
      "a > 100 AND b BETWEEN 3 AND 7 AND SUBSTR(s, 1, 3) = 'abc'");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : e->name == "b" ? 1 : 2;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto program = *compiler.Compile(*expr);
  Row row({Value::Int64(250), Value::Int64(5), Value::String("abcdef")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.EvalBool(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEvalCompiled);

// Numeric-only predicate (the dominant scan-filter shape): the compiled
// fused comparisons shine here.
ExprPtr BindNumericPredicate() {
  auto parsed = ParseExpression("a > 100 AND b BETWEEN 3 AND 7 AND a <> 500");
  ExprPtr expr = *parsed;
  std::function<void(Expr*)> bind = [&](Expr* e) {
    if (e->kind == ExprKind::kColumnRef) {
      e->kind = ExprKind::kSlot;
      e->slot = e->name == "a" ? 0 : 1;
    }
    for (auto& c : e->children) bind(c.get());
  };
  bind(expr.get());
  return expr;
}

void BM_NumericPredicateInterpreted(benchmark::State& state) {
  ExprPtr expr = BindNumericPredicate();
  Row row({Value::Int64(250), Value::Int64(5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(*expr, row, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumericPredicateInterpreted);

void BM_NumericPredicateCompiled(benchmark::State& state) {
  ExprPtr expr = BindNumericPredicate();
  UdfRegistry udfs;
  ExprCompiler compiler(&udfs);
  auto program = *compiler.Compile(*expr);
  Row row({Value::Int64(250), Value::Int64(5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.EvalBool(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumericPredicateCompiled);

void BM_RowHash(benchmark::State& state) {
  Row row({Value::Int64(12345), Value::String("1.2.3.4"), Value::Double(9.5)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyHash(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowHash);

void BM_SizeEncoding(benchmark::State& state) {
  Random rng(3);
  for (auto _ : state) {
    uint64_t size = rng.Uniform(32ULL << 30);
    benchmark::DoNotOptimize(SizeEncoding::Decode(SizeEncoding::Encode(size)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SizeEncoding);

void BM_HeavyHittersAdd(benchmark::State& state) {
  Random rng(4);
  HeavyHitters hh(64);
  for (auto _ : state) {
    hh.Add(rng.Zipf(100000, 1.2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeavyHittersAdd);

void BM_HistogramAdd(benchmark::State& state) {
  Random rng(5);
  ApproxHistogram hist(64);
  for (auto _ : state) {
    hist.Add(rng.NextDouble() * 1e6);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_LikeMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LikeMatch("the-quick-brown-fox.html", "%quick%fox%.html"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LikeMatch);

}  // namespace
}  // namespace shark

BENCHMARK_MAIN();
