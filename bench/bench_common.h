#ifndef SHARK_BENCH_BENCH_COMMON_H_
#define SHARK_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "hive/hive_engine.h"
#include "sql/session.h"

namespace shark {
namespace bench {

/// The paper's cluster: 100 m2.4xlarge nodes x 8 cores (§6.1).
inline ClusterConfig PaperCluster(double virtual_data_scale,
                                  int num_nodes = 100) {
  ClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.hardware = HardwareModel();
  cfg.profile = EngineProfile::Shark();
  cfg.virtual_data_scale = virtual_data_scale;
  cfg.seed = 42;
  return cfg;
}

inline std::unique_ptr<SharkSession> MakeSharkSession(
    double virtual_data_scale, int num_nodes = 100) {
  return std::make_unique<SharkSession>(std::make_shared<ClusterContext>(
      PaperCluster(virtual_data_scale, num_nodes)));
}

/// Runs a query, asserting success; returns its virtual seconds.
inline QueryResult MustRun(SharkSession* session, const std::string& sql) {
  auto result = session->Sql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(*result);
}

/// Host wall-clock stopwatch — measures how long the bench process actually
/// took, as opposed to the simulator's virtual seconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Paper methodology (§6.1): run six times, discard the first (JIT warmup),
/// average the rest. Our virtual times are deterministic, but warm runs
/// matter (shuffle reuse is intentionally avoided by rebuilding the query;
/// cache effects are intentional), so we run once warm after a discard.
inline double TimedRun(SharkSession* session, const std::string& sql) {
  return MustRun(session, sql).metrics.virtual_seconds;
}

/// Virtual seconds plus host wall-clock milliseconds of one query.
struct TimedResult {
  double virtual_seconds = 0.0;
  double host_ms = 0.0;
};

inline TimedResult TimedRunWall(SharkSession* session, const std::string& sql) {
  WallTimer timer;
  QueryResult result = MustRun(session, sql);
  return {result.metrics.virtual_seconds, timer.ElapsedMs()};
}

struct BarRow {
  std::string label;
  double seconds;
  std::string note;
  double host_ms = -1.0;  // < 0: not measured / not shown
};

/// Prints a Figure-style horizontal bar chart with a virtual-seconds column,
/// plus the host wall-clock per row when measured.
inline void PrintBars(const std::string& title, const std::vector<BarRow>& rows,
                      const std::string& paper_note = "") {
  std::printf("\n== %s ==\n", title.c_str());
  if (!paper_note.empty()) std::printf("   paper: %s\n", paper_note.c_str());
  double max_s = 1e-12;
  for (const auto& r : rows) max_s = std::max(max_s, r.seconds);
  for (const auto& r : rows) {
    int width = static_cast<int>(50.0 * r.seconds / max_s + 0.5);
    std::string bar(static_cast<size_t>(width), '#');
    if (r.host_ms >= 0.0) {
      std::printf("  %-28s %9.2fs |%-50s| host %8.1fms %s\n", r.label.c_str(),
                  r.seconds, bar.c_str(), r.host_ms, r.note.c_str());
    } else {
      std::printf("  %-28s %9.2fs |%-50s| %s\n", r.label.c_str(), r.seconds,
                  bar.c_str(), r.note.c_str());
    }
  }
}

/// Machine-readable perf-trajectory line, one JSON object per measurement:
///   BENCH_parallel.json {"bench":...,"label":...,"host_threads":N,
///                        "host_ms":...,"virtual_seconds":...}
/// host_threads is the *configured* value (0 = all hardware threads).
inline void EmitParallelJson(const std::string& bench, const std::string& label,
                             int host_threads, double host_ms,
                             double virtual_seconds) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(label);
  w.Key("host_threads").Int(host_threads);
  w.Key("host_ms").FixedDouble(host_ms, 3);
  w.Key("virtual_seconds").FixedDouble(virtual_seconds, 6);
  w.EndObject();
  std::printf("BENCH_parallel.json %s\n", w.str().c_str());
}

/// Machine-readable vectorized-vs-scalar line, one JSON object per query:
///   BENCH_vector.json {"bench":...,"label":...,"host_ms_on":...,
///                      "host_ms_off":...,"wall_speedup":...}
/// Deliberately omits "virtual_seconds": wall-clock is noisy host time, so
/// these lines bypass the bench_gate timing diff and are checked against the
/// conservative `vector_floors` in bench/bench_baseline.json instead.
inline void EmitVectorJson(const std::string& bench, const std::string& label,
                           double host_ms_on, double host_ms_off) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(label);
  w.Key("host_ms_on").FixedDouble(host_ms_on, 3);
  w.Key("host_ms_off").FixedDouble(host_ms_off, 3);
  w.Key("wall_speedup")
      .FixedDouble(host_ms_on > 0 ? host_ms_off / host_ms_on : 0.0, 3);
  w.EndObject();
  std::printf("BENCH_vector.json %s\n", w.str().c_str());
}

/// Runs `sql` with the vectorized flag on and off (restoring it afterwards),
/// checks the virtual seconds are identical (the batch path is a pure
/// host-side optimization; exits on drift) and emits the BENCH_vector.json
/// line. Returns {on, off} host milliseconds. Each variant runs `reps` times
/// and keeps the fastest wall-clock to damp scheduler noise.
inline std::pair<double, double> CompareVectorized(SharkSession* session,
                                                   const std::string& bench,
                                                   const std::string& label,
                                                   const std::string& sql,
                                                   int reps = 3) {
  bool orig = session->options().vectorized;
  double best[2] = {1e300, 1e300};
  double virt[2] = {0.0, 0.0};
  for (int v = 0; v < 2; ++v) {
    session->options().vectorized = (v == 0);
    for (int r = 0; r < reps; ++r) {
      TimedResult t = TimedRunWall(session, sql);
      best[v] = std::min(best[v], t.host_ms);
      virt[v] = t.virtual_seconds;
    }
  }
  session->options().vectorized = orig;
  // Identical up to the last ULP: the session's virtual clock advances
  // across queries, and (end - start) rounds differently depending on the
  // absolute clock position, so back-to-back runs of even the *same* plan
  // differ in the last bit. Bit-exact on/off equality is asserted by the
  // VecSqlTest fixture, which runs each variant in a fresh session.
  double scale = std::max(std::abs(virt[0]), std::abs(virt[1]));
  if (std::abs(virt[0] - virt[1]) > 1e-9 * scale) {
    std::fprintf(stderr,
                 "%s/%s: virtual seconds changed with the vectorized flag "
                 "(%.9f on vs %.9f off) — the batch path must be a pure "
                 "host-side optimization\n",
                 bench.c_str(), label.c_str(), virt[0], virt[1]);
    std::exit(1);
  }
  EmitVectorJson(bench, label, best[0], best[1]);
  return {best[0], best[1]};
}

/// Writes a query's recorded profile as a chrome://tracing file (load it at
/// chrome://tracing or https://ui.perfetto.dev) and prints a machine-readable
/// pointer line:
///   BENCH_trace.json {"bench":...,"label":...,"file":...,"stages":N,"tasks":N}
inline void WriteChromeTrace(const std::string& bench, const std::string& label,
                             const QueryResult& result,
                             const std::string& path) {
  if (result.profile == nullptr) {
    std::fprintf(stderr, "%s: no profile recorded for %s\n", bench.c_str(),
                 label.c_str());
    return;
  }
  std::string json = result.profile->ToChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench.c_str(), path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  int tasks = 0;
  for (const StageTrace& st : result.profile->stages) {
    tasks += static_cast<int>(st.tasks.size());
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(label);
  w.Key("file").String(path);
  w.Key("stages").Int(static_cast<int>(result.profile->stages.size()));
  w.Key("tasks").Int(tasks);
  w.EndObject();
  std::printf("BENCH_trace.json %s\n", w.str().c_str());
}

/// Writes the context's full cluster-metrics timeline (virtual-time samples,
/// per-stage skew reports, counter totals) to `timeline_path` and prints a
/// machine-readable line whose `metrics` section carries the skew reports, a
/// decimated cluster/per-node utilization series, and the counters:
///   BENCH_metrics.json {"bench":...,"label":...,"file":...,"metrics":{...}}
/// Everything in it is a virtual-time observable, so the line is
/// byte-identical across host thread counts; tools/bench_gate consumes it.
inline void EmitMetricsJson(const std::string& bench, const std::string& label,
                            ClusterContext& ctx,
                            const std::string& timeline_path) {
  ClusterMetrics& cm = ctx.metrics();
  std::string timeline = cm.TimelineJson();
  std::FILE* f = std::fopen(timeline_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(timeline.data(), 1, timeline.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "%s: cannot write %s\n", bench.c_str(),
                 timeline_path.c_str());
  }

  const std::vector<ClusterSample>& samples = cm.timeline().samples();
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench);
  w.Key("label").String(label);
  w.Key("file").String(timeline_path);
  w.Key("metrics").BeginObject();
  // Per-node utilization series, decimated to at most 32 points for the
  // stdout line (the file keeps the full resolution).
  constexpr size_t kInlinePoints = 32;
  size_t stride = samples.empty() ? 1 : (samples.size() + kInlinePoints - 1) /
                                            kInlinePoints;
  w.Key("utilization").BeginArray();
  for (size_t i = 0; i < samples.size(); i += stride) {
    const ClusterSample& s = samples[i];
    w.BeginObject();
    w.Key("t").FixedDouble(s.time, 6);
    w.Key("busy_cores").Int(s.busy_cores_total);
    w.Key("pending").Int(s.pending_tasks);
    w.Key("busy_per_node").BeginArray();
    for (int b : s.busy_per_node) w.Int(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("stages").BeginArray();
  for (const StageSkewReport& r : cm.stage_reports()) {
    w.BeginObject();
    w.Key("label").String(r.label);
    w.Key("tasks").Int(r.tasks);
    w.Key("dur_p50").FixedDouble(r.dur_p50, 6);
    w.Key("dur_p95").FixedDouble(r.dur_p95, 6);
    w.Key("dur_max").FixedDouble(r.dur_max, 6);
    w.Key("dur_skew").FixedDouble(r.dur_skew, 3);
    w.Key("straggler_partition").Int(r.straggler_partition);
    w.Key("straggler_node").Int(r.straggler_node);
    if (r.buckets > 0) {
      w.Key("buckets").Int(r.buckets);
      w.Key("bucket_skew").FixedDouble(r.bucket_skew, 3);
      w.Key("culprit_bucket").Int(r.culprit_bucket);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : cm.registry().CounterSnapshot()) {
    w.Key(name).UInt(value);
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
  std::printf("BENCH_metrics.json %s\n", w.str().c_str());
}

inline void PrintHeader(const std::string& name, const std::string& claim) {
  std::printf("=====================================================\n");
  std::printf("%s\n", name.c_str());
  std::printf("reproduces: %s\n", claim.c_str());
  std::printf("=====================================================\n");
}

inline double Ratio(double slow, double fast) {
  return fast > 0 ? slow / fast : 0.0;
}

}  // namespace bench
}  // namespace shark

#endif  // SHARK_BENCH_BENCH_COMMON_H_
