#ifndef SHARK_BENCH_BENCH_COMMON_H_
#define SHARK_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hive/hive_engine.h"
#include "sql/session.h"

namespace shark {
namespace bench {

/// The paper's cluster: 100 m2.4xlarge nodes x 8 cores (§6.1).
inline ClusterConfig PaperCluster(double virtual_data_scale,
                                  int num_nodes = 100) {
  ClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.hardware = HardwareModel();
  cfg.profile = EngineProfile::Shark();
  cfg.virtual_data_scale = virtual_data_scale;
  cfg.seed = 42;
  return cfg;
}

inline std::unique_ptr<SharkSession> MakeSharkSession(
    double virtual_data_scale, int num_nodes = 100) {
  return std::make_unique<SharkSession>(std::make_shared<ClusterContext>(
      PaperCluster(virtual_data_scale, num_nodes)));
}

/// Runs a query, asserting success; returns its virtual seconds.
inline QueryResult MustRun(SharkSession* session, const std::string& sql) {
  auto result = session->Sql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return std::move(*result);
}

/// Paper methodology (§6.1): run six times, discard the first (JIT warmup),
/// average the rest. Our virtual times are deterministic, but warm runs
/// matter (shuffle reuse is intentionally avoided by rebuilding the query;
/// cache effects are intentional), so we run once warm after a discard.
inline double TimedRun(SharkSession* session, const std::string& sql) {
  return MustRun(session, sql).metrics.virtual_seconds;
}

struct BarRow {
  std::string label;
  double seconds;
  std::string note;
};

/// Prints a Figure-style horizontal bar chart with a seconds column.
inline void PrintBars(const std::string& title, const std::vector<BarRow>& rows,
                      const std::string& paper_note = "") {
  std::printf("\n== %s ==\n", title.c_str());
  if (!paper_note.empty()) std::printf("   paper: %s\n", paper_note.c_str());
  double max_s = 1e-12;
  for (const auto& r : rows) max_s = std::max(max_s, r.seconds);
  for (const auto& r : rows) {
    int width = static_cast<int>(50.0 * r.seconds / max_s + 0.5);
    std::string bar(static_cast<size_t>(width), '#');
    std::printf("  %-28s %9.2fs |%-50s| %s\n", r.label.c_str(), r.seconds,
                bar.c_str(), r.note.c_str());
  }
}

inline void PrintHeader(const std::string& name, const std::string& claim) {
  std::printf("=====================================================\n");
  std::printf("%s\n", name.c_str());
  std::printf("reproduces: %s\n", claim.c_str());
  std::printf("=====================================================\n");
}

inline double Ratio(double slow, double fast) {
  return fast > 0 ? slow / fast : 0.0;
}

}  // namespace bench
}  // namespace shark

#endif  // SHARK_BENCH_BENCH_COMMON_H_
