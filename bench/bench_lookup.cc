// Point-lookup serving benchmark for the secondary-index subsystem: a
// selectivity sweep comparing the full in-memory columnar scan against the
// B+-tree IndexRangeScan on the same query (virtual seconds, deterministic),
// plus an open-loop high-QPS sweep of point lookups through the JobManager
// with indexes on vs off, reporting p50/p99 latency and achieved QPS.
//
//   bench_lookup            full selectivity points + QPS sweep
//   bench_lookup --smoke    same point phase, smaller QPS sweep (ci.sh)
//
// The lookup table's key column is a *permutation* of 0..N-1 (k = i * P mod
// N), so per-partition min/max statistics cannot prune the scan — every
// block spans the whole key domain, which is exactly the regime where a
// secondary index earns its memory. All reported times are virtual-time
// observables; every BENCH_lookup.json line is bit-identical across runs
// and host thread counts. tools/bench_gate --index-floors enforces the
// summary line against bench/bench_baseline.json `index_floors`.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "rdd/job_manager.h"

using namespace shark;         // NOLINT(build/namespaces)
using namespace shark::bench;  // NOLINT(build/namespaces)

namespace {

// 100k unique keys; 99991 is coprime to 100000, so k is a permutation.
constexpr int kNumRows = 100000;
constexpr int64_t kKeyStride = 99991;
constexpr int kNumBlocks = 16;

std::unique_ptr<SharkSession> MakeLookupSession() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.hardware.cores_per_node = 2;
  cfg.profile = EngineProfile::Shark();
  // Scale the scan work up to paper-sized data (2M effective rows) while
  // keeping the host-side dataset small; task overheads do not scale.
  cfg.virtual_data_scale = 20.0;
  cfg.seed = 42;
  auto session =
      std::make_unique<SharkSession>(std::make_shared<ClusterContext>(cfg));

  Schema schema({{"k", TypeKind::kInt64},
                 {"pad", TypeKind::kString},
                 {"v", TypeKind::kDouble}});
  std::vector<Row> rows;
  rows.reserve(kNumRows);
  for (int i = 0; i < kNumRows; ++i) {
    int64_t k = (static_cast<int64_t>(i) * kKeyStride) % kNumRows;
    rows.push_back(Row({Value::Int64(k),
                        Value::String("pad-" + std::to_string(i % 97)),
                        Value::Double(0.5 * i)}));
  }
  Status s = session->CreateDfsTable("lookup", schema, rows, kNumBlocks);
  if (s.ok()) s = session->CacheTable("lookup");
  if (!s.ok()) {
    std::fprintf(stderr, "lookup table setup failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  MustRun(session.get(), "ANALYZE TABLE lookup");
  MustRun(session.get(), "CREATE INDEX idx_k ON lookup(k)");
  return session;
}

struct PointResult {
  std::string label;
  int match_rows = 0;
  double selectivity_pct = 0.0;
  double scan_seconds = 0.0;
  double index_seconds = 0.0;
  double speedup = 0.0;
  bool index_plan = false;  // EXPLAIN chose IndexRangeScan
};

/// Times one query with indexes disabled then enabled (one warm discard
/// each, per the paper's §6.1 methodology) and records whether the planner
/// actually flipped to IndexRangeScan.
PointResult RunPoint(SharkSession* session, const std::string& label,
                     const std::string& sql, int match_rows) {
  PointResult p;
  p.label = label;
  p.match_rows = match_rows;
  p.selectivity_pct = 100.0 * match_rows / kNumRows;

  session->options().use_indexes = false;
  TimedRun(session, sql);  // warm discard
  p.scan_seconds = TimedRun(session, sql);

  session->options().use_indexes = true;
  auto plan = session->Explain(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "EXPLAIN failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  p.index_plan = plan->find("IndexRangeScan") != std::string::npos;
  TimedRun(session, sql);  // warm discard
  p.index_seconds = TimedRun(session, sql);
  p.speedup = Ratio(p.scan_seconds, p.index_seconds);
  return p;
}

void EmitPointJson(const PointResult& p) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("lookup");
  w.Key("mode").String("point");
  w.Key("label").String(p.label);
  w.Key("match_rows").Int(p.match_rows);
  w.Key("selectivity_pct").FixedDouble(p.selectivity_pct, 4);
  w.Key("scan_seconds").FixedDouble(p.scan_seconds, 6);
  w.Key("index_seconds").FixedDouble(p.index_seconds, 6);
  w.Key("speedup").FixedDouble(p.speedup, 3);
  w.Key("index_plan").Bool(p.index_plan);
  w.EndObject();
  std::printf("BENCH_lookup.json %s\n", w.str().c_str());
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx =
      static_cast<size_t>(std::ceil(p * static_cast<double>(v.size())));
  if (idx > 0) --idx;
  return v[std::min(idx, v.size() - 1)];
}

struct SweepPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Open-loop point-lookup stream: `num_queries` single-key equality probes
/// with exponential inter-arrival gaps at `offered_qps` (virtual time),
/// run through the JobManager's admission control. Keys come from a
/// fixed-seed RNG, so the stream is identical for the indexed and
/// index-disabled runs.
SweepPoint RunSweep(bool use_index, double offered_qps, int num_queries,
                    uint32_t seed) {
  auto session = MakeLookupSession();
  session->options().use_indexes = use_index;
  ClusterContext& ctx = session->context();

  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(offered_qps);
  std::uniform_int_distribution<int64_t> key(0, kNumRows - 1);
  std::vector<JobSpec> specs(static_cast<size_t>(num_queries));
  double at = 0.0;
  for (int i = 0; i < num_queries; ++i) {
    at += gap(rng);
    JobSpec& spec = specs[static_cast<size_t>(i)];
    spec.label = "lookup#" + std::to_string(i);
    spec.arrival_vtime = at;
    std::string sql =
        "SELECT k, v FROM lookup WHERE k = " + std::to_string(key(rng));
    SharkSession* sp = session.get();
    spec.body = [sp, sql]() -> Status { return sp->Sql(sql).status(); };
  }

  JobManager jm(&ctx);
  std::vector<JobOutcome> outcomes = jm.RunJobs(std::move(specs));

  SweepPoint point;
  point.offered_qps = offered_qps;
  std::vector<double> latencies;
  double first_arrival = 1e300, last_finish = 0.0;
  for (const JobOutcome& o : outcomes) {
    if (!o.status.ok()) {
      std::fprintf(stderr, "sweep lookup failed: %s\n",
                   o.status.ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(o.latency());
    first_arrival = std::min(first_arrival, o.arrival_vtime);
    last_finish = std::max(last_finish, o.finish_vtime);
  }
  double window = last_finish - first_arrival;
  point.achieved_qps = window > 0 ? outcomes.size() / window : 0.0;
  point.p50 = Percentile(latencies, 0.50);
  point.p99 = Percentile(latencies, 0.99);
  return point;
}

void EmitSweepJson(bool use_index, const SweepPoint& p) {
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("lookup");
  w.Key("mode").String("sweep");
  w.Key("indexes").Bool(use_index);
  w.Key("offered_qps").FixedDouble(p.offered_qps, 3);
  w.Key("achieved_qps").FixedDouble(p.achieved_qps, 6);
  w.Key("p50_latency").FixedDouble(p.p50, 6);
  w.Key("p99_latency").FixedDouble(p.p99, 6);
  w.EndObject();
  std::printf("BENCH_lookup.json %s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  PrintHeader("Lookup - secondary-index point & range serving",
              "a B+-tree secondary index beats the full in-memory columnar "
              "scan by >=5x on selective lookups and lifts saturation QPS "
              "for point-lookup serving");

  // -- selectivity points (gated) -------------------------------------------
  auto session = MakeLookupSession();
  struct Spec {
    const char* label;
    std::string sql;
    int match_rows;
  };
  std::vector<Spec> specs = {
      {"eq_1", "SELECT k, v FROM lookup WHERE k = 73123", 1},
      {"between_10",
       "SELECT k, v FROM lookup WHERE k BETWEEN 50000 AND 50009", 10},
      {"between_100",
       "SELECT k, v FROM lookup WHERE k BETWEEN 50000 AND 50099", 100},
      {"between_1000",
       "SELECT k, v FROM lookup WHERE k BETWEEN 50000 AND 50999", 1000},
  };
  std::printf("\n%14s %10s %12s %13s %14s %9s %6s\n", "point", "rows",
              "selectivity", "scan (s)", "index (s)", "speedup", "plan");
  double gated_speedup = 0.0;
  bool gated_plan = false;
  for (const Spec& s : specs) {
    PointResult p = RunPoint(session.get(), s.label, s.sql, s.match_rows);
    std::printf("%14s %10d %11.4f%% %13.6f %14.6f %8.2fx %6s\n",
                p.label.c_str(), p.match_rows, p.selectivity_pct,
                p.scan_seconds, p.index_seconds, p.speedup,
                p.index_plan ? "index" : "scan");
    EmitPointJson(p);
    if (s.match_rows == 1) {
      gated_speedup = p.speedup;
      gated_plan = p.index_plan;
    }
  }
  if (!gated_plan) {
    std::fprintf(stderr,
                 "the selective point lookup did not plan as IndexRangeScan "
                 "- the gated speedup would be measuring nothing\n");
    return 1;
  }
  session.reset();

  // -- open-loop QPS sweep, indexes on vs off -------------------------------
  std::vector<double> rates = smoke ? std::vector<double>{32.0, 512.0}
                                    : std::vector<double>{32.0, 128.0, 512.0};
  int num_queries = smoke ? 40 : 120;
  std::printf("\n%9s %12s %13s %11s %11s\n", "indexes", "offered_qps",
              "achieved_qps", "p50 (s)", "p99 (s)");
  double saturation_on = 0.0, saturation_off = 0.0;
  double p99_on = 0.0, p99_off = 0.0;  // at the highest offered rate
  for (int use_index = 0; use_index < 2; ++use_index) {
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      // Seed depends only on the configuration, never on the run.
      uint32_t seed = 7000u + static_cast<uint32_t>(ri);
      SweepPoint p = RunSweep(use_index == 1, rates[ri], num_queries, seed);
      std::printf("%9s %12.1f %13.3f %11.4f %11.4f\n",
                  use_index ? "on" : "off", p.offered_qps, p.achieved_qps,
                  p.p50, p.p99);
      EmitSweepJson(use_index == 1, p);
      if (use_index == 1) {
        saturation_on = std::max(saturation_on, p.achieved_qps);
        p99_on = p.p99;
      } else {
        saturation_off = std::max(saturation_off, p.achieved_qps);
        p99_off = p.p99;
      }
    }
  }

  double qps_ratio = Ratio(saturation_on, saturation_off);
  std::printf("\nselective point lookup: %.2fx faster indexed; saturation "
              "%.1f QPS indexed vs %.1f QPS scan (%.2fx)\n",
              gated_speedup, saturation_on, saturation_off, qps_ratio);
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("lookup");
  w.Key("mode").String("summary");
  w.Key("speedup_index_vs_scan").FixedDouble(gated_speedup, 3);
  w.Key("saturation_qps_indexed").FixedDouble(saturation_on, 6);
  w.Key("saturation_qps_scan").FixedDouble(saturation_off, 6);
  w.Key("qps_ratio_index_vs_scan").FixedDouble(qps_ratio, 3);
  w.Key("p99_indexed").FixedDouble(p99_on, 6);
  w.Key("p99_scan").FixedDouble(p99_off, 6);
  w.EndObject();
  std::printf("BENCH_lookup.json %s\n", w.str().c_str());
  return 0;
}
