// Ablation over the engine-profile knobs §7 identifies as the reasons
// MapReduce-based SQL engines are slow. Starting from the full Hadoop/Hive
// profile, each step enables one Shark behaviour (cumulatively) and re-runs
// the same aggregation, showing where the 20-100x actually comes from:
// task launch overhead, sorted on-disk shuffles, per-stage DFS
// materialization, and finally the columnar memory store.
#include "bench/bench_common.h"
#include "workloads/pavlo.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

double RunWithProfile(SharkSession* reference, const EngineProfile& profile,
                      bool cache_table, const std::string& query) {
  ClusterConfig cfg = reference->context().config();
  cfg.profile = profile;
  auto ctx = std::make_shared<ClusterContext>(
      cfg, reference->shared_context()->shared_dfs());
  SharkSession session(ctx);
  ApplyHiveOptions(&session, HiveConfig{800, 0});  // tuned reducers throughout
  session.options().pde = profile.pde_enabled;
  if (MirrorDfsTables(reference, &session).ok() && cache_table &&
      profile.memory_store) {
    if (!session.CacheTable("uservisits").ok()) std::exit(1);
  }
  return TimedRun(&session, query);
}

}  // namespace

int main() {
  PrintHeader("Ablation - which engine changes buy the speedup (§7)",
              "each knob moves the Hadoop profile one step toward Shark");

  PavloConfig data;
  data.uservisits_rows = 1000000;
  data.uservisits_blocks = 400;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GeneratePavloTables(session.get(), data).ok()) return 1;

  // The join compiles to a multi-stage plan, so every knob — including
  // per-stage DFS materialization and map-output sorting — has work to cut.
  const std::string query = PavloJoinQuery();
  std::vector<BarRow> rows;

  EngineProfile p = EngineProfile::Hadoop();
  rows.push_back({"Hadoop/Hive baseline",
                  RunWithProfile(session.get(), p, false, query), ""});

  p.task_launch_overhead_sec = 0.005;
  p.heartbeat_interval_sec = 0.0;
  rows.push_back({"+ 5ms task launch", RunWithProfile(session.get(), p, false, query), ""});

  p.sort_before_shuffle = false;
  rows.push_back({"+ hash (unsorted) shuffle", RunWithProfile(session.get(), p, false, query), ""});

  p.shuffle_through_disk = false;
  rows.push_back({"+ in-memory shuffle", RunWithProfile(session.get(), p, false, query), ""});

  p.materialize_stages_to_dfs = false;
  rows.push_back({"+ general DAG (no HDFS hops)", RunWithProfile(session.get(), p, false, query), ""});

  p.pde_enabled = true;
  rows.push_back({"+ PDE reducer selection", RunWithProfile(session.get(), p, false, query), ""});

  p.memory_store = true;
  rows.push_back({"+ columnar memstore (Shark)", RunWithProfile(session.get(), p, true, query), ""});

  PrintBars("rankings-uservisits join under cumulative knobs", rows);
  std::printf("\nend-to-end: %.0fx from baseline to full Shark\n",
              Ratio(rows.front().seconds, rows.back().seconds));
  return 0;
}
