// Reproduces Figure 9: query performance in the presence of node failures,
// on a 50-node cluster (§6.3.3). A group-by query runs over the cached
// lineitem table; killing a worker mid-query loses its cached partitions and
// shuffle outputs, which the engine recomputes from lineage in parallel on
// the surviving nodes — far cheaper than reloading the dataset.
#include "bench/bench_common.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 9 - Query time with failures (50-node cluster)",
              "single failure adds seconds; full reload costs far more; "
              "post-recovery back to normal");

  TpchConfig data;
  double vscale = data.VirtualScaleFor(600e6);  // the paper's 100GB dataset
  auto session = MakeSharkSession(vscale, /*num_nodes=*/50);
  if (!GenerateTpchTables(session.get(), data).ok()) return 1;

  const std::string query = TpchAggregationQuery("L_SHIPMODE");

  // Load into the memory store; measure the load for the "full reload" bar.
  if (!session->CacheTable("lineitem").ok()) return 1;
  double load_seconds = session->last_load_metrics().virtual_seconds;

  // Warm run (fills any lazily-computed state), then the measured baseline.
  TimedRun(session.get(), query);
  double no_failure = TimedRun(session.get(), query);

  // Kill one worker shortly after the next query starts.
  ClusterContext& ctx = session->context();
  ctx.InjectFault(FaultEvent{FaultEvent::Kind::kKill, ctx.now() + 0.2, 7, 1.0});
  QueryResult failed_run = MustRun(session.get(), query);
  double with_failure = failed_run.metrics.virtual_seconds;

  // Subsequent queries run on 49 nodes against the recovered dataset.
  double post_recovery = TimedRun(session.get(), query);

  double full_reload = load_seconds + no_failure;

  PrintBars("SELECT L_SHIPMODE, COUNT(*) ... GROUP BY (100GB lineitem)",
            {{"No failures", no_failure, ""},
             {"Single failure", with_failure,
              std::to_string(failed_run.metrics.map_tasks_recovered) +
                  " map tasks recomputed"},
             {"Post-recovery", post_recovery, "49 nodes"},
             {"Full reload", full_reload, "reload + rerun"}},
            "paper: ~17s / ~20s / ~16s / ~38s");

  std::printf("\nfailure overhead: +%.1fs (paper ~3s); full reload is %.1fx "
              "the failure-recovery cost\n",
              with_failure - no_failure,
              Ratio(full_reload - no_failure, with_failure - no_failure));
  std::printf("tasks failed: %d, recovered map tasks: %d\n",
              failed_run.metrics.tasks_failed,
              failed_run.metrics.map_tasks_recovered);

  // The failure run's timeline (aborted tasks, the death event, the nested
  // lineage-recovery stage) as a chrome://tracing file.
  WriteChromeTrace("fig09_fault_tolerance", "agg_shipmode_node_death",
                   failed_run, "fig09_trace.json");
  return 0;
}
