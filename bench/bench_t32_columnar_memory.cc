// Reproduces the §3.2 memory-footprint observations: storing a lineitem
// sample as per-value heap objects ("JVM objects": ~971 MB for 270 MB of
// data in the paper) versus a serialized row format (~289 MB) versus Shark's
// columnar store with per-column compression. Also prints the chosen
// encoding per column (§3.3's local decisions).
#include <cstdio>

#include "bench/bench_common.h"
#include "columnar/table_partition.h"
#include "common/string_util.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("§3.2 - Columnar memory store footprint",
              "object storage ~3.4x serialized size; columnar+compression "
              "beats both");

  TpchConfig data;
  data.lineitem_rows = 200000;
  auto session = MakeSharkSession(1.0);
  if (!GenerateTpchTables(session.get(), data).ok()) return 1;

  auto table = session->Sql2Rdd("SELECT * FROM lineitem");
  if (!table.ok()) return 1;
  auto rows_result = session->context().Collect(table->rdd);
  if (!rows_result.ok()) return 1;
  const std::vector<Row>& rows = *rows_result;

  // (a) one heap object per value, with JVM-style per-object headers.
  uint64_t object_bytes = 0;
  for (const Row& r : rows) {
    object_bytes += 16;  // row object header
    for (const Value& v : r.fields) object_bytes += ApproxSizeOf(v) + 16;
  }
  // (b) serialized rows (binary SerDe).
  uint64_t serialized_bytes = 0;
  for (const Row& r : rows) {
    serialized_bytes += SerializedSizeOf(r, DfsFormat::kBinary);
  }
  // (c) columnar with per-partition compression choice.
  auto part = TablePartition::FromRows(table->schema, rows);
  uint64_t columnar_bytes = part->MemoryBytes();
  // (d) columnar without compression (plain encodings only).
  uint64_t plain_bytes = 64;
  for (int c = 0; c < table->schema.num_fields(); ++c) {
    std::vector<Value> column;
    column.reserve(rows.size());
    for (const Row& r : rows) column.push_back(r.Get(c));
    plain_bytes +=
        EncodeColumn(table->schema.field(c).type, column, Encoding::kPlain)
            ->MemoryBytes();
  }

  std::printf("\nlineitem sample: %zu rows\n", rows.size());
  std::printf("%-34s %12s %9s\n", "representation", "bytes", "ratio");
  auto line = [&](const char* name, uint64_t bytes) {
    std::printf("%-34s %12s %8.2fx\n", name, shark::FormatBytes(bytes).c_str(),
                static_cast<double>(object_bytes) / static_cast<double>(bytes));
  };
  line("heap objects (Spark default)", object_bytes);
  line("serialized rows (binary)", serialized_bytes);
  line("columnar, plain", plain_bytes);
  line("columnar + compression (Shark)", columnar_bytes);
  std::printf("\npaper: 971 MB objects vs 289 MB serialized (3.4x); "
              "compression adds up to another ~5x on favorable columns\n");

  std::printf("\nper-column encodings chosen by the loader (§3.3):\n");
  for (int c = 0; c < part->num_columns(); ++c) {
    std::printf("  %-16s %-8s %10s\n", table->schema.field(c).name.c_str(),
                EncodingName(part->column(c).encoding()),
                shark::FormatBytes(part->ColumnBytes(c)).c_str());
  }
  return 0;
}
