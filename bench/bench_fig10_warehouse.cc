// Reproduces Figure 10: the four prototypical queries from a video analytics
// company's real Hive warehouse (§6.4). Shark answers them out of the
// columnar memory store at interactive latency, helped by map pruning over
// the data's natural (datacenter, day) clustering; Hive takes 50-100x
// longer.
#include "bench/bench_common.h"
#include "workloads/warehouse.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 10 - Real Hive warehouse queries",
              "sub-second Shark vs 50-100x slower Hive; map pruning cuts "
              "scanned data ~30x");

  WarehouseConfig data;
  auto session = MakeSharkSession(17000.0);  // ~1.7TB virtual
  if (!GenerateWarehouseTable(session.get(), data).ok()) return 1;
  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  const std::string queries[] = {WarehouseQ1(7, "2012-06-11"), WarehouseQ2(),
                                 WarehouseQ3(), WarehouseQ4()};
  const char* labels[] = {"Q1", "Q2", "Q3", "Q4"};

  double disk[4];
  for (int q = 0; q < 4; ++q) disk[q] = TimedRun(session.get(), queries[q]);

  if (!session->CacheTable("sessions").ok()) return 1;

  double total_scanned = 0, total_partitions = 0;
  for (int q = 0; q < 4; ++q) {
    QueryResult mem = MustRun(session.get(), queries[q]);
    double hive_time = TimedRun(hive.get(), queries[q]);
    int total = mem.metrics.partitions_scanned + mem.metrics.partitions_pruned;
    total_scanned += mem.metrics.partitions_scanned;
    total_partitions += total;
    std::string prune_note =
        "scanned " + std::to_string(mem.metrics.partitions_scanned) + "/" +
        std::to_string(total) + " partitions";
    PrintBars(std::string("Warehouse ") + labels[q],
              {{"Shark", mem.metrics.virtual_seconds, prune_note},
               {"Shark (disk)", disk[q], ""},
               {"Hive", hive_time, ""}});
    std::printf("   Shark vs Hive: %.0fx\n",
                Ratio(hive_time, mem.metrics.virtual_seconds));
  }

  if (total_scanned > 0) {
    std::printf("\nmap pruning scan reduction across Q1-Q4: %.1fx\n",
                total_partitions / total_scanned);
  }

  // The paper's ~30x average comes from the full 3833-query trace, which is
  // dominated by daily-report style queries with time/customer predicates
  // (§3.5). Reproduce that population with a sweep of day-filtered reports.
  double sweep_scanned = 0, sweep_total = 0;
  for (int day = 2; day <= 28; day += 3) {
    char date[16];
    std::snprintf(date, sizeof(date), "2012-06-%02d", day);
    QueryResult r = MustRun(
        session.get(),
        "SELECT country, COUNT(*), AVG(duration), AVG(buffering_ratio) "
        "FROM sessions WHERE day = DATE '" + std::string(date) +
            "' GROUP BY country");
    sweep_scanned += r.metrics.partitions_scanned;
    sweep_total += r.metrics.partitions_scanned + r.metrics.partitions_pruned;
  }
  std::printf("daily-report sweep (9 queries): scan reduction %.1fx "
              "(paper: ~30x average over the real trace)\n",
              sweep_total / sweep_scanned);
  return 0;
}
