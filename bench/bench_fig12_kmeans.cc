// Reproduces Figure 12: per-iteration runtime of k-means clustering on the
// 100 GB synthetic dataset. K-means is more CPU-bound than logistic
// regression (k x D distance evaluations per point), so Shark's advantage
// over Hadoop shrinks to ~30x (§6.5).
#include "bench/bench_common.h"
#include "ml/kmeans.h"
#include "ml/table_rdd.h"
#include "workloads/mldata.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

double SteadyState(const std::vector<double>& seconds) {
  double total = 0;
  for (size_t i = 1; i < seconds.size(); ++i) total += seconds[i];
  return total / static_cast<double>(seconds.size() - 1);
}

Result<RddPtr<MlVector>> VectorsOf(SharkSession* session,
                                   const std::string& table, int dims,
                                   bool cache) {
  SHARK_ASSIGN_OR_RETURN(TableRdd rows,
                         session->Sql2Rdd("SELECT * FROM " + table));
  SHARK_ASSIGN_OR_RETURN(RddPtr<MlVector> vectors,
                         RowsToVectors(rows, MlFeatureColumns(dims)));
  if (cache) vectors->Cache();
  return vectors;
}

}  // namespace

int main() {
  PrintHeader("Figure 12 - K-means clustering, per-iteration runtime",
              "Shark ~30x Hadoop(text): the workflow is more CPU-bound");

  MlDataConfig data;
  auto session = MakeSharkSession(data.VirtualScale());
  if (!GenerateMlTable(session.get(), data).ok()) return 1;
  {
    auto rows = session->Sql2Rdd("SELECT * FROM ml_points");
    if (!rows.ok()) return 1;
    auto collected = session->context().Collect(rows->rdd);
    if (!collected.ok()) return 1;
    if (!session->CreateDfsTable("ml_points_bin", rows->schema, *collected,
                                 data.blocks, DfsFormat::kBinary)
             .ok()) {
      return 1;
    }
  }
  auto hive_result = MakeHiveSession(session.get());
  if (!hive_result.ok()) return 1;
  auto hive = std::move(*hive_result);

  KMeans::Options opts;
  opts.k = 10;
  opts.iterations = 10;

  auto shark_vecs =
      VectorsOf(session.get(), "ml_points", data.dimensions, /*cache=*/true);
  if (!shark_vecs.ok()) return 1;
  auto shark_model =
      KMeans::Train(&session->context(), *shark_vecs, data.dimensions, opts);
  if (!shark_model.ok()) return 1;

  auto text_vecs =
      VectorsOf(hive.get(), "ml_points", data.dimensions, /*cache=*/false);
  if (!text_vecs.ok()) return 1;
  auto hadoop_text =
      KMeans::Train(&hive->context(), *text_vecs, data.dimensions, opts);
  if (!hadoop_text.ok()) return 1;

  auto bin_vecs =
      VectorsOf(hive.get(), "ml_points_bin", data.dimensions, /*cache=*/false);
  if (!bin_vecs.ok()) return 1;
  auto hadoop_bin =
      KMeans::Train(&hive->context(), *bin_vecs, data.dimensions, opts);
  if (!hadoop_bin.ok()) return 1;

  double shark_iter = SteadyState(shark_model->iteration_seconds);
  double text_iter = SteadyState(hadoop_text->iteration_seconds);
  double bin_iter = SteadyState(hadoop_bin->iteration_seconds);

  PrintBars("K-means, per-iteration",
            {{"Shark", shark_iter, "cached after first pass"},
             {"Hadoop (binary)", bin_iter, ""},
             {"Hadoop (text)", text_iter, ""}},
            "paper: 4.1s / ~125s / ~185s");
  std::printf("\nspeedups: %.0fx vs text, %.0fx vs binary (paper ~30x); "
              "k-means iteration is %.1fx a logistic regression iteration "
              "for Shark (CPU-bound)\n",
              Ratio(text_iter, shark_iter), Ratio(bin_iter, shark_iter),
              shark_iter > 0 ? shark_iter / 0.96 : 0.0);
  return 0;
}
