// Reproduces Figure 7: TPC-H lineitem group-by sweep (no group / 7 groups /
// ~2500 groups / per-order-key groups) at two scale points, comparing Shark
// (memory), Shark (disk), hand-tuned Hive and default-heuristic Hive. The
// paper's headline: 80x over Hive for few groups, ~20x when the shuffle
// dominates, and a catastrophic Hive default reducer count.
#include "bench/bench_common.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

struct ScalePoint {
  const char* name;
  double paper_rows;
};

void RunScale(const ScalePoint& scale) {
  TpchConfig data;
  double vscale = data.VirtualScaleFor(scale.paper_rows);
  auto session = MakeSharkSession(vscale);
  if (!GenerateTpchTables(session.get(), data).ok()) std::exit(1);
  auto hive_default_r = MakeHiveSession(session.get());
  auto hive_tuned_r = MakeHiveSession(session.get(), HiveConfig{800, 0});
  if (!hive_default_r.ok() || !hive_tuned_r.ok()) std::exit(1);
  auto hive_default = std::move(*hive_default_r);
  auto hive_tuned = std::move(*hive_tuned_r);

  struct QueryPoint {
    const char* label;
    std::string column;
  };
  const QueryPoint queries[] = {
      {"1 group (COUNT(*))", ""},
      {"7 groups (SHIPMODE)", "L_SHIPMODE"},
      {"~2.5K groups (RECEIPTDATE)", "L_RECEIPTDATE"},
      {"per-order groups (ORDERKEY)", "L_ORDERKEY"},
  };

  std::printf("\n---- TPC-H %s (lineitem %lld rows, virtual scale x%.0f) ----\n",
              scale.name, static_cast<long long>(data.lineitem_rows), vscale);

  // Disk runs first, then cache lineitem for the in-memory runs.
  double disk[4];
  for (int q = 0; q < 4; ++q) {
    disk[q] = TimedRun(session.get(), TpchAggregationQuery(queries[q].column));
  }
  if (!session->CacheTable("lineitem").ok()) std::exit(1);
  for (int q = 0; q < 4; ++q) {
    const std::string sql = TpchAggregationQuery(queries[q].column);
    double mem = TimedRun(session.get(), sql);
    double tuned = TimedRun(hive_tuned.get(), sql);
    double untuned = TimedRun(hive_default.get(), sql);
    PrintBars(std::string(scale.name) + " " + queries[q].label,
              {{"Shark", mem, ""},
               {"Shark (disk)", disk[q], ""},
               {"Hive (tuned)", tuned, ""},
               {"Hive", untuned, ""}});
    std::printf("   speedup vs tuned Hive: %.1fx (mem), %.1fx (disk); "
                "untuned/tuned Hive: %.1fx\n",
                Ratio(tuned, mem), Ratio(tuned, disk[q]),
                Ratio(untuned, tuned));
  }
}

/// Runs the 100GB cached aggregation sweep under a fixed host-thread count
/// and reports the host wall-clock of the query loop plus every query's
/// virtual seconds (which must not depend on host_threads).
double RunAggsWithHostThreads(int host_threads, std::vector<double>* virt) {
  TpchConfig data;
  double vscale = data.VirtualScaleFor(600e6);
  auto session = MakeSharkSession(vscale);
  session->context().set_host_threads(host_threads);
  if (!GenerateTpchTables(session.get(), data).ok()) std::exit(1);
  if (!session->CacheTable("lineitem").ok()) std::exit(1);
  const std::string columns[] = {"", "L_SHIPMODE", "L_RECEIPTDATE",
                                 "L_ORDERKEY"};
  WallTimer timer;
  for (const std::string& col : columns) {
    virt->push_back(TimedRun(session.get(), TpchAggregationQuery(col)));
  }
  return timer.ElapsedMs();
}

/// Host-parallel execution: same virtual results, less wall-clock. Compares
/// the serial reference path (host_threads=1) against the work-stealing pool
/// (host_threads=0, one worker per hardware thread).
void RunHostParallel() {
  std::printf("\n---- host-parallel task execution (100GB cached aggs) ----\n");
  std::vector<double> virt_serial, virt_pool;
  double ms_serial = RunAggsWithHostThreads(1, &virt_serial);
  double ms_pool = RunAggsWithHostThreads(0, &virt_pool);
  double vsum_serial = 0, vsum_pool = 0;
  for (double v : virt_serial) vsum_serial += v;
  for (double v : virt_pool) vsum_pool += v;
  bool identical = virt_serial == virt_pool;
  EmitParallelJson("fig07_tpch_agg", "agg4_cached_100GB", 1, ms_serial,
                   vsum_serial);
  EmitParallelJson("fig07_tpch_agg", "agg4_cached_100GB", 0, ms_pool,
                   vsum_pool);
  std::printf("  host_threads=1: %8.1fms host, %.4fs virtual\n", ms_serial,
              vsum_serial);
  std::printf("  host_threads=0: %8.1fms host, %.4fs virtual\n", ms_pool,
              vsum_pool);
  std::printf("  host speedup: %.2fx; virtual times %s\n",
              Ratio(ms_serial, ms_pool),
              identical ? "bit-for-bit identical" : "DIVERGED (BUG)");
  if (!identical) std::exit(1);
}

/// Vectorized batch path on vs off over the 100GB cached sweep: identical
/// virtual seconds (CompareVectorized exits on drift), less host wall-clock.
void RunVectorized() {
  std::printf("\n---- vectorized batch path (100GB cached aggs) ----\n");
  TpchConfig data;
  double vscale = data.VirtualScaleFor(600e6);
  auto session = MakeSharkSession(vscale);
  if (!GenerateTpchTables(session.get(), data).ok()) std::exit(1);
  if (!session->CacheTable("lineitem").ok()) std::exit(1);
  struct Point {
    const char* label;
    const char* column;
  };
  const Point points[] = {{"agg_1group", ""},
                          {"agg_shipmode", "L_SHIPMODE"},
                          {"agg_receiptdate", "L_RECEIPTDATE"},
                          {"agg_orderkey", "L_ORDERKEY"}};
  for (const Point& p : points) {
    auto ms = CompareVectorized(session.get(), "fig07_vector", p.label,
                                TpchAggregationQuery(p.column));
    std::printf("  %-16s on %8.1fms / off %8.1fms -> %.2fx host speedup, "
                "virtual seconds unchanged\n",
                p.label, ms.first, ms.second, Ratio(ms.second, ms.first));
  }
}

/// Writes a chrome://tracing profile of the ~2.5K-group cached aggregation —
/// the per-stage/per-task timeline behind the Figure 7 numbers.
void RunTraceArtifact() {
  TpchConfig data;
  double vscale = data.VirtualScaleFor(600e6);
  auto session = MakeSharkSession(vscale);
  if (!GenerateTpchTables(session.get(), data).ok()) std::exit(1);
  if (!session->CacheTable("lineitem").ok()) std::exit(1);
  QueryResult result =
      MustRun(session.get(), TpchAggregationQuery("L_RECEIPTDATE"));
  WriteChromeTrace("fig07_tpch_agg", "agg_receiptdate_cached_100GB", result,
                   "fig07_trace.json");
}

}  // namespace

int main() {
  PrintHeader("Figure 7 - TPC-H aggregation sweep",
              "Shark 20-80x over tuned Hive; Hive's default reducer "
              "heuristic can be far worse than hand tuning");
  RunScale({"100GB", 600e6});
  RunScale({"1TB", 6e9});
  RunHostParallel();
  RunVectorized();
  RunTraceArtifact();
  return 0;
}
