// Reproduces Figure 7: TPC-H lineitem group-by sweep (no group / 7 groups /
// ~2500 groups / per-order-key groups) at two scale points, comparing Shark
// (memory), Shark (disk), hand-tuned Hive and default-heuristic Hive. The
// paper's headline: 80x over Hive for few groups, ~20x when the shuffle
// dominates, and a catastrophic Hive default reducer count.
#include "bench/bench_common.h"
#include "workloads/tpch.h"

using namespace shark;        // NOLINT(build/namespaces)
using namespace shark::bench; // NOLINT(build/namespaces)

namespace {

struct ScalePoint {
  const char* name;
  double paper_rows;
};

void RunScale(const ScalePoint& scale) {
  TpchConfig data;
  double vscale = data.VirtualScaleFor(scale.paper_rows);
  auto session = MakeSharkSession(vscale);
  if (!GenerateTpchTables(session.get(), data).ok()) std::exit(1);
  auto hive_default_r = MakeHiveSession(session.get());
  auto hive_tuned_r = MakeHiveSession(session.get(), HiveConfig{800, 0});
  if (!hive_default_r.ok() || !hive_tuned_r.ok()) std::exit(1);
  auto hive_default = std::move(*hive_default_r);
  auto hive_tuned = std::move(*hive_tuned_r);

  struct QueryPoint {
    const char* label;
    std::string column;
  };
  const QueryPoint queries[] = {
      {"1 group (COUNT(*))", ""},
      {"7 groups (SHIPMODE)", "L_SHIPMODE"},
      {"~2.5K groups (RECEIPTDATE)", "L_RECEIPTDATE"},
      {"per-order groups (ORDERKEY)", "L_ORDERKEY"},
  };

  std::printf("\n---- TPC-H %s (lineitem %lld rows, virtual scale x%.0f) ----\n",
              scale.name, static_cast<long long>(data.lineitem_rows), vscale);

  // Disk runs first, then cache lineitem for the in-memory runs.
  double disk[4];
  for (int q = 0; q < 4; ++q) {
    disk[q] = TimedRun(session.get(), TpchAggregationQuery(queries[q].column));
  }
  if (!session->CacheTable("lineitem").ok()) std::exit(1);
  for (int q = 0; q < 4; ++q) {
    const std::string sql = TpchAggregationQuery(queries[q].column);
    double mem = TimedRun(session.get(), sql);
    double tuned = TimedRun(hive_tuned.get(), sql);
    double untuned = TimedRun(hive_default.get(), sql);
    PrintBars(std::string(scale.name) + " " + queries[q].label,
              {{"Shark", mem, ""},
               {"Shark (disk)", disk[q], ""},
               {"Hive (tuned)", tuned, ""},
               {"Hive", untuned, ""}});
    std::printf("   speedup vs tuned Hive: %.1fx (mem), %.1fx (disk); "
                "untuned/tuned Hive: %.1fx\n",
                Ratio(tuned, mem), Ratio(tuned, disk[q]),
                Ratio(untuned, tuned));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7 - TPC-H aggregation sweep",
              "Shark 20-80x over tuned Hive; Hive's default reducer "
              "heuristic can be far worse than hand tuning");
  RunScale({"100GB", 600e6});
  RunScale({"1TB", 6e9});
  return 0;
}
