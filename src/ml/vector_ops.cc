#include "ml/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace shark {

double Dot(const MlVector& a, const MlVector& b) {
  SHARK_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void AddInPlace(MlVector* a, const MlVector& b) {
  SHARK_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
}

void ScaleInPlace(MlVector* a, double s) {
  for (double& v : *a) v *= s;
}

void Axpy(double s, const MlVector& b, MlVector* a) {
  SHARK_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

double SquaredDistance(const MlVector& a, const MlVector& b) {
  SHARK_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Norm2(const MlVector& a) { return std::sqrt(Dot(a, a)); }

}  // namespace shark
