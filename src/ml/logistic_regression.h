#ifndef SHARK_ML_LOGISTIC_REGRESSION_H_
#define SHARK_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/vector_ops.h"
#include "rdd/context.h"

namespace shark {

/// Batch-gradient-descent logistic regression over an RDD of labeled points
/// (§4, Listing 1): each iteration maps a gradient contribution over every
/// point and reduces the sum on the driver, then updates the weights. When
/// the input RDD is cached, iterations after the first run at memory speed —
/// the core of the Fig 11 comparison.
class LogisticRegression {
 public:
  struct Options {
    int iterations = 10;
    double learning_rate = 1.0;
    uint64_t seed = 42;
  };

  struct Model {
    MlVector weights;
    /// Virtual seconds per iteration.
    std::vector<double> iteration_seconds;
  };

  /// Labels must be +1/-1.
  static Result<Model> Train(ClusterContext* ctx,
                             const RddPtr<LabeledPoint>& points, int dimensions,
                             const Options& options);

  /// P(y=+1 | x) under the model.
  static double Predict(const MlVector& weights, const MlVector& x);
};

}  // namespace shark

#endif  // SHARK_ML_LOGISTIC_REGRESSION_H_
