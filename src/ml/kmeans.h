#ifndef SHARK_ML_KMEANS_H_
#define SHARK_ML_KMEANS_H_

#include <vector>

#include "ml/vector_ops.h"
#include "rdd/context.h"

namespace shark {

/// Lloyd's k-means over an RDD of points (§6.5): each iteration assigns
/// points to the nearest centroid and emits per-cluster partial sums; the
/// driver recomputes centroids. More CPU-bound than logistic regression
/// (k x D distance evaluations per point), which is why the paper sees a
/// smaller (but still ~30x) speedup over Hadoop.
class KMeans {
 public:
  struct Options {
    int k = 10;
    int iterations = 10;
    uint64_t seed = 42;
  };

  struct Model {
    std::vector<MlVector> centroids;
    double inertia = 0.0;  // sum of squared distances at the last iteration
    std::vector<double> iteration_seconds;
  };

  static Result<Model> Train(ClusterContext* ctx,
                             const RddPtr<MlVector>& points, int dimensions,
                             const Options& options);

  /// Index of the nearest centroid.
  static int Assign(const std::vector<MlVector>& centroids, const MlVector& x);
};

}  // namespace shark

#endif  // SHARK_ML_KMEANS_H_
