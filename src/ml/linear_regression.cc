#include "ml/linear_regression.h"

#include "common/random.h"

namespace shark {

Result<LinearRegression::Model> LinearRegression::Train(
    ClusterContext* ctx, const RddPtr<LabeledPoint>& points, int dimensions,
    const Options& options) {
  Model model;
  Random rng(options.seed);
  model.weights.assign(static_cast<size_t>(dimensions), 0.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    double t0 = ctx->now();
    MlVector w = model.weights;
    auto partials = points->MapPartitions(
        [w, dimensions](int, const std::vector<LabeledPoint>& in,
                        TaskContext* tctx) {
          MlVector grad(static_cast<size_t>(dimensions), 0.0);
          uint64_t count = 0;
          for (const LabeledPoint& p : in) {
            double err = Dot(w, p.x) - p.y;
            Axpy(err, p.x, &grad);
            ++count;
          }
          tctx->work().flops +=
              in.size() * static_cast<uint64_t>(dimensions) * 4;
          tctx->work().rows_processed += in.size();
          grad.push_back(static_cast<double>(count));
          return std::vector<MlVector>{grad};
        },
        "linregGradient");
    SHARK_ASSIGN_OR_RETURN(std::vector<MlVector> grads, ctx->Collect(partials));
    MlVector total(static_cast<size_t>(dimensions), 0.0);
    double n = 0.0;
    for (const MlVector& g : grads) {
      for (int d = 0; d < dimensions; ++d) {
        total[static_cast<size_t>(d)] += g[static_cast<size_t>(d)];
      }
      n += g[static_cast<size_t>(dimensions)];
    }
    if (n > 0) {
      Axpy(-options.learning_rate / n, total, &model.weights);
    }
    model.iteration_seconds.push_back(ctx->now() - t0);
  }
  return model;
}

}  // namespace shark
