#ifndef SHARK_ML_TABLE_RDD_H_
#define SHARK_ML_TABLE_RDD_H_

#include <functional>
#include <string>
#include <vector>

#include "ml/vector_ops.h"
#include "sql/session.h"

namespace shark {

/// The mapRows bridge from Listing 1 of the paper: feature extraction over a
/// SQL query's distributed result, staying in the same lineage graph so the
/// whole SQL+ML pipeline shares workers, caching and fault recovery (§4.2).
RddPtr<MlVector> MapRows(const TableRdd& table,
                         std::function<MlVector(const Row&)> fn);

/// Convenience: extracts LabeledPoint{features, label} from named columns.
/// Every column must be numeric; missing columns fail.
Result<RddPtr<LabeledPoint>> RowsToLabeledPoints(
    const TableRdd& table, const std::string& label_column,
    const std::vector<std::string>& feature_columns);

/// Extracts plain feature vectors (k-means input).
Result<RddPtr<MlVector>> RowsToVectors(
    const TableRdd& table, const std::vector<std::string>& feature_columns);

}  // namespace shark

#endif  // SHARK_ML_TABLE_RDD_H_
