#ifndef SHARK_ML_LINEAR_REGRESSION_H_
#define SHARK_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "ml/vector_ops.h"
#include "rdd/context.h"

namespace shark {

/// Least-squares linear regression by batch gradient descent over an RDD of
/// labeled points (one of the "basic machine learning algorithms" Shark
/// ships, §4.1).
class LinearRegression {
 public:
  struct Options {
    int iterations = 10;
    double learning_rate = 0.1;
    uint64_t seed = 42;
  };

  struct Model {
    MlVector weights;
    std::vector<double> iteration_seconds;
  };

  static Result<Model> Train(ClusterContext* ctx,
                             const RddPtr<LabeledPoint>& points, int dimensions,
                             const Options& options);

  static double Predict(const MlVector& weights, const MlVector& x) {
    return Dot(weights, x);
  }
};

}  // namespace shark

#endif  // SHARK_ML_LINEAR_REGRESSION_H_
