#ifndef SHARK_ML_VECTOR_OPS_H_
#define SHARK_ML_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

namespace shark {

/// Dense feature vector (the elements of the paper's 1B x 10 feature matrix).
using MlVector = std::vector<double>;

/// A training example for classification/regression.
struct LabeledPoint {
  MlVector x;
  double y = 0.0;
};

inline uint64_t ApproxSizeOf(const LabeledPoint& p) {
  return 32 + p.x.size() * 8;
}

double Dot(const MlVector& a, const MlVector& b);
void AddInPlace(MlVector* a, const MlVector& b);
void ScaleInPlace(MlVector* a, double s);
/// a += s * b
void Axpy(double s, const MlVector& b, MlVector* a);
double SquaredDistance(const MlVector& a, const MlVector& b);
double Norm2(const MlVector& a);

}  // namespace shark

#endif  // SHARK_ML_VECTOR_OPS_H_
