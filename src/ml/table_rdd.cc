#include "ml/table_rdd.h"

namespace shark {

RddPtr<MlVector> MapRows(const TableRdd& table,
                         std::function<MlVector(const Row&)> fn) {
  return table.rdd->Map([fn](const Row& r) { return fn(r); }, "mapRows");
}

namespace {

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  for (const std::string& name : names) {
    int idx = schema.FieldIndex(name);
    if (idx < 0) return Status::AnalysisError("unknown column: " + name);
    if (!IsNumericLike(schema.field(idx).type)) {
      return Status::AnalysisError("column is not numeric: " + name);
    }
    out.push_back(idx);
  }
  return out;
}

}  // namespace

Result<RddPtr<LabeledPoint>> RowsToLabeledPoints(
    const TableRdd& table, const std::string& label_column,
    const std::vector<std::string>& feature_columns) {
  SHARK_ASSIGN_OR_RETURN(std::vector<int> features,
                         ResolveColumns(table.schema, feature_columns));
  SHARK_ASSIGN_OR_RETURN(std::vector<int> label,
                         ResolveColumns(table.schema, {label_column}));
  int label_idx = label[0];
  return RddPtr<LabeledPoint>(table.rdd->Map(
      [features, label_idx](const Row& r) {
        LabeledPoint p;
        p.x.reserve(features.size());
        for (int c : features) p.x.push_back(r.Get(c).AsDouble());
        p.y = r.Get(label_idx).AsDouble();
        return p;
      },
      "toLabeledPoints"));
}

Result<RddPtr<MlVector>> RowsToVectors(
    const TableRdd& table, const std::vector<std::string>& feature_columns) {
  SHARK_ASSIGN_OR_RETURN(std::vector<int> features,
                         ResolveColumns(table.schema, feature_columns));
  return RddPtr<MlVector>(table.rdd->Map(
      [features](const Row& r) {
        MlVector x;
        x.reserve(features.size());
        for (int c : features) x.push_back(r.Get(c).AsDouble());
        return x;
      },
      "toVectors"));
}

}  // namespace shark
