#include "ml/kmeans.h"

#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace shark {

int KMeans::Assign(const std::vector<MlVector>& centroids, const MlVector& x) {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = SquaredDistance(centroids[c], x);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

Result<KMeans::Model> KMeans::Train(ClusterContext* ctx,
                                    const RddPtr<MlVector>& points,
                                    int dimensions, const Options& options) {
  SHARK_CHECK(options.k >= 1);
  Model model;
  Random rng(options.seed);
  model.centroids.resize(static_cast<size_t>(options.k));
  for (auto& c : model.centroids) {
    c.resize(static_cast<size_t>(dimensions));
    for (double& v : c) v = rng.NextDouble();
  }

  struct ClusterPartial {
    MlVector sum;
    uint64_t count = 0;
    double inertia = 0.0;
  };

  for (int iter = 0; iter < options.iterations; ++iter) {
    double t0 = ctx->now();
    std::vector<MlVector> centroids = model.centroids;
    int k = options.k;
    auto partials = points->MapPartitions(
        [centroids, dimensions, k](int, const std::vector<MlVector>& in,
                                   TaskContext* tctx) {
          // Flattened per-cluster (sum, count, inertia): one row of
          // (k*(D+2)) doubles per partition keeps the shuffle tiny.
          std::vector<MlVector> acc(static_cast<size_t>(k));
          std::vector<uint64_t> counts(static_cast<size_t>(k), 0);
          double inertia = 0.0;
          for (auto& a : acc) a.assign(static_cast<size_t>(dimensions), 0.0);
          for (const MlVector& x : in) {
            int c = KMeans::Assign(centroids, x);
            AddInPlace(&acc[static_cast<size_t>(c)], x);
            counts[static_cast<size_t>(c)] += 1;
            inertia += SquaredDistance(centroids[static_cast<size_t>(c)], x);
          }
          // k distance evaluations (3 flops per dim) plus the accumulate.
          tctx->work().flops += in.size() *
                                static_cast<uint64_t>(k) *
                                static_cast<uint64_t>(dimensions) * 3;
          tctx->work().rows_processed += in.size();
          std::vector<MlVector> out;
          for (int c = 0; c < k; ++c) {
            MlVector row = acc[static_cast<size_t>(c)];
            row.push_back(static_cast<double>(counts[static_cast<size_t>(c)]));
            row.push_back(c == 0 ? inertia : 0.0);
            out.push_back(std::move(row));
          }
          return out;
        },
        "kmeansAssign");
    SHARK_ASSIGN_OR_RETURN(std::vector<MlVector> rows, ctx->Collect(partials));

    std::vector<ClusterPartial> merged(static_cast<size_t>(options.k));
    for (auto& m : merged) m.sum.assign(static_cast<size_t>(dimensions), 0.0);
    double inertia = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      size_t c = i % static_cast<size_t>(options.k);
      const MlVector& row = rows[i];
      SHARK_CHECK(row.size() == static_cast<size_t>(dimensions) + 2);
      for (int d = 0; d < dimensions; ++d) {
        merged[c].sum[static_cast<size_t>(d)] += row[static_cast<size_t>(d)];
      }
      merged[c].count += static_cast<uint64_t>(row[static_cast<size_t>(dimensions)]);
      inertia += row[static_cast<size_t>(dimensions) + 1];
    }
    for (int c = 0; c < options.k; ++c) {
      if (merged[static_cast<size_t>(c)].count == 0) continue;  // keep old centroid
      MlVector next = merged[static_cast<size_t>(c)].sum;
      ScaleInPlace(&next,
                   1.0 / static_cast<double>(merged[static_cast<size_t>(c)].count));
      model.centroids[static_cast<size_t>(c)] = std::move(next);
    }
    model.inertia = inertia;
    model.iteration_seconds.push_back(ctx->now() - t0);
  }
  return model;
}

}  // namespace shark
