#include "ml/logistic_regression.h"

#include <cmath>

#include "common/random.h"

namespace shark {

double LogisticRegression::Predict(const MlVector& weights, const MlVector& x) {
  return 1.0 / (1.0 + std::exp(-Dot(weights, x)));
}

Result<LogisticRegression::Model> LogisticRegression::Train(
    ClusterContext* ctx, const RddPtr<LabeledPoint>& points, int dimensions,
    const Options& options) {
  Model model;
  Random rng(options.seed);
  model.weights.resize(static_cast<size_t>(dimensions));
  for (double& w : model.weights) w = 2.0 * rng.NextDouble() - 1.0;

  for (int iter = 0; iter < options.iterations; ++iter) {
    double t0 = ctx->now();
    MlVector w = model.weights;  // shipped to tasks with the closure
    auto partials = points->MapPartitions(
        [w, dimensions](int, const std::vector<LabeledPoint>& in,
                        TaskContext* tctx) {
          MlVector grad(static_cast<size_t>(dimensions), 0.0);
          for (const LabeledPoint& p : in) {
            double margin = -p.y * Dot(w, p.x);
            double denom = 1.0 + std::exp(margin);
            double coeff = (1.0 / denom - 1.0) * p.y;
            Axpy(coeff, p.x, &grad);
          }
          // dot + axpy + exp pipeline: ~5 flops per dimension per point.
          tctx->work().flops +=
              in.size() * static_cast<uint64_t>(dimensions) * 5;
          tctx->work().rows_processed += in.size();
          return std::vector<MlVector>{grad};
        },
        "lrGradient");
    SHARK_ASSIGN_OR_RETURN(std::vector<MlVector> grads, ctx->Collect(partials));
    MlVector total(static_cast<size_t>(dimensions), 0.0);
    for (const MlVector& g : grads) AddInPlace(&total, g);
    Axpy(-options.learning_rate, total, &model.weights);
    model.iteration_seconds.push_back(ctx->now() - t0);
  }
  return model;
}

}  // namespace shark
