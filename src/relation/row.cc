#include "relation/row.h"

namespace shark {

namespace {

uint64_t DecimalWidth(int64_t v) {
  uint64_t w = v < 0 ? 1 : 0;
  uint64_t a = v < 0 ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  do {
    ++w;
    a /= 10;
  } while (a > 0);
  return w;
}

}  // namespace

std::string Row::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += "|";
    out += fields[i].ToString();
  }
  return out;
}

uint64_t KeyHash(const Row& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : row.fields) h = HashCombine(h, v.Hash());
  return h;
}

uint64_t ApproxSizeOf(const Row& row) {
  uint64_t total = 24;
  for (const Value& v : row.fields) total += ApproxSizeOf(v);
  return total;
}

uint64_t SerializedSizeOf(const Row& row, DfsFormat format) {
  uint64_t total = 0;
  if (format == DfsFormat::kText) {
    for (const Value& v : row.fields) {
      switch (v.kind()) {
        case TypeKind::kNull:
          total += 2;  // \N
          break;
        case TypeKind::kBool:
          total += 1;
          break;
        case TypeKind::kInt64:
          total += DecimalWidth(v.int64_v());
          break;
        case TypeKind::kDouble:
          total += 12;  // typical "%.4f"-ish rendering
          break;
        case TypeKind::kString:
          total += v.str().size();
          break;
        case TypeKind::kDate:
          total += 10;  // YYYY-MM-DD
          break;
      }
      total += 1;  // field delimiter / trailing newline
    }
  } else {
    for (const Value& v : row.fields) {
      switch (v.kind()) {
        case TypeKind::kNull:
          total += 1;
          break;
        case TypeKind::kBool:
          total += 1;
          break;
        case TypeKind::kInt64:
        case TypeKind::kDouble:
        case TypeKind::kDate:
          total += 8;
          break;
        case TypeKind::kString:
          total += 4 + v.str().size();
          break;
      }
    }
  }
  return total;
}

}  // namespace shark
