#include "relation/types.h"

#include "common/string_util.h"

namespace shark {

const char* TypeName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOLEAN";
    case TypeKind::kInt64:
      return "BIGINT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kDate:
      return "DATE";
  }
  return "?";
}

bool IsNumericLike(TypeKind kind) {
  return kind == TypeKind::kBool || kind == TypeKind::kInt64 ||
         kind == TypeKind::kDouble || kind == TypeKind::kDate;
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name) >= 0) {
    return Status::AlreadyExists("duplicate column name: " + field.name);
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += TypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace shark
