#ifndef SHARK_RELATION_VALUE_H_
#define SHARK_RELATION_VALUE_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/status.h"
#include "relation/types.h"

namespace shark {

/// Wrapping (two's-complement) BIGINT arithmetic. SQL integer overflow in
/// this engine wraps modulo 2^64 instead of being undefined behaviour, so
/// Shark, Hive and the reference evaluator agree bit-for-bit on overflow.
inline int64_t WrapAddInt64(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrapSubInt64(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrapMulInt64(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
inline int64_t WrapNegInt64(int64_t a) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
}

/// DOUBLE -> BIGINT cast with defined semantics: NaN maps to 0 and
/// out-of-range values saturate to INT64_MIN/MAX. Plain static_cast is UB
/// for those inputs.
inline int64_t SaturatingDoubleToInt64(double d) {
  if (std::isnan(d)) return 0;
  // 2^63 is exactly representable; anything >= it (or < -2^63) saturates.
  if (d >= 9223372036854775808.0) return INT64_MAX;
  if (d < -9223372036854775808.0) return INT64_MIN;
  return static_cast<int64_t>(d);
}

/// True iff `d` is an integer exactly representable as int64_t; writes the
/// integer to `*out`. NaN, infinities, fractional and out-of-range doubles
/// all return false.
inline bool DoubleIsExactInt64(double d, int64_t* out) {
  if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
    return false;  // NaN, +/-Inf, out of range
  }
  if (std::trunc(d) != d) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

/// Exact BIGINT-vs-DOUBLE ordering without rounding either side. `d` must
/// not be NaN. Returns the sign of (i <=> d). This is the comparison
/// Value::Compare uses for mixed numeric kinds; vectorized kernels call it
/// directly so batch and row paths share one definition.
int CompareInt64Double(int64_t i, double d);

/// A single SQL value: NULL, BOOLEAN, BIGINT, DOUBLE, STRING or DATE.
/// Comparison and arithmetic coerce BIGINT<->DOUBLE; NULL compares with SQL
/// three-valued logic at the expression layer (here NULL simply sorts first
/// and equals only NULL).
class Value {
 public:
  Value() : kind_(TypeKind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.kind_ = TypeKind::kBool;
    x.i_ = v ? 1 : 0;
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.kind_ = TypeKind::kInt64;
    x.i_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.kind_ = TypeKind::kDouble;
    x.d_ = v;
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.kind_ = TypeKind::kString;
    x.s_ = std::move(v);
    return x;
  }
  static Value Date(int64_t days) {
    Value x;
    x.kind_ = TypeKind::kDate;
    x.i_ = days;
    return x;
  }

  /// Parses "YYYY-MM-DD" into a DATE value.
  static Result<Value> ParseDate(const std::string& text);

  TypeKind kind() const { return kind_; }
  bool is_null() const { return kind_ == TypeKind::kNull; }

  bool bool_v() const { return i_ != 0; }
  int64_t int64_v() const { return i_; }  // BIGINT, BOOLEAN and DATE payload
  double double_v() const { return d_; }
  const std::string& str() const { return s_; }

  /// Numeric coercion (BOOL/INT64/DATE -> double); 0.0 for NULL/STRING.
  double AsDouble() const;
  /// Integer coercion (DOUBLE truncates).
  int64_t AsInt64() const;

  /// SQL equality: NULL == NULL and NaN == NaN here (used for grouping and
  /// join keys, not predicates). BIGINT/DOUBLE cross-type equality is exact:
  /// a double equals an int64 iff it represents that integer exactly — no
  /// lossy coercion through double above 2^53.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting: NULL < numerics (coerced) < strings.
  /// NaN orders after every other numeric and compares equal only to itself.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Consistent with operator==: equal values (including int64/double
  /// cross-type equals and all NaNs) hash identically.
  uint64_t Hash() const;

  /// SQL-style text rendering (also used for CSV serialization sizing).
  std::string ToString() const;

  /// Days since epoch rendered as "YYYY-MM-DD".
  static std::string FormatDate(int64_t days);

 private:
  TypeKind kind_;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

inline uint64_t KeyHash(const Value& v) { return v.Hash(); }

/// Approximate in-memory footprint (cache accounting).
inline uint64_t ApproxSizeOf(const Value& v) {
  return 16 + (v.kind() == TypeKind::kString ? v.str().size() : 0);
}

}  // namespace shark

#endif  // SHARK_RELATION_VALUE_H_
