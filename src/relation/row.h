#ifndef SHARK_RELATION_ROW_H_
#define SHARK_RELATION_ROW_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "relation/value.h"
#include "sim/dfs.h"

namespace shark {

/// A tuple of SQL values. Rows are the exchange format between SQL operators
/// (Shark, like Hive, runs row-oriented operators over columnar storage).
struct Row {
  std::vector<Value> fields;

  Row() = default;
  explicit Row(std::vector<Value> f) : fields(std::move(f)) {}

  int size() const { return static_cast<int>(fields.size()); }
  const Value& Get(int i) const { return fields[static_cast<size_t>(i)]; }
  Value& Get(int i) { return fields[static_cast<size_t>(i)]; }

  bool operator==(const Row& other) const { return fields == other.fields; }

  /// Pipe-separated rendering for result display and tests.
  std::string ToString() const;
};

uint64_t KeyHash(const Row& row);
uint64_t ApproxSizeOf(const Row& row);

/// Serialized on-disk size: text uses the rendered field widths plus
/// delimiters; binary uses a compact fixed/length-prefixed layout. Drives
/// the simulated DFS byte accounting.
uint64_t SerializedSizeOf(const Row& row, DfsFormat format);

}  // namespace shark

#endif  // SHARK_RELATION_ROW_H_
