#ifndef SHARK_RELATION_TYPES_H_
#define SHARK_RELATION_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace shark {

/// SQL column types supported by the engine. DATE is day-precision (days
/// since 1970-01-01) with its own kind so that DATE literals and BETWEEN
/// semantics match the paper's queries.
enum class TypeKind : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Human-readable type name ("BIGINT", "DOUBLE", ...).
const char* TypeName(TypeKind kind);

/// True for INT64, DOUBLE, DATE and BOOL (orderable/arithmetic-coercible).
bool IsNumericLike(TypeKind kind);

/// One column of a schema.
struct Field {
  std::string name;
  TypeKind type = TypeKind::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given (case-insensitive) name; -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Fails on duplicate names.
  Status AddField(Field field);

  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace shark

#endif  // SHARK_RELATION_TYPES_H_
