#include "relation/value.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace shark {

namespace {

bool IsLeapYear(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int64_t DaysFromCivil(int64_t y, int m, int d) {
  // Howard Hinnant's days_from_civil algorithm.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = yy + (*m <= 2);
}

}  // namespace

Result<Value> Value::ParseDate(const std::string& text) {
  int64_t y = 0;
  int m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%ld-%d-%d", &y, &m, &d) != 3) {
    return Status::ParseError("invalid date literal: " + text);
  }
  if (m < 1 || m > 12 || d < 1) {
    return Status::ParseError("invalid date literal: " + text);
  }
  int max_day = kDaysInMonth[m - 1] + (m == 2 && IsLeapYear(y) ? 1 : 0);
  if (d > max_day) return Status::ParseError("invalid date literal: " + text);
  return Value::Date(DaysFromCivil(y, m, d));
}

std::string Value::FormatDate(int64_t days) {
  int64_t y;
  int m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04ld-%02d-%02d", y, m, d);
  return buf;
}

double Value::AsDouble() const {
  switch (kind_) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return static_cast<double>(i_);
    case TypeKind::kDouble:
      return d_;
    case TypeKind::kNull:
    case TypeKind::kString:
      return 0.0;
  }
  return 0.0;
}

int64_t Value::AsInt64() const {
  switch (kind_) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return i_;
    case TypeKind::kDouble:
      return SaturatingDoubleToInt64(d_);
    case TypeKind::kNull:
    case TypeKind::kString:
      return 0;
  }
  return 0;
}

int CompareInt64Double(int64_t i, double d) {
  if (d >= 9223372036854775808.0) return -1;  // every int64 < d
  if (d < -9223372036854775808.0) return 1;
  // trunc(d) now lies in [-2^63, 2^63) and casts safely.
  const double t = std::trunc(d);
  const int64_t it = static_cast<int64_t>(t);
  if (i < it) return -1;
  if (i > it) return 1;
  const double frac = d - t;
  if (frac > 0) return -1;  // i == trunc(d) < d
  if (frac < 0) return 1;
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (kind_ == other.kind_) {
    switch (kind_) {
      case TypeKind::kNull:
        return true;
      case TypeKind::kBool:
      case TypeKind::kInt64:
      case TypeKind::kDate:
        return i_ == other.i_;
      case TypeKind::kDouble:
        // Grouping/join-key equality: NaN matches NaN (IEEE == would make
        // NaN keys never group, diverging from Compare's total order).
        if (std::isnan(d_) || std::isnan(other.d_)) {
          return std::isnan(d_) && std::isnan(other.d_);
        }
        return d_ == other.d_;
      case TypeKind::kString:
        return s_ == other.s_;
    }
  }
  // Numeric cross-type equality (BIGINT vs DOUBLE): exact, not via a lossy
  // AsDouble() round-trip — 2^53+1 as int64 must not equal 2^53 as double.
  if (IsNumericLike(kind_) && IsNumericLike(other.kind_)) {
    if (kind_ != TypeKind::kDouble && other.kind_ != TypeKind::kDouble) {
      return i_ == other.i_;
    }
    const double d = kind_ == TypeKind::kDouble ? d_ : other.d_;
    const int64_t i = kind_ == TypeKind::kDouble ? other.i_ : i_;
    int64_t as_int;
    return DoubleIsExactInt64(d, &as_int) && as_int == i;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (kind_ == TypeKind::kString && other.kind_ == TypeKind::kString) {
    return s_.compare(other.s_);
  }
  if (IsNumericLike(kind_) && IsNumericLike(other.kind_)) {
    // Compare exactly when both are integral to avoid double rounding.
    if (kind_ != TypeKind::kDouble && other.kind_ != TypeKind::kDouble) {
      return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
    }
    // NaN sorts after every other numeric and ties only with NaN; without
    // this, NaN "equal to everything" breaks std::sort's strict weak
    // ordering and MIN/MAX.
    const bool a_nan = kind_ == TypeKind::kDouble && std::isnan(d_);
    const bool b_nan = other.kind_ == TypeKind::kDouble && std::isnan(other.d_);
    if (a_nan || b_nan) {
      if (a_nan && b_nan) return 0;
      return a_nan ? 1 : -1;
    }
    if (kind_ == TypeKind::kDouble && other.kind_ == TypeKind::kDouble) {
      return d_ < other.d_ ? -1 : (d_ > other.d_ ? 1 : 0);
    }
    // Mixed BIGINT/DOUBLE: exact comparison, consistent with operator==.
    if (kind_ == TypeKind::kDouble) return -CompareInt64Double(other.i_, d_);
    return CompareInt64Double(i_, other.d_);
  }
  // Mixed string/numeric: numerics sort before strings.
  return kind_ == TypeKind::kString ? 1 : -1;
}

uint64_t Value::Hash() const {
  switch (kind_) {
    case TypeKind::kNull:
      return 0x9ae16a3b2f90404fULL;
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return HashInt64(i_);
    case TypeKind::kDouble: {
      // Hash doubles equal to integers identically to the integer, so that
      // cross-type key equality is consistent with hashing. Doubles outside
      // int64 range (and NaN/Inf) can't equal any integer and hash as raw
      // doubles; NaNs are canonicalized because operator== treats all NaNs
      // as equal.
      if (std::isnan(d_)) return 0xfff8dececa5eba11ULL;
      int64_t as_int;
      if (DoubleIsExactInt64(d_, &as_int)) return HashInt64(as_int);
      return HashDouble(d_);
    }
    case TypeKind::kString:
      return HashBytes(s_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return i_ != 0 ? "true" : "false";
    case TypeKind::kInt64:
      return std::to_string(i_);
    case TypeKind::kDouble:
      return FormatDouble(d_, 4);
    case TypeKind::kString:
      return s_;
    case TypeKind::kDate:
      return FormatDate(i_);
  }
  return "?";
}

}  // namespace shark
