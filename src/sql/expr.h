#ifndef SHARK_SQL_EXPR_H_
#define SHARK_SQL_EXPR_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/row.h"
#include "sql/ast.h"

namespace shark {

/// User-defined scalar functions (§4: UDFs are first-class; their unknown
/// selectivity is what motivates PDE). `cpu_cost_factor` scales the per-row
/// evaluation charge relative to a builtin.
class UdfRegistry {
 public:
  using ScalarFn = std::function<Value(const std::vector<Value>&)>;

  struct UdfInfo {
    ScalarFn fn;
    TypeKind return_type = TypeKind::kNull;
    double cpu_cost_factor = 5.0;
  };

  Status Register(const std::string& name, UdfInfo info);
  const UdfInfo* Lookup(const std::string& name) const;

 private:
  std::map<std::string, UdfInfo> udfs_;  // upper-cased names
};

/// Evaluates a bound expression (no kColumnRef nodes) against a row.
/// SQL semantics: NULL propagates through operators; comparisons with NULL
/// yield NULL (rendered as a null Value).
Value EvalExpr(const Expr& expr, const Row& row, const UdfRegistry* udfs);

/// Predicate evaluation: NULL and NULL-typed results count as false.
bool EvalPredicate(const Expr& expr, const Row& row, const UdfRegistry* udfs);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Evaluates a builtin scalar function by (upper-case) name. Unknown names
/// yield NULL; the analyzer guarantees only known names reach execution.
Value EvalBuiltin(const std::string& name, const std::vector<Value>& args);

/// Splits a predicate into top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// AND-combines conjuncts (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Collects the slot indices referenced by an expression.
void CollectSlots(const Expr& expr, std::set<int>* slots);

/// True if the expression contains an aggregate call.
bool ContainsAggregate(const Expr& expr);

/// True if the expression contains a user-defined function call (unknown
/// selectivity — relevant to the PDE join optimizer).
bool ContainsUdf(const Expr& expr, const UdfRegistry& udfs);

/// Deep copy.
ExprPtr CloneExpr(const Expr& expr);

/// Rewrites slot indices through `mapping` (old slot -> new slot); slots
/// absent from the mapping are left untouched.
ExprPtr RemapSlots(const Expr& expr, const std::map<int, int>& mapping);

}  // namespace shark

#endif  // SHARK_SQL_EXPR_H_
