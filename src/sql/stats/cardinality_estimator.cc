#include "sql/stats/cardinality_estimator.h"

#include <algorithm>
#include <cmath>

#include "sql/expr.h"

namespace shark {

namespace {

const SlotStats* SlotOf(const Expr& e, const std::vector<SlotStats>& slots) {
  if (e.kind != ExprKind::kSlot) return nullptr;
  if (e.slot < 0 || e.slot >= static_cast<int>(slots.size())) return nullptr;
  return &slots[static_cast<size_t>(e.slot)];
}

bool LiteralNumeric(const Expr& e, double* out) {
  if (e.kind != ExprKind::kLiteral) return false;
  return ValueAsNumeric(e.literal, out);
}

}  // namespace

double CardinalityEstimator::ConjunctionSelectivity(
    std::vector<double> sels) {
  if (sels.empty()) return 1.0;
  std::sort(sels.begin(), sels.end());
  double out = 1.0;
  double exponent = 1.0;
  for (double s : sels) {
    out *= std::pow(std::clamp(s, 0.0, 1.0), exponent);
    exponent *= 0.5;
  }
  return out;
}

double CardinalityEstimator::GroupOutputRows(double input_rows,
                                             double key_ndv) {
  if (input_rows <= 0) return 0.0;
  if (key_ndv <= 1.0) return 1.0;
  return key_ndv * (1.0 - std::exp(-input_rows / key_ndv));
}

double CardinalityEstimator::JoinKeySelectivity(const SlotStats& l,
                                                const SlotStats& r,
                                                double left_rows,
                                                double right_rows) {
  auto side_ndv = [](const SlotStats& s, double rows) {
    double ndv = s.column != nullptr && s.column->ndv > 0 ? s.column->ndv
                                                          : rows;
    return std::max(std::min(ndv, std::max(rows, 1.0)), 1.0);
  };
  double ndv_l = side_ndv(l, left_rows);
  double ndv_r = side_ndv(r, right_rows);
  return 1.0 / std::max(ndv_l, ndv_r);
}

double CardinalityEstimator::RowWidth(const std::vector<SlotStats>& slots) {
  double width = 0;
  for (const SlotStats& s : slots) {
    width += s.column != nullptr ? s.column->avg_width : 16.0;
  }
  return std::max(width, 8.0);
}

double CardinalityEstimator::SelectivityOf(
    const Expr& pred, const std::vector<SlotStats>& slots) const {
  switch (pred.kind) {
    case ExprKind::kLiteral: {
      if (pred.literal.is_null()) return 0.0;
      if (pred.literal.kind() == TypeKind::kBool) {
        return pred.literal.bool_v() ? 1.0 : 0.0;
      }
      return 1.0;
    }
    case ExprKind::kUnary:
      if (pred.unary_op == UnaryOp::kNot) {
        return 1.0 - SelectivityOf(*pred.children[0], slots);
      }
      return kDefaultRange;
    case ExprKind::kBinary:
      break;  // handled below
    case ExprKind::kBetween: {
      const SlotStats* s = SlotOf(*pred.children[0], slots);
      double lo, hi;
      double sel = kDefaultRange;
      if (s != nullptr && s->column != nullptr &&
          LiteralNumeric(*pred.children[1], &lo) &&
          LiteralNumeric(*pred.children[2], &hi)) {
        sel = s->column->RangeSelectivity(true, lo, true, hi);
      }
      return pred.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kInList: {
      const SlotStats* s = SlotOf(*pred.children[0], slots);
      double sel = 0.0;
      bool from_stats = s != nullptr && s->column != nullptr;
      for (size_t i = 1; i < pred.children.size(); ++i) {
        if (from_stats && pred.children[i]->kind == ExprKind::kLiteral) {
          sel += s->column->EqualitySelectivity(pred.children[i]->literal);
        } else {
          sel += kDefaultEq;
        }
      }
      sel = std::min(sel, 1.0);
      return pred.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kIsNull: {
      const SlotStats* s = SlotOf(*pred.children[0], slots);
      double nf = s != nullptr && s->column != nullptr
                      ? s->column->NullFraction()
                      : kDefaultEq;
      return pred.negated ? 1.0 - nf : nf;
    }
    case ExprKind::kLike:
      return pred.negated ? 1.0 - kDefaultLike : kDefaultLike;
    default:
      return kDefaultRange;
  }

  const Expr& l = *pred.children[0];
  const Expr& r = *pred.children[1];
  switch (pred.binary_op) {
    case BinaryOp::kAnd: {
      std::vector<double> sels;
      for (const ExprPtr& c : SplitConjuncts(CloneExpr(pred))) {
        sels.push_back(SelectivityOf(*c, slots));
      }
      return ConjunctionSelectivity(std::move(sels));
    }
    case BinaryOp::kOr: {
      double a = SelectivityOf(l, slots);
      double b = SelectivityOf(r, slots);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
    case BinaryOp::kEq: {
      const SlotStats* s = SlotOf(l, slots);
      const Expr* lit = &r;
      if (s == nullptr) {
        s = SlotOf(r, slots);
        lit = &l;
      }
      if (s != nullptr && s->column != nullptr &&
          lit->kind == ExprKind::kLiteral) {
        return s->column->EqualitySelectivity(lit->literal);
      }
      return kDefaultEq;
    }
    case BinaryOp::kNe: {
      ExprPtr eq = MakeBinary(BinaryOp::kEq, pred.children[0],
                              pred.children[1]);
      return std::clamp(1.0 - SelectivityOf(*eq, slots), 0.0, 1.0);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      // Normalize to slot-op-literal; flip the comparison when the literal
      // is on the left.
      const SlotStats* s = SlotOf(l, slots);
      const Expr* lit = &r;
      bool upper = pred.binary_op == BinaryOp::kLt ||
                   pred.binary_op == BinaryOp::kLe;
      if (s == nullptr) {
        s = SlotOf(r, slots);
        lit = &l;
        upper = !upper;
      }
      double bound;
      if (s != nullptr && s->column != nullptr &&
          LiteralNumeric(*lit, &bound)) {
        return upper ? s->column->RangeSelectivity(false, 0, true, bound)
                     : s->column->RangeSelectivity(true, bound, false, 0);
      }
      return kDefaultRange;
    }
    default:
      return kDefaultRange;
  }
}

double CardinalityEstimator::Annotate(LogicalPlan* plan) const {
  std::vector<SlotStats> slots;
  return AnnotateWithSlots(plan, &slots);
}

double CardinalityEstimator::AnnotateWithSlots(
    LogicalPlan* plan, std::vector<SlotStats>* slots) const {
  double rows = AnnotateNode(plan, slots);
  plan->est_rows = rows;
  return rows;
}

double CardinalityEstimator::AnnotateNode(LogicalPlan* plan,
                                          std::vector<SlotStats>* slots) const {
  slots->clear();
  switch (plan->kind) {
    case PlanKind::kScan: {
      const TableStatistics* stats = nullptr;
      double table_rows = kDefaultTableRows;
      if (catalog_ != nullptr) {
        auto info = catalog_->Get(plan->table);
        if (info.ok()) {
          if ((*info)->column_statistics != nullptr) {
            stats = (*info)->column_statistics.get();
            table_rows = stats->row_count;
          } else if ((*info)->approx_rows > 0) {
            table_rows = static_cast<double>((*info)->approx_rows);
          }
        }
      }
      for (size_t c = 0; c < plan->output.size(); ++c) {
        SlotStats s;
        s.table_rows = table_rows;
        if (stats != nullptr && c < stats->columns.size()) {
          s.column = &stats->columns[c];
        }
        slots->push_back(s);
      }
      double rows = table_rows;
      if (plan->scan_predicate != nullptr) {
        rows *= SelectivityOf(*plan->scan_predicate, *slots);
      }
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kIndexScan: {
      const TableStatistics* stats = nullptr;
      double table_rows = kDefaultTableRows;
      if (catalog_ != nullptr) {
        auto info = catalog_->Get(plan->table);
        if (info.ok()) {
          if ((*info)->column_statistics != nullptr) {
            stats = (*info)->column_statistics.get();
            table_rows = stats->row_count;
          } else if ((*info)->approx_rows > 0) {
            table_rows = static_cast<double>((*info)->approx_rows);
          }
        }
      }
      for (size_t c = 0; c < plan->output.size(); ++c) {
        SlotStats s;
        s.table_rows = table_rows;
        if (stats != nullptr && c < stats->columns.size()) {
          s.column = &stats->columns[c];
        }
        slots->push_back(s);
      }
      // Postings the B+-tree probe returns: selectivity of the probed range
      // alone, before the residual filter re-checks the full predicate.
      const ColumnStatistics* col =
          stats != nullptr &&
                  plan->index_column >= 0 &&
                  static_cast<size_t>(plan->index_column) <
                      stats->columns.size()
              ? &stats->columns[static_cast<size_t>(plan->index_column)]
              : nullptr;
      bool point = plan->index_lo != nullptr && plan->index_hi != nullptr &&
                   plan->index_lo_inclusive && plan->index_hi_inclusive &&
                   plan->index_lo->kind == ExprKind::kLiteral &&
                   plan->index_hi->kind == ExprKind::kLiteral &&
                   plan->index_lo->literal == plan->index_hi->literal;
      double range_sel = point ? kDefaultEq : kDefaultRange;
      if (col != nullptr) {
        double lo = 0, hi = 0;
        bool has_lo = plan->index_lo != nullptr &&
                      LiteralNumeric(*plan->index_lo, &lo);
        bool has_hi = plan->index_hi != nullptr &&
                      LiteralNumeric(*plan->index_hi, &hi);
        if (point) {
          range_sel = col->EqualitySelectivity(plan->index_lo->literal);
        } else if (has_lo || has_hi) {
          range_sel = col->RangeSelectivity(has_lo, lo, has_hi, hi);
        }
      }
      plan->est_index_matches = table_rows * std::clamp(range_sel, 0.0, 1.0);
      double rows = table_rows;
      if (plan->scan_predicate != nullptr) {
        rows *= SelectivityOf(*plan->scan_predicate, *slots);
      }
      rows = std::min(rows, plan->est_index_matches);
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kFilter: {
      std::vector<SlotStats> child;
      double in = AnnotateWithSlots(plan->children[0].get(), &child);
      *slots = child;
      double rows = in * SelectivityOf(*plan->predicate, child);
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kProject: {
      std::vector<SlotStats> child;
      double in = AnnotateWithSlots(plan->children[0].get(), &child);
      for (const ExprPtr& e : plan->project_exprs) {
        const SlotStats* s = SlotOf(*e, child);
        slots->push_back(s != nullptr ? *s : SlotStats{});
      }
      plan->est_rows = in;
      return in;
    }
    case PlanKind::kAggregate: {
      std::vector<SlotStats> child;
      double in = AnnotateWithSlots(plan->children[0].get(), &child);
      double rows;
      if (plan->group_exprs.empty()) {
        rows = 1.0;
      } else {
        double key_ndv = 1.0;
        for (const ExprPtr& g : plan->group_exprs) {
          const SlotStats* s = SlotOf(*g, child);
          double ndv = s != nullptr && s->column != nullptr &&
                               s->column->ndv > 0
                           ? s->column->ndv
                           : std::sqrt(std::max(in, 1.0));
          key_ndv *= std::max(std::min(ndv, std::max(in, 1.0)), 1.0);
        }
        key_ndv = std::min(key_ndv, std::max(in, 1.0));
        rows = GroupOutputRows(in, key_ndv);
      }
      for (const ExprPtr& g : plan->group_exprs) {
        const SlotStats* s = SlotOf(*g, child);
        slots->push_back(s != nullptr ? *s : SlotStats{});
      }
      for (size_t i = 0; i < plan->agg_calls.size(); ++i) {
        slots->push_back(SlotStats{});
      }
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kJoin: {
      std::vector<SlotStats> lslots, rslots;
      double lrows = AnnotateWithSlots(plan->children[0].get(), &lslots);
      double rrows = AnnotateWithSlots(plan->children[1].get(), &rslots);
      std::vector<double> key_sels;
      for (size_t k = 0; k < plan->left_keys.size(); ++k) {
        const SlotStats* ls = SlotOf(*plan->left_keys[k], lslots);
        const SlotStats* rs = SlotOf(*plan->right_keys[k], rslots);
        key_sels.push_back(JoinKeySelectivity(
            ls != nullptr ? *ls : SlotStats{},
            rs != nullptr ? *rs : SlotStats{}, lrows, rrows));
      }
      double rows = lrows * rrows;
      for (double s : key_sels) rows *= s;
      *slots = lslots;
      slots->insert(slots->end(), rslots.begin(), rslots.end());
      if (plan->join_residual != nullptr) {
        rows *= SelectivityOf(*plan->join_residual, *slots);
      }
      // Outer joins null-extend the preserved side: at least that many rows.
      if (plan->join_type == JoinType::kLeftOuter) rows = std::max(rows, lrows);
      if (plan->join_type == JoinType::kRightOuter) {
        rows = std::max(rows, rrows);
      }
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kSort: {
      double in = AnnotateWithSlots(plan->children[0].get(), slots);
      double rows = plan->limit >= 0
                        ? std::min(in, static_cast<double>(plan->limit))
                        : in;
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kLimit: {
      double in = AnnotateWithSlots(plan->children[0].get(), slots);
      double rows = plan->limit >= 0
                        ? std::min(in, static_cast<double>(plan->limit))
                        : in;
      plan->est_rows = rows;
      return rows;
    }
    case PlanKind::kUnion: {
      double total = 0;
      for (size_t i = 0; i < plan->children.size(); ++i) {
        std::vector<SlotStats> child;
        total += AnnotateWithSlots(plan->children[i].get(), &child);
        if (i == 0) *slots = child;
      }
      plan->est_rows = total;
      return total;
    }
  }
  plan->est_rows = 0;
  return 0;
}

}  // namespace shark
