#ifndef SHARK_SQL_STATS_TABLE_STATS_H_
#define SHARK_SQL_STATS_TABLE_STATS_H_

#include <memory>
#include <vector>

#include "common/cardinality.h"
#include "common/heavy_hitters.h"
#include "common/histogram.h"
#include "relation/row.h"
#include "relation/types.h"
#include "relation/value.h"

namespace shark {

/// Per-column statistics collected by ANALYZE TABLE: row/null counts, an NDV
/// sketch, a numeric range, an approximate histogram (equi-depth bounds are
/// derived from it via quantiles) and a heavy-hitter sketch over key hashes.
/// All sketches are mergeable, so per-partition collection composes at the
/// master exactly like PDE's per-task statistics do.
struct ColumnStatistics {
  TypeKind type = TypeKind::kNull;
  double row_count = 0;   // values seen, including NULLs
  double null_count = 0;
  double ndv = 0;         // estimated distinct non-null values

  // Numeric domain (BIGINT/DOUBLE/DATE/BOOLEAN as doubles); strings have no
  // range and fall back to default range selectivities.
  bool has_range = false;
  double min_value = 0;
  double max_value = 0;

  ApproxHistogram histogram{64};   // non-null numeric values
  HeavyHitters heavy{64};          // KeyHash(value) frequencies

  // Cached from `heavy` by Finalize(): total mass of tracked entries and
  // whether the sketch never evicted (counts are exact, absences are real).
  double heavy_mass = 0;
  bool heavy_exact = true;

  double avg_width = 8;   // bytes per value (row layout, not encoded)

  double NullFraction() const {
    return row_count > 0 ? null_count / row_count : 0.0;
  }
  double NonNullCount() const { return row_count - null_count; }

  /// Selectivity of `col = v` among all rows (NULLs never match).
  double EqualitySelectivity(const Value& v) const;

  /// Selectivity of `lo <= col <= hi` (open ends via has_lo/has_hi) among
  /// all rows, from the histogram when available.
  double RangeSelectivity(bool has_lo, double lo, bool has_hi,
                          double hi) const;

  /// Recomputes the cached heavy-hitter summary; call after merges.
  void Finalize();
};

/// Table-level statistics persisted in the catalog by ANALYZE TABLE.
struct TableStatistics {
  double row_count = 0;
  double total_bytes = 0;   // in-row-layout bytes (real, unscaled)
  std::vector<ColumnStatistics> columns;

  double AvgRowBytes() const {
    return row_count > 0 ? total_bytes / row_count : 0.0;
  }
};

/// Mergeable per-partition sketch state: what each ANALYZE task computes
/// over its partition and ships to the master.
struct PartitionSketch {
  double row_count = 0;
  double total_bytes = 0;
  std::vector<ColumnStatistics> columns;
  std::vector<DistinctSketch> ndv;   // parallel to columns

  /// Folds `rows` into the sketch (first call sizes the column vectors).
  void AddRows(const Schema& schema, const std::vector<Row>& rows);
  /// Merges another partition's sketch into this one.
  void Merge(const PartitionSketch& other);
  /// Resolves NDV estimates and heavy-hitter caches into a TableStatistics.
  TableStatistics Finish() const;
};

inline uint64_t ApproxSizeOf(const std::shared_ptr<PartitionSketch>&) {
  // Fixed sketch budget: 64-bucket histogram + 64-entry heavy hitters +
  // 1024-hash KMV per column; call it ~20KB per column, dwarfed by data.
  return 20 * 1024;
}

/// Builds complete statistics from in-memory rows in one pass — the seam the
/// estimator tests and the stale-statistics benchmark use (the distributed
/// ANALYZE path produces the same result via per-partition merges).
TableStatistics BuildStatisticsFromRows(const Schema& schema,
                                        const std::vector<Row>& rows);

/// Numeric projection of a value for histogram/range purposes. Returns false
/// for NULLs and strings (no numeric domain).
bool ValueAsNumeric(const Value& v, double* out);

}  // namespace shark

#endif  // SHARK_SQL_STATS_TABLE_STATS_H_
