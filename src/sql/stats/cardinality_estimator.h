#ifndef SHARK_SQL_STATS_CARDINALITY_ESTIMATOR_H_
#define SHARK_SQL_STATS_CARDINALITY_ESTIMATOR_H_

#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/logical_plan.h"
#include "sql/stats/table_stats.h"

namespace shark {

/// What the estimator knows about one output slot of a plan node: the base
/// table's column statistics (if the slot traces back to a scanned column
/// through plain-slot projections and joins) and the base table's row count.
/// Selectivities are computed against base statistics under the usual
/// attribute-independence assumption.
struct SlotStats {
  const ColumnStatistics* column = nullptr;
  double table_rows = -1.0;
};

/// Folds ANALYZE statistics (or catalog priors when a table was never
/// analyzed) into per-node row estimates: equality predicates via heavy
/// hitters / NDV, ranges via histograms, conjunctions with exponential
/// backoff, join output sizes via 1/max(ndv) containment, and group-by
/// output via the saturating distinct-count curve. All estimates are in
/// real rows — directly comparable to observed runtime cardinalities, which
/// is what PDE re-planning exploits.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Annotates est_rows on every node bottom-up; returns the root estimate.
  double Annotate(LogicalPlan* plan) const;

  /// Like Annotate, also yielding the root's per-slot statistics.
  double AnnotateWithSlots(LogicalPlan* plan,
                           std::vector<SlotStats>* slots) const;

  /// Selectivity in [0,1] of `pred` over rows described by `slots`.
  double SelectivityOf(const Expr& pred,
                       const std::vector<SlotStats>& slots) const;

  /// Combined selectivity of conjuncts with exponential backoff: sorted
  /// ascending, s0 * s1^(1/2) * s2^(1/4) * ... — acknowledges correlation
  /// instead of multiplying everything outright.
  static double ConjunctionSelectivity(std::vector<double> sels);

  /// Expected group count when `input_rows` draws hit `key_ndv` keys:
  /// K * (1 - exp(-n/K)) — saturates instead of growing linearly.
  static double GroupOutputRows(double input_rows, double key_ndv);

  /// Equi-join selectivity of one key pair: 1 / max(ndv_l, ndv_r), NDVs
  /// capped by the side cardinalities; unknown NDV assumes a unique key.
  static double JoinKeySelectivity(const SlotStats& l, const SlotStats& r,
                                   double left_rows, double right_rows);

  /// Average row width in bytes for output rows described by `slots`.
  static double RowWidth(const std::vector<SlotStats>& slots);

  /// Default row count assumed for tables with no statistics at all.
  static constexpr double kDefaultTableRows = 1000.0;
  /// Default selectivities when no statistics apply.
  static constexpr double kDefaultEq = 0.1;
  static constexpr double kDefaultRange = 1.0 / 3.0;
  static constexpr double kDefaultLike = 0.25;

 private:
  double AnnotateNode(LogicalPlan* plan, std::vector<SlotStats>* slots) const;

  const Catalog* catalog_;
};

}  // namespace shark

#endif  // SHARK_SQL_STATS_CARDINALITY_ESTIMATOR_H_
