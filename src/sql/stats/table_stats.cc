#include "sql/stats/table_stats.h"

#include <algorithm>

namespace shark {

bool ValueAsNumeric(const Value& v, double* out) {
  switch (v.kind()) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      *out = static_cast<double>(v.int64_v());
      return true;
    case TypeKind::kDouble:
      // NaN has no place on a number line; keep it out of range stats.
      if (std::isnan(v.double_v())) return false;
      *out = v.double_v();
      return true;
    default:
      return false;
  }
}

double ColumnStatistics::EqualitySelectivity(const Value& v) const {
  if (row_count <= 0) return 1.0;
  if (v.is_null()) return 0.0;  // col = NULL never matches
  uint64_t lb = heavy.LowerBound(KeyHash(v));
  if (lb > 0) {
    return std::min(1.0, static_cast<double>(lb) / row_count);
  }
  double nonnull = NonNullCount();
  if (nonnull <= 0) return 0.0;
  if (heavy_exact) {
    // The sketch never evicted: every key that occurred is tracked, so an
    // absent key truly never occurred in the analyzed data. Don't claim an
    // outright zero — the data may have drifted since ANALYZE ran.
    return std::min(1.0, 0.5 / row_count);
  }
  // Skew-corrected uniform assumption over the non-heavy remainder.
  double rest_mass = std::max(nonnull - heavy_mass, 1.0);
  double rest_ndv =
      std::max(ndv - static_cast<double>(heavy.size()), 1.0);
  return std::clamp(rest_mass / rest_ndv / row_count, 0.0, 1.0);
}

double ColumnStatistics::RangeSelectivity(bool has_lo, double lo, bool has_hi,
                                          double hi) const {
  if (row_count <= 0) return 1.0;
  double nonnull = NonNullCount();
  if (nonnull <= 0) return 0.0;
  if (histogram.total_count() > 0) {
    double effective_lo = has_lo ? lo : histogram.min();
    double effective_hi = has_hi ? hi : histogram.max();
    double matched = histogram.EstimateRangeCount(effective_lo, effective_hi);
    double frac = matched / static_cast<double>(histogram.total_count());
    return std::clamp(frac * (nonnull / row_count), 0.0, 1.0);
  }
  if (has_range && has_lo && has_hi && max_value > min_value) {
    // Linear interpolation over the known domain (no histogram yet).
    double overlap = std::max(
        0.0, std::min(hi, max_value) - std::max(lo, min_value));
    return std::clamp(overlap / (max_value - min_value) *
                          (nonnull / row_count),
                      0.0, 1.0);
  }
  // One-sided or unknown domain: the textbook 1/3 default.
  return 1.0 / 3.0;
}

void ColumnStatistics::Finalize() {
  heavy_mass = 0;
  for (const HeavyHitters::Entry& e : heavy.TopK(heavy.capacity())) {
    heavy_mass += static_cast<double>(e.count);
  }
  // If the tracked entries' mass accounts for every non-null value and the
  // sketch is not full, nothing was ever evicted: counts are exact.
  heavy_exact = heavy.size() < heavy.capacity();
}

void PartitionSketch::AddRows(const Schema& schema,
                              const std::vector<Row>& rows) {
  size_t ncols = static_cast<size_t>(schema.num_fields());
  if (columns.size() != ncols) {
    columns.assign(ncols, ColumnStatistics{});
    ndv.assign(ncols, DistinctSketch(1024));
    for (size_t c = 0; c < ncols; ++c) {
      columns[c].type = schema.field(static_cast<int>(c)).type;
    }
  }
  for (const Row& row : rows) {
    row_count += 1;
    total_bytes += static_cast<double>(ApproxSizeOf(row));
    for (size_t c = 0; c < ncols && c < row.fields.size(); ++c) {
      const Value& v = row.fields[c];
      ColumnStatistics& st = columns[c];
      st.row_count += 1;
      if (v.is_null()) {
        st.null_count += 1;
        continue;
      }
      ndv[c].AddHash(KeyHash(v));
      st.heavy.Add(KeyHash(v));
      double num;
      if (ValueAsNumeric(v, &num)) {
        st.histogram.Add(num);
        if (!st.has_range || num < st.min_value) st.min_value = num;
        if (!st.has_range || num > st.max_value) st.max_value = num;
        st.has_range = true;
      }
      if (v.kind() == TypeKind::kString) {
        st.avg_width = (st.avg_width + static_cast<double>(v.str().size()) +
                        16.0) / 2.0;
      }
    }
  }
}

void PartitionSketch::Merge(const PartitionSketch& other) {
  if (columns.empty()) {
    *this = other;
    return;
  }
  row_count += other.row_count;
  total_bytes += other.total_bytes;
  for (size_t c = 0; c < columns.size() && c < other.columns.size(); ++c) {
    ColumnStatistics& st = columns[c];
    const ColumnStatistics& os = other.columns[c];
    st.row_count += os.row_count;
    st.null_count += os.null_count;
    st.histogram.Merge(os.histogram);
    st.heavy.Merge(os.heavy);
    ndv[c].Merge(other.ndv[c]);
    if (os.has_range) {
      if (!st.has_range || os.min_value < st.min_value) {
        st.min_value = os.min_value;
      }
      if (!st.has_range || os.max_value > st.max_value) {
        st.max_value = os.max_value;
      }
      st.has_range = true;
    }
    st.avg_width = std::max(st.avg_width, os.avg_width);
  }
}

TableStatistics PartitionSketch::Finish() const {
  TableStatistics out;
  out.row_count = row_count;
  out.total_bytes = total_bytes;
  out.columns = columns;
  for (size_t c = 0; c < out.columns.size(); ++c) {
    out.columns[c].ndv = ndv[c].Estimate();
    out.columns[c].Finalize();
  }
  return out;
}

TableStatistics BuildStatisticsFromRows(const Schema& schema,
                                        const std::vector<Row>& rows) {
  PartitionSketch sketch;
  sketch.AddRows(schema, rows);
  return sketch.Finish();
}

}  // namespace shark
