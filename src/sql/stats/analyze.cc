#include "sql/stats/analyze.h"

#include <utility>
#include <vector>

#include "rdd/context.h"
#include "sql/executor.h"

namespace shark {

namespace {

using SketchPtr = std::shared_ptr<PartitionSketch>;

SketchPtr SketchRows(const Schema& schema, const std::vector<Row>& rows,
                     TaskContext* tctx) {
  auto sketch = std::make_shared<PartitionSketch>();
  sketch->AddRows(schema, rows);
  // Sketch maintenance: one histogram/heavy-hitter/KMV update per value.
  tctx->work().rows_processed +=
      rows.size() * static_cast<size_t>(schema.num_fields());
  return sketch;
}

}  // namespace

Result<std::shared_ptr<const TableStatistics>> RunAnalyzeTable(
    ClusterContext* ctx, TableInfo* info, QueryMetrics* metrics) {
  Schema schema = info->schema;
  RddPtr<SketchPtr> sketches;
  if (info->is_cached()) {
    // Scan the columnar partitions where they live; decoding every column is
    // charged like a full-width memstore scan.
    sketches = info->cached_rdd->MapPartitions(
        [schema](int, const std::vector<TablePartitionPtr>& in,
                 TaskContext* tctx) {
          std::vector<Row> rows;
          for (const TablePartitionPtr& part : in) {
            if (part == nullptr) continue;
            tctx->work().mem_read_bytes += part->MemoryBytes();
            std::vector<Row> decoded = part->ToRows(nullptr);
            rows.insert(rows.end(), std::make_move_iterator(decoded.begin()),
                        std::make_move_iterator(decoded.end()));
          }
          return std::vector<SketchPtr>{SketchRows(schema, rows, tctx)};
        },
        "analyzeScan:" + info->name);
  } else {
    if (info->dfs_file.empty()) {
      return Status::ExecutionError("table has no storage to analyze: " +
                                    info->name);
    }
    SHARK_ASSIGN_OR_RETURN(RddPtr<Row> rows, ctx->FromDfs<Row>(info->dfs_file));
    sketches = rows->MapPartitions(
        [schema](int, const std::vector<Row>& in, TaskContext* tctx) {
          return std::vector<SketchPtr>{SketchRows(schema, in, tctx)};
        },
        "analyzeScan:" + info->name);
  }

  double start = ctx->now();
  SHARK_ASSIGN_OR_RETURN(std::vector<SketchPtr> parts, ctx->Collect(sketches));
  if (metrics != nullptr) {
    metrics->AddJob(ctx->scheduler().last_job());
    metrics->virtual_seconds += ctx->now() - start;
  }

  // Master-side merge: the same ApproxHistogram/HeavyHitters/KMV merge
  // machinery PDE uses for per-task shuffle statistics.
  PartitionSketch merged;
  for (const SketchPtr& p : parts) {
    if (p != nullptr) merged.Merge(*p);
  }
  if (merged.columns.empty()) {
    // Empty table: still record zero-row statistics with typed columns.
    merged.AddRows(schema, {});
  }
  auto stats = std::make_shared<TableStatistics>(merged.Finish());
  info->column_statistics = stats;
  if (info->approx_rows == 0) {
    info->approx_rows = static_cast<uint64_t>(stats->row_count);
  }
  return std::shared_ptr<const TableStatistics>(stats);
}

}  // namespace shark
