#ifndef SHARK_SQL_STATS_ANALYZE_H_
#define SHARK_SQL_STATS_ANALYZE_H_

#include <memory>

#include "common/status.h"
#include "sql/catalog.h"
#include "sql/stats/table_stats.h"

namespace shark {

class ClusterContext;
struct QueryMetrics;

/// Runs ANALYZE TABLE as a distributed job: every partition of the cached
/// columnar table (or the DFS file for uncached tables) is scanned by a task
/// that builds per-column sketches — histogram, heavy hitters, KMV distinct
/// sketch — which the master merges into one TableStatistics. The scan is
/// charged through the normal cost model, so ANALYZE costs virtual time like
/// any other query. On success the statistics are installed in the catalog
/// entry (`info->column_statistics`).
Result<std::shared_ptr<const TableStatistics>> RunAnalyzeTable(
    ClusterContext* ctx, TableInfo* info, QueryMetrics* metrics);

}  // namespace shark

#endif  // SHARK_SQL_STATS_ANALYZE_H_
