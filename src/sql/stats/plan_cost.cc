#include "sql/stats/plan_cost.h"

#include <algorithm>
#include <cmath>

#include "sql/stats/table_stats.h"

namespace shark {

namespace {

uint64_t U64(double v) {
  return v <= 0 ? 0 : static_cast<uint64_t>(v);
}

double Rows(const LogicalPlan& plan) { return std::max(plan.est_rows, 0.0); }

}  // namespace

double WorkToSeconds(const PlanCostEnv& env, const TaskWork& work,
                     int stages) {
  CostModel model(env.hardware);
  double core_sec = model.WorkSeconds(work, env.profile, env.virtual_scale);
  double t = core_sec / std::max(env.total_cores, 1);
  // Each stage pays launch overhead once across the wave of parallel tasks.
  t += static_cast<double>(stages) *
       (env.profile.task_launch_overhead_sec + 0.01);
  return t;
}

double EstimateRowBytes(const LogicalPlan& plan, const PlanCostEnv& env) {
  if ((plan.kind == PlanKind::kScan || plan.kind == PlanKind::kIndexScan) &&
      env.catalog != nullptr) {
    auto info = env.catalog->Get(plan.table);
    if (info.ok()) {
      const TableInfo* t = *info;
      if (t->column_statistics != nullptr &&
          t->column_statistics->AvgRowBytes() > 0) {
        return t->column_statistics->AvgRowBytes();
      }
      if (t->approx_rows > 0 && t->approx_bytes > 0) {
        return static_cast<double>(t->approx_bytes) /
               static_cast<double>(t->approx_rows);
      }
    }
  }
  if (!plan.children.empty() && plan.kind != PlanKind::kAggregate) {
    double total = 0;
    for (const PlanPtr& c : plan.children) {
      total += EstimateRowBytes(*c, env);
    }
    if (plan.kind == PlanKind::kJoin || plan.kind == PlanKind::kUnion) {
      return plan.kind == PlanKind::kUnion
                 ? total / static_cast<double>(plan.children.size())
                 : total;
    }
    return total / static_cast<double>(plan.children.size());
  }
  return 16.0 * std::max(plan.num_output_columns(), 1);
}

double JoinStepCostSeconds(const PlanCostEnv& env, double left_rows,
                           double left_bytes, double right_rows,
                           double right_bytes, double out_rows) {
  double small_bytes = std::min(left_bytes, right_bytes);
  double small_rows = left_bytes <= right_bytes ? left_rows : right_rows;
  double probe_rows = left_bytes <= right_bytes ? right_rows : left_rows;
  double threshold =
      static_cast<double>(env.broadcast_threshold_bytes);

  TaskWork broadcast;
  // Gather the build side to the master, broadcast it, probe in place.
  broadcast.net_read_bytes = U64(2.0 * small_bytes);
  broadcast.hash_records = U64(small_rows + probe_rows);
  broadcast.rows_processed = U64(probe_rows + out_rows);
  double broadcast_cost = WorkToSeconds(env, broadcast, /*stages=*/2);

  TaskWork shuffle;
  // Both sides serialized, moved across the network and co-grouped.
  shuffle.ser_bytes = U64(left_bytes + right_bytes);
  shuffle.net_read_bytes = U64(left_bytes + right_bytes);
  shuffle.hash_records = U64(left_rows + right_rows);
  shuffle.rows_processed = U64(left_rows + right_rows + out_rows);
  double shuffle_cost = WorkToSeconds(env, shuffle, /*stages=*/3);

  bool can_broadcast = small_bytes * env.virtual_scale <= threshold;
  return can_broadcast ? std::min(broadcast_cost, shuffle_cost)
                       : shuffle_cost;
}

double CostPlan(LogicalPlan* plan, const PlanCostEnv& env) {
  double children_cost = 0;
  for (const PlanPtr& c : plan->children) {
    children_cost += CostPlan(c.get(), env);
  }

  TaskWork work;
  int stages = 0;
  double out_rows = Rows(*plan);
  double out_bytes = out_rows * EstimateRowBytes(*plan, env);
  switch (plan->kind) {
    case PlanKind::kScan: {
      double table_rows = out_rows;
      double table_bytes = out_bytes;
      bool cached = false;
      DfsFormat format = DfsFormat::kText;
      if (env.catalog != nullptr) {
        auto info = env.catalog->Get(plan->table);
        if (info.ok()) {
          cached = (*info)->is_cached();
          format = (*info)->format;
          if ((*info)->approx_rows > 0) {
            table_rows = static_cast<double>((*info)->approx_rows);
          }
          if ((*info)->approx_bytes > 0) {
            table_bytes = static_cast<double>((*info)->approx_bytes);
          }
        }
      }
      if (cached) {
        // Column pruning: only the needed columns' bytes are decoded.
        double frac = plan->output.empty()
                          ? 1.0
                          : static_cast<double>(std::max<size_t>(
                                plan->needed_columns.size(), 1)) /
                                static_cast<double>(plan->output.size());
        work.mem_read_bytes = U64(table_bytes * frac);
      } else {
        work.disk_read_bytes = U64(table_bytes);
        if (format == DfsFormat::kText) {
          work.text_deser_bytes = U64(table_bytes);
        } else {
          work.binary_deser_bytes = U64(table_bytes);
        }
      }
      work.rows_processed = U64(table_rows);
      stages = 1;
      break;
    }
    case PlanKind::kIndexScan: {
      double table_rows = out_rows;
      if (env.catalog != nullptr) {
        auto info = env.catalog->Get(plan->table);
        if (info.ok() && (*info)->approx_rows > 0) {
          table_rows = static_cast<double>((*info)->approx_rows);
        }
      }
      double matched = plan->est_index_matches >= 0 ? plan->est_index_matches
                                                    : table_rows;
      // B+-tree probe (log descent) plus per-posting row materialization and
      // the residual filter pass; the gather touches only the matched rows'
      // bytes instead of the whole column region.
      work.rows_processed = U64(std::log2(table_rows + 2.0) + matched * 2.0);
      work.mem_read_bytes = U64(matched * EstimateRowBytes(*plan, env));
      stages = 1;
      break;
    }
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kLimit:
      work.rows_processed = U64(Rows(*plan->children[0]));
      break;
    case PlanKind::kAggregate: {
      double in_rows = Rows(*plan->children[0]);
      work.hash_records = U64(in_rows + out_rows);
      work.ser_bytes = U64(out_bytes);
      work.net_read_bytes = U64(out_bytes);
      work.rows_processed = U64(in_rows);
      stages = 2;
      break;
    }
    case PlanKind::kJoin: {
      const LogicalPlan& l = *plan->children[0];
      const LogicalPlan& r = *plan->children[1];
      double lb = Rows(l) * EstimateRowBytes(l, env);
      double rb = Rows(r) * EstimateRowBytes(r, env);
      double step = JoinStepCostSeconds(env, Rows(l), lb, Rows(r), rb,
                                        out_rows);
      plan->est_cost_sec = children_cost + step;
      return plan->est_cost_sec;
    }
    case PlanKind::kSort: {
      double in_rows = Rows(*plan->children[0]);
      double in_bytes =
          in_rows * EstimateRowBytes(*plan->children[0], env);
      work.sort_records = U64(in_rows);
      work.net_read_bytes = U64(in_bytes);
      stages = 2;
      break;
    }
    case PlanKind::kUnion:
      break;
  }
  plan->est_cost_sec = children_cost + WorkToSeconds(env, work, stages);
  return plan->est_cost_sec;
}

}  // namespace shark
