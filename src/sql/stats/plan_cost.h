#ifndef SHARK_SQL_STATS_PLAN_COST_H_
#define SHARK_SQL_STATS_PLAN_COST_H_

#include <cstdint>

#include "sim/cost_model.h"
#include "sql/catalog.h"
#include "sql/logical_plan.h"

namespace shark {

/// Everything the planner needs to price a plan in the simulator's currency.
/// The hardware model, engine profile and virtual scale are the exact values
/// the discrete-event scheduler charges with, so EXPLAIN's est_cost and the
/// measured virtual seconds are directly comparable numbers.
struct PlanCostEnv {
  const Catalog* catalog = nullptr;
  HardwareModel hardware;
  EngineProfile profile;
  double virtual_scale = 1.0;
  int total_cores = 8;
  uint64_t broadcast_threshold_bytes = 1ULL << 30;
};

/// Converts estimated operator work into virtual seconds under ideal
/// parallelism: core-occupancy seconds / total cores, plus per-stage
/// scheduling overhead.
double WorkToSeconds(const PlanCostEnv& env, const TaskWork& work, int stages);

/// Cost of one join step for the DP enumerator: joining a left composite of
/// (rows, bytes) with a right input of (rows, bytes) producing `out_rows`.
/// Picks the cheaper of broadcast (when a side fits under the threshold in
/// virtual bytes) and shuffle — mirroring the executor's runtime choice.
double JoinStepCostSeconds(const PlanCostEnv& env, double left_rows,
                           double left_bytes, double right_rows,
                           double right_bytes, double out_rows);

/// Estimated average output row width in bytes for a plan node (column
/// statistics for scans when available, a flat per-column default
/// otherwise).
double EstimateRowBytes(const LogicalPlan& plan, const PlanCostEnv& env);

/// Annotates `est_cost_sec` cumulatively (node + subtree) over a plan whose
/// `est_rows` were already filled by the CardinalityEstimator; returns the
/// root cost in virtual seconds.
double CostPlan(LogicalPlan* plan, const PlanCostEnv& env);

}  // namespace shark

#endif  // SHARK_SQL_STATS_PLAN_COST_H_
