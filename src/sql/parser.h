#ifndef SHARK_SQL_PARSER_H_
#define SHARK_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace shark {

/// Parses one SQL statement (HiveQL subset: SELECT with JOIN/WHERE/GROUP BY/
/// HAVING/ORDER BY/LIMIT/DISTRIBUTE BY, CREATE TABLE [AS SELECT] with
/// TBLPROPERTIES, DROP TABLE).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a standalone scalar expression (testing convenience).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace shark

#endif  // SHARK_SQL_PARSER_H_
