#include "sql/aggregates.h"

namespace shark {

uint64_t ApproxSizeOf(const AggCell& cell) {
  uint64_t total = 32 + ApproxSizeOf(cell.acc);
  for (const Row& r : cell.distinct) total += ApproxSizeOf(r);
  return total;
}

uint64_t ApproxSizeOf(const AggState& state) {
  uint64_t total = 24;
  for (const AggCell& c : state.cells) total += ApproxSizeOf(c);
  return total;
}

AggState InitAggState(const std::vector<AggCall>& calls) {
  AggState state;
  state.cells.resize(calls.size());
  return state;
}

void AccumulateValue(const AggCall& call, const Value& v, AggCell* cell) {
  switch (call.fn) {
    case AggCall::Fn::kCountStar:
      cell->count += 1;
      break;
    case AggCall::Fn::kCount:
      if (!v.is_null()) cell->count += 1;
      break;
    case AggCall::Fn::kSum:
    case AggCall::Fn::kAvg:
      if (!v.is_null()) {
        if (!cell->inited) {
          cell->acc = call.out_type == TypeKind::kInt64 && call.fn == AggCall::Fn::kSum
                          ? Value::Int64(v.AsInt64())
                          : Value::Double(v.AsDouble());
          cell->inited = true;
        } else if (cell->acc.kind() == TypeKind::kInt64) {
          cell->acc = Value::Int64(WrapAddInt64(cell->acc.int64_v(), v.AsInt64()));
        } else {
          cell->acc = Value::Double(cell->acc.double_v() + v.AsDouble());
        }
        cell->count += 1;
      }
      break;
    case AggCall::Fn::kMin:
      if (!v.is_null() && (!cell->inited || v.Compare(cell->acc) < 0)) {
        cell->acc = v;
        cell->inited = true;
      }
      break;
    case AggCall::Fn::kMax:
      if (!v.is_null() && (!cell->inited || v.Compare(cell->acc) > 0)) {
        cell->acc = v;
        cell->inited = true;
      }
      break;
    case AggCall::Fn::kCountDistinct:
      break;  // handled by caller (needs the full arg tuple)
  }
}

void AccumulateRow(const std::vector<AggCall>& calls, const Row& row,
                   const UdfRegistry* udfs, AggState* state) {
  for (size_t i = 0; i < calls.size(); ++i) {
    const AggCall& call = calls[i];
    AggCell& cell = state->cells[i];
    if (call.fn == AggCall::Fn::kCountStar) {
      cell.count += 1;
      continue;
    }
    if (call.fn == AggCall::Fn::kCountDistinct) {
      Row tuple;
      bool any_null = false;
      for (const ExprPtr& arg : call.args) {
        Value v = EvalExpr(*arg, row, udfs);
        any_null = any_null || v.is_null();
        tuple.fields.push_back(std::move(v));
      }
      if (!any_null) cell.distinct.insert(std::move(tuple));
      continue;
    }
    Value v = call.args.empty() ? Value::Null()
                                : EvalExpr(*call.args[0], row, udfs);
    AccumulateValue(call, v, &cell);
  }
}

void MergeAggStates(const std::vector<AggCall>& calls, const AggState& from,
                    AggState* into) {
  for (size_t i = 0; i < calls.size(); ++i) {
    const AggCall& call = calls[i];
    const AggCell& src = from.cells[i];
    AggCell& dst = into->cells[i];
    switch (call.fn) {
      case AggCall::Fn::kCountStar:
      case AggCall::Fn::kCount:
        dst.count += src.count;
        break;
      case AggCall::Fn::kSum:
      case AggCall::Fn::kAvg:
        if (src.inited) {
          if (!dst.inited) {
            dst.acc = src.acc;
            dst.inited = true;
          } else if (dst.acc.kind() == TypeKind::kInt64) {
            dst.acc = Value::Int64(WrapAddInt64(dst.acc.int64_v(), src.acc.int64_v()));
          } else {
            dst.acc = Value::Double(dst.acc.double_v() + src.acc.AsDouble());
          }
          dst.count += src.count;
        }
        break;
      case AggCall::Fn::kMin:
        if (src.inited && (!dst.inited || src.acc.Compare(dst.acc) < 0)) {
          dst.acc = src.acc;
          dst.inited = true;
        }
        break;
      case AggCall::Fn::kMax:
        if (src.inited && (!dst.inited || src.acc.Compare(dst.acc) > 0)) {
          dst.acc = src.acc;
          dst.inited = true;
        }
        break;
      case AggCall::Fn::kCountDistinct:
        for (const Row& r : src.distinct) dst.distinct.insert(r);
        break;
    }
  }
}

Row FinalizeAggRow(const std::vector<AggCall>& calls, const Row& group_key,
                   const AggState& state) {
  Row out = group_key;
  for (size_t i = 0; i < calls.size(); ++i) {
    const AggCall& call = calls[i];
    const AggCell& cell = state.cells[i];
    switch (call.fn) {
      case AggCall::Fn::kCountStar:
      case AggCall::Fn::kCount:
        out.fields.push_back(Value::Int64(cell.count));
        break;
      case AggCall::Fn::kCountDistinct:
        out.fields.push_back(
            Value::Int64(static_cast<int64_t>(cell.distinct.size())));
        break;
      case AggCall::Fn::kSum:
      case AggCall::Fn::kMin:
      case AggCall::Fn::kMax:
        out.fields.push_back(cell.inited ? cell.acc : Value::Null());
        break;
      case AggCall::Fn::kAvg:
        out.fields.push_back(cell.count > 0
                                 ? Value::Double(cell.acc.AsDouble() /
                                                 static_cast<double>(cell.count))
                                 : Value::Null());
        break;
    }
  }
  return out;
}

}  // namespace shark
