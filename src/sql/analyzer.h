#ifndef SHARK_SQL_ANALYZER_H_
#define SHARK_SQL_ANALYZER_H_

#include "common/status.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

/// Turns a parsed SELECT into a bound logical plan: resolves tables against
/// the catalog, binds column references to slots, extracts equi-join keys
/// (from ON clauses and from WHERE conjuncts of comma joins), splits
/// aggregates out of the select list, and type-checks expressions.
class Analyzer {
 public:
  Analyzer(const Catalog* catalog, const UdfRegistry* udfs)
      : catalog_(catalog), udfs_(udfs) {}

  Result<PlanPtr> AnalyzeSelect(const SelectStmt& stmt) const;

 private:
  struct ScopeColumn {
    std::string qualifier;  // table alias (lower-cased)
    std::string name;       // column name
    TypeKind type;
  };
  using Scope = std::vector<ScopeColumn>;

  Result<PlanPtr> AnalyzeTableRef(const TableRef& ref, Scope* scope) const;

  /// Clones `ast`, binding column refs to scope slots and inferring types.
  Result<ExprPtr> BindExpr(const ExprPtr& ast, const Scope& scope) const;

  Status BindInPlace(Expr* e, const Scope& scope) const;
  Status InferType(Expr* e) const;

  const Catalog* catalog_;
  const UdfRegistry* udfs_;
};

}  // namespace shark

#endif  // SHARK_SQL_ANALYZER_H_
