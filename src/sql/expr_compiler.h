#ifndef SHARK_SQL_EXPR_COMPILER_H_
#define SHARK_SQL_EXPR_COMPILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/expr.h"

namespace shark {

namespace vec {
struct ColumnBatch;
struct ColumnVector;
}  // namespace vec

/// Scalar binary-op evaluation shared by the interpreter-compiled programs
/// and the vectorized kernels' per-row fallback: SQL three-valued AND/OR,
/// NULL propagation, wrapping BIGINT arithmetic, exact mixed-type compares.
Value EvalBinaryScalar(BinaryOp op, const Value& l, const Value& r);

/// Compilation of expression evaluators (§5 "Bytecode Compilation of
/// Expression Evaluators"): the paper observes that interpreting the
/// Hive-generated evaluator trees dominates CPU time for in-memory data and
/// describes compilation as work in progress. This module completes that
/// idea for this engine: a bound Expr tree is flattened once per task into a
/// postfix instruction sequence executed on a small value stack — no
/// recursion, no per-node shared_ptr chasing, constants pre-materialized and
/// LIKE patterns pre-validated.
///
/// Short-circuit note: AND/OR compile to full evaluation of both operands
/// with three-valued combination. Expressions are pure (UDFs included), so
/// results are identical to the interpreter's.
class CompiledExpr {
 public:
  /// Evaluates against a row.
  Value Eval(const Row& row) const;

  /// Predicate form: NULL counts as false.
  bool EvalBool(const Row& row) const {
    Value v = Eval(row);
    return !v.is_null() && v.bool_v();
  }

  /// Batched evaluation over rows [begin, end) of `batch`, writing one result
  /// per row into `out`. Ops with typed kernels (slot/const loads, compares,
  /// arithmetic, AND/OR, IS NULL, SUBSTR) run column-at-a-time; everything
  /// else falls back to per-row scalar evaluation of that instruction, so
  /// results are identical to Eval() on the materialized rows. Defined in
  /// exec/vectorized/eval_batch.cc.
  void EvalBatch(const vec::ColumnBatch& batch, size_t begin, size_t end,
                 vec::ColumnVector* out) const;

  size_t num_instructions() const { return code_.size(); }

 private:
  friend class ExprCompiler;

  enum class Op : uint8_t {
    kConst,      // push constants_[arg]
    kSlot,       // push row[arg]
    // Fused fast paths (no Value copies): compare row[arg] with
    // constants_[arg2] using BinaryOp(arg3).
    kCmpSlotConst,
    // row[arg] BETWEEN constants_[arg2] AND constants_[arg2+1]; arg3=negated.
    kBetweenSlotConst,
    kNeg,        // unary minus
    kNot,        // logical not
    kBinary,     // arg = BinaryOp; pops rhs, lhs
    kBuiltin,    // arg = builtin name index, arg2 = argc
    kUdf,        // arg = udf index, arg2 = argc
    kBetween,    // pops hi, lo, v; arg = negated
    kInList,     // arg2 = list size; pops items then v; arg = negated
    kIsNull,     // arg = negated
    kLike,       // arg = negated; rhs pattern on stack
    kCase,       // arg2 = #when branches, arg = has_else; all values on stack
  };

  struct Instruction {
    Op op;
    int32_t arg = 0;
    int32_t arg2 = 0;
    int32_t arg3 = 0;
  };

  /// Maximum operand-stack depth any compiled program may need; deeper
  /// expressions fail compilation and fall back to the interpreter.
  static constexpr int kMaxStackDepth = 32;

  std::vector<Instruction> code_;
  std::vector<Value> constants_;
  std::vector<std::string> builtin_names_;
  std::vector<const UdfRegistry::UdfInfo*> udfs_;
};

/// Compiles bound expressions. Lives as long as any CompiledExpr it produced
/// only through the UdfRegistry it references.
class ExprCompiler {
 public:
  explicit ExprCompiler(const UdfRegistry* udfs) : udfs_(udfs) {}

  /// Compiles a bound expression; fails only on unbound column refs or
  /// aggregate calls (which never reach row-level evaluation).
  Result<CompiledExpr> Compile(const Expr& expr) const;

 private:
  Status Emit(const Expr& expr, CompiledExpr* out) const;

  const UdfRegistry* udfs_;
};

}  // namespace shark

#endif  // SHARK_SQL_EXPR_COMPILER_H_
