#include "sql/analyzer.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace shark {

namespace {

/// Collects aggregate calls during select-list rewriting over an Aggregate.
struct AggContext {
  std::vector<ExprPtr> group_exprs;   // bound over the aggregate's input
  std::vector<ExprPtr> call_exprs;    // bound kAggCall expressions
  std::vector<AggCall> calls;
};

AggCall::Fn AggFnFromName(const std::string& name, bool distinct, bool star) {
  if (name == "COUNT") {
    if (star) return AggCall::Fn::kCountStar;
    return distinct ? AggCall::Fn::kCountDistinct : AggCall::Fn::kCount;
  }
  if (name == "SUM") return AggCall::Fn::kSum;
  if (name == "AVG") return AggCall::Fn::kAvg;
  if (name == "MIN") return AggCall::Fn::kMin;
  return AggCall::Fn::kMax;
}

TypeKind AggOutType(AggCall::Fn fn, const std::vector<ExprPtr>& args) {
  switch (fn) {
    case AggCall::Fn::kCountStar:
    case AggCall::Fn::kCount:
    case AggCall::Fn::kCountDistinct:
      return TypeKind::kInt64;
    case AggCall::Fn::kAvg:
      return TypeKind::kDouble;
    case AggCall::Fn::kSum:
      return args.empty() || args[0]->type == TypeKind::kInt64
                 ? TypeKind::kInt64
                 : TypeKind::kDouble;
    case AggCall::Fn::kMin:
    case AggCall::Fn::kMax:
      return args.empty() ? TypeKind::kNull : args[0]->type;
  }
  return TypeKind::kNull;
}

/// Rewrites a bound expression to reference the output of an Aggregate node:
/// group expressions become slots [0, G), aggregate calls become slots
/// [G, G+A). New aggregate calls are appended to the context.
Result<ExprPtr> RewriteOverAggregate(const ExprPtr& bound, AggContext* ctx) {
  for (size_t g = 0; g < ctx->group_exprs.size(); ++g) {
    if (bound->Equals(*ctx->group_exprs[g])) {
      return MakeSlot(static_cast<int>(g), bound->type);
    }
  }
  if (bound->kind == ExprKind::kAggCall) {
    for (size_t a = 0; a < ctx->call_exprs.size(); ++a) {
      if (bound->Equals(*ctx->call_exprs[a])) {
        return MakeSlot(static_cast<int>(ctx->group_exprs.size() + a),
                        ctx->calls[a].out_type);
      }
    }
    AggCall call;
    call.fn = AggFnFromName(bound->name, bound->distinct, bound->star);
    call.args = bound->children;
    call.out_type = AggOutType(call.fn, call.args);
    ctx->calls.push_back(call);
    ctx->call_exprs.push_back(bound);
    return MakeSlot(
        static_cast<int>(ctx->group_exprs.size() + ctx->calls.size() - 1),
        call.out_type);
  }
  if (bound->kind == ExprKind::kSlot || bound->kind == ExprKind::kColumnRef) {
    return Status::AnalysisError("expression '" + bound->ToString() +
                                 "' is neither grouped nor aggregated");
  }
  ExprPtr out = CloneExpr(*bound);
  for (auto& child : out->children) {
    SHARK_ASSIGN_OR_RETURN(child, RewriteOverAggregate(child, ctx));
  }
  return out;
}

std::string OutputName(const SelectItem& item, const ExprPtr& bound,
                       size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
    return item.expr->name;
  }
  if (bound != nullptr && bound->kind == ExprKind::kSlot) {
    return "_c" + std::to_string(index);
  }
  return item.expr != nullptr ? item.expr->ToString()
                              : "_c" + std::to_string(index);
}

bool IsBuiltinFunction(const std::string& name) {
  static const char* kBuiltins[] = {
      "SUBSTR", "SUBSTRING", "LOWER",   "UPPER", "LENGTH", "ABS",
      "YEAR",   "CONCAT",    "ROUND",   "COALESCE", "IF",  "FLOOR",
      "CEIL",   "CEILING",   "SQRT",    "POW",   "POWER",  "TRIM",
      "MONTH",  "DAY"};
  for (const char* b : kBuiltins) {
    if (name == b) return true;
  }
  return false;
}

TypeKind BuiltinReturnType(const std::string& name,
                           const std::vector<ExprPtr>& args) {
  if (name == "SUBSTR" || name == "SUBSTRING" || name == "LOWER" ||
      name == "UPPER" || name == "CONCAT") {
    return TypeKind::kString;
  }
  if (name == "LENGTH" || name == "YEAR" || name == "MONTH" ||
      name == "DAY" || name == "FLOOR" || name == "CEIL" ||
      name == "CEILING") {
    return TypeKind::kInt64;
  }
  if (name == "ROUND" || name == "SQRT" || name == "POW" || name == "POWER") {
    return TypeKind::kDouble;
  }
  if (name == "TRIM") return TypeKind::kString;
  if (name == "ABS" || name == "COALESCE") {
    return args.empty() ? TypeKind::kDouble : args[0]->type;
  }
  if (name == "IF") {
    return args.size() >= 2 ? args[1]->type : TypeKind::kNull;
  }
  return TypeKind::kNull;
}

}  // namespace

Status Analyzer::InferType(Expr* e) const {
  for (auto& c : e->children) SHARK_RETURN_NOT_OK(InferType(c.get()));
  switch (e->kind) {
    case ExprKind::kLiteral:
      e->type = e->literal.kind();
      break;
    case ExprKind::kSlot:
      break;  // set at binding
    case ExprKind::kColumnRef:
      return Status::Internal("unbound column ref in InferType");
    case ExprKind::kUnary:
      e->type = e->unary_op == UnaryOp::kNot ? TypeKind::kBool
                                             : e->children[0]->type;
      break;
    case ExprKind::kBinary:
      switch (e->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kMod:
          e->type = (e->children[0]->type == TypeKind::kDouble ||
                     e->children[1]->type == TypeKind::kDouble)
                        ? TypeKind::kDouble
                        : TypeKind::kInt64;
          break;
        case BinaryOp::kDiv:
          e->type = TypeKind::kDouble;
          break;
        default:
          e->type = TypeKind::kBool;
          break;
      }
      break;
    case ExprKind::kFuncCall: {
      if (udfs_ != nullptr) {
        if (const UdfRegistry::UdfInfo* info = udfs_->Lookup(e->name)) {
          e->type = info->return_type;
          break;
        }
      }
      if (!IsBuiltinFunction(e->name)) {
        return Status::AnalysisError("unknown function: " + e->name);
      }
      e->type = BuiltinReturnType(e->name, e->children);
      break;
    }
    case ExprKind::kAggCall:
      e->type = AggOutType(AggFnFromName(e->name, e->distinct, e->star),
                           e->children);
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
      e->type = TypeKind::kBool;
      break;
    case ExprKind::kCase:
      e->type = e->children.size() >= 2 ? e->children[1]->type
                                        : TypeKind::kNull;
      break;
  }
  return Status::OK();
}

Status Analyzer::BindInPlace(Expr* e, const Scope& scope) const {
  if (e->kind == ExprKind::kColumnRef) {
    int found = -1;
    std::string qual = ToLower(e->qualifier);
    for (size_t i = 0; i < scope.size(); ++i) {
      if (!EqualsIgnoreCase(scope[i].name, e->name)) continue;
      if (!qual.empty() && scope[i].qualifier != qual) continue;
      if (found >= 0) {
        return Status::AnalysisError("ambiguous column: " + e->ToString());
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::AnalysisError("unknown column: " + e->ToString());
    }
    e->kind = ExprKind::kSlot;
    e->slot = found;
    e->type = scope[static_cast<size_t>(found)].type;
    e->qualifier.clear();
    e->name.clear();
    return Status::OK();
  }
  for (auto& c : e->children) SHARK_RETURN_NOT_OK(BindInPlace(c.get(), scope));
  return Status::OK();
}

Result<ExprPtr> Analyzer::BindExpr(const ExprPtr& ast, const Scope& scope) const {
  ExprPtr bound = CloneExpr(*ast);
  SHARK_RETURN_NOT_OK(BindInPlace(bound.get(), scope));
  SHARK_RETURN_NOT_OK(InferType(bound.get()));
  return bound;
}

Result<PlanPtr> Analyzer::AnalyzeTableRef(const TableRef& ref,
                                          Scope* scope) const {
  if (ref.subquery != nullptr) {
    SHARK_ASSIGN_OR_RETURN(PlanPtr sub, AnalyzeSelect(*ref.subquery));
    std::string qual = ToLower(ref.alias);
    for (const Field& f : sub->output) {
      scope->push_back(ScopeColumn{qual, f.name, f.type});
    }
    return sub;
  }
  SHARK_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->Get(ref.name));
  PlanPtr scan = MakePlan(PlanKind::kScan);
  scan->table = info->name;
  scan->output = info->schema.fields();
  for (int c = 0; c < info->schema.num_fields(); ++c) {
    scan->needed_columns.push_back(c);
  }
  std::string qual = ToLower(ref.alias.empty() ? ref.name : ref.alias);
  for (const Field& f : info->schema.fields()) {
    scope->push_back(ScopeColumn{qual, f.name, f.type});
  }
  return scan;
}

Result<PlanPtr> Analyzer::AnalyzeSelect(const SelectStmt& stmt) const {
  // ---- FROM and JOINs -----------------------------------------------------
  Scope scope;
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, AnalyzeTableRef(stmt.from, &scope));

  struct JoinInfo {
    PlanPtr node;
    int left_width;   // slots below this boundary belong to the left side
    int right_width;
    bool from_comma;  // keys must be recovered from WHERE
  };
  std::vector<JoinInfo> join_spine;

  for (const JoinClause& jc : stmt.joins) {
    int left_width = static_cast<int>(scope.size());
    SHARK_ASSIGN_OR_RETURN(PlanPtr right, AnalyzeTableRef(jc.table, &scope));
    int right_width = static_cast<int>(scope.size()) - left_width;

    PlanPtr join = MakePlan(PlanKind::kJoin);
    join->join_type = jc.type;
    join->children = {plan, right};
    for (const ScopeColumn& c : scope) {
      join->output.push_back(Field{c.name, c.type});
    }

    JoinInfo info{join, left_width, right_width, jc.condition == nullptr};
    if (jc.condition != nullptr) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr cond, BindExpr(jc.condition, scope));
      std::vector<ExprPtr> residual;
      for (const ExprPtr& conj : SplitConjuncts(cond)) {
        bool used_as_key = false;
        if (conj->kind == ExprKind::kBinary &&
            conj->binary_op == BinaryOp::kEq) {
          std::set<int> lslots, rslots;
          CollectSlots(*conj->children[0], &lslots);
          CollectSlots(*conj->children[1], &rslots);
          auto all_below = [&](const std::set<int>& s) {
            return !s.empty() && *s.rbegin() < left_width;
          };
          auto all_at_or_above = [&](const std::set<int>& s) {
            return !s.empty() && *s.begin() >= left_width;
          };
          ExprPtr lk, rk;
          if (all_below(lslots) && all_at_or_above(rslots)) {
            lk = conj->children[0];
            rk = conj->children[1];
          } else if (all_below(rslots) && all_at_or_above(lslots)) {
            lk = conj->children[1];
            rk = conj->children[0];
          }
          if (lk != nullptr) {
            std::map<int, int> shift;
            for (int s = left_width; s < static_cast<int>(scope.size()); ++s) {
              shift[s] = s - left_width;
            }
            join->left_keys.push_back(lk);
            join->right_keys.push_back(RemapSlots(*rk, shift));
            used_as_key = true;
          }
        }
        if (!used_as_key) residual.push_back(conj);
      }
      join->join_residual = CombineConjuncts(residual);
      if (join->left_keys.empty()) {
        return Status::AnalysisError(
            "join without an equi-key condition is not supported");
      }
    }
    join_spine.push_back(info);
    plan = join;
  }

  // ---- WHERE ---------------------------------------------------------------
  std::vector<ExprPtr> where_conjuncts;
  if (stmt.where != nullptr) {
    SHARK_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(stmt.where, scope));
    where_conjuncts = SplitConjuncts(where);
  }

  // Recover equi-keys for comma joins from WHERE conjuncts.
  for (JoinInfo& info : join_spine) {
    if (!info.from_comma) continue;
    int boundary = info.left_width;
    int upper = info.left_width + info.right_width;
    for (auto it = where_conjuncts.begin(); it != where_conjuncts.end();) {
      const ExprPtr& conj = *it;
      bool took = false;
      if (conj->kind == ExprKind::kBinary && conj->binary_op == BinaryOp::kEq) {
        std::set<int> lslots, rslots;
        CollectSlots(*conj->children[0], &lslots);
        CollectSlots(*conj->children[1], &rslots);
        auto left_side = [&](const std::set<int>& s) {
          return !s.empty() && *s.rbegin() < boundary;
        };
        auto right_side = [&](const std::set<int>& s) {
          return !s.empty() && *s.begin() >= boundary && *s.rbegin() < upper;
        };
        ExprPtr lk, rk;
        if (left_side(lslots) && right_side(rslots)) {
          lk = conj->children[0];
          rk = conj->children[1];
        } else if (left_side(rslots) && right_side(lslots)) {
          lk = conj->children[1];
          rk = conj->children[0];
        }
        if (lk != nullptr) {
          std::map<int, int> shift;
          for (int s = boundary; s < upper; ++s) shift[s] = s - boundary;
          info.node->left_keys.push_back(lk);
          info.node->right_keys.push_back(RemapSlots(*rk, shift));
          took = true;
        }
      }
      it = took ? where_conjuncts.erase(it) : it + 1;
    }
    if (info.node->left_keys.empty()) {
      return Status::AnalysisError(
          "comma join without an equality predicate linking the tables");
    }
  }

  if (!where_conjuncts.empty()) {
    PlanPtr filter = MakePlan(PlanKind::kFilter);
    filter->children = {plan};
    filter->output = plan->output;
    filter->predicate = CombineConjuncts(where_conjuncts);
    plan = filter;
  }

  // ---- Select list / aggregation -------------------------------------------
  // Expand stars and bind every select item over the FROM scope.
  std::vector<SelectItem> items;
  std::vector<ExprPtr> bound_items;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      std::string qual = ToLower(item.star_qualifier);
      for (size_t i = 0; i < scope.size(); ++i) {
        if (!qual.empty() && scope[i].qualifier != qual) continue;
        SelectItem expanded;
        expanded.alias = scope[i].name;
        expanded.expr = MakeColumnRef(scope[i].qualifier, scope[i].name);
        items.push_back(expanded);
        bound_items.push_back(
            MakeSlot(static_cast<int>(i), scope[i].type));
      }
      if (!qual.empty() && (items.empty() ||
                            items.back().alias.empty())) {
        // fallthrough; unknown qualifier caught by empty expansion below
      }
      continue;
    }
    items.push_back(item);
    SHARK_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(item.expr, scope));
    bound_items.push_back(bound);
  }
  if (items.empty()) return Status::AnalysisError("empty select list");

  bool has_agg = !stmt.group_by.empty();
  for (const ExprPtr& e : bound_items) has_agg = has_agg || ContainsAggregate(*e);
  if (stmt.having != nullptr) has_agg = true;

  // Pre-rewrite copies for ORDER BY structural matching.
  std::vector<ExprPtr> items_over_scope = bound_items;
  ExprPtr bound_having;
  if (has_agg) {
    AggContext agg_ctx;
    for (const ExprPtr& g : stmt.group_by) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(g, scope));
      agg_ctx.group_exprs.push_back(bound);
    }
    // Rewrite select items over the aggregate output.
    std::vector<ExprPtr> rewritten;
    for (ExprPtr& e : bound_items) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr r, RewriteOverAggregate(e, &agg_ctx));
      rewritten.push_back(r);
    }
    if (stmt.having != nullptr) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr bh, BindExpr(stmt.having, scope));
      SHARK_ASSIGN_OR_RETURN(bound_having, RewriteOverAggregate(bh, &agg_ctx));
    }
    PlanPtr agg = MakePlan(PlanKind::kAggregate);
    agg->children = {plan};
    agg->group_exprs = agg_ctx.group_exprs;
    agg->agg_calls = agg_ctx.calls;
    for (size_t g = 0; g < agg_ctx.group_exprs.size(); ++g) {
      agg->output.push_back(Field{"_g" + std::to_string(g),
                                  agg_ctx.group_exprs[g]->type});
    }
    for (size_t a = 0; a < agg_ctx.calls.size(); ++a) {
      agg->output.push_back(
          Field{"_a" + std::to_string(a), agg_ctx.calls[a].out_type});
    }
    plan = agg;
    bound_items = std::move(rewritten);
  }

  if (bound_having != nullptr) {
    PlanPtr filter = MakePlan(PlanKind::kFilter);
    filter->children = {plan};
    filter->output = plan->output;
    filter->predicate = bound_having;
    plan = filter;
  }

  // ---- Projection -----------------------------------------------------------
  PlanPtr project = MakePlan(PlanKind::kProject);
  project->children = {plan};
  project->project_exprs = bound_items;
  for (size_t i = 0; i < items.size(); ++i) {
    project->output.push_back(
        Field{OutputName(items[i], bound_items[i], i), bound_items[i]->type});
  }
  plan = project;

  // ---- DISTINCT --------------------------------------------------------------
  if (stmt.distinct) {
    PlanPtr agg = MakePlan(PlanKind::kAggregate);
    agg->children = {plan};
    agg->output = plan->output;
    for (int i = 0; i < plan->num_output_columns(); ++i) {
      agg->group_exprs.push_back(MakeSlot(i, plan->output[static_cast<size_t>(i)].type));
    }
    plan = agg;
  }

  // ---- ORDER BY / LIMIT -------------------------------------------------------
  if (!stmt.order_by.empty()) {
    Scope out_scope;
    for (const Field& f : plan->output) {
      out_scope.push_back(ScopeColumn{"", f.name, f.type});
    }
    PlanPtr sort = MakePlan(PlanKind::kSort);
    sort->children = {plan};
    sort->output = plan->output;
    for (const OrderItem& item : stmt.order_by) {
      auto bound = BindExpr(item.expr, out_scope);
      if (!bound.ok()) {
        // Structural match against the select expressions, both in their
        // post-aggregate form and as originally bound over the FROM scope
        // (so ORDER BY SUM(a) matches a SUM(a) select item).
        SHARK_ASSIGN_OR_RETURN(ExprPtr over_input, BindExpr(item.expr, scope));
        int found = -1;
        for (size_t i = 0; i < items_over_scope.size(); ++i) {
          // Match only against the items as bound over the FROM scope —
          // over_input lives in that frame. Comparing against the
          // post-aggregate rewrites (bound_items) would collide slot
          // indices across frames: ORDER BY a.c0 (input slot 0) must not
          // match an aggregate-output slot 0 that holds a different column.
          if (over_input->Equals(*items_over_scope[i])) {
            found = static_cast<int>(i);
            break;
          }
        }
        if (found < 0) {
          return Status::AnalysisError(
              "ORDER BY expression must appear in the select list: " +
              item.expr->ToString());
        }
        sort->sort_exprs.push_back(
            MakeSlot(found, plan->output[static_cast<size_t>(found)].type));
      } else {
        sort->sort_exprs.push_back(*bound);
      }
      sort->sort_ascending.push_back(item.ascending);
    }
    sort->limit = stmt.limit;
    plan = sort;
  } else if (stmt.limit >= 0) {
    PlanPtr limit = MakePlan(PlanKind::kLimit);
    limit->children = {plan};
    limit->output = plan->output;
    limit->limit = stmt.limit;
    plan = limit;
  }

  if (stmt.union_all != nullptr) {
    SHARK_ASSIGN_OR_RETURN(PlanPtr rest, AnalyzeSelect(*stmt.union_all));
    if (rest->num_output_columns() != plan->num_output_columns()) {
      return Status::AnalysisError(
          "UNION ALL branches have different column counts");
    }
    PlanPtr u = MakePlan(PlanKind::kUnion);
    u->children = {plan, rest};
    u->output = plan->output;
    plan = u;
  }
  return plan;
}

}  // namespace shark
