#ifndef SHARK_SQL_LOGICAL_PLAN_H_
#define SHARK_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "relation/types.h"
#include "sql/ast.h"

namespace shark {

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
  kUnion,      // UNION ALL (bag semantics)
  kIndexScan,  // IndexRangeScan: B+-tree probe + row gather over a cached table
};

/// One aggregate call in an Aggregate node.
struct AggCall {
  enum class Fn : uint8_t {
    kCountStar,
    kCount,
    kCountDistinct,
    kSum,
    kAvg,
    kMin,
    kMax,
  };
  Fn fn = Fn::kCountStar;
  /// Argument expressions bound to the aggregate's input (empty for COUNT(*)).
  /// COUNT(DISTINCT a, b) carries several.
  std::vector<ExprPtr> args;
  TypeKind out_type = TypeKind::kInt64;
};

struct LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

/// A bound logical plan node. Expressions attached to a node reference the
/// output slots of its child(ren); a Join's residual predicate references the
/// concatenation [left columns..., right columns...].
///
/// Scan keeps the full table arity in its output (columns outside
/// `needed_columns` are decoded as NULL), so slot bindings equal table
/// schema positions — the columnar store simply never touches pruned
/// columns' bytes.
struct LogicalPlan {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  /// Output columns of this node.
  std::vector<Field> output;

  // kScan / kIndexScan
  std::string table;
  ExprPtr scan_predicate;           // pushed-down filter (may be null)
  std::vector<int> needed_columns;  // columns actually read

  // kIndexScan. The probed range [index_lo, index_hi] (literal expressions,
  // null = open end) only has to over-approximate the predicate: the full
  // `scan_predicate` is re-applied as a residual filter after the gather, so
  // results match the plain scan exactly regardless of NULL/NaN ordering.
  std::string index_name;
  int index_column = -1;
  ExprPtr index_lo;
  ExprPtr index_hi;
  bool index_lo_inclusive = true;
  bool index_hi_inclusive = true;
  double est_index_matches = -1.0;  // estimated postings in the range

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> project_exprs;

  // kAggregate (output = group columns then aggregate results)
  std::vector<ExprPtr> group_exprs;
  std::vector<AggCall> agg_calls;

  // kJoin (equi-join; kLeftOuter/kRightOuter null-extend the unmatched side)
  JoinType join_type = JoinType::kInner;
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  ExprPtr join_residual;  // may be null

  // kSort
  std::vector<ExprPtr> sort_exprs;
  std::vector<bool> sort_ascending;

  // kSort fused limit / kLimit
  int64_t limit = -1;

  // Planner annotations (-1 = not estimated). `est_rows` is in real rows —
  // the same units the executor observes at runtime; `est_cost_sec` is the
  // cumulative virtual seconds of this subtree under the simulator's own
  // cost model, so EXPLAIN's estimates are directly comparable to measured
  // virtual times.
  double est_rows = -1.0;
  double est_cost_sec = -1.0;

  int num_output_columns() const { return static_cast<int>(output.size()); }

  /// One-line rendering of this node alone (no children, no newline) —
  /// shared by ToString and the EXPLAIN ANALYZE renderer.
  std::string NodeString() const;

  /// Indented plan rendering for tests and EXPLAIN-style debugging.
  std::string ToString(int indent = 0) const;
};

PlanPtr MakePlan(PlanKind kind);

}  // namespace shark

#endif  // SHARK_SQL_LOGICAL_PLAN_H_
