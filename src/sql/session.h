#ifndef SHARK_SQL_SESSION_H_
#define SHARK_SQL_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "rdd/context.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace shark {

/// A SQL query result that stayed distributed: the RDD plus its schema.
/// This is §4's sql2rdd — the bridge between SQL and the ML library; the
/// caller can keep transforming it with the RDD API and everything stays in
/// one lineage graph (end-to-end fault tolerance).
struct TableRdd {
  RddPtr<Row> rdd;
  Schema schema;
  QueryMetrics build_metrics;
};

/// The public facade of the engine: parse/analyze/optimize/execute SQL
/// against a cluster context, manage the metastore, load tables into the
/// columnar memory store, and hand query plans to the RDD/ML layer.
class SharkSession {
 public:
  explicit SharkSession(std::shared_ptr<ClusterContext> ctx);

  ClusterContext& context() { return *ctx_; }
  std::shared_ptr<ClusterContext> shared_context() { return ctx_; }
  Catalog& catalog() { return catalog_; }
  UdfRegistry& udfs() { return udfs_; }
  ExecOptions& options() { return options_; }

  /// Runs one SQL statement. SELECT returns rows; CREATE/DROP return an
  /// empty result (with load metrics for CTAS).
  Result<QueryResult> Sql(const std::string& query);

  /// Like Sql, but for profiled SELECTs also renders the EXPLAIN ANALYZE
  /// report (plan annotated with the recorded profile) into *analyzed_plan —
  /// the slow-query log attaches this without re-running the query.
  /// Left empty for non-SELECT statements and unprofiled runs.
  Result<QueryResult> Sql(const std::string& query, std::string* analyzed_plan);

  /// Runs a SELECT but returns the distributed result instead of collecting.
  Result<TableRdd> Sql2Rdd(const std::string& query);

  /// Renders an optimized logical plan (EXPLAIN).
  Result<std::string> Explain(const std::string& query);

  // -- table management ------------------------------------------------------

  /// Registers a table whose rows are written to the simulated DFS in
  /// `num_blocks` blocks (the loading path the generators use).
  Status CreateDfsTable(const std::string& name, const Schema& schema,
                        const std::vector<Row>& rows, int num_blocks,
                        DfsFormat format = DfsFormat::kText);

  /// Loads a table into the columnar memory store (§3.2/§3.3): scans the
  /// DFS file, optionally repartitions by `distribute_column` (§3.4),
  /// marshals to columnar partitions, caches them, and records per-partition
  /// statistics in the catalog for map pruning (§3.5).
  /// `copartition_with` requires the partner to already be cached with a
  /// matching partition count.
  Status CacheTable(const std::string& name,
                    const std::string& distribute_column = "",
                    const std::string& copartition_with = "");

  /// Drops the in-memory copy (keeps DFS storage).
  Status UncacheTable(const std::string& name);

  /// Metrics of the most recent memstore load.
  const QueryMetrics& last_load_metrics() const { return last_load_metrics_; }

 private:
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       std::string* analyzed_plan);
  Result<QueryResult> ExecuteAnalyzeTable(const AnalyzeTableStmt& stmt);

  /// Runs the full two-phase planner (rules + cost-based join reordering)
  /// under this session's options and cluster cost environment.
  PlanPtr PlanSelect(PlanPtr plan);
  Status CacheTableImpl(const std::string& name,
                        const std::string& distribute_column,
                        const std::string& copartition_with);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    std::string* analyzed_plan);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteExplain(const ExplainStmt& stmt);

  /// Builds a B+-tree over a cached table's column (a collect job over the
  /// columnar partitions, charged like a one-column scan) and registers it
  /// in the catalog with a MemoryManager reservation.
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteDropIndex(const DropIndexStmt& stmt);

  /// Marshals a row RDD into cached columnar partitions; registers stats.
  /// If `align_with` is non-null, load tasks prefer the node holding the
  /// partner's corresponding cached partition (co-partitioned placement).
  Status LoadRowsIntoMemstore(TableInfo* info, RddPtr<Row> rows,
                              int distribute_key, int num_partitions,
                              const TableInfo* align_with = nullptr);

  std::shared_ptr<ClusterContext> ctx_;
  Catalog catalog_;
  UdfRegistry udfs_;
  ExecOptions options_;
  QueryMetrics last_load_metrics_;
};

}  // namespace shark

#endif  // SHARK_SQL_SESSION_H_
