#include "sql/logical_plan.h"

#include <cstdio>

namespace shark {

namespace {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kUnion:
      return "UnionAll";
    case PlanKind::kIndexScan:
      return "IndexRangeScan";
  }
  return "?";
}

const char* AggFnName(AggCall::Fn fn) {
  switch (fn) {
    case AggCall::Fn::kCountStar:
      return "COUNT(*)";
    case AggCall::Fn::kCount:
      return "COUNT";
    case AggCall::Fn::kCountDistinct:
      return "COUNT-DISTINCT";
    case AggCall::Fn::kSum:
      return "SUM";
    case AggCall::Fn::kAvg:
      return "AVG";
    case AggCall::Fn::kMin:
      return "MIN";
    case AggCall::Fn::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace

std::string LogicalPlan::NodeString() const {
  std::string out = PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
      out += " " + table;
      if (scan_predicate != nullptr) {
        out += " pushed=" + scan_predicate->ToString();
      }
      out += " cols=" + std::to_string(needed_columns.size());
      break;
    case PlanKind::kFilter:
      out += " " + predicate->ToString();
      break;
    case PlanKind::kProject: {
      out += " [";
      for (size_t i = 0; i < project_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += project_exprs[i]->ToString();
      }
      out += "]";
      break;
    }
    case PlanKind::kAggregate: {
      out += " groups=[";
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_exprs[i]->ToString();
      }
      out += "] aggs=[";
      for (size_t i = 0; i < agg_calls.size(); ++i) {
        if (i > 0) out += ", ";
        out += AggFnName(agg_calls[i].fn);
      }
      out += "]";
      break;
    }
    case PlanKind::kJoin: {
      if (join_type == JoinType::kLeftOuter) out += " LEFT";
      if (join_type == JoinType::kRightOuter) out += " RIGHT";
      out += " keys=[";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += left_keys[i]->ToString() + "=" + right_keys[i]->ToString();
      }
      out += "]";
      break;
    }
    case PlanKind::kSort:
      out += " keys=" + std::to_string(sort_exprs.size());
      if (limit >= 0) out += " limit=" + std::to_string(limit);
      break;
    case PlanKind::kLimit:
      out += " " + std::to_string(limit);
      break;
    case PlanKind::kUnion:
      break;
    case PlanKind::kIndexScan: {
      out += " " + table + " index=" + index_name;
      std::string lo = index_lo != nullptr ? index_lo->ToString() : "-inf";
      std::string hi = index_hi != nullptr ? index_hi->ToString() : "+inf";
      out += " range=" + std::string(index_lo_inclusive ? "[" : "(") + lo +
             ", " + hi + (index_hi_inclusive ? "]" : ")");
      if (scan_predicate != nullptr) {
        out += " residual=" + scan_predicate->ToString();
      }
      out += " cols=" + std::to_string(needed_columns.size());
      break;
    }
  }
  if (est_rows >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " est_rows=%.0f", est_rows);
    out += buf;
    if (est_cost_sec >= 0.0) {
      std::snprintf(buf, sizeof(buf), " est_cost=%.3fs", est_cost_sec);
      out += buf;
    }
  }
  return out;
}

std::string LogicalPlan::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += NodeString();
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

PlanPtr MakePlan(PlanKind kind) {
  auto plan = std::make_shared<LogicalPlan>();
  plan->kind = kind;
  return plan;
}

}  // namespace shark
