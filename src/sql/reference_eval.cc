#include "sql/reference_eval.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sql/aggregates.h"
#include "sql/analyzer.h"

namespace shark {

namespace {

Row KeyRow(const std::vector<ExprPtr>& keys, const Row& row,
           const UdfRegistry* udfs) {
  Row out;
  out.fields.reserve(keys.size());
  for (const ExprPtr& k : keys) out.fields.push_back(EvalExpr(*k, row, udfs));
  return out;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out = left;
  out.fields.insert(out.fields.end(), right.fields.begin(),
                    right.fields.end());
  return out;
}

Result<std::vector<Row>> EvalScan(const LogicalPlan& plan,
                                  const Catalog& catalog, const Dfs& dfs,
                                  const UdfRegistry* udfs) {
  SHARK_ASSIGN_OR_RETURN(const TableInfo* info, catalog.Get(plan.table));
  if (info->dfs_file.empty()) {
    return Status::InvalidArgument("reference eval: table has no DFS file: " +
                                   plan.table);
  }
  SHARK_ASSIGN_OR_RETURN(const DfsFile* file, dfs.GetFile(info->dfs_file));

  // Column-pruning mask: the engine's scan keeps full table arity but
  // decodes unneeded columns as NULL.
  const size_t arity = info->schema.fields().size();
  std::vector<bool> needed(arity, plan.needed_columns.empty());
  for (int c : plan.needed_columns) {
    if (c >= 0 && static_cast<size_t>(c) < arity) needed[c] = true;
  }
  const bool all_needed =
      std::all_of(needed.begin(), needed.end(), [](bool b) { return b; });

  std::vector<Row> out;
  for (const DfsBlock& block : file->blocks) {
    auto rows = std::static_pointer_cast<const std::vector<Row>>(block.data);
    if (rows == nullptr) continue;
    for (const Row& r : *rows) {
      Row copy = r;
      if (!all_needed) {
        for (size_t i = 0; i < copy.fields.size() && i < arity; ++i) {
          if (!needed[i]) copy.fields[i] = Value::Null();
        }
      }
      if (plan.scan_predicate != nullptr &&
          !EvalPredicate(*plan.scan_predicate, copy, udfs)) {
        continue;
      }
      out.push_back(std::move(copy));
    }
  }
  return out;
}

std::vector<Row> EvalJoin(const LogicalPlan& plan, std::vector<Row> left,
                          std::vector<Row> right, const UdfRegistry* udfs) {
  const int left_width =
      plan.children[0]->num_output_columns();
  const int right_width = plan.children[1]->num_output_columns();

  std::vector<Row> lkeys, rkeys;
  lkeys.reserve(left.size());
  rkeys.reserve(right.size());
  for (const Row& r : left) lkeys.push_back(KeyRow(plan.left_keys, r, udfs));
  for (const Row& r : right) rkeys.push_back(KeyRow(plan.right_keys, r, udfs));

  std::vector<Row> joined;
  std::vector<bool> right_matched(right.size(), false);
  for (size_t i = 0; i < left.size(); ++i) {
    bool matched = false;
    for (size_t j = 0; j < right.size(); ++j) {
      // Key-row equality, same as the engines' hash-table probe — NULL and
      // NaN keys match themselves here.
      if (lkeys[i] == rkeys[j]) {
        joined.push_back(ConcatRows(left[i], right[j]));
        matched = true;
        right_matched[j] = true;
      }
    }
    if (!matched && plan.join_type == JoinType::kLeftOuter) {
      Row nulls;
      nulls.fields.assign(static_cast<size_t>(right_width), Value::Null());
      joined.push_back(ConcatRows(left[i], nulls));
    }
  }
  if (plan.join_type == JoinType::kRightOuter) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (!right_matched[j]) {
        Row nulls;
        nulls.fields.assign(static_cast<size_t>(left_width), Value::Null());
        joined.push_back(ConcatRows(nulls, right[j]));
      }
    }
  }
  // Residual predicate applies after null-extension, like the engines.
  if (plan.join_residual != nullptr) {
    std::vector<Row> filtered;
    for (Row& r : joined) {
      if (EvalPredicate(*plan.join_residual, r, udfs)) {
        filtered.push_back(std::move(r));
      }
    }
    return filtered;
  }
  return joined;
}

std::vector<Row> EvalAggregate(const LogicalPlan& plan,
                               const std::vector<Row>& input,
                               const UdfRegistry* udfs) {
  // Linear-scan grouping on Value equality only: deliberately avoids
  // Value::Hash so a ==/Hash inconsistency shows up as a divergence against
  // the hash-grouping engines instead of being masked.
  std::vector<std::pair<Row, AggState>> groups;
  for (const Row& r : input) {
    Row key = KeyRow(plan.group_exprs, r, udfs);
    AggState* state = nullptr;
    for (auto& [gk, gs] : groups) {
      if (gk == key) {
        state = &gs;
        break;
      }
    }
    if (state == nullptr) {
      groups.emplace_back(std::move(key), InitAggState(plan.agg_calls));
      state = &groups.back().second;
    }
    AccumulateRow(plan.agg_calls, r, udfs, state);
  }
  // A global aggregate over zero rows produces zero rows (house semantics,
  // matching the shuffle-based engines).
  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, state] : groups) {
    out.push_back(FinalizeAggRow(plan.agg_calls, key, state));
  }
  return out;
}

std::vector<Row> EvalSort(const LogicalPlan& plan, std::vector<Row> rows,
                          const UdfRegistry* udfs) {
  const auto& keys = plan.sort_exprs;
  const auto& asc = plan.sort_ascending;
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < keys.size(); ++i) {
      Value va = EvalExpr(*keys[i], a, udfs);
      Value vb = EvalExpr(*keys[i], b, udfs);
      int c = va.Compare(vb);
      if (c != 0) return asc[i] ? c < 0 : c > 0;
    }
    return false;
  });
  if (plan.limit >= 0 && static_cast<int64_t>(rows.size()) > plan.limit) {
    rows.resize(static_cast<size_t>(plan.limit));
  }
  return rows;
}

}  // namespace

Result<std::vector<Row>> ReferenceEvalPlan(const LogicalPlan& plan,
                                           const Catalog& catalog,
                                           const Dfs& dfs,
                                           const UdfRegistry* udfs) {
  std::vector<std::vector<Row>> child_rows;
  child_rows.reserve(plan.children.size());
  for (const PlanPtr& child : plan.children) {
    SHARK_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           ReferenceEvalPlan(*child, catalog, dfs, udfs));
    child_rows.push_back(std::move(rows));
  }

  switch (plan.kind) {
    case PlanKind::kScan:
      return EvalScan(plan, catalog, dfs, udfs);
    case PlanKind::kIndexScan:
      // No index structures here: the residual predicate is the full scan
      // predicate, so a plain scan is semantically identical.
      return EvalScan(plan, catalog, dfs, udfs);
    case PlanKind::kFilter: {
      std::vector<Row> out;
      for (Row& r : child_rows[0]) {
        if (EvalPredicate(*plan.predicate, r, udfs)) {
          out.push_back(std::move(r));
        }
      }
      return out;
    }
    case PlanKind::kProject: {
      std::vector<Row> out;
      out.reserve(child_rows[0].size());
      for (const Row& r : child_rows[0]) {
        Row projected;
        projected.fields.reserve(plan.project_exprs.size());
        for (const ExprPtr& e : plan.project_exprs) {
          projected.fields.push_back(EvalExpr(*e, r, udfs));
        }
        out.push_back(std::move(projected));
      }
      return out;
    }
    case PlanKind::kAggregate:
      return EvalAggregate(plan, child_rows[0], udfs);
    case PlanKind::kJoin:
      return EvalJoin(plan, std::move(child_rows[0]), std::move(child_rows[1]),
                      udfs);
    case PlanKind::kSort:
      return EvalSort(plan, std::move(child_rows[0]), udfs);
    case PlanKind::kLimit: {
      std::vector<Row>& rows = child_rows[0];
      if (plan.limit >= 0 && static_cast<int64_t>(rows.size()) > plan.limit) {
        rows.resize(static_cast<size_t>(plan.limit));
      }
      return std::move(rows);
    }
    case PlanKind::kUnion: {
      std::vector<Row> out;
      for (std::vector<Row>& rows : child_rows) {
        for (Row& r : rows) out.push_back(std::move(r));
      }
      return out;
    }
  }
  return Status::InvalidArgument("reference eval: unknown plan kind");
}

Result<QueryResult> ReferenceExecute(const SelectStmt& stmt,
                                     const Catalog& catalog, const Dfs& dfs,
                                     const UdfRegistry* udfs) {
  Analyzer analyzer(&catalog, udfs);
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, analyzer.AnalyzeSelect(stmt));
  SHARK_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         ReferenceEvalPlan(*plan, catalog, dfs, udfs));
  if (plan->limit >= 0 &&
      (plan->kind == PlanKind::kLimit || plan->kind == PlanKind::kSort) &&
      static_cast<int64_t>(rows.size()) > plan->limit) {
    rows.resize(static_cast<size_t>(plan->limit));
  }
  QueryResult result;
  result.schema = Schema(plan->output);
  result.rows = std::move(rows);
  return result;
}

}  // namespace shark
