#include "sql/ast.h"

namespace shark {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.kind() == TypeKind::kString ? "'" + literal.ToString() + "'"
                                                 : literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case ExprKind::kSlot:
      return "$" + std::to_string(slot);
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kFuncCall:
    case ExprKind::kAggCall: {
      std::string out = name + "(";
      if (star) out += "*";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT" : "") + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kInList: {
      std::string out = children[0]->ToString() + (negated ? " NOT" : "") + " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + " IS " + (negated ? "NOT " : "") + "NULL";
    case ExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT" : "") + " LIKE " +
             children[1]->ToString();
    case ExprKind::kCase:
      return "CASE(...)";
  }
  return "?";
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || name != other.name || qualifier != other.qualifier ||
      slot != other.slot || negated != other.negated ||
      distinct != other.distinct || star != other.star ||
      children.size() != other.children.size()) {
    return false;
  }
  switch (kind) {
    case ExprKind::kLiteral:
      if (!(literal == other.literal) &&
          !(literal.is_null() && other.literal.is_null())) {
        return false;
      }
      break;
    case ExprKind::kUnary:
      if (unary_op != other.unary_op) return false;
      break;
    case ExprKind::kBinary:
      if (binary_op != other.binary_op) return false;
      break;
    default:
      break;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->type = v.kind();
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeSlot(int slot, TypeKind type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSlot;
  e->slot = slot;
  e->type = type;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

}  // namespace shark
