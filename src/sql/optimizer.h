#ifndef SHARK_SQL_OPTIMIZER_H_
#define SHARK_SQL_OPTIMIZER_H_

#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

/// Rule-based logical optimization (the static half of Shark's optimizer,
/// §2.4): constant folding, predicate pushdown (through projects and joins,
/// into scans where map pruning consumes it), and column pruning (the scan
/// reads only needed columns from the columnar store).
PlanPtr Optimize(PlanPtr plan, const UdfRegistry* udfs);

}  // namespace shark

#endif  // SHARK_SQL_OPTIMIZER_H_
