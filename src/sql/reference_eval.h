#ifndef SHARK_SQL_REFERENCE_EVAL_H_
#define SHARK_SQL_REFERENCE_EVAL_H_

#include <vector>

#include "sim/dfs.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

/// Naive single-threaded reference oracle for the differential-testing
/// harness (tools/fuzz). Interprets the *analyzed* logical plan directly —
/// no optimizer, no columnar memory store, no simulator, no hashing of keys
/// (joins are nested loops, grouping is a linear scan using Value equality
/// only) — so it computes the intended semantics through a code path that
/// shares as little machinery as possible with the two real engines while
/// still reusing the single-source-of-truth aggregate transition functions.
///
/// Deliberately mirrored engine behaviours (these are the house semantics,
/// not an accident): NULL and NaN group keys / join keys match themselves;
/// a global aggregate over zero input rows yields zero rows; outer joins
/// null-extend on equi-key mismatch and apply the residual predicate
/// afterwards over the already-extended rows.
Result<std::vector<Row>> ReferenceEvalPlan(const LogicalPlan& plan,
                                           const Catalog& catalog,
                                           const Dfs& dfs,
                                           const UdfRegistry* udfs);

/// Analyzes `stmt` against `catalog` and interprets the resulting plan with
/// ReferenceEvalPlan, applying the same driver-side final LIMIT cut as
/// Executor::ExecuteInner. Returns schema + rows; metrics stay zero.
Result<QueryResult> ReferenceExecute(const SelectStmt& stmt,
                                     const Catalog& catalog, const Dfs& dfs,
                                     const UdfRegistry* udfs);

}  // namespace shark

#endif  // SHARK_SQL_REFERENCE_EVAL_H_
