#ifndef SHARK_SQL_EXECUTOR_H_
#define SHARK_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "rdd/context.h"
#include "relation/row.h"
#include "sql/catalog.h"
#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

namespace vec {
struct VecScan;
}  // namespace vec

/// How join strategies are chosen (the Fig 8 experiment):
///  - kStatic: compile-time choice from catalog statistics only.
///  - kAdaptive: pre-shuffle both inputs, inspect observed sizes, then pick
///    map join vs shuffle join (pure PDE).
///  - kStaticAdaptive: use static hints to pre-shuffle only the likely-small
///    input; if it is small, broadcast it and never pre-shuffle the large
///    side (the paper's combined strategy, ~3x over static).
enum class JoinOptimization : uint8_t { kStatic, kAdaptive, kStaticAdaptive };

/// Execution tuning knobs.
struct ExecOptions {
  bool pde = true;            // run-time reducer selection & skew handling
  JoinOptimization join_opt = JoinOptimization::kStaticAdaptive;
  bool map_pruning = true;    // §3.5
  bool use_copartition = true;  // §3.4

  /// Compile row-level expressions into flat postfix programs instead of
  /// interpreting the tree (§5's "bytecode compilation", future work in the
  /// paper, implemented here). Off by default so benches measure the
  /// paper's configuration; the ablation/micro benches quantify the gain.
  bool compile_expressions = false;

  /// Vectorized batch-at-a-time execution over cached columnar tables:
  /// scan/filter/project/group-by pipelines decode column batches and run
  /// type-specialized kernels instead of materializing Rows per operator.
  /// Pure host-side optimization — virtual-time charges are identical to the
  /// row-at-a-time path, so benches report the same virtual_seconds with or
  /// without it. Falls back to the scalar path per-query whenever an
  /// expression has no batch kernel support or the scan is not memstore-backed.
  bool vectorized = true;

  /// Sargability rule: allow the planner to flip Scans on indexed cached
  /// tables into IndexRangeScan (B+-tree probe + row gather) when the cost
  /// model prefers it. Off = always full columnar scans — the fuzz
  /// indexed-on/off metamorphic variant toggles this.
  bool use_indexes = true;

  /// Fine-grained shuffle buckets (0: 2x total cores).
  int fine_buckets = 0;
  /// Reducer count when PDE is off (0: total cores, unless
  /// bytes_per_reducer is set).
  int static_reducers = 0;
  /// Hive-style static reducer heuristic: when PDE is off and
  /// static_reducers == 0, use ceil(scanned_virtual_bytes / this). 0 = off.
  uint64_t bytes_per_reducer = 0;
  /// Virtual bytes per reducer that PDE coalescing aims for. Small on
  /// purpose: sub-second tasks are nearly free on this engine, and §7 finds
  /// that over-partitioning beats careful reducer tuning (robustness to
  /// skew); the fine-grained bucket count still caps the reducer count.
  uint64_t reducer_target_bytes = 32ULL * 1024 * 1024;
  /// Broadcast (map join) threshold on the built table's virtual bytes.
  uint64_t broadcast_threshold_bytes = 1ULL << 30;

  /// Cost-based optimization: ANALYZE statistics drive DP join reordering in
  /// the planner and estimator-informed size beliefs in the executor.
  bool cbo = true;
  /// Forces the query's written left-deep join order (naive baseline for the
  /// bench and the fuzz plan-variant oracle). Also disables re-planning.
  bool force_left_deep = false;
  /// Mid-query re-optimization (PDE, §4): after a join step's shuffle stage,
  /// re-enumerate the remaining join order when observed cardinality deviates
  /// from the estimate by more than this factor (either direction).
  /// 0 disables re-planning.
  double replan_factor = 4.0;
  /// DP budget for join reordering; larger spines use the greedy order.
  int dp_max_relations = 10;

  /// Host threads computing task bodies: -1 = inherit the context's setting,
  /// 0 = one per hardware thread, 1 = serial reference path. Only host
  /// wall-clock changes — virtual-time results are identical either way.
  int host_threads = -1;
};

/// Per-query metrics surfaced to benches and tests.
struct QueryMetrics {
  double virtual_seconds = 0.0;
  int jobs = 0;
  int stages = 0;
  int tasks = 0;
  int tasks_failed = 0;
  int map_tasks_recovered = 0;
  int speculative_tasks = 0;
  TaskWork work;
  int partitions_scanned = 0;
  int partitions_pruned = 0;
  std::string join_strategy;
  int chosen_reducers = 0;
  /// Mid-query join-order re-optimizations triggered by PDE statistics.
  int replans = 0;

  void AddJob(const JobMetrics& job);
};

struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  QueryMetrics metrics;

  /// Per-stage/per-task execution trace (see common/trace.h). Set by
  /// Executor::Execute when it owns the profile bracket; null for queries
  /// executed inside an outer profiled query (their stages land in the
  /// outer profile).
  std::shared_ptr<const QueryProfile> profile;

  std::string ToString(size_t max_rows = 20) const;
};

/// Lowers an optimized logical plan onto the RDD engine and runs it. One
/// executor instance per query.
class Executor {
 public:
  Executor(ClusterContext* ctx, Catalog* catalog, const UdfRegistry* udfs,
           const ExecOptions& options)
      : ctx_(ctx), catalog_(catalog), udfs_(udfs), options_(options) {}

  /// Builds and collects the plan, returning rows plus metrics.
  Result<QueryResult> Execute(const PlanPtr& plan);

  /// Builds the RDD for a plan without collecting (sql2rdd, CTAS).
  Result<RddPtr<Row>> BuildRdd(const PlanPtr& plan);

  const QueryMetrics& metrics() const { return metrics_; }

 private:
  Result<QueryResult> ExecuteInner(const PlanPtr& plan);

  Result<RddPtr<Row>> BuildScan(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildIndexScan(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildFilter(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildProject(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildAggregate(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildJoin(const PlanPtr& plan);
  Result<RddPtr<Row>> BuildSort(const LogicalPlan& node);
  Result<RddPtr<Row>> BuildLimit(const LogicalPlan& node);

  /// Pre-shuffle sizes of one join step's inputs as observed by the master
  /// (§3.1's PDE statistics). A side is observed only when the chosen
  /// strategy actually pre-shuffled or gathered it.
  struct JoinSideObservation {
    bool left_observed = false;
    bool right_observed = false;
    uint64_t left_records = 0;
    uint64_t right_records = 0;
    uint64_t left_bytes = 0;
    uint64_t right_bytes = 0;
  };

  /// Joins two already-built row RDDs with the static+adaptive strategy
  /// selection. Beliefs are in virtual bytes; `obs` (may be null) receives
  /// observed pre-shuffle input sizes for mid-query re-optimization.
  Result<RddPtr<Row>> BuildJoinPair(RddPtr<Row> left, RddPtr<Row> right,
                                    std::vector<ExprPtr> left_keys,
                                    std::vector<ExprPtr> right_keys,
                                    JoinType join_type, int left_width,
                                    int right_width, const ExprPtr& residual,
                                    double left_belief, double right_belief,
                                    int static_reducers,
                                    JoinSideObservation* obs);

  /// Adaptive execution of an inner-join spine with mid-query
  /// re-optimization (§4): executes the cost-based join order step by step,
  /// feeds observed pre-shuffle cardinalities back into the estimates, and
  /// re-enumerates the remaining order when they deviate by more than
  /// `replan_factor`. Sets *applied=false (returning null) when the spine is
  /// not eligible.
  Result<RddPtr<Row>> BuildJoinSpine(const PlanPtr& plan, bool* applied);

  /// Static size belief for a join input in virtual bytes: catalog bytes for
  /// scans, the planner's cardinality estimate otherwise (under cbo), 1e30
  /// when unknown.
  double BeliefBytes(const LogicalPlan& child) const;

  /// Co-partitioned join fast path (§3.4); returns null when not applicable.
  Result<RddPtr<Row>> TryCoPartitionedJoin(const LogicalPlan& node);

  /// Prepares a vectorized scan of `node` (a kScan over a memstore-cached
  /// table): applies partition pruning, compiles the scan predicate, and
  /// fills `out`. Returns false — without touching metrics — when the
  /// vectorized path does not apply (flag off, table not cached in columnar
  /// form, or the predicate does not compile).
  bool PrepareVecScan(const LogicalPlan& node, vec::VecScan* out);

  /// Partition pruning over a cached table (updates scan metrics); shared by
  /// the scalar scan and the vectorized fast paths.
  RddPtr<TablePartitionPtr> PruneCachedScan(TableInfo* info,
                                            const LogicalPlan& node);

  /// Vectorized scan->filter->group-by fast path; returns null when not
  /// applicable (child is not a cached scan, or an expression does not
  /// compile).
  Result<RddPtr<Row>> TryVecAggregate(const LogicalPlan& node);

  RddPtr<Row> ApplyPredicate(RddPtr<Row> rows, const ExprPtr& predicate,
                             const std::string& label);

  int FineBuckets() const;
  /// Static reducer choice for the stage rooted at `node` (Hive heuristic
  /// when bytes_per_reducer is configured).
  int StaticReducers(const LogicalPlan& node) const;

  /// Runs EnsureShuffle and folds job metrics in.
  Result<ShuffleStats> EnsureShuffleTracked(
      const std::shared_ptr<ShuffleDependency>& dep);

  /// Collects an RDD and folds job metrics in.
  Result<std::vector<Row>> CollectTracked(const RddPtr<Row>& rdd);

  ClusterContext* ctx_;
  Catalog* catalog_;
  const UdfRegistry* udfs_;
  ExecOptions options_;
  QueryMetrics metrics_;
};

/// True if the partition statistics admit rows satisfying every prunable
/// conjunct (exposed for tests).
bool PartitionMayMatch(const std::vector<ColumnStats>& stats,
                       const std::vector<ExprPtr>& conjuncts);

/// EXPLAIN ANALYZE rendering: the logical plan tree with each operator
/// annotated by the stages that executed it (virtual-time span, task counts,
/// rows/bytes out, shuffle bucket distribution, cache traffic, work
/// breakdown). Stages that match no operator (shuffle-stat probes, recovery
/// sub-stages of shared scans) are listed at the end.
std::string RenderAnalyzedPlan(const LogicalPlan& plan,
                               const QueryProfile& profile);

}  // namespace shark

#endif  // SHARK_SQL_EXECUTOR_H_
