#include "sql/expr.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace shark {

Status UdfRegistry::Register(const std::string& name, UdfInfo info) {
  std::string key = ToUpper(name);
  if (udfs_.count(key) > 0) {
    return Status::AlreadyExists("udf already registered: " + name);
  }
  udfs_.emplace(std::move(key), std::move(info));
  return Status::OK();
}

const UdfRegistry::UdfInfo* UdfRegistry::Lookup(const std::string& name) const {
  auto it = udfs_.find(ToUpper(name));
  return it == udfs_.end() ? nullptr : &it->second;
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool both_int = l.kind() != TypeKind::kDouble && r.kind() != TypeKind::kDouble &&
                  IsNumericLike(l.kind()) && IsNumericLike(r.kind());
  if (op == BinaryOp::kMod) {
    int64_t d = r.AsInt64();
    if (d == 0) return Value::Null();
    // INT64_MIN % -1 is UB in C++; mathematically the remainder is 0.
    if (d == -1) return Value::Int64(0);
    return Value::Int64(l.AsInt64() % d);
  }
  if (both_int && op != BinaryOp::kDiv) {
    int64_t a = l.int64_v();
    int64_t b = r.int64_v();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(WrapAddInt64(a, b));
      case BinaryOp::kSub:
        return Value::Int64(WrapSubInt64(a, b));
      case BinaryOp::kMul:
        return Value::Int64(WrapMulInt64(a, b));
      default:
        break;
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Value::Null();
      return Value::Double(a / b);
    default:
      break;
  }
  return Value::Null();
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq:
      result = l == r;
      break;
    case BinaryOp::kNe:
      result = !(l == r);
      break;
    case BinaryOp::kLt:
      result = c < 0;
      break;
    case BinaryOp::kLe:
      result = c <= 0;
      break;
    case BinaryOp::kGt:
      result = c > 0;
      break;
    case BinaryOp::kGe:
      result = c >= 0;
      break;
    default:
      break;
  }
  return Value::Bool(result);
}

Value EvalBuiltinFunction(const std::string& name,
                          const std::vector<Value>& args);

}  // namespace

Value EvalBuiltin(const std::string& name, const std::vector<Value>& args) {
  return EvalBuiltinFunction(name, args);
}

namespace {

Value EvalBuiltinFunction(const std::string& name,
                          const std::vector<Value>& args) {
  if (name == "SUBSTR" || name == "SUBSTRING") {
    if (args.size() < 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    const std::string& s = args[0].str();
    int64_t start = args[1].AsInt64();  // 1-based, SQL style
    int64_t len = args.size() >= 3 && !args[2].is_null()
                      ? args[2].AsInt64()
                      : static_cast<int64_t>(s.size());
    if (start < 1) start = 1;
    if (start > static_cast<int64_t>(s.size()) || len <= 0) {
      return Value::String("");
    }
    return Value::String(
        s.substr(static_cast<size_t>(start - 1),
                 static_cast<size_t>(len)));
  }
  if (name == "LOWER") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::String(ToLower(args[0].str()));
  }
  if (name == "UPPER") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::String(ToUpper(args[0].str()));
  }
  if (name == "LENGTH") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int64(static_cast<int64_t>(args[0].str().size()));
  }
  if (name == "ABS") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    if (args[0].kind() == TypeKind::kDouble) {
      return Value::Double(std::fabs(args[0].double_v()));
    }
    // llabs(INT64_MIN) is UB; wrap-negate gives INT64_MIN back, matching
    // the engine's wrapping BIGINT semantics.
    int64_t v = args[0].int64_v();
    return Value::Int64(v < 0 ? WrapNegInt64(v) : v);
  }
  if (name == "YEAR") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    // Extract the year from a DATE value.
    std::string s = Value::FormatDate(args[0].int64_v());
    int64_t y = 0;
    ParseInt64(s.substr(0, 4), &y);
    return Value::Int64(y);
  }
  if (name == "CONCAT") {
    std::string out;
    for (const Value& a : args) {
      if (a.is_null()) return Value::Null();
      out += a.ToString();
    }
    return Value::String(std::move(out));
  }
  if (name == "ROUND") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    double scale = 1.0;
    if (args.size() >= 2 && !args[1].is_null()) {
      scale = std::pow(10.0, static_cast<double>(args[1].AsInt64()));
    }
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (name == "COALESCE") {
    for (const Value& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null();
  }
  if (name == "IF") {
    if (args.size() < 3) return Value::Null();
    return !args[0].is_null() && args[0].bool_v() ? args[1] : args[2];
  }
  if (name == "FLOOR") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int64(SaturatingDoubleToInt64(std::floor(args[0].AsDouble())));
  }
  if (name == "CEIL" || name == "CEILING") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::Int64(SaturatingDoubleToInt64(std::ceil(args[0].AsDouble())));
  }
  if (name == "SQRT") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    double v = args[0].AsDouble();
    return v < 0 ? Value::Null() : Value::Double(std::sqrt(v));
  }
  if (name == "POW" || name == "POWER") {
    if (args.size() < 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (name == "TRIM") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value::String(std::string(TrimWhitespace(args[0].str())));
  }
  if (name == "MONTH" || name == "DAY") {
    if (args.empty() || args[0].is_null()) return Value::Null();
    std::string s = Value::FormatDate(args[0].int64_v());
    int64_t v = 0;
    ParseInt64(name == "MONTH" ? s.substr(5, 2) : s.substr(8, 2), &v);
    return Value::Int64(v);
  }
  return Value::Null();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match: % = any sequence, _ = any single char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value EvalExpr(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kSlot:
      return row.Get(expr.slot);
    case ExprKind::kColumnRef:
      SHARK_CHECK(false);  // analyzer must bind all column refs
      return Value::Null();
    case ExprKind::kUnary: {
      Value v = EvalExpr(*expr.children[0], row, udfs);
      if (v.is_null()) return Value::Null();
      if (expr.unary_op == UnaryOp::kNeg) {
        if (v.kind() == TypeKind::kDouble) return Value::Double(-v.double_v());
        return Value::Int64(WrapNegInt64(v.int64_v()));
      }
      return Value::Bool(!v.bool_v());
    }
    case ExprKind::kBinary: {
      BinaryOp op = expr.binary_op;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        Value l = EvalExpr(*expr.children[0], row, udfs);
        // SQL three-valued logic with short circuit.
        if (op == BinaryOp::kAnd) {
          if (!l.is_null() && !l.bool_v()) return Value::Bool(false);
          Value r = EvalExpr(*expr.children[1], row, udfs);
          if (!r.is_null() && !r.bool_v()) return Value::Bool(false);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        if (!l.is_null() && l.bool_v()) return Value::Bool(true);
        Value r = EvalExpr(*expr.children[1], row, udfs);
        if (!r.is_null() && r.bool_v()) return Value::Bool(true);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      Value l = EvalExpr(*expr.children[0], row, udfs);
      Value r = EvalExpr(*expr.children[1], row, udfs);
      switch (op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(op, l, r);
        default:
          return EvalComparison(op, l, r);
      }
    }
    case ExprKind::kFuncCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& c : expr.children) args.push_back(EvalExpr(*c, row, udfs));
      if (udfs != nullptr) {
        if (const UdfRegistry::UdfInfo* info = udfs->Lookup(expr.name)) {
          return info->fn(args);
        }
      }
      return EvalBuiltinFunction(expr.name, args);
    }
    case ExprKind::kAggCall:
      SHARK_CHECK(false);  // aggregates are evaluated by the aggregation operator
      return Value::Null();
    case ExprKind::kBetween: {
      Value v = EvalExpr(*expr.children[0], row, udfs);
      Value lo = EvalExpr(*expr.children[1], row, udfs);
      Value hi = EvalExpr(*expr.children[2], row, udfs);
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(expr.negated ? !in : in);
    }
    case ExprKind::kInList: {
      Value v = EvalExpr(*expr.children[0], row, udfs);
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        Value item = EvalExpr(*expr.children[i], row, udfs);
        if (!item.is_null() && v == item) {
          found = true;
          break;
        }
      }
      return Value::Bool(expr.negated ? !found : found);
    }
    case ExprKind::kIsNull: {
      Value v = EvalExpr(*expr.children[0], row, udfs);
      bool is_null = v.is_null();
      return Value::Bool(expr.negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      Value v = EvalExpr(*expr.children[0], row, udfs);
      Value p = EvalExpr(*expr.children[1], row, udfs);
      if (v.is_null() || p.is_null()) return Value::Null();
      bool m = LikeMatch(v.str(), p.str());
      return Value::Bool(expr.negated ? !m : m);
    }
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < expr.children.size(); i += 2) {
        Value cond = EvalExpr(*expr.children[i], row, udfs);
        if (!cond.is_null() && cond.bool_v()) {
          return EvalExpr(*expr.children[i + 1], row, udfs);
        }
      }
      if (i < expr.children.size()) {  // ELSE branch
        return EvalExpr(*expr.children[i], row, udfs);
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  Value v = EvalExpr(expr, row, udfs);
  return !v.is_null() && v.bool_v();
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    for (const auto& c : expr->children) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out == nullptr ? c : MakeBinary(BinaryOp::kAnd, out, c);
    if (out != nullptr && out->kind == ExprKind::kBinary) {
      out->type = TypeKind::kBool;
    }
  }
  return out;
}

void CollectSlots(const Expr& expr, std::set<int>* slots) {
  if (expr.kind == ExprKind::kSlot) slots->insert(expr.slot);
  for (const auto& c : expr.children) CollectSlots(*c, slots);
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kAggCall) return true;
  for (const auto& c : expr.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

bool ContainsUdf(const Expr& expr, const UdfRegistry& udfs) {
  if (expr.kind == ExprKind::kFuncCall && udfs.Lookup(expr.name) != nullptr) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsUdf(*c, udfs)) return true;
  }
  return false;
}

ExprPtr CloneExpr(const Expr& expr) {
  auto out = std::make_shared<Expr>(expr);
  out->children.clear();
  for (const auto& c : expr.children) out->children.push_back(CloneExpr(*c));
  return out;
}

ExprPtr RemapSlots(const Expr& expr, const std::map<int, int>& mapping) {
  ExprPtr out = CloneExpr(expr);
  std::function<void(Expr*)> visit = [&](Expr* e) {
    if (e->kind == ExprKind::kSlot) {
      auto it = mapping.find(e->slot);
      if (it != mapping.end()) e->slot = it->second;
    }
    for (auto& c : e->children) visit(c.get());
  };
  visit(out.get());
  return out;
}

}  // namespace shark
