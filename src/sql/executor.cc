#include "sql/executor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/vectorized/column_batch.h"
#include "exec/vectorized/vec_exec.h"
#include "index/btree.h"
#include "rdd/pair_rdd.h"
#include "sql/aggregates.h"
#include "sql/expr_compiler.h"
#include "sql/pde.h"
#include "sql/planner/join_reorder.h"

namespace shark {

/// Broadcast hash table for map joins: join key -> build-side rows.
/// Lives at namespace scope (not an unnamed namespace) so that ADL finds the
/// ApproxSizeOf overload from the Broadcast template.
using JoinTable = std::unordered_map<Row, std::vector<Row>, KeyHasher<Row>>;

uint64_t ApproxSizeOf(const JoinTable& table) {
  uint64_t total = 64;
  for (const auto& [k, rows] : table) {
    total += ApproxSizeOf(k) + 16;
    for (const Row& r : rows) total += ApproxSizeOf(r);
  }
  return total;
}

namespace {

/// Extra per-row cost multiplier for predicates containing UDFs (their
/// evaluation is several times an interpreted builtin's cost).
uint64_t UdfExtraRows(const Expr& expr, const UdfRegistry* udfs) {
  if (udfs == nullptr) return 0;
  uint64_t extra = 0;
  if (expr.kind == ExprKind::kFuncCall) {
    if (const UdfRegistry::UdfInfo* info = udfs->Lookup(expr.name)) {
      extra += static_cast<uint64_t>(info->cpu_cost_factor);
    }
  }
  for (const auto& c : expr.children) extra += UdfExtraRows(*c, udfs);
  return extra;
}

Row EvalKeyRow(const std::vector<ExprPtr>& keys, const Row& row,
               const UdfRegistry* udfs) {
  Row out;
  out.fields.reserve(keys.size());
  for (const ExprPtr& k : keys) out.fields.push_back(EvalExpr(*k, row, udfs));
  return out;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out = left;
  out.fields.insert(out.fields.end(), right.fields.begin(), right.fields.end());
  return out;
}

/// Narrow-dependency local join of two co-partitioned row RDDs (§3.4): no
/// shuffle; partition i of the output joins partition i of each side.
class ZippedJoinRdd final : public TypedRdd<Row> {
 public:
  ZippedJoinRdd(RddPtr<Row> left, RddPtr<Row> right,
                std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                const UdfRegistry* udfs)
      : TypedRdd<Row>(left->context(), "copartitionJoin"),
        left_(left),
        right_(right),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        udfs_(udfs) {
    SHARK_CHECK(left->num_partitions() == right->num_partitions());
    deps_.push_back(Dependency{left, nullptr});
    deps_.push_back(Dependency{right, nullptr});
  }

  int num_partitions() const override { return left_->num_partitions(); }

  Block Compute(int p, TaskContext* tctx) const override {
    auto lrows = left_->GetOrCompute(p, tctx);
    auto rrows = right_->GetOrCompute(p, tctx);
    // Build over the smaller side, probe with the larger (§3.1.1).
    const bool left_build = lrows->size() <= rrows->size();
    const std::vector<Row>& build = left_build ? *lrows : *rrows;
    const std::vector<Row>& probe = left_build ? *rrows : *lrows;
    const std::vector<ExprPtr>& build_keys = left_build ? left_keys_ : right_keys_;
    const std::vector<ExprPtr>& probe_keys = left_build ? right_keys_ : left_keys_;
    JoinTable table;
    for (const Row& r : build) {
      table[EvalKeyRow(build_keys, r, udfs_)].push_back(r);
    }
    tctx->work().hash_records += build.size() + probe.size();
    tctx->work().rows_processed += build.size() + probe.size();
    // The build table holds the whole smaller side; past the task's budget
    // the join degrades to grace-hash partitions on local disk.
    tctx->ReserveOrSpillHash(ApproxSizeOfRange(build), build.size());
    Block out;
    for (const Row& r : probe) {
      auto it = table.find(EvalKeyRow(probe_keys, r, udfs_));
      if (it == table.end()) continue;
      for (const Row& b : it->second) {
        out.push_back(left_build ? ConcatRows(b, r) : ConcatRows(r, b));
      }
    }
    tctx->ReleaseAllWorkingSet();
    return out;
  }

 protected:
  std::vector<int> ComputePreferredNodes(int p) const override {
    return left_->PreferredNodes(p);
  }

 private:
  RddPtr<Row> left_;
  RddPtr<Row> right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  const UdfRegistry* udfs_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Map pruning (§3.5)
// ---------------------------------------------------------------------------

namespace {

const Expr* AsSlot(const Expr& e) {
  return e.kind == ExprKind::kSlot ? &e : nullptr;
}

const Expr* AsLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral ? &e : nullptr;
}

/// Checks one conjunct against partition stats; true = may match (cannot
/// prune on this conjunct).
bool ConjunctMayMatch(const std::vector<ColumnStats>& stats, const Expr& c) {
  auto stats_for = [&](int slot) -> const ColumnStats* {
    if (slot < 0 || slot >= static_cast<int>(stats.size())) return nullptr;
    return &stats[static_cast<size_t>(slot)];
  };
  if (c.kind == ExprKind::kBinary) {
    const Expr* l = c.children[0].get();
    const Expr* r = c.children[1].get();
    const Expr* slot = AsSlot(*l);
    const Expr* lit = AsLiteral(*r);
    BinaryOp op = c.binary_op;
    if (slot == nullptr && AsSlot(*r) != nullptr && AsLiteral(*l) != nullptr) {
      // literal OP slot: mirror the comparison.
      slot = AsSlot(*r);
      lit = AsLiteral(*l);
      switch (op) {
        case BinaryOp::kLt:
          op = BinaryOp::kGt;
          break;
        case BinaryOp::kLe:
          op = BinaryOp::kGe;
          break;
        case BinaryOp::kGt:
          op = BinaryOp::kLt;
          break;
        case BinaryOp::kGe:
          op = BinaryOp::kLe;
          break;
        default:
          break;
      }
    }
    if (slot == nullptr || lit == nullptr) return true;
    const ColumnStats* s = stats_for(slot->slot);
    if (s == nullptr) return true;
    const Value& v = lit->literal;
    switch (op) {
      case BinaryOp::kEq:
        return s->MayEqual(v);
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        return s->MayIntersect(nullptr, &v);
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return s->MayIntersect(&v, nullptr);
      default:
        return true;
    }
  }
  if (c.kind == ExprKind::kBetween && !c.negated) {
    const Expr* slot = AsSlot(*c.children[0]);
    const Expr* lo = AsLiteral(*c.children[1]);
    const Expr* hi = AsLiteral(*c.children[2]);
    if (slot == nullptr || lo == nullptr || hi == nullptr) return true;
    const ColumnStats* s = stats_for(slot->slot);
    if (s == nullptr) return true;
    return s->MayIntersect(&lo->literal, &hi->literal);
  }
  if (c.kind == ExprKind::kInList && !c.negated) {
    const Expr* slot = AsSlot(*c.children[0]);
    if (slot == nullptr) return true;
    const ColumnStats* s = stats_for(slot->slot);
    if (s == nullptr) return true;
    for (size_t i = 1; i < c.children.size(); ++i) {
      const Expr* lit = AsLiteral(*c.children[i]);
      if (lit == nullptr) return true;
      if (s->MayEqual(lit->literal)) return true;
    }
    return false;
  }
  return true;
}

}  // namespace

bool PartitionMayMatch(const std::vector<ColumnStats>& stats,
                       const std::vector<ExprPtr>& conjuncts) {
  for (const ExprPtr& c : conjuncts) {
    if (!ConjunctMayMatch(stats, *c)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// QueryMetrics / QueryResult
// ---------------------------------------------------------------------------

void QueryMetrics::AddJob(const JobMetrics& job) {
  jobs += 1;
  stages += job.stages;
  tasks += job.tasks_launched;
  tasks_failed += job.tasks_failed;
  map_tasks_recovered += job.map_tasks_recovered;
  speculative_tasks += job.speculative_tasks;
  work.Add(job.total_work);
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out += "|";
    out += schema.field(i).name;
  }
  out += "\n";
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    out += rows[i].ToString() + "\n";
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size()) + " rows)\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

int Executor::FineBuckets() const {
  if (options_.fine_buckets > 0) return options_.fine_buckets;
  return 2 * ctx_->cluster().total_cores();
}

namespace {

/// Sum of catalog-known scan bytes under a plan node (Hive's heuristic input
/// size estimate).
uint64_t ScanBytesUnder(const LogicalPlan& node, Catalog* catalog) {
  if (node.kind == PlanKind::kScan) {
    auto info = catalog->Get(node.table);
    return info.ok() ? (*info)->approx_bytes : 0;
  }
  uint64_t total = 0;
  for (const auto& c : node.children) total += ScanBytesUnder(*c, catalog);
  return total;
}

}  // namespace

int Executor::StaticReducers(const LogicalPlan& node) const {
  if (options_.static_reducers > 0) return options_.static_reducers;
  if (options_.bytes_per_reducer > 0) {
    double virtual_bytes = static_cast<double>(ScanBytesUnder(node, catalog_)) *
                           ctx_->virtual_scale();
    auto reducers = static_cast<int64_t>(
        (virtual_bytes + static_cast<double>(options_.bytes_per_reducer) - 1) /
        static_cast<double>(options_.bytes_per_reducer));
    if (reducers < 1) reducers = 1;
    return static_cast<int>(reducers);
  }
  return ctx_->cluster().total_cores();
}

Result<ShuffleStats> Executor::EnsureShuffleTracked(
    const std::shared_ptr<ShuffleDependency>& dep) {
  SHARK_ASSIGN_OR_RETURN(ShuffleStats stats,
                         ctx_->scheduler().EnsureShuffle(dep));
  metrics_.AddJob(ctx_->scheduler().last_job());
  return stats;
}

Result<std::vector<Row>> Executor::CollectTracked(const RddPtr<Row>& rdd) {
  auto rows = ctx_->Collect(rdd);
  if (rows.ok()) metrics_.AddJob(ctx_->scheduler().last_job());
  return rows;
}

RddPtr<Row> Executor::ApplyPredicate(RddPtr<Row> rows, const ExprPtr& predicate,
                                     const std::string& label) {
  if (predicate == nullptr) return rows;
  const UdfRegistry* udfs = udfs_;
  uint64_t extra = UdfExtraRows(*predicate, udfs);
  if (options_.compile_expressions) {
    ExprCompiler compiler(udfs);
    auto compiled = compiler.Compile(*predicate);
    if (compiled.ok()) {
      auto program = std::make_shared<const CompiledExpr>(std::move(*compiled));
      return rows->MapPartitions(
          [program, extra](int, const std::vector<Row>& in, TaskContext* tctx) {
            std::vector<Row> out;
            for (const Row& r : in) {
              if (program->EvalBool(r)) out.push_back(r);
            }
            // Compiled evaluators cost ~0.8x the interpreted per-row charge
            // (the measured micro-benchmark ratio for this Value
            // representation; full type-specialized codegen, as Spark SQL's
            // Tungsten later did, would go further).
            tctx->work().rows_processed += in.size() * (4 + 5 * extra) / 5;
            return out;
          },
          label);
    }
  }
  ExprPtr pred = predicate;
  return rows->MapPartitions(
      [pred, udfs, extra](int, const std::vector<Row>& in, TaskContext* tctx) {
        std::vector<Row> out;
        for (const Row& r : in) {
          if (EvalPredicate(*pred, r, udfs)) out.push_back(r);
        }
        tctx->work().rows_processed += in.size() * (1 + extra);
        return out;
      },
      label);
}

Result<RddPtr<Row>> Executor::BuildRdd(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return BuildScan(*plan);
    case PlanKind::kIndexScan:
      return BuildIndexScan(*plan);
    case PlanKind::kFilter:
      return BuildFilter(*plan);
    case PlanKind::kProject:
      return BuildProject(*plan);
    case PlanKind::kAggregate:
      return BuildAggregate(*plan);
    case PlanKind::kJoin:
      return BuildJoin(plan);
    case PlanKind::kSort:
      return BuildSort(*plan);
    case PlanKind::kLimit:
      return BuildLimit(*plan);
    case PlanKind::kUnion: {
      SHARK_ASSIGN_OR_RETURN(RddPtr<Row> left, BuildRdd(plan->children[0]));
      SHARK_ASSIGN_OR_RETURN(RddPtr<Row> right, BuildRdd(plan->children[1]));
      return RddPtr<Row>(std::make_shared<UnionRdd<Row>>(left, right));
    }
  }
  return Status::Internal("unknown plan kind");
}

/// Partition pruning (§3.5) over a cached table: returns the (possibly
/// subset) partition RDD to scan and updates the scan metrics. Shared by the
/// row-at-a-time scan and every vectorized fast path so both prune — and
/// count — identically.
RddPtr<TablePartitionPtr> Executor::PruneCachedScan(TableInfo* info,
                                                    const LogicalPlan& node) {
  int total = info->cached_rdd->num_partitions();
  std::vector<int> selected;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(node.scan_predicate);
  for (int p = 0; p < total; ++p) {
    if (options_.map_pruning && !conjuncts.empty() &&
        p < static_cast<int>(info->partition_stats.size()) &&
        !PartitionMayMatch(info->partition_stats[static_cast<size_t>(p)],
                           conjuncts)) {
      continue;
    }
    selected.push_back(p);
  }
  // Never prune to zero partitions: downstream shuffles require at least
  // one map partition, and an all-pruned scan still has to produce an
  // (empty) result.
  if (selected.empty() && total > 0) selected.push_back(0);
  metrics_.partitions_scanned += static_cast<int>(selected.size());
  metrics_.partitions_pruned += total - static_cast<int>(selected.size());
  RddPtr<TablePartitionPtr> base = info->cached_rdd;
  if (static_cast<int>(selected.size()) != total) {
    base = std::make_shared<PartitionSubsetRdd<TablePartitionPtr>>(
        info->cached_rdd, selected, "prunedScan:" + node.table);
  }
  return base;
}

bool Executor::PrepareVecScan(const LogicalPlan& node, vec::VecScan* out) {
  if (!options_.vectorized || node.kind != PlanKind::kScan) return false;
  auto info_or = catalog_->Get(node.table);
  if (!info_or.ok()) return false;
  TableInfo* info = *info_or;
  if (!info->is_cached() || !ctx_->profile().memory_store) return false;
  std::shared_ptr<const CompiledExpr> predicate;
  uint64_t extra = 0;
  if (node.scan_predicate != nullptr) {
    ExprCompiler compiler(udfs_);
    auto compiled = compiler.Compile(*node.scan_predicate);
    if (!compiled.ok()) return false;
    predicate = std::make_shared<const CompiledExpr>(std::move(*compiled));
    extra = UdfExtraRows(*node.scan_predicate, udfs_);
  }
  out->base = PruneCachedScan(info, node);
  out->schema = std::make_shared<const Schema>(info->schema);
  out->needed = std::make_shared<const std::vector<int>>(node.needed_columns);
  out->table = node.table;
  out->predicate = std::move(predicate);
  out->predicate_extra = extra;
  out->compiled_charges = options_.compile_expressions;
  return true;
}

Result<RddPtr<Row>> Executor::BuildScan(const LogicalPlan& node) {
  // Vectorized fast path: fuse decode + filter when there is a predicate to
  // push down (a bare scan gains nothing over ToRows).
  if (node.scan_predicate != nullptr) {
    vec::VecScan vs;
    if (PrepareVecScan(node, &vs)) return vec::BuildVecScanFilter(vs);
  }
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(node.table));
  bool use_memstore = info->is_cached() && ctx_->profile().memory_store;
  RddPtr<Row> rows;
  if (use_memstore) {
    RddPtr<TablePartitionPtr> base = PruneCachedScan(info, node);
    auto needed = std::make_shared<std::vector<int>>(node.needed_columns);
    rows = base->MapPartitions(
        [needed](int, const std::vector<TablePartitionPtr>& parts,
                 TaskContext* tctx) {
          std::vector<Row> out;
          for (const TablePartitionPtr& part : parts) {
            if (part == nullptr) continue;
            uint64_t bytes = 0;
            for (int c : *needed) bytes += part->ColumnBytes(c);
            tctx->work().mem_read_bytes += bytes;
            tctx->work().rows_processed += part->num_rows();
            std::vector<Row> rows_here = part->ToRows(needed.get());
            for (Row& r : rows_here) out.push_back(std::move(r));
          }
          return out;
        },
        "memScan:" + node.table);
  } else {
    if (info->dfs_file.empty()) {
      return Status::ExecutionError("table has no DFS storage and is not cached: " +
                                    node.table);
    }
    SHARK_ASSIGN_OR_RETURN(rows, ctx_->FromDfs<Row>(info->dfs_file));
  }
  return ApplyPredicate(rows, node.scan_predicate, "scanFilter:" + node.table);
}

Result<RddPtr<Row>> Executor::BuildIndexScan(const LogicalPlan& node) {
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_->Get(node.table));
  const IndexInfo* index = nullptr;
  auto idx_it = info->indexes.find(ToLower(node.index_name));
  if (idx_it != info->indexes.end()) index = &idx_it->second;
  if (!info->is_cached() || !ctx_->profile().memory_store || index == nullptr ||
      index->tree == nullptr || !options_.use_indexes) {
    // The index vanished between planning and execution (DROP INDEX, UNCACHE)
    // or indexes are disabled: the residual predicate is the full original
    // scan predicate, so a plain scan is semantically identical.
    return BuildScan(node);
  }

  // Master-side probe. Postings are sorted by (partition, row) so the gather
  // order — and every charge — is independent of B+-tree internals.
  const Value* lo =
      node.index_lo != nullptr ? &node.index_lo->literal : nullptr;
  const Value* hi =
      node.index_hi != nullptr ? &node.index_hi->literal : nullptr;
  std::vector<IndexPosting> postings = index->tree->Scan(
      lo, node.index_lo_inclusive, hi, node.index_hi_inclusive);
  std::sort(postings.begin(), postings.end(),
            [](const IndexPosting& a, const IndexPosting& b) {
              return a.partition != b.partition ? a.partition < b.partition
                                                : a.row < b.row;
            });

  // Only partitions holding a matching posting get a gather task (the index
  // subsumes map pruning for the sargable range).
  const int total = info->cached_rdd->num_partitions();
  std::vector<int> selected;
  auto rows_by_pos = std::make_shared<std::vector<std::vector<uint32_t>>>();
  for (const IndexPosting& post : postings) {
    if (post.partition < 0 || post.partition >= total) continue;
    if (selected.empty() || selected.back() != post.partition) {
      selected.push_back(post.partition);
      rows_by_pos->emplace_back();
    }
    rows_by_pos->back().push_back(post.row);
  }
  // Never prune to zero partitions (same convention as PruneCachedScan).
  if (selected.empty() && total > 0) {
    selected.push_back(0);
    rows_by_pos->emplace_back();
  }
  metrics_.partitions_scanned += static_cast<int>(selected.size());
  metrics_.partitions_pruned += total - static_cast<int>(selected.size());
  RddPtr<TablePartitionPtr> base = info->cached_rdd;
  if (static_cast<int>(selected.size()) != total) {
    base = std::make_shared<PartitionSubsetRdd<TablePartitionPtr>>(
        info->cached_rdd, selected, "prunedIndexScan:" + node.table);
  }

  // Scan contract: full table arity out, NULL for undecoded columns.
  const size_t arity = info->schema.fields().size();
  auto needed = std::make_shared<std::vector<int>>();
  if (node.needed_columns.empty()) {
    for (size_t c = 0; c < arity; ++c) needed->push_back(static_cast<int>(c));
  } else {
    *needed = node.needed_columns;
  }
  auto needed_mask = std::make_shared<std::vector<uint8_t>>(arity, 0);
  for (int c : *needed) {
    if (c >= 0 && static_cast<size_t>(c) < arity) {
      (*needed_mask)[static_cast<size_t>(c)] = 1;
    }
  }
  // Tree-descent cost, charged once per gather task. Row ids index the
  // concatenation of a block's partitions, mirroring the build job.
  const uint64_t probe_rows = static_cast<uint64_t>(index->tree->height()) + 1;

  RddPtr<Row> rows;
  if (options_.vectorized) {
    // Vectorized gather: decode the needed columns once, gather the selected
    // rows batch-at-a-time. Host-side only — charges match the scalar path
    // cell for cell (MaterializeRow reproduces ToRows' values exactly).
    auto fields =
        std::make_shared<const std::vector<Field>>(info->schema.fields());
    const std::string table = node.table;
    rows = base->MapPartitions(
        [rows_by_pos, needed, needed_mask, fields, table, probe_rows](
            int p, const std::vector<TablePartitionPtr>& parts,
            TaskContext* tctx) {
          static const std::vector<uint32_t> kNone;
          const std::vector<uint32_t>& want =
              static_cast<size_t>(p) < rows_by_pos->size()
                  ? (*rows_by_pos)[static_cast<size_t>(p)]
                  : kNone;
          std::vector<Row> out;
          out.reserve(want.size());
          uint64_t bytes = 0;
          size_t offset = 0, wi = 0;
          for (const TablePartitionPtr& part : parts) {
            if (part == nullptr) continue;
            const size_t n = part->num_rows();
            vec::SelVector sel;
            while (wi < want.size() && want[wi] < offset + n) {
              sel.push_back(static_cast<int32_t>(want[wi] - offset));
              ++wi;
            }
            if (!sel.empty()) {
              vec::ColumnBatch batch;
              Status st =
                  vec::DecodePartition(*part, *fields, *needed, table, &batch);
              if (st.ok()) {
                vec::ColumnBatch picked = vec::GatherBatch(batch, sel);
                for (size_t i = 0; i < picked.num_rows; ++i) {
                  Row r = vec::MaterializeRow(picked, i);
                  for (int c : *needed) {
                    bytes += ApproxSizeOf(r.fields[static_cast<size_t>(c)]);
                  }
                  out.push_back(std::move(r));
                }
              } else {
                // Per-row fallback with identical charges.
                for (int32_t s : sel) {
                  Row r = part->GetRow(static_cast<size_t>(s));
                  for (size_t c = 0; c < r.fields.size(); ++c) {
                    if (c < needed_mask->size() && (*needed_mask)[c] == 0) {
                      r.fields[c] = Value::Null();
                    }
                  }
                  for (int c : *needed) {
                    bytes += ApproxSizeOf(r.fields[static_cast<size_t>(c)]);
                  }
                  out.push_back(std::move(r));
                }
              }
            }
            offset += n;
          }
          tctx->work().rows_processed += probe_rows + 2 * out.size();
          tctx->work().mem_read_bytes += bytes;
          return out;
        },
        "vecIndexGather:" + node.table);
  } else {
    rows = base->MapPartitions(
        [rows_by_pos, needed, needed_mask, probe_rows](
            int p, const std::vector<TablePartitionPtr>& parts,
            TaskContext* tctx) {
          static const std::vector<uint32_t> kNone;
          const std::vector<uint32_t>& want =
              static_cast<size_t>(p) < rows_by_pos->size()
                  ? (*rows_by_pos)[static_cast<size_t>(p)]
                  : kNone;
          std::vector<Row> out;
          out.reserve(want.size());
          uint64_t bytes = 0;
          size_t offset = 0, wi = 0;
          for (const TablePartitionPtr& part : parts) {
            if (part == nullptr) continue;
            const size_t n = part->num_rows();
            while (wi < want.size() && want[wi] < offset + n) {
              Row r = part->GetRow(static_cast<size_t>(want[wi] - offset));
              for (size_t c = 0; c < r.fields.size(); ++c) {
                if (c < needed_mask->size() && (*needed_mask)[c] == 0) {
                  r.fields[c] = Value::Null();
                }
              }
              for (int c : *needed) {
                bytes += ApproxSizeOf(r.fields[static_cast<size_t>(c)]);
              }
              out.push_back(std::move(r));
              ++wi;
            }
            offset += n;
          }
          tctx->work().rows_processed += probe_rows + 2 * out.size();
          tctx->work().mem_read_bytes += bytes;
          return out;
        },
        "indexGather:" + node.table);
  }
  // Residual re-check: the tree range over-approximates, the full original
  // predicate makes the result exact (and identical to a plain scan).
  return ApplyPredicate(rows, node.scan_predicate, "indexFilter:" + node.table);
}

Result<RddPtr<Row>> Executor::BuildFilter(const LogicalPlan& node) {
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> child, BuildRdd(node.children[0]));
  return ApplyPredicate(child, node.predicate, "filter");
}

Result<RddPtr<Row>> Executor::BuildProject(const LogicalPlan& node) {
  // Vectorized fast path: fuse decode + filter + project over a cached scan.
  if (options_.vectorized && node.children[0]->kind == PlanKind::kScan) {
    ExprCompiler compiler(udfs_);
    auto programs = std::make_shared<std::vector<CompiledExpr>>();
    bool all_ok = true;
    for (const auto& e : node.project_exprs) {
      auto compiled = compiler.Compile(*e);
      if (!compiled.ok()) {
        all_ok = false;
        break;
      }
      programs->push_back(std::move(*compiled));
    }
    if (all_ok) {
      vec::VecScan vs;
      if (PrepareVecScan(*node.children[0], &vs)) {
        uint64_t project_extra = 0;
        for (const auto& e : node.project_exprs) {
          project_extra += UdfExtraRows(*e, udfs_);
        }
        return vec::BuildVecScanProject(vs, programs, project_extra);
      }
    }
  }
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> child, BuildRdd(node.children[0]));
  const UdfRegistry* udfs = udfs_;
  uint64_t extra = 0;
  for (const auto& e : node.project_exprs) extra += UdfExtraRows(*e, udfs);
  if (options_.compile_expressions) {
    ExprCompiler compiler(udfs);
    auto programs = std::make_shared<std::vector<CompiledExpr>>();
    bool all_ok = true;
    for (const auto& e : node.project_exprs) {
      auto compiled = compiler.Compile(*e);
      if (!compiled.ok()) {
        all_ok = false;
        break;
      }
      programs->push_back(std::move(*compiled));
    }
    if (all_ok) {
      return RddPtr<Row>(child->MapPartitions(
          [programs, extra](int, const std::vector<Row>& in, TaskContext* tctx) {
            std::vector<Row> out;
            out.reserve(in.size());
            for (const Row& r : in) {
              Row projected;
              projected.fields.reserve(programs->size());
              for (const CompiledExpr& p : *programs) {
                projected.fields.push_back(p.Eval(r));
              }
              out.push_back(std::move(projected));
            }
            tctx->work().rows_processed += in.size() * (4 + 5 * extra) / 5;
            return out;
          },
          "projectCompiled"));
    }
  }
  auto exprs = std::make_shared<std::vector<ExprPtr>>(node.project_exprs);
  return RddPtr<Row>(child->MapPartitions(
      [exprs, udfs, extra](int, const std::vector<Row>& in, TaskContext* tctx) {
        std::vector<Row> out;
        out.reserve(in.size());
        for (const Row& r : in) {
          Row projected;
          projected.fields.reserve(exprs->size());
          for (const ExprPtr& e : *exprs) {
            projected.fields.push_back(EvalExpr(*e, r, udfs));
          }
          out.push_back(std::move(projected));
        }
        tctx->work().rows_processed += in.size() * (1 + extra);
        return out;
      },
      "project"));
}

Result<RddPtr<Row>> Executor::TryVecAggregate(const LogicalPlan& node) {
  if (!options_.vectorized || node.children[0]->kind != PlanKind::kScan) {
    return RddPtr<Row>(nullptr);
  }
  const LogicalPlan& scan = *node.children[0];
  ExprCompiler compiler(udfs_);
  auto group_programs = std::make_shared<std::vector<CompiledExpr>>();
  for (const auto& e : node.group_exprs) {
    auto compiled = compiler.Compile(*e);
    if (!compiled.ok()) return RddPtr<Row>(nullptr);
    group_programs->push_back(std::move(*compiled));
  }
  auto agg_args = std::make_shared<std::vector<std::vector<CompiledExpr>>>();
  for (const auto& call : node.agg_calls) {
    std::vector<CompiledExpr> programs;
    for (const auto& a : call.args) {
      auto compiled = compiler.Compile(*a);
      if (!compiled.ok()) return RddPtr<Row>(nullptr);
      programs.push_back(std::move(*compiled));
    }
    agg_args->push_back(std::move(programs));
  }
  vec::VecScan vs;
  if (!PrepareVecScan(scan, &vs)) return RddPtr<Row>(nullptr);
  auto calls = std::make_shared<const std::vector<AggCall>>(node.agg_calls);

  const bool pde = options_.pde && ctx_->profile().pde_enabled;
  int buckets = pde ? FineBuckets() : StaticReducers(node);
  auto dep = vec::MakeVecAggDep(vs, buckets, group_programs, agg_args, calls);

  BucketAssignment assignment;
  if (pde) {
    SHARK_ASSIGN_OR_RETURN(ShuffleStats stats, EnsureShuffleTracked(dep));
    uint64_t virtual_bytes = static_cast<uint64_t>(
        static_cast<double>(stats.total_bytes) * ctx_->virtual_scale());
    int reducers = ChooseNumReducers(virtual_bytes,
                                     options_.reducer_target_bytes, buckets);
    metrics_.chosen_reducers = reducers;
    assignment = CoalesceBuckets(stats.bucket_bytes, reducers);
  } else {
    metrics_.chosen_reducers = buckets;
    assignment = IdentityAssignment(buckets);
  }

  auto reduced = std::make_shared<ShuffledReduceRdd<Row, AggState>>(
      ctx_, dep,
      [calls](AggState& a, AggState&& b) { MergeAggStates(*calls, b, &a); },
      std::move(assignment), "aggReduce");

  return RddPtr<Row>(reduced->Map(
      [calls](const std::pair<Row, AggState>& kv) {
        return FinalizeAggRow(*calls, kv.first, kv.second);
      },
      "aggFinalize"));
}

Result<RddPtr<Row>> Executor::BuildAggregate(const LogicalPlan& node) {
  {
    SHARK_ASSIGN_OR_RETURN(RddPtr<Row> vec_agg, TryVecAggregate(node));
    if (vec_agg != nullptr) return vec_agg;
  }
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> child, BuildRdd(node.children[0]));
  auto groups = std::make_shared<std::vector<ExprPtr>>(node.group_exprs);
  auto calls = std::make_shared<std::vector<AggCall>>(node.agg_calls);
  const UdfRegistry* udfs = udfs_;

  auto keyed = child->Map(
      [groups, udfs](const Row& r) {
        return std::make_pair(EvalKeyRow(*groups, r, udfs), r);
      },
      "aggKey");

  const bool pde = options_.pde && ctx_->profile().pde_enabled;
  int buckets = pde ? FineBuckets() : StaticReducers(node);

  auto dep = std::make_shared<CombiningShuffleDep<Row, Row, AggState>>(
      keyed, buckets,
      [calls, udfs](const Row& r) {
        AggState s = InitAggState(*calls);
        AccumulateRow(*calls, r, udfs, &s);
        return s;
      },
      [calls, udfs](AggState& s, const Row& r) {
        AccumulateRow(*calls, r, udfs, &s);
      });

  BucketAssignment assignment;
  if (pde) {
    SHARK_ASSIGN_OR_RETURN(ShuffleStats stats, EnsureShuffleTracked(dep));
    uint64_t virtual_bytes = static_cast<uint64_t>(
        static_cast<double>(stats.total_bytes) * ctx_->virtual_scale());
    int reducers = ChooseNumReducers(virtual_bytes,
                                     options_.reducer_target_bytes, buckets);
    metrics_.chosen_reducers = reducers;
    assignment = CoalesceBuckets(stats.bucket_bytes, reducers);
  } else {
    metrics_.chosen_reducers = buckets;
    assignment = IdentityAssignment(buckets);
  }

  auto reduced = std::make_shared<ShuffledReduceRdd<Row, AggState>>(
      ctx_, dep,
      [calls](AggState& a, AggState&& b) { MergeAggStates(*calls, b, &a); },
      std::move(assignment), "aggReduce");

  return RddPtr<Row>(reduced->Map(
      [calls](const std::pair<Row, AggState>& kv) {
        return FinalizeAggRow(*calls, kv.first, kv.second);
      },
      "aggFinalize"));
}

Result<RddPtr<Row>> Executor::TryCoPartitionedJoin(const LogicalPlan& node) {
  if (!options_.use_copartition || !ctx_->profile().memory_store ||
      node.join_type != JoinType::kInner) {
    return RddPtr<Row>(nullptr);
  }
  const LogicalPlan& l = *node.children[0];
  const LogicalPlan& r = *node.children[1];
  if (l.kind != PlanKind::kScan || r.kind != PlanKind::kScan) {
    return RddPtr<Row>(nullptr);
  }
  auto li = catalog_->Get(l.table);
  auto ri = catalog_->Get(r.table);
  if (!li.ok() || !ri.ok()) return RddPtr<Row>(nullptr);
  TableInfo* lt = *li;
  TableInfo* rt = *ri;
  if (!lt->is_cached() || !rt->is_cached()) return RddPtr<Row>(nullptr);
  bool partners = EqualsIgnoreCase(lt->copartitioned_with, rt->name) ||
                  EqualsIgnoreCase(rt->copartitioned_with, lt->name);
  if (!partners) return RddPtr<Row>(nullptr);
  if (lt->num_partitions != rt->num_partitions) return RddPtr<Row>(nullptr);
  // The join keys must be exactly the distribute columns.
  if (node.left_keys.size() != 1 || node.right_keys.size() != 1) {
    return RddPtr<Row>(nullptr);
  }
  if (node.left_keys[0]->kind != ExprKind::kSlot ||
      node.left_keys[0]->slot != lt->distribute_key ||
      node.right_keys[0]->kind != ExprKind::kSlot ||
      node.right_keys[0]->slot != rt->distribute_key) {
    return RddPtr<Row>(nullptr);
  }

  // Build both scans without map pruning (partition alignment must hold).
  ExecOptions saved = options_;
  options_.map_pruning = false;
  auto left_rows = BuildScan(l);
  auto right_rows = BuildScan(r);
  options_ = saved;
  if (!left_rows.ok()) return left_rows.status();
  if (!right_rows.ok()) return right_rows.status();

  metrics_.join_strategy = "copartition join";
  auto joined = std::make_shared<ZippedJoinRdd>(
      *left_rows, *right_rows, node.left_keys, node.right_keys, udfs_);
  return ApplyPredicate(RddPtr<Row>(joined), node.join_residual,
                        "joinResidual");
}

namespace {

/// The same cost environment the planner priced the plan under, rebuilt from
/// the executor's context so runtime re-planning uses identical estimates.
PlanCostEnv MakeCostEnv(ClusterContext* ctx, const Catalog* catalog,
                        const ExecOptions& options) {
  PlanCostEnv env;
  env.catalog = catalog;
  env.hardware = ctx->cost_model().hardware();
  env.profile = ctx->profile();
  env.virtual_scale = ctx->virtual_scale();
  env.total_cores = ctx->cluster().total_cores();
  env.broadcast_threshold_bytes = options.broadcast_threshold_bytes;
  return env;
}

}  // namespace

double Executor::BeliefBytes(const LogicalPlan& child) const {
  // Scans keep the catalog's measured size (the Fig 8 static belief);
  // other subtrees use the planner's cardinality estimate under cbo.
  // Post-filter selectivity of UDFs stays unknown — exactly the case PDE
  // addresses (§3.1.1).
  if (child.kind == PlanKind::kScan) {
    auto info = catalog_->Get(child.table);
    if (info.ok()) {
      return static_cast<double>((*info)->approx_bytes) * ctx_->virtual_scale();
    }
  }
  if (options_.cbo && child.est_rows >= 0) {
    PlanCostEnv env = MakeCostEnv(ctx_, catalog_, options_);
    return child.est_rows * EstimateRowBytes(child, env) *
           ctx_->virtual_scale();
  }
  return 1e30;  // unknown: assume large
}

Result<RddPtr<Row>> Executor::BuildJoin(const PlanPtr& plan) {
  const LogicalPlan& node = *plan;
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> copart, TryCoPartitionedJoin(node));
  if (copart != nullptr) return copart;

  // Whole-spine adaptive execution with mid-query re-optimization (§4):
  // eligible inner spines of >= 3 relations are executed step by step in the
  // cost-based order, re-enumerating the tail when observed cardinalities
  // drift from the estimates.
  if (options_.cbo && !options_.force_left_deep &&
      options_.replan_factor > 0 && options_.pde &&
      ctx_->profile().pde_enabled &&
      options_.join_opt != JoinOptimization::kStatic &&
      node.join_type == JoinType::kInner) {
    bool applied = false;
    SHARK_ASSIGN_OR_RETURN(RddPtr<Row> spine, BuildJoinSpine(plan, &applied));
    if (applied) return spine;
  }

  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> left, BuildRdd(node.children[0]));
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> right, BuildRdd(node.children[1]));
  return BuildJoinPair(
      left, right, node.left_keys, node.right_keys, node.join_type,
      node.children[0]->num_output_columns(),
      node.children[1]->num_output_columns(), node.join_residual,
      BeliefBytes(*node.children[0]), BeliefBytes(*node.children[1]),
      StaticReducers(node), nullptr);
}

Result<RddPtr<Row>> Executor::BuildJoinPair(
    RddPtr<Row> left, RddPtr<Row> right, std::vector<ExprPtr> left_keys,
    std::vector<ExprPtr> right_keys, JoinType join_type, int left_width,
    int right_width, const ExprPtr& residual, double left_belief,
    double right_belief, int static_reducers, JoinSideObservation* obs) {
  const UdfRegistry* udfs = udfs_;
  auto lkeys = std::make_shared<std::vector<ExprPtr>>(std::move(left_keys));
  auto rkeys = std::make_shared<std::vector<ExprPtr>>(std::move(right_keys));

  auto observe = [obs](bool is_left, uint64_t records, uint64_t bytes) {
    if (obs == nullptr) return;
    if (is_left) {
      obs->left_observed = true;
      obs->left_records = records;
      obs->left_bytes = bytes;
    } else {
      obs->right_observed = true;
      obs->right_records = records;
      obs->right_bytes = bytes;
    }
  };

  auto key_left = [lkeys, udfs](const Row& r) {
    return std::make_pair(EvalKeyRow(*lkeys, r, udfs), r);
  };
  auto key_right = [rkeys, udfs](const Row& r) {
    return std::make_pair(EvalKeyRow(*rkeys, r, udfs), r);
  };

  const int fine = FineBuckets();
  auto build_map_join = [&](RddPtr<Row> build_rows,
                            std::shared_ptr<PlainShuffleDep<std::pair<Row, Row>>>
                                build_dep,
                            RddPtr<Row> probe, bool build_is_left)
      -> Result<RddPtr<Row>> {
    // Gather the (small) build side. Reuse its materialized map outputs when
    // a pre-shuffle already ran; otherwise collect it directly.
    std::vector<Row> build_side;
    if (build_dep != nullptr) {
      std::vector<int> all_buckets;
      for (int b = 0; b < build_dep->num_buckets(); ++b) all_buckets.push_back(b);
      using RowPair = std::pair<Row, Row>;
      auto gathered = std::make_shared<RepartitionedRdd<RowPair>>(
          ctx_, build_dep, BucketAssignment{all_buckets}, "gatherSmallSide");
      SHARK_ASSIGN_OR_RETURN(std::vector<RowPair> pairs,
                             ctx_->Collect(gathered));
      metrics_.AddJob(ctx_->scheduler().last_job());
      for (auto& [k, v] : pairs) build_side.push_back(std::move(v));
    } else {
      SHARK_ASSIGN_OR_RETURN(build_side, CollectTracked(build_rows));
    }
    observe(build_is_left, build_side.size(), ApproxSizeOfRange(build_side));
    JoinTable table;
    const std::vector<ExprPtr>& build_keys = build_is_left ? *lkeys : *rkeys;
    for (Row& r : build_side) {
      table[EvalKeyRow(build_keys, r, udfs)].push_back(std::move(r));
    }
    int broadcast_id = ctx_->Broadcast(std::move(table));
    auto probe_keys = build_is_left ? rkeys : lkeys;
    return RddPtr<Row>(probe->MapPartitions(
        [broadcast_id, probe_keys, udfs, build_is_left](
            int, const std::vector<Row>& in, TaskContext* tctx) {
          auto bc = GetBroadcast<JoinTable>(tctx, broadcast_id);
          std::vector<Row> out;
          for (const Row& r : in) {
            auto it = bc->find(EvalKeyRow(*probe_keys, r, udfs));
            if (it == bc->end()) continue;
            for (const Row& b : it->second) {
              out.push_back(build_is_left ? ConcatRows(b, r) : ConcatRows(r, b));
            }
          }
          tctx->work().rows_processed += in.size();
          tctx->work().hash_records += in.size();
          return out;
        },
        "mapJoinProbe"));
  };

  auto shuffle_join = [&, join_type, left_width, right_width](
                          std::shared_ptr<PlainShuffleDep<std::pair<Row, Row>>>
                              ldep,
                          std::shared_ptr<PlainShuffleDep<std::pair<Row, Row>>>
                              rdep,
                          const BucketAssignment& assignment)
      -> Result<RddPtr<Row>> {
    auto cogrouped = std::make_shared<CoGroupedRdd<Row, Row, Row>>(
        ctx_, ldep, rdep, assignment, "shuffleJoin");
    using CoElem = CoGroupedRdd<Row, Row, Row>::Element;
    return RddPtr<Row>(cogrouped->FlatMap(
        [join_type, left_width, right_width](const CoElem& e) {
          std::vector<Row> out;
          const auto& lv = e.second.first;
          const auto& rv = e.second.second;
          for (const Row& l : lv) {
            for (const Row& r : rv) {
              out.push_back(ConcatRows(l, r));
            }
          }
          // Null-extend the preserved side of an outer join (§SQL).
          if (join_type == JoinType::kLeftOuter && rv.empty()) {
            Row nulls;
            nulls.fields.assign(static_cast<size_t>(right_width), Value::Null());
            for (const Row& l : lv) out.push_back(ConcatRows(l, nulls));
          }
          if (join_type == JoinType::kRightOuter && lv.empty()) {
            Row nulls;
            nulls.fields.assign(static_cast<size_t>(left_width), Value::Null());
            for (const Row& r : rv) out.push_back(ConcatRows(nulls, r));
          }
          return out;
        },
        "joinOutput"));
  };

  auto make_dep = [&](RddPtr<Row> rows, bool is_left) {
    auto keyed = is_left ? rows->Map(key_left, "joinKeyL")
                         : rows->Map(key_right, "joinKeyR");
    return MakeHashPartitionDep<Row, Row>(keyed, fine);
  };

  JoinOptimization mode = options_.join_opt;
  if (!ctx_->profile().pde_enabled && mode != JoinOptimization::kStatic) {
    mode = JoinOptimization::kStatic;
  }
  // A broadcast (map) join cannot emit the build side's unmatched rows, so
  // outer joins always take the shuffle-join path.
  if (join_type != JoinType::kInner) {
    metrics_.join_strategy = "shuffle join (outer)";
    int reducers = static_reducers;
    BucketAssignment assignment;
    std::shared_ptr<PlainShuffleDep<std::pair<Row, Row>>> ldep;
    std::shared_ptr<PlainShuffleDep<std::pair<Row, Row>>> rdep;
    if (mode != JoinOptimization::kStatic) {
      ldep = make_dep(left, true);
      rdep = make_dep(right, false);
      SHARK_ASSIGN_OR_RETURN(ShuffleStats lstats, EnsureShuffleTracked(ldep));
      SHARK_ASSIGN_OR_RETURN(ShuffleStats rstats, EnsureShuffleTracked(rdep));
      observe(true, lstats.total_records, lstats.total_bytes);
      observe(false, rstats.total_records, rstats.total_bytes);
      std::vector<uint64_t> combined(lstats.bucket_bytes);
      for (size_t i = 0; i < combined.size(); ++i) {
        combined[i] += rstats.bucket_bytes[i];
      }
      uint64_t total_virtual = static_cast<uint64_t>(
          static_cast<double>(lstats.total_bytes + rstats.total_bytes) *
          ctx_->virtual_scale());
      reducers = ChooseNumReducers(total_virtual,
                                   options_.reducer_target_bytes, fine);
      assignment = CoalesceBuckets(combined, reducers);
    } else {
      auto keyed_l = left->Map(key_left, "joinKeyL");
      auto keyed_r = right->Map(key_right, "joinKeyR");
      ldep = MakeHashPartitionDep<Row, Row>(keyed_l, reducers);
      rdep = MakeHashPartitionDep<Row, Row>(keyed_r, reducers);
      assignment = IdentityAssignment(reducers);
    }
    metrics_.chosen_reducers = reducers;
    SHARK_ASSIGN_OR_RETURN(RddPtr<Row> joined_outer,
                           shuffle_join(ldep, rdep, assignment));
    return ApplyPredicate(joined_outer, residual, "joinResidual");
  }

  RddPtr<Row> joined;
  switch (mode) {
    case JoinOptimization::kStatic: {
      // Compile-time choice on catalog beliefs only.
      double small_belief = std::min(left_belief, right_belief);
      if (small_belief <= static_cast<double>(options_.broadcast_threshold_bytes)) {
        bool build_is_left = left_belief <= right_belief;
        metrics_.join_strategy = "map join (static)";
        SHARK_ASSIGN_OR_RETURN(
            joined, build_map_join(build_is_left ? left : right, nullptr,
                                   build_is_left ? right : left, build_is_left));
      } else {
        metrics_.join_strategy = "shuffle join (static)";
        int reducers = static_reducers;
        auto keyed_l = left->Map(key_left, "joinKeyL");
        auto keyed_r = right->Map(key_right, "joinKeyR");
        auto ldep = MakeHashPartitionDep<Row, Row>(keyed_l, reducers);
        auto rdep = MakeHashPartitionDep<Row, Row>(keyed_r, reducers);
        SHARK_ASSIGN_OR_RETURN(joined,
                               shuffle_join(ldep, rdep,
                                            IdentityAssignment(reducers)));
      }
      break;
    }
    case JoinOptimization::kAdaptive: {
      // Pre-shuffle both sides, then decide from observed sizes.
      auto ldep = make_dep(left, true);
      auto rdep = make_dep(right, false);
      SHARK_ASSIGN_OR_RETURN(ShuffleStats lstats, EnsureShuffleTracked(ldep));
      SHARK_ASSIGN_OR_RETURN(ShuffleStats rstats, EnsureShuffleTracked(rdep));
      observe(true, lstats.total_records, lstats.total_bytes);
      observe(false, rstats.total_records, rstats.total_bytes);
      uint64_t lv = static_cast<uint64_t>(
          static_cast<double>(lstats.total_bytes) * ctx_->virtual_scale());
      uint64_t rv = static_cast<uint64_t>(
          static_cast<double>(rstats.total_bytes) * ctx_->virtual_scale());
      if (std::min(lv, rv) <= options_.broadcast_threshold_bytes) {
        bool build_is_left = lv <= rv;
        metrics_.join_strategy = "map join (adaptive)";
        SHARK_ASSIGN_OR_RETURN(
            joined,
            build_map_join(build_is_left ? left : right,
                           build_is_left ? ldep : rdep,
                           build_is_left ? right : left, build_is_left));
      } else {
        metrics_.join_strategy = "shuffle join (adaptive)";
        std::vector<uint64_t> combined(lstats.bucket_bytes);
        for (size_t i = 0; i < combined.size(); ++i) {
          combined[i] += rstats.bucket_bytes[i];
        }
        uint64_t total_virtual = lv + rv;
        int reducers = ChooseNumReducers(total_virtual,
                                         options_.reducer_target_bytes, fine);
        metrics_.chosen_reducers = reducers;
        SHARK_ASSIGN_OR_RETURN(
            joined, shuffle_join(ldep, rdep, CoalesceBuckets(combined, reducers)));
      }
      break;
    }
    case JoinOptimization::kStaticAdaptive: {
      // Use the static belief to pre-shuffle only the likely-small side
      // first; avoid ever launching pre-shuffle tasks on the large table if
      // the small side broadcasts (§3.1.1's scheduling refinement).
      bool small_is_left = left_belief <= right_belief;
      auto sdep = make_dep(small_is_left ? left : right, small_is_left);
      SHARK_ASSIGN_OR_RETURN(ShuffleStats sstats, EnsureShuffleTracked(sdep));
      observe(small_is_left, sstats.total_records, sstats.total_bytes);
      uint64_t sv = static_cast<uint64_t>(
          static_cast<double>(sstats.total_bytes) * ctx_->virtual_scale());
      if (sv <= options_.broadcast_threshold_bytes) {
        metrics_.join_strategy = "map join (static+adaptive)";
        SHARK_ASSIGN_OR_RETURN(
            joined, build_map_join(small_is_left ? left : right, sdep,
                                   small_is_left ? right : left, small_is_left));
      } else {
        auto odep = make_dep(small_is_left ? right : left, !small_is_left);
        SHARK_ASSIGN_OR_RETURN(ShuffleStats ostats, EnsureShuffleTracked(odep));
        observe(!small_is_left, ostats.total_records, ostats.total_bytes);
        metrics_.join_strategy = "shuffle join (static+adaptive)";
        std::vector<uint64_t> combined(sstats.bucket_bytes);
        for (size_t i = 0; i < combined.size(); ++i) {
          combined[i] += ostats.bucket_bytes[i];
        }
        uint64_t ov = static_cast<uint64_t>(
            static_cast<double>(ostats.total_bytes) * ctx_->virtual_scale());
        int reducers =
            ChooseNumReducers(sv + ov, options_.reducer_target_bytes, fine);
        metrics_.chosen_reducers = reducers;
        auto ldep = small_is_left ? sdep : odep;
        auto rdep = small_is_left ? odep : sdep;
        SHARK_ASSIGN_OR_RETURN(
            joined, shuffle_join(ldep, rdep, CoalesceBuckets(combined, reducers)));
      }
      break;
    }
  }
  return ApplyPredicate(joined, residual, "joinResidual");
}

Result<RddPtr<Row>> Executor::BuildJoinSpine(const PlanPtr& plan,
                                             bool* applied) {
  *applied = false;
  CardinalityEstimator est(catalog_);
  JoinGraph g;
  if (!ExtractJoinGraph(plan, est, &g) || g.leaves.size() < 3) return RddPtr<Row>();
  const int n = static_cast<int>(g.leaves.size());
  PlanCostEnv env = MakeCostEnv(ctx_, catalog_, options_);

  JoinOrderResult r = n <= options_.dp_max_relations
                          ? ChooseJoinOrderDp(g, env)
                          : ChooseJoinOrderGreedy(g, env);
  if (r.cost < 0 || static_cast<int>(r.order.size()) != n) return RddPtr<Row>();
  std::vector<int> order = r.order;
  *applied = true;

  int total_width = 0;
  for (const JoinGraphLeaf& l : g.leaves) total_width += l.width;
  std::vector<Field> global_fields(static_cast<size_t>(total_width));
  for (const JoinGraphLeaf& l : g.leaves) {
    for (int w = 0; w < l.width; ++w) {
      global_fields[static_cast<size_t>(l.slot_begin + w)] =
          l.plan->output[static_cast<size_t>(w)];
    }
  }

  const JoinGraphLeaf& first = g.leaves[static_cast<size_t>(order[0])];
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> cur, BuildRdd(first.plan));
  std::vector<int> local_of_global(static_cast<size_t>(total_width), -1);
  for (int w = 0; w < first.width; ++w) {
    local_of_global[static_cast<size_t>(first.slot_begin + w)] = w;
  }
  uint32_t mask = 1u << order[0];
  int cur_width = first.width;
  std::vector<bool> pred_applied(g.preds.size(), false);

  // Conjunction of not-yet-applied predicates covered by `new_mask`, rebound
  // to the composite's local layout; accumulates their selectivity product.
  auto pending_residual = [&](uint32_t new_mask, double* sel) -> ExprPtr {
    std::vector<ExprPtr> residuals;
    for (size_t p = 0; p < g.preds.size(); ++p) {
      if (pred_applied[p]) continue;
      if ((g.preds[p].leaf_mask & new_mask) != g.preds[p].leaf_mask) continue;
      pred_applied[p] = true;
      if (sel != nullptr) *sel *= g.preds[p].selectivity;
      std::map<int, int> remap;
      std::set<int> slots;
      CollectSlots(*g.preds[p].expr, &slots);
      for (int s : slots) {
        remap[s] = local_of_global[static_cast<size_t>(s)];
      }
      residuals.push_back(RemapSlots(*g.preds[p].expr, remap));
    }
    return residuals.empty() ? nullptr : CombineConjuncts(residuals);
  };
  if (ExprPtr first_res = pending_residual(mask, nullptr)) {
    cur = ApplyPredicate(cur, first_res, "joinResidual");
  }

  // Running composite estimate; observations overwrite it so downstream
  // step estimates inherit the correction.
  double cur_rows = g.SubsetRows(mask);
  double cur_row_width = first.row_width;

  // Re-enumerate the order of `remaining_ids` behind a pinned composite
  // pseudo-leaf (rows/width as given, covering `comp_mask`). Returns the
  // chosen order mapped back to original leaf ids, or empty when the
  // enumerator found nothing valid.
  auto replan_remaining =
      [&](double comp_rows, double comp_row_width, uint32_t comp_mask,
          const std::vector<int>& remaining_ids,
          const std::vector<bool>& applied) -> std::vector<int> {
    JoinGraph g2;
    JoinGraphLeaf comp;
    comp.rows = comp_rows;
    comp.row_width = comp_row_width;
    g2.leaves.push_back(comp);
    std::vector<int> new_index(static_cast<size_t>(n), -1);
    for (size_t j = 0; j < remaining_ids.size(); ++j) {
      new_index[static_cast<size_t>(remaining_ids[j])] =
          static_cast<int>(j) + 1;
      g2.leaves.push_back(g.leaves[static_cast<size_t>(remaining_ids[j])]);
    }
    for (const JoinGraphEdge& e : g.edges) {
      const bool a_in = (comp_mask >> e.a) & 1u;
      const bool b_in = (comp_mask >> e.b) & 1u;
      if (a_in && b_in) continue;
      JoinGraphEdge e2 = e;
      e2.a = a_in ? 0 : new_index[static_cast<size_t>(e.a)];
      e2.b = b_in ? 0 : new_index[static_cast<size_t>(e.b)];
      if (e2.a < 0 || e2.b < 0) continue;
      g2.edges.push_back(e2);
    }
    for (size_t p = 0; p < g.preds.size(); ++p) {
      if (applied[p]) continue;
      JoinGraphPred p2 = g.preds[p];
      uint32_t m2 = 0;
      bool mappable = true;
      for (int b = 0; b < n; ++b) {
        if (!((p2.leaf_mask >> b) & 1u)) continue;
        if ((comp_mask >> b) & 1u) {
          m2 |= 1u;
        } else if (new_index[static_cast<size_t>(b)] >= 0) {
          m2 |= 1u << new_index[static_cast<size_t>(b)];
        } else {
          mappable = false;
        }
      }
      if (!mappable) continue;
      p2.leaf_mask = m2;
      g2.preds.push_back(p2);
    }
    const int n2 = static_cast<int>(g2.leaves.size());
    JoinOrderResult r2 =
        n2 <= options_.dp_max_relations
            ? ChooseJoinOrderDp(g2, env, /*required_first=*/0)
            : ChooseJoinOrderGreedy(g2, env, /*required_first=*/0);
    if (r2.cost < 0 || static_cast<int>(r2.order.size()) != n2 ||
        r2.order[0] != 0) {
      return {};
    }
    std::vector<int> out;
    out.reserve(remaining_ids.size());
    for (int j = 1; j < n2; ++j) {
      out.push_back(
          remaining_ids[static_cast<size_t>(r2.order[static_cast<size_t>(j)] - 1)]);
    }
    return out;
  };

  // Each leaf's cardinality can be corrected (and its step aborted) at most
  // once; after the correction the re-enumeration sees the observed rows, so
  // the bound only guards against estimator pathologies.
  int aborts_left = n;
  for (int i = 1; i < n;) {
    const int li = order[i];
    const JoinGraphLeaf& leaf = g.leaves[static_cast<size_t>(li)];

    std::vector<ExprPtr> lkeys;
    std::vector<ExprPtr> rkeys;
    double step_sel = 1.0;
    for (const JoinGraphEdge& e : g.edges) {
      int comp_slot, leaf_slot;
      if (e.a == li && ((mask >> e.b) & 1u)) {
        leaf_slot = e.a_slot;
        comp_slot = e.b_slot;
      } else if (e.b == li && ((mask >> e.a) & 1u)) {
        leaf_slot = e.b_slot;
        comp_slot = e.a_slot;
      } else {
        continue;
      }
      step_sel *= e.selectivity;
      lkeys.push_back(
          MakeSlot(local_of_global[static_cast<size_t>(comp_slot)],
                   global_fields[static_cast<size_t>(comp_slot)].type));
      rkeys.push_back(
          MakeSlot(leaf_slot - leaf.slot_begin,
                   global_fields[static_cast<size_t>(leaf_slot)].type));
    }
    if (lkeys.empty()) {
      // DP/greedy orders are connected by construction.
      return Status::Internal("join spine step has no equi-key");
    }

    SHARK_ASSIGN_OR_RETURN(RddPtr<Row> leaf_rdd, BuildRdd(leaf.plan));

    const uint32_t new_mask = mask | (1u << li);
    // Snapshot the state this step mutates: an aborted step must leave no
    // trace (its join pair is still lazy — only the pre-shuffle map stages
    // have run, and those are sunk either way).
    const std::vector<int> log_saved = local_of_global;
    const std::vector<bool> preds_saved = pred_applied;
    for (int w = 0; w < leaf.width; ++w) {
      local_of_global[static_cast<size_t>(leaf.slot_begin + w)] =
          cur_width + w;
    }
    ExprPtr residual = pending_residual(new_mask, &step_sel);

    double comp_belief = cur_rows * cur_row_width * ctx_->virtual_scale();
    JoinSideObservation obsv;
    RddPtr<Row> prev = cur;
    SHARK_ASSIGN_OR_RETURN(
        cur, BuildJoinPair(cur, leaf_rdd, std::move(lkeys), std::move(rkeys),
                           JoinType::kInner, cur_width, leaf.width, residual,
                           comp_belief, BeliefBytes(*leaf.plan),
                           StaticReducers(*plan), &obsv));

    // Fold observed input sizes back into the estimates (§4's statistics
    // feedback) and measure how far off the beliefs were.
    double deviation = 1.0;
    double comp_in = std::max(cur_rows, 1.0);
    if (obsv.left_observed) {
      double actual = std::max<double>(static_cast<double>(obsv.left_records),
                                       1.0);
      deviation = std::max(deviation,
                           std::max(actual / comp_in, comp_in / actual));
      comp_in = actual;
    }
    double leaf_in = std::max(leaf.rows, 1.0);
    if (obsv.right_observed) {
      double actual = std::max<double>(static_cast<double>(obsv.right_records),
                                       1.0);
      deviation = std::max(deviation,
                           std::max(actual / leaf_in, leaf_in / actual));
      leaf_in = actual;
      g.leaves[static_cast<size_t>(li)].rows = actual;
    }

    const int remaining = n - 1 - i;
    if (deviation > options_.replan_factor && remaining >= 1 &&
        aborts_left > 0) {
      // Mid-query re-optimization. The pair above is still lazy: the
      // adaptive join only ran its pre-shuffle map stages to observe input
      // sizes, so the expensive reduce/probe work has not started. Put the
      // current leaf back into the pool with its observed cardinality and
      // re-enumerate; if the corrected order leads with a different leaf,
      // abandon the pair and take that order instead.
      std::vector<int> pool(order.begin() + i, order.end());
      std::vector<int> corrected = replan_remaining(
          obsv.left_observed ? comp_in : cur_rows, cur_row_width, mask, pool,
          preds_saved);
      if (!corrected.empty() && corrected[0] != li) {
        --aborts_left;
        cur = prev;
        local_of_global = log_saved;
        pred_applied = preds_saved;
        if (obsv.left_observed) cur_rows = comp_in;
        std::copy(corrected.begin(), corrected.end(), order.begin() + i);
        metrics_.replans += 1;
        continue;  // redo position i with the corrected order
      }
      if (remaining >= 2) {
        // Same leading leaf even with corrected cardinalities: keep the pair
        // and re-enumerate just the tail behind the joined composite.
        double joined_rows = std::max(1.0, comp_in * leaf_in * step_sel);
        std::vector<int> tail(order.begin() + i + 1, order.end());
        std::vector<int> reordered =
            replan_remaining(joined_rows, cur_row_width + leaf.row_width,
                             new_mask, tail, pred_applied);
        if (!reordered.empty()) {
          std::copy(reordered.begin(), reordered.end(),
                    order.begin() + i + 1);
          metrics_.replans += 1;
        }
      }
    }

    cur_rows = std::max(1.0, comp_in * leaf_in * step_sel);
    cur_row_width += leaf.row_width;
    cur_width += leaf.width;
    mask = new_mask;
    ++i;
  }

  // The spine's execution order concatenated columns in join order; restore
  // the node's declared layout when they differ.
  bool identity = true;
  for (int s = 0; s < total_width; ++s) {
    if (local_of_global[static_cast<size_t>(s)] != s) {
      identity = false;
      break;
    }
  }
  if (!identity) {
    auto remap = std::make_shared<std::vector<int>>(local_of_global);
    cur = RddPtr<Row>(cur->MapPartitions(
        [remap](int, const std::vector<Row>& in, TaskContext* tctx) {
          std::vector<Row> out;
          out.reserve(in.size());
          for (const Row& r : in) {
            Row o;
            o.fields.reserve(remap->size());
            for (int src : *remap) {
              o.fields.push_back(r.fields[static_cast<size_t>(src)]);
            }
            out.push_back(std::move(o));
          }
          tctx->work().rows_processed += in.size();
          return out;
        },
        "joinRestore"));
  }
  return cur;
}

Result<RddPtr<Row>> Executor::BuildSort(const LogicalPlan& node) {
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> child, BuildRdd(node.children[0]));
  auto keys = std::make_shared<std::vector<ExprPtr>>(node.sort_exprs);
  auto asc = std::make_shared<std::vector<bool>>(node.sort_ascending);
  const UdfRegistry* udfs = udfs_;
  int64_t limit = node.limit;

  auto compare = [keys, asc, udfs](const Row& a, const Row& b) {
    for (size_t i = 0; i < keys->size(); ++i) {
      Value va = EvalExpr(*(*keys)[i], a, udfs);
      Value vb = EvalExpr(*(*keys)[i], b, udfs);
      int c = va.Compare(vb);
      if (c != 0) return (*asc)[i] ? c < 0 : c > 0;
    }
    return false;
  };

  auto sort_partition = [compare, limit](int, const std::vector<Row>& in,
                                         TaskContext* tctx) {
    std::vector<Row> out = in;
    // External sort-merge path: a partition larger than the task's memory
    // budget is sorted as budget-sized runs spilled to local disk, then
    // k-way merged (run I/O and the merge pass charged by the context).
    tctx->ReserveOrSpillSort(ApproxSizeOfRange(in), in.size());
    std::sort(out.begin(), out.end(), compare);
    if (limit >= 0 && static_cast<int64_t>(out.size()) > limit) {
      out.resize(static_cast<size_t>(limit));
    }
    tctx->work().sort_records += in.size();
    tctx->work().rows_processed += in.size();
    tctx->ReleaseAllWorkingSet();
    return out;
  };

  // Per-partition (top-k) sort, then a single-reducer merge — Hive's ORDER
  // BY uses one reducer as well.
  auto partial = child->MapPartitions(sort_partition, "sortPartial");
  auto dep = std::make_shared<PlainShuffleDep<Row>>(
      RddPtr<Row>(partial), 1, [](const Row&) { return 0; });
  auto gathered = std::make_shared<RepartitionedRdd<Row>>(
      ctx_, dep, BucketAssignment{{0}}, "sortGather");
  return RddPtr<Row>(
      gathered->MapPartitions(sort_partition, "sortFinal"));
}

Result<RddPtr<Row>> Executor::BuildLimit(const LogicalPlan& node) {
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> child, BuildRdd(node.children[0]));
  int64_t limit = node.limit;
  // LIMIT pushdown to individual partitions (§2.4); the driver applies the
  // final cut after collect.
  return RddPtr<Row>(child->MapPartitions(
      [limit](int, const std::vector<Row>& in, TaskContext* tctx) {
        std::vector<Row> out = in;
        if (static_cast<int64_t>(out.size()) > limit) {
          out.resize(static_cast<size_t>(limit));
        }
        tctx->work().rows_processed += out.size();
        return out;
      },
      "limit"));
}

Result<QueryResult> Executor::ExecuteInner(const PlanPtr& plan) {
  metrics_ = QueryMetrics();
  if (options_.host_threads >= 0) ctx_->set_host_threads(options_.host_threads);
  double start = ctx_->now();
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> rdd, BuildRdd(plan));
  SHARK_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectTracked(rdd));
  if (plan->limit >= 0 &&
      (plan->kind == PlanKind::kLimit || plan->kind == PlanKind::kSort) &&
      static_cast<int64_t>(rows.size()) > plan->limit) {
    rows.resize(static_cast<size_t>(plan->limit));
  }
  QueryResult result;
  result.schema = Schema(plan->output);
  result.rows = std::move(rows);
  metrics_.virtual_seconds = ctx_->now() - start;
  result.metrics = metrics_;
  return result;
}

Result<QueryResult> Executor::Execute(const PlanPtr& plan) {
  TraceCollector& tc = ctx_->trace_collector();
  // A nested Execute (subquery inside a profiled query) records its stages
  // into the outer profile; only the owner closes it.
  const bool owner = tc.BeginQuery(ctx_->now());
  Result<QueryResult> result = ExecuteInner(plan);
  if (!owner) return result;
  std::shared_ptr<QueryProfile> profile = tc.EndQuery(ctx_->now());
  if (!result.ok()) return result;
  profile->result_rows = result->rows.size();
  // Name cached RDDs after their tables so cache counters render readably.
  for (const std::string& name : catalog_->TableNames()) {
    auto info = catalog_->Get(name);
    if (info.ok() && (*info)->cached_rdd != nullptr) {
      profile->rdd_names[(*info)->cached_rdd->id()] = name;
    }
  }
  result->profile = profile;
  return result;
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE rendering
// ---------------------------------------------------------------------------

namespace {

void CollectPostOrder(const LogicalPlan* node,
                      std::vector<const LogicalPlan*>* out) {
  for (const auto& c : node->children) CollectPostOrder(c.get(), out);
  out->push_back(node);
}

/// Substrings an executing stage's label carries when it ran (part of) this
/// operator. Labels are the RDD labels the executor assigns in Build*.
std::vector<std::string> NodeStageKeys(const LogicalPlan& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      return {"memScan:" + node.table,       "scanFilter:" + node.table,
              "prunedScan:" + node.table,    "dfs:warehouse/" + ToLower(node.table),
              "vecScanFilter:" + node.table, "vecScanProject:" + node.table};
    case PlanKind::kIndexScan:
      return {"indexGather:" + node.table,  "vecIndexGather:" + node.table,
              "prunedIndexScan:" + node.table, "indexFilter:" + node.table,
              // Fallback path when the index vanished before execution.
              "memScan:" + node.table, "scanFilter:" + node.table,
              "prunedScan:" + node.table};
    case PlanKind::kFilter:
      return {"filter"};
    case PlanKind::kProject:
      return {"project"};
    case PlanKind::kAggregate:
      return {"aggKey", "aggReduce", "aggFinalize"};
    case PlanKind::kJoin:
      return {"joinKey",        "shuffleJoin",     "joinOutput",
              "mapJoinProbe",   "gatherSmallSide", "copartitionJoin",
              "joinResidual",   "joinRestore"};
    case PlanKind::kSort:
      return {"sortPartial", "sortGather", "sortFinal"};
    case PlanKind::kLimit:
      return {"limit"};
    case PlanKind::kUnion:
      return {};
  }
  return {};
}

std::string StageAnnotation(const StageTrace& st, int indent,
                            const QueryProfile& profile) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s-> stage %d [%s] %.3fs..%.3fs tasks=%d",
                pad.c_str(), st.id, st.label.c_str(), st.start_time,
                st.end_time, st.committed_tasks());
  std::string out = buf;
  if (st.speculative_tasks() > 0) {
    out += " spec=" + std::to_string(st.speculative_tasks());
  }
  if (st.failed_tasks() > 0) {
    out += " failed=" + std::to_string(st.failed_tasks());
  }
  out += " rows=" + std::to_string(st.rows_out());
  if (st.bytes_out() > 0) out += " bytes=" + FormatBytes(st.bytes_out());
  out += "\n";
  if (st.shuffle.buckets > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%s   shuffle: buckets=%d min=%s med=%s max=%s skew=%.2f\n",
                  pad.c_str(), st.shuffle.buckets,
                  FormatBytes(st.shuffle.min_bytes).c_str(),
                  FormatBytes(st.shuffle.median_bytes).c_str(),
                  FormatBytes(st.shuffle.max_bytes).c_str(), st.shuffle.skew);
    out += buf;
  }
  for (const auto& [rdd_id, c] : st.cache_by_rdd) {
    auto it = profile.rdd_names.find(rdd_id);
    std::string name =
        it != profile.rdd_names.end() ? it->second : "rdd" + std::to_string(rdd_id);
    out += pad + "   cache[" + name + "]: hits=" + std::to_string(c.hit_blocks) +
           " (" + FormatBytes(c.hit_bytes) + ")";
    if (c.miss_blocks > 0) {
      out += " misses=" + std::to_string(c.miss_blocks) + " (" +
             FormatBytes(c.miss_bytes) + ")";
    }
    out += "\n";
  }
  out += pad + "   work: " + WorkSummary(st.total_work()) + "\n";
  if (st.spilled_tasks() > 0) {
    out += pad + "   spill: " + FormatBytes(st.spill_bytes()) + " in " +
           std::to_string(st.spill_partitions()) + " partitions across " +
           std::to_string(st.spilled_tasks()) + " tasks\n";
  }
  if (st.disk_served_outputs() > 0) {
    out += pad + "   shuffle-serve: disk outputs=" +
           std::to_string(st.disk_served_outputs()) + "/" +
           std::to_string(st.committed_tasks()) + "\n";
  }
  for (const std::string& e : st.events) out += pad + "   event: " + e + "\n";
  return out;
}

void AppendAnalyzed(
    const LogicalPlan& node, int indent,
    const std::map<const LogicalPlan*, std::vector<const StageTrace*>>& by_node,
    const QueryProfile& profile, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *out += pad + node.NodeString() + "\n";
  auto it = by_node.find(&node);
  if (it != by_node.end()) {
    // Estimated vs observed cardinality: the last stage matched to this
    // operator carries its output rows (earlier ones are map sides).
    if (node.est_rows >= 0 && !it->second.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s  est_rows=%.0f actual_rows=%llu\n",
                    pad.c_str(), node.est_rows,
                    static_cast<unsigned long long>(
                        it->second.back()->rows_out()));
      *out += buf;
    }
    for (const StageTrace* st : it->second) {
      *out += StageAnnotation(*st, indent + 1, profile);
    }
  }
  for (const auto& c : node.children) {
    AppendAnalyzed(*c, indent + 1, by_node, profile, out);
  }
}

}  // namespace

std::string RenderAnalyzedPlan(const LogicalPlan& plan,
                               const QueryProfile& profile) {
  std::vector<const LogicalPlan*> nodes;
  CollectPostOrder(&plan, &nodes);
  // Assign each stage to the deepest operator whose label keys match; a
  // "shuffleMap:x" stage executed operator x's map side.
  std::map<const LogicalPlan*, std::vector<const StageTrace*>> by_node;
  std::vector<const StageTrace*> unmatched;
  for (const StageTrace& st : profile.stages) {
    std::string label = st.label;
    constexpr const char kMapPrefix[] = "shuffleMap:";
    if (label.rfind(kMapPrefix, 0) == 0) {
      label = label.substr(sizeof(kMapPrefix) - 1);
    }
    const LogicalPlan* target = nullptr;
    for (const LogicalPlan* n : nodes) {
      for (const std::string& key : NodeStageKeys(*n)) {
        if (label.find(key) != std::string::npos) {
          target = n;
          break;
        }
      }
      if (target != nullptr) break;
    }
    if (target != nullptr) {
      by_node[target].push_back(&st);
    } else {
      unmatched.push_back(&st);
    }
  }
  std::string out;
  AppendAnalyzed(plan, 0, by_node, profile, &out);
  if (!unmatched.empty()) {
    out += "other stages:\n";
    for (const StageTrace* st : unmatched) {
      out += StageAnnotation(*st, 1, profile);
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "total: %.3fs, %d stages, %llu result rows\n",
                profile.duration(), static_cast<int>(profile.stages.size()),
                static_cast<unsigned long long>(profile.result_rows));
  out += buf;
  return out;
}

}  // namespace shark
