#include "sql/catalog.h"

#include "common/string_util.h"

namespace shark {

Status Catalog::CreateTable(TableInfo info) {
  std::string key = ToLower(info.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + info.name);
  }
  tables_.emplace(std::move(key), std::move(info));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table not found: " + name);
  }
  // Drop dependent objects before the entry itself so a later CREATE TABLE
  // with the same name can never resolve stale state: clearing `indexes`
  // releases each tree's MemoryManager reservation through its RAII handle,
  // and erasing the entry discards column_statistics/partition_stats.
  it->second.indexes.clear();
  if (it->second.cached_rdd != nullptr) it->second.cached_rdd->Uncache();
  tables_.erase(it);
  return Status::OK();
}

bool Catalog::Exists(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Result<TableInfo*> Catalog::Get(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return &it->second;
}

Result<const TableInfo*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return static_cast<const TableInfo*>(&it->second);
}

TableInfo* Catalog::FindTableOfIndex(const std::string& index_name) {
  std::string key = ToLower(index_name);
  for (auto& [tkey, info] : tables_) {
    if (info.indexes.count(key) > 0) return &info;
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, info] : tables_) names.push_back(info.name);
  return names;
}

}  // namespace shark
