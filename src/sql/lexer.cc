#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace shark {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      t.kind = TokenKind::kIdentifier;
      t.text = sql.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      t.text = sql.substr(start, i - start);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        if (!ParseDouble(t.text, &t.double_value)) {
          return Status::ParseError("bad numeric literal: " + t.text);
        }
      } else {
        t.kind = TokenKind::kInteger;
        if (!ParseInt64(t.text, &t.int_value)) {
          return Status::ParseError("bad integer literal: " + t.text);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == quote) {
          // Doubled quote escapes itself.
          if (i + 1 < n && sql[i + 1] == quote) {
            text.push_back(quote);
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Two-character operators.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        t.kind = TokenKind::kSymbol;
        t.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*+-/%=<>;").find(c) != std::string::npos) {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace shark
