#ifndef SHARK_SQL_CATALOG_H_
#define SHARK_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table_partition.h"
#include "common/status.h"
#include "rdd/rdd.h"
#include "relation/types.h"
#include "sim/dfs.h"

namespace shark {

struct TableStatistics;
class BTreeIndex;

/// One secondary index over a cached table's column. The tree holds
/// (partition, row) postings into the columnar store, so it is only valid
/// while the table stays cached: UNCACHE and DROP discard it.
///
/// `reservation` is an RAII handle whose deleter returns the tree's
/// footprint to the MemoryManager — destroying the IndexInfo (DROP INDEX,
/// DROP TABLE, UNCACHE, failed CTAS cleanup) always releases the charge,
/// with no per-path bookkeeping.
struct IndexInfo {
  std::string name;       // original case
  int column = -1;        // schema position of the indexed column
  std::shared_ptr<const BTreeIndex> tree;
  uint64_t memory_bytes = 0;
  std::shared_ptr<void> reservation;
};

/// Metastore entry for one table. A table lives on the DFS (`dfs_file`),
/// in the columnar memory store (`cached_rdd` non-null), or both.
struct TableInfo {
  std::string name;
  Schema schema;

  // On-DFS storage (empty dfs_file for memory-only tables).
  std::string dfs_file;
  DfsFormat format = DfsFormat::kText;

  // Columnar memory store (§3.2). The RDD's elements are TablePartitionPtr;
  // the RDD is marked cached so partitions live in the block manager and are
  // recomputed from lineage after failures.
  RddPtr<TablePartitionPtr> cached_rdd;

  // Per-partition per-column statistics collected during load, kept by the
  // master for map pruning (§3.5). Indexed [partition][column].
  std::vector<std::vector<ColumnStats>> partition_stats;

  // DISTRIBUTE BY column index (-1 if none) and the partition count used;
  // co-partitioned joins require matching values (§3.4).
  int distribute_key = -1;
  int num_partitions = 0;
  std::string copartitioned_with;

  // Rough table-level statistics for the static optimizer's prior beliefs.
  uint64_t approx_rows = 0;
  uint64_t approx_bytes = 0;

  // Full per-column statistics installed by ANALYZE TABLE (null until then).
  // Describes table *content*, so it survives UNCACHE; DROP discards it.
  std::shared_ptr<const TableStatistics> column_statistics;

  // Secondary indexes keyed by lower-cased index name (same convention as
  // the catalog's table map). Postings point into cached_rdd's partitions,
  // so UNCACHE clears this map along with the RDD.
  std::map<std::string, IndexInfo> indexes;

  bool is_cached() const { return cached_rdd != nullptr; }

  /// Index over schema position `column`, or null. Planner-facing lookup.
  const IndexInfo* IndexOnColumn(int column) const {
    for (const auto& [key, idx] : indexes) {
      if (idx.column == column) return &idx;
    }
    return nullptr;
  }
};

/// The system catalog (Hive metastore analog). Lives on the master.
class Catalog {
 public:
  Status CreateTable(TableInfo info);
  Status DropTable(const std::string& name, bool if_exists);
  bool Exists(const std::string& name) const;
  Result<TableInfo*> Get(const std::string& name);
  Result<const TableInfo*> Get(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Table owning an index whose name lower-cases to `index_name`'s, or
  /// null. Used by DROP INDEX without an ON clause; map order makes the
  /// search deterministic.
  TableInfo* FindTableOfIndex(const std::string& index_name);

 private:
  std::map<std::string, TableInfo> tables_;  // lower-cased names
};

}  // namespace shark

#endif  // SHARK_SQL_CATALOG_H_
