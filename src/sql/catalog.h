#ifndef SHARK_SQL_CATALOG_H_
#define SHARK_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table_partition.h"
#include "common/status.h"
#include "rdd/rdd.h"
#include "relation/types.h"
#include "sim/dfs.h"

namespace shark {

struct TableStatistics;

/// Metastore entry for one table. A table lives on the DFS (`dfs_file`),
/// in the columnar memory store (`cached_rdd` non-null), or both.
struct TableInfo {
  std::string name;
  Schema schema;

  // On-DFS storage (empty dfs_file for memory-only tables).
  std::string dfs_file;
  DfsFormat format = DfsFormat::kText;

  // Columnar memory store (§3.2). The RDD's elements are TablePartitionPtr;
  // the RDD is marked cached so partitions live in the block manager and are
  // recomputed from lineage after failures.
  RddPtr<TablePartitionPtr> cached_rdd;

  // Per-partition per-column statistics collected during load, kept by the
  // master for map pruning (§3.5). Indexed [partition][column].
  std::vector<std::vector<ColumnStats>> partition_stats;

  // DISTRIBUTE BY column index (-1 if none) and the partition count used;
  // co-partitioned joins require matching values (§3.4).
  int distribute_key = -1;
  int num_partitions = 0;
  std::string copartitioned_with;

  // Rough table-level statistics for the static optimizer's prior beliefs.
  uint64_t approx_rows = 0;
  uint64_t approx_bytes = 0;

  // Full per-column statistics installed by ANALYZE TABLE (null until then).
  // Describes table *content*, so it survives UNCACHE; DROP discards it.
  std::shared_ptr<const TableStatistics> column_statistics;

  bool is_cached() const { return cached_rdd != nullptr; }
};

/// The system catalog (Hive metastore analog). Lives on the master.
class Catalog {
 public:
  Status CreateTable(TableInfo info);
  Status DropTable(const std::string& name, bool if_exists);
  bool Exists(const std::string& name) const;
  Result<TableInfo*> Get(const std::string& name);
  Result<const TableInfo*> Get(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableInfo> tables_;  // lower-cased names
};

}  // namespace shark

#endif  // SHARK_SQL_CATALOG_H_
