#ifndef SHARK_SQL_AST_H_
#define SHARK_SQL_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relation/types.h"
#include "relation/value.h"

namespace shark {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,  // unresolved name [qualifier.]name
  kSlot,       // resolved reference to a child-output column
  kUnary,
  kBinary,
  kFuncCall,  // scalar builtin or user-defined function
  kAggCall,   // COUNT/SUM/AVG/MIN/MAX, optionally DISTINCT; star for COUNT(*)
  kBetween,   // child0 BETWEEN child1 AND child2
  kInList,    // child0 IN (child1..childN)
  kIsNull,    // child0 IS [NOT] NULL
  kLike,      // child0 LIKE child1 (literal pattern)
  kCase,      // CASE WHEN c1 THEN v1 [WHEN..] [ELSE e] END: children alternate
};

enum class UnaryOp : uint8_t { kNeg, kNot };

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

/// A SQL expression node. One struct with a kind tag keeps the parser,
/// analyzer (which rewrites kColumnRef into kSlot) and evaluator simple.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;               // kLiteral
  std::string qualifier;       // kColumnRef: optional table alias
  std::string name;            // kColumnRef column / kFuncCall,kAggCall name
  int slot = -1;               // kSlot: index into the input row
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kEq;
  bool negated = false;        // NOT BETWEEN / NOT IN / IS NOT NULL / NOT LIKE
  bool distinct = false;       // COUNT(DISTINCT x)
  bool star = false;           // COUNT(*)
  std::vector<ExprPtr> children;

  /// Result type, filled by the analyzer.
  TypeKind type = TypeKind::kNull;

  std::string ToString() const;

  /// Structural equality (used to match GROUP BY expressions in the select
  /// list and ORDER BY in aggregates).
  bool Equals(const Expr& other) const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeSlot(int slot, TypeKind type);
ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectStmt;

struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;            // '*' or qualifier.*
  std::string star_qualifier;
};

struct TableRef {
  std::string name;
  std::string alias;
  std::shared_ptr<SelectStmt> subquery;  // (SELECT ...) alias
};

enum class JoinType : uint8_t { kInner, kLeftOuter, kRightOuter };

struct JoinClause {
  TableRef table;
  ExprPtr condition;  // ON ...
  JoinType type = JoinType::kInner;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;                // -1: none
  std::string distribute_by;         // DISTRIBUTE BY column (co-partitioning)

  /// UNION ALL chain: the next SELECT whose rows are appended to this one's.
  std::shared_ptr<SelectStmt> union_all;
};

struct CreateTableStmt {
  std::string name;
  std::map<std::string, std::string> properties;  // TBLPROPERTIES
  std::shared_ptr<SelectStmt> select;             // CREATE TABLE .. AS SELECT
  std::vector<Field> columns;                     // explicit schema form
};

struct DropTableStmt {
  std::string name;
  bool if_exists = false;
};

/// UNCACHE TABLE <name>: drops the table's blocks from the memory store;
/// the table itself (and its DFS backing, if any) survives.
struct UncacheTableStmt {
  std::string name;
};

/// CREATE INDEX <name> ON <table> (<column>): builds a B+-tree over the
/// cached table's column and registers it in the catalog.
struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
};

/// DROP INDEX [IF EXISTS] <name> [ON <table>]: without ON the index name is
/// resolved across all tables (error only when the name is missing and not
/// IF EXISTS).
struct DropIndexStmt {
  std::string index_name;
  std::string table;  // empty = search all tables
  bool if_exists = false;
};

struct ExplainStmt {
  bool analyze = false;  // EXPLAIN ANALYZE executes and annotates the plan
  std::shared_ptr<SelectStmt> select;
};

/// ANALYZE TABLE <name> [COMPUTE STATISTICS [FOR COLUMNS]]: scans the table
/// and installs full per-column statistics in the catalog for the
/// cost-based optimizer.
struct AnalyzeTableStmt {
  std::string name;
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kUncacheTable,
  kExplain,
  kAnalyzeTable,
  kCreateIndex,
  kDropIndex
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::shared_ptr<SelectStmt> select;
  std::shared_ptr<CreateTableStmt> create_table;
  std::shared_ptr<DropTableStmt> drop_table;
  std::shared_ptr<UncacheTableStmt> uncache_table;
  std::shared_ptr<ExplainStmt> explain;
  std::shared_ptr<AnalyzeTableStmt> analyze_table;
  std::shared_ptr<CreateIndexStmt> create_index;
  std::shared_ptr<DropIndexStmt> drop_index;
};

}  // namespace shark

#endif  // SHARK_SQL_AST_H_
