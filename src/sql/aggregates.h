#ifndef SHARK_SQL_AGGREGATES_H_
#define SHARK_SQL_AGGREGATES_H_

#include <unordered_set>
#include <vector>

#include "rdd/rdd.h"
#include "relation/row.h"
#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

/// Running state of one aggregate call within one group. Shuffled between
/// the partial (map-side) and final (reduce-side) aggregation phases.
struct AggCell {
  bool inited = false;
  Value acc;           // SUM / MIN / MAX accumulator (also AVG numerator)
  int64_t count = 0;   // COUNT / AVG denominator
  std::unordered_set<Row, KeyHasher<Row>> distinct;  // COUNT(DISTINCT ...)
};

/// Per-group state: one cell per aggregate call.
struct AggState {
  std::vector<AggCell> cells;
};

uint64_t ApproxSizeOf(const AggCell& cell);
uint64_t ApproxSizeOf(const AggState& state);

/// Creates an empty state for the given calls.
AggState InitAggState(const std::vector<AggCall>& calls);

/// Folds one input row into the state (map side).
void AccumulateRow(const std::vector<AggCall>& calls, const Row& row,
                   const UdfRegistry* udfs, AggState* state);

/// Folds a single already-evaluated argument value into one cell. Handles
/// every function except kCountDistinct (which needs the full arg tuple —
/// callers build the tuple and insert into `cell->distinct` themselves).
/// Exposed so the vectorized group-by accumulates with exactly the same
/// arithmetic (and double summation order) as the row path.
void AccumulateValue(const AggCall& call, const Value& v, AggCell* cell);

/// Merges `from` into `into` (reduce side).
void MergeAggStates(const std::vector<AggCall>& calls, const AggState& from,
                    AggState* into);

/// Produces the output row: group key values followed by finalized
/// aggregates (AVG division, DISTINCT cardinality, SQL NULL semantics).
Row FinalizeAggRow(const std::vector<AggCall>& calls, const Row& group_key,
                   const AggState& state);

}  // namespace shark

#endif  // SHARK_SQL_AGGREGATES_H_
