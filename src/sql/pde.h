#ifndef SHARK_SQL_PDE_H_
#define SHARK_SQL_PDE_H_

#include <cstdint>
#include <vector>

#include "rdd/pair_rdd.h"

namespace shark {

/// Partial DAG execution decisions taken at a shuffle boundary (§3.1.2):
/// given observed fine-grained bucket sizes, coalesce them into reduce
/// partitions with a greedy bin-packing heuristic that equalizes reducer
/// loads (mitigating skew), and pick the reducer count from the data size.

/// Picks the number of reducers: enough that each handles about
/// `target_bytes` (virtual), bounded by [1, num_buckets].
int ChooseNumReducers(uint64_t total_virtual_bytes, uint64_t target_bytes,
                      int num_buckets);

/// Greedy bin packing: buckets sorted by decreasing size, each placed on the
/// currently least-loaded reducer. Every bucket index in [0, bucket_bytes
/// .size()) appears in exactly one reducer's list.
BucketAssignment CoalesceBuckets(const std::vector<uint64_t>& bucket_bytes,
                                 int num_reducers);

/// Largest single reducer load under the assignment (for tests/metrics).
uint64_t MaxReducerLoad(const std::vector<uint64_t>& bucket_bytes,
                        const BucketAssignment& assignment);

}  // namespace shark

#endif  // SHARK_SQL_PDE_H_
