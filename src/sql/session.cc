#include "sql/session.h"

#include <algorithm>

#include "common/logging.h"
#include "index/btree.h"
#include "mem/memory_manager.h"
#include "rdd/pair_rdd.h"
#include "common/string_util.h"
#include "sql/analyzer.h"
#include "sql/planner/planner.h"
#include "sql/stats/analyze.h"
#include "sql/stats/table_stats.h"

namespace shark {

namespace {

/// Brackets one query's engine-state debris. Shuffle registrations and cache
/// insertions are recorded in the current job's ledger (installing a local
/// JobState for plain, non-JobManager callers); a failing query drops
/// exactly what it created — shuffle ledger entries and cached blocks — so
/// the next query, possibly another session's, sees a clean cluster. A
/// successful query keeps its state resident (seed semantics) and merely
/// forgets the ledger entries.
class QueryDebrisScope {
 public:
  explicit QueryDebrisScope(ClusterContext* ctx) : ctx_(ctx) {
    if (CurrentJobState() == nullptr) {
      local_.label = "sql";
      SetCurrentJobState(&local_);
      installed_ = true;
    }
    job_ = CurrentJobState();
    shuffle_mark_ = job_->owned_shuffle_ids.size();
    cache_mark_ = job_->owned_cache_rdd_ids.size();
  }

  ~QueryDebrisScope() {
    if (installed_) SetCurrentJobState(nullptr);
  }

  QueryDebrisScope(const QueryDebrisScope&) = delete;
  QueryDebrisScope& operator=(const QueryDebrisScope&) = delete;

  /// Failure path: releases everything recorded past the entry marks.
  void DropDebris() {
    if (job_->owned_shuffle_ids.size() > shuffle_mark_ ||
        job_->owned_cache_rdd_ids.size() > cache_mark_) {
      // Other jobs' frozen epochs may be reading the ledger and the cache.
      ctx_->scheduler().QuiesceForSharedStateMutation();
      for (size_t i = shuffle_mark_; i < job_->owned_shuffle_ids.size(); ++i) {
        ctx_->shuffle_manager().DropShuffle(job_->owned_shuffle_ids[i]);
      }
      for (size_t i = cache_mark_; i < job_->owned_cache_rdd_ids.size(); ++i) {
        ctx_->block_manager().DropRdd(job_->owned_cache_rdd_ids[i]);
      }
    }
    Forget();
  }

  /// Success path: results stay resident, ledger entries are dropped.
  void Forget() {
    job_->owned_shuffle_ids.resize(shuffle_mark_);
    job_->owned_cache_rdd_ids.resize(cache_mark_);
  }

 private:
  ClusterContext* ctx_;
  JobState* job_ = nullptr;
  JobState local_;
  bool installed_ = false;
  size_t shuffle_mark_ = 0;
  size_t cache_mark_ = 0;
};

}  // namespace

SharkSession::SharkSession(std::shared_ptr<ClusterContext> ctx)
    : ctx_(std::move(ctx)) {}

Result<QueryResult> SharkSession::Sql(const std::string& query) {
  return Sql(query, nullptr);
}

Result<QueryResult> SharkSession::Sql(const std::string& query,
                                      std::string* analyzed_plan) {
  if (analyzed_plan != nullptr) analyzed_plan->clear();
  SHARK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(query));
  QueryDebrisScope debris(ctx_.get());
  Result<QueryResult> result = ExecuteStatement(stmt, analyzed_plan);
  if (result.ok()) {
    debris.Forget();
  } else {
    debris.DropDebris();
  }
  return result;
}

Result<QueryResult> SharkSession::ExecuteStatement(const Statement& stmt,
                                                   std::string* analyzed_plan) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, analyzed_plan);
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case StatementKind::kDropTable: {
      std::string dfs_file;
      if (auto info = catalog_.Get(stmt.drop_table->name); info.ok()) {
        dfs_file = (*info)->dfs_file;
      }
      SHARK_RETURN_NOT_OK(
          catalog_.DropTable(stmt.drop_table->name, stmt.drop_table->if_exists));
      // Managed-table semantics: dropping the table drops its DFS storage,
      // so a later CREATE TABLE under the same name starts from scratch
      // instead of colliding with the orphaned file.
      if (!dfs_file.empty()) {
        Status removed = ctx_->dfs().DeleteFile(dfs_file);
        if (!removed.ok()) {
          SHARK_LOG(kWarn) << "DROP TABLE could not delete DFS storage '"
                           << dfs_file << "': " << removed.ToString();
        }
      }
      return QueryResult{};
    }
    case StatementKind::kUncacheTable: {
      SHARK_RETURN_NOT_OK(UncacheTable(stmt.uncache_table->name));
      return QueryResult{};
    }
    case StatementKind::kExplain:
      return ExecuteExplain(*stmt.explain);
    case StatementKind::kAnalyzeTable:
      return ExecuteAnalyzeTable(*stmt.analyze_table);
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case StatementKind::kDropIndex:
      return ExecuteDropIndex(*stmt.drop_index);
  }
  return Status::Internal("unknown statement kind");
}

PlanPtr SharkSession::PlanSelect(PlanPtr plan) {
  PlanCostEnv env;
  env.catalog = &catalog_;
  env.hardware = ctx_->cost_model().hardware();
  env.profile = ctx_->profile();
  env.virtual_scale = ctx_->virtual_scale();
  env.total_cores = ctx_->cluster().total_cores();
  env.broadcast_threshold_bytes = options_.broadcast_threshold_bytes;
  PlannerOptions popts;
  popts.cbo = options_.cbo;
  popts.force_left_deep = options_.force_left_deep;
  popts.dp_max_relations = options_.dp_max_relations;
  popts.use_indexes = options_.use_indexes;
  return PlanQuery(std::move(plan), &udfs_, env, popts);
}

Result<QueryResult> SharkSession::ExecuteAnalyzeTable(
    const AnalyzeTableStmt& stmt) {
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(stmt.name));
  QueryMetrics metrics;
  SHARK_ASSIGN_OR_RETURN(auto stats,
                         RunAnalyzeTable(ctx_.get(), info, &metrics));

  QueryResult result;
  result.metrics = metrics;
  Schema schema;
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"table", TypeKind::kString}));
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"rows", TypeKind::kInt64}));
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"columns", TypeKind::kInt64}));
  result.schema = schema;
  Row row;
  row.fields.push_back(Value::String(info->name));
  row.fields.push_back(Value::Int64(static_cast<int64_t>(stats->row_count)));
  row.fields.push_back(
      Value::Int64(static_cast<int64_t>(stats->columns.size())));
  result.rows.push_back(std::move(row));
  return result;
}

Result<QueryResult> SharkSession::ExecuteExplain(const ExplainStmt& stmt) {
  Analyzer analyzer(&catalog_, &udfs_);
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, analyzer.AnalyzeSelect(*stmt.select));
  plan = PlanSelect(plan);

  std::string rendered;
  QueryResult result;
  if (stmt.analyze) {
    // EXPLAIN ANALYZE runs the query and annotates the plan with the
    // recorded profile; the data rows are discarded, the metrics and the
    // profile itself are carried on the result.
    Executor executor(ctx_.get(), &catalog_, &udfs_, options_);
    // Snapshot the cluster counters around execution: the difference is
    // exactly this query's contribution, appended below the plan.
    std::vector<std::pair<std::string, uint64_t>> before =
        ctx_->metrics().registry().CounterSnapshot();
    SHARK_ASSIGN_OR_RETURN(QueryResult run, executor.Execute(plan));
    SHARK_CHECK(run.profile != nullptr);
    rendered = RenderAnalyzedPlan(*plan, *run.profile);
    std::vector<std::pair<std::string, uint64_t>> after =
        ctx_->metrics().registry().CounterSnapshot();
    std::string delta;
    for (size_t i = 0; i < after.size() && i < before.size(); ++i) {
      uint64_t d = after[i].second - before[i].second;
      if (d == 0) continue;
      delta += "  " + after[i].first + " +" + std::to_string(d) + "\n";
    }
    if (!delta.empty()) {
      rendered += "cluster metrics delta:\n" + delta;
    }
    result.metrics = run.metrics;
    result.profile = run.profile;
  } else {
    rendered = plan->ToString();
  }

  // One STRING column, one row per output line.
  Schema schema;
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"plan", TypeKind::kString}));
  result.schema = schema;
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    Row row;
    row.fields.push_back(Value::String(rendered.substr(start, end - start)));
    result.rows.push_back(std::move(row));
    start = end + 1;
  }
  return result;
}

Result<QueryResult> SharkSession::ExecuteSelect(const SelectStmt& stmt,
                                                std::string* analyzed_plan) {
  Analyzer analyzer(&catalog_, &udfs_);
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, analyzer.AnalyzeSelect(stmt));
  plan = PlanSelect(plan);
  Executor executor(ctx_.get(), &catalog_, &udfs_, options_);
  Result<QueryResult> result = executor.Execute(plan);
  if (result.ok() && analyzed_plan != nullptr && result->profile != nullptr) {
    *analyzed_plan = RenderAnalyzedPlan(*plan, *result->profile);
  }
  return result;
}

Result<TableRdd> SharkSession::Sql2Rdd(const std::string& query) {
  SHARK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(query));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("sql2rdd expects a SELECT");
  }
  QueryDebrisScope debris(ctx_.get());
  Analyzer analyzer(&catalog_, &udfs_);
  Result<PlanPtr> plan = analyzer.AnalyzeSelect(*stmt.select);
  if (!plan.ok()) return plan.status();
  PlanPtr optimized = PlanSelect(*plan);
  Executor executor(ctx_.get(), &catalog_, &udfs_, options_);
  Result<RddPtr<Row>> rdd = executor.BuildRdd(optimized);
  if (!rdd.ok()) {
    debris.DropDebris();
    return rdd.status();
  }
  // The distributed result stays live; its shuffles/cache now belong to the
  // caller's RDD graph.
  debris.Forget();
  TableRdd out;
  out.rdd = *rdd;
  out.schema = Schema(optimized->output);
  out.build_metrics = executor.metrics();
  return out;
}

Result<std::string> SharkSession::Explain(const std::string& query) {
  SHARK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(query));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN expects a SELECT");
  }
  Analyzer analyzer(&catalog_, &udfs_);
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, analyzer.AnalyzeSelect(*stmt.select));
  plan = PlanSelect(plan);
  return plan->ToString();
}

Status SharkSession::CreateDfsTable(const std::string& name,
                                    const Schema& schema,
                                    const std::vector<Row>& rows,
                                    int num_blocks, DfsFormat format) {
  if (catalog_.Exists(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  SHARK_CHECK(num_blocks > 0);
  std::string file_name = "warehouse/" + ToLower(name);
  std::vector<DfsBlock> blocks(static_cast<size_t>(num_blocks));
  std::vector<std::shared_ptr<std::vector<Row>>> payloads;
  payloads.reserve(static_cast<size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    payloads.push_back(std::make_shared<std::vector<Row>>());
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    size_t b = i * static_cast<size_t>(num_blocks) / std::max<size_t>(rows.size(), 1);
    payloads[b]->push_back(rows[i]);
  }
  uint64_t total_bytes = 0;
  for (int b = 0; b < num_blocks; ++b) {
    DfsBlock& blk = blocks[static_cast<size_t>(b)];
    blk.rows = payloads[static_cast<size_t>(b)]->size();
    for (const Row& r : *payloads[static_cast<size_t>(b)]) {
      blk.bytes += SerializedSizeOf(r, format);
    }
    total_bytes += blk.bytes;
    blk.data = payloads[static_cast<size_t>(b)];
  }
  SHARK_RETURN_NOT_OK(ctx_->dfs().CreateFile(file_name, format, std::move(blocks)));
  TableInfo info;
  info.name = name;
  info.schema = schema;
  info.dfs_file = file_name;
  info.format = format;
  info.approx_rows = rows.size();
  info.approx_bytes = total_bytes;
  return catalog_.CreateTable(std::move(info));
}

Status SharkSession::LoadRowsIntoMemstore(TableInfo* info, RddPtr<Row> rows,
                                          int distribute_key,
                                          int num_partitions,
                                          const TableInfo* align_with) {
  Schema schema = info->schema;
  RddPtr<Row> partitioned = rows;
  if (distribute_key >= 0) {
    SHARK_CHECK(num_partitions > 0);
    auto dep = std::make_shared<PlainShuffleDep<Row>>(
        rows, num_partitions, [distribute_key, num_partitions](const Row& r) {
          return static_cast<int>(KeyHash(r.Get(distribute_key)) %
                                  static_cast<uint64_t>(num_partitions));
        });
    partitioned = std::make_shared<RepartitionedRdd<Row>>(
        ctx_.get(), dep, IdentityAssignment(num_partitions),
        "distributeBy:" + info->name);
  }
  // Marshal rows into columnar partitions (§3.3): each loading task picks
  // its own compression schemes; no coordination.
  auto marshal = partitioned->MapPartitions(
      [schema](int, const std::vector<Row>& in, TaskContext* tctx) {
        tctx->work().rows_processed += 2 * in.size();  // field extraction+encode
        std::vector<TablePartitionPtr> out;
        out.push_back(TablePartition::FromRows(schema, in));
        return out;
      },
      "memstoreLoad:" + info->name);
  marshal->Cache();
  marshal->set_free_cache_reads(true);  // scans charge per decoded column
  if (align_with != nullptr && align_with->cached_rdd != nullptr) {
    // Place each partition where the co-partitioned partner's partition
    // lives so their join is node-local (§3.4).
    BlockManager* bm = &ctx_->block_manager();
    int partner_id = align_with->cached_rdd->id();
    marshal->set_preferred_hint([bm, partner_id](int p) {
      int loc = bm->Location(partner_id, p);
      return loc >= 0 ? std::vector<int>{loc} : std::vector<int>{};
    });
  }

  // Materialize the cache and pull per-partition statistics to the master.
  double start = ctx_->now();
  auto blocks = ctx_->scheduler().RunJob(marshal);
  SHARK_RETURN_NOT_OK(blocks.status());
  last_load_metrics_ = QueryMetrics();
  last_load_metrics_.AddJob(ctx_->scheduler().last_job());
  last_load_metrics_.virtual_seconds = ctx_->now() - start;

  info->cached_rdd = marshal;
  info->partition_stats.clear();
  info->num_partitions = marshal->num_partitions();
  info->distribute_key = distribute_key;
  uint64_t rows_total = 0;
  for (const BlockData& b : *blocks) {
    auto vec = std::static_pointer_cast<const std::vector<TablePartitionPtr>>(b);
    std::vector<ColumnStats> stats;
    if (!vec->empty() && (*vec)[0] != nullptr) {
      const TablePartition& part = *(*vec)[0];
      rows_total += part.num_rows();
      for (int c = 0; c < part.num_columns(); ++c) {
        stats.push_back(part.stats(c));
      }
    } else {
      stats.resize(static_cast<size_t>(schema.num_fields()));
    }
    info->partition_stats.push_back(std::move(stats));
  }
  if (info->approx_rows == 0) info->approx_rows = rows_total;
  return Status::OK();
}

Status SharkSession::CacheTable(const std::string& name,
                                const std::string& distribute_column,
                                const std::string& copartition_with) {
  QueryDebrisScope debris(ctx_.get());
  Status status = CacheTableImpl(name, distribute_column, copartition_with);
  if (status.ok()) {
    debris.Forget();
  } else {
    debris.DropDebris();
  }
  return status;
}

Status SharkSession::CacheTableImpl(const std::string& name,
                                    const std::string& distribute_column,
                                    const std::string& copartition_with) {
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(name));
  if (info->is_cached()) return Status::OK();
  if (info->dfs_file.empty()) {
    return Status::ExecutionError("table has no DFS storage to load: " + name);
  }
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> rows, ctx_->FromDfs<Row>(info->dfs_file));

  int distribute_key = -1;
  int num_partitions = rows->num_partitions();
  if (!distribute_column.empty()) {
    distribute_key = info->schema.FieldIndex(distribute_column);
    if (distribute_key < 0) {
      return Status::AnalysisError("unknown DISTRIBUTE BY column: " +
                                   distribute_column);
    }
  }
  if (!copartition_with.empty()) {
    SHARK_ASSIGN_OR_RETURN(TableInfo * partner, catalog_.Get(copartition_with));
    if (!partner->is_cached() || partner->distribute_key < 0) {
      return Status::ExecutionError(
          "copartition partner must be cached with DISTRIBUTE BY: " +
          copartition_with);
    }
    if (distribute_key < 0) {
      return Status::AnalysisError(
          "copartitioned table needs its own DISTRIBUTE BY column");
    }
    num_partitions = partner->num_partitions;
    info->copartitioned_with = partner->name;
    return LoadRowsIntoMemstore(info, rows, distribute_key, num_partitions,
                                partner);
  }
  if (distribute_key >= 0) {
    num_partitions = ctx_->cluster().total_cores();
  }
  return LoadRowsIntoMemstore(info, rows, distribute_key, num_partitions);
}

Status SharkSession::UncacheTable(const std::string& name) {
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(name));
  if (info->cached_rdd != nullptr) {
    info->cached_rdd->Uncache();
    info->cached_rdd = nullptr;
    info->partition_stats.clear();
    // Index postings point into the dropped columnar partitions; clearing
    // the map releases each tree's memory reservation via its RAII handle.
    info->indexes.clear();
  }
  return Status::OK();
}

Result<QueryResult> SharkSession::ExecuteCreateTable(
    const CreateTableStmt& stmt) {
  if (catalog_.Exists(stmt.name)) {
    return Status::AlreadyExists("table exists: " + stmt.name);
  }

  bool cache = false;
  auto cache_it = stmt.properties.find("shark.cache");
  if (cache_it != stmt.properties.end()) {
    cache = EqualsIgnoreCase(cache_it->second, "true");
  }
  std::string copartition;
  auto copart_it = stmt.properties.find("copartition");
  if (copart_it != stmt.properties.end()) copartition = copart_it->second;

  // Explicit-schema form: register an empty DFS table.
  if (stmt.select == nullptr) {
    Schema schema;
    for (const Field& f : stmt.columns) SHARK_RETURN_NOT_OK(schema.AddField(f));
    SHARK_RETURN_NOT_OK(
        CreateDfsTable(stmt.name, schema, {}, 1, DfsFormat::kText));
    return QueryResult{};
  }

  // CTAS: build the select's RDD, then either cache it or write it to DFS.
  Analyzer analyzer(&catalog_, &udfs_);
  SHARK_ASSIGN_OR_RETURN(PlanPtr plan, analyzer.AnalyzeSelect(*stmt.select));
  plan = PlanSelect(plan);
  Executor executor(ctx_.get(), &catalog_, &udfs_, options_);
  SHARK_ASSIGN_OR_RETURN(RddPtr<Row> rows, executor.BuildRdd(plan));

  TableInfo info;
  info.name = stmt.name;
  info.schema = Schema(plan->output);
  double start = ctx_->now();

  if (cache) {
    SHARK_RETURN_NOT_OK(catalog_.CreateTable(info));
    Status load = [&]() -> Status {
      SHARK_ASSIGN_OR_RETURN(TableInfo * stored, catalog_.Get(stmt.name));
      int distribute_key = -1;
      int num_partitions = rows->num_partitions();
      if (!stmt.select->distribute_by.empty()) {
        distribute_key = stored->schema.FieldIndex(stmt.select->distribute_by);
        if (distribute_key < 0) {
          return Status::AnalysisError("unknown DISTRIBUTE BY column: " +
                                       stmt.select->distribute_by);
        }
        num_partitions = ctx_->cluster().total_cores();
      }
      const TableInfo* align_with = nullptr;
      if (!copartition.empty()) {
        SHARK_ASSIGN_OR_RETURN(TableInfo * partner, catalog_.Get(copartition));
        if (!partner->is_cached() || partner->distribute_key < 0) {
          return Status::ExecutionError(
              "copartition partner must be cached with DISTRIBUTE BY: " +
              copartition);
        }
        if (distribute_key < 0) {
          return Status::AnalysisError(
              "copartitioned table needs DISTRIBUTE BY");
        }
        num_partitions = partner->num_partitions;
        stored->copartitioned_with = partner->name;
        align_with = partner;
      }
      return LoadRowsIntoMemstore(stored, rows, distribute_key,
                                  num_partitions, align_with);
    }();
    if (!load.ok()) {
      // A failed CTAS must not leave a phantom, half-loaded table behind —
      // including any index someone declared on it in the meantime (DropTable
      // clears dependent indexes). The cleanup status is advisory, but an
      // unexpected failure here would leak catalog state, so surface it.
      Status cleanup = catalog_.DropTable(stmt.name, /*if_exists=*/true);
      if (!cleanup.ok()) {
        SHARK_LOG(kWarn) << "failed-CTAS cleanup could not drop table '"
                        << stmt.name << "': " << cleanup.ToString();
      }
      return load;
    }
  } else {
    std::string file_name = "warehouse/" + ToLower(stmt.name);
    auto saved = ctx_->SaveToDfs(rows, file_name, DfsFormat::kText);
    SHARK_RETURN_NOT_OK(saved.status());
    info.dfs_file = file_name;
    info.approx_bytes = (*saved)->TotalBytes();
    info.approx_rows = (*saved)->TotalRows();
    SHARK_RETURN_NOT_OK(catalog_.CreateTable(info));
    last_load_metrics_ = QueryMetrics();
    last_load_metrics_.AddJob(ctx_->scheduler().last_job());
    last_load_metrics_.virtual_seconds = ctx_->now() - start;
  }

  QueryResult result;
  result.metrics = last_load_metrics_;
  return result;
}

Result<QueryResult> SharkSession::ExecuteCreateIndex(
    const CreateIndexStmt& stmt) {
  SHARK_ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(stmt.table));
  if (!info->is_cached()) {
    return Status::ExecutionError(
        "CREATE INDEX requires a cached table (postings reference columnar "
        "partitions): " + stmt.table);
  }
  int column = info->schema.FieldIndex(stmt.column);
  if (column < 0) {
    return Status::AnalysisError("unknown column in CREATE INDEX: " +
                                 stmt.column);
  }
  std::string key = ToLower(stmt.index_name);
  if (info->indexes.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + stmt.index_name);
  }
  if (catalog_.FindTableOfIndex(stmt.index_name) != nullptr) {
    return Status::AlreadyExists("index exists on another table: " +
                                 stmt.index_name);
  }

  // Build job: each partition ships its key column to the master, charged
  // like a one-column scan of that partition.
  using BlockPtr = std::shared_ptr<IndexBuildBlock>;
  RddPtr<BlockPtr> blocks = info->cached_rdd->MapPartitions(
      [column](int partition, const std::vector<TablePartitionPtr>& in,
               TaskContext* tctx) {
        auto block = std::make_shared<IndexBuildBlock>();
        block->partition = partition;
        for (const TablePartitionPtr& part : in) {
          if (part == nullptr) continue;
          tctx->work().mem_read_bytes +=
              part->ColumnBytes(static_cast<size_t>(column));
          tctx->work().rows_processed += part->num_rows();
          for (size_t r = 0; r < part->num_rows(); ++r) {
            Row row = part->GetRow(r);
            block->keys.push_back(row.fields[static_cast<size_t>(column)]);
          }
        }
        return std::vector<BlockPtr>{block};
      },
      "indexBuild:" + info->name);

  double start = ctx_->now();
  SHARK_ASSIGN_OR_RETURN(std::vector<BlockPtr> parts, ctx_->Collect(blocks));
  QueryMetrics metrics;
  metrics.AddJob(ctx_->scheduler().last_job());
  metrics.virtual_seconds += ctx_->now() - start;

  // Master-side assembly in (partition, row) order — deterministic for a
  // given cached layout regardless of which task finished first.
  std::sort(parts.begin(), parts.end(),
            [](const BlockPtr& a, const BlockPtr& b) {
              return a->partition < b->partition;
            });
  auto tree = std::make_shared<BTreeIndex>();
  for (const BlockPtr& block : parts) {
    for (size_t r = 0; r < block->keys.size(); ++r) {
      tree->Insert(block->keys[r],
                   IndexPosting{block->partition, static_cast<uint32_t>(r)});
    }
  }

  IndexInfo index;
  index.name = stmt.index_name;
  index.column = column;
  index.memory_bytes = tree->MemoryBytes();
  index.tree = tree;
  MemoryManager* mm = &ctx_->memory_manager();
  mm->AddIndexBytes(index.memory_bytes);
  uint64_t charged = index.memory_bytes;
  index.reservation = std::shared_ptr<void>(
      nullptr, [mm, charged](void*) { mm->ReleaseIndexBytes(charged); });
  info->indexes.emplace(std::move(key), std::move(index));

  QueryResult result;
  result.metrics = metrics;
  Schema schema;
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"index", TypeKind::kString}));
  SHARK_RETURN_NOT_OK(schema.AddField(Field{"keys", TypeKind::kInt64}));
  result.schema = schema;
  Row row;
  row.fields.push_back(Value::String(stmt.index_name));
  row.fields.push_back(Value::Int64(static_cast<int64_t>(tree->size())));
  result.rows.push_back(std::move(row));
  return result;
}

Result<QueryResult> SharkSession::ExecuteDropIndex(const DropIndexStmt& stmt) {
  TableInfo* info = nullptr;
  if (!stmt.table.empty()) {
    SHARK_ASSIGN_OR_RETURN(info, catalog_.Get(stmt.table));
    if (info->indexes.count(ToLower(stmt.index_name)) == 0) info = nullptr;
  } else {
    info = catalog_.FindTableOfIndex(stmt.index_name);
  }
  if (info == nullptr) {
    if (stmt.if_exists) return QueryResult{};
    return Status::NotFound("index not found: " + stmt.index_name);
  }
  // Erasing the IndexInfo releases its memory reservation (RAII handle).
  info->indexes.erase(ToLower(stmt.index_name));
  return QueryResult{};
}

}  // namespace shark
