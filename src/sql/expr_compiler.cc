#include "sql/expr_compiler.h"

#include <algorithm>

#include "common/logging.h"

namespace shark {

namespace {

Value Combine3VL(BinaryOp op, const Value& l, const Value& r) {
  if (op == BinaryOp::kAnd) {
    bool lf = !l.is_null() && !l.bool_v();
    bool rf = !r.is_null() && !r.bool_v();
    if (lf || rf) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  bool lt = !l.is_null() && l.bool_v();
  bool rt = !r.is_null() && r.bool_v();
  if (lt || rt) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value::Bool(false);
}

}  // namespace

Value EvalBinaryScalar(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return Combine3VL(op, l, r);
    default:
      break;
  }
  if (l.is_null() || r.is_null()) return Value::Null();
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      bool both_int = l.kind() != TypeKind::kDouble &&
                      r.kind() != TypeKind::kDouble && IsNumericLike(l.kind()) &&
                      IsNumericLike(r.kind());
      if (both_int) {
        int64_t a = l.int64_v();
        int64_t b = r.int64_v();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int64(WrapAddInt64(a, b));
          case BinaryOp::kSub:
            return Value::Int64(WrapSubInt64(a, b));
          default:
            return Value::Int64(WrapMulInt64(a, b));
        }
      }
      double a = l.AsDouble();
      double b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        default:
          return Value::Double(a * b);
      }
    }
    case BinaryOp::kDiv: {
      double b = r.AsDouble();
      if (b == 0.0) return Value::Null();
      return Value::Double(l.AsDouble() / b);
    }
    case BinaryOp::kMod: {
      int64_t b = r.AsInt64();
      if (b == 0) return Value::Null();
      // INT64_MIN % -1 is UB in C++; mathematically the remainder is 0.
      if (b == -1) return Value::Int64(0);
      return Value::Int64(l.AsInt64() % b);
    }
    case BinaryOp::kEq:
      return Value::Bool(l == r);
    case BinaryOp::kNe:
      return Value::Bool(!(l == r));
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    default:
      return Value::Null();
  }
}

Status ExprCompiler::Emit(const Expr& expr, CompiledExpr* out) const {
  using Op = CompiledExpr::Op;
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      out->constants_.push_back(expr.literal);
      out->code_.push_back({Op::kConst,
                            static_cast<int32_t>(out->constants_.size()) - 1, 0, 0});
      return Status::OK();
    }
    case ExprKind::kSlot:
      out->code_.push_back({Op::kSlot, expr.slot, 0, 0});
      return Status::OK();
    case ExprKind::kColumnRef:
      return Status::Internal("cannot compile unbound column ref");
    case ExprKind::kAggCall:
      return Status::Internal("cannot compile aggregate call");
    case ExprKind::kUnary:
      SHARK_RETURN_NOT_OK(Emit(*expr.children[0], out));
      out->code_.push_back(
          {expr.unary_op == UnaryOp::kNeg ? Op::kNeg : Op::kNot, 0, 0, 0});
      return Status::OK();
    case ExprKind::kBinary: {
      // Fused slot-vs-constant comparison: the dominant predicate shape.
      const Expr& l = *expr.children[0];
      const Expr& r = *expr.children[1];
      bool is_cmp = expr.binary_op == BinaryOp::kEq ||
                    expr.binary_op == BinaryOp::kNe ||
                    expr.binary_op == BinaryOp::kLt ||
                    expr.binary_op == BinaryOp::kLe ||
                    expr.binary_op == BinaryOp::kGt ||
                    expr.binary_op == BinaryOp::kGe;
      if (is_cmp && l.kind == ExprKind::kSlot && r.kind == ExprKind::kLiteral &&
          !r.literal.is_null()) {
        out->constants_.push_back(r.literal);
        out->code_.push_back({Op::kCmpSlotConst, l.slot,
                              static_cast<int32_t>(out->constants_.size()) - 1,
                              static_cast<int32_t>(expr.binary_op)});
        return Status::OK();
      }
      SHARK_RETURN_NOT_OK(Emit(l, out));
      SHARK_RETURN_NOT_OK(Emit(r, out));
      out->code_.push_back(
          {Op::kBinary, static_cast<int32_t>(expr.binary_op), 0, 0});
      return Status::OK();
    }
    case ExprKind::kFuncCall: {
      for (const auto& c : expr.children) SHARK_RETURN_NOT_OK(Emit(*c, out));
      const UdfRegistry::UdfInfo* udf =
          udfs_ != nullptr ? udfs_->Lookup(expr.name) : nullptr;
      if (udf != nullptr) {
        out->udfs_.push_back(udf);
        out->code_.push_back({Op::kUdf,
                              static_cast<int32_t>(out->udfs_.size()) - 1,
                              static_cast<int32_t>(expr.children.size()), 0});
      } else {
        out->builtin_names_.push_back(expr.name);
        out->code_.push_back(
            {Op::kBuiltin, static_cast<int32_t>(out->builtin_names_.size()) - 1,
             static_cast<int32_t>(expr.children.size()), 0});
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      const Expr& v = *expr.children[0];
      const Expr& lo = *expr.children[1];
      const Expr& hi = *expr.children[2];
      if (v.kind == ExprKind::kSlot && lo.kind == ExprKind::kLiteral &&
          hi.kind == ExprKind::kLiteral && !lo.literal.is_null() &&
          !hi.literal.is_null()) {
        out->constants_.push_back(lo.literal);
        out->constants_.push_back(hi.literal);
        out->code_.push_back({Op::kBetweenSlotConst, v.slot,
                              static_cast<int32_t>(out->constants_.size()) - 2,
                              expr.negated ? 1 : 0});
        return Status::OK();
      }
      for (const auto& c : expr.children) SHARK_RETURN_NOT_OK(Emit(*c, out));
      out->code_.push_back({Op::kBetween, expr.negated ? 1 : 0, 0, 0});
      return Status::OK();
    }
    case ExprKind::kInList:
      for (const auto& c : expr.children) SHARK_RETURN_NOT_OK(Emit(*c, out));
      out->code_.push_back({Op::kInList, expr.negated ? 1 : 0,
                            static_cast<int32_t>(expr.children.size()) - 1, 0});
      return Status::OK();
    case ExprKind::kIsNull:
      SHARK_RETURN_NOT_OK(Emit(*expr.children[0], out));
      out->code_.push_back({Op::kIsNull, expr.negated ? 1 : 0, 0, 0});
      return Status::OK();
    case ExprKind::kLike:
      SHARK_RETURN_NOT_OK(Emit(*expr.children[0], out));
      SHARK_RETURN_NOT_OK(Emit(*expr.children[1], out));
      out->code_.push_back({Op::kLike, expr.negated ? 1 : 0, 0, 0});
      return Status::OK();
    case ExprKind::kCase: {
      for (const auto& c : expr.children) SHARK_RETURN_NOT_OK(Emit(*c, out));
      int32_t whens = static_cast<int32_t>(expr.children.size() / 2);
      int32_t has_else = static_cast<int32_t>(expr.children.size() % 2);
      out->code_.push_back({Op::kCase, has_else, whens, 0});
      return Status::OK();
    }
  }
  return Status::Internal("unknown expr kind");
}

namespace {

/// Static stack-depth bound of a postfix program.
int MaxDepth(const Expr& e) {
  // Conservative: children evaluated left to right, each result kept.
  int depth = 0;
  int running = 0;
  for (const auto& c : e.children) {
    depth = std::max(depth, running + MaxDepth(*c));
    running += 1;
  }
  return std::max(depth, running + 1);
}

}  // namespace

Result<CompiledExpr> ExprCompiler::Compile(const Expr& expr) const {
  if (MaxDepth(expr) > CompiledExpr::kMaxStackDepth) {
    return Status::NotImplemented("expression too deep to compile");
  }
  CompiledExpr out;
  SHARK_RETURN_NOT_OK(Emit(expr, &out));
  return out;
}

Value CompiledExpr::Eval(const Row& row) const {
  // Fixed-size operand stack (depth validated at compile time), reused
  // across evaluations: no allocation or Value construction per row — the
  // key advantage over tree interpretation. Slots are always written before
  // they are read, so stale values from earlier rows are harmless.
  struct Stack {
    Value slots[kMaxStackDepth];
    int sp = 0;
    void push_back(Value v) { slots[sp++] = std::move(v); }
    void pop_back() { --sp; }
    Value& back() { return slots[sp - 1]; }
    Value& operator[](size_t i) { return slots[i]; }
    size_t size() const { return static_cast<size_t>(sp); }
    void resize(size_t n) { sp = static_cast<int>(n); }
    Value* end() { return slots + sp; }
  };
  thread_local Stack stack;
  stack.sp = 0;
  for (const Instruction& ins : code_) {
    switch (ins.op) {
      case Op::kConst:
        stack.push_back(constants_[static_cast<size_t>(ins.arg)]);
        break;
      case Op::kSlot:
        stack.push_back(row.Get(ins.arg));
        break;
      case Op::kCmpSlotConst: {
        const Value& v = row.Get(ins.arg);
        if (v.is_null()) {
          stack.push_back(Value::Null());
          break;
        }
        const Value& c = constants_[static_cast<size_t>(ins.arg2)];
        bool result = false;
        switch (static_cast<BinaryOp>(ins.arg3)) {
          case BinaryOp::kEq:
            result = v == c;
            break;
          case BinaryOp::kNe:
            result = !(v == c);
            break;
          case BinaryOp::kLt:
            result = v.Compare(c) < 0;
            break;
          case BinaryOp::kLe:
            result = v.Compare(c) <= 0;
            break;
          case BinaryOp::kGt:
            result = v.Compare(c) > 0;
            break;
          case BinaryOp::kGe:
            result = v.Compare(c) >= 0;
            break;
          default:
            break;
        }
        stack.push_back(Value::Bool(result));
        break;
      }
      case Op::kBetweenSlotConst: {
        const Value& v = row.Get(ins.arg);
        if (v.is_null()) {
          stack.push_back(Value::Null());
          break;
        }
        const Value& lo = constants_[static_cast<size_t>(ins.arg2)];
        const Value& hi = constants_[static_cast<size_t>(ins.arg2) + 1];
        bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
        stack.push_back(Value::Bool(ins.arg3 != 0 ? !in : in));
        break;
      }
      case Op::kNeg: {
        Value& v = stack.back();
        if (!v.is_null()) {
          v = v.kind() == TypeKind::kDouble
                  ? Value::Double(-v.double_v())
                  : Value::Int64(WrapNegInt64(v.int64_v()));
        }
        break;
      }
      case Op::kNot: {
        Value& v = stack.back();
        if (!v.is_null()) v = Value::Bool(!v.bool_v());
        break;
      }
      case Op::kBinary: {
        Value r = std::move(stack.back());
        stack.pop_back();
        Value l = std::move(stack.back());
        stack.pop_back();
        stack.push_back(EvalBinaryScalar(static_cast<BinaryOp>(ins.arg), l, r));
        break;
      }
      case Op::kBuiltin:
      case Op::kUdf: {
        size_t argc = static_cast<size_t>(ins.arg2);
        std::vector<Value> args(stack.end() - static_cast<long>(argc),
                                stack.end());
        stack.resize(stack.size() - argc);
        if (ins.op == Op::kUdf) {
          stack.push_back(udfs_[static_cast<size_t>(ins.arg)]->fn(args));
        } else {
          stack.push_back(
              EvalBuiltin(builtin_names_[static_cast<size_t>(ins.arg)], args));
        }
        break;
      }
      case Op::kBetween: {
        Value hi = std::move(stack.back());
        stack.pop_back();
        Value lo = std::move(stack.back());
        stack.pop_back();
        Value v = std::move(stack.back());
        stack.pop_back();
        if (v.is_null() || lo.is_null() || hi.is_null()) {
          stack.push_back(Value::Null());
        } else {
          bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
          stack.push_back(Value::Bool(ins.arg != 0 ? !in : in));
        }
        break;
      }
      case Op::kInList: {
        size_t count = static_cast<size_t>(ins.arg2);
        bool found = false;
        const Value& v = stack[stack.size() - count - 1];
        bool v_null = v.is_null();
        for (size_t i = stack.size() - count; i < stack.size(); ++i) {
          if (!v_null && !stack[i].is_null() && v == stack[i]) found = true;
        }
        stack.resize(stack.size() - count);
        stack.back() = v_null ? Value::Null()
                              : Value::Bool(ins.arg != 0 ? !found : found);
        break;
      }
      case Op::kIsNull: {
        Value& v = stack.back();
        bool is_null = v.is_null();
        v = Value::Bool(ins.arg != 0 ? !is_null : is_null);
        break;
      }
      case Op::kLike: {
        Value p = std::move(stack.back());
        stack.pop_back();
        Value v = std::move(stack.back());
        stack.pop_back();
        if (v.is_null() || p.is_null()) {
          stack.push_back(Value::Null());
        } else {
          bool m = LikeMatch(v.str(), p.str());
          stack.push_back(Value::Bool(ins.arg != 0 ? !m : m));
        }
        break;
      }
      case Op::kCase: {
        size_t whens = static_cast<size_t>(ins.arg2);
        bool has_else = ins.arg != 0;
        size_t total = 2 * whens + (has_else ? 1 : 0);
        size_t base = stack.size() - total;
        Value result = Value::Null();
        bool matched = false;
        for (size_t w = 0; w < whens && !matched; ++w) {
          const Value& cond = stack[base + 2 * w];
          if (!cond.is_null() && cond.bool_v()) {
            result = stack[base + 2 * w + 1];
            matched = true;
          }
        }
        if (!matched && has_else) result = stack[stack.size() - 1];
        stack.resize(base);
        stack.push_back(std::move(result));
        break;
      }
    }
  }
  SHARK_CHECK(stack.size() == 1);
  return std::move(stack.back());
}

}  // namespace shark
