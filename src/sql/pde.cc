#include "sql/pde.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace shark {

int ChooseNumReducers(uint64_t total_virtual_bytes, uint64_t target_bytes,
                      int num_buckets) {
  SHARK_CHECK(target_bytes > 0 && num_buckets > 0);
  uint64_t wanted = (total_virtual_bytes + target_bytes - 1) / target_bytes;
  if (wanted < 1) wanted = 1;
  if (wanted > static_cast<uint64_t>(num_buckets)) {
    wanted = static_cast<uint64_t>(num_buckets);
  }
  return static_cast<int>(wanted);
}

BucketAssignment CoalesceBuckets(const std::vector<uint64_t>& bucket_bytes,
                                 int num_reducers) {
  SHARK_CHECK(num_reducers >= 1);
  const int n = static_cast<int>(bucket_bytes.size());
  if (num_reducers > n) num_reducers = n;
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return bucket_bytes[static_cast<size_t>(a)] >
           bucket_bytes[static_cast<size_t>(b)];
  });
  BucketAssignment assignment(static_cast<size_t>(num_reducers));
  std::vector<uint64_t> load(static_cast<size_t>(num_reducers), 0);
  for (int bucket : order) {
    size_t best = 0;
    for (size_t r = 1; r < load.size(); ++r) {
      if (load[r] < load[best]) best = r;
    }
    assignment[best].push_back(bucket);
    load[best] += bucket_bytes[static_cast<size_t>(bucket)];
  }
  // Keep each reducer's bucket list ordered for determinism.
  for (auto& list : assignment) std::sort(list.begin(), list.end());
  return assignment;
}

uint64_t MaxReducerLoad(const std::vector<uint64_t>& bucket_bytes,
                        const BucketAssignment& assignment) {
  uint64_t max_load = 0;
  for (const auto& list : assignment) {
    uint64_t load = 0;
    for (int b : list) load += bucket_bytes[static_cast<size_t>(b)];
    max_load = std::max(max_load, load);
  }
  return max_load;
}

}  // namespace shark
