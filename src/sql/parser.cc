#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace shark {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatementTop() {
    Statement stmt;
    if (MatchKeyword("SELECT")) {
      --pos_;  // ParseSelect expects SELECT
      SHARK_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.kind = StatementKind::kSelect;
      stmt.select = select;
    } else if (MatchKeyword("CREATE")) {
      if (PeekKeyword("INDEX")) {
        SHARK_ASSIGN_OR_RETURN(auto create_index, ParseCreateIndex());
        stmt.kind = StatementKind::kCreateIndex;
        stmt.create_index = create_index;
      } else {
        SHARK_ASSIGN_OR_RETURN(auto create, ParseCreateTable());
        stmt.kind = StatementKind::kCreateTable;
        stmt.create_table = create;
      }
    } else if (MatchKeyword("DROP")) {
      if (PeekKeyword("INDEX")) {
        SHARK_ASSIGN_OR_RETURN(auto drop_index, ParseDropIndex());
        stmt.kind = StatementKind::kDropIndex;
        stmt.drop_index = drop_index;
      } else {
        SHARK_ASSIGN_OR_RETURN(auto drop, ParseDropTable());
        stmt.kind = StatementKind::kDropTable;
        stmt.drop_table = drop;
      }
    } else if (MatchKeyword("UNCACHE")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      auto uncache = std::make_shared<UncacheTableStmt>();
      SHARK_ASSIGN_OR_RETURN(uncache->name, ExpectIdentifier());
      stmt.kind = StatementKind::kUncacheTable;
      stmt.uncache_table = uncache;
    } else if (MatchKeyword("EXPLAIN")) {
      auto explain = std::make_shared<ExplainStmt>();
      explain->analyze = MatchKeyword("ANALYZE");
      if (!PeekKeyword("SELECT")) {
        return ErrorHere("expected SELECT after EXPLAIN");
      }
      SHARK_ASSIGN_OR_RETURN(explain->select, ParseSelect());
      stmt.kind = StatementKind::kExplain;
      stmt.explain = explain;
    } else if (MatchKeyword("ANALYZE")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      auto analyze = std::make_shared<AnalyzeTableStmt>();
      SHARK_ASSIGN_OR_RETURN(analyze->name, ExpectIdentifier());
      // Hive-compatible trailing clause; statistics are always per-column.
      if (MatchKeyword("COMPUTE")) {
        SHARK_RETURN_NOT_OK(ExpectKeyword("STATISTICS"));
        if (MatchKeyword("FOR")) {
          SHARK_RETURN_NOT_OK(ExpectKeyword("COLUMNS"));
        }
      }
      stmt.kind = StatementKind::kAnalyzeTable;
      stmt.analyze_table = analyze;
    } else {
      return ErrorHere(
          "expected SELECT, CREATE, DROP, UNCACHE, ANALYZE or EXPLAIN");
    }
    MatchSymbol(";");
    if (!AtEnd()) return ErrorHere("trailing input after statement");
    return stmt;
  }

  Result<ExprPtr> ParseExpressionTop() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return ErrorHere("trailing input after expression");
    return e;
  }

 private:
  // -- token helpers --------------------------------------------------------

  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(const char* kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }

  bool MatchSymbol(const char* sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) {
      return ErrorHere(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return ErrorHere(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected identifier near offset " +
                                std::to_string(Peek().position));
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Status ErrorHere(const std::string& message) const {
    return Status::ParseError(message + " near offset " +
                              std::to_string(Peek().position) +
                              (Peek().kind == TokenKind::kEnd
                                   ? " (end of input)"
                                   : " ('" + Peek().text + "')"));
  }

  bool IsReservedClauseKeyword(const std::string& word) const {
    static const char* kReserved[] = {
        "FROM",  "WHERE",  "GROUP",  "HAVING", "ORDER", "LIMIT",
        "JOIN",  "ON",     "AS",     "AND",    "OR",    "NOT",
        "UNION", "SELECT", "INNER",  "LEFT",   "RIGHT", "BY",
        "ASC",   "DESC",   "DISTRIBUTE", "CLUSTER", "SORT", "BETWEEN",
        "IN",    "LIKE",   "IS",     "NULL",   "CASE",  "WHEN",
        "THEN",  "ELSE",   "END",    "DISTINCT", "INTO"};
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  // -- statements -----------------------------------------------------------

  Result<std::shared_ptr<SelectStmt>> ParseSelect() {
    SHARK_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_shared<SelectStmt>();
    // Hive's SELECT INTO Temp (Pavlo benchmark) — accepted and ignored.
    if (MatchKeyword("INTO")) {
      SHARK_RETURN_NOT_OK(ExpectIdentifier().status());
    }
    if (MatchKeyword("DISTINCT")) stmt->distinct = true;
    // Select list.
    do {
      SHARK_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));

    SHARK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SHARK_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    // Comma-joins: FROM a, b WHERE a.x = b.y
    while (MatchSymbol(",")) {
      JoinClause j;
      SHARK_ASSIGN_OR_RETURN(j.table, ParseTableRef());
      j.condition = nullptr;  // keys recovered from WHERE by the analyzer
      stmt->joins.push_back(std::move(j));
    }
    while (PeekKeyword("JOIN") || PeekKeyword("INNER") ||
           PeekKeyword("LEFT") || PeekKeyword("RIGHT")) {
      JoinClause j;
      if (MatchKeyword("LEFT")) {
        j.type = JoinType::kLeftOuter;
        MatchKeyword("OUTER");
      } else if (MatchKeyword("RIGHT")) {
        j.type = JoinType::kRightOuter;
        MatchKeyword("OUTER");
      } else {
        MatchKeyword("INNER");
      }
      SHARK_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      SHARK_ASSIGN_OR_RETURN(j.table, ParseTableRef());
      SHARK_RETURN_NOT_OK(ExpectKeyword("ON"));
      SHARK_ASSIGN_OR_RETURN(j.condition, ParseExpr());
      stmt->joins.push_back(std::move(j));
    }
    if (MatchKeyword("WHERE")) {
      SHARK_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        SHARK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("HAVING")) {
      SHARK_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("DISTRIBUTE")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      SHARK_ASSIGN_OR_RETURN(stmt->distribute_by, ExpectIdentifier());
    }
    if (MatchKeyword("ORDER")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        SHARK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::ParseError("LIMIT expects an integer");
      }
      stmt->limit = Peek().int_value;
      ++pos_;
    }
    if (MatchKeyword("UNION")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("ALL"));
      SHARK_ASSIGN_OR_RETURN(stmt->union_all, ParseSelect());
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (MatchSymbol("*")) {
      item.star = true;
      return item;
    }
    // qualifier.*
    if (Peek().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "." &&
        Peek(2).kind == TokenKind::kSymbol && Peek(2).text == "*") {
      item.star = true;
      item.star_qualifier = Peek().text;
      pos_ += 3;
      return item;
    }
    SHARK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("AS")) {
      SHARK_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsReservedClauseKeyword(Peek().text)) {
      item.alias = Peek().text;
      ++pos_;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (MatchSymbol("(")) {
      SHARK_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
      SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
      MatchKeyword("AS");
      SHARK_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      return ref;
    }
    SHARK_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    if (MatchKeyword("AS")) {
      SHARK_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsReservedClauseKeyword(Peek().text)) {
      ref.alias = Peek().text;
      ++pos_;
    }
    return ref;
  }

  Result<std::shared_ptr<CreateTableStmt>> ParseCreateTable() {
    SHARK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_shared<CreateTableStmt>();
    SHARK_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    // Explicit schema: CREATE TABLE t (a BIGINT, b STRING ...)
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "(") {
      MatchSymbol("(");
      do {
        Field f;
        SHARK_ASSIGN_OR_RETURN(f.name, ExpectIdentifier());
        SHARK_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
        SHARK_ASSIGN_OR_RETURN(f.type, ParseTypeName(type_name));
        stmt->columns.push_back(std::move(f));
      } while (MatchSymbol(","));
      SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (MatchKeyword("TBLPROPERTIES")) {
      SHARK_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        if (Peek().kind != TokenKind::kString) {
          return ErrorHere("expected property name string");
        }
        std::string key = Peek().text;
        ++pos_;
        SHARK_RETURN_NOT_OK(ExpectSymbol("="));
        std::string value;
        if (Peek().kind == TokenKind::kString) {
          value = Peek().text;
          ++pos_;
        } else if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
          value = ToLower(Peek().text);
          ++pos_;
        } else {
          return ErrorHere("expected property value");
        }
        stmt->properties[key] = value;
      } while (MatchSymbol(","));
      SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (MatchKeyword("AS")) {
      SHARK_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    }
    if (stmt->select == nullptr && stmt->columns.empty()) {
      return ErrorHere("CREATE TABLE needs a schema or AS SELECT");
    }
    return stmt;
  }

  Result<TypeKind> ParseTypeName(const std::string& name) {
    if (EqualsIgnoreCase(name, "BIGINT") || EqualsIgnoreCase(name, "INT") ||
        EqualsIgnoreCase(name, "INTEGER") || EqualsIgnoreCase(name, "LONG")) {
      return TypeKind::kInt64;
    }
    if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "FLOAT")) {
      return TypeKind::kDouble;
    }
    if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "VARCHAR") ||
        EqualsIgnoreCase(name, "TEXT")) {
      return TypeKind::kString;
    }
    if (EqualsIgnoreCase(name, "BOOLEAN") || EqualsIgnoreCase(name, "BOOL")) {
      return TypeKind::kBool;
    }
    if (EqualsIgnoreCase(name, "DATE")) return TypeKind::kDate;
    return Status::ParseError("unknown type: " + name);
  }

  Result<std::shared_ptr<DropTableStmt>> ParseDropTable() {
    SHARK_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_shared<DropTableStmt>();
    if (MatchKeyword("IF")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    SHARK_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    return stmt;
  }

  // CREATE INDEX <name> ON <table> ( <column> )
  Result<std::shared_ptr<CreateIndexStmt>> ParseCreateIndex() {
    SHARK_RETURN_NOT_OK(ExpectKeyword("INDEX"));
    auto stmt = std::make_shared<CreateIndexStmt>();
    SHARK_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier());
    SHARK_RETURN_NOT_OK(ExpectKeyword("ON"));
    SHARK_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    SHARK_RETURN_NOT_OK(ExpectSymbol("("));
    SHARK_ASSIGN_OR_RETURN(stmt->column, ExpectIdentifier());
    SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
    return stmt;
  }

  // DROP INDEX [IF EXISTS] <name> [ON <table>]
  Result<std::shared_ptr<DropIndexStmt>> ParseDropIndex() {
    SHARK_RETURN_NOT_OK(ExpectKeyword("INDEX"));
    auto stmt = std::make_shared<DropIndexStmt>();
    if (MatchKeyword("IF")) {
      SHARK_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    SHARK_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier());
    if (MatchKeyword("ON")) {
      SHARK_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    }
    return stmt;
  }

  // -- expressions (precedence climbing) ------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      MatchKeyword("AND");
      SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return MakeUnary(UnaryOp::kNot, child);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // BETWEEN / IN / LIKE / IS, optionally negated.
    bool negated = false;
    size_t save = pos_;
    if (MatchKeyword("NOT")) {
      if (PeekKeyword("BETWEEN") || PeekKeyword("IN") || PeekKeyword("LIKE")) {
        negated = true;
      } else {
        pos_ = save;
      }
    }
    if (MatchKeyword("BETWEEN")) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      SHARK_RETURN_NOT_OK(ExpectKeyword("AND"));
      SHARK_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children = {left, lo, hi};
      return ExprPtr(e);
    }
    if (MatchKeyword("IN")) {
      SHARK_RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(left);
      do {
        SHARK_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->children.push_back(std::move(item));
      } while (MatchSymbol(","));
      SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
      return ExprPtr(e);
    }
    if (MatchKeyword("LIKE")) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kLike;
      e->negated = negated;
      e->children = {left, pattern};
      return ExprPtr(e);
    }
    if (MatchKeyword("IS")) {
      bool is_not = MatchKeyword("NOT");
      SHARK_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = is_not;
      e->children = {left};
      return ExprPtr(e);
    }
    // Plain comparison operators.
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<>", BinaryOp::kNe}, {"=", BinaryOp::kEq},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& m : kOps) {
      if (MatchSymbol(m.sym)) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeBinary(m.op, left, right);
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (MatchSymbol("+")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kAdd, left, right);
      } else if (MatchSymbol("-")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kSub, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SHARK_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      if (MatchSymbol("*")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kMul, left, right);
      } else if (MatchSymbol("/")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kDiv, left, right);
      } else if (MatchSymbol("%")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kMod, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      SHARK_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, child);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        ++pos_;
        return MakeLiteral(Value::Int64(t.int_value));
      }
      case TokenKind::kFloat: {
        ++pos_;
        return MakeLiteral(Value::Double(t.double_value));
      }
      case TokenKind::kString: {
        ++pos_;
        return MakeLiteral(Value::String(t.text));
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          ++pos_;
          SHARK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        return ErrorHere("unexpected symbol in expression");
      case TokenKind::kIdentifier:
        break;
      case TokenKind::kEnd:
        return ErrorHere("unexpected end of expression");
    }

    // Keyword literals.
    if (MatchKeyword("NULL")) return MakeLiteral(Value::Null());
    if (MatchKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
    if (MatchKeyword("FALSE")) return MakeLiteral(Value::Bool(false));

    // CASE WHEN ... THEN ... [ELSE ...] END
    if (MatchKeyword("CASE")) {
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kCase;
      while (MatchKeyword("WHEN")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        SHARK_RETURN_NOT_OK(ExpectKeyword("THEN"));
        SHARK_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) return ErrorHere("CASE needs at least one WHEN");
      if (MatchKeyword("ELSE")) {
        SHARK_ASSIGN_OR_RETURN(ExprPtr other, ParseExpr());
        e->children.push_back(std::move(other));
      }
      SHARK_RETURN_NOT_OK(ExpectKeyword("END"));
      return ExprPtr(e);
    }

    // DATE '...' / Date('...') literal.
    if (PeekKeyword("DATE")) {
      if (Peek(1).kind == TokenKind::kString) {
        std::string text = Peek(1).text;
        pos_ += 2;
        SHARK_ASSIGN_OR_RETURN(Value v, Value::ParseDate(text));
        return MakeLiteral(std::move(v));
      }
      if (Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(" &&
          Peek(2).kind == TokenKind::kString && Peek(3).kind == TokenKind::kSymbol &&
          Peek(3).text == ")") {
        std::string text = Peek(2).text;
        pos_ += 4;
        SHARK_ASSIGN_OR_RETURN(Value v, Value::ParseDate(text));
        return MakeLiteral(std::move(v));
      }
    }

    std::string first = t.text;
    ++pos_;

    // Function or aggregate call.
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "(") {
      ++pos_;
      auto e = std::make_shared<Expr>();
      e->name = ToUpper(first);
      bool is_agg = e->name == "COUNT" || e->name == "SUM" || e->name == "AVG" ||
                    e->name == "MIN" || e->name == "MAX";
      e->kind = is_agg ? ExprKind::kAggCall : ExprKind::kFuncCall;
      if (is_agg && MatchSymbol("*")) {
        e->star = true;
        SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
        return ExprPtr(e);
      }
      if (is_agg && MatchKeyword("DISTINCT")) e->distinct = true;
      if (!MatchSymbol(")")) {
        do {
          SHARK_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->children.push_back(std::move(arg));
        } while (MatchSymbol(","));
        SHARK_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return ExprPtr(e);
    }

    // Qualified or bare column reference.
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "." &&
        Peek(1).kind == TokenKind::kIdentifier) {
      std::string column = Peek(1).text;
      pos_ += 2;
      return MakeColumnRef(first, column);
    }
    return MakeColumnRef("", first);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  SHARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SHARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionTop();
}

}  // namespace shark
