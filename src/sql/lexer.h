#ifndef SHARK_SQL_LEXER_H_
#define SHARK_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace shark {

enum class TokenKind : uint8_t {
  kIdentifier,   // bare word (keywords are identifiers; parser matches them)
  kInteger,
  kFloat,
  kString,       // 'quoted' or "quoted"
  kSymbol,       // punctuation/operator: ( ) , . * + - / % = < > <= >= <> !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier text (original case) / symbol / literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // byte offset, for error messages
};

/// Tokenizes a SQL string. Comments (-- to end of line) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace shark

#endif  // SHARK_SQL_LEXER_H_
