#include "sql/planner/join_reorder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "sql/expr.h"

namespace shark {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTieEps = 1e-9;

int PopCount(uint32_t v) {
  int c = 0;
  for (; v != 0; v &= v - 1) ++c;
  return c;
}

}  // namespace

double JoinGraph::SubsetRows(uint32_t mask) const {
  double rows = 1.0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if ((mask >> i) & 1u) rows *= std::max(leaves[i].rows, 1.0);
  }
  for (const JoinGraphEdge& e : edges) {
    if (((mask >> e.a) & 1u) && ((mask >> e.b) & 1u)) rows *= e.selectivity;
  }
  for (const JoinGraphPred& p : preds) {
    if ((p.leaf_mask & mask) == p.leaf_mask) rows *= p.selectivity;
  }
  return std::max(rows, 1.0);
}

double JoinGraph::SubsetBytes(uint32_t mask) const {
  double width = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if ((mask >> i) & 1u) width += leaves[i].row_width;
  }
  return SubsetRows(mask) * std::max(width, 8.0);
}

bool JoinGraph::Connected(uint32_t mask, int leaf) const {
  for (const JoinGraphEdge& e : edges) {
    if (e.a == leaf && ((mask >> e.b) & 1u)) return true;
    if (e.b == leaf && ((mask >> e.a) & 1u)) return true;
  }
  return false;
}

double JoinOrderCost(const JoinGraph& g, const PlanCostEnv& env,
                     const std::vector<int>& order) {
  if (order.empty()) return -1.0;
  uint32_t mask = 1u << order[0];
  double cost = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    int l = order[i];
    if (!g.Connected(mask, l)) return -1.0;
    uint32_t next = mask | (1u << l);
    cost += JoinStepCostSeconds(env, g.SubsetRows(mask), g.SubsetBytes(mask),
                                g.leaves[static_cast<size_t>(l)].rows,
                                g.leaves[static_cast<size_t>(l)].bytes(),
                                g.SubsetRows(next));
    mask = next;
  }
  return cost;
}

JoinOrderResult ChooseJoinOrderDp(const JoinGraph& g, const PlanCostEnv& env,
                                  int required_first) {
  int n = static_cast<int>(g.leaves.size());
  if (n == 0) return {};
  if (n == 1) {
    if (required_first > 0) return {};
    return {{0}, 0.0};
  }
  if (n > 20) return ChooseJoinOrderGreedy(g, env, required_first);

  uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  std::vector<double> dp_cost(full + 1, kInf);
  std::vector<int> dp_last(full + 1, -1);
  std::vector<uint32_t> dp_prev(full + 1, 0);
  for (int i = 0; i < n; ++i) {
    if (required_first >= 0 && i != required_first) continue;
    dp_cost[1u << i] = 0.0;
  }
  // Extending a set only adds bits, so ascending mask order visits every
  // subset before its supersets.
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (dp_cost[mask] == kInf) continue;
    double base_rows = g.SubsetRows(mask);
    double base_bytes = g.SubsetBytes(mask);
    for (int l = 0; l < n; ++l) {
      if ((mask >> l) & 1u) continue;
      if (!g.Connected(mask, l)) continue;
      uint32_t next = mask | (1u << l);
      double step = JoinStepCostSeconds(
          env, base_rows, base_bytes, g.leaves[static_cast<size_t>(l)].rows,
          g.leaves[static_cast<size_t>(l)].bytes(), g.SubsetRows(next));
      double total = dp_cost[mask] + step;
      bool better = total < dp_cost[next] - kTieEps;
      // Tied plans keep the original written order: prefer the larger last
      // index (the original left-deep tree joins leaves in index order).
      bool tied_pref = std::abs(total - dp_cost[next]) <= kTieEps &&
                       l > dp_last[next];
      if (better || tied_pref) {
        dp_cost[next] = std::min(total, dp_cost[next]);
        dp_last[next] = l;
        dp_prev[next] = mask;
      }
    }
  }
  if (dp_cost[full] == kInf) return {};
  JoinOrderResult out;
  out.cost = dp_cost[full];
  uint32_t mask = full;
  while (PopCount(mask) > 1) {
    out.order.push_back(dp_last[mask]);
    mask = dp_prev[mask];
  }
  for (int i = 0; i < n; ++i) {
    if ((mask >> i) & 1u) out.order.push_back(i);
  }
  std::reverse(out.order.begin(), out.order.end());
  return out;
}

JoinOrderResult ChooseJoinOrderGreedy(const JoinGraph& g,
                                      const PlanCostEnv& env,
                                      int required_first) {
  int n = static_cast<int>(g.leaves.size());
  if (n == 0) return {};
  int start = required_first;
  if (start < 0) {
    start = 0;
    for (int i = 1; i < n; ++i) {
      if (g.leaves[static_cast<size_t>(i)].rows <
          g.leaves[static_cast<size_t>(start)].rows) {
        start = i;
      }
    }
  }
  std::vector<int> order = {start};
  uint32_t mask = 1u << start;
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    double best_rows = kInf;
    for (int l = 0; l < n; ++l) {
      if ((mask >> l) & 1u) continue;
      if (!g.Connected(mask, l)) continue;
      double rows = g.SubsetRows(mask | (1u << l));
      if (rows < best_rows) {
        best_rows = rows;
        best = l;
      }
    }
    if (best < 0) return {};  // disconnected graph
    order.push_back(best);
    mask |= 1u << best;
  }
  JoinOrderResult out;
  out.order = order;
  out.cost = JoinOrderCost(g, env, order);
  return out;
}

JoinOrderResult ChooseJoinOrderExhaustive(const JoinGraph& g,
                                          const PlanCostEnv& env,
                                          int required_first) {
  int n = static_cast<int>(g.leaves.size());
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  JoinOrderResult best;
  do {
    if (required_first >= 0 && perm[0] != required_first) continue;
    double cost = JoinOrderCost(g, env, perm);
    if (cost < 0) continue;  // disconnected somewhere along the prefix
    if (best.cost < 0 || cost < best.cost - kTieEps) {
      best.cost = cost;
      best.order = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

namespace {

/// Recursive spine flattening. Returns the subtree's output width; leaves,
/// raw (unpriced) edges and residuals accumulate in the collector.
struct SpineCollector {
  std::vector<PlanPtr> leaf_plans;
  std::vector<int> leaf_begin;
  struct RawEdge {
    int a_slot;
    int b_slot;
  };
  std::vector<RawEdge> raw_edges;
  std::vector<ExprPtr> raw_preds;  // bound to global slots
  bool ok = true;
};

bool AllKeysAreSlots(const LogicalPlan& join) {
  for (const ExprPtr& k : join.left_keys) {
    if (k->kind != ExprKind::kSlot) return false;
  }
  for (const ExprPtr& k : join.right_keys) {
    if (k->kind != ExprKind::kSlot) return false;
  }
  return true;
}

int Flatten(const PlanPtr& node, int base, SpineCollector* col) {
  if (node->kind == PlanKind::kJoin && node->join_type == JoinType::kInner &&
      AllKeysAreSlots(*node)) {
    int wl = Flatten(node->children[0], base, col);
    int wr = Flatten(node->children[1], base + wl, col);
    for (size_t i = 0; i < node->left_keys.size(); ++i) {
      col->raw_edges.push_back({base + node->left_keys[i]->slot,
                                base + wl + node->right_keys[i]->slot});
    }
    if (node->join_residual != nullptr) {
      std::map<int, int> shift;
      for (int s = 0; s < wl + wr; ++s) shift[s] = base + s;
      for (const ExprPtr& c : SplitConjuncts(node->join_residual)) {
        col->raw_preds.push_back(RemapSlots(*c, shift));
      }
    }
    return wl + wr;
  }
  col->leaf_plans.push_back(node);
  col->leaf_begin.push_back(base);
  return node->num_output_columns();
}

int LeafOfSlot(const std::vector<JoinGraphLeaf>& leaves, int slot) {
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (slot >= leaves[i].slot_begin &&
        slot < leaves[i].slot_begin + leaves[i].width) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

bool ExtractJoinGraph(const PlanPtr& root, const CardinalityEstimator& est,
                      JoinGraph* out) {
  if (root->kind != PlanKind::kJoin || root->join_type != JoinType::kInner ||
      !AllKeysAreSlots(*root)) {
    return false;
  }
  SpineCollector col;
  Flatten(root, 0, &col);
  if (col.leaf_plans.size() < 2 || col.leaf_plans.size() > 31) return false;

  JoinGraph g;
  std::vector<SlotStats> global_stats;
  for (size_t i = 0; i < col.leaf_plans.size(); ++i) {
    JoinGraphLeaf leaf;
    leaf.plan = col.leaf_plans[i];
    leaf.slot_begin = col.leaf_begin[i];
    leaf.width = leaf.plan->num_output_columns();
    std::vector<SlotStats> slots;
    leaf.rows = est.AnnotateWithSlots(leaf.plan.get(), &slots);
    leaf.row_width = CardinalityEstimator::RowWidth(slots);
    global_stats.insert(global_stats.end(), slots.begin(), slots.end());
    g.leaves.push_back(std::move(leaf));
  }

  for (const SpineCollector::RawEdge& re : col.raw_edges) {
    JoinGraphEdge e;
    e.a = LeafOfSlot(g.leaves, re.a_slot);
    e.b = LeafOfSlot(g.leaves, re.b_slot);
    if (e.a < 0 || e.b < 0 || e.a == e.b) return false;
    e.a_slot = re.a_slot;
    e.b_slot = re.b_slot;
    e.selectivity = CardinalityEstimator::JoinKeySelectivity(
        global_stats[static_cast<size_t>(re.a_slot)],
        global_stats[static_cast<size_t>(re.b_slot)],
        g.leaves[static_cast<size_t>(e.a)].rows,
        g.leaves[static_cast<size_t>(e.b)].rows);
    g.edges.push_back(e);
  }

  for (const ExprPtr& p : col.raw_preds) {
    JoinGraphPred pred;
    pred.expr = p;
    std::set<int> slots;
    CollectSlots(*p, &slots);
    for (int s : slots) {
      int l = LeafOfSlot(g.leaves, s);
      if (l < 0) return false;
      pred.leaf_mask |= 1u << l;
    }
    pred.selectivity = est.SelectivityOf(*p, global_stats);
    g.preds.push_back(std::move(pred));
  }

  *out = std::move(g);
  return true;
}

PlanPtr BuildOrderedJoinTree(const JoinGraph& g,
                             const std::vector<int>& order) {
  int n = static_cast<int>(g.leaves.size());
  if (static_cast<int>(order.size()) != n || n < 2) return nullptr;

  int total_width = 0;
  for (const JoinGraphLeaf& l : g.leaves) total_width += l.width;
  std::vector<Field> global_fields(static_cast<size_t>(total_width));
  for (const JoinGraphLeaf& l : g.leaves) {
    for (int w = 0; w < l.width; ++w) {
      global_fields[static_cast<size_t>(l.slot_begin + w)] =
          l.plan->output[static_cast<size_t>(w)];
    }
  }

  const JoinGraphLeaf& first = g.leaves[static_cast<size_t>(order[0])];
  PlanPtr composite = first.plan;
  std::vector<int> local_of_global(static_cast<size_t>(total_width), -1);
  for (int w = 0; w < first.width; ++w) {
    local_of_global[static_cast<size_t>(first.slot_begin + w)] = w;
  }
  uint32_t mask = 1u << order[0];
  std::vector<bool> pred_applied(g.preds.size(), false);

  for (int i = 1; i < n; ++i) {
    int li = order[i];
    const JoinGraphLeaf& leaf = g.leaves[static_cast<size_t>(li)];

    PlanPtr join = MakePlan(PlanKind::kJoin);
    join->join_type = JoinType::kInner;
    for (const JoinGraphEdge& e : g.edges) {
      int comp_slot, leaf_slot;
      if (e.a == li && ((mask >> e.b) & 1u)) {
        leaf_slot = e.a_slot;
        comp_slot = e.b_slot;
      } else if (e.b == li && ((mask >> e.a) & 1u)) {
        leaf_slot = e.b_slot;
        comp_slot = e.a_slot;
      } else {
        continue;
      }
      join->left_keys.push_back(
          MakeSlot(local_of_global[static_cast<size_t>(comp_slot)],
                   global_fields[static_cast<size_t>(comp_slot)].type));
      join->right_keys.push_back(
          MakeSlot(leaf_slot - leaf.slot_begin,
                   global_fields[static_cast<size_t>(leaf_slot)].type));
    }
    if (join->left_keys.empty()) return nullptr;  // would be a cross join

    join->children = {composite, leaf.plan};
    join->output = composite->output;
    join->output.insert(join->output.end(), leaf.plan->output.begin(),
                        leaf.plan->output.end());

    int comp_width = composite->num_output_columns();
    for (int w = 0; w < leaf.width; ++w) {
      local_of_global[static_cast<size_t>(leaf.slot_begin + w)] =
          comp_width + w;
    }
    mask |= 1u << li;

    std::vector<ExprPtr> residuals;
    for (size_t p = 0; p < g.preds.size(); ++p) {
      if (pred_applied[p]) continue;
      if ((g.preds[p].leaf_mask & mask) != g.preds[p].leaf_mask) continue;
      pred_applied[p] = true;
      std::map<int, int> remap;
      std::set<int> slots;
      CollectSlots(*g.preds[p].expr, &slots);
      for (int s : slots) {
        remap[s] = local_of_global[static_cast<size_t>(s)];
      }
      residuals.push_back(RemapSlots(*g.preds[p].expr, remap));
    }
    if (!residuals.empty()) {
      join->join_residual = CombineConjuncts(residuals);
    }
    composite = join;
  }

  bool identity = true;
  for (int s = 0; s < total_width; ++s) {
    if (local_of_global[static_cast<size_t>(s)] != s) {
      identity = false;
      break;
    }
  }
  if (identity) return composite;

  // Restore the original column order so the reordered tree is a drop-in
  // replacement for the spine it replaces.
  PlanPtr project = MakePlan(PlanKind::kProject);
  project->children = {composite};
  project->output = global_fields;
  for (int s = 0; s < total_width; ++s) {
    project->project_exprs.push_back(
        MakeSlot(local_of_global[static_cast<size_t>(s)],
                 global_fields[static_cast<size_t>(s)].type));
  }
  return project;
}

PlanPtr ReorderJoins(PlanPtr plan, const CardinalityEstimator& est,
                     const PlanCostEnv& env, int dp_max_relations,
                     int* reordered) {
  if (plan->kind == PlanKind::kJoin && plan->join_type == JoinType::kInner) {
    JoinGraph g;
    if (ExtractJoinGraph(plan, est, &g) && g.leaves.size() >= 3) {
      JoinOrderResult r =
          static_cast<int>(g.leaves.size()) <= dp_max_relations
              ? ChooseJoinOrderDp(g, env)
              : ChooseJoinOrderGreedy(g, env);
      bool identity = true;
      for (size_t i = 0; i < r.order.size(); ++i) {
        if (r.order[i] != static_cast<int>(i)) {
          identity = false;
          break;
        }
      }
      if (r.cost >= 0 && !identity) {
        for (JoinGraphLeaf& leaf : g.leaves) {
          leaf.plan =
              ReorderJoins(leaf.plan, est, env, dp_max_relations, reordered);
        }
        PlanPtr rebuilt = BuildOrderedJoinTree(g, r.order);
        if (rebuilt != nullptr) {
          if (reordered != nullptr) ++*reordered;
          return rebuilt;
        }
      }
    }
  }
  for (PlanPtr& c : plan->children) {
    c = ReorderJoins(c, est, env, dp_max_relations, reordered);
  }
  return plan;
}

}  // namespace shark
