#ifndef SHARK_SQL_PLANNER_RULES_H_
#define SHARK_SQL_PLANNER_RULES_H_

#include "sql/expr.h"
#include "sql/logical_plan.h"

namespace shark {

/// Phase one of the planner: the rewrite-rule engine (the static half of
/// Shark's optimizer, §2.4) — constant folding, predicate pushdown (through
/// projects and joins, into scans where map pruning consumes it), and column
/// pruning (the scan reads only needed columns from the columnar store).
/// Rules are semantics-preserving and run before cost-based join reordering.
PlanPtr ApplyRewriteRules(PlanPtr plan, const UdfRegistry* udfs);

/// Re-runs only the column-pruning rule (used after join reordering changes
/// the slot layout above the scans).
void PruneAllColumns(LogicalPlan* plan);

struct PlanCostEnv;

/// Sargability rule: rewrites Scan nodes whose pushed predicate contains
/// `=`, `<`, `<=`, `>`, `>=` or BETWEEN conjuncts (closed under AND) on an
/// indexed column of a cached table into IndexRangeScan nodes — but only
/// when the cost model says the B+-tree probe + row gather beats the
/// columnar scan for the estimated selectivity. The full scan predicate is
/// kept as a residual filter, so results are identical either way. Returns
/// the number of scans converted.
int ApplyIndexScans(PlanPtr* plan, const PlanCostEnv& env);

/// Back-compat alias for callers that only want rule-based optimization.
inline PlanPtr Optimize(PlanPtr plan, const UdfRegistry* udfs) {
  return ApplyRewriteRules(std::move(plan), udfs);
}

}  // namespace shark

#endif  // SHARK_SQL_PLANNER_RULES_H_
