#include "sql/planner/planner.h"

#include "sql/planner/join_reorder.h"
#include "sql/stats/cardinality_estimator.h"

namespace shark {

PlanPtr PlanQuery(PlanPtr plan, const UdfRegistry* udfs,
                  const PlanCostEnv& env, const PlannerOptions& options) {
  plan = ApplyRewriteRules(std::move(plan), udfs);
  CardinalityEstimator estimator(env.catalog);
  if (options.cbo && !options.force_left_deep) {
    int reordered = 0;
    plan = ReorderJoins(std::move(plan), estimator, env,
                        options.dp_max_relations, &reordered);
    if (reordered > 0) {
      // Reordering changed the slot layout above the scans; re-derive the
      // needed-column sets.
      PruneAllColumns(plan.get());
    }
  }
  if (options.use_indexes) {
    // After reordering (scan positions are final), give each scan its shot
    // at an index range probe; the rule costs both alternatives itself.
    ApplyIndexScans(&plan, env);
  }
  estimator.Annotate(plan.get());
  CostPlan(plan.get(), env);
  return plan;
}

}  // namespace shark
