#include "sql/planner/rules.h"

#include <map>
#include <set>

#include "common/logging.h"

namespace shark {

namespace {

bool IsFoldable(const Expr& e, const UdfRegistry* udfs) {
  switch (e.kind) {
    case ExprKind::kSlot:
    case ExprKind::kColumnRef:
    case ExprKind::kAggCall:
      return false;
    case ExprKind::kFuncCall:
      // UDFs may be non-deterministic; only fold builtins.
      if (udfs != nullptr && udfs->Lookup(e.name) != nullptr) return false;
      break;
    default:
      break;
  }
  for (const auto& c : e.children) {
    if (!IsFoldable(*c, udfs)) return false;
  }
  return true;
}

ExprPtr FoldConstants(const ExprPtr& e, const UdfRegistry* udfs) {
  if (e->kind == ExprKind::kLiteral) return e;
  if (IsFoldable(*e, udfs)) {
    Row empty;
    Value v = EvalExpr(*e, empty, udfs);
    ExprPtr lit = MakeLiteral(std::move(v));
    lit->type = e->type;
    return lit;
  }
  ExprPtr out = CloneExpr(*e);
  for (auto& c : out->children) c = FoldConstants(c, udfs);
  return out;
}

void FoldPlanConstants(LogicalPlan* plan, const UdfRegistry* udfs) {
  auto fold = [&](ExprPtr& e) {
    if (e != nullptr) e = FoldConstants(e, udfs);
  };
  fold(plan->scan_predicate);
  fold(plan->predicate);
  for (auto& e : plan->project_exprs) fold(e);
  for (auto& e : plan->group_exprs) fold(e);
  for (auto& call : plan->agg_calls) {
    for (auto& e : call.args) fold(e);
  }
  for (auto& e : plan->left_keys) fold(e);
  for (auto& e : plan->right_keys) fold(e);
  fold(plan->join_residual);
  for (auto& e : plan->sort_exprs) fold(e);
  for (auto& c : plan->children) FoldPlanConstants(c.get(), udfs);
}

/// Maximum slot (exclusive) referenced by an expression; 0 if none.
int MaxSlotBound(const Expr& e) {
  std::set<int> slots;
  CollectSlots(e, &slots);
  return slots.empty() ? 0 : *slots.rbegin() + 1;
}

int MinSlot(const Expr& e) {
  std::set<int> slots;
  CollectSlots(e, &slots);
  return slots.empty() ? 1 << 30 : *slots.begin();
}

/// Attempts to rewrite a conjunct over a Project's input: succeeds only when
/// every referenced project expression is itself a plain slot.
bool RewriteThroughProject(const ExprPtr& conj,
                           const std::vector<ExprPtr>& project_exprs,
                           ExprPtr* out) {
  std::set<int> slots;
  CollectSlots(*conj, &slots);
  std::map<int, int> mapping;
  for (int s : slots) {
    if (s >= static_cast<int>(project_exprs.size())) return false;
    const Expr& pe = *project_exprs[static_cast<size_t>(s)];
    if (pe.kind != ExprKind::kSlot) return false;
    mapping[s] = pe.slot;
  }
  *out = RemapSlots(*conj, mapping);
  return true;
}

/// Pushes filter conjuncts as deep as they can go. `conjuncts` arrive bound
/// to `plan`'s output; whatever cannot be pushed into `plan` is returned to
/// the caller to re-wrap as a Filter above it.
PlanPtr PushPredicates(PlanPtr plan, std::vector<ExprPtr> conjuncts);

PlanPtr WrapFilter(PlanPtr plan, const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return plan;
  PlanPtr filter = MakePlan(PlanKind::kFilter);
  filter->children = {plan};
  filter->output = plan->output;
  filter->predicate = CombineConjuncts(conjuncts);
  return filter;
}

PlanPtr PushPredicates(PlanPtr plan, std::vector<ExprPtr> conjuncts) {
  switch (plan->kind) {
    case PlanKind::kFilter: {
      // Merge this filter's conjuncts with the incoming ones and push.
      std::vector<ExprPtr> merged = SplitConjuncts(plan->predicate);
      for (auto& c : conjuncts) merged.push_back(c);
      return PushPredicates(plan->children[0], std::move(merged));
    }
    case PlanKind::kScan: {
      std::vector<ExprPtr> all = SplitConjuncts(plan->scan_predicate);
      for (auto& c : conjuncts) all.push_back(c);
      plan->scan_predicate = CombineConjuncts(all);
      return plan;
    }
    case PlanKind::kProject: {
      std::vector<ExprPtr> pushable;
      std::vector<ExprPtr> kept;
      for (const ExprPtr& c : conjuncts) {
        ExprPtr rewritten;
        if (RewriteThroughProject(c, plan->project_exprs, &rewritten)) {
          pushable.push_back(rewritten);
        } else {
          kept.push_back(c);
        }
      }
      plan->children[0] = PushPredicates(plan->children[0], std::move(pushable));
      return WrapFilter(plan, kept);
    }
    case PlanKind::kJoin: {
      int left_width = plan->children[0]->num_output_columns();
      // Pushing a predicate below an outer join's null-extended side would
      // change results; only the preserved side accepts pushdown.
      bool can_push_left = plan->join_type != JoinType::kRightOuter;
      bool can_push_right = plan->join_type != JoinType::kLeftOuter;
      std::vector<ExprPtr> left_push, right_push, kept;
      for (const ExprPtr& c : conjuncts) {
        int max_bound = MaxSlotBound(*c);
        int min_slot = MinSlot(*c);
        if (max_bound <= left_width && can_push_left) {
          left_push.push_back(c);
        } else if (min_slot >= left_width && can_push_right) {
          std::map<int, int> shift;
          for (int s = left_width; s < left_width + plan->children[1]->num_output_columns();
               ++s) {
            shift[s] = s - left_width;
          }
          right_push.push_back(RemapSlots(*c, shift));
        } else {
          kept.push_back(c);
        }
      }
      plan->children[0] = PushPredicates(plan->children[0], std::move(left_push));
      plan->children[1] = PushPredicates(plan->children[1], std::move(right_push));
      return WrapFilter(plan, kept);
    }
    case PlanKind::kUnion: {
      // A predicate over a UNION ALL applies to each branch.
      for (auto& child : plan->children) {
        std::vector<ExprPtr> copy;
        for (const ExprPtr& c : conjuncts) copy.push_back(CloneExpr(*c));
        child = PushPredicates(child, std::move(copy));
      }
      return plan;
    }
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit: {
      // Predicates do not commute with limits; aggregate/having predicates
      // stay above (group-key-only pushdown is a possible refinement).
      plan->children[0] = PushPredicates(plan->children[0], {});
      return WrapFilter(plan, conjuncts);
    }
  }
  return WrapFilter(plan, conjuncts);
}

/// Column pruning: propagates the set of needed output slots down the tree;
/// Scan nodes end up reading only the columns some ancestor touches.
void PruneColumns(LogicalPlan* plan, const std::set<int>& needed) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      std::set<int> cols = needed;
      if (plan->scan_predicate != nullptr) {
        CollectSlots(*plan->scan_predicate, &cols);
      }
      plan->needed_columns.assign(cols.begin(), cols.end());
      return;
    }
    case PlanKind::kFilter: {
      std::set<int> child_needed = needed;
      CollectSlots(*plan->predicate, &child_needed);
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kProject: {
      std::set<int> child_needed;
      for (int i : needed) {
        if (i < static_cast<int>(plan->project_exprs.size())) {
          CollectSlots(*plan->project_exprs[static_cast<size_t>(i)],
                       &child_needed);
        }
      }
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kAggregate: {
      std::set<int> child_needed;
      for (const auto& g : plan->group_exprs) CollectSlots(*g, &child_needed);
      for (const auto& call : plan->agg_calls) {
        for (const auto& a : call.args) CollectSlots(*a, &child_needed);
      }
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kJoin: {
      int left_width = plan->children[0]->num_output_columns();
      std::set<int> left_needed, right_needed;
      auto add_slot = [&](int s) {
        if (s < left_width) {
          left_needed.insert(s);
        } else {
          right_needed.insert(s - left_width);
        }
      };
      for (int s : needed) add_slot(s);
      if (plan->join_residual != nullptr) {
        std::set<int> rslots;
        CollectSlots(*plan->join_residual, &rslots);
        for (int s : rslots) add_slot(s);
      }
      for (const auto& k : plan->left_keys) {
        std::set<int> s;
        CollectSlots(*k, &s);
        left_needed.insert(s.begin(), s.end());
      }
      for (const auto& k : plan->right_keys) {
        std::set<int> s;
        CollectSlots(*k, &s);
        right_needed.insert(s.begin(), s.end());
      }
      PruneColumns(plan->children[0].get(), left_needed);
      PruneColumns(plan->children[1].get(), right_needed);
      return;
    }
    case PlanKind::kSort: {
      std::set<int> child_needed = needed;
      for (const auto& e : plan->sort_exprs) CollectSlots(*e, &child_needed);
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kLimit:
      PruneColumns(plan->children[0].get(), needed);
      return;
    case PlanKind::kUnion:
      for (auto& c : plan->children) PruneColumns(c.get(), needed);
      return;
  }
}

}  // namespace

void PruneAllColumns(LogicalPlan* plan) {
  std::set<int> all;
  for (int i = 0; i < plan->num_output_columns(); ++i) all.insert(i);
  PruneColumns(plan, all);
}

PlanPtr ApplyRewriteRules(PlanPtr plan, const UdfRegistry* udfs) {
  FoldPlanConstants(plan.get(), udfs);
  plan = PushPredicates(plan, {});
  PruneAllColumns(plan.get());
  return plan;
}

}  // namespace shark
