#include "sql/planner/rules.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "sql/catalog.h"
#include "sql/stats/cardinality_estimator.h"
#include "sql/stats/plan_cost.h"

namespace shark {

namespace {

bool IsFoldable(const Expr& e, const UdfRegistry* udfs) {
  switch (e.kind) {
    case ExprKind::kSlot:
    case ExprKind::kColumnRef:
    case ExprKind::kAggCall:
      return false;
    case ExprKind::kFuncCall:
      // UDFs may be non-deterministic; only fold builtins.
      if (udfs != nullptr && udfs->Lookup(e.name) != nullptr) return false;
      break;
    default:
      break;
  }
  for (const auto& c : e.children) {
    if (!IsFoldable(*c, udfs)) return false;
  }
  return true;
}

ExprPtr FoldConstants(const ExprPtr& e, const UdfRegistry* udfs) {
  if (e->kind == ExprKind::kLiteral) return e;
  if (IsFoldable(*e, udfs)) {
    Row empty;
    Value v = EvalExpr(*e, empty, udfs);
    ExprPtr lit = MakeLiteral(std::move(v));
    lit->type = e->type;
    return lit;
  }
  ExprPtr out = CloneExpr(*e);
  for (auto& c : out->children) c = FoldConstants(c, udfs);
  return out;
}

void FoldPlanConstants(LogicalPlan* plan, const UdfRegistry* udfs) {
  auto fold = [&](ExprPtr& e) {
    if (e != nullptr) e = FoldConstants(e, udfs);
  };
  fold(plan->scan_predicate);
  fold(plan->predicate);
  for (auto& e : plan->project_exprs) fold(e);
  for (auto& e : plan->group_exprs) fold(e);
  for (auto& call : plan->agg_calls) {
    for (auto& e : call.args) fold(e);
  }
  for (auto& e : plan->left_keys) fold(e);
  for (auto& e : plan->right_keys) fold(e);
  fold(plan->join_residual);
  for (auto& e : plan->sort_exprs) fold(e);
  for (auto& c : plan->children) FoldPlanConstants(c.get(), udfs);
}

/// Maximum slot (exclusive) referenced by an expression; 0 if none.
int MaxSlotBound(const Expr& e) {
  std::set<int> slots;
  CollectSlots(e, &slots);
  return slots.empty() ? 0 : *slots.rbegin() + 1;
}

int MinSlot(const Expr& e) {
  std::set<int> slots;
  CollectSlots(e, &slots);
  return slots.empty() ? 1 << 30 : *slots.begin();
}

/// Attempts to rewrite a conjunct over a Project's input: succeeds only when
/// every referenced project expression is itself a plain slot.
bool RewriteThroughProject(const ExprPtr& conj,
                           const std::vector<ExprPtr>& project_exprs,
                           ExprPtr* out) {
  std::set<int> slots;
  CollectSlots(*conj, &slots);
  std::map<int, int> mapping;
  for (int s : slots) {
    if (s >= static_cast<int>(project_exprs.size())) return false;
    const Expr& pe = *project_exprs[static_cast<size_t>(s)];
    if (pe.kind != ExprKind::kSlot) return false;
    mapping[s] = pe.slot;
  }
  *out = RemapSlots(*conj, mapping);
  return true;
}

/// Pushes filter conjuncts as deep as they can go. `conjuncts` arrive bound
/// to `plan`'s output; whatever cannot be pushed into `plan` is returned to
/// the caller to re-wrap as a Filter above it.
PlanPtr PushPredicates(PlanPtr plan, std::vector<ExprPtr> conjuncts);

PlanPtr WrapFilter(PlanPtr plan, const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return plan;
  PlanPtr filter = MakePlan(PlanKind::kFilter);
  filter->children = {plan};
  filter->output = plan->output;
  filter->predicate = CombineConjuncts(conjuncts);
  return filter;
}

PlanPtr PushPredicates(PlanPtr plan, std::vector<ExprPtr> conjuncts) {
  switch (plan->kind) {
    case PlanKind::kFilter: {
      // Merge this filter's conjuncts with the incoming ones and push.
      std::vector<ExprPtr> merged = SplitConjuncts(plan->predicate);
      for (auto& c : conjuncts) merged.push_back(c);
      return PushPredicates(plan->children[0], std::move(merged));
    }
    case PlanKind::kScan:
    case PlanKind::kIndexScan: {
      // An extra conjunct only narrows the result, so an index scan's probed
      // range stays a superset of the (now stricter) residual predicate.
      std::vector<ExprPtr> all = SplitConjuncts(plan->scan_predicate);
      for (auto& c : conjuncts) all.push_back(c);
      plan->scan_predicate = CombineConjuncts(all);
      return plan;
    }
    case PlanKind::kProject: {
      std::vector<ExprPtr> pushable;
      std::vector<ExprPtr> kept;
      for (const ExprPtr& c : conjuncts) {
        ExprPtr rewritten;
        if (RewriteThroughProject(c, plan->project_exprs, &rewritten)) {
          pushable.push_back(rewritten);
        } else {
          kept.push_back(c);
        }
      }
      plan->children[0] = PushPredicates(plan->children[0], std::move(pushable));
      return WrapFilter(plan, kept);
    }
    case PlanKind::kJoin: {
      int left_width = plan->children[0]->num_output_columns();
      // Pushing a predicate below an outer join's null-extended side would
      // change results; only the preserved side accepts pushdown.
      bool can_push_left = plan->join_type != JoinType::kRightOuter;
      bool can_push_right = plan->join_type != JoinType::kLeftOuter;
      std::vector<ExprPtr> left_push, right_push, kept;
      for (const ExprPtr& c : conjuncts) {
        int max_bound = MaxSlotBound(*c);
        int min_slot = MinSlot(*c);
        if (max_bound <= left_width && can_push_left) {
          left_push.push_back(c);
        } else if (min_slot >= left_width && can_push_right) {
          std::map<int, int> shift;
          for (int s = left_width; s < left_width + plan->children[1]->num_output_columns();
               ++s) {
            shift[s] = s - left_width;
          }
          right_push.push_back(RemapSlots(*c, shift));
        } else {
          kept.push_back(c);
        }
      }
      plan->children[0] = PushPredicates(plan->children[0], std::move(left_push));
      plan->children[1] = PushPredicates(plan->children[1], std::move(right_push));
      return WrapFilter(plan, kept);
    }
    case PlanKind::kUnion: {
      // A predicate over a UNION ALL applies to each branch.
      for (auto& child : plan->children) {
        std::vector<ExprPtr> copy;
        for (const ExprPtr& c : conjuncts) copy.push_back(CloneExpr(*c));
        child = PushPredicates(child, std::move(copy));
      }
      return plan;
    }
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit: {
      // Predicates do not commute with limits; aggregate/having predicates
      // stay above (group-key-only pushdown is a possible refinement).
      plan->children[0] = PushPredicates(plan->children[0], {});
      return WrapFilter(plan, conjuncts);
    }
  }
  return WrapFilter(plan, conjuncts);
}

/// Column pruning: propagates the set of needed output slots down the tree;
/// Scan nodes end up reading only the columns some ancestor touches.
void PruneColumns(LogicalPlan* plan, const std::set<int>& needed) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      std::set<int> cols = needed;
      if (plan->scan_predicate != nullptr) {
        CollectSlots(*plan->scan_predicate, &cols);
      }
      plan->needed_columns.assign(cols.begin(), cols.end());
      return;
    }
    case PlanKind::kIndexScan: {
      std::set<int> cols = needed;
      if (plan->scan_predicate != nullptr) {
        CollectSlots(*plan->scan_predicate, &cols);
      }
      if (plan->index_column >= 0) cols.insert(plan->index_column);
      plan->needed_columns.assign(cols.begin(), cols.end());
      return;
    }
    case PlanKind::kFilter: {
      std::set<int> child_needed = needed;
      CollectSlots(*plan->predicate, &child_needed);
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kProject: {
      std::set<int> child_needed;
      for (int i : needed) {
        if (i < static_cast<int>(plan->project_exprs.size())) {
          CollectSlots(*plan->project_exprs[static_cast<size_t>(i)],
                       &child_needed);
        }
      }
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kAggregate: {
      std::set<int> child_needed;
      for (const auto& g : plan->group_exprs) CollectSlots(*g, &child_needed);
      for (const auto& call : plan->agg_calls) {
        for (const auto& a : call.args) CollectSlots(*a, &child_needed);
      }
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kJoin: {
      int left_width = plan->children[0]->num_output_columns();
      std::set<int> left_needed, right_needed;
      auto add_slot = [&](int s) {
        if (s < left_width) {
          left_needed.insert(s);
        } else {
          right_needed.insert(s - left_width);
        }
      };
      for (int s : needed) add_slot(s);
      if (plan->join_residual != nullptr) {
        std::set<int> rslots;
        CollectSlots(*plan->join_residual, &rslots);
        for (int s : rslots) add_slot(s);
      }
      for (const auto& k : plan->left_keys) {
        std::set<int> s;
        CollectSlots(*k, &s);
        left_needed.insert(s.begin(), s.end());
      }
      for (const auto& k : plan->right_keys) {
        std::set<int> s;
        CollectSlots(*k, &s);
        right_needed.insert(s.begin(), s.end());
      }
      PruneColumns(plan->children[0].get(), left_needed);
      PruneColumns(plan->children[1].get(), right_needed);
      return;
    }
    case PlanKind::kSort: {
      std::set<int> child_needed = needed;
      for (const auto& e : plan->sort_exprs) CollectSlots(*e, &child_needed);
      PruneColumns(plan->children[0].get(), child_needed);
      return;
    }
    case PlanKind::kLimit:
      PruneColumns(plan->children[0].get(), needed);
      return;
    case PlanKind::kUnion:
      for (auto& c : plan->children) PruneColumns(c.get(), needed);
      return;
  }
}

}  // namespace

void PruneAllColumns(LogicalPlan* plan) {
  std::set<int> all;
  for (int i = 0; i < plan->num_output_columns(); ++i) all.insert(i);
  PruneColumns(plan, all);
}

PlanPtr ApplyRewriteRules(PlanPtr plan, const UdfRegistry* udfs) {
  FoldPlanConstants(plan.get(), udfs);
  plan = PushPredicates(plan, {});
  PruneAllColumns(plan.get());
  return plan;
}

namespace {

/// Accumulated sargable range on one indexed column: the intersection of
/// every `=`, `<`, `<=`, `>`, `>=` and BETWEEN conjunct, closed under AND.
/// Bounds are literal values compared with Value::Compare, so tightening is
/// exact for any key type the index can hold.
struct SargRange {
  bool has_lo = false, has_hi = false;
  Value lo, hi;
  bool lo_inclusive = true, hi_inclusive = true;
  int conjuncts = 0;

  void TightenLo(const Value& v, bool inclusive) {
    if (!has_lo) {
      has_lo = true;
      lo = v;
      lo_inclusive = inclusive;
    } else {
      int c = v.Compare(lo);
      if (c > 0 || (c == 0 && !inclusive)) {
        lo = v;
        lo_inclusive = inclusive;
      }
    }
    conjuncts++;
  }
  void TightenHi(const Value& v, bool inclusive) {
    if (!has_hi) {
      has_hi = true;
      hi = v;
      hi_inclusive = inclusive;
    } else {
      int c = v.Compare(hi);
      if (c < 0 || (c == 0 && !inclusive)) {
        hi = v;
        hi_inclusive = inclusive;
      }
    }
    conjuncts++;
  }
};

/// Folds one conjunct into `range` when it is a sargable comparison between
/// slot `column` and a non-NULL literal. NULL-literal comparisons never
/// match any row, so they contribute nothing to the range (the residual
/// filter rejects everything anyway).
void AccumulateSargable(const Expr& conj, int column, SargRange* range) {
  if (conj.kind == ExprKind::kBetween && !conj.negated &&
      conj.children[0]->kind == ExprKind::kSlot &&
      conj.children[0]->slot == column &&
      conj.children[1]->kind == ExprKind::kLiteral &&
      conj.children[2]->kind == ExprKind::kLiteral &&
      !conj.children[1]->literal.is_null() &&
      !conj.children[2]->literal.is_null()) {
    range->TightenLo(conj.children[1]->literal, true);
    range->TightenHi(conj.children[2]->literal, true);
    return;
  }
  if (conj.kind != ExprKind::kBinary) return;
  BinaryOp op = conj.binary_op;
  if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
      op != BinaryOp::kGt && op != BinaryOp::kGe) {
    return;
  }
  const Expr& l = *conj.children[0];
  const Expr& r = *conj.children[1];
  const Expr* lit = nullptr;
  if (l.kind == ExprKind::kSlot && l.slot == column &&
      r.kind == ExprKind::kLiteral) {
    lit = &r;
  } else if (r.kind == ExprKind::kSlot && r.slot == column &&
             l.kind == ExprKind::kLiteral) {
    lit = &l;
    // Mirror `lit OP slot` into `slot OP' lit`.
    if (op == BinaryOp::kLt) {
      op = BinaryOp::kGt;
    } else if (op == BinaryOp::kLe) {
      op = BinaryOp::kGe;
    } else if (op == BinaryOp::kGt) {
      op = BinaryOp::kLt;
    } else if (op == BinaryOp::kGe) {
      op = BinaryOp::kLe;
    }
  } else {
    return;
  }
  if (lit->literal.is_null()) return;
  switch (op) {
    case BinaryOp::kEq:
      range->TightenLo(lit->literal, true);
      range->TightenHi(lit->literal, true);
      break;
    case BinaryOp::kLt:
      range->TightenHi(lit->literal, false);
      break;
    case BinaryOp::kLe:
      range->TightenHi(lit->literal, true);
      break;
    case BinaryOp::kGt:
      range->TightenLo(lit->literal, false);
      break;
    case BinaryOp::kGe:
      range->TightenLo(lit->literal, true);
      break;
    default:
      break;
  }
}

/// Builds the IndexRangeScan alternative for `scan`, or null when no index
/// applies. The node keeps the FULL scan predicate as residual: the probed
/// range only has to over-approximate it, which sidesteps every NULL/NaN
/// ordering subtlety — the residual re-check guarantees result identity
/// with the plain scan.
PlanPtr MakeIndexScanCandidate(const LogicalPlan& scan, const Catalog& catalog) {
  if (scan.scan_predicate == nullptr) return nullptr;
  auto info = catalog.Get(scan.table);
  if (!info.ok() || !(*info)->is_cached() || (*info)->indexes.empty()) {
    return nullptr;
  }
  std::vector<ExprPtr> conjuncts = SplitConjuncts(scan.scan_predicate);
  // First indexed column (in index-name order) with a sargable range wins;
  // multi-index intersection is a possible refinement.
  for (const auto& [key, index] : (*info)->indexes) {
    SargRange range;
    for (const ExprPtr& c : conjuncts) {
      AccumulateSargable(*c, index.column, &range);
    }
    if (!range.has_lo && !range.has_hi) continue;
    PlanPtr node = MakePlan(PlanKind::kIndexScan);
    node->output = scan.output;
    node->table = scan.table;
    node->scan_predicate = scan.scan_predicate;
    node->needed_columns = scan.needed_columns;
    node->index_name = index.name;
    node->index_column = index.column;
    if (range.has_lo) node->index_lo = MakeLiteral(range.lo);
    if (range.has_hi) node->index_hi = MakeLiteral(range.hi);
    node->index_lo_inclusive = range.lo_inclusive;
    node->index_hi_inclusive = range.hi_inclusive;
    return node;
  }
  return nullptr;
}

int ApplyIndexScansImpl(PlanPtr* slot, const PlanCostEnv& env,
                        const CardinalityEstimator& estimator) {
  int converted = 0;
  for (PlanPtr& child : (*slot)->children) {
    converted += ApplyIndexScansImpl(&child, env, estimator);
  }
  if ((*slot)->kind != PlanKind::kScan || env.catalog == nullptr) {
    return converted;
  }
  PlanPtr candidate = MakeIndexScanCandidate(**slot, *env.catalog);
  if (candidate == nullptr) return converted;
  // Cost both leaf alternatives under the simulator's own model; the index
  // only wins when the probe + gather beats decoding the columnar region,
  // so low-selectivity predicates keep the scan.
  estimator.Annotate(slot->get());
  CostPlan(slot->get(), env);
  estimator.Annotate(candidate.get());
  CostPlan(candidate.get(), env);
  if (candidate->est_cost_sec < (*slot)->est_cost_sec) {
    *slot = candidate;
    converted++;
  }
  return converted;
}

}  // namespace

int ApplyIndexScans(PlanPtr* plan, const PlanCostEnv& env) {
  CardinalityEstimator estimator(env.catalog);
  return ApplyIndexScansImpl(plan, env, estimator);
}

}  // namespace shark
