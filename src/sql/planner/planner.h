#ifndef SHARK_SQL_PLANNER_PLANNER_H_
#define SHARK_SQL_PLANNER_PLANNER_H_

#include "sql/planner/rules.h"
#include "sql/stats/plan_cost.h"

namespace shark {

/// Planner behaviour knobs (mirrored by ExecOptions so sessions control
/// them per query).
struct PlannerOptions {
  /// Cost-based join reordering (DP enumerator). Off = rules only, keeping
  /// the query's written join order.
  bool cbo = true;
  /// Forces the written left-deep order even with cbo on — the naive
  /// baseline the bench and the fuzz plan-variant oracle compare against.
  bool force_left_deep = false;
  /// DP budget: spines with more relations fall back to the greedy order.
  int dp_max_relations = 10;
  /// Sargability rule: allow Scan -> IndexRangeScan conversion when the
  /// cost model prefers the index. Off = always full columnar scans (the
  /// baseline the fuzz indexed-on/off variant compares against).
  bool use_indexes = true;
};

/// The two-phase planner (§2.4 + the PDE statistics work): rewrite rules
/// (fold/pushdown/prune), then cost-based join reordering driven by ANALYZE
/// statistics, then row/cost annotation of the final tree so EXPLAIN shows
/// est_rows/est_cost on every node.
PlanPtr PlanQuery(PlanPtr plan, const UdfRegistry* udfs,
                  const PlanCostEnv& env, const PlannerOptions& options);

}  // namespace shark

#endif  // SHARK_SQL_PLANNER_PLANNER_H_
