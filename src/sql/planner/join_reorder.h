#ifndef SHARK_SQL_PLANNER_JOIN_REORDER_H_
#define SHARK_SQL_PLANNER_JOIN_REORDER_H_

#include <cstdint>
#include <vector>

#include "sql/logical_plan.h"
#include "sql/stats/cardinality_estimator.h"
#include "sql/stats/plan_cost.h"

namespace shark {

/// One relation in a join graph: a plan subtree (null for synthetic graphs in
/// tests and for the executor's composite pseudo-leaves) plus its estimated
/// size. `slot_begin`/`width` give the leaf's global slot range in the
/// concatenation of all leaves in original order.
struct JoinGraphLeaf {
  PlanPtr plan;
  int slot_begin = 0;
  int width = 0;
  double rows = 0;
  double row_width = 16.0;  // avg bytes per row
  double bytes() const { return rows * row_width; }
};

/// An equi-join edge between leaves `a` and `b`; key slots are global.
struct JoinGraphEdge {
  int a = 0;
  int b = 0;
  int a_slot = 0;
  int b_slot = 0;
  double selectivity = 1.0;
};

/// A residual predicate applying once all leaves in `leaf_mask` are joined.
struct JoinGraphPred {
  uint32_t leaf_mask = 0;
  ExprPtr expr;  // bound to global slots; null for synthetic graphs
  double selectivity = 1.0;
};

/// Numeric join graph. Cardinalities are derived from the leaves' estimated
/// rows and the edges'/predicates' selectivities, so the DP enumerator is
/// unit-testable with synthetic graphs — no plans or catalog needed.
struct JoinGraph {
  std::vector<JoinGraphLeaf> leaves;
  std::vector<JoinGraphEdge> edges;
  std::vector<JoinGraphPred> preds;

  /// Estimated output rows of joining exactly the leaves in `mask`:
  /// product of leaf rows times every applicable edge/pred selectivity.
  double SubsetRows(uint32_t mask) const;

  /// Estimated output bytes: SubsetRows times the summed member row widths.
  double SubsetBytes(uint32_t mask) const;

  /// True if `leaf` shares an equi-join edge with some member of `mask`.
  bool Connected(uint32_t mask, int leaf) const;
};

/// A left-deep join order (leaf indices, first = deepest) and its total
/// estimated cost in virtual seconds (join steps only; leaf costs are common
/// to every order and excluded).
struct JoinOrderResult {
  std::vector<int> order;
  double cost = -1.0;  // -1: no valid order found
};

/// Cost of one specific left-deep order under the graph's estimates.
double JoinOrderCost(const JoinGraph& g, const PlanCostEnv& env,
                     const std::vector<int>& order);

/// DPsize over left-deep trees: dp[mask] = best (cost, last leaf) reached by
/// extending a connected smaller set. Ties prefer the larger last index,
/// which keeps the original written order when costs are equal.
/// `required_first` pins the deepest leaf (the executor's already-built
/// composite during PDE re-planning); -1 leaves it free.
JoinOrderResult ChooseJoinOrderDp(const JoinGraph& g, const PlanCostEnv& env,
                                  int required_first = -1);

/// Greedy fallback (GOO-style) for spines larger than the DP budget: start
/// from the smallest relation and repeatedly append the connected leaf that
/// minimizes the intermediate result.
JoinOrderResult ChooseJoinOrderGreedy(const JoinGraph& g,
                                      const PlanCostEnv& env,
                                      int required_first = -1);

/// Exhaustive n! enumeration of connected left-deep orders — the test oracle
/// the DP must match on small graphs.
JoinOrderResult ChooseJoinOrderExhaustive(const JoinGraph& g,
                                          const PlanCostEnv& env,
                                          int required_first = -1);

/// Extracts the inner-join spine rooted at `root` into a join graph: leaves
/// are the non-join (or non-inner, or non-plain-slot-keyed) subtrees, edges
/// come from equi-key pairs, residual predicates become graph predicates.
/// Leaf cardinalities come from `est`. Returns false (graph untouched) when
/// the spine has fewer than two leaves or uses non-slot keys.
bool ExtractJoinGraph(const PlanPtr& root, const CardinalityEstimator& est,
                      JoinGraph* out);

/// Rebuilds a left-deep tree over `g.leaves` in `order`, rebinding keys and
/// residuals to the new layout, and restoring the original column order with
/// a final Project when the order changed. Returns null if the order would
/// require a cross join (disconnected step).
PlanPtr BuildOrderedJoinTree(const JoinGraph& g, const std::vector<int>& order);

/// Reorders every eligible inner-join spine (>= 3 leaves) in `plan` using
/// the DP enumerator (greedy above `dp_max_relations`). `reordered` (may be
/// null) counts rebuilt spines.
PlanPtr ReorderJoins(PlanPtr plan, const CardinalityEstimator& est,
                     const PlanCostEnv& env, int dp_max_relations,
                     int* reordered);

}  // namespace shark

#endif  // SHARK_SQL_PLANNER_JOIN_REORDER_H_
