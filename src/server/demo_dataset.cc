#include "server/demo_dataset.h"

#include <string>
#include <vector>

namespace shark {

Status LoadDemoDataset(SharkSession* session, int rankings_rows,
                       int visits_rows) {
  Schema rankings({{"pageURL", TypeKind::kString},
                   {"pageRank", TypeKind::kInt64},
                   {"avgDuration", TypeKind::kInt64}});
  std::vector<Row> rrows;
  rrows.reserve(static_cast<size_t>(rankings_rows));
  for (int i = 0; i < rankings_rows; ++i) {
    rrows.push_back(Row({Value::String("url" + std::to_string(i)),
                         Value::Int64(i), Value::Int64(i % 10)}));
  }
  SHARK_RETURN_NOT_OK(
      session->CreateDfsTable("rankings", rankings, rrows, 4));

  Schema visits({{"destURL", TypeKind::kString},
                 {"sourceIP", TypeKind::kString},
                 {"adRevenue", TypeKind::kDouble},
                 {"visitDate", TypeKind::kDate}});
  std::vector<Row> vrows;
  vrows.reserve(static_cast<size_t>(visits_rows));
  SHARK_ASSIGN_OR_RETURN(Value base, Value::ParseDate("2000-01-10"));
  int64_t base_date = base.int64_v();
  for (int i = 0; i < visits_rows; ++i) {
    vrows.push_back(
        Row({Value::String("url" + std::to_string(i % 50)),
             Value::String("ip" + std::to_string(i % 7)),
             Value::Double(1.0 + (i % 4)), Value::Date(base_date + i % 20)}));
  }
  return session->CreateDfsTable("visits", visits, vrows, 4);
}

}  // namespace shark
