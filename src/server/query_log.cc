#include "server/query_log.h"

#include <algorithm>
#include <utility>

#include "common/json_writer.h"

namespace shark {

namespace {

/// Shared body of both JSON renderings; `detail` adds the heavyweight
/// fields (analyzed plan, chrome trace) the listing omits.
void EntryJson(const QueryLogEntry& e, bool detail, JsonWriter* w) {
  w->BeginObject();
  w->Key("query_id").String(e.query_id);
  w->Key("session").String(e.session);
  w->Key("sql").String(e.sql);
  w->Key("status").String(e.status);
  if (!e.error.empty()) w->Key("error").String(e.error);
  w->Key("queued").Bool(e.queued);
  w->Key("queue_delay").Double(e.queue_delay);
  w->Key("virtual_seconds").Double(e.virtual_seconds);
  w->Key("latency").Double(e.latency);
  w->Key("host_ms").FixedDouble(e.host_ms, 3);
  w->Key("rows").UInt(e.rows);
  w->Key("bytes").UInt(e.bytes);
  w->Key("stages").Int(e.stages);
  w->Key("tasks").Int(e.tasks);
  w->Key("tasks_failed").Int(e.tasks_failed);
  w->Key("recovered_map_tasks").Int(e.recovered_map_tasks);
  w->Key("replans").Int(e.replans);
  w->Key("spill_bytes").UInt(e.spill_bytes);
  w->Key("slow").Bool(e.slow);
  // Slow queries carry their EXPLAIN ANALYZE rendering everywhere (that is
  // the slow-query log); the chrome trace is detail-only (it is large).
  if (!e.analyzed_plan.empty()) {
    w->Key("analyzed_plan").String(e.analyzed_plan);
  }
  if (detail && e.profile != nullptr) {
    w->Key("chrome_trace").Raw(e.profile->ToChromeTrace());
  }
  w->EndObject();
}

}  // namespace

QueryLog::QueryLog(Options options) : options_(std::move(options)) {
  if (!options_.jsonl_path.empty()) {
    sink_.open(options_.jsonl_path, std::ios::out | std::ios::app);
  }
}

void QueryLog::Begin(QueryLogEntry entry) {
  entry.status = "running";
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > options_.capacity) entries_.pop_front();
}

bool QueryLog::Complete(QueryLogEntry entry) {
  const bool slow = options_.slow_virtual_seconds >= 0.0 &&
                    entry.latency >= options_.slow_virtual_seconds &&
                    entry.status != "rejected";
  entry.slow = slow;
  if (!slow) entry.analyzed_plan.clear();  // only slow entries keep the plan
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (slow) ++slow_;
  AppendSinkLocked(entry);
  auto it = std::find_if(entries_.rbegin(), entries_.rend(),
                         [&](const QueryLogEntry& e) {
                           return e.query_id == entry.query_id;
                         });
  if (it != entries_.rend()) {
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
    while (entries_.size() > options_.capacity) entries_.pop_front();
  }
  return slow;
}

bool QueryLog::Lookup(const std::string& query_id, QueryLogEntry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(entries_.rbegin(), entries_.rend(),
                         [&](const QueryLogEntry& e) {
                           return e.query_id == query_id;
                         });
  if (it == entries_.rend()) return false;
  *out = *it;
  return true;
}

std::vector<QueryLogEntry> QueryLog::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(std::min(n, entries_.size()));
  for (auto it = entries_.rbegin(); it != entries_.rend() && out.size() < n;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

uint64_t QueryLog::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t QueryLog::slow_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::string QueryLog::RecentJson(size_t n) const {
  std::vector<QueryLogEntry> recent = Recent(n);
  uint64_t completed, slow;
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed = completed_;
    slow = slow_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("server").BeginObject();
  w.Key("completed").UInt(completed);
  w.Key("slow_queries").UInt(slow);
  w.Key("slow_threshold").Double(options_.slow_virtual_seconds);
  w.EndObject();
  w.Key("queries").BeginArray();
  for (const QueryLogEntry& e : recent) EntryJson(e, /*detail=*/false, &w);
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

bool QueryLog::LookupJson(const std::string& query_id, std::string* out) const {
  QueryLogEntry e;
  if (!Lookup(query_id, &e)) return false;
  JsonWriter w;
  EntryJson(e, /*detail=*/true, &w);
  *out = w.TakeString();
  return true;
}

void QueryLog::AppendSinkLocked(const QueryLogEntry& entry) {
  if (!sink_.is_open()) return;
  JsonWriter w;
  EntryJson(entry, /*detail=*/false, &w);
  sink_ << w.str() << '\n';
  sink_.flush();
}

}  // namespace shark
