#ifndef SHARK_SERVER_HTTP_H_
#define SHARK_SERVER_HTTP_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace shark {

/// One parsed GET request: "/queries?n=5" splits into path "/queries" and
/// query "n=5".
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;  // raw query string, no leading '?'

  /// Value of `key` in the query string ("" when absent). No %-decoding —
  /// the observability endpoints only take numbers and identifiers.
  std::string QueryParam(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal HTTP/1.0-style listener for the observability plane: loopback
/// only, GET only, one response per connection (Connection: close). Built
/// on net_util like the SQL front-end; thread-per-connection with the same
/// Stop() discipline (sever live sockets, join). Hardened against abuse:
/// request lines and headers are size-capped (431), malformed request lines
/// get a 400, non-GET methods a 405.
class HttpListener {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponse*)>;

  explicit HttpListener(Handler handler);
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts serving.
  Status Start(int port);
  int port() const { return port_; }
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::thread> conn_threads_;  // guarded by mu_
  std::set<int> live_fds_;                 // guarded by mu_
};

/// Blocking HTTP GET against 127.0.0.1:`port` (shark_top, tests). Returns
/// the response body on 200, an error Status otherwise.
Result<std::string> HttpGet(int port, const std::string& target);

}  // namespace shark

#endif  // SHARK_SERVER_HTTP_H_
