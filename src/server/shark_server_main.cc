// shark_server: serves the simulated Shark engine over a line-based TCP
// protocol. One connection = one SQL session; concurrent queries share the
// cluster through the JobManager's admission control and fair scheduling.
//
//   shark_server --port 4195 --nodes 4 --cores 2 --max-concurrent 8
//
// Prints "LISTENING <port>" once ready (port 0 picks an ephemeral port, which
// is how bench_serving --loopback and ci.sh attach).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "server/demo_dataset.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int64_t ArgInt(int argc, char** argv, const char* name, int64_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return def;
}

double ArgDouble(int argc, char** argv, const char* name, double def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return def;
}

const char* ArgStr(int argc, char** argv, const char* name, const char* def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: shark_server [--port N] [--nodes N] [--cores N]\n"
          "                    [--max-concurrent N] [--quota N]\n"
          "                    [--rankings-rows N] [--visits-rows N]\n"
          "                    [--obs-port N] [--query-log PATH]\n"
          "                    [--slow-virtual-seconds S] [--log-capacity N]\n"
          "Serves the demo dataset; see DESIGN.md §14 for the protocol and\n"
          "§17 for the observability endpoints (--obs-port -1 disables).\n");
      return 0;
    }
  }

  shark::ClusterConfig cfg;
  cfg.num_nodes = static_cast<int>(ArgInt(argc, argv, "--nodes", 4));
  cfg.hardware.cores_per_node =
      static_cast<int>(ArgInt(argc, argv, "--cores", 2));
  auto session = std::make_shared<shark::SharkSession>(
      std::make_shared<shark::ClusterContext>(cfg));

  shark::Status load = shark::LoadDemoDataset(
      session.get(),
      static_cast<int>(ArgInt(argc, argv, "--rankings-rows", 1000)),
      static_cast<int>(ArgInt(argc, argv, "--visits-rows", 3000)));
  if (!load.ok()) {
    std::fprintf(stderr, "demo dataset load failed: %s\n",
                 load.ToString().c_str());
    return 1;
  }

  shark::SharkServer::Options opts;
  opts.port = static_cast<int>(ArgInt(argc, argv, "--port", 0));
  opts.max_concurrent =
      static_cast<int>(ArgInt(argc, argv, "--max-concurrent", 0));
  opts.max_queries_per_connection =
      static_cast<uint64_t>(ArgInt(argc, argv, "--quota", 0));
  opts.obs_port = static_cast<int>(ArgInt(argc, argv, "--obs-port", 0));
  opts.query_log_path = ArgStr(argc, argv, "--query-log", "");
  opts.slow_query_virtual_seconds =
      ArgDouble(argc, argv, "--slow-virtual-seconds", 1.0);
  opts.query_log_capacity =
      static_cast<size_t>(ArgInt(argc, argv, "--log-capacity", 256));

  shark::SharkServer server(session, opts);
  shark::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %d\n", server.port());
  if (server.obs_port() >= 0) {
    std::printf("OBS_LISTENING %d\n", server.obs_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(100 * 1000);
  }
  server.Stop();
  return 0;
}
