#include "server/http.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/net_util.h"

namespace shark {

namespace {

/// Caps on one request: a hostile peer cannot make the listener buffer more
/// than this per line, or send an unbounded header block.
constexpr size_t kMaxLineBytes = 16 * 1024;
constexpr int kMaxHeaderLines = 64;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Internal Server Error";
  }
}

bool WriteResponse(int fd, const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    ReasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return WriteAll(fd, out);
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

HttpListener::HttpListener(Handler handler) : handler_(std::move(handler)) {}

HttpListener::~HttpListener() { Stop(); }

Status HttpListener::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpListener::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void HttpListener::AcceptLoop() {
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void HttpListener::ServeConnection(int fd) {
  LineReader reader(fd, kMaxLineBytes);
  std::string line;
  HttpResponse resp;
  bool respond = true;
  if (!reader.ReadLine(&line)) {
    if (reader.overflowed()) {
      resp.status = 431;
      resp.body = "request line too large\n";
    } else {
      respond = false;  // peer vanished before sending anything
    }
  } else {
    // Request line: METHOD SP target SP HTTP/x.y — anything else is a 400.
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0 || sp2 == sp1 + 1) {
      resp.status = 400;
      resp.body = "malformed request line\n";
    } else {
      HttpRequest req;
      req.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      size_t qmark = target.find('?');
      req.path = target.substr(0, qmark);
      if (qmark != std::string::npos) req.query = target.substr(qmark + 1);

      // Drain headers up to the blank line; we need none of them.
      bool ok = true;
      for (int i = 0; i <= kMaxHeaderLines; ++i) {
        if (!reader.ReadLine(&line)) {
          resp.status = reader.overflowed() ? 431 : 400;
          resp.body = reader.overflowed() ? "header too large\n"
                                          : "truncated request\n";
          ok = false;
          break;
        }
        if (line.empty()) break;
        if (i == kMaxHeaderLines) {
          resp.status = 431;
          resp.body = "too many header fields\n";
          ok = false;
          break;
        }
      }
      if (ok) {
        if (req.method != "GET") {
          resp.status = 405;
          resp.body = "only GET is supported\n";
        } else {
          handler_(req, &resp);
        }
      }
    }
  }
  if (respond) WriteResponse(fd, resp);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  live_fds_.erase(fd);
}

Result<std::string> HttpGet(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(errno));
  }
  if (!WriteAll(fd, "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                    "Connection: close\r\n\r\n")) {
    ::close(fd);
    return Status::Internal("send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t eol = raw.find("\r\n");
  if (eol == std::string::npos) return Status::Internal("short HTTP response");
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp > eol) {
    return Status::Internal("malformed HTTP status line");
  }
  int status = std::atoi(raw.c_str() + sp + 1);
  size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) return Status::Internal("no HTTP body");
  if (status != 200) {
    return Status::InvalidArgument("HTTP " + std::to_string(status) + ": " +
                                   raw.substr(body + 4));
  }
  return raw.substr(body + 4);
}

}  // namespace shark
