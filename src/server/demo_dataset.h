#ifndef SHARK_SERVER_DEMO_DATASET_H_
#define SHARK_SERVER_DEMO_DATASET_H_

#include "common/status.h"
#include "sql/session.h"

namespace shark {

/// Loads the Pavlo-style demo tables the server and bench_serving query:
///   rankings(pageURL STRING, pageRank BIGINT, avgDuration BIGINT)
///   visits(destURL STRING, sourceIP STRING, adRevenue DOUBLE,
///          visitDate DATE)
/// Row contents are a pure function of the row counts, so every server run
/// serves identical data.
Status LoadDemoDataset(SharkSession* session, int rankings_rows,
                       int visits_rows);

}  // namespace shark

#endif  // SHARK_SERVER_DEMO_DATASET_H_
