#include "server/net_util.h"

#include <cerrno>
#include <cstddef>

#include <sys/socket.h>
#include <unistd.h>

namespace shark {

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool LineReader::ReadLine(std::string* line) {
  overflowed_ = false;
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (max_line_bytes_ > 0 && nl > max_line_bytes_) {
        overflowed_ = true;
        return false;
      }
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (max_line_bytes_ > 0 && buffer_.size() > max_line_bytes_) {
      overflowed_ = true;
      return false;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace shark
