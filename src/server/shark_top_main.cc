// shark_top: live view of a running shark_server, in the spirit of top(1).
// Polls the observability endpoint's /top route and redraws the terminal.
//
//   shark_top --port <obs_port> [--interval-ms 1000] [--once | --iterations N]
//
// --port is the OBSERVABILITY port (shark_server prints "OBS_LISTENING <p>"
// at startup), not the SQL port. --once prints a single frame and exits,
// which is what scripts and tests use.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "server/http.h"

namespace {

int64_t ArgInt(int argc, char** argv, const char* name, int64_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--help")) {
    std::printf(
        "usage: shark_top --port OBS_PORT [--interval-ms N]\n"
        "                 [--once | --iterations N]\n"
        "Polls shark_server's observability endpoint (/top) and renders a\n"
        "live sessions/queries table. --once prints one frame and exits.\n");
    return 0;
  }
  int port = static_cast<int>(ArgInt(argc, argv, "--port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "shark_top: --port OBS_PORT is required\n");
    return 2;
  }
  int64_t interval_ms = ArgInt(argc, argv, "--interval-ms", 1000);
  int64_t iterations = ArgInt(argc, argv, "--iterations", 0);  // 0 = forever
  if (HasFlag(argc, argv, "--once")) iterations = 1;

  for (int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    auto frame = shark::HttpGet(port, "/top");
    if (!frame.ok()) {
      std::fprintf(stderr, "shark_top: %s\n",
                   frame.status().ToString().c_str());
      return 1;
    }
    if (iterations != 1) {
      std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
    }
    std::fputs(frame->c_str(), stdout);
    std::fflush(stdout);
    if (iterations == 0 || i + 1 < iterations) {
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    }
  }
  return 0;
}
