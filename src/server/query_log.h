#ifndef SHARK_SERVER_QUERY_LOG_H_
#define SHARK_SERVER_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"

namespace shark {

/// One query's structured log record. Created ("running") when the server
/// accepts the query, completed when the job finishes; finished entries keep
/// the QueryProfile (chrome-trace export on demand) and — for slow queries —
/// the full EXPLAIN ANALYZE rendering.
struct QueryLogEntry {
  std::string query_id;
  std::string session;  // "conn<id>"
  std::string sql;
  std::string status;  // "running" | "ok" | "error" | "rejected"
  std::string error;   // one-line message for error/rejected entries
  bool queued = false;
  double queue_delay = 0.0;      // admission wait, virtual seconds
  double virtual_seconds = 0.0;  // executor-measured query time
  double latency = 0.0;          // arrival-to-completion, virtual seconds
  double host_ms = 0.0;          // wall-clock submit-to-completion
  uint64_t rows = 0;             // result rows
  uint64_t bytes = 0;            // committed task output bytes (all stages)
  int stages = 0;
  int tasks = 0;
  int tasks_failed = 0;
  int recovered_map_tasks = 0;
  int replans = 0;
  uint64_t spill_bytes = 0;
  bool slow = false;
  std::string analyzed_plan;  // slow queries only (EXPLAIN ANALYZE render)
  std::shared_ptr<const QueryProfile> profile;  // finished queries
};

/// The server's persistent structured query log: a mutex-guarded ring
/// buffer (lookup by id + newest-first listing for /queries) plus an
/// optional JSONL sink appended on every completion. A query whose virtual
/// latency reaches the slow threshold is promoted to the slow-query log:
/// counted, kept with its EXPLAIN ANALYZE rendering, and flagged in both
/// JSON renderings.
class QueryLog {
 public:
  struct Options {
    /// Ring-buffer capacity (completed + in-flight entries retained).
    size_t capacity = 256;
    /// Promote queries with virtual latency >= this to the slow-query log;
    /// < 0 disables promotion (0 promotes everything — useful in tests).
    double slow_virtual_seconds = 1.0;
    /// Append one JSON object per completed query here; empty = no sink.
    std::string jsonl_path;
  };

  explicit QueryLog(Options options);

  /// Records an accepted query as "running" (visible to Lookup/Recent).
  void Begin(QueryLogEntry entry);

  /// Finalizes the entry with `entry.query_id` (or inserts it, for queries
  /// rejected before Begin) and appends it to the JSONL sink. Returns true
  /// if the entry was promoted to the slow-query log.
  bool Complete(QueryLogEntry entry);

  bool Lookup(const std::string& query_id, QueryLogEntry* out) const;
  /// Newest-first listing of up to `n` entries.
  std::vector<QueryLogEntry> Recent(size_t n) const;

  uint64_t completed() const;
  uint64_t slow_queries() const;
  double slow_threshold() const { return options_.slow_virtual_seconds; }

  /// `{"server":{...},"queries":[...]}` for GET /queries?n=K.
  std::string RecentJson(size_t n) const;
  /// Detail JSON for GET /queries/<id>: adds the analyzed plan and the
  /// embedded chrome-trace document. False when the id is unknown.
  bool LookupJson(const std::string& query_id, std::string* out) const;

 private:
  void AppendSinkLocked(const QueryLogEntry& entry);

  Options options_;
  mutable std::mutex mu_;
  std::deque<QueryLogEntry> entries_;  // oldest..newest, guarded by mu_
  uint64_t completed_ = 0;             // guarded by mu_
  uint64_t slow_ = 0;                  // guarded by mu_
  std::ofstream sink_;                 // guarded by mu_
};

}  // namespace shark

#endif  // SHARK_SERVER_QUERY_LOG_H_
