#ifndef SHARK_SERVER_NET_UTIL_H_
#define SHARK_SERVER_NET_UTIL_H_

#include <string>

namespace shark {

/// Writes the whole buffer to `fd`, retrying on short writes and EINTR.
/// Returns false when the peer went away.
bool WriteAll(int fd, const std::string& data);

/// Buffered line reader over a socket. Lines are '\n'-terminated; the
/// terminator (and a preceding '\r', for telnet-friendliness) is stripped.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one full line arrives. Returns false on EOF/error.
  bool ReadLine(std::string* line);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace shark

#endif  // SHARK_SERVER_NET_UTIL_H_
