#ifndef SHARK_SERVER_NET_UTIL_H_
#define SHARK_SERVER_NET_UTIL_H_

#include <cstddef>
#include <string>

namespace shark {

/// Writes the whole buffer to `fd`, retrying on short writes and EINTR.
/// Returns false when the peer went away.
bool WriteAll(int fd, const std::string& data);

/// Buffered line reader over a socket. Lines are '\n'-terminated; the
/// terminator (and a preceding '\r', for telnet-friendliness) is stripped.
class LineReader {
 public:
  /// `max_line_bytes` caps one line's length (0 = unlimited): a longer line
  /// makes ReadLine fail with overflowed() set, so servers can bound memory
  /// against hostile peers and answer with a protocol error.
  explicit LineReader(int fd, size_t max_line_bytes = 0)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Blocks until one full line arrives. Returns false on EOF/error/overflow.
  bool ReadLine(std::string* line);

  /// True when the last ReadLine failure was an over-long line, not EOF.
  bool overflowed() const { return overflowed_; }

 private:
  int fd_;
  size_t max_line_bytes_;
  bool overflowed_ = false;
  std::string buffer_;
};

}  // namespace shark

#endif  // SHARK_SERVER_NET_UTIL_H_
