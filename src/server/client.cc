#include "server/client.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace shark {

namespace {

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

SharkClient::~SharkClient() { Close(); }

Status SharkClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  reader_ = std::make_unique<LineReader>(fd_);
  return Status::OK();
}

void SharkClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Status SharkClient::SendLine(const std::string& line) {
  if (!connected()) return Status::Internal("not connected");
  if (!WriteAll(fd_, line + "\n")) {
    return Status::Internal("connection lost while sending");
  }
  return Status::OK();
}

Status SharkClient::ExpectOk(const std::string& command) {
  SHARK_RETURN_NOT_OK(SendLine(command));
  std::string reply;
  if (!reader_->ReadLine(&reply)) {
    return Status::Internal("connection closed by server");
  }
  if (reply.rfind("OK", 0) == 0) return Status::OK();
  return Status::ExecutionError(reply);
}

Result<ClientResult> SharkClient::Query(const std::string& sql) {
  SHARK_RETURN_NOT_OK(SendLine("QUERY " + sql));
  return ReadQueryReply();
}

Result<ClientResult> SharkClient::QueryWithId(const std::string& query_id,
                                              const std::string& sql) {
  SHARK_RETURN_NOT_OK(SendLine("QUERYID " + query_id + " " + sql));
  return ReadQueryReply();
}

Result<ClientResult> SharkClient::ReadQueryReply() {
  std::string header;
  if (!reader_->ReadLine(&header)) {
    return Status::Internal("connection closed by server");
  }
  if (header.rfind("ERR", 0) == 0) {
    return Status::ExecutionError(header.size() > 4 ? header.substr(4)
                                                    : "query failed");
  }
  std::istringstream in(header);
  std::string ok;
  uint64_t nrows = 0;
  ClientResult result;
  in >> ok >> result.query_id >> nrows >> result.num_columns >>
      result.virtual_seconds >> result.queue_delay;
  if (ok != "OK") {
    return Status::Internal("malformed reply header: " + header);
  }
  result.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    std::string line;
    if (!reader_->ReadLine(&line)) {
      return Status::Internal("connection closed mid-result");
    }
    result.rows.push_back(SplitTabs(line));
  }
  std::string trailer;
  if (!reader_->ReadLine(&trailer) || trailer != "END") {
    return Status::Internal("missing END trailer");
  }
  return result;
}

Status SharkClient::SetWeight(double weight) {
  std::ostringstream cmd;
  cmd << "SET WEIGHT " << weight;
  return ExpectOk(cmd.str());
}

Status SharkClient::SetMemDemand(uint64_t bytes) {
  return ExpectOk("SET MEMDEMAND " + std::to_string(bytes));
}

Result<std::map<std::string, std::string>> SharkClient::Stats() {
  SHARK_RETURN_NOT_OK(SendLine("STATS"));
  std::map<std::string, std::string> stats;
  while (true) {
    std::string line;
    if (!reader_->ReadLine(&line)) {
      return Status::Internal("connection closed during STATS");
    }
    if (line == "END") return stats;
    if (line.rfind("ERR", 0) == 0) return Status::ExecutionError(line);
    std::istringstream in(line);
    std::string tag, key, value;
    in >> tag >> key >> value;
    if (tag == "STAT") stats[key] = value;
  }
}

}  // namespace shark
