#ifndef SHARK_SERVER_SERVER_H_
#define SHARK_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rdd/job_manager.h"
#include "server/http.h"
#include "server/query_log.h"
#include "sql/session.h"

namespace shark {

/// Multi-session SQL front-end: accepts TCP connections, one session per
/// connection, and multiplexes their queries onto one simulated cluster
/// through the streaming JobManager (admission control + fair inter-query
/// scheduling included).
///
/// Wire protocol — newline-terminated lines, text only:
///
///   client -> server
///     QUERY <sql>          run one statement (server assigns the query id)
///     QUERYID <id> <sql>   run one statement under a client-chosen trace id
///     SET WEIGHT <w>       fair-share weight for this session's queries
///     SET MEMDEMAND <n>    declared admission demand in bytes (0 = bypass)
///     STATS                session + server counters and live SLO quantiles
///     QUIT                 close the connection
///
///   server -> client
///     OK <query_id> <nrows> <ncols> <virtual_seconds> <queue_delay>
///       ...nrows lines of tab-separated values...                 (QUERY)
///     END
///     OK                                                    (SET success)
///     STAT <key> <value>  ... END                           (STATS)
///     ERR <one-line message>                                (any failure)
///
/// Observability plane (Options::obs_port >= 0): a second HTTP listener
/// serving GET /healthz, /metrics (Prometheus text), /queries?n=K (query
/// log), /queries/<id> (detail incl. chrome trace + EXPLAIN ANALYZE for
/// slow queries) and /top (plain-text live sessions/queries table). Every
/// query — in flight or completed — is addressable by its query id.
class SharkServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// Forwarded to JobManager: max queries in flight; 0 = unlimited.
    int max_concurrent = 0;
    /// Per-connection query quota; further QUERYs get an ERR. 0 = unlimited.
    uint64_t max_queries_per_connection = 0;
    /// HTTP observability port: 0 picks an ephemeral port (see obs_port()),
    /// < 0 disables the listener.
    int obs_port = 0;
    /// Queries whose virtual latency reaches this are promoted to the
    /// slow-query log with their EXPLAIN ANALYZE rendering; < 0 disables.
    double slow_query_virtual_seconds = 1.0;
    /// Query-log ring capacity and optional JSONL sink path.
    size_t query_log_capacity = 256;
    std::string query_log_path;
  };

  SharkServer(std::shared_ptr<SharkSession> session, Options options);
  ~SharkServer();

  SharkServer(const SharkServer&) = delete;
  SharkServer& operator=(const SharkServer&) = delete;

  /// Binds, listens and spawns the accept loop. Queries are served until
  /// Stop().
  Status Start();

  /// The bound SQL port (useful with Options::port == 0).
  int port() const { return port_; }
  /// The bound observability port; -1 when the listener is disabled.
  int obs_port() const { return obs_ ? obs_->port() : -1; }

  /// Stops accepting, severs live connections, drains submitted queries.
  void Stop();

  /// Total queries received across all connections (including rejected).
  uint64_t total_queries() const { return total_queries_; }

  const QueryLog& query_log() const { return qlog_; }

 private:
  struct SessionState {
    uint64_t queries = 0;  // received
    uint64_t ok = 0;
    uint64_t errors = 0;   // failed or rejected
    double weight = 1.0;
    uint64_t mem_demand_bytes = 0;
    bool live = true;      // connection still open
  };

  void AcceptLoop();
  void ServeConnection(int fd, uint64_t conn_id);
  bool HandleQuery(int fd, uint64_t conn_id, const std::string& client_qid,
                   const std::string& sql);
  bool HandleStats(int fd, uint64_t conn_id);
  void HandleObs(const HttpRequest& req, HttpResponse* resp);
  std::string RenderTop();

  std::shared_ptr<SharkSession> session_;
  Options options_;
  JobManager jobs_;
  QueryLog qlog_;
  std::unique_ptr<HttpListener> obs_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::thread> conn_threads_;  // guarded by mu_
  std::set<int> live_fds_;                 // guarded by mu_
  uint64_t next_conn_id_ = 1;              // guarded by mu_

  std::mutex sessions_mu_;
  std::map<uint64_t, SessionState> sessions_;  // conn_id ->, guarded

  std::atomic<uint64_t> next_query_seq_{1};
  std::atomic<uint64_t> total_queries_{0};
  std::atomic<uint64_t> total_ok_{0};
  std::atomic<uint64_t> total_errors_{0};
};

}  // namespace shark

#endif  // SHARK_SERVER_SERVER_H_
