#ifndef SHARK_SERVER_SERVER_H_
#define SHARK_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rdd/job_manager.h"
#include "sql/session.h"

namespace shark {

/// Multi-session SQL front-end: accepts TCP connections, one session per
/// connection, and multiplexes their queries onto one simulated cluster
/// through the streaming JobManager (admission control + fair inter-query
/// scheduling included).
///
/// Wire protocol — newline-terminated lines, text only:
///
///   client -> server
///     QUERY <sql>          run one statement
///     SET WEIGHT <w>       fair-share weight for this session's queries
///     SET MEMDEMAND <n>    declared admission demand in bytes (0 = bypass)
///     STATS                session + server counters
///     QUIT                 close the connection
///
///   server -> client
///     OK <nrows> <ncols> <virtual_seconds> <queue_delay>   (QUERY success)
///       ...nrows lines of tab-separated values...
///     END
///     OK                                                    (SET success)
///     STAT <key> <value>  ... END                           (STATS)
///     ERR <one-line message>                                (any failure)
class SharkServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// Forwarded to JobManager: max queries in flight; 0 = unlimited.
    int max_concurrent = 0;
    /// Per-connection query quota; further QUERYs get an ERR. 0 = unlimited.
    uint64_t max_queries_per_connection = 0;
  };

  SharkServer(std::shared_ptr<SharkSession> session, Options options);
  ~SharkServer();

  SharkServer(const SharkServer&) = delete;
  SharkServer& operator=(const SharkServer&) = delete;

  /// Binds, listens and spawns the accept loop. Queries are served until
  /// Stop().
  Status Start();

  /// The bound port (useful with Options::port == 0).
  int port() const { return port_; }

  /// Stops accepting, severs live connections, drains submitted queries.
  void Stop();

  /// Total queries received across all connections (including rejected).
  uint64_t total_queries() const { return total_queries_; }

 private:
  struct SessionState {
    uint64_t queries = 0;  // received
    uint64_t ok = 0;
    uint64_t errors = 0;   // failed or rejected
    double weight = 1.0;
    uint64_t mem_demand_bytes = 0;
  };

  void AcceptLoop();
  void ServeConnection(int fd, uint64_t conn_id);
  bool HandleQuery(int fd, uint64_t conn_id, SessionState* st,
                   const std::string& sql);
  bool HandleStats(int fd, const SessionState& st);

  std::shared_ptr<SharkSession> session_;
  Options options_;
  JobManager jobs_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::thread> conn_threads_;  // guarded by mu_
  std::set<int> live_fds_;                 // guarded by mu_
  uint64_t next_conn_id_ = 1;              // guarded by mu_

  std::atomic<uint64_t> total_queries_{0};
  std::atomic<uint64_t> total_ok_{0};
  std::atomic<uint64_t> total_errors_{0};
};

}  // namespace shark

#endif  // SHARK_SERVER_SERVER_H_
