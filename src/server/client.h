#ifndef SHARK_SERVER_CLIENT_H_
#define SHARK_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/net_util.h"

namespace shark {

/// One query's reply as seen over the wire.
struct ClientResult {
  std::vector<std::vector<std::string>> rows;  // tab-split cells
  int num_columns = 0;
  std::string query_id;           // stable id; look it up at /queries/<id>
  double virtual_seconds = 0.0;   // simulated execution time
  double queue_delay = 0.0;       // admission-control wait (virtual seconds)
};

/// Minimal blocking client for SharkServer's line protocol. One connection =
/// one server-side session (its own weight/quota/counters).
class SharkClient {
 public:
  SharkClient() = default;
  ~SharkClient();

  SharkClient(const SharkClient&) = delete;
  SharkClient& operator=(const SharkClient&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Runs one statement; ERR replies surface as ExecutionError. The server
  /// assigns the query id (echoed in ClientResult::query_id).
  Result<ClientResult> Query(const std::string& sql);

  /// Same, but under a client-chosen query id (QUERYID command) so the
  /// caller can correlate its own traces with the server's query log.
  Result<ClientResult> QueryWithId(const std::string& query_id,
                                   const std::string& sql);

  /// Session knobs (see SharkServer wire protocol).
  Status SetWeight(double weight);
  Status SetMemDemand(uint64_t bytes);

  /// STATS as a key -> value map ("session.ok", "server.queries", ...).
  Result<std::map<std::string, std::string>> Stats();

 private:
  Status SendLine(const std::string& line);
  Status ExpectOk(const std::string& command);
  Result<ClientResult> ReadQueryReply();

  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace shark

#endif  // SHARK_SERVER_CLIENT_H_
