#include "server/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "rdd/context.h"
#include "server/net_util.h"
#include "sim/cluster_metrics.h"

namespace shark {

namespace {

/// ERR payloads must stay on one line.
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return s;
}

std::string FormatValue(const Value& v) { return OneLine(v.ToString()); }

}  // namespace

SharkServer::SharkServer(std::shared_ptr<SharkSession> session,
                         Options options)
    : session_(std::move(session)),
      options_(options),
      jobs_(&session_->context(),
            [&] {
              JobManager::Options jo;
              jo.max_concurrent = options.max_concurrent;
              return jo;
            }()),
      qlog_([&] {
        QueryLog::Options qo;
        qo.capacity = options.query_log_capacity;
        qo.slow_virtual_seconds = options.slow_query_virtual_seconds;
        qo.jsonl_path = options.query_log_path;
        return qo;
      }()) {}

SharkServer::~SharkServer() { Stop(); }

Status SharkServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }

  jobs_.Start();
  if (options_.obs_port >= 0) {
    obs_ = std::make_unique<HttpListener>(
        [this](const HttpRequest& req, HttpResponse* resp) {
          HandleObs(req, resp);
        });
    Status obs_status = obs_->Start(options_.obs_port);
    if (!obs_status.ok()) {
      jobs_.Stop();
      return obs_status;
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SharkServer::Stop() {
  if (stopping_.exchange(true)) return;
  // The observability listener goes first: its handlers call
  // jobs_.Inspect(), which must not outlive the streaming driver.
  if (obs_) obs_->Stop();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (jobs_.started()) jobs_.Stop();
}

void SharkServer::AcceptLoop() {
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    uint64_t conn_id = next_conn_id_++;
    live_fds_.insert(fd);
    conn_threads_.emplace_back(
        [this, fd, conn_id] { ServeConnection(fd, conn_id); });
  }
}

void SharkServer::ServeConnection(int fd, uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[conn_id];  // visible in /top from the first command
  }
  LineReader reader(fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "QUIT") {
      WriteAll(fd, "OK\n");
      break;
    } else if (cmd == "QUERY" || cmd == "QUERYID") {
      std::string qid;
      if (cmd == "QUERYID") in >> qid;
      std::string rest;
      std::getline(in, rest);
      size_t start = rest.find_first_not_of(' ');
      std::string sql =
          start == std::string::npos ? "" : rest.substr(start);
      if (cmd == "QUERYID" && qid.empty()) {
        if (!WriteAll(fd, "ERR QUERYID needs an id\n")) break;
        continue;
      }
      if (!HandleQuery(fd, conn_id, qid, sql)) break;
    } else if (cmd == "SET") {
      std::string knob;
      in >> knob;
      if (knob == "WEIGHT") {
        double w = 1.0;
        if (in >> w && w > 0) {
          std::lock_guard<std::mutex> lock(sessions_mu_);
          sessions_[conn_id].weight = w;
          if (!WriteAll(fd, "OK\n")) break;
        } else if (!WriteAll(fd, "ERR SET WEIGHT needs a positive number\n")) {
          break;
        }
      } else if (knob == "MEMDEMAND") {
        uint64_t bytes = 0;
        if (in >> bytes) {
          std::lock_guard<std::mutex> lock(sessions_mu_);
          sessions_[conn_id].mem_demand_bytes = bytes;
          if (!WriteAll(fd, "OK\n")) break;
        } else if (!WriteAll(fd, "ERR SET MEMDEMAND needs a byte count\n")) {
          break;
        }
      } else if (!WriteAll(fd, "ERR unknown knob: " + OneLine(knob) + "\n")) {
        break;
      }
    } else if (cmd == "STATS") {
      if (!HandleStats(fd, conn_id)) break;
    } else {
      if (!WriteAll(fd, "ERR unknown command: " + OneLine(cmd) + "\n")) break;
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[conn_id].live = false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_fds_.erase(fd);
}

bool SharkServer::HandleQuery(int fd, uint64_t conn_id,
                              const std::string& client_qid,
                              const std::string& sql) {
  total_queries_++;
  const std::string session_name = "conn" + std::to_string(conn_id);
  uint64_t session_queries;
  double weight;
  uint64_t mem_demand;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    SessionState& st = sessions_[conn_id];
    st.queries++;
    session_queries = st.queries;
    weight = st.weight;
    mem_demand = st.mem_demand_bytes;
  }
  const std::string query_id =
      !client_qid.empty() ? client_qid
                          : "q" + std::to_string(next_query_seq_++);

  auto reject = [&](const std::string& msg) {
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_[conn_id].errors++;
    }
    total_errors_++;
    QueryLogEntry e;
    e.query_id = query_id;
    e.session = session_name;
    e.sql = sql;
    e.status = "rejected";
    e.error = msg;
    qlog_.Complete(std::move(e));
    return WriteAll(fd, "ERR " + msg + "\n");
  };
  if (options_.max_queries_per_connection != 0 &&
      session_queries > options_.max_queries_per_connection) {
    return reject("quota exceeded: connection limited to " +
                  std::to_string(options_.max_queries_per_connection) +
                  " queries");
  }
  if (sql.empty()) return reject("empty query");

  {
    QueryLogEntry running;
    running.query_id = query_id;
    running.session = session_name;
    running.sql = sql;
    qlog_.Begin(std::move(running));
  }

  // The job body runs on a JobManager thread under the engine baton; the
  // result (and the EXPLAIN ANALYZE rendering, for the slow-query log)
  // travels back through this shared holder.
  struct JobPayload {
    QueryResult result;
    std::string analyzed_plan;
  };
  auto holder = std::make_shared<JobPayload>();
  JobSpec spec;
  spec.label = session_name + "#" + std::to_string(session_queries);
  spec.query_id = query_id;
  spec.session = session_name;
  spec.weight = weight;
  spec.mem_demand_bytes = mem_demand;
  spec.body = [this, holder, sql]() -> Status {
    auto r = session_->Sql(sql, &holder->analyzed_plan);
    SHARK_RETURN_NOT_OK(r.status());
    holder->result = std::move(*r);
    return Status::OK();
  };
  uint64_t ticket = jobs_.Submit(std::move(spec));
  JobOutcome outcome = jobs_.Await(ticket);

  QueryLogEntry done;
  done.query_id = query_id;
  done.session = session_name;
  done.sql = sql;
  done.queued = outcome.queued;
  done.queue_delay = outcome.queue_delay();
  done.latency = outcome.latency();
  done.host_ms = outcome.host_seconds >= 0 ? outcome.host_seconds * 1e3 : 0.0;
  if (outcome.status.ok()) {
    const QueryResult& res = holder->result;
    done.status = "ok";
    done.virtual_seconds = res.metrics.virtual_seconds;
    done.rows = res.rows.size();
    done.stages = res.metrics.stages;
    done.tasks = res.metrics.tasks;
    done.tasks_failed = res.metrics.tasks_failed;
    done.recovered_map_tasks = res.metrics.map_tasks_recovered;
    done.replans = res.metrics.replans;
    done.analyzed_plan = holder->analyzed_plan;
    done.profile = res.profile;
    if (res.profile != nullptr) {
      for (const StageTrace& s : res.profile->stages) {
        done.bytes += s.bytes_out();
        done.spill_bytes += s.spill_bytes();
      }
    }
  } else {
    done.status = "error";
    done.error = OneLine(outcome.status.ToString());
  }
  qlog_.Complete(done);

  if (!outcome.status.ok()) {
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_[conn_id].errors++;
    }
    total_errors_++;
    return WriteAll(fd, "ERR " + done.error + "\n");
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[conn_id].ok++;
  }
  total_ok_++;

  std::ostringstream out;
  out << "OK " << query_id << ' ' << holder->result.rows.size() << ' '
      << holder->result.schema.num_fields() << ' '
      << holder->result.metrics.virtual_seconds << ' '
      << outcome.queue_delay() << '\n';
  for (const Row& row : holder->result.rows) {
    for (size_t i = 0; i < row.fields.size(); ++i) {
      if (i > 0) out << '\t';
      out << FormatValue(row.fields[i]);
    }
    out << '\n';
  }
  out << "END\n";
  return WriteAll(fd, out.str());
}

bool SharkServer::HandleStats(int fd, uint64_t conn_id) {
  SessionState st;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    st = sessions_[conn_id];
  }
  const std::string session_name = "conn" + std::to_string(conn_id);
  SessionSloSnapshot sess;
  SessionSloSnapshot server;
  jobs_.Inspect([&] {
    ClusterMetrics& m = session_->context().metrics();
    m.SessionSlo(session_name, &sess);
    server = m.ServerSlo();
  });
  std::ostringstream out;
  out << "STAT session.queries " << st.queries << '\n'
      << "STAT session.ok " << st.ok << '\n'
      << "STAT session.errors " << st.errors << '\n'
      << "STAT session.weight " << st.weight << '\n'
      << "STAT session.mem_demand_bytes " << st.mem_demand_bytes << '\n'
      << "STAT session.latency_p50 " << sess.latency_p50 << '\n'
      << "STAT session.latency_p95 " << sess.latency_p95 << '\n'
      << "STAT session.latency_p99 " << sess.latency_p99 << '\n'
      << "STAT session.queued_p50 " << sess.queued_p50 << '\n'
      << "STAT session.queued_p99 " << sess.queued_p99 << '\n'
      << "STAT server.queries " << total_queries_.load() << '\n'
      << "STAT server.ok " << total_ok_.load() << '\n'
      << "STAT server.errors " << total_errors_.load() << '\n'
      << "STAT server.latency_p50 " << server.latency_p50 << '\n'
      << "STAT server.latency_p95 " << server.latency_p95 << '\n'
      << "STAT server.latency_p99 " << server.latency_p99 << '\n'
      << "STAT server.queued_p50 " << server.queued_p50 << '\n'
      << "STAT server.queued_p99 " << server.queued_p99 << '\n'
      << "STAT server.slow_queries " << qlog_.slow_queries() << '\n'
      << "END\n";
  return WriteAll(fd, out.str());
}

void SharkServer::HandleObs(const HttpRequest& req, HttpResponse* resp) {
  if (req.path == "/healthz") {
    resp->body = "ok\n";
    return;
  }
  if (req.path == "/metrics") {
    std::string text;
    jobs_.Inspect([&] {
      ClusterContext& ctx = session_->context();
      text = ctx.metrics().PrometheusText(ctx.now(), ctx.cluster());
    });
    resp->content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp->body = std::move(text);
    return;
  }
  if (req.path == "/queries") {
    size_t n = 32;
    std::string param = req.QueryParam("n");
    if (!param.empty()) {
      long v = std::atol(param.c_str());
      if (v > 0) n = static_cast<size_t>(v);
    }
    resp->content_type = "application/json";
    resp->body = qlog_.RecentJson(n) + "\n";
    return;
  }
  if (req.path.rfind("/queries/", 0) == 0) {
    std::string id = req.path.substr(std::strlen("/queries/"));
    std::string body;
    if (!id.empty() && qlog_.LookupJson(id, &body)) {
      resp->content_type = "application/json";
      resp->body = body + "\n";
    } else {
      resp->status = 404;
      resp->body = "unknown query id\n";
    }
    return;
  }
  if (req.path == "/top") {
    resp->body = RenderTop();
    return;
  }
  resp->status = 404;
  resp->body = "not found (try /healthz /metrics /queries /queries/<id> /top)\n";
}

std::string SharkServer::RenderTop() {
  // Session table rows snapshot first (lock order: sessions_mu_ alone),
  // then one Inspect collects every SLO readout race-free.
  std::vector<std::pair<uint64_t, SessionState>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.assign(sessions_.begin(), sessions_.end());
  }
  std::map<std::string, SessionSloSnapshot> slo;
  SessionSloSnapshot server;
  jobs_.Inspect([&] {
    ClusterMetrics& m = session_->context().metrics();
    server = m.ServerSlo();
    for (const auto& [conn_id, st] : sessions) {
      const std::string name = "conn" + std::to_string(conn_id);
      SessionSloSnapshot snap;
      if (m.SessionSlo(name, &snap)) slo[name] = snap;
    }
  });

  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "shark_server: queries=%llu ok=%llu err=%llu slow=%llu "
                "p50=%.4fs p99=%.4fs (virtual)\n\n",
                static_cast<unsigned long long>(total_queries_.load()),
                static_cast<unsigned long long>(total_ok_.load()),
                static_cast<unsigned long long>(total_errors_.load()),
                static_cast<unsigned long long>(qlog_.slow_queries()),
                server.latency_p50, server.latency_p99);
  out += buf;

  out += "SESSION      LIVE  QUERIES      OK     ERR  WEIGHT   P50(v)   "
         "P99(v)\n";
  for (const auto& [conn_id, st] : sessions) {
    const std::string name = "conn" + std::to_string(conn_id);
    SessionSloSnapshot snap;
    auto it = slo.find(name);
    if (it != slo.end()) snap = it->second;
    std::snprintf(buf, sizeof(buf),
                  "%-12s %-5s %7llu %7llu %7llu %7.2f %8.4f %8.4f\n",
                  name.c_str(), st.live ? "yes" : "no",
                  static_cast<unsigned long long>(st.queries),
                  static_cast<unsigned long long>(st.ok),
                  static_cast<unsigned long long>(st.errors), st.weight,
                  snap.latency_p50, snap.latency_p99);
    out += buf;
  }

  out += "\nID           SESSION      STATUS    VSEC    QDELAY   HOST_MS  "
         "ROWS  SQL\n";
  for (const QueryLogEntry& e : qlog_.Recent(16)) {
    std::string sql = e.sql.size() > 40 ? e.sql.substr(0, 37) + "..." : e.sql;
    std::snprintf(buf, sizeof(buf),
                  "%-12s %-12s %-8s %7.4f %9.4f %9.3f %5llu  %s\n",
                  e.query_id.c_str(), e.session.c_str(), e.status.c_str(),
                  e.virtual_seconds, e.queue_delay, e.host_ms,
                  static_cast<unsigned long long>(e.rows), sql.c_str());
    out += buf;
  }
  return out;
}

}  // namespace shark
