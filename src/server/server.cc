#include "server/server.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/net_util.h"

namespace shark {

namespace {

/// ERR payloads must stay on one line.
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return s;
}

std::string FormatValue(const Value& v) { return OneLine(v.ToString()); }

}  // namespace

SharkServer::SharkServer(std::shared_ptr<SharkSession> session,
                         Options options)
    : session_(std::move(session)),
      options_(options),
      jobs_(&session_->context(), [&] {
        JobManager::Options jo;
        jo.max_concurrent = options.max_concurrent;
        return jo;
      }()) {}

SharkServer::~SharkServer() { Stop(); }

Status SharkServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }

  jobs_.Start();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SharkServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (jobs_.started()) jobs_.Stop();
}

void SharkServer::AcceptLoop() {
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    uint64_t conn_id = next_conn_id_++;
    live_fds_.insert(fd);
    conn_threads_.emplace_back(
        [this, fd, conn_id] { ServeConnection(fd, conn_id); });
  }
}

void SharkServer::ServeConnection(int fd, uint64_t conn_id) {
  SessionState st;
  LineReader reader(fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "QUIT") {
      WriteAll(fd, "OK\n");
      break;
    } else if (cmd == "QUERY") {
      std::string sql = line.substr(line.find("QUERY") + 5);
      size_t start = sql.find_first_not_of(' ');
      sql = start == std::string::npos ? "" : sql.substr(start);
      if (!HandleQuery(fd, conn_id, &st, sql)) break;
    } else if (cmd == "SET") {
      std::string knob;
      in >> knob;
      if (knob == "WEIGHT") {
        double w = 1.0;
        if (in >> w && w > 0) {
          st.weight = w;
          if (!WriteAll(fd, "OK\n")) break;
        } else if (!WriteAll(fd, "ERR SET WEIGHT needs a positive number\n")) {
          break;
        }
      } else if (knob == "MEMDEMAND") {
        uint64_t bytes = 0;
        if (in >> bytes) {
          st.mem_demand_bytes = bytes;
          if (!WriteAll(fd, "OK\n")) break;
        } else if (!WriteAll(fd, "ERR SET MEMDEMAND needs a byte count\n")) {
          break;
        }
      } else if (!WriteAll(fd, "ERR unknown knob: " + OneLine(knob) + "\n")) {
        break;
      }
    } else if (cmd == "STATS") {
      if (!HandleStats(fd, st)) break;
    } else {
      if (!WriteAll(fd, "ERR unknown command: " + OneLine(cmd) + "\n")) break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  live_fds_.erase(fd);
}

bool SharkServer::HandleQuery(int fd, uint64_t conn_id, SessionState* st,
                              const std::string& sql) {
  st->queries++;
  total_queries_++;
  if (options_.max_queries_per_connection != 0 &&
      st->queries > options_.max_queries_per_connection) {
    st->errors++;
    total_errors_++;
    return WriteAll(fd, "ERR quota exceeded: connection limited to " +
                            std::to_string(options_.max_queries_per_connection) +
                            " queries\n");
  }
  if (sql.empty()) {
    st->errors++;
    total_errors_++;
    return WriteAll(fd, "ERR empty query\n");
  }

  // The job body runs on a JobManager thread under the engine baton; the
  // result travels back through this shared holder.
  auto holder = std::make_shared<QueryResult>();
  JobSpec spec;
  spec.label = "conn" + std::to_string(conn_id) + "#" +
               std::to_string(st->queries);
  spec.weight = st->weight;
  spec.mem_demand_bytes = st->mem_demand_bytes;
  spec.body = [this, holder, sql]() -> Status {
    auto r = session_->Sql(sql);
    SHARK_RETURN_NOT_OK(r.status());
    *holder = std::move(*r);
    return Status::OK();
  };
  uint64_t ticket = jobs_.Submit(std::move(spec));
  JobOutcome outcome = jobs_.Await(ticket);

  if (!outcome.status.ok()) {
    st->errors++;
    total_errors_++;
    return WriteAll(fd, "ERR " + OneLine(outcome.status.ToString()) + "\n");
  }
  st->ok++;
  total_ok_++;

  std::ostringstream out;
  out << "OK " << holder->rows.size() << ' ' << holder->schema.num_fields()
      << ' ' << holder->metrics.virtual_seconds << ' ' << outcome.queue_delay()
      << '\n';
  for (const Row& row : holder->rows) {
    for (size_t i = 0; i < row.fields.size(); ++i) {
      if (i > 0) out << '\t';
      out << FormatValue(row.fields[i]);
    }
    out << '\n';
  }
  out << "END\n";
  return WriteAll(fd, out.str());
}

bool SharkServer::HandleStats(int fd, const SessionState& st) {
  std::ostringstream out;
  out << "STAT session.queries " << st.queries << '\n'
      << "STAT session.ok " << st.ok << '\n'
      << "STAT session.errors " << st.errors << '\n'
      << "STAT session.weight " << st.weight << '\n'
      << "STAT session.mem_demand_bytes " << st.mem_demand_bytes << '\n'
      << "STAT server.queries " << total_queries_.load() << '\n'
      << "STAT server.ok " << total_ok_.load() << '\n'
      << "STAT server.errors " << total_errors_.load() << '\n'
      << "END\n";
  return WriteAll(fd, out.str());
}

}  // namespace shark
