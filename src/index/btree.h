#ifndef SHARK_INDEX_BTREE_H_
#define SHARK_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "relation/value.h"

namespace shark {

/// One index entry: where a key's row lives in the cached columnar store.
struct IndexPosting {
  int32_t partition = 0;
  uint32_t row = 0;
};

inline bool operator==(const IndexPosting& a, const IndexPosting& b) {
  return a.partition == b.partition && a.row == b.row;
}

/// In-memory B+-tree over the engine's `Value` total order.
///
/// Keys are ordered exactly by `Value::Compare` — NULL first, then numerics
/// (int64/double compared exactly across types) with NaN after every other
/// numeric, then strings — so a range scan over the tree agrees with the
/// scalar comparison semantics the rest of the engine uses. Duplicate keys
/// are allowed (multimap semantics); a Scan returns every posting whose key
/// falls inside the bound, in key order, deterministically for a given
/// insert sequence.
///
/// The tree is built once on the master (CREATE INDEX collects per-partition
/// key vectors) and is immutable afterwards, but Insert stays incremental so
/// the shadow-model property tests can drive it key by key.
class BTreeIndex {
 public:
  BTreeIndex();
  ~BTreeIndex();
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const Value& key, IndexPosting posting);

  /// Range scan: null bound = open end. `lo_inclusive`/`hi_inclusive` select
  /// >= vs > and <= vs < against `Value::Compare`.
  std::vector<IndexPosting> Scan(const Value* lo, bool lo_inclusive,
                                 const Value* hi, bool hi_inclusive) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// Deterministic footprint estimate used for MemoryManager charging:
  /// per-entry key bytes (ApproxSizeOf) plus posting + node overhead.
  uint64_t MemoryBytes() const { return 64 + approx_bytes_; }

 private:
  struct Node;

  // Result of inserting into a subtree: set when the child split and a new
  // right sibling (with its separator key) must be linked into the parent.
  struct SplitResult {
    bool split = false;
    Value separator;
    std::unique_ptr<Node> right;
  };

  SplitResult InsertInto(Node* node, const Value& key, IndexPosting posting);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 0;
  uint64_t approx_bytes_ = 0;
};

/// Per-partition key column collected by the CREATE INDEX build job:
/// keys[row] is the indexed column's value for that row. Shipped to the
/// master via Collect, where the tree is assembled in partition order.
struct IndexBuildBlock {
  int32_t partition = 0;
  std::vector<Value> keys;
};

inline uint64_t ApproxSizeOf(const std::shared_ptr<IndexBuildBlock>& block) {
  uint64_t total = 32;
  if (block != nullptr) {
    for (const Value& v : block->keys) total += ApproxSizeOf(v);
  }
  return total;
}

}  // namespace shark

#endif  // SHARK_INDEX_BTREE_H_
