#include "index/btree.h"

#include <algorithm>
#include <utility>

namespace shark {

namespace {

// Fanout chosen so the nasty-value property tests exercise multi-level
// trees with a few thousand keys while real indexes stay shallow.
constexpr size_t kMaxKeys = 63;

bool Less(const Value& a, const Value& b) { return a.Compare(b) < 0; }

// First position in `keys` whose key is > `key` (upper bound under
// Value::Compare). New duplicates land after existing ones in a leaf.
size_t UpperBound(const std::vector<Value>& keys, const Value& key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key, Less) - keys.begin());
}

// First position whose key is >= `key` (lower bound under Value::Compare).
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key, Less) - keys.begin());
}

bool SatisfiesHi(const Value& key, const Value* hi, bool hi_inclusive) {
  if (hi == nullptr) return true;
  int c = key.Compare(*hi);
  return c < 0 || (c == 0 && hi_inclusive);
}

}  // namespace

struct BTreeIndex::Node {
  bool leaf = true;
  // Leaf: keys[i] pairs with postings[i]. Internal: children.size() ==
  // keys.size() + 1 and every key in children[i] is <= keys[i] (duplicates
  // of a separator may sit on either side; scans walk the leaf chain).
  std::vector<Value> keys;
  std::vector<IndexPosting> postings;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain, left to right
};

BTreeIndex::BTreeIndex() = default;
BTreeIndex::~BTreeIndex() = default;

void BTreeIndex::Insert(const Value& key, IndexPosting posting) {
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    height_ = 1;
  }
  SplitResult split = InsertInto(root_.get(), key, posting);
  if (split.split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    height_++;
  }
  size_++;
  approx_bytes_ += ApproxSizeOf(key) + sizeof(IndexPosting) + 8;
}

BTreeIndex::SplitResult BTreeIndex::InsertInto(Node* node, const Value& key,
                                               IndexPosting posting) {
  SplitResult result;
  if (node->leaf) {
    size_t pos = UpperBound(node->keys, key);
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(pos), key);
    node->postings.insert(
        node->postings.begin() + static_cast<ptrdiff_t>(pos), posting);
    if (node->keys.size() > kMaxKeys) {
      size_t mid = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                         node->keys.end());
      right->postings.assign(
          node->postings.begin() + static_cast<ptrdiff_t>(mid),
          node->postings.end());
      node->keys.resize(mid);
      node->postings.resize(mid);
      right->next = node->next;
      node->next = right.get();
      result.split = true;
      result.separator = right->keys.front();
      result.right = std::move(right);
    }
    return result;
  }

  size_t ci = UpperBound(node->keys, key);
  SplitResult child_split = InsertInto(node->children[ci].get(), key, posting);
  if (child_split.split) {
    node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(ci),
                      std::move(child_split.separator));
    node->children.insert(
        node->children.begin() + static_cast<ptrdiff_t>(ci + 1),
        std::move(child_split.right));
    if (node->keys.size() > kMaxKeys) {
      size_t mid = node->keys.size() / 2;
      auto right = std::make_unique<Node>();
      right->leaf = false;
      result.separator = std::move(node->keys[mid]);
      right->keys.assign(
          std::make_move_iterator(node->keys.begin() +
                                  static_cast<ptrdiff_t>(mid + 1)),
          std::make_move_iterator(node->keys.end()));
      right->children.assign(
          std::make_move_iterator(node->children.begin() +
                                  static_cast<ptrdiff_t>(mid + 1)),
          std::make_move_iterator(node->children.end()));
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      result.split = true;
      result.right = std::move(right);
    }
  }
  return result;
}

std::vector<IndexPosting> BTreeIndex::Scan(const Value* lo, bool lo_inclusive,
                                           const Value* hi,
                                           bool hi_inclusive) const {
  std::vector<IndexPosting> out;
  if (root_ == nullptr) return out;

  // Descend to the leftmost leaf that can contain a qualifying key. The
  // landing leaf may still start below the bound (duplicates of a separator
  // can sit left of it), so the chain walk below re-checks the lower bound
  // until the first hit.
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t ci = lo == nullptr ? 0 : LowerBound(node->keys, *lo);
    node = node->children[ci].get();
  }

  bool lo_done = lo == nullptr;
  for (; node != nullptr; node = node->next) {
    size_t begin = 0;
    if (!lo_done) {
      begin = lo_inclusive ? LowerBound(node->keys, *lo)
                           : UpperBound(node->keys, *lo);
      if (begin >= node->keys.size()) continue;
      lo_done = true;
    }
    for (size_t i = begin; i < node->keys.size(); ++i) {
      if (!SatisfiesHi(node->keys[i], hi, hi_inclusive)) return out;
      out.push_back(node->postings[i]);
    }
  }
  return out;
}

}  // namespace shark
