#ifndef SHARK_HIVE_HIVE_ENGINE_H_
#define SHARK_HIVE_HIVE_ENGINE_H_

#include <memory>

#include "sql/session.h"

namespace shark {

/// Configuration of the Hive/Hadoop baseline (§6.1): Hive compiles the same
/// logical plans into MapReduce job chains; here that means the Hadoop
/// engine profile (large task launch overhead, heartbeat scheduling, sorted
/// on-disk shuffles, per-stage DFS materialization, no memory store, no PDE)
/// plus Hive's static reducer-count heuristic.
struct HiveConfig {
  /// Hand-tuned reducer count ("Hive (tuned)" in Fig 7); 0 = use the
  /// bytes-per-reducer heuristic, which the paper observes frequently picks
  /// catastrophically few reducers.
  int num_reducers = 0;

  /// hive.exec.reducers.bytes.per.reducer (1 GB default in Hive 0.9).
  uint64_t bytes_per_reducer = 1ULL << 30;
};

/// Builds the Hadoop-profile cluster configuration corresponding to a Shark
/// cluster configuration (same hardware, nodes and data scale).
ClusterConfig HadoopClusterConfig(const ClusterConfig& shark_config);

/// Creates a Hive session running on its own Hadoop-profile cluster but
/// sharing the DFS with `shark_session`, with all of the Shark catalog's
/// DFS-backed tables mirrored so both engines query the same warehouse.
Result<std::unique_ptr<SharkSession>> MakeHiveSession(
    SharkSession* shark_session, const HiveConfig& config = HiveConfig());

/// Applies Hive execution options (static join/reducer selection; the
/// reducer heuristic) to a session. Exposed separately for tests.
void ApplyHiveOptions(SharkSession* session, const HiveConfig& config);

/// Hive's reducer heuristic: ceil(input_bytes / bytes_per_reducer),
/// clamped to >= 1.
int HiveReducerHeuristic(uint64_t input_virtual_bytes,
                         uint64_t bytes_per_reducer);

/// Copies every DFS-backed table definition from `src`'s catalog into
/// `dst`'s (cached state is not mirrored; Hive has no memory store).
Status MirrorDfsTables(SharkSession* src, SharkSession* dst);

}  // namespace shark

#endif  // SHARK_HIVE_HIVE_ENGINE_H_
